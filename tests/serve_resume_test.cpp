// Loopback tests for session resumption and overload shedding: detached
// sessions replay unacked frames on RESUME with the byte-parity contract
// intact across the disconnect, ACK trims the replay window, grace expiry
// and delivered (finished + final-ACKed) sessions reject resumption, and
// admission/deadline overload
// control sheds with STATUS kOverloaded while keeping sessions resumable.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/trace_source.hpp"
#include "serve/wire.hpp"

namespace {

using namespace safe;
using namespace safe::serve;

constexpr std::uint64_t kRecvDeadlineNs = 10'000'000'000ULL;

class ServerHarness {
 public:
  explicit ServerHarness(ServerOptions options = {})
      : pool_(2), server_(std::move(options), pool_) {
    server_.bind_and_listen();
    thread_ = std::thread([this] { server_.run(); });
  }

  ~ServerHarness() {
    server_.request_drain();
    thread_.join();
    pool_.drain();
  }

  StreamServer& server() { return server_; }
  [[nodiscard]] std::uint16_t port() const { return server_.port(); }

 private:
  runtime::ThreadPool pool_;
  StreamServer server_;
  std::thread thread_;
};

TraceSpec quick_spec(std::uint64_t seed = 31) {
  TraceSpec spec;
  spec.seed = seed;
  spec.horizon_steps = 60;
  spec.attack = core::AttackKind::kDosJammer;
  spec.attack_start_s = units::Seconds{20.0};
  spec.attack_end_s = units::Seconds{60.0};
  return spec;
}

/// Opens a session, streams the first `steps` measurements to completion,
/// and returns the session token. The client is closed (abrupt from the
/// server's perspective: no protocol goodbye exists) before returning.
std::uint64_t stream_prefix_then_disconnect(
    std::uint16_t port, const TraceSpec& spec,
    const std::vector<MeasurementFrame>& trace, std::size_t steps,
    std::vector<std::vector<std::uint8_t>>* estimate_frames = nullptr) {
  SessionClient client;
  client.connect("127.0.0.1", port);
  const auto open = client.open_session(hello_from(spec, "resume-test"));
  EXPECT_TRUE(open.ok) << open.transport_error;
  const std::uint64_t token = open.status.session_token;
  EXPECT_NE(token, 0u);

  const std::vector<MeasurementFrame> prefix(
      trace.begin(), trace.begin() + static_cast<std::ptrdiff_t>(steps));
  const auto result = client.stream(prefix);
  EXPECT_TRUE(result.complete) << result.transport_error;
  EXPECT_EQ(result.estimates.size(), steps);
  if (estimate_frames != nullptr) *estimate_frames = result.estimate_frames;
  client.close();
  return token;
}

/// Sends RESUME over a fresh connection and returns the server's first
/// reply frame.
std::optional<Frame> send_resume(SessionClient& client, std::uint16_t port,
                                 std::uint64_t token, std::int64_t last_step) {
  client.connect("127.0.0.1", port);
  client.send_raw(encode(ResumeFrame{
      .session_token = token,
      .last_step = last_step,
  }));
  return client.recv_frame(kRecvDeadlineNs);
}

/// Receives frames until `count` ESTIMATE frames have arrived (challenge
/// results interleave freely); returns them in arrival order.
std::vector<EstimateFrame> recv_estimates(SessionClient& client,
                                          std::size_t count) {
  std::vector<EstimateFrame> estimates;
  while (estimates.size() < count) {
    const auto frame = client.recv_frame(kRecvDeadlineNs);
    if (!frame.has_value()) {
      ADD_FAILURE() << "stream ended early: " << client.reason();
      break;
    }
    if (frame->type == FrameType::kEstimate) {
      EstimateFrame estimate;
      EXPECT_TRUE(decode(*frame, estimate, nullptr));
      estimates.push_back(estimate);
    } else if (frame->type != FrameType::kChallengeResult) {
      ADD_FAILURE() << "unexpected frame type "
                    << static_cast<int>(frame->type);
      break;
    }
  }
  return estimates;
}

TEST(ServeResume, ResumeAfterDisconnectContinuesWithByteParity) {
  ServerHarness harness;
  const TraceSpec spec = quick_spec();
  const std::vector<MeasurementFrame> trace = make_measurement_trace(spec);

  std::vector<std::vector<std::uint8_t>> first_frames;
  const std::uint64_t token = stream_prefix_then_disconnect(
      harness.port(), spec, trace, 30, &first_frames);

  SessionClient resumed;
  const auto reply = send_resume(resumed, harness.port(), token, 29);
  ASSERT_TRUE(reply.has_value()) << resumed.reason();
  ASSERT_EQ(reply->type, FrameType::kResumeOk);
  ResumeOkFrame ok;
  ASSERT_TRUE(decode(*reply, ok, nullptr));
  EXPECT_EQ(ok.session_token, token);
  EXPECT_EQ(ok.next_step, 30);
  // Everything through step 29 was implicitly acked by last_step, so
  // nothing replays.
  EXPECT_EQ(ok.replayed_frames, 0u);

  const std::vector<MeasurementFrame> rest(trace.begin() + 30, trace.end());
  const auto result = resumed.stream(rest);
  ASSERT_TRUE(result.complete) << result.transport_error;
  ASSERT_EQ(result.estimates.size(), rest.size());

  // The stitched stream is byte-identical to the offline pipeline: the
  // disconnect is invisible in the output.
  const std::vector<EstimateFrame> reference = run_offline(spec, trace);
  ASSERT_EQ(reference.size(), first_frames.size() + result.estimate_frames.size());
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(first_frames[i], encode(reference[i])) << "step " << i;
  }
  for (std::size_t i = 0; i < result.estimate_frames.size(); ++i) {
    EXPECT_EQ(result.estimate_frames[i], encode(reference[30 + i]))
        << "step " << (30 + i);
  }
  EXPECT_EQ(harness.server().stats().sessions_resumed, 1u);
}

TEST(ServeResume, ResumeReplaysUnackedEstimates) {
  ServerHarness harness;
  const TraceSpec spec = quick_spec(32);
  const std::vector<MeasurementFrame> trace = make_measurement_trace(spec);
  const std::uint64_t token =
      stream_prefix_then_disconnect(harness.port(), spec, trace, 30);

  // Claim only step 19: the server must replay everything it produced for
  // steps 20..29 before accepting new measurements.
  SessionClient resumed;
  const auto reply = send_resume(resumed, harness.port(), token, 19);
  ASSERT_TRUE(reply.has_value()) << resumed.reason();
  ASSERT_EQ(reply->type, FrameType::kResumeOk);
  ResumeOkFrame ok;
  ASSERT_TRUE(decode(*reply, ok, nullptr));
  EXPECT_EQ(ok.next_step, 30);
  EXPECT_GE(ok.replayed_frames, 10u);

  const std::vector<EstimateFrame> replayed = recv_estimates(resumed, 10);
  ASSERT_EQ(replayed.size(), 10u);
  const std::vector<EstimateFrame> reference = run_offline(spec, trace);
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i].step, static_cast<std::int64_t>(20 + i));
    EXPECT_EQ(encode(replayed[i]), encode(reference[20 + i]))
        << "replayed step " << (20 + i);
  }
  EXPECT_GE(harness.server().stats().replayed_frames, 10u);

  const std::vector<MeasurementFrame> rest(trace.begin() + 30, trace.end());
  const auto result = resumed.stream(rest);
  ASSERT_TRUE(result.complete) << result.transport_error;
  for (std::size_t i = 0; i < result.estimate_frames.size(); ++i) {
    EXPECT_EQ(result.estimate_frames[i], encode(reference[30 + i]))
        << "step " << (30 + i);
  }
}

TEST(ServeResume, UnknownTokenGetsResumeUnknown) {
  ServerHarness harness;
  SessionClient client;
  const auto reply =
      send_resume(client, harness.port(), 0xDEADBEEFCAFEF00DULL, -1);
  ASSERT_TRUE(reply.has_value()) << client.reason();
  ASSERT_EQ(reply->type, FrameType::kError);
  ErrorFrame error;
  ASSERT_TRUE(decode(*reply, error, nullptr));
  EXPECT_EQ(error.code, ErrorCode::kResumeUnknown);
  EXPECT_EQ(harness.server().stats().resume_rejects, 1u);
}

TEST(ServeResume, AckTrimsReplayWindowSoOldResumeGetsGap) {
  ServerHarness harness;
  const TraceSpec spec = quick_spec(33);
  const std::vector<MeasurementFrame> trace = make_measurement_trace(spec);

  SessionClient client;
  client.connect("127.0.0.1", harness.port());
  const auto open = client.open_session(hello_from(spec, "ack-trim"));
  ASSERT_TRUE(open.ok) << open.transport_error;
  const std::uint64_t token = open.status.session_token;

  const std::vector<MeasurementFrame> prefix(trace.begin(),
                                             trace.begin() + 30);
  ASSERT_TRUE(client.stream(prefix).complete);
  client.send_raw(encode(AckFrame{.last_step = 29}));
  // Frames are processed in order, so once step 30's estimate arrives the
  // ACK has definitely been applied.
  client.send_raw(encode(trace[30]));
  const std::vector<EstimateFrame> next = recv_estimates(client, 1);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].step, 30);
  client.close();

  SessionClient resumed;
  const auto reply = send_resume(resumed, harness.port(), token, 10);
  ASSERT_TRUE(reply.has_value()) << resumed.reason();
  ASSERT_EQ(reply->type, FrameType::kError);
  ErrorFrame error;
  ASSERT_TRUE(decode(*reply, error, nullptr));
  EXPECT_EQ(error.code, ErrorCode::kResumeGap);
}

TEST(ServeResume, RetainedStepCapOverflowCausesGap) {
  ServerOptions options;
  options.session.max_retained_steps = 8;
  ServerHarness harness(options);
  const TraceSpec spec = quick_spec(34);
  const std::vector<MeasurementFrame> trace = make_measurement_trace(spec);
  const std::uint64_t token =
      stream_prefix_then_disconnect(harness.port(), spec, trace, 30);

  // Only the last 8 steps are retained; resuming from scratch is impossible.
  SessionClient resumed;
  const auto reply = send_resume(resumed, harness.port(), token, -1);
  ASSERT_TRUE(reply.has_value()) << resumed.reason();
  ASSERT_EQ(reply->type, FrameType::kError);
  ErrorFrame error;
  ASSERT_TRUE(decode(*reply, error, nullptr));
  EXPECT_EQ(error.code, ErrorCode::kResumeGap);
}

TEST(ServeResume, ResumeClaimingUnprocessedStepsIsAProtocolError) {
  ServerHarness harness;
  const TraceSpec spec = quick_spec(35);
  const std::vector<MeasurementFrame> trace = make_measurement_trace(spec);
  const std::uint64_t token =
      stream_prefix_then_disconnect(harness.port(), spec, trace, 30);

  SessionClient resumed;
  const auto reply = send_resume(resumed, harness.port(), token, 45);
  ASSERT_TRUE(reply.has_value()) << resumed.reason();
  ASSERT_EQ(reply->type, FrameType::kError);
  ErrorFrame error;
  ASSERT_TRUE(decode(*reply, error, nullptr));
  EXPECT_EQ(error.code, ErrorCode::kProtocolOrder);
}

TEST(ServeResume, DetachedSessionExpiresAfterGraceWindow) {
  ServerOptions options;
  options.session.resume_grace_ns = 100'000'000ULL;  // 100 ms
  options.idle_check_period_ns = 20'000'000ULL;
  ServerHarness harness(options);
  const TraceSpec spec = quick_spec(36);
  const std::vector<MeasurementFrame> trace = make_measurement_trace(spec);
  const std::uint64_t token =
      stream_prefix_then_disconnect(harness.port(), spec, trace, 10);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (harness.server().session_counters().expired == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(harness.server().session_counters().expired, 1u);

  SessionClient resumed;
  const auto reply = send_resume(resumed, harness.port(), token, 9);
  ASSERT_TRUE(reply.has_value()) << resumed.reason();
  ASSERT_EQ(reply->type, FrameType::kError);
  ErrorFrame error;
  ASSERT_TRUE(decode(*reply, error, nullptr));
  EXPECT_EQ(error.code, ErrorCode::kResumeUnknown);
}

// A finished session whose final frames were never ACKed stays resumable:
// the client may have been cut before the tail estimates arrived, and
// destroying the session on close would strand it (every restart re-runs
// into the same cut — a livelock the chaos soak actually hit). Only the
// final ACK proves delivery and lets the server destroy it on close.
TEST(ServeResume, FinishedSessionStaysResumableUntilFinalAck) {
  ServerHarness harness;
  const TraceSpec spec = quick_spec(37);
  const std::vector<MeasurementFrame> trace = make_measurement_trace(spec);
  const std::int64_t last = static_cast<std::int64_t>(trace.size()) - 1;
  const std::uint64_t token = stream_prefix_then_disconnect(
      harness.port(), spec, trace, trace.size());

  // Finished but unacked: the server cannot know the client got the tail,
  // so the session detaches and the resume succeeds with nothing to replay
  // (the client claims it has everything through `last`).
  SessionClient resumed;
  const auto reply = send_resume(resumed, harness.port(), token, last);
  ASSERT_TRUE(reply.has_value()) << resumed.reason();
  ASSERT_EQ(reply->type, FrameType::kResumeOk);
  ResumeOkFrame ok;
  ASSERT_TRUE(decode(*reply, ok, nullptr));
  EXPECT_EQ(ok.session_token, token);
  EXPECT_EQ(ok.next_step, last + 1);
  EXPECT_EQ(ok.replayed_frames, 0u);

  // ACK the final step and close: the session is now fully delivered, so
  // the server destroys it instead of detaching again.
  const std::uint64_t closed_before = harness.server().session_counters().closed;
  resumed.send_raw(encode(AckFrame{.last_step = last}));
  resumed.close();
  for (int i = 0; i < 500; ++i) {
    if (harness.server().session_counters().closed > closed_before) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GT(harness.server().session_counters().closed, closed_before);

  SessionClient again;
  const auto gone = send_resume(again, harness.port(), token, last);
  ASSERT_TRUE(gone.has_value()) << again.reason();
  ASSERT_EQ(gone->type, FrameType::kError);
  ErrorFrame error;
  ASSERT_TRUE(decode(*gone, error, nullptr));
  EXPECT_EQ(error.code, ErrorCode::kResumeUnknown);
}

/// Wedged-pool harness: a single worker blocked on a gate so dispatched
/// batches stay in flight for as long as the test wants.
struct WedgedServer {
  explicit WedgedServer(ServerOptions options) : pool(1) {
    gate = std::shared_future<void>(release.get_future());
    pool.submit([g = gate] { g.wait(); });
    server.emplace(std::move(options), pool);
    server->bind_and_listen();
    thread = std::thread([this] { server->run(); });
  }

  ~WedgedServer() {
    if (release_needed) release.set_value();
    server->request_drain();
    thread.join();
    pool.drain();
  }

  void open_gate() {
    release.set_value();
    release_needed = false;
  }

  runtime::ThreadPool pool;
  std::promise<void> release;
  std::shared_future<void> gate;
  std::optional<StreamServer> server;
  std::thread thread;
  bool release_needed = true;
};

TEST(ServeOverload, AdmissionControlShedsHelloWhileBatchesInFlight) {
  ServerOptions options;
  options.admission_max_batches = 1;
  WedgedServer wedged(options);
  const std::uint16_t port = wedged.server->port();
  const TraceSpec spec = quick_spec(38);
  const std::vector<MeasurementFrame> trace = make_measurement_trace(spec);

  SessionClient first;
  first.connect("127.0.0.1", port);
  ASSERT_TRUE(first.open_session(hello_from(spec, "wedged")).ok);
  for (std::size_t i = 0; i < 4; ++i) first.send_raw(encode(trace[i]));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (wedged.server->stats().frames_in < 4 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(wedged.server->stats().frames_in, 4u);

  // With one batch wedged in flight, a new HELLO is shed with a retryable
  // STATUS kOverloaded instead of a session.
  SessionClient second;
  second.connect("127.0.0.1", port);
  const auto open = second.open_session(hello_from(spec, "shed"));
  EXPECT_FALSE(open.ok);
  ASSERT_FALSE(open.has_error) << "expected STATUS, got ERROR";
  ASSERT_TRUE(open.transport_error.empty()) << open.transport_error;
  EXPECT_EQ(open.status.code, StatusCode::kOverloaded);
  EXPECT_EQ(wedged.server->stats().shed_hellos, 1u);
  // The shed connection is closed afterwards.
  EXPECT_FALSE(second.recv_frame(5'000'000'000ULL).has_value());

  // Once the wedge clears, admission readmits.
  wedged.open_gate();
  const auto admit_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool admitted = false;
  while (!admitted && std::chrono::steady_clock::now() < admit_deadline) {
    SessionClient retry;
    retry.connect("127.0.0.1", port);
    if (retry.open_session(hello_from(spec, "after")).ok) {
      admitted = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(admitted);
}

TEST(ServeOverload, FrameDeadlineShedsButSessionStaysResumable) {
  ServerOptions options;
  options.frame_deadline_ns = 100'000'000ULL;  // 100 ms
  options.idle_check_period_ns = 20'000'000ULL;
  WedgedServer wedged(options);
  const std::uint16_t port = wedged.server->port();
  const TraceSpec spec = quick_spec(39);
  const std::vector<MeasurementFrame> trace = make_measurement_trace(spec);

  SessionClient client;
  client.connect("127.0.0.1", port);
  const auto open = client.open_session(hello_from(spec, "deadline"));
  ASSERT_TRUE(open.ok) << open.transport_error;
  const std::uint64_t token = open.status.session_token;

  // The first measurement dispatches as a wedged batch; the follow-up burst
  // queues as pending measurements whose deadline then expires.
  client.send_raw(encode(trace[0]));
  const auto dispatch_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (wedged.server->stats().frames_in < 1 &&
         std::chrono::steady_clock::now() < dispatch_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (std::size_t i = 1; i < 8; ++i) client.send_raw(encode(trace[i]));

  const auto shed = client.recv_frame(kRecvDeadlineNs);
  ASSERT_TRUE(shed.has_value()) << client.reason();
  ASSERT_EQ(shed->type, FrameType::kStatus);
  StatusFrame status;
  ASSERT_TRUE(decode(*shed, status, nullptr));
  EXPECT_EQ(status.code, StatusCode::kOverloaded);
  EXPECT_GE(wedged.server->stats().deadline_sheds, 1u);
  client.close();

  // The wedge clears; the shed session resumes, replays steps 0..3 (the
  // dispatched batch), and completes with full byte parity.
  wedged.open_gate();
  std::unique_ptr<SessionClient> resumed;
  ResumeOkFrame ok;
  const auto resume_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!resumed && std::chrono::steady_clock::now() < resume_deadline) {
    auto attempt = std::make_unique<SessionClient>();
    const auto reply = send_resume(*attempt, port, token, -1);
    if (reply.has_value() && reply->type == FrameType::kResumeOk) {
      ASSERT_TRUE(decode(*reply, ok, nullptr));
      resumed = std::move(attempt);
      break;
    }
    // kBusy while the wedged batch finishes arrives as a retryable STATUS
    // kOverloaded; anything else is a real failure.
    ASSERT_TRUE(reply.has_value()) << attempt->reason();
    ASSERT_EQ(reply->type, FrameType::kStatus);
    StatusFrame retry_status;
    ASSERT_TRUE(decode(*reply, retry_status, nullptr));
    ASSERT_EQ(retry_status.code, StatusCode::kOverloaded);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(resumed != nullptr);
  // Exactly the steps that made it into the dispatched batch were
  // processed; everything pending was shed. Segmentation decides how many
  // coalesced into that batch, so derive the count from the reply.
  const std::int64_t processed = ok.next_step;
  ASSERT_GE(processed, 1);
  ASSERT_LT(processed, 8);
  EXPECT_GE(ok.replayed_frames, static_cast<std::uint64_t>(processed));

  const std::vector<EstimateFrame> replayed =
      recv_estimates(*resumed, static_cast<std::size_t>(processed));
  ASSERT_EQ(replayed.size(), static_cast<std::size_t>(processed));
  const std::vector<EstimateFrame> reference = run_offline(spec, trace);
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(encode(replayed[i]), encode(reference[i])) << "step " << i;
  }

  const std::vector<MeasurementFrame> rest(
      trace.begin() + static_cast<std::ptrdiff_t>(processed), trace.end());
  const auto result = resumed->stream(rest);
  ASSERT_TRUE(result.complete) << result.transport_error;
  for (std::size_t i = 0; i < result.estimate_frames.size(); ++i) {
    const std::size_t step = static_cast<std::size_t>(processed) + i;
    EXPECT_EQ(result.estimate_frames[i], encode(reference[step]))
        << "step " << step;
  }
}

}  // namespace
