// Randomized closed-loop property tests: for arbitrary PRBS challenge
// schedules, attack kinds, and attack windows, the defense invariants must
// hold.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>

#include "core/scenario.hpp"

namespace safe::core {
namespace {

struct FuzzCase {
  unsigned seed;
};

class DefenseInvariants : public ::testing::TestWithParam<unsigned> {};

TEST_P(DefenseInvariants, HoldUnderRandomizedAttacksAndSchedules) {
  std::mt19937 rng(GetParam() * 2654435761u + 17u);
  std::uniform_int_distribution<int> attack_pick(0, 1);
  std::uniform_real_distribution<double> onset_dist(30.0, 250.0);
  std::uniform_int_distribution<int> denom_dist(3, 8);
  std::uniform_int_distribution<int> key_dist(1, 0xFFFF);

  ScenarioOptions o;
  o.estimator = radar::BeatEstimator::kPeriodogram;
  o.attack = attack_pick(rng) == 0 ? AttackKind::kDosJammer
                                   : AttackKind::kDelayInjection;
  o.attack_start_s = units::Seconds{std::floor(onset_dist(rng))};
  o.attack_end_s = units::Seconds{300.0};
  o.seed = GetParam() + 7000;
  o.leader = attack_pick(rng) == 0 ? LeaderScenario::kConstantDecel
                                   : LeaderScenario::kDecelThenAccel;

  Scenario scenario = make_paper_scenario(o);
  scenario.schedule = std::make_shared<cra::PrbsChallengeSchedule>(
      static_cast<std::uint16_t>(key_dist(rng)), 1,
      static_cast<std::uint32_t>(denom_dist(rng)),
      scenario.config.horizon_steps);

  const auto result = scenario.run();

  // Invariant 1: the challenge-level comparison never miscounts — zero
  // false positives and zero false negatives on every run.
  EXPECT_EQ(result.detection_stats.false_positives, 0u)
      << "attack=" << static_cast<int>(o.attack)
      << " onset=" << o.attack_start_s.value();
  EXPECT_EQ(result.detection_stats.false_negatives, 0u);

  // Invariant 2: if the run survived to the first challenge after onset,
  // detection happened exactly there.
  std::int64_t first_challenge_after_onset = -1;
  for (std::int64_t k = static_cast<std::int64_t>(o.attack_start_s.value());
       k < 300;
       ++k) {
    if (scenario.schedule->is_challenge(k)) {
      first_challenge_after_onset = k;
      break;
    }
  }
  const bool survived_to_challenge =
      !result.collided ||
      (result.collision_step &&
       *result.collision_step >= first_challenge_after_onset);
  if (first_challenge_after_onset >= 0 && survived_to_challenge) {
    ASSERT_TRUE(result.detection_step.has_value());
    EXPECT_EQ(*result.detection_step, first_challenge_after_onset);
  }

  // Invariant 3: every recorded value is finite and safe distances are
  // non-negative.
  for (std::size_t c = 0; c < result.trace.num_columns(); ++c) {
    for (const double v : result.trace.column(c)) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
  for (const double d : result.trace.column("safe_gap_m")) {
    EXPECT_GE(d, 0.0);
  }

  // Invariant 4: the under_attack flag never rises outside the window's
  // closure [onset, horizon].
  const auto& under = result.trace.column("under_attack");
  for (std::size_t k = 0;
       k < static_cast<std::size_t>(o.attack_start_s.value());
       ++k) {
    EXPECT_EQ(under[k], 0.0) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Randomized, DefenseInvariants,
                         ::testing::Range(0u, 14u));

class CleanRunInvariants : public ::testing::TestWithParam<unsigned> {};

TEST_P(CleanRunInvariants, NoAttackMeansNoDetectionEver) {
  ScenarioOptions o;
  o.estimator = radar::BeatEstimator::kPeriodogram;
  o.seed = GetParam() + 100;
  Scenario scenario = make_paper_scenario(o);
  scenario.schedule = std::make_shared<cra::PrbsChallengeSchedule>(
      static_cast<std::uint16_t>(GetParam() * 131 + 7), 1, 4,
      scenario.config.horizon_steps);
  const auto result = scenario.run();
  EXPECT_FALSE(result.detection_step.has_value());
  EXPECT_EQ(result.detection_stats.false_positives, 0u);
  EXPECT_FALSE(result.collided);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CleanRunInvariants, ::testing::Range(0u, 8u));

}  // namespace
}  // namespace safe::core
