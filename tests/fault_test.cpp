// Unit tests for the fault-injection harness (fault/).
#include <gtest/gtest.h>

#include <cmath>

#include "fault/schedule.hpp"

namespace safe::fault {
namespace {

radar::RadarMeasurement echo(double d, double v) {
  radar::RadarMeasurement m;
  m.estimate = radar::RangeRate{.distance_m = units::Meters{d},
                                .range_rate_mps = units::MetersPerSecond{v}};
  m.coherent_echo = true;
  m.peak_to_average = 500.0;
  return m;
}

TEST(FaultWindow, BoundedWindowIsHalfOpen) {
  const FaultWindow w{.start = 10, .length = 5};
  EXPECT_FALSE(w.active(9));
  EXPECT_TRUE(w.active(10));
  EXPECT_TRUE(w.active(14));
  EXPECT_FALSE(w.active(15));
}

TEST(FaultWindow, ZeroLengthMeansUnbounded) {
  const FaultWindow w{.start = 3, .length = 0};
  EXPECT_FALSE(w.active(2));
  EXPECT_TRUE(w.active(3));
  EXPECT_TRUE(w.active(1'000'000));
}

TEST(FaultWindow, PeriodicWindowRepeats) {
  const FaultWindow w{.start = 100, .length = 2, .period = 10};
  EXPECT_TRUE(w.active(100));
  EXPECT_TRUE(w.active(101));
  EXPECT_FALSE(w.active(102));
  EXPECT_FALSE(w.active(109));
  EXPECT_TRUE(w.active(110));
  EXPECT_TRUE(w.active(121));
  EXPECT_FALSE(w.active(122));
}

TEST(Injectors, DropoutSilencesInWindowOnly) {
  FaultSchedule s;
  s.add(std::make_shared<DropoutBurstFault>(FaultWindow{.start = 5,
                                                        .length = 2}));
  EXPECT_TRUE(s.apply(4, false, echo(50.0, -1.0)).coherent_echo);
  const auto dropped = s.apply(5, false, echo(50.0, -1.0));
  EXPECT_FALSE(dropped.coherent_echo);
  EXPECT_FALSE(dropped.power_alarm);
  EXPECT_TRUE(s.apply(7, false, echo(50.0, -1.0)).coherent_echo);
}

TEST(Injectors, ProbabilisticDropoutIsSeedDeterministic) {
  const auto pattern = [](std::uint64_t seed) {
    FaultSchedule s(seed);
    s.add(std::make_shared<DropoutBurstFault>(
        FaultWindow{.start = 0, .length = 0}, 0.5));
    std::string bits;
    for (std::int64_t k = 0; k < 64; ++k) {
      bits += s.apply(k, false, echo(50.0, 0.0)).coherent_echo ? '1' : '0';
    }
    return bits;
  };
  EXPECT_EQ(pattern(7), pattern(7));          // reproducible
  EXPECT_NE(pattern(7), pattern(8));          // seed-sensitive
  EXPECT_NE(pattern(7), std::string(64, '0'));  // not all-drop
  EXPECT_NE(pattern(7), std::string(64, '1'));  // not all-pass
}

TEST(Injectors, StuckAtRepeatsPreviousDeliveredFrame) {
  FaultSchedule s;
  s.add(std::make_shared<StuckAtFault>(FaultWindow{.start = 2, .length = 0}));
  (void)s.apply(0, false, echo(50.0, -1.0));
  (void)s.apply(1, false, echo(49.0, -1.0));
  const auto stuck = s.apply(2, false, echo(48.0, -1.0));
  EXPECT_DOUBLE_EQ(stuck.estimate.distance_m.value(), 49.0);
  // Once latched it keeps re-delivering the same frame forever.
  const auto later = s.apply(10, false, echo(40.0, -1.0));
  EXPECT_DOUBLE_EQ(later.estimate.distance_m.value(), 49.0);
}

TEST(Injectors, NonFiniteKeepsCoherentFlag) {
  FaultSchedule s;
  s.add(std::make_shared<NonFiniteFault>(FaultWindow{.start = 0, .length = 0},
                                         /*use_inf=*/false));
  const auto m = s.apply(0, false, echo(50.0, -1.0));
  EXPECT_TRUE(m.coherent_echo);
  EXPECT_TRUE(std::isnan(m.estimate.distance_m.value()));
  EXPECT_TRUE(std::isnan(m.estimate.range_rate_mps.value()));

  FaultSchedule si;
  si.add(std::make_shared<NonFiniteFault>(FaultWindow{.start = 0, .length = 0},
                                          /*use_inf=*/true));
  EXPECT_TRUE(std::isinf(
      si.apply(0, false, echo(50.0, -1.0)).estimate.distance_m.value()));
}

TEST(Injectors, BiasRampGrowsWithAge) {
  FaultSchedule s;
  s.add(std::make_shared<BiasRampFault>(FaultWindow{.start = 10, .length = 0},
                                        units::Meters{0.5},
                                        units::MetersPerSecond{0.1}));
  const auto at10 = s.apply(10, false, echo(50.0, -1.0));
  EXPECT_DOUBLE_EQ(at10.estimate.distance_m.value(), 50.0);
  const auto at14 = s.apply(14, false, echo(50.0, -1.0));
  EXPECT_DOUBLE_EQ(at14.estimate.distance_m.value(), 52.0);
  EXPECT_DOUBLE_EQ(at14.estimate.range_rate_mps.value(), -0.6);
}

TEST(Injectors, QuantizeSnapsAndSaturates) {
  FaultSchedule s;
  s.add(std::make_shared<QuantizeSaturateFault>(
      FaultWindow{.start = 0, .length = 0}, units::Meters{4.0},
      units::Meters{120.0}, units::MetersPerSecond{30.0}));
  const auto snapped = s.apply(0, false, echo(49.0, -1.0));
  EXPECT_DOUBLE_EQ(snapped.estimate.distance_m.value(), 48.0);
  const auto railed = s.apply(1, false, echo(500.0, -80.0));
  EXPECT_DOUBLE_EQ(railed.estimate.distance_m.value(), 120.0);
  EXPECT_DOUBLE_EQ(railed.estimate.range_rate_mps.value(), -30.0);
}

TEST(Injectors, FlapAlternatesJamAndSilenceAtChallenges) {
  FaultSchedule s;
  s.add(std::make_shared<ChallengeFlappingFault>(
      FaultWindow{.start = 0, .length = 0}));
  // Non-challenge steps untouched.
  EXPECT_TRUE(s.apply(0, false, echo(50.0, 0.0)).coherent_echo);
  // Challenge index counts 1, 2, 3...: odd → silent, even → power alarm.
  const auto first = s.apply(1, true, echo(50.0, 0.0));
  const auto second = s.apply(2, true, echo(50.0, 0.0));
  const auto third = s.apply(3, true, echo(50.0, 0.0));
  EXPECT_NE(first.power_alarm, second.power_alarm);
  EXPECT_EQ(first.power_alarm, third.power_alarm);
  EXPECT_FALSE(first.coherent_echo);
  EXPECT_FALSE(second.coherent_echo);
}

TEST(Injectors, ClockSkipRedeliversStaleFrame) {
  FaultSchedule s;
  s.add(std::make_shared<ClockSkipFault>(
      FaultWindow{.start = 0, .length = 1, .period = 4}));
  // First in-window step has no history: behaves as a dropout.
  EXPECT_FALSE(s.apply(0, false, echo(50.0, -1.0)).coherent_echo);
  (void)s.apply(1, false, echo(49.0, -1.0));
  (void)s.apply(2, false, echo(48.0, -1.0));
  (void)s.apply(3, false, echo(47.0, -1.0));
  const auto stale = s.apply(4, false, echo(46.0, -1.0));
  EXPECT_DOUBLE_EQ(stale.estimate.distance_m.value(), 47.0);
}

TEST(Schedule, AppliesInjectorsInOrderAndTracksHistory) {
  // bias then quantize: 49 + 1*0.5... build so order matters.
  FaultSchedule s;
  s.add(std::make_shared<BiasRampFault>(FaultWindow{.start = 0, .length = 0},
                                        units::Meters{1.0}));
  s.add(std::make_shared<QuantizeSaturateFault>(
      FaultWindow{.start = 0, .length = 0}, units::Meters{4.0},
      units::Meters{120.0}, units::MetersPerSecond{30.0}));
  const auto m = s.apply(3, false, echo(49.0, 0.0));
  // 49 + 3 = 52, then snapped to 52 on a 4 m grid.
  EXPECT_DOUBLE_EQ(m.estimate.distance_m.value(), 52.0);
  EXPECT_EQ(s.name(), "bias+quantize");
}

TEST(Schedule, ResetRestartsStreamState) {
  FaultSchedule s;
  s.add(std::make_shared<StuckAtFault>(FaultWindow{.start = 1, .length = 0}));
  (void)s.apply(0, false, echo(50.0, 0.0));
  EXPECT_DOUBLE_EQ(s.apply(1, false, echo(40.0, 0.0)).estimate.distance_m.value(),
                   50.0);
  s.reset();
  // No history after reset: the stuck injector has nothing to latch onto.
  EXPECT_DOUBLE_EQ(s.apply(1, false, echo(40.0, 0.0)).estimate.distance_m.value(),
                   40.0);
}

TEST(Schedule, NullInjectorThrows) {
  FaultSchedule s;
  EXPECT_THROW(s.add(nullptr), std::invalid_argument);
}

TEST(SpecParser, RoundTripsKindsAndWindows) {
  const auto s = parse_fault_spec(
      "dropout:start=60,len=10;nan:start=100,len=1,period=25", 9);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.seed(), 9u);
  EXPECT_EQ(s.name(), "dropout+nan");

  // Window parameters must actually gate: probe the stream.
  FaultSchedule probe = s;
  EXPECT_TRUE(probe.apply(59, false, echo(50.0, 0.0)).coherent_echo);
  EXPECT_FALSE(probe.apply(60, false, echo(50.0, 0.0)).coherent_echo);
  EXPECT_TRUE(std::isnan(
      probe.apply(100, false, echo(50.0, 0.0)).estimate.distance_m.value()));
  EXPECT_FALSE(std::isnan(
      probe.apply(101, false, echo(50.0, 0.0)).estimate.distance_m.value()));
  EXPECT_TRUE(std::isnan(
      probe.apply(125, false, echo(50.0, 0.0)).estimate.distance_m.value()));
}

TEST(SpecParser, PlusSeparatorAndEmptySpecs) {
  EXPECT_EQ(parse_fault_spec("stuck:start=5+flap").size(), 2u);
  EXPECT_TRUE(parse_fault_spec("").empty());
  EXPECT_TRUE(parse_fault_spec("none").empty());
}

TEST(SpecParser, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_spec("wobble:start=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("dropout:start"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("dropout:start=abc"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("dropout:bogus=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("bias:prob=0.5"), std::invalid_argument);
}

TEST(SpecParser, IdenticalSchedulesProduceIdenticalStreams) {
  const std::string spec = "dropout:start=0,len=0,prob=0.3;bias:start=20";
  FaultSchedule a = parse_fault_spec(spec, 42);
  FaultSchedule b = parse_fault_spec(spec, 42);
  for (std::int64_t k = 0; k < 100; ++k) {
    const auto ma = a.apply(k, k % 7 == 0, echo(80.0 - 0.1 * static_cast<double>(k), -0.1));
    const auto mb = b.apply(k, k % 7 == 0, echo(80.0 - 0.1 * static_cast<double>(k), -0.1));
    EXPECT_EQ(ma.coherent_echo, mb.coherent_echo) << "k=" << k;
    EXPECT_EQ(ma.estimate.distance_m, mb.estimate.distance_m) << "k=" << k;
  }
}

}  // namespace
}  // namespace safe::fault
