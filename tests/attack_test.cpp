// Tests for the attack models and scheduling.
#include <gtest/gtest.h>

#include <memory>

#include "attack/attack.hpp"
#include "attack/delay_injection.hpp"
#include "attack/dos_jammer.hpp"
#include "attack/window.hpp"
#include "radar/link_budget.hpp"

namespace safe::attack {
namespace {

radar::FmcwParameters waveform() { return radar::bosch_lrr2_parameters(); }

AttackContext context_at(double time_s, double distance_m,
                         const radar::FmcwParameters& wf,
                         double range_rate = -1.0) {
  return AttackContext{
      .time_s = units::Seconds{time_s},
      .true_distance_m = units::Meters{distance_m},
      .true_range_rate_mps = units::MetersPerSecond{range_rate},
      .true_echo_power_w =
          radar::received_echo_power_w(wf, units::Meters{distance_m}, 10.0),
      .waveform = &wf,
  };
}

radar::EchoScene normal_scene(const AttackContext& ctx) {
  radar::EchoScene scene;
  scene.echoes.push_back(radar::EchoComponent{
      .distance_m = ctx.true_distance_m,
      .range_rate_mps = ctx.true_range_rate_mps,
      .power_w = ctx.true_echo_power_w,
  });
  scene.noise_power_w = 4.0e-14;
  return scene;
}

TEST(NoAttack, LeavesSceneUntouched) {
  const auto wf = waveform();
  const auto ctx = context_at(0.0, 100.0, wf);
  radar::EchoScene scene = normal_scene(ctx);
  const radar::EchoScene before = scene;
  EXPECT_FALSE(NoAttack{}.apply(ctx, scene));
  EXPECT_EQ(scene.echoes.size(), before.echoes.size());
  EXPECT_EQ(scene.noise_power_w, before.noise_power_w);
}

TEST(AttackWindow, ContainsIsHalfOpen) {
  const AttackWindow w{.start_s = units::Seconds{182.0},
                       .end_s = units::Seconds{300.0}};
  EXPECT_FALSE(w.contains(units::Seconds{181.999}));
  EXPECT_TRUE(w.contains(units::Seconds{182.0}));
  EXPECT_TRUE(w.contains(units::Seconds{299.999}));
  EXPECT_FALSE(w.contains(units::Seconds{300.0}));
  EXPECT_DOUBLE_EQ(w.duration().value(), 118.0);
}

TEST(ScheduledAttack, ValidatesArguments) {
  EXPECT_THROW(ScheduledAttack(nullptr,
                            AttackWindow{units::Seconds{0.0}, units::Seconds{1.0}}),
               std::invalid_argument);
  EXPECT_THROW(ScheduledAttack(std::make_shared<NoAttack>(),
                               AttackWindow{units::Seconds{5.0}, units::Seconds{5.0}}),
               std::invalid_argument);
}

TEST(ScheduledAttack, FiresOnlyInsideWindow) {
  const auto wf = waveform();
  ScheduledAttack attack(
      std::make_shared<DosJammerAttack>(radar::JammerParameters{}),
      AttackWindow{units::Seconds{182.0}, units::Seconds{300.0}});

  auto ctx = context_at(100.0, 100.0, wf);
  radar::EchoScene scene = normal_scene(ctx);
  const double clean_noise = scene.noise_power_w;
  EXPECT_FALSE(attack.apply(ctx, scene));
  EXPECT_EQ(scene.noise_power_w, clean_noise);  // before window

  ctx.time_s = units::Seconds{200.0};
  EXPECT_TRUE(attack.apply(ctx, scene));
  EXPECT_GT(scene.noise_power_w, clean_noise);  // inside window
}

TEST(ScheduledAttack, NameMentionsInner) {
  const ScheduledAttack attack(std::make_shared<NoAttack>(),
                               AttackWindow{units::Seconds{1.0}, units::Seconds{2.0}});
  EXPECT_NE(attack.name().find("none"), std::string::npos);
}

TEST(DosJammer, RejectsBadParameters) {
  radar::JammerParameters j{};
  j.peak_power_w = 0.0;
  EXPECT_THROW(DosJammerAttack{j}, std::invalid_argument);
}

TEST(DosJammer, AddsEquationTenPower) {
  const auto wf = waveform();
  const auto ctx = context_at(0.0, 100.0, wf);
  radar::EchoScene scene = normal_scene(ctx);
  const double before = scene.noise_power_w;
  DosJammerAttack attack{radar::JammerParameters{}};
  EXPECT_TRUE(attack.apply(ctx, scene));
  EXPECT_NEAR(scene.noise_power_w - before,
              radar::received_jammer_power_w(wf, radar::JammerParameters{},
                                             units::Meters{100.0}),
              1e-20);
}

TEST(DosJammer, LeavesGenuineEchoInScene) {
  const auto wf = waveform();
  const auto ctx = context_at(0.0, 100.0, wf);
  radar::EchoScene scene = normal_scene(ctx);
  DosJammerAttack{radar::JammerParameters{}}.apply(ctx, scene);
  ASSERT_EQ(scene.echoes.size(), 1u);
  EXPECT_DOUBLE_EQ(scene.echoes[0].distance_m.value(), 100.0);
}

TEST(DosJammer, PaperParametersSucceedAtHundredMeters) {
  const DosJammerAttack attack{radar::JammerParameters{}};
  EXPECT_TRUE(attack.succeeds_at(waveform(), units::Meters{100.0}, 10.0));
  EXPECT_FALSE(attack.succeeds_at(waveform(), units::Meters{2.0}, 10.0));
}

TEST(DosJammer, SkipsDegenerateGeometry) {
  const auto wf = waveform();
  auto ctx = context_at(0.0, 100.0, wf);
  ctx.true_distance_m = units::Meters{0.0};
  radar::EchoScene scene;
  scene.noise_power_w = 1.0e-14;
  DosJammerAttack{radar::JammerParameters{}}.apply(ctx, scene);
  EXPECT_DOUBLE_EQ(scene.noise_power_w, 1.0e-14);
}

TEST(DosJammer, MissingWaveformThrows) {
  AttackContext ctx;
  ctx.true_distance_m = units::Meters{50.0};
  radar::EchoScene scene;
  EXPECT_THROW(DosJammerAttack{radar::JammerParameters{}}.apply(ctx, scene),
               std::invalid_argument);
}

TEST(DelayInjection, ValidatesConfig) {
  EXPECT_THROW(DelayInjectionAttack({.extra_delay_s = units::Seconds{0.0}}),
               std::invalid_argument);
  EXPECT_THROW(DelayInjectionAttack({.power_advantage = 0.0}),
               std::invalid_argument);
}

TEST(DelayInjection, DefaultDelayFakesSixMeters) {
  const DelayInjectionAttack attack{DelayInjectionConfig{}};
  EXPECT_NEAR(attack.range_offset().value(), 6.0, 0.01);
}

TEST(DelayInjection, ReplacesEchoWithShiftedCounterfeit) {
  const auto wf = waveform();
  const auto ctx = context_at(190.0, 80.0, wf, -2.5);
  radar::EchoScene scene = normal_scene(ctx);
  DelayInjectionAttack attack{DelayInjectionConfig{}};
  EXPECT_TRUE(attack.apply(ctx, scene));
  ASSERT_EQ(scene.echoes.size(), 1u);
  EXPECT_NEAR(scene.echoes[0].distance_m.value(), 86.0, 0.01);
  EXPECT_DOUBLE_EQ(scene.echoes[0].range_rate_mps.value(), -2.5);
  EXPECT_GT(scene.echoes[0].power_w, ctx.true_echo_power_w);
}

TEST(DelayInjection, NonReplacingModeKeepsBothEchoes) {
  const auto wf = waveform();
  const auto ctx = context_at(190.0, 80.0, wf);
  radar::EchoScene scene = normal_scene(ctx);
  DelayInjectionConfig cfg;
  cfg.replaces_true_echo = false;
  DelayInjectionAttack{cfg}.apply(ctx, scene);
  EXPECT_EQ(scene.echoes.size(), 2u);
}

TEST(DelayInjection, PersistsIntoChallengeSlots) {
  // Realistic attacker (pipeline latency): counterfeit present even though
  // the probe was suppressed. This is what CRA detects.
  const auto wf = waveform();
  const auto ctx = context_at(190.0, 80.0, wf);
  radar::EchoScene scene;
  scene.tx_enabled = false;
  scene.noise_power_w = 4.0e-14;
  DelayInjectionAttack{DelayInjectionConfig{}}.apply(ctx, scene);
  EXPECT_EQ(scene.echoes.size(), 1u);
}

TEST(DelayInjection, FastAdversaryEvadesChallenges) {
  // The paper's future-work adversary mutes during challenges: scene stays
  // silent and CRA cannot see it.
  const auto wf = waveform();
  const auto ctx = context_at(190.0, 80.0, wf);
  radar::EchoScene scene;
  scene.tx_enabled = false;
  scene.noise_power_w = 4.0e-14;
  DelayInjectionConfig cfg;
  cfg.evades_challenges = true;
  DelayInjectionAttack{cfg}.apply(ctx, scene);
  EXPECT_TRUE(scene.echoes.empty());
}

TEST(DelayInjection, CustomDelayScalesOffset) {
  DelayInjectionConfig cfg;
  cfg.extra_delay_s = units::Seconds{8.0e-8};  // twice the default
  const DelayInjectionAttack attack{cfg};
  EXPECT_NEAR(attack.range_offset().value(), 12.0, 0.02);
}

}  // namespace
}  // namespace safe::attack
