// SessionManager lifecycle tests: deterministic token derivation, the hard
// session cap, idle-timeout eviction on a fake clock, and the guarantee
// that an evicted session's pipeline state never leaks into a new session
// opened under the same client id.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/seed.hpp"
#include "serve/session.hpp"
#include "serve/trace_source.hpp"

namespace {

using namespace safe;
using namespace safe::serve;

HelloFrame small_hello(const std::string& client_id,
                       std::uint64_t seed = 7) {
  TraceSpec spec;
  spec.seed = seed;
  spec.horizon_steps = 40;
  spec.attack = core::AttackKind::kDosJammer;
  spec.attack_start_s = units::Seconds{10.0};
  spec.attack_end_s = units::Seconds{40.0};
  return hello_from(spec, client_id);
}

TEST(ServeSession, TokensAreDeterministicPerMasterSeed) {
  SessionManager a(SessionLimits{}, 1234);
  SessionManager b(SessionLimits{}, 1234);
  SessionManager c(SessionLimits{}, 999);
  std::vector<std::uint64_t> tokens_a, tokens_b, tokens_c;
  for (int i = 0; i < 3; ++i) {
    tokens_a.push_back(a.open(small_hello("x"), 0).session->token());
    tokens_b.push_back(b.open(small_hello("x"), 0).session->token());
    tokens_c.push_back(c.open(small_hello("x"), 0).session->token());
  }
  EXPECT_EQ(tokens_a, tokens_b);
  EXPECT_NE(tokens_a, tokens_c);
  // And the sequence matches the documented derivation.
  EXPECT_EQ(tokens_a[0],
            runtime::derive_seed(1234, runtime::SeedStream::kSession, 0));
  EXPECT_EQ(tokens_a[1],
            runtime::derive_seed(1234, runtime::SeedStream::kSession, 1));
}

TEST(ServeSession, RejectsBeyondSessionCap) {
  SessionLimits limits;
  limits.max_sessions = 2;
  SessionManager manager(limits, 1);
  const auto first = manager.open(small_hello("a"), 0);
  const auto second = manager.open(small_hello("b"), 0);
  ASSERT_TRUE(first.session);
  ASSERT_TRUE(second.session);

  const auto third = manager.open(small_hello("c"), 0);
  EXPECT_FALSE(third.session);
  EXPECT_EQ(third.error_code, ErrorCode::kSessionLimit);
  EXPECT_EQ(manager.size(), 2u);
  EXPECT_EQ(manager.counters().rejected, 1u);

  // Closing one frees a slot.
  EXPECT_TRUE(manager.close(first.session->token(), 0));
  EXPECT_TRUE(manager.open(small_hello("c"), 0).session);
}

TEST(ServeSession, RejectsBadVersionAndHorizon) {
  SessionManager manager(SessionLimits{}, 1);
  HelloFrame bad_version = small_hello("v");
  bad_version.protocol_version = 99;
  const auto version_result = manager.open(bad_version, 0);
  EXPECT_FALSE(version_result.session);
  EXPECT_EQ(version_result.error_code, ErrorCode::kUnsupportedVersion);

  HelloFrame bad_horizon = small_hello("h");
  bad_horizon.horizon_steps = 0;
  EXPECT_FALSE(manager.open(bad_horizon, 0).session);

  HelloFrame huge_horizon = small_hello("h2");
  huge_horizon.horizon_steps = SessionLimits{}.max_horizon_steps + 1;
  EXPECT_FALSE(manager.open(huge_horizon, 0).session);
  EXPECT_EQ(manager.size(), 0u);
}

TEST(ServeSession, IdleTimeoutEvictsOnFakeClock) {
  SessionLimits limits;
  limits.idle_timeout_ns = 1000;
  SessionManager manager(limits, 1);
  const auto idle = manager.open(small_hello("idle"), /*now_ns=*/0);
  const auto busy = manager.open(small_hello("busy"), /*now_ns=*/0);
  ASSERT_TRUE(idle.session);
  ASSERT_TRUE(busy.session);

  // Nothing is idle yet.
  EXPECT_TRUE(manager.evict_idle(500).empty());

  // The busy session processes a frame at t=900; the idle one does not.
  const std::vector<MeasurementFrame> trace =
      make_measurement_trace(busy.session->spec());
  busy.session->process(trace[0], /*now_ns=*/900);

  const auto evicted = manager.evict_idle(/*now_ns=*/1500);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].token, idle.session->token());
  EXPECT_EQ(evicted[0].client_id, "idle");
  EXPECT_EQ(manager.size(), 1u);
  EXPECT_EQ(manager.counters().evicted, 1u);
  EXPECT_FALSE(manager.find(idle.session->token()));
  EXPECT_TRUE(manager.find(busy.session->token()));
}

TEST(ServeSession, EvictedStateDoesNotLeakIntoReopenedSession) {
  SessionLimits limits;
  limits.idle_timeout_ns = 1000;
  SessionManager manager(limits, 1);

  // First session under client id "replay" processes half its trace — the
  // DoS window drives its detector and predictors into a non-trivial state.
  const HelloFrame hello = small_hello("replay");
  const auto first = manager.open(hello, 0);
  ASSERT_TRUE(first.session);
  const TraceSpec spec = first.session->spec();
  const std::vector<MeasurementFrame> trace = make_measurement_trace(spec);
  for (std::size_t i = 0; i < trace.size() / 2; ++i) {
    (void)first.session->process(trace[i], 0);
  }
  ASSERT_EQ(manager.evict_idle(2000).size(), 1u);

  // A new session with the same client id must behave as a fresh pipeline:
  // identical, frame for frame, to the offline reference from step 0.
  const auto second = manager.open(hello, 3000);
  ASSERT_TRUE(second.session);
  EXPECT_NE(second.session->token(), first.session->token());
  const std::vector<EstimateFrame> reference = run_offline(spec, trace);
  ASSERT_EQ(reference.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Session::StepOutput out = second.session->process(trace[i], 3000);
    EXPECT_EQ(encode(out.estimate), encode(reference[i])) << "step " << i;
  }
}

TEST(ServeSession, ChallengeSlotsEmitChallengeResults) {
  SessionManager manager(SessionLimits{}, 1);
  const auto result = manager.open(small_hello("challenge"), 0);
  ASSERT_TRUE(result.session);
  const std::vector<MeasurementFrame> trace =
      make_measurement_trace(result.session->spec());
  std::size_t challenge_frames = 0;
  for (const MeasurementFrame& m : trace) {
    const Session::StepOutput out = result.session->process(m, 0);
    if (out.estimate.safe.challenge_slot) {
      ASSERT_TRUE(out.challenge.has_value());
      EXPECT_EQ(out.challenge->step, m.step);
      ++challenge_frames;
    } else {
      EXPECT_FALSE(out.challenge.has_value());
    }
  }
  EXPECT_GT(challenge_frames, 0u);
}

}  // namespace
