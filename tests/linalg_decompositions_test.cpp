// Unit + property tests for LU, Cholesky, and QR decompositions.
#include <gtest/gtest.h>

#include <complex>
#include <random>

#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"

namespace safe::linalg {
namespace {

RMatrix random_matrix(std::size_t n, unsigned seed, double lo = -1.0,
                      double hi = 1.0) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  RMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = dist(rng);
  return m;
}

RMatrix random_spd(std::size_t n, unsigned seed) {
  const RMatrix a = random_matrix(n, seed);
  return a * a.transpose() + RMatrix::scaled_identity(n, 0.5);
}

TEST(Lu, SolvesKnownSystem) {
  RMatrix a{{2.0, 1.0}, {1.0, 3.0}};
  const RVector x = solve(a, RVector{3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, RejectsNonSquare) {
  EXPECT_THROW(LuDecomposition<double>(RMatrix(2, 3)), std::invalid_argument);
}

TEST(Lu, DetectsSingularMatrix) {
  RMatrix a{{1.0, 2.0}, {2.0, 4.0}};
  LuDecomposition<double> lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_THROW(lu.solve(RVector{1.0, 1.0}), std::domain_error);
  EXPECT_EQ(lu.determinant(), 0.0);
}

TEST(Lu, DeterminantOfTriangularMatrix) {
  RMatrix a{{2.0, 5.0, 1.0}, {0.0, 3.0, 7.0}, {0.0, 0.0, -4.0}};
  EXPECT_NEAR(determinant(a), -24.0, 1e-10);
}

TEST(Lu, DeterminantSignTracksRowSwaps) {
  // Permutation matrix with a single swap has determinant -1.
  RMatrix p{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(determinant(p), -1.0, 1e-14);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  const RMatrix a = random_matrix(5, 42);
  const RMatrix inv = inverse(a);
  EXPECT_LT(max_abs(a * inv - RMatrix::identity(5)), 1e-10);
}

TEST(Lu, SolveSizeMismatchThrows) {
  LuDecomposition<double> lu(RMatrix::identity(3));
  EXPECT_THROW(lu.solve(RVector(2)), std::invalid_argument);
}

TEST(Lu, MatrixRhsSolve) {
  const RMatrix a = random_matrix(4, 7);
  const RMatrix b = random_matrix(4, 8);
  LuDecomposition<double> lu(a);
  const RMatrix x = lu.solve(b);
  EXPECT_LT(max_abs(a * x - b), 1e-10);
}

TEST(Lu, ComplexSystemSolve) {
  using C = std::complex<double>;
  CMatrix a{{C{2.0, 1.0}, C{0.0, -1.0}}, {C{1.0, 0.0}, C{3.0, 2.0}}};
  CVector b{C{1.0, 0.0}, C{0.0, 1.0}};
  const CVector x = solve(a, b);
  const CVector r = a * x - b;
  EXPECT_LT(norm2(r), 1e-12);
}

TEST(Cholesky, FactorsKnownSpdMatrix) {
  RMatrix a{{4.0, 2.0}, {2.0, 3.0}};
  CholeskyDecomposition<double> chol(a);
  ASSERT_TRUE(chol.valid());
  const RMatrix l = chol.lower();
  EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  RMatrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyDecomposition<double>(a).valid());
  EXPECT_FALSE(is_positive_definite(a));
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(CholeskyDecomposition<double>(RMatrix(2, 3)),
               std::invalid_argument);
}

TEST(Cholesky, SolveMatchesLu) {
  const RMatrix a = random_spd(6, 3);
  const RVector b{1.0, -2.0, 3.0, 0.5, 0.0, 1.5};
  CholeskyDecomposition<double> chol(a);
  ASSERT_TRUE(chol.valid());
  const RVector x_chol = chol.solve(b);
  const RVector x_lu = solve(a, b);
  EXPECT_LT(norm2(x_chol - x_lu), 1e-9);
}

TEST(Cholesky, SolveOnInvalidThrows) {
  RMatrix a{{-1.0}};
  CholeskyDecomposition<double> chol(a);
  EXPECT_THROW(chol.solve(RVector{1.0}), std::domain_error);
}

TEST(Cholesky, ComplexHermitianSpd) {
  using C = std::complex<double>;
  CMatrix a{{C{2.0, 0.0}, C{0.5, 0.5}}, {C{0.5, -0.5}, C{2.0, 0.0}}};
  CholeskyDecomposition<C> chol(a);
  ASSERT_TRUE(chol.valid());
  const CMatrix l = chol.lower();
  EXPECT_LT(max_abs(l * l.adjoint() - a), 1e-12);
}

TEST(Qr, FactorsTallMatrix) {
  RMatrix a{{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}};
  QrDecomposition<double> qr(a);
  // Q orthonormal.
  EXPECT_LT(max_abs(qr.q().adjoint() * qr.q() - RMatrix::identity(3)), 1e-12);
  // Reconstruction.
  EXPECT_LT(max_abs(qr.q() * qr.r() - a), 1e-12);
  // R upper triangular below diagonal.
  EXPECT_NEAR(qr.r()(1, 0), 0.0, 1e-12);
  EXPECT_NEAR(qr.r()(2, 0), 0.0, 1e-12);
  EXPECT_NEAR(qr.r()(2, 1), 0.0, 1e-12);
}

TEST(Qr, RejectsWideMatrix) {
  EXPECT_THROW(QrDecomposition<double>(RMatrix(2, 3)), std::invalid_argument);
}

TEST(Qr, LeastSquaresLineFit) {
  // Fit y = 2x + 1 exactly.
  RMatrix a{{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}};
  RVector y{1.0, 3.0, 5.0, 7.0};
  const RVector beta = least_squares(a, y);
  EXPECT_NEAR(beta[0], 1.0, 1e-12);
  EXPECT_NEAR(beta[1], 2.0, 1e-12);
}

TEST(Qr, LeastSquaresMinimizesResidualAgainstPerturbations) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  RMatrix a(8, 3);
  RVector y(8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = dist(rng);
    y[i] = dist(rng);
  }
  const RVector beta = least_squares(a, y);
  const double base = norm2(a * beta - y);
  for (std::size_t j = 0; j < 3; ++j) {
    RVector perturbed = beta;
    perturbed[j] += 1e-3;
    EXPECT_GE(norm2(a * perturbed - y) + 1e-12, base);
  }
}

TEST(Qr, RankOfRankDeficientMatrix) {
  RMatrix a{{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  EXPECT_EQ(QrDecomposition<double>(a).rank(), 1u);
}

TEST(Qr, SolveRankDeficientThrows) {
  RMatrix a{{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  QrDecomposition<double> qr(a);
  EXPECT_THROW(qr.solve_least_squares(RVector{1.0, 1.0, 1.0}),
               std::domain_error);
}

// Property sweeps over random seeds.
class DecompositionProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(DecompositionProperty, LuSolveResidualIsSmall) {
  const std::size_t n = 3 + GetParam() % 6;
  const RMatrix a = random_matrix(n, GetParam() + 100);
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> dist(-5.0, 5.0);
  RVector b(n);
  for (auto& bi : b) bi = dist(rng);
  const RVector x = solve(a, b);
  EXPECT_LT(norm2(a * x - b), 1e-9 * (1.0 + norm2(b)));
}

TEST_P(DecompositionProperty, CholeskyReconstructsSpd) {
  const std::size_t n = 2 + GetParam() % 7;
  const RMatrix a = random_spd(n, GetParam() + 500);
  CholeskyDecomposition<double> chol(a);
  ASSERT_TRUE(chol.valid());
  const RMatrix l = chol.lower();
  EXPECT_LT(max_abs(l * l.transpose() - a), 1e-10 * (1.0 + max_abs(a)));
}

TEST_P(DecompositionProperty, QrReconstructionAndOrthogonality) {
  const std::size_t m = 4 + GetParam() % 5;
  const std::size_t n = 2 + GetParam() % 3;
  std::mt19937 rng(GetParam() + 900);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  RMatrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
  QrDecomposition<double> qr(a);
  EXPECT_LT(max_abs(qr.q() * qr.r() - a), 1e-11);
  EXPECT_LT(max_abs(qr.q().adjoint() * qr.q() - RMatrix::identity(m)), 1e-11);
}

TEST_P(DecompositionProperty, DeterminantIsMultiplicative) {
  const std::size_t n = 2 + GetParam() % 4;
  const RMatrix a = random_matrix(n, GetParam() + 1300);
  const RMatrix b = random_matrix(n, GetParam() + 1400);
  const double lhs = determinant(a * b);
  const double rhs = determinant(a) * determinant(b);
  EXPECT_NEAR(lhs, rhs, 1e-8 * (1.0 + std::abs(rhs)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompositionProperty,
                         ::testing::Range(0u, 12u));

}  // namespace
}  // namespace safe::linalg
