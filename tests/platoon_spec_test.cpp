// Platoon spec mini-language: grammar acceptance/rejection and the
// checker/builder contract (check_platoon_spec and parse_platoon_spec share
// one implementation and must always agree).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "platoon/spec.hpp"

namespace safe::platoon {
namespace {

TEST(PlatoonSpec, EmptySpecIsThePairDefaults) {
  const PlatoonOptions o = parse_platoon_spec("");
  EXPECT_EQ(o.size, 2u);
  EXPECT_EQ(o.attacked, 1u);
  EXPECT_EQ(o.controller, core::FollowerController::kAccHierarchy);
  EXPECT_TRUE(o.detector_spec.empty());
  EXPECT_TRUE(o.fault_spec.empty());
  EXPECT_EQ(o.initial_gap_m, units::Meters{100.0});
  EXPECT_TRUE(o.multi_target);
  EXPECT_FALSE(o.cutin.enabled());
}

TEST(PlatoonSpec, ParsesEveryKey) {
  const PlatoonOptions o = parse_platoon_spec(
      "n=8,attacked=3,controller=idm,gap=80,multi_target=off,rcs_scale=0.5");
  EXPECT_EQ(o.size, 8u);
  EXPECT_EQ(o.attacked, 3u);
  EXPECT_EQ(o.controller, core::FollowerController::kIdm);
  EXPECT_EQ(o.initial_gap_m, units::Meters{80.0});
  EXPECT_FALSE(o.multi_target);
  EXPECT_DOUBLE_EQ(o.second_target_rcs_scale, 0.5);
}

TEST(PlatoonSpec, QuotedSubSpecsKeepTheirCommas) {
  const PlatoonOptions o = parse_platoon_spec(
      "n=4,detector=\"chi2:threshold=9.21,window=16\","
      "fault=\"dropout:start=60,len=12\"");
  EXPECT_EQ(o.detector_spec, "chi2:threshold=9.21,window=16");
  EXPECT_EQ(o.fault_spec, "dropout:start=60,len=12");
}

TEST(PlatoonSpec, NoneSubSpecsMeanInherit) {
  const PlatoonOptions o = parse_platoon_spec("n=4,detector=none,fault=none");
  EXPECT_TRUE(o.detector_spec.empty());
  EXPECT_TRUE(o.fault_spec.empty());
}

TEST(PlatoonSpec, CutInEventParses) {
  const PlatoonOptions o = parse_platoon_spec(
      "n=6,cutin_into=3,cutin_start=120,cutin_len=30,cutin_frac=0.4");
  ASSERT_TRUE(o.cutin.enabled());
  EXPECT_EQ(o.cutin.into, 3u);
  EXPECT_EQ(o.cutin.start_s, units::Seconds{120.0});
  EXPECT_EQ(o.cutin.duration_s, units::Seconds{30.0});
  EXPECT_DOUBLE_EQ(o.cutin.gap_fraction, 0.4);
}

TEST(PlatoonSpec, RejectsMalformedSpecs) {
  const char* const kBad[] = {
      "n",                        // no '='
      "n=",                       // empty value
      "=2",                       // empty key
      "n=2,n=4",                  // duplicate key
      "warp=9",                   // unknown key
      "n=1",                      // below minimum size
      "n=65",                     // above maximum size
      "n=two",                    // not a number
      "n=-3",                     // negative count
      "n=4,attacked=0",           // leader cannot be attacked
      "n=4,attacked=4",           // index past the last follower
      "controller=plaid",         // unknown controller
      "gap=0",                    // non-positive gap
      "gap=-5",                   //
      "gap=nan",                  // NaN guard
      "gap=1e9",                  // beyond the sane ceiling
      "rcs_scale=0",              // (0, 1] violated
      "rcs_scale=1.5",            //
      "multi_target=maybe",       // not a bool
      "n=4,detector=warpdrive",   // invalid detect sub-spec
      "n=4,fault=warp:x=1",       // invalid fault sub-spec
      "cutin_start=10",           // cutin_* without cutin_into
      "n=4,cutin_into=2",         // cutin_into without start/len
      "n=4,cutin_into=9,cutin_start=1,cutin_len=1",  // into out of range
      "n=4,cutin_into=2,cutin_start=-1,cutin_len=1",
      "n=4,cutin_into=2,cutin_start=1,cutin_len=0",
      "n=4,cutin_into=2,cutin_start=1,cutin_len=1,cutin_frac=1",
      "n=\"2",                    // unterminated quote
  };
  for (const char* spec : kBad) {
    EXPECT_THROW((void)parse_platoon_spec(spec), std::invalid_argument)
        << "accepted: " << spec;
    EXPECT_FALSE(check_platoon_spec(spec).ok) << "checker accepted: " << spec;
    EXPECT_FALSE(check_platoon_spec(spec).message.empty()) << spec;
  }
}

TEST(PlatoonSpec, CheckerAndBuilderAgree) {
  const char* const kSpecs[] = {
      "",
      "n=2",
      "n=8,attacked=3",
      "n=4,attacked=1,controller=idm,gap=80",
      "n=64,attacked=63",
      "n=6,cutin_into=3,cutin_start=120,cutin_len=30",
      "n=4,detector=\"fusion:members=cra+chi2,quorum=1\"",
      "bogus",
      "n=4,attacked=7",
      "n=4,,attacked=2",
      "n=0x8",
      " n=4",
  };
  for (const char* spec : kSpecs) {
    const SpecCheck check = check_platoon_spec(spec);
    bool threw = false;
    try {
      (void)parse_platoon_spec(spec);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    EXPECT_EQ(check.ok, !threw) << "disagree on: " << spec;
  }
}

TEST(PlatoonSpec, HelpMentionsEveryKey) {
  const std::string help = platoon_spec_help();
  for (const char* key : {"n", "attacked", "controller", "detector", "fault",
                          "gap", "multi_target", "rcs_scale", "cutin_into",
                          "cutin_start", "cutin_len", "cutin_frac"}) {
    EXPECT_NE(help.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace safe::platoon
