// Tests for the Jacobi Hermitian eigensolver.
#include "linalg/eigen_hermitian.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <random>

#include "linalg/matrix.hpp"

namespace safe::linalg {
namespace {

using C = std::complex<double>;

RMatrix random_symmetric(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  RMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = dist(rng);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

CMatrix random_hermitian(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = C{dist(rng), 0.0};
    for (std::size_t j = i + 1; j < n; ++j) {
      const C v{dist(rng), dist(rng)};
      m(i, j) = v;
      m(j, i) = std::conj(v);
    }
  }
  return m;
}

TEST(EigenHermitian, DiagonalMatrixEigenvaluesSorted) {
  RMatrix a{{3.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 2.0}};
  const auto eig = eigen_hermitian(a);
  ASSERT_TRUE(eig.converged);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], 3.0, 1e-12);
}

TEST(EigenHermitian, Known2x2Symmetric) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  RMatrix a{{2.0, 1.0}, {1.0, 2.0}};
  const auto eig = eigen_hermitian(a);
  ASSERT_TRUE(eig.converged);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-12);
}

TEST(EigenHermitian, Known2x2Hermitian) {
  // [[2, i],[-i, 2]] has eigenvalues 1 and 3.
  CMatrix a{{C{2.0, 0.0}, C{0.0, 1.0}}, {C{0.0, -1.0}, C{2.0, 0.0}}};
  const auto eig = eigen_hermitian(a);
  ASSERT_TRUE(eig.converged);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-12);
}

TEST(EigenHermitian, RejectsNonSquare) {
  EXPECT_THROW(eigen_hermitian(RMatrix(2, 3)), std::invalid_argument);
}

TEST(EigenHermitian, ZeroMatrixConvergesTrivially) {
  const auto eig = eigen_hermitian(RMatrix(4, 4));
  EXPECT_TRUE(eig.converged);
  EXPECT_EQ(eig.sweeps, 0u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(eig.eigenvalues[i], 0.0);
}

TEST(EigenHermitian, TraceEqualsEigenvalueSum) {
  const RMatrix a = random_symmetric(7, 21);
  const auto eig = eigen_hermitian(a);
  double trace = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < 7; ++i) {
    trace += a(i, i);
    sum += eig.eigenvalues[i];
  }
  EXPECT_NEAR(trace, sum, 1e-10);
}

class EigenProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(EigenProperty, RealSymmetricReconstruction) {
  const std::size_t n = 2 + GetParam() % 9;
  const RMatrix a = random_symmetric(n, GetParam() + 37);
  const auto eig = eigen_hermitian(a);
  ASSERT_TRUE(eig.converged);
  const RMatrix d = RMatrix::from_diagonal(eig.eigenvalues);
  const RMatrix recon =
      eig.eigenvectors * d * eig.eigenvectors.adjoint();
  EXPECT_LT(max_abs(recon - a), 1e-10 * (1.0 + max_abs(a)));
}

TEST_P(EigenProperty, ComplexHermitianReconstruction) {
  const std::size_t n = 2 + GetParam() % 9;
  const CMatrix a = random_hermitian(n, GetParam() + 91);
  const auto eig = eigen_hermitian(a);
  ASSERT_TRUE(eig.converged);
  CMatrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) d(i, i) = C{eig.eigenvalues[i], 0.0};
  const CMatrix recon = eig.eigenvectors * d * eig.eigenvectors.adjoint();
  EXPECT_LT(max_abs(recon - a), 1e-10 * (1.0 + max_abs(a)));
}

TEST_P(EigenProperty, EigenvectorsOrthonormal) {
  const std::size_t n = 2 + GetParam() % 9;
  const CMatrix a = random_hermitian(n, GetParam() + 173);
  const auto eig = eigen_hermitian(a);
  ASSERT_TRUE(eig.converged);
  const CMatrix gram = eig.eigenvectors.adjoint() * eig.eigenvectors;
  EXPECT_LT(max_abs(gram - CMatrix::identity(n)), 1e-11);
}

TEST_P(EigenProperty, EigenvaluesSortedAscending) {
  const std::size_t n = 3 + GetParam() % 8;
  const CMatrix a = random_hermitian(n, GetParam() + 211);
  const auto eig = eigen_hermitian(a);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    EXPECT_LE(eig.eigenvalues[i], eig.eigenvalues[i + 1] + 1e-12);
  }
}

TEST_P(EigenProperty, ResidualPerEigenpairIsSmall) {
  const std::size_t n = 2 + GetParam() % 6;
  const CMatrix a = random_hermitian(n, GetParam() + 311);
  const auto eig = eigen_hermitian(a);
  for (std::size_t k = 0; k < n; ++k) {
    const CVector v = eig.eigenvectors.col(k);
    const CVector r = a * v - C{eig.eigenvalues[k], 0.0} * v;
    EXPECT_LT(norm2(r), 1e-10 * (1.0 + std::abs(eig.eigenvalues[k])));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EigenProperty, ::testing::Range(0u, 10u));

}  // namespace
}  // namespace safe::linalg
