// Tests for the FMCW waveform equations and link budgets (Eqs. 5-11).
#include <gtest/gtest.h>

#include <cmath>

#include "radar/fmcw.hpp"
#include "radar/link_budget.hpp"
#include "units/units.hpp"

namespace safe::radar {
namespace {

namespace units = safe::units;
using units::Meters;
using units::MetersPerSecond;

TEST(FmcwParameters, BoschLrr2Defaults) {
  const FmcwParameters p = bosch_lrr2_parameters();
  EXPECT_DOUBLE_EQ(p.carrier_frequency_hz.value(), 77.0e9);
  EXPECT_DOUBLE_EQ(p.sweep_bandwidth_hz.value(), 150.0e6);
  EXPECT_DOUBLE_EQ(p.sweep_time_s.value(), 2.0e-3);
  EXPECT_DOUBLE_EQ(p.wavelength_m.value(), 3.89e-3);
  EXPECT_DOUBLE_EQ(p.tx_power_w, 10.0e-3);
  EXPECT_DOUBLE_EQ(p.antenna_gain_dbi.value(), 28.0);
  EXPECT_DOUBLE_EQ(p.min_range_m.value(), 2.0);
  EXPECT_DOUBLE_EQ(p.max_range_m.value(), 200.0);
}

TEST(FmcwParameters, ValidationRejectsBadValues) {
  FmcwParameters p = bosch_lrr2_parameters();
  p.sweep_bandwidth_hz = units::Hertz{0.0};
  EXPECT_THROW(validate_parameters(p), std::invalid_argument);

  p = bosch_lrr2_parameters();
  p.tx_power_w = -1.0;
  EXPECT_THROW(validate_parameters(p), std::invalid_argument);

  p = bosch_lrr2_parameters();
  p.max_range_m = Meters{1.0};  // below min_range
  EXPECT_THROW(validate_parameters(p), std::invalid_argument);
}

TEST(BeatFrequencies, StationaryTargetHasSymmetricBeats) {
  const FmcwParameters p = bosch_lrr2_parameters();
  const BeatFrequencies b =
      beat_frequencies(p, Meters{100.0}, MetersPerSecond{0.0});
  EXPECT_DOUBLE_EQ(b.up_hz.value(), b.down_hz.value());
  // Range term: (2 * 100 / c) * (150e6 / 2e-3) = 50.03 kHz.
  EXPECT_NEAR(b.up_hz.value(),
              2.0 * 100.0 / units::kSpeedOfLightMps * 150.0e6 / 2.0e-3, 1e-6);
}

TEST(BeatFrequencies, RecedingTargetShiftsBeatsApart) {
  const FmcwParameters p = bosch_lrr2_parameters();
  const BeatFrequencies b =
      beat_frequencies(p, Meters{100.0}, MetersPerSecond{5.0});
  // Receding (positive range rate): up beat decreases, down beat increases.
  EXPECT_LT(b.up_hz, b.down_hz);
  EXPECT_NEAR((b.down_hz - b.up_hz).value(), 4.0 * 5.0 / p.wavelength_m.value(),
              1e-9);
}

TEST(BeatFrequencies, NegativeDistanceThrows) {
  EXPECT_THROW(
      beat_frequencies(bosch_lrr2_parameters(), Meters{-1.0},
                       MetersPerSecond{0.0}),
      std::invalid_argument);
}

TEST(BeatFrequencies, RoundTripThroughInverseMap) {
  const FmcwParameters p = bosch_lrr2_parameters();
  for (const double d : {2.0, 10.0, 55.5, 100.0, 200.0}) {
    for (const double v : {-10.0, -1.5, 0.0, 0.3, 8.0}) {
      const RangeRate rr = range_rate_from_beats(
          p, beat_frequencies(p, Meters{d}, MetersPerSecond{v}));
      EXPECT_NEAR(rr.distance_m.value(), d, 1e-9);
      EXPECT_NEAR(rr.range_rate_mps.value(), v, 1e-9);
    }
  }
}

TEST(SpoofedRange, SixMetersNeedsFortyNanoseconds) {
  // The paper's delay attack adds 6 m; round-trip delay = 2*6/c = 40 ns.
  const units::Seconds tau = injection_delay_for_offset(Meters{6.0});
  EXPECT_NEAR(tau.value(), 2.0 * 6.0 / units::kSpeedOfLightMps, 1e-15);
  EXPECT_NEAR(spoofed_range_offset(tau).value(), 6.0, 1e-9);
}

TEST(LinkBudget, EchoPowerFallsWithFourthPowerOfRange) {
  const FmcwParameters p = bosch_lrr2_parameters();
  const double p50 = received_echo_power_w(p, Meters{50.0}, 10.0);
  const double p100 = received_echo_power_w(p, Meters{100.0}, 10.0);
  EXPECT_NEAR(p50 / p100, 16.0, 1e-9);
}

TEST(LinkBudget, EchoPowerScalesLinearlyWithRcs) {
  const FmcwParameters p = bosch_lrr2_parameters();
  EXPECT_NEAR(received_echo_power_w(p, Meters{80.0}, 20.0) /
                  received_echo_power_w(p, Meters{80.0}, 10.0),
              2.0, 1e-12);
}

TEST(LinkBudget, EchoPowerMagnitudeIsPlausible) {
  // At 100 m with sigma = 10 m^2 the LRR2-class budget lands in the
  // picowatt regime (hand computation: ~3e-12 W).
  const double pr =
      received_echo_power_w(bosch_lrr2_parameters(), Meters{100.0}, 10.0);
  EXPECT_GT(pr, 1.0e-13);
  EXPECT_LT(pr, 1.0e-10);
}

TEST(LinkBudget, GeometryValidation) {
  const FmcwParameters p = bosch_lrr2_parameters();
  EXPECT_THROW(received_echo_power_w(p, Meters{0.0}, 10.0),
               std::invalid_argument);
  EXPECT_THROW(received_echo_power_w(p, Meters{10.0}, -1.0),
               std::invalid_argument);
  EXPECT_THROW(received_jammer_power_w(p, JammerParameters{}, Meters{-5.0}),
               std::invalid_argument);
}

TEST(LinkBudget, JammerPowerFallsWithSquareOfRange) {
  const FmcwParameters p = bosch_lrr2_parameters();
  const JammerParameters j{};
  const double p50 = received_jammer_power_w(p, j, Meters{50.0});
  const double p100 = received_jammer_power_w(p, j, Meters{100.0});
  EXPECT_NEAR(p50 / p100, 4.0, 1e-9);
}

TEST(LinkBudget, JammerParameterValidation) {
  const FmcwParameters p = bosch_lrr2_parameters();
  JammerParameters j{};
  j.peak_power_w = 0.0;
  EXPECT_THROW(received_jammer_power_w(p, j, Meters{100.0}),
               std::invalid_argument);
}

TEST(LinkBudget, PaperJammerDefeatsRadarAtHundredMeters) {
  // Section 6.2: P_J = 100 mW, G_J = 10 dBi, B_J = 155 MHz, L_J = 0.10 dB
  // jams the follower's radar => signal-to-jammer ratio < 1.
  const FmcwParameters radar = bosch_lrr2_parameters();
  const JammerParameters jammer{};
  EXPECT_LT(signal_to_jammer_ratio(radar, jammer, Meters{100.0}, 10.0), 1.0);
  EXPECT_TRUE(jamming_succeeds(radar, jammer, Meters{100.0}, 10.0));
}

TEST(LinkBudget, JammingFailsAtVeryShortRange) {
  // Echo power grows ~d^-4 vs jammer ~d^-2: close in, the echo wins.
  const FmcwParameters radar = bosch_lrr2_parameters();
  const JammerParameters jammer{};
  EXPECT_FALSE(jamming_succeeds(radar, jammer, Meters{2.0}, 10.0));
}

TEST(LinkBudget, SignalToJammerRatioIsConsistent) {
  const FmcwParameters radar = bosch_lrr2_parameters();
  const JammerParameters jammer{};
  const double ratio =
      signal_to_jammer_ratio(radar, jammer, Meters{60.0}, 10.0);
  EXPECT_NEAR(ratio,
              received_echo_power_w(radar, Meters{60.0}, 10.0) /
                  received_jammer_power_w(radar, jammer, Meters{60.0}),
              1e-18);
}

TEST(LinkBudget, ThermalNoiseFloorMagnitude) {
  // kTBF over the 1 MHz dechirped baseband with F = 10 dB: ~4e-14 W.
  const double n = thermal_noise_power_w(bosch_lrr2_parameters());
  EXPECT_GT(n, 1.0e-14);
  EXPECT_LT(n, 1.0e-13);
}

TEST(LinkBudget, EchoExceedsThermalNoiseAcrossSpecifiedRange) {
  // The radar is usable over its whole 2-200 m window: the echo from a
  // 10 m^2 target clears the baseband thermal floor everywhere.
  const FmcwParameters p = bosch_lrr2_parameters();
  const double floor = thermal_noise_power_w(p);
  for (const double d : {2.0, 50.0, 100.0, 150.0, 200.0}) {
    EXPECT_GT(received_echo_power_w(p, Meters{d}, 10.0), floor) << "range " << d;
  }
}

TEST(Units, MphConversionRoundTrip) {
  EXPECT_NEAR(units::mph_to_mps(65.0), 29.0576, 1e-4);
  EXPECT_NEAR(units::mps_to_mph(units::mph_to_mps(42.0)), 42.0, 1e-12);
}

TEST(Units, DbRoundTrip) {
  EXPECT_NEAR(units::db_to_linear(10.0), 10.0, 1e-12);
  EXPECT_NEAR(units::db_to_linear(28.0), 630.957, 1e-3);
  EXPECT_NEAR(units::linear_to_db(units::db_to_linear(-3.3)), -3.3, 1e-12);
}

// Crossover sweep: jamming succeeds beyond some range, fails below it.
class JammerCrossover : public ::testing::TestWithParam<double> {};

TEST_P(JammerCrossover, MonotoneRatioInRange) {
  const FmcwParameters radar = bosch_lrr2_parameters();
  const JammerParameters jammer{};
  const double d = GetParam();
  const double near_ratio =
      signal_to_jammer_ratio(radar, jammer, Meters{d}, 10.0);
  const double far_ratio =
      signal_to_jammer_ratio(radar, jammer, Meters{d * 1.5}, 10.0);
  EXPECT_GT(near_ratio, far_ratio);  // ratio decays with distance
}

INSTANTIATE_TEST_SUITE_P(Ranges, JammerCrossover,
                         ::testing::Values(2.0, 5.0, 10.0, 25.0, 50.0, 100.0,
                                           130.0));

}  // namespace
}  // namespace safe::radar
