// Campaign engine x platoon subsystem: the platoon grid axis, the platoon
// columns of TrialRecord/to_jsonl, SummaryAccumulator merge semantics for
// the propagation aggregates, and --jobs byte-invariance of platoon trials.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/campaign.hpp"
#include "runtime/sink.hpp"
#include "runtime/spec.hpp"

namespace safe::runtime {
namespace {

CampaignSpec platoon_spec() {
  CampaignSpec spec = parse_campaign_spec(
      "trials = 8; seed = 7; horizon = 60\n"
      "attack = delay; onset = 20\n"
      "estimator = fft\n"
      "platoon = none | \"n=4,attacked=2\"");
  return spec;
}

TEST(PlatoonCampaign, SpecKeyFormsAGridAxis) {
  const CampaignSpec spec = platoon_spec();
  ASSERT_EQ(spec.platoon_specs.size(), 2u);
  EXPECT_EQ(spec.platoon_specs[0], "");  // `none` normalizes to empty
  EXPECT_EQ(spec.platoon_specs[1], "n=4,attacked=2");
  EXPECT_EQ(spec.grid_cells(), 2u);

  const Campaign campaign(spec);
  for (std::uint64_t t = 0; t < 4; ++t) {
    TrialRecord r;
    const core::ScenarioOptions o = campaign.expand(t, r);
    EXPECT_EQ(o.platoon_spec, spec.platoon_specs[t % 2]) << t;
    EXPECT_EQ(r.platoon_spec, o.platoon_spec) << t;
  }
}

TEST(PlatoonCampaign, SpecParserRejectsBadPlatoonValuesAtParseTime) {
  EXPECT_THROW((void)parse_campaign_spec("platoon = \"n=4,attacked=9\""),
               std::invalid_argument);
  EXPECT_THROW((void)parse_campaign_spec("platoon = bogus"),
               std::invalid_argument);
}

TEST(PlatoonCampaign, AppendingThePlatoonAxisPreservesExistingCells) {
  // The platoon axis unravels last: specs without one must keep their
  // trial-to-parameter mapping when it is added.
  CampaignSpec without = parse_campaign_spec(
      "trials = 6; seed = 3; attack = none | dos | delay; estimator = fft");
  CampaignSpec with = without;
  with.platoon_specs = {""};

  const Campaign a(without);
  const Campaign b(with);
  for (std::uint64_t t = 0; t < 6; ++t) {
    TrialRecord ra;
    TrialRecord rb;
    const core::ScenarioOptions oa = a.expand(t, ra);
    const core::ScenarioOptions ob = b.expand(t, rb);
    EXPECT_EQ(oa.attack, ob.attack) << t;
    EXPECT_EQ(oa.seed, ob.seed) << t;
  }
}

TEST(PlatoonCampaign, JsonlCarriesThePlatoonColumns) {
  TrialRecord r;
  r.platoon_spec = "n=4,attacked=2";
  r.platoon_size = 4;
  r.attacked_index = 2;
  r.shock_depth = 3;
  r.linf_amplification = 1.25;
  r.safe_stop_vehicles = 1;
  r.detected_vehicles = 2;
  const std::string line = to_jsonl(r);
  EXPECT_NE(line.find("\"platoon\":\"n=4,attacked=2\""), std::string::npos);
  EXPECT_NE(line.find("\"platoon_size\":4"), std::string::npos);
  EXPECT_NE(line.find("\"attacked_index\":2"), std::string::npos);
  EXPECT_NE(line.find("\"shock_depth\":3"), std::string::npos);
  EXPECT_NE(line.find("\"linf_amp\":1.25"), std::string::npos);
  EXPECT_NE(line.find("\"safe_stop_vehicles\":1"), std::string::npos);
  EXPECT_NE(line.find("\"detected_vehicles\":2"), std::string::npos);
  // `error` stays the terminal key (tooling relies on it).
  const std::string tail = "\"error\":\"\"}";
  EXPECT_EQ(line.find(tail), line.size() - tail.size());
}

std::vector<TrialRecord> synthetic_platoon_records() {
  std::vector<TrialRecord> records;
  for (std::uint64_t t = 0; t < 10; ++t) {
    TrialRecord r;
    r.trial_id = t;
    if (t % 2 == 1) {  // odd trials are platoon trials
      r.platoon_size = 4;
      r.attacked_index = 1;
      r.shock_depth = t % 3;
      r.linf_amplification = 1.0 + 0.1 * static_cast<double>(t);
      r.safe_stop_vehicles = t % 2;
      r.detected_vehicles = 1;
    }
    r.min_gap_m = units::Meters{4.0 + static_cast<double>(t)};
    records.push_back(r);
  }
  return records;
}

TEST(PlatoonCampaign, SummaryMergeIsShardOrderIndependent) {
  const std::vector<TrialRecord> records = synthetic_platoon_records();

  SummaryAccumulator sequential;
  for (const TrialRecord& r : records) sequential.add(r);

  // Reverse insertion order, interleaved shards, merged out of order: the
  // finalize() sort must erase every trace of the sharding.
  SummaryAccumulator shard_a;
  SummaryAccumulator shard_b;
  SummaryAccumulator shard_c;
  for (std::size_t i = 0; i < records.size(); ++i) {
    (i % 3 == 0   ? shard_a
     : i % 3 == 1 ? shard_b
                  : shard_c)
        .add(records[records.size() - 1 - i]);
  }
  SummaryAccumulator merged;
  merged.merge(shard_b);
  merged.merge(shard_c);
  merged.merge(shard_a);

  const CampaignSummary s = sequential.finalize();
  const CampaignSummary m = merged.finalize();
  EXPECT_EQ(format_summary(s), format_summary(m));
  EXPECT_EQ(m.platoon_trials, 5u);
  EXPECT_EQ(m.shock_depth_max, 2u);
  EXPECT_EQ(m.safe_stop_vehicles_total, 5u);
  EXPECT_EQ(m.detected_vehicles_total, 5u);
  EXPECT_DOUBLE_EQ(m.linf_amplification_max, 1.9);
  EXPECT_DOUBLE_EQ(m.shock_depth_mean, (1 + 0 + 2 + 1 + 0) / 5.0);
}

TEST(PlatoonCampaign, ZeroTrialSummaryHasNoPlatoonBlock) {
  const SummaryAccumulator empty;
  const CampaignSummary s = empty.finalize();
  EXPECT_EQ(s.trials, 0u);
  EXPECT_EQ(s.platoon_trials, 0u);
  EXPECT_DOUBLE_EQ(s.shock_depth_mean, 0.0);
  EXPECT_DOUBLE_EQ(s.linf_amplification_max, 0.0);
  EXPECT_EQ(format_summary(s).find("platoon"), std::string::npos);
}

TEST(PlatoonCampaign, PairOnlySummaryHasNoPlatoonBlock) {
  SummaryAccumulator acc;
  TrialRecord r;
  r.min_gap_m = units::Meters{5.0};
  acc.add(r);
  EXPECT_EQ(format_summary(acc.finalize()).find("platoon"),
            std::string::npos);
}

std::string run_jsonl(const CampaignSpec& spec, std::size_t jobs) {
  std::ostringstream out;
  JsonlWriter writer(out);
  std::vector<TrialSink*> sinks{&writer};
  (void)Campaign(spec).run(jobs, sinks);
  return out.str();
}

TEST(PlatoonCampaign, PlatoonTrialsAreByteIdenticalAcrossJobCounts) {
  const CampaignSpec spec = platoon_spec();
  const std::string serial = run_jsonl(spec, 1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(std::count(serial.begin(), serial.end(), '\n'), 8);
  // Platoon trials really ran (size stamped) and none of them errored.
  EXPECT_NE(serial.find("\"platoon_size\":4"), std::string::npos);
  std::size_t clean = 0;
  for (std::size_t pos = serial.find("\"error\":\"\"}");
       pos != std::string::npos;
       pos = serial.find("\"error\":\"\"}", pos + 1)) {
    ++clean;
  }
  EXPECT_EQ(clean, 8u);

  EXPECT_EQ(serial, run_jsonl(spec, 3));
}

}  // namespace
}  // namespace safe::runtime
