// Unit tests for SafeMeasurementPipeline (Algorithm 2 glue).
#include <gtest/gtest.h>

#include <memory>

#include "core/pipeline.hpp"
#include "cra/challenge.hpp"
#include "estimation/rls_predictor.hpp"

namespace safe::core {
namespace {

std::shared_ptr<const cra::ChallengeSchedule> schedule_with(
    std::vector<std::int64_t> steps) {
  return std::make_shared<cra::FixedChallengeSchedule>(std::move(steps));
}

SafeMeasurementPipeline make_pipeline(
    std::shared_ptr<const cra::ChallengeSchedule> schedule) {
  return SafeMeasurementPipeline(
      std::move(schedule), std::make_unique<estimation::RlsArPredictor>(),
      std::make_unique<estimation::RlsArPredictor>());
}

radar::RadarMeasurement echo_measurement(double d, double dv) {
  radar::RadarMeasurement m;
  m.estimate = radar::RangeRate{.distance_m = units::Meters{d},
                                .range_rate_mps = units::MetersPerSecond{dv}};
  m.coherent_echo = true;
  m.peak_to_average = 500.0;
  return m;
}

radar::RadarMeasurement silent_measurement() {
  radar::RadarMeasurement m;
  m.coherent_echo = false;
  m.power_alarm = false;
  return m;
}

radar::RadarMeasurement jammed_measurement() {
  radar::RadarMeasurement m;
  m.coherent_echo = false;
  m.power_alarm = true;
  m.estimate = radar::RangeRate{.distance_m = units::Meters{999.0},
                                .range_rate_mps = units::MetersPerSecond{50.0}};
  return m;
}

TEST(Pipeline, NullPredictorThrows) {
  EXPECT_THROW(SafeMeasurementPipeline(schedule_with({1}), nullptr,
                                       std::make_unique<estimation::RlsArPredictor>()),
               std::invalid_argument);
}

TEST(Pipeline, ProbeSuppressionFollowsSchedule) {
  auto p = make_pipeline(schedule_with({3, 8}));
  EXPECT_TRUE(p.probe_suppressed(3));
  EXPECT_TRUE(p.probe_suppressed(8));
  EXPECT_FALSE(p.probe_suppressed(4));
}

TEST(Pipeline, PassesThroughCleanMeasurements) {
  auto p = make_pipeline(schedule_with({100}));
  const auto safe = p.process(0, echo_measurement(80.0, -2.0));
  EXPECT_TRUE(safe.target_present);
  EXPECT_FALSE(safe.estimated);
  EXPECT_DOUBLE_EQ(safe.distance_m.value(), 80.0);
  EXPECT_DOUBLE_EQ(safe.relative_velocity_mps.value(), -2.0);
}

TEST(Pipeline, NoTargetWhenNoEcho) {
  auto p = make_pipeline(schedule_with({100}));
  const auto safe = p.process(0, silent_measurement());
  EXPECT_FALSE(safe.target_present);
  EXPECT_FALSE(safe.under_attack);
}

TEST(Pipeline, SilentChallengeStaysClean) {
  auto p = make_pipeline(schedule_with({5}));
  for (std::int64_t k = 0; k < 5; ++k) {
    p.process(k, echo_measurement(100.0 - static_cast<double>(k), -1.0));
  }
  const auto safe = p.process(5, silent_measurement());
  EXPECT_TRUE(safe.challenge_slot);
  EXPECT_FALSE(safe.under_attack);
  // Radar was mute this epoch: the pipeline must still report the target.
  EXPECT_TRUE(safe.target_present);
  EXPECT_TRUE(safe.estimated);
}

TEST(Pipeline, DetectsAttackAtChallenge) {
  auto p = make_pipeline(schedule_with({10}));
  for (std::int64_t k = 0; k < 10; ++k) {
    p.process(k, echo_measurement(100.0 - static_cast<double>(k), -1.0));
  }
  const auto safe = p.process(10, jammed_measurement());
  EXPECT_TRUE(safe.attack_started);
  EXPECT_TRUE(safe.under_attack);
  ASSERT_TRUE(p.detection_step().has_value());
  EXPECT_EQ(*p.detection_step(), 10);
}

TEST(Pipeline, HoldsOverWithEstimatesDuringAttack) {
  auto p = make_pipeline(schedule_with({20}));
  for (std::int64_t k = 0; k < 20; ++k) {
    p.process(k, echo_measurement(100.0 - 0.5 * static_cast<double>(k), -0.5));
  }
  p.process(20, jammed_measurement());
  // Corrupted data keeps arriving; outputs must be estimates continuing the
  // pre-attack ramp, not the corrupted 999 m.
  for (std::int64_t k = 21; k < 40; ++k) {
    const auto safe = p.process(k, jammed_measurement());
    EXPECT_TRUE(safe.estimated);
    const double expected = 100.0 - 0.5 * static_cast<double>(k);
    EXPECT_NEAR(safe.distance_m.value(), expected, 2.0) << "k=" << k;
  }
}

TEST(Pipeline, UntrainedPipelineHoldsLastValue) {
  PipelineOptions opts;
  opts.min_training_samples = 50;  // never reached here
  SafeMeasurementPipeline p(schedule_with({4}),
                            std::make_unique<estimation::RlsArPredictor>(),
                            std::make_unique<estimation::RlsArPredictor>(),
                            opts);
  p.process(0, echo_measurement(60.0, -1.5));
  const auto safe = p.process(4, jammed_measurement());
  EXPECT_TRUE(safe.under_attack);
  EXPECT_DOUBLE_EQ(safe.distance_m.value(), 60.0);
  EXPECT_DOUBLE_EQ(safe.relative_velocity_mps.value(), -1.5);
}

TEST(Pipeline, AttackClearsOnSilentChallenge) {
  auto p = make_pipeline(schedule_with({10, 30}));
  for (std::int64_t k = 0; k < 10; ++k) {
    p.process(k, echo_measurement(100.0, -1.0));
  }
  p.process(10, jammed_measurement());
  EXPECT_TRUE(p.under_attack());
  const auto safe = p.process(30, silent_measurement());
  EXPECT_TRUE(safe.attack_cleared);
  EXPECT_FALSE(p.under_attack());
}

TEST(Pipeline, ResumesPassThroughAfterClear) {
  auto p = make_pipeline(schedule_with({10, 20}));
  for (std::int64_t k = 0; k < 10; ++k) {
    p.process(k, echo_measurement(100.0, -1.0));
  }
  p.process(10, jammed_measurement());
  p.process(20, silent_measurement());  // clears
  const auto safe = p.process(21, echo_measurement(42.0, -0.25));
  EXPECT_FALSE(safe.estimated);
  EXPECT_DOUBLE_EQ(safe.distance_m.value(), 42.0);
}

TEST(Pipeline, EstimatedDistanceNeverNegative) {
  auto p = make_pipeline(schedule_with({30}));
  // Steep closing ramp: free-run would cross zero quickly.
  for (std::int64_t k = 0; k < 30; ++k) {
    p.process(k, echo_measurement(30.0 - static_cast<double>(k), -1.0));
  }
  p.process(30, jammed_measurement());
  for (std::int64_t k = 31; k < 60; ++k) {
    const auto safe = p.process(k, jammed_measurement());
    EXPECT_GE(safe.distance_m, units::Meters{0.0});
  }
}

TEST(Pipeline, ScoredStatsAccumulate) {
  auto p = make_pipeline(schedule_with({5, 10}));
  for (std::int64_t k = 0; k < 5; ++k) {
    p.process_scored(k, echo_measurement(50.0, 0.0), false);
  }
  p.process_scored(5, silent_measurement(), false);   // TN
  p.process_scored(10, jammed_measurement(), true);   // TP
  const auto& stats = p.detection_stats();
  EXPECT_EQ(stats.challenges, 2u);
  EXPECT_EQ(stats.true_negatives, 1u);
  EXPECT_EQ(stats.true_positives, 1u);
  EXPECT_EQ(stats.false_positives, 0u);
  EXPECT_EQ(stats.false_negatives, 0u);
}

TEST(Pipeline, ResetRestoresCleanState) {
  auto p = make_pipeline(schedule_with({5}));
  for (std::int64_t k = 0; k < 5; ++k) {
    p.process(k, echo_measurement(50.0, 0.0));
  }
  p.process(5, jammed_measurement());
  p.reset();
  EXPECT_FALSE(p.under_attack());
  EXPECT_FALSE(p.detection_step().has_value());
  const auto safe = p.process(0, silent_measurement());
  EXPECT_FALSE(safe.target_present);
}

TEST(Pipeline, RollbackQuarantinesPoisonedSamples) {
  // Clean challenge at 20 (snapshot), stealth bias from 21, detecting
  // challenge at 30: the nine biased samples must not leak into the
  // holdover level.
  auto p = make_pipeline(schedule_with({20, 30}));
  for (std::int64_t k = 0; k < 20; ++k) {
    p.process(k, echo_measurement(100.0 - 0.5 * static_cast<double>(k), -0.5));
  }
  p.process(20, silent_measurement());  // snapshot here
  for (std::int64_t k = 21; k < 30; ++k) {
    // Attacker feeds +6 m while staying coherent.
    p.process(k, echo_measurement(
                     100.0 - 0.5 * static_cast<double>(k) + 6.0, -0.5));
  }
  const auto at_detect = p.process(30, jammed_measurement());
  EXPECT_TRUE(at_detect.attack_started);
  // Without rollback the estimate would sit near 91 (85 + 6); with
  // quarantine it continues the clean ramp (~85).
  EXPECT_NEAR(at_detect.distance_m.value(), 100.0 - 0.5 * 30.0, 2.0);
  const auto next = p.process(31, jammed_measurement());
  EXPECT_NEAR(next.distance_m.value(), 100.0 - 0.5 * 31.0, 2.0);
}

TEST(Pipeline, RollbackDisabledKeepsPoisonedLevel) {
  PipelineOptions opts;
  opts.rollback_on_detection = false;
  SafeMeasurementPipeline p(schedule_with({20, 30}),
                            std::make_unique<estimation::RlsArPredictor>(),
                            std::make_unique<estimation::RlsArPredictor>(),
                            opts);
  for (std::int64_t k = 0; k < 20; ++k) {
    p.process(k, echo_measurement(100.0 - 0.5 * static_cast<double>(k), -0.5));
  }
  p.process(20, silent_measurement());
  for (std::int64_t k = 21; k < 30; ++k) {
    p.process(k, echo_measurement(
                     100.0 - 0.5 * static_cast<double>(k) + 6.0, -0.5));
  }
  const auto at_detect = p.process(30, jammed_measurement());
  // The +6 m poison survives: ablation-style counterexample.
  EXPECT_GT(at_detect.distance_m.value(), 100.0 - 0.5 * 30.0 + 3.0);
}

TEST(Pipeline, SnapshotRefreshesAtEachCleanChallenge) {
  // Two clean challenges: rollback must restore the state captured at the
  // SECOND one, i.e. samples between 10 and 20 stay in the training set and
  // only the post-20 poison is quarantined.
  auto p = make_pipeline(schedule_with({10, 20, 30}));
  for (std::int64_t k = 0; k < 10; ++k) {
    p.process(k, echo_measurement(100.0 - 0.5 * static_cast<double>(k), -0.5));
  }
  p.process(10, silent_measurement());  // snapshot #1
  for (std::int64_t k = 11; k < 20; ++k) {
    p.process(k, echo_measurement(100.0 - 0.5 * static_cast<double>(k), -0.5));
  }
  p.process(20, silent_measurement());  // snapshot #2 replaces #1
  for (std::int64_t k = 21; k < 30; ++k) {
    p.process(k, echo_measurement(
                     100.0 - 0.5 * static_cast<double>(k) + 6.0, -0.5));
  }
  const auto at_detect = p.process(30, jammed_measurement());
  EXPECT_TRUE(at_detect.attack_started);
  // Rolling back to snapshot #1 and replaying nothing would free-run from
  // ~95 m; the refreshed snapshot holds the clean ramp at ~85 m.
  EXPECT_NEAR(at_detect.distance_m.value(), 100.0 - 0.5 * 30.0, 2.0);
}

TEST(Pipeline, DebouncedClearanceIgnoresFlappingJammer) {
  PipelineOptions opts;
  opts.detector.clear_after_silent_challenges = 2;
  SafeMeasurementPipeline p(schedule_with({10, 20, 30, 40, 50}),
                            std::make_unique<estimation::RlsArPredictor>(),
                            std::make_unique<estimation::RlsArPredictor>(),
                            opts);
  for (std::int64_t k = 0; k < 10; ++k) {
    p.process(k, echo_measurement(100.0, -0.5));
  }
  p.process(10, jammed_measurement());  // detect
  EXPECT_TRUE(p.under_attack());

  // Flapping jammer: silent at 20, radiating again at 30. With M = 2 the
  // single silent challenge must NOT clear the attack.
  const auto first_silent = p.process(20, silent_measurement());
  EXPECT_FALSE(first_silent.attack_cleared);
  EXPECT_TRUE(p.under_attack());
  p.process(30, jammed_measurement());  // flap back: run resets
  EXPECT_TRUE(p.under_attack());

  // Two consecutive silent challenges finally clear it.
  const auto second_silent = p.process(40, silent_measurement());
  EXPECT_FALSE(second_silent.attack_cleared);
  const auto third_silent = p.process(50, silent_measurement());
  EXPECT_TRUE(third_silent.attack_cleared);
  EXPECT_FALSE(p.under_attack());
}

TEST(Pipeline, DefaultClearanceIsImmediate) {
  auto p = make_pipeline(schedule_with({10, 20}));
  for (std::int64_t k = 0; k < 10; ++k) {
    p.process(k, echo_measurement(100.0, -0.5));
  }
  p.process(10, jammed_measurement());
  const auto safe = p.process(20, silent_measurement());
  EXPECT_TRUE(safe.attack_cleared);  // paper behaviour: M = 1
}

TEST(Pipeline, DefaultFactoryProducesWorkingPipeline) {
  auto p = make_default_pipeline(schedule_with({8}));
  for (std::int64_t k = 0; k < 8; ++k) {
    p.process(k, echo_measurement(90.0 - static_cast<double>(k), -1.0));
  }
  const auto safe = p.process(8, silent_measurement());
  EXPECT_TRUE(safe.target_present);
  EXPECT_NEAR(safe.distance_m.value(), 82.0, 1.5);
}

}  // namespace
}  // namespace safe::core
