// Tests for the generalized ToF active sensors (lidar / ultrasonic) and the
// redundancy-based fusion detector baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "sensors/fusion_detector.hpp"
#include "sensors/tof_sensor.hpp"

namespace safe::sensors {
namespace {

radar::EchoScene scene_with_target(const TofSensorParameters& params,
                                   double distance, double rate = -1.0) {
  radar::EchoScene scene;
  scene.echoes.push_back(radar::EchoComponent{
      .distance_m = Meters{distance},
      .range_rate_mps = MetersPerSecond{rate},
      .power_w = 0.0,  // let the sensor's own link budget fill it in
  });
  scene.noise_power_w = params.noise_floor_w;
  return scene;
}

TEST(TofSensor, ParameterValidation) {
  TofSensorParameters p = lidar_parameters();
  p.tx_power_w = 0.0;
  EXPECT_THROW(TofSensor{p}, std::invalid_argument);

  p = lidar_parameters();
  p.max_range_m = p.min_range_m;
  EXPECT_THROW(TofSensor{p}, std::invalid_argument);

  p = lidar_parameters();
  p.noise_floor_w = 0.0;
  EXPECT_THROW(TofSensor{p}, std::invalid_argument);
}

TEST(TofSensor, ReceivedPowerFollowsLinkExponent) {
  const auto lidar = lidar_parameters();
  EXPECT_NEAR(tof_received_power_w(lidar, Meters{10.0}) /
                  tof_received_power_w(lidar, Meters{20.0}),
              4.0, 1e-9);  // d^-2
  const auto sonar = ultrasonic_parameters();
  EXPECT_NEAR(tof_received_power_w(sonar, Meters{1.0}) /
                  tof_received_power_w(sonar, Meters{2.0}),
              16.0, 1e-9);  // d^-4
  EXPECT_THROW(tof_received_power_w(lidar, Meters{0.0}),
               std::invalid_argument);
}

TEST(TofSensor, LidarMeasuresRangeAcrossWindow) {
  const auto params = lidar_parameters();
  TofSensor lidar(params, 5);
  for (const double d : {1.0, 10.0, 50.0, 100.0, 149.0}) {
    const auto m = lidar.measure(scene_with_target(params, d));
    EXPECT_TRUE(m.target_detected) << "d=" << d;
    EXPECT_NEAR(m.distance_m.value(), d, 0.2) << "d=" << d;
  }
}

TEST(TofSensor, UltrasonicShortRangeOnly) {
  const auto params = ultrasonic_parameters();
  TofSensor sonar(params, 7);
  const auto near = sonar.measure(scene_with_target(params, 1.5));
  EXPECT_TRUE(near.target_detected);
  EXPECT_NEAR(near.distance_m.value(), 1.5, 0.05);
  // Beyond the acoustic window: silence.
  const auto far = sonar.measure(scene_with_target(params, 30.0));
  EXPECT_FALSE(far.target_detected);
}

TEST(TofSensor, EmptySceneIsSilent) {
  const auto params = lidar_parameters();
  TofSensor lidar(params, 9);
  radar::EchoScene scene;
  scene.noise_power_w = params.noise_floor_w;
  const auto m = lidar.measure(scene);
  EXPECT_FALSE(m.target_detected);
  EXPECT_FALSE(m.power_alarm);
  EXPECT_FALSE(m.nonzero_output());
}

TEST(TofSensor, JammingRaisesPowerAlarm) {
  const auto params = lidar_parameters();
  TofSensor lidar(params, 11);
  radar::EchoScene scene;
  scene.noise_power_w = 100.0 * params.noise_floor_w;  // saturating blinder
  const auto m = lidar.measure(scene);
  EXPECT_TRUE(m.power_alarm);
  EXPECT_TRUE(m.nonzero_output());
}

TEST(TofSensor, StrongestEchoWinsCapture) {
  const auto params = lidar_parameters();
  TofSensor lidar(params, 13);
  auto scene = scene_with_target(params, 40.0);
  // Spoofer overpowers the true echo with a counterfeit at +6 m.
  scene.echoes.push_back(radar::EchoComponent{
      .distance_m = Meters{46.0},
      .range_rate_mps = MetersPerSecond{-1.0},
      .power_w = 10.0 * tof_received_power_w(params, Meters{40.0}),
  });
  const auto m = lidar.measure(scene);
  EXPECT_TRUE(m.target_detected);
  EXPECT_NEAR(m.distance_m.value(), 46.0, 0.2);
}

TEST(TofSensor, ChallengeSlotSpoofIsVisible) {
  // tx suppressed, attacker still replaying: non-zero output -> CRA detects
  // exactly as with the radar.
  const auto params = lidar_parameters();
  TofSensor lidar(params, 17);
  radar::EchoScene scene;
  scene.tx_enabled = false;
  scene.noise_power_w = params.noise_floor_w;
  scene.echoes.push_back(radar::EchoComponent{
      .distance_m = Meters{30.0},
      .range_rate_mps = MetersPerSecond{0.0},
      .power_w = 100.0 * params.noise_floor_w * params.detection_snr,
  });
  const auto m = lidar.measure(scene);
  EXPECT_TRUE(m.nonzero_output());
}

TEST(TofSensor, WeakEchoBelowThresholdIgnored) {
  const auto params = lidar_parameters();
  TofSensor lidar(params, 19);
  radar::EchoScene scene;
  scene.noise_power_w = params.noise_floor_w;
  scene.echoes.push_back(radar::EchoComponent{
      .distance_m = Meters{50.0},
      .range_rate_mps = MetersPerSecond{0.0},
      .power_w = params.noise_floor_w,  // at the floor: undetectable
  });
  const auto m = lidar.measure(scene);
  EXPECT_FALSE(m.target_detected);
}

TEST(TofSensor, RangeRateMeasured) {
  const auto params = lidar_parameters();
  TofSensor lidar(params, 23);
  const auto m = lidar.measure(scene_with_target(params, 60.0, -3.5));
  ASSERT_TRUE(m.target_detected);
  EXPECT_NEAR(m.range_rate_mps.value(), -3.5, 0.6);
}

TEST(TofSensor, DeterministicGivenSeed) {
  const auto params = ultrasonic_parameters();
  TofSensor a(params, 99), b(params, 99);
  const auto scene = scene_with_target(params, 2.0);
  EXPECT_EQ(a.measure(scene).distance_m.value(),
            b.measure(scene).distance_m.value());
}

TEST(FusionDetector, OptionValidation) {
  EXPECT_THROW(FusionDetector({.disagreement_threshold_m = Meters{0.0}}),
               std::invalid_argument);
  EXPECT_THROW(FusionDetector({.required_consecutive = 0}),
               std::invalid_argument);
}

TEST(FusionDetector, AgreementStaysQuiet) {
  FusionDetector det;
  for (int k = 0; k < 50; ++k) {
    const auto d = det.observe(true, Meters{40.0 - 0.1 * k}, true,
                               Meters{40.02 - 0.1 * k});
    EXPECT_FALSE(d.under_attack);
  }
}

TEST(FusionDetector, OneSensorSpoofDetected) {
  FusionDetector det({.disagreement_threshold_m = Meters{2.0},
                      .required_consecutive = 2});
  // Radar spoofed +6 m, lidar honest.
  det.observe(true, Meters{40.0}, true, Meters{46.0});
  const auto d = det.observe(true, Meters{39.7}, true, Meters{45.7});
  EXPECT_TRUE(d.under_attack);
}

TEST(FusionDetector, ConsistentTwoSensorSpoofIsInvisible) {
  // The structural blind spot: corrupt both channels identically and the
  // redundancy check never fires (CRA still would).
  FusionDetector det;
  for (int k = 0; k < 50; ++k) {
    const auto d = det.observe(true, Meters{46.0}, true, Meters{46.0});
    EXPECT_FALSE(d.under_attack);
  }
}

TEST(FusionDetector, MissingDataIsSkipped) {
  FusionDetector det({.disagreement_threshold_m = Meters{2.0},
                      .required_consecutive = 1});
  const auto d = det.observe(false, Meters{0.0}, true, Meters{46.0});
  EXPECT_FALSE(d.suspicious);
  EXPECT_FALSE(d.under_attack);
}

TEST(FusionDetector, TransientGlitchBelowConsecutiveBarIgnored) {
  FusionDetector det({.disagreement_threshold_m = Meters{2.0},
                      .required_consecutive = 3});
  det.observe(true, Meters{40.0}, true, Meters{45.0});  // one glitch
  const auto d = det.observe(true, Meters{40.0}, true, Meters{40.1});
  EXPECT_FALSE(d.under_attack);
}

TEST(FusionDetector, ResetClearsState) {
  FusionDetector det({.disagreement_threshold_m = Meters{2.0},
                      .required_consecutive = 1});
  det.observe(true, Meters{40.0}, true, Meters{50.0});
  EXPECT_TRUE(det.under_attack());
  det.reset();
  EXPECT_FALSE(det.under_attack());
}

}  // namespace
}  // namespace safe::sensors
