// End-to-end tests of the radar signal path: scene -> baseband -> estimate.
#include <gtest/gtest.h>

#include <cmath>

#include "radar/echo_scene.hpp"
#include "radar/link_budget.hpp"
#include "radar/processor.hpp"

namespace safe::radar {
namespace {

using units::Meters;
using units::MetersPerSecond;

RadarProcessorConfig test_config(BeatEstimator estimator) {
  RadarProcessorConfig cfg;
  cfg.estimator = estimator;
  cfg.noise_floor_w = thermal_noise_power_w(cfg.waveform);
  return cfg;
}

EchoScene target_scene(double distance_m, double range_rate_mps,
                       const RadarProcessorConfig& cfg, double rcs = 10.0) {
  EchoScene scene;
  scene.echoes.push_back(EchoComponent{
      .distance_m = Meters{distance_m},
      .range_rate_mps = MetersPerSecond{range_rate_mps},
      .power_w = received_echo_power_w(cfg.waveform, Meters{distance_m}, rcs),
  });
  scene.noise_power_w = cfg.noise_floor_w;
  return scene;
}

TEST(RadarProcessor, ConfigValidation) {
  RadarProcessorConfig cfg = test_config(BeatEstimator::kRootMusic);
  cfg.sample_rate_hz = units::Hertz{0.0};
  EXPECT_THROW(RadarProcessor(cfg, 1), std::invalid_argument);

  cfg = test_config(BeatEstimator::kRootMusic);
  cfg.samples_per_segment = 8;  // < 2 * music_order
  EXPECT_THROW(RadarProcessor(cfg, 1), std::invalid_argument);

  cfg = test_config(BeatEstimator::kRootMusic);
  cfg.samples_per_segment = 4096;  // 4.1 ms > half sweep (1 ms)
  EXPECT_THROW(RadarProcessor(cfg, 1), std::invalid_argument);
}

TEST(RadarProcessor, MeasuresStationaryTargetRootMusic) {
  const auto cfg = test_config(BeatEstimator::kRootMusic);
  RadarProcessor radar(cfg, 7);
  const auto m = radar.measure(target_scene(100.0, 0.0, cfg));
  EXPECT_TRUE(m.coherent_echo);
  EXPECT_NEAR(m.estimate.distance_m.value(), 100.0, 1.0);
  EXPECT_NEAR(m.estimate.range_rate_mps.value(), 0.0, 0.5);
}

TEST(RadarProcessor, MeasuresMovingTargetRootMusic) {
  const auto cfg = test_config(BeatEstimator::kRootMusic);
  RadarProcessor radar(cfg, 11);
  const auto m = radar.measure(target_scene(60.0, -4.0, cfg));
  EXPECT_TRUE(m.coherent_echo);
  EXPECT_NEAR(m.estimate.distance_m.value(), 60.0, 1.0);
  EXPECT_NEAR(m.estimate.range_rate_mps.value(), -4.0, 0.5);
}

TEST(RadarProcessor, MeasuresTargetPeriodogram) {
  const auto cfg = test_config(BeatEstimator::kPeriodogram);
  RadarProcessor radar(cfg, 13);
  const auto m = radar.measure(target_scene(80.0, 2.0, cfg));
  EXPECT_TRUE(m.coherent_echo);
  EXPECT_NEAR(m.estimate.distance_m.value(), 80.0, 2.0);
  EXPECT_NEAR(m.estimate.range_rate_mps.value(), 2.0, 1.0);
}

TEST(RadarProcessor, ChallengeSlotWithNoAttackIsSilent) {
  // Tx suppressed, no attacker: only thermal noise reaches the receiver.
  const auto cfg = test_config(BeatEstimator::kRootMusic);
  RadarProcessor radar(cfg, 17);
  EchoScene scene;
  scene.tx_enabled = false;
  scene.noise_power_w = cfg.noise_floor_w;
  const auto m = radar.measure(scene);
  EXPECT_FALSE(m.coherent_echo);
  EXPECT_FALSE(m.power_alarm);
  EXPECT_FALSE(m.nonzero_output());
}

TEST(RadarProcessor, JammingRaisesPowerAlarm) {
  const auto cfg = test_config(BeatEstimator::kRootMusic);
  RadarProcessor radar(cfg, 19);
  EchoScene scene;
  scene.tx_enabled = false;  // challenge slot
  scene.noise_power_w =
      cfg.noise_floor_w +
      received_jammer_power_w(cfg.waveform, JammerParameters{}, Meters{100.0});
  const auto m = radar.measure(scene);
  EXPECT_TRUE(m.power_alarm);
  EXPECT_TRUE(m.nonzero_output());
}

TEST(RadarProcessor, JammingCorruptsRangeEstimate) {
  // With the echo buried under jamming, the estimator output is garbage
  // (this is the corrupted trace of Figures 2a / 3a).
  const auto cfg = test_config(BeatEstimator::kRootMusic);
  RadarProcessor radar(cfg, 23);
  EchoScene scene = target_scene(100.0, -1.0, cfg);
  scene.noise_power_w +=
      received_jammer_power_w(cfg.waveform, JammerParameters{}, Meters{100.0});
  const auto m = radar.measure(scene);
  // The coherent echo is ~33 dB below the jam floor: no stable lock.
  EXPECT_GT(std::abs((m.estimate.distance_m - Meters{100.0}).value()), 5.0);
}

TEST(RadarProcessor, SpoofedEchoShiftsRangeBySixMeters) {
  const auto cfg = test_config(BeatEstimator::kRootMusic);
  RadarProcessor radar(cfg, 29);
  // Counterfeit echo: same kinematics, apparent range +6 m, healthy power.
  EchoScene scene;
  scene.echoes.push_back(EchoComponent{
      .distance_m = Meters{100.0 + 6.0},
      .range_rate_mps = MetersPerSecond{-2.0},
      .power_w =
          received_echo_power_w(cfg.waveform, Meters{100.0}, 10.0) * 4.0,
  });
  scene.noise_power_w = cfg.noise_floor_w;
  const auto m = radar.measure(scene);
  EXPECT_TRUE(m.coherent_echo);
  EXPECT_NEAR(m.estimate.distance_m.value(), 106.0, 1.0);
}

TEST(RadarProcessor, SpoofDuringChallengeIsDetectable) {
  // Attacker keeps replaying during a challenge slot: receiver sees a
  // coherent tone where silence was expected.
  const auto cfg = test_config(BeatEstimator::kRootMusic);
  RadarProcessor radar(cfg, 31);
  EchoScene scene;
  scene.tx_enabled = false;
  scene.echoes.push_back(EchoComponent{
      .distance_m = Meters{106.0},
      .range_rate_mps = MetersPerSecond{-2.0},
      .power_w =
          received_echo_power_w(cfg.waveform, Meters{100.0}, 10.0) * 4.0,
  });
  scene.noise_power_w = cfg.noise_floor_w;
  const auto m = radar.measure(scene);
  EXPECT_TRUE(m.coherent_echo);
  EXPECT_TRUE(m.nonzero_output());
}

TEST(RadarProcessor, SynthesizeProducesRequestedLength)
{
  const auto cfg = test_config(BeatEstimator::kRootMusic);
  RadarProcessor radar(cfg, 37);
  const auto seg = radar.synthesize(target_scene(50.0, 0.0, cfg));
  EXPECT_EQ(seg.up.size(), cfg.samples_per_segment);
  EXPECT_EQ(seg.down.size(), cfg.samples_per_segment);
}

TEST(RadarProcessor, SegmentPowerMatchesSceneBudget) {
  const auto cfg = test_config(BeatEstimator::kRootMusic);
  RadarProcessor radar(cfg, 41);
  auto scene = target_scene(30.0, 0.0, cfg);
  const double expected =
      scene.echoes[0].power_w + scene.noise_power_w;
  const auto m = radar.measure(scene);
  EXPECT_NEAR(m.rx_power_w / expected, 1.0, 0.35);
}

TEST(RadarProcessor, DeterministicGivenSeed) {
  const auto cfg = test_config(BeatEstimator::kRootMusic);
  RadarProcessor a(cfg, 99), b(cfg, 99);
  const auto scene = target_scene(75.0, -3.0, cfg);
  const auto ma = a.measure(scene);
  const auto mb = b.measure(scene);
  EXPECT_EQ(ma.estimate.distance_m.value(), mb.estimate.distance_m.value());
  EXPECT_EQ(ma.estimate.range_rate_mps.value(),
            mb.estimate.range_rate_mps.value());
}

// Accuracy sweep across the radar's specified range window.
class RangeSweep : public ::testing::TestWithParam<double> {};

TEST_P(RangeSweep, RootMusicRangeWithinOneMeter) {
  const auto cfg = test_config(BeatEstimator::kRootMusic);
  RadarProcessor radar(cfg, 101);
  const double d = GetParam();
  const auto m = radar.measure(target_scene(d, -1.0, cfg));
  EXPECT_TRUE(m.coherent_echo) << "range " << d;
  EXPECT_NEAR(m.estimate.distance_m.value(), d, 1.0) << "range " << d;
}

INSTANTIATE_TEST_SUITE_P(AcrossBand, RangeSweep,
                         ::testing::Values(5.0, 10.0, 20.0, 40.0, 60.0, 80.0,
                                           100.0, 120.0, 150.0, 180.0, 200.0));

}  // namespace
}  // namespace safe::radar
