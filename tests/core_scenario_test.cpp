// ScenarioOptions validation and jammer-parameter plumbing.
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/scenario.hpp"

namespace {

using namespace safe;

TEST(ScenarioValidation, DefaultOptionsAreValid) {
  EXPECT_NO_THROW(core::validate(core::ScenarioOptions{}));
}

TEST(ScenarioValidation, RejectsAttackWindowEndingBeforeItStarts) {
  core::ScenarioOptions o;
  o.attack = core::AttackKind::kDosJammer;
  o.attack_start_s = units::Seconds{200.0};
  o.attack_end_s = units::Seconds{100.0};
  EXPECT_THROW(core::validate(o), std::invalid_argument);
  EXPECT_THROW(core::make_paper_scenario(o), std::invalid_argument);
  try {
    core::make_paper_scenario(o);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("attack_end_s"), std::string::npos);
  }
}

TEST(ScenarioValidation, AttackWindowOnlyCheckedWhenAttacking) {
  // Without an attack the window fields are inert; stale values from a
  // previous configuration must not block a clean run.
  core::ScenarioOptions o;
  o.attack = core::AttackKind::kNone;
  o.attack_start_s = units::Seconds{200.0};
  o.attack_end_s = units::Seconds{100.0};
  EXPECT_NO_THROW(core::validate(o));
}

TEST(ScenarioValidation, RejectsNonPositiveHorizon) {
  core::ScenarioOptions o;
  o.horizon_steps = 0;
  EXPECT_THROW(core::validate(o), std::invalid_argument);
  o.horizon_steps = -5;
  EXPECT_THROW(core::make_paper_scenario(o), std::invalid_argument);
}

TEST(ScenarioOptions, JammerPowerReachesThePhysics) {
  // Same seed, defense off, short horizon: the paper's 100 mW jammer
  // corrupts the measured gap, a 1 nW jammer cannot — so the measurement
  // traces must diverge if (and only if) the power actually flows through
  // make_paper_scenario into the link budget.
  core::ScenarioOptions o;
  o.attack = core::AttackKind::kDosJammer;
  o.attack_start_s = units::Seconds{5.0};
  o.attack_end_s = units::Seconds{40.0};
  o.horizon_steps = 40;
  o.defense_enabled = false;
  o.estimator = radar::BeatEstimator::kPeriodogram;

  const auto strong = core::make_paper_scenario(o).run();
  o.jammer.peak_power_w = 1.0e-9;
  const auto weak = core::make_paper_scenario(o).run();

  EXPECT_NE(strong.trace.column("meas_gap_m"),
            weak.trace.column("meas_gap_m"));
}

}  // namespace
