// Tests for src/telemetry/: registration semantics, the lock-free shard
// merge, the disabled-is-a-no-op contract, canonical JSONL serialization
// (non-finite values, key escaping), structural validity of the exported
// Chrome trace, and the load-bearing property that merged deterministic
// metrics are identical at --jobs 1 and --jobs 4.
#include <cmath>
#include <cstddef>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/campaign.hpp"
#include "runtime/sink.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace safe;
namespace tm = safe::telemetry;

// Every test runs against the process-global registry, so each one starts
// from zeroed values and leaves recording switched off.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tm::reset_for_testing();
    tm::set_metrics_enabled(true);
  }
  void TearDown() override {
    tm::set_metrics_enabled(false);
    tm::set_tracing_enabled(false);
    tm::set_trace_detail(tm::TraceDetail::kCoarse);
    tm::reset_for_testing();
  }
};

// --- minimal JSON validator ------------------------------------------------
// Recursive-descent well-formedness check (RFC 8259 grammar, no semantics);
// enough to assert the exporters emit parseable JSON without a JSON library.

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (peek() != '"' || !string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          if (pos_ + 4 >= text_.size()) return false;
          for (std::size_t i = 1; i <= 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// Pulls the one JSONL line whose "name" matches, "" when absent.
std::string jsonl_line(const std::string& jsonl, const std::string& name) {
  std::istringstream lines(jsonl);
  std::string line;
  const std::string needle = "\"name\":\"" + name + "\"";
  while (std::getline(lines, line)) {
    if (line.find(needle) != std::string::npos) return line;
  }
  return {};
}

// --- registration ----------------------------------------------------------

TEST_F(TelemetryTest, RegistrationIsIdempotentByName) {
  const tm::MetricId a = tm::counter("test.idempotent");
  const tm::MetricId b = tm::counter("test.idempotent");
  ASSERT_TRUE(a.valid());
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.kind, b.kind);
}

TEST_F(TelemetryTest, KindClashYieldsInvalidId) {
  const tm::MetricId as_counter = tm::counter("test.kind_clash");
  const tm::MetricId as_gauge = tm::gauge_max("test.kind_clash");
  ASSERT_TRUE(as_counter.valid());
  EXPECT_FALSE(as_gauge.valid());
  // Recording through the invalid id must be a harmless no-op.
  tm::gauge_update_max(as_gauge, 42.0);
  tm::add(as_counter, 3);
  EXPECT_EQ(tm::counter_value(as_counter), 3U);
}

TEST_F(TelemetryTest, DefaultConstructedIdIsInvalidNoOp) {
  const tm::MetricId id{};
  EXPECT_FALSE(id.valid());
  tm::add(id);
  tm::record(id, 1.0);
  EXPECT_EQ(tm::counter_value(id), 0U);
}

// --- recording & merge -----------------------------------------------------

TEST_F(TelemetryTest, DisabledRecordingIsANoOp) {
  const tm::MetricId id = tm::counter("test.disabled");
  tm::set_metrics_enabled(false);
  tm::add(id, 100);
  EXPECT_EQ(tm::counter_value(id), 0U);
  tm::set_metrics_enabled(true);
  tm::add(id, 1);
  EXPECT_EQ(tm::counter_value(id), 1U);
}

TEST_F(TelemetryTest, CounterSumsAcrossThreads) {
  const tm::MetricId id = tm::counter("test.cross_thread");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([id] {
      for (std::uint64_t n = 0; n < kPerThread; ++n) tm::add(id);
    });
  }
  for (auto& t : threads) t.join();
  // Retired threads' shards stay visible to the merged sum.
  EXPECT_EQ(tm::counter_value(id), kThreads * kPerThread);
}

TEST_F(TelemetryTest, HistogramBucketsMinMaxAndOverflow) {
  const tm::MetricId id =
      tm::histogram("test.hist", {1.0, 10.0, 100.0});
  tm::record(id, 0.5);    // le 1
  tm::record(id, 1.0);    // le 1 (inclusive upper bound)
  tm::record(id, 7.0);    // le 10
  tm::record(id, 1000.0); // +inf overflow

  const tm::MetricsSnapshot snap = tm::collect_metrics();
  const auto it = std::find_if(
      snap.metrics.begin(), snap.metrics.end(),
      [](const tm::MetricSnapshot& m) { return m.name == "test.hist"; });
  ASSERT_NE(it, snap.metrics.end());
  EXPECT_EQ(it->hist.count, 4U);
  EXPECT_DOUBLE_EQ(it->hist.min, 0.5);
  EXPECT_DOUBLE_EQ(it->hist.max, 1000.0);
  ASSERT_EQ(it->hist.bucket_counts.size(), 4U);
  EXPECT_EQ(it->hist.bucket_counts[0], 2U);
  EXPECT_EQ(it->hist.bucket_counts[1], 1U);
  EXPECT_EQ(it->hist.bucket_counts[2], 0U);
  EXPECT_EQ(it->hist.bucket_counts[3], 1U);
}

TEST_F(TelemetryTest, GaugeTracksMaxAcrossThreads) {
  const tm::MetricId id = tm::gauge_max("test.gauge");
  std::thread low([id] { tm::gauge_update_max(id, 3.0); });
  std::thread high([id] { tm::gauge_update_max(id, 9.0); });
  low.join();
  high.join();
  tm::gauge_update_max(id, 5.0);

  const tm::MetricsSnapshot snap = tm::collect_metrics();
  const auto it = std::find_if(
      snap.metrics.begin(), snap.metrics.end(),
      [](const tm::MetricSnapshot& m) { return m.name == "test.gauge"; });
  ASSERT_NE(it, snap.metrics.end());
  EXPECT_TRUE(it->gauge_seen);
  EXPECT_DOUBLE_EQ(it->gauge, 9.0);
}

// --- JSONL serialization ---------------------------------------------------

TEST_F(TelemetryTest, JsonlNonFiniteValuesSerializeAsNull) {
  const tm::MetricId gauge = tm::gauge_max("test.nonfinite_gauge");
  tm::gauge_update_max(gauge, std::numeric_limits<double>::quiet_NaN());
  const tm::MetricId hist = tm::histogram("test.nonfinite_hist", {1.0});
  tm::record(hist, std::numeric_limits<double>::infinity());

  const std::string jsonl = tm::to_jsonl(tm::collect_metrics());
  const std::string gauge_line = jsonl_line(jsonl, "test.nonfinite_gauge");
  ASSERT_FALSE(gauge_line.empty());
  EXPECT_NE(gauge_line.find("\"value\":null"), std::string::npos);
  EXPECT_TRUE(JsonValidator(gauge_line).valid()) << gauge_line;

  const std::string hist_line = jsonl_line(jsonl, "test.nonfinite_hist");
  ASSERT_FALSE(hist_line.empty());
  // +inf landed in the overflow bucket; min == max == inf exports as null.
  EXPECT_NE(hist_line.find("\"max\":null"), std::string::npos);
  EXPECT_NE(hist_line.find("\"counts\":[0,1]"), std::string::npos);
  EXPECT_TRUE(JsonValidator(hist_line).valid()) << hist_line;
}

TEST_F(TelemetryTest, JsonlEscapesMetricNames) {
  const tm::MetricId id = tm::counter("test.\"quoted\\name\"\twith\ncontrol");
  tm::add(id);
  const std::string jsonl = tm::to_jsonl(tm::collect_metrics());
  std::istringstream lines(jsonl);
  std::string line;
  bool found = false;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(JsonValidator(line).valid()) << line;
    if (line.find("\\\"quoted\\\\name\\\"") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << jsonl;
}

TEST_F(TelemetryTest, EmptyRegistryStillEmitsValidJsonlLines) {
  // Freshly reset: every registered metric is zero. Each line must still be
  // parseable (zero-count histograms use null min/max).
  const std::string jsonl = tm::to_jsonl(tm::collect_metrics());
  std::istringstream lines(jsonl);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(JsonValidator(line).valid()) << line;
  }
}

// --- Chrome trace export ---------------------------------------------------

TEST_F(TelemetryTest, ChromeTraceIsStructurallyValid) {
  tm::set_tracing_enabled(true);
  tm::set_thread_name("test-main");
  {
    tm::ScopedTimer span("test.span", "test");
    span.arg("step", 7);
    tm::instant_event(
        "test.instant", "test",
        tm::TraceArgs{}.integer("k", 1).text("why", "be\"cause\\").take());
  }
  std::ostringstream out;
  tm::write_chrome_trace(out);
  const std::string trace = out.str();

  ASSERT_TRUE(JsonValidator(trace).valid()) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"M\""), std::string::npos);  // thread_name
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);  // complete span
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(trace.find("\"name\":\"test.span\""), std::string::npos);
  EXPECT_NE(trace.find("\"step\":7"), std::string::npos);
}

TEST_F(TelemetryTest, FineEventsSuppressedAtCoarseDetail) {
  tm::set_tracing_enabled(true);
  tm::set_trace_detail(tm::TraceDetail::kCoarse);
  tm::instant_event("test.fine", "test", {}, tm::TraceDetail::kFine);
  tm::instant_event("test.coarse", "test", {}, tm::TraceDetail::kCoarse);
  std::ostringstream out;
  tm::write_chrome_trace(out);
  EXPECT_EQ(out.str().find("test.fine"), std::string::npos);
  EXPECT_NE(out.str().find("test.coarse"), std::string::npos);
}

// --- campaign integration --------------------------------------------------

runtime::CampaignSpec small_campaign() {
  runtime::CampaignSpec spec;
  spec.base.horizon_steps = 60;
  spec.base.estimator = radar::BeatEstimator::kPeriodogram;
  spec.trials = 4;
  spec.seed = 7;
  return spec;
}

// The determinism contract: deterministic-tagged metrics merged over all
// shards are a pure function of the campaign spec, independent of --jobs.
TEST_F(TelemetryTest, MergedDeterministicMetricsIdenticalAtJobs1And4) {
  const runtime::Campaign campaign(small_campaign());

  campaign.run(1);
  const std::string jobs1 =
      tm::to_jsonl(tm::collect_metrics(), /*deterministic_only=*/true);

  tm::reset_for_testing();
  campaign.run(4);
  const std::string jobs4 =
      tm::to_jsonl(tm::collect_metrics(), /*deterministic_only=*/true);

  EXPECT_FALSE(jobs1.empty());
  EXPECT_EQ(jobs1, jobs4);
  // Sanity: the campaign actually recorded work.
  EXPECT_NE(jobs1.find("\"name\":\"campaign.trials\""), std::string::npos);
  EXPECT_NE(jobs1.find("\"value\":4"), std::string::npos);
}

// Degenerate campaign: zero trials. The summary must stay finite and the
// metrics/JSONL exports must stay well-formed.
TEST_F(TelemetryTest, EmptyCampaignProducesFiniteSummaryAndValidJsonl) {
  runtime::CampaignSpec spec = small_campaign();
  spec.trials = 0;
  const runtime::Campaign campaign(spec);
  // A 0-trial campaign never reaches the lazy call-site registration inside
  // run_trial; registering up front (idempotent) pins the exported line.
  tm::counter("campaign.trials");

  std::ostringstream records;
  runtime::JsonlWriter writer(records);
  std::vector<runtime::TrialSink*> sinks{&writer};
  const runtime::CampaignResult result = campaign.run(2, sinks);

  EXPECT_EQ(result.trials, 0U);
  EXPECT_EQ(result.summary.trials, 0U);
  EXPECT_EQ(records.str(), "");
  EXPECT_TRUE(std::isfinite(result.summary.collision_rate));
  EXPECT_TRUE(std::isfinite(result.summary.latency_mean_s.value()));
  EXPECT_TRUE(std::isfinite(result.summary.min_gap_mean_m.value()));
  const std::string text = runtime::format_summary(result.summary);
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;

  const std::string jsonl = tm::to_jsonl(tm::collect_metrics());
  std::istringstream lines(jsonl);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(JsonValidator(line).valid()) << line;
  }
  const std::string trials_line = jsonl_line(jsonl, "campaign.trials");
  ASSERT_FALSE(trials_line.empty());
  EXPECT_NE(trials_line.find("\"value\":0"), std::string::npos);
}

}  // namespace
