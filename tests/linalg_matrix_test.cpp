// Unit tests for the dense matrix/vector core.
#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <random>
#include <sstream>

namespace safe::linalg {
namespace {

TEST(Vector, DefaultConstructedIsEmpty) {
  RVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(Vector, SizedConstructorZeroInitializes) {
  RVector v(4);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], 0.0);
}

TEST(Vector, InitializerListPreservesOrder) {
  RVector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[2], 3.0);
}

TEST(Vector, AtThrowsOutOfRange) {
  RVector v(2);
  EXPECT_THROW(v.at(2), std::out_of_range);
}

TEST(Vector, ElementwiseArithmetic) {
  RVector a{1.0, 2.0};
  RVector b{3.0, 5.0};
  const RVector sum = a + b;
  const RVector diff = b - a;
  EXPECT_EQ(sum[0], 4.0);
  EXPECT_EQ(sum[1], 7.0);
  EXPECT_EQ(diff[0], 2.0);
  EXPECT_EQ(diff[1], 3.0);
}

TEST(Vector, ScalarScaling) {
  RVector a{1.0, -2.0};
  const RVector twice = 2.0 * a;
  const RVector half = a / 2.0;
  EXPECT_EQ(twice[1], -4.0);
  EXPECT_EQ(half[0], 0.5);
}

TEST(Vector, MismatchedSizesThrow) {
  RVector a(2), b(3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(dot(a, b), std::invalid_argument);
}

TEST(Vector, DotRealIsBilinear) {
  RVector a{1.0, 2.0, 3.0};
  RVector b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 + 18.0);
}

TEST(Vector, DotComplexConjugatesFirstArgument) {
  CVector a{{0.0, 1.0}};  // i
  CVector b{{0.0, 1.0}};  // i
  const auto d = dot(a, b);
  EXPECT_DOUBLE_EQ(d.real(), 1.0);  // conj(i)*i = 1
  EXPECT_DOUBLE_EQ(d.imag(), 0.0);
}

TEST(Vector, Norm2MatchesHandComputation) {
  RVector v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
}

TEST(Vector, NormInfPicksLargestMagnitude) {
  RVector v{3.0, -7.0, 4.0};
  EXPECT_DOUBLE_EQ(norm_inf(v), 7.0);
}

TEST(Matrix, IdentityHasUnitDiagonal) {
  const auto eye = RMatrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW(RMatrix({{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, ScaledIdentity) {
  const auto m = RMatrix::scaled_identity(2, 5.0);
  EXPECT_EQ(m(0, 0), 5.0);
  EXPECT_EQ(m(1, 1), 5.0);
  EXPECT_EQ(m(0, 1), 0.0);
}

TEST(Matrix, FromDiagonal) {
  const auto m = RMatrix::from_diagonal(RVector{1.0, 2.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m(1, 1), 2.0);
  EXPECT_EQ(m(1, 0), 0.0);
}

TEST(Matrix, RowColRoundTrip) {
  RMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  const RVector r1 = m.row(1);
  const RVector c0 = m.col(0);
  EXPECT_EQ(r1[0], 3.0);
  EXPECT_EQ(r1[1], 4.0);
  EXPECT_EQ(c0[1], 3.0);
  m.set_row(0, RVector{9.0, 8.0});
  EXPECT_EQ(m(0, 1), 8.0);
  m.set_col(1, RVector{7.0, 6.0});
  EXPECT_EQ(m(1, 1), 6.0);
}

TEST(Matrix, SetRowSizeMismatchThrows) {
  RMatrix m(2, 2);
  EXPECT_THROW(m.set_row(0, RVector(3)), std::invalid_argument);
  EXPECT_THROW(m.set_col(0, RVector(3)), std::invalid_argument);
}

TEST(Matrix, TransposeInvolution) {
  RMatrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const auto mt = m.transpose();
  EXPECT_EQ(mt.rows(), 3u);
  EXPECT_EQ(mt.cols(), 2u);
  EXPECT_EQ(mt(2, 1), 6.0);
  EXPECT_EQ(mt.transpose(), m);
}

TEST(Matrix, AdjointConjugates) {
  CMatrix m{{{1.0, 2.0}}};
  const auto a = m.adjoint();
  EXPECT_EQ(a(0, 0), std::complex<double>(1.0, -2.0));
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  RMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  RMatrix b{{5.0, 6.0}, {7.0, 8.0}};
  const RMatrix c = a * b;
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  RMatrix a(2, 3), b(2, 2);
  EXPECT_THROW(a * b, std::invalid_argument);
  EXPECT_THROW(a * RVector(2), std::invalid_argument);
}

TEST(Matrix, MatrixVectorProduct) {
  RMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  const RVector y = a * RVector{1.0, 1.0};
  EXPECT_EQ(y[0], 3.0);
  EXPECT_EQ(y[1], 7.0);
}

TEST(Matrix, IdentityIsMultiplicativeNeutral) {
  RMatrix a{{1.5, -2.0}, {0.25, 4.0}};
  const auto eye = RMatrix::identity(2);
  EXPECT_EQ(a * eye, a);
  EXPECT_EQ(eye * a, a);
}

TEST(Matrix, OuterProductRankOne) {
  const RMatrix m = outer(RVector{1.0, 2.0}, RVector{3.0, 4.0});
  EXPECT_EQ(m(0, 0), 3.0);
  EXPECT_EQ(m(1, 1), 8.0);
}

TEST(Matrix, ComplexOuterConjugatesSecondArgument) {
  const CMatrix m =
      outer(CVector{{0.0, 1.0}}, CVector{{0.0, 1.0}});
  EXPECT_EQ(m(0, 0), std::complex<double>(1.0, 0.0));
}

TEST(Matrix, FrobeniusNorm) {
  RMatrix m{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(frobenius_norm(m), 5.0);
}

TEST(Matrix, MaxAbs) {
  RMatrix m{{-9.0, 1.0}, {2.0, 3.0}};
  EXPECT_DOUBLE_EQ(max_abs(m), 9.0);
}

TEST(Matrix, DiagonalExtraction) {
  RMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  const RVector d = m.diagonal();
  EXPECT_EQ(d[0], 1.0);
  EXPECT_EQ(d[1], 4.0);
}

TEST(Matrix, StreamOutputContainsEntries) {
  RMatrix m{{1.0, 2.0}};
  std::ostringstream os;
  os << m;
  EXPECT_NE(os.str().find('1'), std::string::npos);
  EXPECT_NE(os.str().find('2'), std::string::npos);
}

// Property sweep: (A B)^T == B^T A^T over random matrices.
class MatrixAlgebraProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(MatrixAlgebraProperty, TransposeOfProduct) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const std::size_t n = 3 + GetParam() % 4;
  RMatrix a(n, n), b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = dist(rng);
      b(i, j) = dist(rng);
    }
  }
  const RMatrix lhs = (a * b).transpose();
  const RMatrix rhs = b.transpose() * a.transpose();
  EXPECT_LT(max_abs(lhs - rhs), 1e-12);
}

TEST_P(MatrixAlgebraProperty, DistributiveLaw) {
  std::mt19937 rng(GetParam() * 7919u + 13u);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  const std::size_t n = 2 + GetParam() % 5;
  RMatrix a(n, n), b(n, n), c(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = dist(rng);
      b(i, j) = dist(rng);
      c(i, j) = dist(rng);
    }
  }
  EXPECT_LT(max_abs(a * (b + c) - (a * b + a * c)), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixAlgebraProperty,
                         ::testing::Range(0u, 12u));

}  // namespace
}  // namespace safe::linalg
