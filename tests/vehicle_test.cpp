// Tests for longitudinal kinematics (Eqs. 15/17) and leader profiles.
#include <gtest/gtest.h>

#include <cmath>

#include "vehicle/leader_profile.hpp"
#include "vehicle/longitudinal.hpp"

namespace safe::vehicle {
namespace {

TEST(Longitudinal, StepRejectsBadSampleTime) {
  EXPECT_THROW(step(VehicleState{}, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(step(VehicleState{}, 0.0, -1.0), std::invalid_argument);
}

TEST(Longitudinal, ConstantSpeedAdvancesPosition) {
  VehicleState s{.position_m = 10.0, .velocity_mps = 20.0};
  s = step(s, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(s.position_m, 30.0);
  EXPECT_DOUBLE_EQ(s.velocity_mps, 20.0);
}

TEST(Longitudinal, AccelerationMatchesEquations) {
  // Eq. 15: v' = v + aT; Eq. 17: x' = x + vT + aT^2/2.
  VehicleState s{.position_m = 0.0, .velocity_mps = 10.0};
  s = step(s, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(s.velocity_mps, 12.0);
  EXPECT_DOUBLE_EQ(s.position_m, 11.0);
  EXPECT_DOUBLE_EQ(s.acceleration_mps2, 2.0);
}

TEST(Longitudinal, StopsCleanlyAtZeroSpeed) {
  VehicleState s{.position_m = 0.0, .velocity_mps = 1.0};
  s = step(s, -2.0, 1.0);  // would reach v = -1 unclamped
  EXPECT_EQ(s.velocity_mps, 0.0);
  EXPECT_EQ(s.acceleration_mps2, 0.0);
  // Stops after v/|a| = 0.5 s: x = 1*0.5 - 0.5*2*0.25 = 0.25.
  EXPECT_NEAR(s.position_m, 0.25, 1e-12);
  // Staying stopped does not move it backwards.
  s = step(s, -2.0, 1.0);
  EXPECT_NEAR(s.position_m, 0.25, 1e-12);
}

TEST(Longitudinal, GapAndRelativeVelocity) {
  const VehicleState leader{.position_m = 120.0, .velocity_mps = 25.0};
  const VehicleState follower{.position_m = 20.0, .velocity_mps = 28.0};
  EXPECT_DOUBLE_EQ(gap_m(leader, follower), 100.0);
  EXPECT_DOUBLE_EQ(relative_velocity_mps(leader, follower), -3.0);
}

TEST(LeaderProfiles, ConstantAccel) {
  const ConstantAccelProfile p(0.5);
  EXPECT_DOUBLE_EQ(p.acceleration_mps2(0.0), 0.5);
  EXPECT_DOUBLE_EQ(p.acceleration_mps2(1000.0), 0.5);
}

TEST(LeaderProfiles, ConstantDecelValidatesSign) {
  EXPECT_THROW(ConstantDecelProfile(0.1), std::invalid_argument);
  const ConstantDecelProfile p;
  EXPECT_DOUBLE_EQ(p.acceleration_mps2(42.0), -0.1082);
  EXPECT_EQ(p.name(), "const-decel");
}

TEST(LeaderProfiles, DecelThenAccelSwitches) {
  const DecelThenAccelProfile p;  // paper values, switch at 150 s
  EXPECT_DOUBLE_EQ(p.acceleration_mps2(0.0), -0.1082);
  EXPECT_DOUBLE_EQ(p.acceleration_mps2(149.999), -0.1082);
  EXPECT_DOUBLE_EQ(p.acceleration_mps2(150.0), 0.012);
  EXPECT_DOUBLE_EQ(p.acceleration_mps2(299.0), 0.012);
}

TEST(LeaderProfiles, DecelThenAccelValidation) {
  EXPECT_THROW(DecelThenAccelProfile(0.1, 0.012, 150.0),
               std::invalid_argument);
  EXPECT_THROW(DecelThenAccelProfile(-0.1, -0.012, 150.0),
               std::invalid_argument);
  EXPECT_THROW(DecelThenAccelProfile(-0.1, 0.012, 0.0),
               std::invalid_argument);
}

TEST(LeaderProfiles, StopAndGoIsPeriodicZeroMean) {
  const StopAndGoProfile p(0.3, 120.0);
  EXPECT_NEAR(p.acceleration_mps2(0.0), 0.0, 1e-12);
  EXPECT_NEAR(p.acceleration_mps2(30.0), 0.3, 1e-12);
  EXPECT_NEAR(p.acceleration_mps2(90.0), -0.3, 1e-12);
  EXPECT_NEAR(p.acceleration_mps2(120.0), p.acceleration_mps2(0.0), 1e-9);
  double mean = 0.0;
  for (int k = 0; k < 120; ++k) mean += p.acceleration_mps2(k);
  EXPECT_NEAR(mean / 120.0, 0.0, 0.01);
}

TEST(LeaderProfiles, StopAndGoValidation) {
  EXPECT_THROW(StopAndGoProfile(0.0, 120.0), std::invalid_argument);
  EXPECT_THROW(StopAndGoProfile(0.3, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace safe::vehicle
