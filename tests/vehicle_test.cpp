// Tests for longitudinal kinematics (Eqs. 15/17) and leader profiles.
#include <gtest/gtest.h>

#include <cmath>

#include "vehicle/leader_profile.hpp"
#include "vehicle/longitudinal.hpp"

namespace safe::vehicle {
namespace {

TEST(Longitudinal, StepRejectsBadSampleTime) {
  EXPECT_THROW(step(VehicleState{}, MetersPerSecond2{0.0}, Seconds{0.0}),
               std::invalid_argument);
  EXPECT_THROW(step(VehicleState{}, MetersPerSecond2{0.0}, Seconds{-1.0}),
               std::invalid_argument);
}

TEST(Longitudinal, ConstantSpeedAdvancesPosition) {
  VehicleState s{.position_m = Meters{10.0},
                 .velocity_mps = MetersPerSecond{20.0}};
  s = step(s, MetersPerSecond2{0.0}, Seconds{1.0});
  EXPECT_DOUBLE_EQ(s.position_m.value(), 30.0);
  EXPECT_DOUBLE_EQ(s.velocity_mps.value(), 20.0);
}

TEST(Longitudinal, AccelerationMatchesEquations) {
  // Eq. 15: v' = v + aT; Eq. 17: x' = x + vT + aT^2/2.
  VehicleState s{.position_m = Meters{0.0},
                 .velocity_mps = MetersPerSecond{10.0}};
  s = step(s, MetersPerSecond2{2.0}, Seconds{1.0});
  EXPECT_DOUBLE_EQ(s.velocity_mps.value(), 12.0);
  EXPECT_DOUBLE_EQ(s.position_m.value(), 11.0);
  EXPECT_DOUBLE_EQ(s.acceleration_mps2.value(), 2.0);
}

TEST(Longitudinal, StopsCleanlyAtZeroSpeed) {
  VehicleState s{.position_m = Meters{0.0},
                 .velocity_mps = MetersPerSecond{1.0}};
  // Would reach v = -1 unclamped.
  s = step(s, MetersPerSecond2{-2.0}, Seconds{1.0});
  EXPECT_EQ(s.velocity_mps, MetersPerSecond{0.0});
  EXPECT_EQ(s.acceleration_mps2, MetersPerSecond2{0.0});
  // Stops after v/|a| = 0.5 s: x = 1*0.5 - 0.5*2*0.25 = 0.25.
  EXPECT_NEAR(s.position_m.value(), 0.25, 1e-12);
  // Staying stopped does not move it backwards.
  s = step(s, MetersPerSecond2{-2.0}, Seconds{1.0});
  EXPECT_NEAR(s.position_m.value(), 0.25, 1e-12);
}

TEST(Longitudinal, GapAndRelativeVelocity) {
  const VehicleState leader{.position_m = Meters{120.0},
                            .velocity_mps = MetersPerSecond{25.0}};
  const VehicleState follower{.position_m = Meters{20.0},
                              .velocity_mps = MetersPerSecond{28.0}};
  EXPECT_DOUBLE_EQ(gap(leader, follower).value(), 100.0);
  EXPECT_DOUBLE_EQ(relative_velocity(leader, follower).value(), -3.0);
}

TEST(LeaderProfiles, ConstantAccel) {
  const ConstantAccelProfile p(MetersPerSecond2{0.5});
  EXPECT_DOUBLE_EQ(p.acceleration(Seconds{0.0}).value(), 0.5);
  EXPECT_DOUBLE_EQ(p.acceleration(Seconds{1000.0}).value(), 0.5);
}

TEST(LeaderProfiles, ConstantDecelValidatesSign) {
  EXPECT_THROW(ConstantDecelProfile(MetersPerSecond2{0.1}),
               std::invalid_argument);
  const ConstantDecelProfile p;
  EXPECT_DOUBLE_EQ(p.acceleration(Seconds{42.0}).value(), -0.1082);
  EXPECT_EQ(p.name(), "const-decel");
}

TEST(LeaderProfiles, DecelThenAccelSwitches) {
  const DecelThenAccelProfile p;  // paper values, switch at 150 s
  EXPECT_DOUBLE_EQ(p.acceleration(Seconds{0.0}).value(), -0.1082);
  EXPECT_DOUBLE_EQ(p.acceleration(Seconds{149.999}).value(), -0.1082);
  EXPECT_DOUBLE_EQ(p.acceleration(Seconds{150.0}).value(), 0.012);
  EXPECT_DOUBLE_EQ(p.acceleration(Seconds{299.0}).value(), 0.012);
}

TEST(LeaderProfiles, DecelThenAccelValidation) {
  EXPECT_THROW(DecelThenAccelProfile(MetersPerSecond2{0.1},
                                     MetersPerSecond2{0.012}, Seconds{150.0}),
               std::invalid_argument);
  EXPECT_THROW(DecelThenAccelProfile(MetersPerSecond2{-0.1},
                                     MetersPerSecond2{-0.012}, Seconds{150.0}),
               std::invalid_argument);
  EXPECT_THROW(DecelThenAccelProfile(MetersPerSecond2{-0.1},
                                     MetersPerSecond2{0.012}, Seconds{0.0}),
               std::invalid_argument);
}

TEST(LeaderProfiles, StopAndGoIsPeriodicZeroMean) {
  const StopAndGoProfile p(MetersPerSecond2{0.3}, Seconds{120.0});
  EXPECT_NEAR(p.acceleration(Seconds{0.0}).value(), 0.0, 1e-12);
  EXPECT_NEAR(p.acceleration(Seconds{30.0}).value(), 0.3, 1e-12);
  EXPECT_NEAR(p.acceleration(Seconds{90.0}).value(), -0.3, 1e-12);
  EXPECT_NEAR(p.acceleration(Seconds{120.0}).value(),
              p.acceleration(Seconds{0.0}).value(), 1e-9);
  double mean = 0.0;
  for (int k = 0; k < 120; ++k) {
    mean += p.acceleration(Seconds{static_cast<double>(k)}).value();
  }
  EXPECT_NEAR(mean / 120.0, 0.0, 0.01);
}

TEST(LeaderProfiles, StopAndGoValidation) {
  EXPECT_THROW(StopAndGoProfile(MetersPerSecond2{0.0}, Seconds{120.0}),
               std::invalid_argument);
  EXPECT_THROW(StopAndGoProfile(MetersPerSecond2{0.3}, Seconds{0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace safe::vehicle
