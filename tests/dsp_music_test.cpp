// Tests for covariance estimation, MUSIC, root-MUSIC, and the PRBS.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>
#include <set>

#include "dsp/covariance.hpp"
#include "dsp/music.hpp"
#include "dsp/prbs.hpp"

namespace safe::dsp {
namespace {

ComplexSignal make_tone(double freq_hz, double fs, std::size_t n,
                        double amplitude = 1.0, double phase = 0.0) {
  ComplexSignal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::polar(amplitude, 2.0 * std::numbers::pi * freq_hz *
                                         static_cast<double>(i) / fs +
                                     phase);
  }
  return x;
}

void add_noise(ComplexSignal& x, double sigma, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, sigma / std::sqrt(2.0));
  for (auto& xi : x) xi += Complex{dist(rng), dist(rng)};
}

TEST(Covariance, RejectsZeroOrder) {
  EXPECT_THROW(sample_covariance(ComplexSignal(8), 0), std::invalid_argument);
}

TEST(Covariance, RejectsShortSignal) {
  EXPECT_THROW(sample_covariance(ComplexSignal(3), 4), std::invalid_argument);
}

TEST(Covariance, IsHermitian) {
  ComplexSignal x = make_tone(0.1, 1.0, 64);
  add_noise(x, 0.2, 5);
  const auto r = sample_covariance(x, 8);
  EXPECT_LT(linalg::max_abs(r - r.adjoint()), 1e-12);
}

TEST(Covariance, DiagonalIsSignalPower) {
  // Unit-amplitude tone: every diagonal entry approximates power 1.
  const ComplexSignal x = make_tone(0.11, 1.0, 512);
  const auto r = sample_covariance(x, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(std::real(r(i, i)), 1.0, 1e-9);
  }
}

TEST(Covariance, ForwardBackwardIsPersymmetricHermitian) {
  ComplexSignal x = make_tone(0.2, 1.0, 128, 1.0, 0.7);
  add_noise(x, 0.1, 17);
  const auto r = forward_backward_covariance(x, 8);
  EXPECT_LT(linalg::max_abs(r - r.adjoint()), 1e-12);
  // Persymmetry: J conj(R) J == R.
  EXPECT_LT(linalg::max_abs(exchange_conjugate(r) - r), 1e-12);
}

TEST(Covariance, ExchangeConjugateIsInvolution) {
  ComplexSignal x = make_tone(0.05, 1.0, 64);
  add_noise(x, 0.3, 23);
  const auto r = sample_covariance(x, 5);
  EXPECT_LT(linalg::max_abs(exchange_conjugate(exchange_conjugate(r)) - r),
            1e-14);
}

TEST(RootMusic, SingleCleanTone) {
  const double fs = 1.0e6;
  const ComplexSignal x = make_tone(47'000.0, fs, 256);
  const auto freqs = root_music_frequencies(x, fs, 1);
  ASSERT_EQ(freqs.size(), 1u);
  EXPECT_NEAR(freqs[0], 47'000.0, 50.0);
}

TEST(RootMusic, NegativeFrequencyTone) {
  const double fs = 1.0e6;
  const ComplexSignal x = make_tone(-210'000.0, fs, 256);
  const auto freqs = root_music_frequencies(x, fs, 1);
  ASSERT_EQ(freqs.size(), 1u);
  EXPECT_NEAR(freqs[0], -210'000.0, 50.0);
}

TEST(RootMusic, ResolvesCloselySpacedTones) {
  // Two tones 1.5 kHz apart with only 256 samples at 1 MHz: the raw FFT bin
  // width is ~3.9 kHz, so a periodogram cannot separate them. MUSIC can.
  const double fs = 1.0e6;
  ComplexSignal x = make_tone(100'000.0, fs, 256, 1.0, 0.3);
  const ComplexSignal y = make_tone(101'500.0, fs, 256, 1.0, 2.1);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += y[i];
  add_noise(x, 0.05, 31);
  auto freqs = root_music_frequencies(x, fs, 2, {.covariance_order = 24});
  ASSERT_EQ(freqs.size(), 2u);
  std::sort(freqs.begin(), freqs.end());
  EXPECT_NEAR(freqs[0], 100'000.0, 300.0);
  EXPECT_NEAR(freqs[1], 101'500.0, 300.0);
}

TEST(RootMusic, ResolvesUnequalPowerTones) {
  // The platoon's multi-target echo scene: the direct predecessor plus a
  // second-ahead return at a quarter of the power (the default RCS scale).
  // Root-MUSIC must still report both components, strongest one accurately.
  const double fs = 1.0e6;
  ComplexSignal x = make_tone(90'000.0, fs, 256, 1.0, 0.9);
  const ComplexSignal y = make_tone(94'000.0, fs, 256, 0.5, 1.7);  // -6 dB
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += y[i];
  add_noise(x, 0.05, 29);
  auto freqs = root_music_frequencies(x, fs, 2, {.covariance_order = 24});
  ASSERT_EQ(freqs.size(), 2u);
  std::sort(freqs.begin(), freqs.end());
  EXPECT_NEAR(freqs[0], 90'000.0, 300.0);
  EXPECT_NEAR(freqs[1], 94'000.0, 500.0);
}

TEST(RootMusic, ResolutionThresholdIsWellBelowTheFftLimit) {
  // Pins the super-resolution margin the multi-target scenes rely on: with
  // 256 samples at 1 MHz the FFT bin is fs/N ~ 3.9 kHz; root-MUSIC (order
  // 24, light noise) must still separate tones 1/5th of a bin apart. If a
  // covariance or eigensolver change degrades this, the platoon's
  // second-ahead echoes start fusing with the primary return.
  const double fs = 1.0e6;
  const double separation_hz = 800.0;  // ~0.2 FFT bins
  ComplexSignal x = make_tone(100'000.0, fs, 256, 1.0, 0.3);
  const ComplexSignal y =
      make_tone(100'000.0 + separation_hz, fs, 256, 1.0, 2.1);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += y[i];
  add_noise(x, 0.01, 31);
  auto freqs = root_music_frequencies(x, fs, 2, {.covariance_order = 24});
  ASSERT_EQ(freqs.size(), 2u);
  std::sort(freqs.begin(), freqs.end());
  EXPECT_NEAR(freqs[0], 100'000.0, separation_hz / 3.0);
  EXPECT_NEAR(freqs[1], 100'000.0 + separation_hz, separation_hz / 3.0);
}

TEST(RootMusic, NoisyToneStillRecovered) {
  const double fs = 1.0e6;
  ComplexSignal x = make_tone(84'000.0, fs, 512);
  add_noise(x, 0.5, 47);  // SNR = 6 dB
  const auto freqs = root_music_frequencies(x, fs, 1);
  ASSERT_EQ(freqs.size(), 1u);
  EXPECT_NEAR(freqs[0], 84'000.0, 500.0);
}

TEST(RootMusic, ZeroSourcesReturnsEmpty) {
  const ComplexSignal x = make_tone(1000.0, 1.0e6, 64);
  EXPECT_TRUE(root_music_frequencies(x, 1.0e6, 0).empty());
}

TEST(RootMusic, TooManySourcesThrows) {
  const ComplexSignal x = make_tone(1000.0, 1.0e6, 64);
  EXPECT_THROW(
      root_music_frequencies(x, 1.0e6, 16, {.covariance_order = 16}),
      std::invalid_argument);
}

TEST(RootMusic, InvalidSampleRateThrows) {
  const ComplexSignal x = make_tone(1000.0, 1.0e6, 64);
  EXPECT_THROW(root_music_frequencies(x, -1.0, 1), std::invalid_argument);
}

TEST(MusicPseudospectrum, PeaksAtToneFrequency) {
  const double fs = 1.0e6;
  const double f = 125'000.0;  // omega = 2*pi*f/fs = pi/4
  ComplexSignal x = make_tone(f, fs, 512);
  add_noise(x, 0.1, 3);
  const std::size_t grid = 1024;
  const auto spec = music_pseudospectrum(x, 1, grid);
  ASSERT_EQ(spec.size(), grid);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < grid; ++i) {
    if (spec[i] > spec[peak]) peak = i;
  }
  const double omega = -std::numbers::pi +
                       2.0 * std::numbers::pi * static_cast<double>(peak) /
                           static_cast<double>(grid);
  EXPECT_NEAR(omega, 2.0 * std::numbers::pi * f / fs, 0.02);
}

TEST(MusicPseudospectrum, EmptyGridThrows) {
  const ComplexSignal x = make_tone(1000.0, 1.0e6, 64);
  EXPECT_THROW(music_pseudospectrum(x, 1, 0), std::invalid_argument);
}

class RootMusicSweep : public ::testing::TestWithParam<double> {};

TEST_P(RootMusicSweep, FrequencyRecoveredAcrossBand) {
  const double fs = 1.0e6;
  const double f = GetParam();
  ComplexSignal x = make_tone(f, fs, 384);
  add_noise(x, 0.1, static_cast<unsigned>(std::abs(f)));
  const auto freqs = root_music_frequencies(x, fs, 1);
  ASSERT_EQ(freqs.size(), 1u);
  EXPECT_NEAR(freqs[0], f, 300.0);
}

INSTANTIATE_TEST_SUITE_P(Band, RootMusicSweep,
                         ::testing::Values(-420'000.0, -111'000.0, -9'000.0,
                                           4'000.0, 36'000.0, 47'500.0,
                                           52'000.0, 149'000.0, 260'000.0,
                                           431'000.0));

TEST(Prbs, ZeroSeedRemapped) {
  Prbs p(0);
  EXPECT_NE(p.state(), 0);
}

TEST(Prbs, DeterministicForSameSeed) {
  EXPECT_EQ(prbs_sequence(0x1234, 256), prbs_sequence(0x1234, 256));
}

TEST(Prbs, DifferentSeedsDiffer) {
  EXPECT_NE(prbs_sequence(0x1234, 256), prbs_sequence(0x4321, 256));
}

TEST(Prbs, MaximalLengthPeriod) {
  // The 16-bit maximal LFSR revisits its seed state after exactly 65535
  // steps and not before half that (spot-check).
  Prbs p(0xACE1);
  const std::uint16_t start = p.state();
  std::uint32_t steps = 0;
  do {
    p.next_bit();
    ++steps;
  } while (p.state() != start && steps <= Prbs::kPeriod);
  EXPECT_EQ(steps, Prbs::kPeriod);
}

TEST(Prbs, BitBalanceIsNearHalf) {
  const auto bits = prbs_sequence(0xBEEF, 4096);
  std::size_t ones = 0;
  for (const bool b : bits) ones += b ? 1 : 0;
  const double ratio = static_cast<double>(ones) / 4096.0;
  EXPECT_NEAR(ratio, 0.5, 0.03);
}

TEST(Prbs, NextBitsRange) {
  Prbs p(0x5555);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(p.next_bits(4), 16u);
  }
  EXPECT_THROW(p.next_bits(0), std::invalid_argument);
  EXPECT_THROW(p.next_bits(33), std::invalid_argument);
}

TEST(Prbs, BernoulliFrequencyMatchesProbability) {
  Prbs p(0x2468);
  std::size_t hits = 0;
  const std::size_t trials = 8192;
  for (std::size_t i = 0; i < trials; ++i) {
    hits += p.bernoulli(1, 10) ? 1u : 0u;
  }
  EXPECT_NEAR(static_cast<double>(hits) / static_cast<double>(trials), 0.1,
              0.02);
}

TEST(Prbs, BernoulliEdgeCases) {
  Prbs p(0x1357);
  EXPECT_THROW(p.bernoulli(1, 0), std::invalid_argument);
  EXPECT_THROW(p.bernoulli(3, 2), std::invalid_argument);
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(p.bernoulli(1, 1));
    EXPECT_FALSE(p.bernoulli(0, 1));
  }
}

}  // namespace
}  // namespace safe::dsp
