// Tests for the sim substrate: noise sources, LTI plant, trace recorder.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/lti_system.hpp"
#include "sim/noise.hpp"
#include "sim/trace.hpp"

namespace safe::sim {
namespace {

using linalg::RMatrix;
using linalg::RVector;

LtiModel double_integrator(double dt = 1.0) {
  // Position-velocity kinematics: the exact model the car-following study
  // linearizes to.
  return LtiModel{
      .a = RMatrix{{1.0, dt}, {0.0, 1.0}},
      .b = RMatrix{{0.5 * dt * dt}, {dt}},
      .c = RMatrix{{1.0, 0.0}},
  };
}

TEST(GaussianNoise, RejectsNegativeStddev) {
  EXPECT_THROW(GaussianNoise(0.0, -1.0, 1), std::invalid_argument);
}

TEST(GaussianNoise, ZeroStddevIsDeterministicMean) {
  GaussianNoise n(3.5, 0.0, 7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(n.sample(), 3.5);
}

TEST(GaussianNoise, SeededReproducibility) {
  GaussianNoise a(0.0, 1.0, 42), b(0.0, 1.0, 42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.sample(), b.sample());
}

TEST(GaussianNoise, SampleMomentsMatch) {
  GaussianNoise n(2.0, 0.5, 13);
  double sum = 0.0, sum2 = 0.0;
  const int count = 20000;
  for (int i = 0; i < count; ++i) {
    const double s = n.sample();
    sum += s;
    sum2 += s * s;
  }
  const double mean = sum / count;
  const double var = sum2 / count - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(std::sqrt(var), 0.5, 0.02);
}

TEST(UniformNoise, RejectsEmptyRange) {
  EXPECT_THROW(UniformNoise(1.0, 1.0, 3), std::invalid_argument);
}

TEST(UniformNoise, SamplesStayInRange) {
  UniformNoise n(-2.0, 5.0, 9);
  for (int i = 0; i < 1000; ++i) {
    const double s = n.sample();
    EXPECT_GE(s, -2.0);
    EXPECT_LT(s, 5.0);
  }
}

TEST(LtiModel, ValidationCatchesBadShapes) {
  LtiModel ok = double_integrator();
  EXPECT_NO_THROW(validate_model(ok));

  LtiModel bad_a = ok;
  bad_a.a = RMatrix(2, 3);
  EXPECT_THROW(validate_model(bad_a), std::invalid_argument);

  LtiModel bad_b = ok;
  bad_b.b = RMatrix(3, 1);
  EXPECT_THROW(validate_model(bad_b), std::invalid_argument);

  LtiModel bad_c = ok;
  bad_c.c = RMatrix(1, 3);
  EXPECT_THROW(validate_model(bad_c), std::invalid_argument);
}

TEST(LtiSystem, InitialStateDimensionChecked) {
  EXPECT_THROW(LtiSystem(double_integrator(), RVector{1.0}),
               std::invalid_argument);
}

TEST(LtiSystem, StepMatchesHandComputation) {
  LtiSystem sys(double_integrator(), RVector{0.0, 10.0});
  // One step with unit acceleration: x = 0 + 10*1 + 0.5, v = 10 + 1.
  const RVector& x1 = sys.step(RVector{1.0});
  EXPECT_NEAR(x1[0], 10.5, 1e-12);
  EXPECT_NEAR(x1[1], 11.0, 1e-12);
}

TEST(LtiSystem, StepInputDimensionChecked) {
  LtiSystem sys(double_integrator(), RVector{0.0, 0.0});
  EXPECT_THROW(sys.step(RVector{1.0, 2.0}), std::invalid_argument);
}

TEST(LtiSystem, NoiseFreeMeasureEqualsTrueOutput) {
  LtiSystem sys(double_integrator(), RVector{5.0, 2.0});
  EXPECT_EQ(sys.measure()[0], 5.0);
  EXPECT_EQ(sys.true_output()[0], 5.0);
}

TEST(LtiSystem, NoisyMeasureCentersOnTruth) {
  LtiSystem sys(double_integrator(), RVector{100.0, 0.0}, 0.5, 77);
  double sum = 0.0;
  const int count = 5000;
  for (int i = 0; i < count; ++i) sum += sys.measure()[0];
  EXPECT_NEAR(sum / count, 100.0, 0.05);
}

TEST(LtiSystem, ResetRestoresState) {
  LtiSystem sys(double_integrator(), RVector{0.0, 0.0});
  sys.step(RVector{1.0});
  sys.reset(RVector{3.0, 4.0});
  EXPECT_EQ(sys.state()[0], 3.0);
  EXPECT_EQ(sys.state()[1], 4.0);
  EXPECT_THROW(sys.reset(RVector{1.0}), std::invalid_argument);
}

TEST(LtiSystem, UnforcedTrajectoryFollowsPowersOfA) {
  LtiSystem sys(double_integrator(0.5), RVector{1.0, 2.0});
  for (int k = 0; k < 4; ++k) sys.step(RVector{0.0});
  // After 4 steps of dt=0.5 with no input: x = 1 + 2*4*0.5 = 5, v = 2.
  EXPECT_NEAR(sys.state()[0], 5.0, 1e-12);
  EXPECT_NEAR(sys.state()[1], 2.0, 1e-12);
}

TEST(Observability, DoubleIntegratorWithPositionOutputIsObservable) {
  EXPECT_TRUE(is_observable(double_integrator()));
}

TEST(Observability, VelocityOnlyOutputOfDriftlessPlantIsNotObservable) {
  // Measuring only velocity of [pos; vel] dynamics cannot recover position.
  LtiModel m = double_integrator();
  m.c = RMatrix{{0.0, 1.0}};
  EXPECT_FALSE(is_observable(m));
}

TEST(Observability, MatrixHasExpectedStructure) {
  const RMatrix obs = observability_matrix(double_integrator());
  ASSERT_EQ(obs.rows(), 2u);
  ASSERT_EQ(obs.cols(), 2u);
  EXPECT_EQ(obs(0, 0), 1.0);  // C
  EXPECT_EQ(obs(0, 1), 0.0);
  EXPECT_EQ(obs(1, 0), 1.0);  // CA
  EXPECT_EQ(obs(1, 1), 1.0);
}

TEST(Trace, RequiresColumns) {
  EXPECT_THROW(Trace({}), std::invalid_argument);
}

TEST(Trace, AppendAndReadBack) {
  Trace t({"time", "value"});
  t.append_row({0.0, 1.0});
  t.append_row({1.0, 2.5});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.column("value")[1], 2.5);
  EXPECT_EQ(t.column(0)[1], 1.0);
}

TEST(Trace, RowArityChecked) {
  Trace t({"a", "b"});
  EXPECT_THROW(t.append_row({1.0}), std::invalid_argument);
}

TEST(Trace, UnknownColumnThrows) {
  Trace t({"a"});
  EXPECT_THROW(static_cast<void>(t.column("missing")), std::out_of_range);
  EXPECT_THROW(static_cast<void>(t.column(5)), std::out_of_range);
}

TEST(Trace, CsvOutputHasHeaderAndRows) {
  Trace t({"x", "y"});
  t.append_row({1.0, 2.0});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Trace, CsvRoundTrip) {
  Trace t({"a", "b", "c"});
  t.append_row({1.0, -2.5, 3.25});
  t.append_row({4.0, 5.5, -6.125});
  std::ostringstream os;
  t.write_csv(os);
  std::istringstream is(os.str());
  const Trace back = Trace::read_csv(is);
  EXPECT_EQ(back.num_rows(), 2u);
  EXPECT_EQ(back.column_names(), t.column_names());
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(back.column(c), t.column(c));
  }
}

TEST(Trace, ReadCsvRejectsMalformedInput) {
  {
    std::istringstream empty("");
    EXPECT_THROW(Trace::read_csv(empty), std::invalid_argument);
  }
  {
    std::istringstream bad_number("x,y\n1,banana\n");
    EXPECT_THROW(Trace::read_csv(bad_number), std::invalid_argument);
  }
  {
    std::istringstream junk("x\n1.5zzz\n");
    EXPECT_THROW(Trace::read_csv(junk), std::invalid_argument);
  }
  {
    std::istringstream ragged("x,y\n1\n");
    EXPECT_THROW(Trace::read_csv(ragged), std::invalid_argument);
  }
}

TEST(Trace, ReadCsvSkipsBlankLines) {
  std::istringstream is("v\n1\n\n2\n");
  const Trace t = Trace::read_csv(is);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.column("v")[1], 2.0);
}

TEST(Trace, TableSubsamplingKeepsLastRow) {
  Trace t({"k"});
  for (int i = 0; i < 10; ++i) t.append_row({static_cast<double>(i)});
  std::ostringstream os;
  t.write_table(os, 4);
  // Rows 0, 4, 8 and the forced final row 9.
  EXPECT_NE(os.str().find("9.000"), std::string::npos);
  EXPECT_NE(os.str().find("4.000"), std::string::npos);
  EXPECT_EQ(os.str().find("3.000"), std::string::npos);
}

}  // namespace
}  // namespace safe::sim
