// Tests for the ACC hierarchy (Eqs. 12-14, 16) and the IDM.
#include <gtest/gtest.h>

#include <cmath>

#include "control/acc.hpp"
#include "control/idm.hpp"

namespace safe::control {
namespace {

TEST(AccParameters, Validation) {
  AccParameters p;
  p.headway_time_s = Seconds{0.0};
  EXPECT_THROW(validate_parameters(p), std::invalid_argument);
  p = AccParameters{};
  p.time_constant_s = Seconds{-1.0};
  EXPECT_THROW(validate_parameters(p), std::invalid_argument);
  p = AccParameters{};
  p.sample_time_s = Seconds{0.0};
  EXPECT_THROW(validate_parameters(p), std::invalid_argument);
  p = AccParameters{};
  p.max_accel_mps2 = MetersPerSecond2{0.0};
  EXPECT_THROW(validate_parameters(p), std::invalid_argument);
}

TEST(DesiredDistance, EquationTwelve) {
  // d_des = d_0 + tau_h * v_F with the paper's tau_h = 3 s, d_0 = 5 m.
  const AccParameters p;
  EXPECT_DOUBLE_EQ(desired_distance(p, MetersPerSecond{0.0}).value(), 5.0);
  EXPECT_DOUBLE_EQ(desired_distance(p, MetersPerSecond{20.0}).value(), 65.0);
}

TEST(UpperLevel, SpeedModeWithoutTarget) {
  UpperLevelController ctrl{AccParameters{}};
  AccInputs in;
  in.target_present = false;
  in.follower_speed_mps = MetersPerSecond{20.0};
  const AccCommand cmd = ctrl.step(in);
  EXPECT_EQ(cmd.mode, AccMode::kSpeedControl);
  EXPECT_DOUBLE_EQ(cmd.desired_speed_mps.value(),
                   AccParameters{}.set_speed_mps.value());
  EXPECT_GT(cmd.desired_accel_mps2, MetersPerSecond2{0.0});  // below set speed: accelerate
}

TEST(UpperLevel, SpeedModeWhenTargetFarAway) {
  UpperLevelController ctrl{AccParameters{}};
  AccInputs in;
  in.target_present = true;
  in.distance_m = Meters{200.0};  // far beyond the CTH envelope at any speed
  in.follower_speed_mps = MetersPerSecond{25.0};
  EXPECT_EQ(ctrl.step(in).mode, AccMode::kSpeedControl);
}

TEST(UpperLevel, SpacingModeInsideEnvelope) {
  UpperLevelController ctrl{AccParameters{}};
  AccInputs in;
  in.target_present = true;
  in.follower_speed_mps = MetersPerSecond{25.0};  // d_des = 80
  in.distance_m = Meters{60.0};                   // inside
  in.relative_velocity_mps = MetersPerSecond{-2.0};  // closing
  const AccCommand cmd = ctrl.step(in);
  EXPECT_EQ(cmd.mode, AccMode::kSpacingControl);
  // Closing and too near: decelerate.
  EXPECT_LT(cmd.desired_accel_mps2, MetersPerSecond2{0.0});
  EXPECT_LT(cmd.desired_speed_mps, in.follower_speed_mps);
}

TEST(UpperLevel, DesiredAccelClampedToLimits) {
  AccParameters p;
  p.max_decel_mps2 = MetersPerSecond2{2.0};
  UpperLevelController ctrl{p};
  AccInputs in;
  in.target_present = true;
  in.follower_speed_mps = MetersPerSecond{30.0};
  in.distance_m = Meters{10.0};  // emergency-close
  in.relative_velocity_mps = MetersPerSecond{-10.0};
  const AccCommand cmd = ctrl.step(in);
  EXPECT_GE(cmd.desired_accel_mps2, MetersPerSecond2{-2.0});
}

TEST(UpperLevel, SpacingNeverExceedsSetSpeed) {
  UpperLevelController ctrl{AccParameters{}};
  AccInputs in;
  in.target_present = true;
  in.follower_speed_mps = MetersPerSecond{29.0};
  in.distance_m = Meters{95.0};  // just inside the 1.2x envelope
  in.relative_velocity_mps = MetersPerSecond{10.0};  // leader racing away
  const AccCommand cmd = ctrl.step(in);
  EXPECT_LE(cmd.desired_speed_mps,
            AccParameters{}.set_speed_mps + MetersPerSecond{1e-12});
}

TEST(UpperLevel, ResetForgetsPreviousDesiredSpeed) {
  UpperLevelController ctrl{AccParameters{}};
  AccInputs in;
  in.follower_speed_mps = MetersPerSecond{10.0};
  ctrl.step(in);
  ctrl.reset();
  // After reset the Eq. 16 difference is taken against current speed again.
  const AccCommand cmd = ctrl.step(in);
  EXPECT_LE(cmd.desired_accel_mps2, AccParameters{}.max_accel_mps2);
}

TEST(UpperLevel, SafeStopCommandsFullRampEveryStep) {
  // Regression: the safe-stop ramp must be computed against the *current*
  // speed. The Eq. 16 difference (v_des(k) - v_des(k-1)) degenerates to the
  // follower's own acceleration once v_des locks to v_F - decel*T, i.e. the
  // "conservative stop" commanded no braking at all.
  const AccParameters p;
  UpperLevelController ctrl{p};
  AccInputs in;
  in.degraded_safe_stop = true;
  in.follower_speed_mps = MetersPerSecond{20.0};
  for (int k = 0; k < 5; ++k) {
    const AccCommand cmd = ctrl.step(in);
    EXPECT_EQ(cmd.mode, AccMode::kSafeStop);
    EXPECT_DOUBLE_EQ(cmd.desired_accel_mps2.value(),
                     -p.safe_stop_decel_mps2.value());
    // The plant barely responds (worst case): the command must not decay.
    in.follower_speed_mps -= MetersPerSecond{0.01};
  }
}

TEST(UpperLevel, SafeStopNeverCommandsReverse) {
  const AccParameters p;
  UpperLevelController ctrl{p};
  AccInputs in;
  in.degraded_safe_stop = true;
  in.follower_speed_mps =
      MetersPerSecond{0.5};  // less than one decel step from standstill
  const AccCommand cmd = ctrl.step(in);
  EXPECT_DOUBLE_EQ(cmd.desired_speed_mps.value(), 0.0);
  EXPECT_DOUBLE_EQ(cmd.desired_accel_mps2.value(),
                   -0.5 / p.sample_time_s.value());
}

TEST(UpperLevel, HoldoverNeverRaisesSpeedWhenPolicyEnabled) {
  AccParameters p;
  p.hold_speed_on_degraded_holdover = true;
  UpperLevelController ctrl{p};
  AccInputs in;
  in.target_present = false;  // dead sensor: "no target" is not "road clear"
  in.follower_speed_mps = MetersPerSecond{20.0};
  in.degraded_holdover = true;
  const AccCommand cmd = ctrl.step(in);
  EXPECT_LE(cmd.desired_speed_mps, in.follower_speed_mps);
  EXPECT_LE(cmd.desired_accel_mps2, MetersPerSecond2{0.0});

  // Same inputs with the policy off (paper behaviour): resume set speed.
  UpperLevelController legacy{AccParameters{}};
  EXPECT_DOUBLE_EQ(legacy.step(in).desired_speed_mps.value(),
                   AccParameters{}.set_speed_mps.value());
}

TEST(UpperLevel, EmergencyFloorOverridesSpacingLaw) {
  AccParameters p;
  p.emergency_headway_s = Seconds{0.5};
  UpperLevelController ctrl{p};
  AccInputs in;
  in.target_present = true;
  in.follower_speed_mps = MetersPerSecond{20.0};
  in.distance_m = Meters{10.0};  // below d_0 + 0.5 * v_F = 15 m
  in.relative_velocity_mps = MetersPerSecond{-1.0};
  const AccCommand cmd = ctrl.step(in);
  EXPECT_EQ(cmd.mode, AccMode::kSafeStop);
  EXPECT_DOUBLE_EQ(cmd.desired_accel_mps2.value(), -p.max_decel_mps2.value());

  // The floor is opt-in: default parameters keep the paper's CTH law even
  // this deep inside the envelope.
  UpperLevelController legacy{AccParameters{}};
  EXPECT_EQ(legacy.step(in).mode, AccMode::kSpacingControl);
}

TEST(LowerLevel, FirstOrderLagApproachesTarget) {
  LowerLevelController ctrl{AccParameters{}};
  double a = 0.0;
  for (int k = 0; k < 30; ++k) {
    a = ctrl.step(MetersPerSecond2{1.5}).actual_accel_mps2.value();
  }
  EXPECT_NEAR(a, 1.5, 1e-6);  // K1 = 1: tracks a_des
}

TEST(LowerLevel, SingleStepMatchesDiscretization) {
  // a1 = a0 + T/Ti * (K1 a_des - a0); T = 1, Ti = 1.008 -> blend 0.992.
  LowerLevelController ctrl{AccParameters{}};
  const auto s = ctrl.step(MetersPerSecond2{2.0});
  EXPECT_NEAR(s.actual_accel_mps2.value(), std::min(1.0 / 1.008, 1.0) * 2.0,
              1e-12);
}

TEST(LowerLevel, PedalAndBrakeSplit) {
  LowerLevelController ctrl{AccParameters{}};
  const auto accel = ctrl.step(MetersPerSecond2{2.0});
  EXPECT_GT(accel.pedal_accel_mps2, MetersPerSecond2{0.0});
  EXPECT_EQ(accel.brake_pressure, 0.0);

  LowerLevelController ctrl2{AccParameters{}};
  const auto brake = ctrl2.step(MetersPerSecond2{-2.0});
  EXPECT_EQ(brake.pedal_accel_mps2.value(), 0.0);
  EXPECT_GT(brake.brake_pressure, 0.0);
  // P_brake proportional to commanded deceleration.
  EXPECT_NEAR(brake.brake_pressure,
              -brake.actual_accel_mps2.value() *
                  AccParameters{}.brake_pressure_per_mps2,
              1e-9);
}

TEST(LowerLevel, ResetZeroesState) {
  LowerLevelController ctrl{AccParameters{}};
  ctrl.step(MetersPerSecond2{2.0});
  ctrl.reset();
  EXPECT_EQ(ctrl.actual_accel().value(), 0.0);
}

TEST(AccController, FacadeRunsBothLevels) {
  AccController acc;
  AccInputs in;
  in.target_present = true;
  in.follower_speed_mps = MetersPerSecond{25.0};
  in.distance_m = Meters{40.0};
  in.relative_velocity_mps = MetersPerSecond{-3.0};
  const auto out = acc.step(in);
  EXPECT_EQ(out.command.mode, AccMode::kSpacingControl);
  EXPECT_LT(out.actuation.actual_accel_mps2, MetersPerSecond2{0.0});
}

TEST(Idm, Validation) {
  IdmParameters p;
  p.max_accel_mps2 = MetersPerSecond2{0.0};
  EXPECT_THROW(validate_parameters(p), std::invalid_argument);
  p = IdmParameters{};
  p.desired_speed_mps = MetersPerSecond{0.0};
  EXPECT_THROW(validate_parameters(p), std::invalid_argument);
}

TEST(Idm, FreeRoadAcceleratesBelowDesiredSpeed) {
  const IdmParameters p;
  EXPECT_GT(idm_free_acceleration(p, MetersPerSecond{10.0}),
            MetersPerSecond2{0.0});
  EXPECT_NEAR(idm_free_acceleration(p, p.desired_speed_mps).value(), 0.0,
              1e-9);
  EXPECT_LT(idm_free_acceleration(p, p.desired_speed_mps * 1.2),
            MetersPerSecond2{0.0});
}

TEST(Idm, DesiredGapGrowsWithSpeedAndClosingRate) {
  const IdmParameters p;
  EXPECT_GT(idm_desired_gap(p, MetersPerSecond{30.0}, MetersPerSecond{30.0}),
            idm_desired_gap(p, MetersPerSecond{10.0}, MetersPerSecond{10.0}));
  EXPECT_GT(idm_desired_gap(p, MetersPerSecond{20.0}, MetersPerSecond{15.0}),
            idm_desired_gap(p, MetersPerSecond{20.0}, MetersPerSecond{20.0}));
}

TEST(Idm, BrakesWhenGapTooSmall) {
  const IdmParameters p;
  EXPECT_LT(idm_acceleration(p, MetersPerSecond{20.0}, MetersPerSecond{20.0},
                             Meters{5.0}),
            MetersPerSecond2{0.0});
}

TEST(Idm, EmergencyClampOnContact) {
  const IdmParameters p;
  EXPECT_LT(idm_acceleration(p, MetersPerSecond{20.0}, MetersPerSecond{20.0},
                             Meters{0.0}),
            MetersPerSecond2{-4.0});
}

TEST(Idm, EquilibriumIsStable) {
  // From a perturbed start, an IDM follower behind a constant-speed leader
  // settles to a constant gap.
  const IdmParameters p;
  double v = 25.0, gap = 20.0;
  const double v_lead = 22.0;
  for (int k = 0; k < 2000; ++k) {
    const double a = idm_acceleration(p, MetersPerSecond{v},
                                      MetersPerSecond{v_lead}, Meters{gap})
                         .value();
    v = std::max(v + a * 0.1, 0.0);
    gap += (v_lead - v) * 0.1;
  }
  EXPECT_NEAR(v, v_lead, 0.05);
  // Analytic equilibrium: a = 0 at s_eq = s* / sqrt(1 - (v/v0)^delta).
  const double free_term =
      std::pow(v / p.desired_speed_mps.value(), p.accel_exponent);
  const double s_eq =
      idm_desired_gap(p, MetersPerSecond{v}, MetersPerSecond{v_lead}).value() /
      std::sqrt(1.0 - free_term);
  EXPECT_NEAR(gap, s_eq, 1.0);
}

}  // namespace
}  // namespace safe::control
