// Tests for the `--attack <spec>` mini-language (DESIGN.md §17).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "attack/delay_injection.hpp"
#include "attack/dos_jammer.hpp"
#include "attack/spec.hpp"
#include "attack/spoofers.hpp"
#include "radar/link_budget.hpp"

namespace safe::attack {
namespace {

TEST(AttackSpec, EmptyAndNoneSelectNoAttack) {
  EXPECT_EQ(check_attack_spec("").status, SpecStatus::kOk);
  EXPECT_EQ(check_attack_spec("none").status, SpecStatus::kOk);
  EXPECT_EQ(make_attack(""), nullptr);
  EXPECT_EQ(make_attack("none"), nullptr);
  EXPECT_FALSE(attack_spec_enabled(""));
  EXPECT_FALSE(attack_spec_enabled("none"));
  EXPECT_TRUE(attack_spec_enabled("dos"));
}

TEST(AttackSpec, BuildsEveryKind) {
  EXPECT_EQ(make_attack("dos")->name(), "dos-jammer");
  EXPECT_EQ(make_attack("delay")->name(), "delay-injection");
  EXPECT_EQ(make_attack("spoof")->name(), "spoof");
  EXPECT_EQ(make_attack("chirp")->name(), "chirp");
  EXPECT_EQ(make_attack("entrain")->name(), "entrain");
}

TEST(AttackSpec, UnknownKindIsDistinguishedFromMalformed) {
  const SpecCheck unknown = check_attack_spec("quantum");
  EXPECT_EQ(unknown.status, SpecStatus::kUnknownKind);
  EXPECT_NE(unknown.message.find("quantum"), std::string::npos);
  // A parameterized unknown kind is still grammar-valid.
  EXPECT_EQ(check_attack_spec("quantum:q=1").status, SpecStatus::kUnknownKind);
  // Grammar errors rank as malformed even if the kind is unknown.
  EXPECT_EQ(check_attack_spec("quantum:q=").status, SpecStatus::kMalformed);
}

TEST(AttackSpec, RejectsGrammarErrors) {
  for (const char* spec : {":", "dos:power", "dos:=1", "dos:power=",
                           "dos:power=1,power=2", "d os", "dos:po wer=1"}) {
    EXPECT_EQ(check_attack_spec(spec).status, SpecStatus::kMalformed)
        << spec;
  }
}

TEST(AttackSpec, RejectsUnknownKeysPerKind) {
  EXPECT_EQ(check_attack_spec("dos:slope=2").status, SpecStatus::kMalformed);
  EXPECT_EQ(check_attack_spec("spoof:power=1").status, SpecStatus::kMalformed);
  EXPECT_EQ(check_attack_spec("none:power=1").status, SpecStatus::kMalformed);
}

TEST(AttackSpec, RejectsBadValues) {
  for (const char* spec :
       {"dos:power=0", "dos:power=-1", "dos:power=abc", "dos:power=inf",
        "dos:power=nan", "delay:delay_ns=0", "spoof:coherence=0",
        "spoof:coherence=1.5", "chirp:slope=0", "entrain:acquire=0",
        "entrain:acquire=-3", "entrain:jitter=-1", "entrain:replay=-1",
        "entrain:replay=65", "entrain:replay=1.5", "entrain:leak=-2"}) {
    EXPECT_EQ(check_attack_spec(spec).status, SpecStatus::kMalformed) << spec;
  }
}

TEST(AttackSpec, AcceptsHeaderExamples) {
  for (const char* spec :
       {"dos", "dos:power=0.5", "delay:delay_ns=80,advantage=8",
        "spoof:coherence=0.9,df=200", "chirp:slope=1.00000000002,offset=12",
        "entrain:acquire=3,replay=0,leak=15"}) {
    EXPECT_EQ(check_attack_spec(spec).status, SpecStatus::kOk) << spec;
  }
}

TEST(AttackSpec, CheckerAndBuilderAgree) {
  // The fuzz harness cross-checks this property over random inputs; pin the
  // contract here over a curated mix of valid and invalid specs.
  const std::vector<std::string> specs = {
      "",          "none",          "dos",
      "dos:power=0.5,gain=20,bw=2e8", "delay:evade=on",
      "spoof:dr=-3,df=-150,coherence=0.25,gain=2",
      "chirp:slope=2,offset=-6,gain=8",
      "entrain:acquire=1,jitter=0.5,ferr=-40,dr=9,gain=3,replay=64,leak=0.1",
      "dos:power=x", "delay:evade=maybe", "spoof:coherence=2",
      "entrain:replay=100", "warp", "warp:speed=9",
  };
  for (const std::string& spec : specs) {
    const SpecCheck check = check_attack_spec(spec);
    if (check.status == SpecStatus::kOk) {
      EXPECT_NO_THROW((void)make_attack(spec)) << spec;
    } else {
      EXPECT_FALSE(check.message.empty()) << spec;
      EXPECT_THROW((void)make_attack(spec), std::invalid_argument) << spec;
    }
  }
}

TEST(AttackSpec, DosInheritsJammerDefaults) {
  // A bare "dos" must keep composing with the campaign engine's jammer
  // sweep: the scenario's link budget flows through unless the spec
  // overrides it.
  radar::JammerParameters weak;
  weak.peak_power_w = 1.0e-6;
  const auto inherited = std::dynamic_pointer_cast<DosJammerAttack>(
      make_attack("dos", weak));
  ASSERT_NE(inherited, nullptr);
  EXPECT_DOUBLE_EQ(inherited->jammer().peak_power_w, 1.0e-6);

  const auto overridden = std::dynamic_pointer_cast<DosJammerAttack>(
      make_attack("dos:power=0.5", weak));
  ASSERT_NE(overridden, nullptr);
  EXPECT_DOUBLE_EQ(overridden->jammer().peak_power_w, 0.5);
}

TEST(AttackSpec, DelayKeysReachTheConfig) {
  const auto attack = std::dynamic_pointer_cast<DelayInjectionAttack>(
      make_attack("delay:delay_ns=80,advantage=8,evade=on"));
  ASSERT_NE(attack, nullptr);
  EXPECT_NEAR(attack->range_offset().value(), 12.0, 0.02);
}

TEST(AttackSpec, SpoofKeysReachTheConfig) {
  const auto attack = std::dynamic_pointer_cast<PhaseCoherentSpoofAttack>(
      make_attack("spoof:dr=9,df=300,coherence=0.7,gain=2"));
  ASSERT_NE(attack, nullptr);
  EXPECT_DOUBLE_EQ(attack->config().range_offset_m.value(), 9.0);
  EXPECT_DOUBLE_EQ(attack->config().doppler_shift_hz.value(), 300.0);
  EXPECT_DOUBLE_EQ(attack->config().coherence, 0.7);
  EXPECT_DOUBLE_EQ(attack->config().power_advantage, 2.0);
}

TEST(AttackSpec, EntrainKeysAndSeedReachTheConfig) {
  const auto attack = std::dynamic_pointer_cast<ChirpEntrainmentAttack>(
      make_attack("entrain:acquire=5,jitter=0.5,replay=2,leak=15",
                  radar::JammerParameters{}, 77));
  ASSERT_NE(attack, nullptr);
  EXPECT_EQ(attack->config().acquire_slots, 5u);
  EXPECT_DOUBLE_EQ(attack->config().timing_jitter_m.value(), 0.5);
  EXPECT_EQ(attack->config().replay_delay_slots, 2);
  EXPECT_DOUBLE_EQ(attack->config().leak_noise_factor, 15.0);
  EXPECT_EQ(attack->config().seed, 77u);
  // replay defaults to disabled (-1) when the key is absent.
  const auto free_running = std::dynamic_pointer_cast<ChirpEntrainmentAttack>(
      make_attack("entrain"));
  ASSERT_NE(free_running, nullptr);
  EXPECT_EQ(free_running->config().replay_delay_slots, -1);
}

TEST(AttackSpec, HelpMentionsEveryKind) {
  const std::string help = attack_spec_help();
  for (const char* kind : {"dos", "delay", "spoof", "chirp", "entrain"}) {
    EXPECT_NE(help.find(kind), std::string::npos) << kind;
  }
}

}  // namespace
}  // namespace safe::attack
