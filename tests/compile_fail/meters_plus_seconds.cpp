// MUST NOT COMPILE: adding quantities of different dimensions.
#include "units/units.hpp"

int main() {
  auto nonsense = safe::units::Meters{1.0} + safe::units::Seconds{1.0};
  (void)nonsense;
  return 0;
}
