// Positive control for the thread-safety negative tests: the same guarded
// fields, accessed correctly under a MutexLock, MUST COMPILE clean with
// -Werror=thread-safety. If this ever fails, the ts_* failures next to it
// prove nothing (the harness or the annotations broke, not the discipline).
#define SAFE_SENSING_TS_NEGATIVE_TEST
#include "runtime/thread_pool.hpp"
#include "serve/session.hpp"

namespace safe::runtime {

std::size_t ThreadPool::ts_probe_queue_depth_locked() {
  MutexLock guard(queues_[0]->mutex);
  return queues_[0]->tasks.size();
}

}  // namespace safe::runtime

namespace safe::serve {

std::size_t SessionManager::ts_probe_sessions_locked() {
  runtime::MutexLock guard(mutex_);
  return sessions_.size() + detached_.size();
}

}  // namespace safe::serve

int main() { return 0; }
