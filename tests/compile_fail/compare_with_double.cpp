// MUST NOT COMPILE: ordering a quantity against a bare double.
#include "units/units.hpp"

int main() {
  bool closer = safe::units::Meters{5.0} < 6.0;
  (void)closer;
  return 0;
}
