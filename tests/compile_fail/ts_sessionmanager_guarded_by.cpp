// MUST NOT COMPILE (clang, -Werror=thread-safety): touching the
// SessionManager's live-session map without holding the manager mutex is a
// build break. The probe hook only exists under
// SAFE_SENSING_TS_NEGATIVE_TEST (see session.hpp); defining it out of class
// here gives this TU access to the private guarded fields without weakening
// production visibility.
#define SAFE_SENSING_TS_NEGATIVE_TEST
#include "serve/session.hpp"

namespace safe::serve {

std::size_t SessionManager::ts_probe_sessions_unlocked() {
  // error: reading variable 'sessions_' requires holding mutex 'mutex_'
  return sessions_.size() + detached_.size();
}

}  // namespace safe::serve

int main() { return 0; }
