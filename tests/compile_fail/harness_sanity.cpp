// MUST COMPILE: positive control for the compile-fail harness. If this one
// fails, the harness itself is broken (bad include path, bad -std flag) and
// every WILL_FAIL case above would "pass" for the wrong reason.
#include "radar/fmcw.hpp"
#include "units/units.hpp"

int main() {
  auto offset = safe::radar::spoofed_range_offset(safe::units::Seconds{40e-9});
  auto delay = safe::radar::injection_delay_for_offset(offset);
  (void)delay;
  return 0;
}
