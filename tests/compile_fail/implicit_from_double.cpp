// MUST NOT COMPILE: quantity construction from double is explicit-only.
#include "units/units.hpp"

int main() {
  safe::units::Meters distance = 73.4;
  (void)distance;
  return 0;
}
