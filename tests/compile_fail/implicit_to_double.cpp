// MUST NOT COMPILE: shedding the unit requires the explicit .value() hatch.
#include "units/units.hpp"

int main() {
  double raw = safe::units::Meters{73.4};
  (void)raw;
  return 0;
}
