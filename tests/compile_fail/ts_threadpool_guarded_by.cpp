// MUST NOT COMPILE (clang, -Werror=thread-safety): reading a field declared
// SAFE_GUARDED_BY without holding its mutex is a build break, proven against
// the real ThreadPool worker queues rather than a toy type. The probe hook
// below only exists under SAFE_SENSING_TS_NEGATIVE_TEST (see
// thread_pool.hpp); defining it out of class here gives this TU access to
// the private guarded fields without weakening production visibility.
#define SAFE_SENSING_TS_NEGATIVE_TEST
#include "runtime/thread_pool.hpp"

namespace safe::runtime {

std::size_t ThreadPool::ts_probe_queue_depth_unlocked() {
  // error: reading variable 'tasks' requires holding mutex 'mutex'
  return queues_[0]->tasks.size();
}

}  // namespace safe::runtime

int main() { return 0; }
