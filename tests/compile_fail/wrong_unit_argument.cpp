// MUST NOT COMPILE: passing a range where a real public API expects a delay.
// This is the acceptance check for the whole units migration: the historical
// failure mode (meters silently read as seconds) is now a type error.
#include "radar/fmcw.hpp"

int main() {
  auto offset = safe::radar::spoofed_range_offset(safe::units::Meters{6.0});
  (void)offset;
  return 0;
}
