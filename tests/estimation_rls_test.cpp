// Tests for the RLS filter (Algorithm 1) and the RLS-based predictors.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "estimation/chi_square.hpp"
#include "estimation/rls.hpp"
#include "estimation/rls_predictor.hpp"
#include "linalg/qr.hpp"

namespace safe::estimation {
namespace {

using linalg::RMatrix;
using linalg::RVector;

TEST(RlsFilter, ConstructionValidation) {
  EXPECT_THROW(RlsFilter(0), std::invalid_argument);
  EXPECT_THROW(RlsFilter(2, {.forgetting_factor = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(RlsFilter(2, {.forgetting_factor = 1.5}),
               std::invalid_argument);
  EXPECT_THROW(RlsFilter(2, {.initial_covariance = 0.0}),
               std::invalid_argument);
}

TEST(RlsFilter, InitialStateMatchesAlgorithmOne) {
  const RlsFilter f(3, {.forgetting_factor = 1.0, .initial_covariance = 1.0});
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(f.weights()[i], 0.0);
  EXPECT_EQ(f.covariance()(0, 0), 1.0);
  EXPECT_EQ(f.covariance()(0, 1), 0.0);
  EXPECT_EQ(f.updates(), 0u);
}

TEST(RlsFilter, DimensionMismatchThrows) {
  RlsFilter f(2);
  EXPECT_THROW(f.update(RVector{1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(f.predict(RVector{1.0, 2.0, 3.0})),
               std::invalid_argument);
}

TEST(RlsFilter, ConvergesToStaticLinearModel) {
  // y = 3 x1 - 2 x2: RLS with lambda = 1 must recover the coefficients
  // (large delta keeps the P_0 regularization bias negligible).
  RlsFilter f(2, {.forgetting_factor = 1.0, .initial_covariance = 1e6});
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int k = 0; k < 200; ++k) {
    const RVector h{dist(rng), dist(rng)};
    f.update(h, 3.0 * h[0] - 2.0 * h[1]);
  }
  EXPECT_NEAR(f.weights()[0], 3.0, 1e-5);
  EXPECT_NEAR(f.weights()[1], -2.0, 1e-5);
}

TEST(RlsFilter, MatchesBatchLeastSquaresWithUnitLambda) {
  // With lambda = 1 and large delta, RLS equals batch least squares.
  std::mt19937 rng(17);
  std::normal_distribution<double> dist(0.0, 1.0);
  const std::size_t n = 40, dim = 3;
  RMatrix a(n, dim);
  RVector y(n);
  RlsFilter f(dim, {.forgetting_factor = 1.0, .initial_covariance = 1e8});
  for (std::size_t k = 0; k < n; ++k) {
    RVector h(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      h[j] = dist(rng);
      a(k, j) = h[j];
    }
    y[k] = dist(rng);
    f.update(h, y[k]);
  }
  const RVector batch = linalg::least_squares(a, y);
  for (std::size_t j = 0; j < dim; ++j) {
    EXPECT_NEAR(f.weights()[j], batch[j], 1e-4);
  }
}

TEST(RlsFilter, ForgettingFactorTracksDrift) {
  // Coefficient flips mid-stream; lambda < 1 must re-converge, lambda = 1
  // stays anchored to the stale average.
  auto run = [](double lambda) {
    RlsFilter f(1, {.forgetting_factor = lambda, .initial_covariance = 100.0});
    for (int k = 0; k < 150; ++k) f.update(RVector{1.0}, 5.0);
    for (int k = 0; k < 150; ++k) f.update(RVector{1.0}, -5.0);
    return f.weights()[0];
  };
  EXPECT_NEAR(run(0.9), -5.0, 0.01);
  EXPECT_GT(run(1.0), -3.5);  // stale data still weighs heavily
}

TEST(RlsFilter, ErrorShrinksOverRun) {
  RlsFilter f(2, {.forgetting_factor = 0.99, .initial_covariance = 10.0});
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  double early = 0.0, late = 0.0;
  for (int k = 0; k < 100; ++k) {
    const RVector h{dist(rng), dist(rng)};
    const auto u = f.update(h, 1.5 * h[0] + 0.5 * h[1]);
    if (k < 10) early += std::abs(u.error);
    if (k >= 90) late += std::abs(u.error);
  }
  EXPECT_LT(late, early * 0.01);
}

TEST(RlsFilter, GammaIsLambdaPlusQuadraticForm) {
  RlsFilter f(2, {.forgetting_factor = 0.95, .initial_covariance = 2.0});
  const RVector h{1.0, 2.0};
  // First update: P = 2I, g = h^T P = 2h, gamma = 0.95 + 2*|h|^2 = 10.95.
  const auto u = f.update(h, 1.0);
  EXPECT_NEAR(u.gamma, 0.95 + 2.0 * 5.0, 1e-12);
}

TEST(RlsFilter, CovarianceStaysSymmetric) {
  RlsFilter f(3, {.forgetting_factor = 0.9, .initial_covariance = 50.0});
  std::mt19937 rng(29);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  for (int k = 0; k < 500; ++k) {
    const RVector h{dist(rng), dist(rng), dist(rng)};
    f.update(h, dist(rng));
  }
  const RMatrix& p = f.covariance();
  EXPECT_LT(linalg::max_abs(p - p.transpose()), 1e-12);
}

TEST(RlsFilter, ResetRestoresInitialState) {
  RlsFilter f(2);
  f.update(RVector{1.0, 1.0}, 3.0);
  f.reset();
  EXPECT_EQ(f.weights()[0], 0.0);
  EXPECT_EQ(f.updates(), 0u);
  EXPECT_EQ(f.covariance()(1, 1), 1.0);
}

TEST(RlsArPredictor, OrderValidation) {
  EXPECT_THROW(RlsArPredictor({.order = 0}), std::invalid_argument);
}

TEST(RlsArPredictor, EmptyHistoryPredictsZero) {
  RlsArPredictor p;
  EXPECT_EQ(p.predict_next(), 0.0);
}

TEST(RlsArPredictor, WarmupFallsBackToHold) {
  RlsArPredictor p({.order = 4});
  p.observe(7.0);
  EXPECT_EQ(p.predict_next(), 7.0);
}

TEST(RlsArPredictor, LearnsConstantSeries) {
  RlsArPredictor p({.order = 3});
  for (int k = 0; k < 50; ++k) p.observe(42.0);
  for (int k = 0; k < 20; ++k) {
    EXPECT_NEAR(p.predict_next(), 42.0, 0.05);
  }
}

TEST(RlsArPredictor, ExtrapolatesLinearRamp) {
  // The car-following distance series is near-linear; an AR predictor that
  // learned the ramp must continue it through a 30-step free run.
  RlsArPredictor p({.order = 4});
  for (int k = 0; k < 120; ++k) p.observe(100.0 - 0.5 * k);
  double y = 0.0;
  for (int k = 0; k < 30; ++k) y = p.predict_next();
  EXPECT_NEAR(y, 100.0 - 0.5 * 149.0, 0.5);
}

TEST(RlsArPredictor, DifferencingModeHoldsSlopeDuringWarmup) {
  // Two observations define a slope; before the filter has trained, the
  // differenced predictor free-runs that slope (first-order hold).
  RlsArPredictor p({.order = 4});
  p.observe(10.0);
  p.observe(12.0);
  EXPECT_NEAR(p.predict_next(), 14.0, 1e-12);
  EXPECT_NEAR(p.predict_next(), 16.0, 1e-12);
}

TEST(RlsArPredictor, NamesReflectMode) {
  EXPECT_EQ(RlsArPredictor({.difference = true}).name(), "rls-ar-d1");
  EXPECT_EQ(RlsArPredictor({.difference = false}).name(), "rls-ar");
}

TEST(RlsArPredictor, RawModeStillLearnsConstant) {
  RlsArPredictor p({.order = 3, .difference = false});
  for (int k = 0; k < 80; ++k) p.observe(42.0);
  EXPECT_NEAR(p.predict_next(), 42.0, 0.5);
}

TEST(RlsArPredictor, FreeRunDoesNotDiverge) {
  // 118-step holdover (the paper's attack window) on a noisy ramp: the
  // prediction must stay bounded and directionally correct.
  RlsArPredictor p({.order = 4});
  std::mt19937 rng(31);
  std::normal_distribution<double> noise(0.0, 0.05);
  for (int k = 0; k < 180; ++k) p.observe(100.0 - 0.3 * k + noise(rng));
  double y = 0.0;
  for (int k = 0; k < 118; ++k) y = p.predict_next();
  const double expected = 100.0 - 0.3 * 297.0;
  EXPECT_NEAR(y, expected, 5.0);
}

TEST(RlsArPredictor, ResetForgetsHistory) {
  RlsArPredictor p;
  for (int k = 0; k < 20; ++k) p.observe(5.0);
  p.reset();
  EXPECT_EQ(p.predict_next(), 0.0);
}

TEST(RlsPolyPredictor, ValidatesTimeScale) {
  EXPECT_THROW(RlsPolyPredictor({.time_scale = safe::units::Seconds{0.0}}),
               std::invalid_argument);
}

TEST(RlsPolyPredictor, FitsLinearTrendExactly) {
  RlsPolyPredictor p({.degree = 1});
  for (int k = 0; k < 100; ++k) p.observe(10.0 + 2.0 * k);
  EXPECT_NEAR(p.predict_next(), 10.0 + 2.0 * 100.0, 0.5);
  EXPECT_NEAR(p.predict_next(), 10.0 + 2.0 * 101.0, 0.5);
}

TEST(RlsPolyPredictor, QuadraticDegreeTracksCurvature) {
  RlsPolyPredictor p({.degree = 2});
  for (int k = 0; k < 150; ++k) {
    const double t = k;
    p.observe(1.0 + 0.5 * t + 0.01 * t * t);
  }
  const double t = 150.0;
  EXPECT_NEAR(p.predict_next(), 1.0 + 0.5 * t + 0.01 * t * t, 2.0);
}

TEST(RlsPolyPredictor, ResetRestartsClock) {
  RlsPolyPredictor p({.degree = 1});
  for (int k = 0; k < 10; ++k) p.observe(k);
  p.reset();
  for (int k = 0; k < 10; ++k) p.observe(5.0);
  EXPECT_NEAR(p.predict_next(), 5.0, 0.5);
}

// Property: RLS-AR one-step prediction error on a noiseless AR(2) process
// goes to ~zero for any stable coefficient pair.
class RlsArRecoversProcess
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(RlsArRecoversProcess, OneStepErrorVanishes) {
  const auto [a1, a2] = GetParam();
  RlsArPredictor p({.order = 2,
                    .rls = {.forgetting_factor = 1.0,
                            .initial_covariance = 100.0},
                    .difference = false});
  double y1 = 1.0, y2 = 0.5;
  for (int k = 0; k < 300; ++k) {
    const double y = a1 * y1 + a2 * y2;
    p.observe(y);
    y2 = y1;
    y1 = y;
  }
  // Next true value vs prediction.
  const double y_true = a1 * y1 + a2 * y2;
  EXPECT_NEAR(p.predict_next(), y_true, 1e-3 + 1e-2 * std::abs(y_true));
}

INSTANTIATE_TEST_SUITE_P(
    StablePairs, RlsArRecoversProcess,
    ::testing::Values(std::pair{1.6, -0.64}, std::pair{0.5, 0.3},
                      std::pair{1.2, -0.36}, std::pair{0.9, 0.0},
                      std::pair{1.9, -0.9025}, std::pair{-0.5, 0.2}));

TEST(RlsFilter, RejectsNonFiniteInputsWithoutTouchingState) {
  RlsFilter f(2);
  f.update(linalg::RVector{1.0, 0.5}, 2.0);
  const auto w_before = f.weights();
  const auto p_before = f.covariance();

  const double nan = std::numeric_limits<double>::quiet_NaN();
  const auto r1 = f.update(linalg::RVector{1.0, 0.5}, nan);
  const auto r2 = f.update(linalg::RVector{nan, 0.5}, 2.0);
  EXPECT_TRUE(r1.rejected);
  EXPECT_TRUE(r2.rejected);
  EXPECT_EQ(f.divergences(), 2u);
  EXPECT_EQ(f.updates(), 1u);
  EXPECT_EQ(f.weights(), w_before);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(f.covariance()(i, j), p_before(i, j));
    }
  }
  // Finite updates keep working afterwards.
  const auto r3 = f.update(linalg::RVector{1.0, 0.5}, 2.0);
  EXPECT_FALSE(r3.rejected);
}

TEST(RlsFilter, NumericalDivergenceReinitializesCovariance) {
  // Huge regressors with lambda near zero overflow P within a few updates;
  // the filter must detect the non-finite state and reinitialize to
  // P = delta I rather than free-running on garbage.
  RlsFilter f(2, {.forgetting_factor = 1e-3, .initial_covariance = 1.0});
  for (int k = 0; k < 400 && f.divergences() == 0; ++k) {
    f.update(linalg::RVector{1e150, 1e150}, 1e150);
  }
  EXPECT_GE(f.divergences(), 1u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(std::isfinite(f.weights()[i]));
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_TRUE(std::isfinite(f.covariance()(i, j)));
    }
  }
}

TEST(RlsFilter, ResetClearsDivergenceCounter) {
  RlsFilter f(1);
  f.update(linalg::RVector{1.0}, std::numeric_limits<double>::infinity());
  EXPECT_EQ(f.divergences(), 1u);
  f.reset();
  EXPECT_EQ(f.divergences(), 0u);
}

TEST(RlsArPredictor, IgnoresNonFiniteObservations) {
  RlsArPredictor clean;
  RlsArPredictor poisoned;
  for (int k = 0; k < 30; ++k) {
    const double y = 100.0 - 0.5 * k;
    clean.observe(y);
    poisoned.observe(y);
    if (k % 7 == 0) {
      poisoned.observe(std::numeric_limits<double>::quiet_NaN());
      poisoned.observe(std::numeric_limits<double>::infinity());
    }
  }
  EXPECT_GE(poisoned.divergences(), 2u);
  // The NaNs left no trace: both predictors free-run identically and stay
  // finite.
  for (int k = 0; k < 10; ++k) {
    const double a = clean.predict_next();
    const double b = poisoned.predict_next();
    EXPECT_TRUE(std::isfinite(b));
    EXPECT_DOUBLE_EQ(a, b) << "k=" << k;
  }
}

TEST(InnovationGate, WarmsUpBeforeRejecting) {
  InnovationGate gate({.threshold = 6.63, .min_samples = 4});
  // Giant first sample: still within warm-up, must not reject.
  EXPECT_FALSE(gate.observe(100.0));
  EXPECT_FALSE(gate.observe(1.0));
  EXPECT_FALSE(gate.observe(-1.0));
  EXPECT_FALSE(gate.observe(1.0));
  EXPECT_EQ(gate.samples(), 4u);
}

TEST(InnovationGate, FlagsOutliersWithoutAbsorbingThem) {
  InnovationGate gate({.threshold = 9.0, .min_samples = 4});
  for (int k = 0; k < 50; ++k) {
    EXPECT_FALSE(gate.observe(k % 2 == 0 ? 1.0 : -1.0));
  }
  const double var_before = gate.variance();
  EXPECT_TRUE(gate.observe(50.0));
  EXPECT_EQ(gate.rejections(), 1u);
  // The outlier was quarantined, not absorbed: the gate stays tight, so a
  // repeat of the same outlier is rejected again.
  EXPECT_EQ(gate.variance(), var_before);
  EXPECT_TRUE(gate.observe(50.0));
}

TEST(InnovationGate, NonFiniteInnovationIsAlwaysRejected) {
  InnovationGate gate({.min_samples = 0});
  EXPECT_TRUE(gate.observe(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_TRUE(gate.observe(std::numeric_limits<double>::infinity()));
  EXPECT_EQ(gate.rejections(), 2u);
  EXPECT_TRUE(std::isfinite(gate.variance()));
}

}  // namespace
}  // namespace safe::estimation
