// Wire v3 + per-session detector tests: HELLO round-trip with a detector
// spec, v1/v2 backward compatibility, the structured kUnknownDetector
// rejection over loopback, and two concurrent sessions on different
// detection backends each byte-identical to their run_offline reference.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/trace_source.hpp"
#include "serve/wire.hpp"

namespace {

using namespace safe;
using namespace safe::serve;

/// Server on a kernel-assigned loopback port, event loop on its own thread,
/// drained and joined on destruction.
class ServerHarness {
 public:
  explicit ServerHarness(ServerOptions options = {})
      : pool_(2), server_(std::move(options), pool_) {
    server_.bind_and_listen();
    thread_ = std::thread([this] { server_.run(); });
  }

  ~ServerHarness() {
    server_.request_drain();
    thread_.join();
    pool_.drain();
  }

  [[nodiscard]] std::uint16_t port() const { return server_.port(); }

 private:
  runtime::ThreadPool pool_;
  StreamServer server_;
  std::thread thread_;
};

TraceSpec quick_spec(std::uint64_t seed = 11) {
  TraceSpec spec;
  spec.seed = seed;
  spec.horizon_steps = 60;
  spec.attack = core::AttackKind::kDosJammer;
  spec.attack_start_s = units::Seconds{20.0};
  spec.attack_end_s = units::Seconds{60.0};
  return spec;
}

std::optional<HelloFrame> reencode(const HelloFrame& hello) {
  const std::vector<std::uint8_t> bytes = encode(hello);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  const auto frame = decoder.next();
  if (!frame.has_value()) return std::nullopt;
  HelloFrame out;
  std::string error;
  if (!decode(*frame, out, &error)) return std::nullopt;
  return out;
}

TEST(ServeDetect, V3HelloRoundTripsTheDetectorSpec) {
  HelloFrame hello;
  hello.scenario_seed = 77;
  hello.client_id = "detector-roundtrip";
  hello.fault_spec = "bias:start=40,slope=0.25";
  hello.detector_spec = "fusion:members=cra+chi2,quorum=1";
  ASSERT_EQ(hello.protocol_version, 3u) << "v3 is the current version";

  const auto out = reencode(hello);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->protocol_version, 3u);
  EXPECT_EQ(out->scenario_seed, 77u);
  EXPECT_EQ(out->client_id, hello.client_id);
  EXPECT_EQ(out->fault_spec, hello.fault_spec);
  EXPECT_EQ(out->detector_spec, hello.detector_spec);
}

TEST(ServeDetect, V2HelloHasNoDetectorSpecOnTheWire) {
  HelloFrame v3;
  v3.detector_spec = "chi2";
  HelloFrame v2 = v3;
  v2.protocol_version = 2;

  // The v2 encoding simply omits the field...
  const std::vector<std::uint8_t> v3_bytes = encode(v3);
  const std::vector<std::uint8_t> v2_bytes = encode(v2);
  EXPECT_LT(v2_bytes.size(), v3_bytes.size());

  // ...and a v2 HELLO decodes with the spec empty (CRA default), exactly
  // what a pre-v3 client sends.
  const auto out = reencode(v2);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->protocol_version, 2u);
  EXPECT_TRUE(out->detector_spec.empty());
}

TEST(ServeDetect, UnknownDetectorIsAStructuredRejection) {
  ServerHarness harness;
  TraceSpec spec = quick_spec();
  spec.detector_spec = "nope";

  SessionClient client;
  client.connect("127.0.0.1", harness.port());
  const auto open = client.open_session(hello_from(spec, "unknown"));
  EXPECT_FALSE(open.ok);
  ASSERT_TRUE(open.has_error) << open.transport_error;
  EXPECT_EQ(open.error.code, ErrorCode::kUnknownDetector);
  EXPECT_NE(open.error.message.find("nope"), std::string::npos)
      << open.error.message;
}

TEST(ServeDetect, MalformedDetectorSpecIsAProtocolError) {
  ServerHarness harness;
  TraceSpec spec = quick_spec();
  spec.detector_spec = "chi2:bogus=1";

  SessionClient client;
  client.connect("127.0.0.1", harness.port());
  const auto open = client.open_session(hello_from(spec, "malformed"));
  EXPECT_FALSE(open.ok);
  ASSERT_TRUE(open.has_error) << open.transport_error;
  EXPECT_EQ(open.error.code, ErrorCode::kProtocolOrder);
}

TEST(ServeDetect, PreV3ClientsAreStillAccepted) {
  ServerHarness harness;
  const TraceSpec spec = quick_spec();
  const std::vector<MeasurementFrame> trace = make_measurement_trace(spec);

  for (const std::uint16_t version : {std::uint16_t{1}, std::uint16_t{2}}) {
    HelloFrame hello = hello_from(spec, "pre-v3");
    hello.protocol_version = version;

    SessionClient client;
    client.connect("127.0.0.1", harness.port());
    const auto open = client.open_session(hello);
    ASSERT_TRUE(open.ok) << "version " << version << ": "
                         << open.transport_error;

    // A pre-v3 session runs the CRA default and still matches the offline
    // reference byte for byte.
    const auto result = client.stream(trace);
    ASSERT_TRUE(result.complete) << result.transport_error;
    const std::vector<EstimateFrame> reference = run_offline(spec, trace);
    ASSERT_EQ(reference.size(), result.estimate_frames.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(result.estimate_frames[i], encode(reference[i]))
          << "version " << version << " step " << i;
    }
  }
}

TEST(ServeDetect, ConcurrentSessionsOnDifferentBackendsMatchOffline) {
  ServerHarness harness;

  TraceSpec cra_spec = quick_spec(7);
  TraceSpec chi2_spec = quick_spec(7);
  chi2_spec.detector_spec = "chi2";

  struct SessionOutcome {
    bool opened = false;
    bool complete = false;
    std::string error;
    std::vector<std::vector<std::uint8_t>> estimate_frames;
  };

  const auto run_session = [&harness](const TraceSpec& spec,
                                      const char* client_id,
                                      SessionOutcome& outcome) {
    const std::vector<MeasurementFrame> trace = make_measurement_trace(spec);
    SessionClient client;
    client.connect("127.0.0.1", harness.port());
    const auto open = client.open_session(hello_from(spec, client_id));
    outcome.opened = open.ok;
    if (!open.ok) {
      outcome.error = open.transport_error;
      return;
    }
    const auto result = client.stream(trace);
    outcome.complete = result.complete;
    outcome.error = result.transport_error;
    outcome.estimate_frames = result.estimate_frames;
  };

  SessionOutcome cra_outcome;
  SessionOutcome chi2_outcome;
  std::thread cra_thread(
      [&] { run_session(cra_spec, "cra-session", cra_outcome); });
  std::thread chi2_thread(
      [&] { run_session(chi2_spec, "chi2-session", chi2_outcome); });
  cra_thread.join();
  chi2_thread.join();

  ASSERT_TRUE(cra_outcome.opened && cra_outcome.complete)
      << cra_outcome.error;
  ASSERT_TRUE(chi2_outcome.opened && chi2_outcome.complete)
      << chi2_outcome.error;

  // Each session is byte-identical to the offline pipeline built from its
  // own spec — the per-session detector choice is honored end to end.
  const auto verify = [](const TraceSpec& spec,
                         const SessionOutcome& outcome) {
    const std::vector<MeasurementFrame> trace = make_measurement_trace(spec);
    const std::vector<EstimateFrame> reference = run_offline(spec, trace);
    ASSERT_EQ(reference.size(), outcome.estimate_frames.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(outcome.estimate_frames[i], encode(reference[i]))
          << spec.detector_spec << " step " << i;
    }
  };
  verify(cra_spec, cra_outcome);
  verify(chi2_spec, chi2_outcome);

  // And the two backends genuinely diverge on this DoS trace (the chi2
  // power path and the CRA challenge path detect at different instants), so
  // the parity above is not vacuous.
  EXPECT_NE(cra_outcome.estimate_frames, chi2_outcome.estimate_frames);
}

}  // namespace
