// Tests for the ultrasonic park-assist case study.
#include <gtest/gtest.h>

#include <memory>

#include "core/parking.hpp"

namespace safe::core {
namespace {

std::shared_ptr<const cra::ChallengeSchedule> parking_schedule(
    std::int64_t horizon = 200) {
  // Ultrasonic pings are cheap: challenge about every 5th ping.
  return std::make_shared<cra::PrbsChallengeSchedule>(0x0B5E, 1, 5, horizon);
}

ParkingAttack spoof(double start, double end, double offset = 1.0) {
  ParkingAttack a;
  a.kind = ParkingAttack::Kind::kSpoof;
  a.window = attack::AttackWindow{units::Seconds{start}, units::Seconds{end}};
  a.spoof_offset_m = units::Meters{offset};
  return a;
}

ParkingAttack blinder(double start, double end) {
  ParkingAttack a;
  a.kind = ParkingAttack::Kind::kDos;
  a.window = attack::AttackWindow{units::Seconds{start}, units::Seconds{end}};
  return a;
}

TEST(Parking, ConstructionValidation) {
  ParkingConfig cfg;
  EXPECT_THROW(ParkingSimulation(cfg, nullptr, std::nullopt),
               std::invalid_argument);
  cfg.initial_clearance_m = units::Meters{0.2};
  EXPECT_THROW(ParkingSimulation(cfg, parking_schedule(), std::nullopt),
               std::invalid_argument);
  cfg = ParkingConfig{};
  cfg.sample_time_s = units::Seconds{0.0};
  EXPECT_THROW(ParkingSimulation(cfg, parking_schedule(), std::nullopt),
               std::invalid_argument);
  cfg = ParkingConfig{};
  cfg.approach_gain = 0.0;
  EXPECT_THROW(ParkingSimulation(cfg, parking_schedule(), std::nullopt),
               std::invalid_argument);
}

TEST(Parking, CleanApproachStopsAtTargetDistance) {
  ParkingSimulation sim(ParkingConfig{}, parking_schedule(), std::nullopt);
  const auto r = sim.run();
  EXPECT_FALSE(r.collided);
  EXPECT_FALSE(r.detection_step.has_value());
  EXPECT_EQ(r.detection_stats.false_positives, 0u);
  EXPECT_NEAR(r.final_clearance_m.value(), ParkingConfig{}.stop_distance_m.value(),
              0.1);
}

TEST(Parking, SpoofUndefendedHitsTheObstacle) {
  ParkingConfig cfg;
  cfg.defense_enabled = false;
  ParkingSimulation sim(cfg, parking_schedule(), spoof(40.0, 200.0));
  const auto r = sim.run();
  EXPECT_TRUE(r.collided);
}

TEST(Parking, SpoofDefendedStopsSafely) {
  ParkingSimulation sim(ParkingConfig{}, parking_schedule(),
                        spoof(40.0, 200.0));
  const auto r = sim.run();
  EXPECT_FALSE(r.collided);
  ASSERT_TRUE(r.detection_step.has_value());
  EXPECT_GE(*r.detection_step, 40);
  EXPECT_EQ(r.detection_stats.false_positives, 0u);
  EXPECT_EQ(r.detection_stats.false_negatives, 0u);
  EXPECT_GT(r.final_clearance_m, units::Meters{0.1});
}

TEST(Parking, BlinderUndefendedDrivesOn) {
  // Jammed sensor reports nothing; the undefended controller holds the last
  // clearance value and keeps creeping forward into the obstacle.
  ParkingConfig cfg;
  cfg.defense_enabled = false;
  ParkingSimulation sim(cfg, parking_schedule(), blinder(40.0, 200.0));
  const auto r = sim.run();
  EXPECT_TRUE(r.collided);
}

TEST(Parking, BlinderDefendedStopsSafely) {
  ParkingSimulation sim(ParkingConfig{}, parking_schedule(),
                        blinder(40.0, 200.0));
  const auto r = sim.run();
  EXPECT_FALSE(r.collided);
  ASSERT_TRUE(r.detection_step.has_value());
  EXPECT_EQ(r.detection_stats.false_negatives, 0u);
}

TEST(Parking, LidarProfileWorksToo) {
  // Same study with the lidar profile: CRA is modality-agnostic.
  ParkingConfig cfg;
  cfg.sensor = sensors::lidar_parameters();
  cfg.initial_clearance_m = units::Meters{8.0};
  ParkingSimulation sim(cfg, parking_schedule(), spoof(40.0, 200.0, 2.0));
  const auto r = sim.run();
  EXPECT_FALSE(r.collided);
  ASSERT_TRUE(r.detection_step.has_value());
  EXPECT_EQ(r.detection_stats.false_positives, 0u);
}

TEST(Parking, ShortAttackClearsAndFinishesParking) {
  ParkingSimulation sim(ParkingConfig{}, parking_schedule(),
                        spoof(40.0, 80.0));
  const auto r = sim.run();
  EXPECT_FALSE(r.collided);
  const auto& under = r.trace.column("under_attack");
  bool cleared_after = false;
  for (std::size_t k = 90; k < under.size(); ++k) {
    if (under[k] == 0.0) cleared_after = true;
  }
  EXPECT_TRUE(cleared_after);
  EXPECT_NEAR(r.final_clearance_m.value(), ParkingConfig{}.stop_distance_m.value(),
              0.15);
}

TEST(Parking, TraceIsComplete) {
  ParkingSimulation sim(ParkingConfig{}, parking_schedule(), std::nullopt);
  const auto r = sim.run();
  EXPECT_EQ(r.trace.num_rows(), 200u);
  EXPECT_EQ(r.trace.num_columns(), 7u);
}

TEST(Parking, DeterministicGivenSeed) {
  ParkingSimulation a(ParkingConfig{}, parking_schedule(), spoof(40.0, 200.0));
  ParkingSimulation b(ParkingConfig{}, parking_schedule(), spoof(40.0, 200.0));
  EXPECT_EQ(a.run().final_clearance_m, b.run().final_clearance_m);
}

}  // namespace
}  // namespace safe::core
