// Tests for the dimensional-safety layer (src/units/).
//
// Three tiers:
//   * compile-time: constexpr identities and dimension algebra as
//     static_asserts (a failure here stops the build, which is the point);
//   * negative SFINAE probes: expressions like `Meters + Seconds` must NOT
//     compile, proven with the detection idiom instead of comments;
//   * runtime: conversion round trips, the non-constexpr dB edges, and the
//     plausibility predicates the health monitor relies on.
//
// The full "wrong-unit call fails to compile" guarantee is additionally
// exercised end to end by the compile-fail cases in
// tests/compile_fail/CMakeLists.txt.
#include "units/units.hpp"

#include <cmath>
#include <limits>
#include <type_traits>
#include <utility>

#include <gtest/gtest.h>

namespace safe::units {
namespace {

using namespace safe::units::literals;

// --- Negative SFINAE probes ----------------------------------------------

template <class A, class B, class = void>
struct IsAddable : std::false_type {};
template <class A, class B>
struct IsAddable<A, B,
                 std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct IsOrdered : std::false_type {};
template <class A, class B>
struct IsOrdered<A, B,
                 std::void_t<decltype(std::declval<A>() < std::declval<B>())>>
    : std::true_type {};

// Same dimension: fine.
static_assert(IsAddable<Meters, Meters>::value);
static_assert(IsOrdered<Seconds, Seconds>::value);

// Cross-dimension addition and ordering must not compile.
static_assert(!IsAddable<Meters, Seconds>::value);
static_assert(!IsAddable<Meters, MetersPerSecond>::value);
static_assert(!IsAddable<Hertz, HertzPerSecond>::value);
static_assert(!IsAddable<Radians, Meters>::value);
static_assert(!IsOrdered<Meters, Seconds>::value);

// Decibels live outside the lattice entirely.
static_assert(!IsAddable<Decibels, Meters>::value);
static_assert(IsAddable<Decibels, Decibels>::value);

// No implicit conversions across the double boundary in either direction.
static_assert(!std::is_convertible_v<double, Meters>);
static_assert(!std::is_convertible_v<Meters, double>);
static_assert(std::is_constructible_v<Meters, double>);  // explicit only
static_assert(!IsAddable<Meters, double>::value);
static_assert(!IsOrdered<Meters, double>::value);

// Zero-overhead claim: one double, trivially copyable, no padding.
static_assert(sizeof(Meters) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Meters>);
static_assert(sizeof(Decibels) == sizeof(double));

// --- Constexpr dimension algebra -----------------------------------------

static_assert(std::is_same_v<decltype(Meters{} / Seconds{}), MetersPerSecond>);
static_assert(std::is_same_v<decltype(MetersPerSecond{} * Seconds{}), Meters>);
static_assert(std::is_same_v<decltype(Meters{} / Meters{}), double>);
static_assert(std::is_same_v<decltype(1.0 / Seconds{1.0}), Hertz>);

static_assert((Meters{6.0} / Seconds{2.0}).value() == 3.0);
static_assert((MetersPerSecond{3.0} * Seconds{2.0}) == Meters{6.0});
static_assert(Meters{10.0} / Meters{4.0} == 2.5);
static_assert((2.0_m + 40.0_m).value() == 42.0);
static_assert(90.0_mps - 48.0_mps == MetersPerSecond{42.0});
static_assert(-(-42.0_s) == 42.0_s);
static_assert(2.0 * Meters{21.0} == 42.0_m);
static_assert(Meters{84.0} / 2.0 == 42.0_m);

// Constexpr <cmath>/<algorithm> mirrors.
static_assert(abs(Meters{-3.0}) == Meters{3.0});
static_assert(min(1.0_s, 2.0_s) == 1.0_s);
static_assert(max(1.0_s, 2.0_s) == 2.0_s);
static_assert(clamp(5.0_m, 0.0_m, 4.0_m) == 4.0_m);
static_assert(clamp(-1.0_m, 0.0_m, 4.0_m) == 0.0_m);

// Constexpr conversion edges round-trip exactly at compile time.
static_assert(to_mph(from_mph(60.0)) == 60.0);
static_assert(delay_to_range(range_to_delay(Meters{100.0})) == Meters{100.0});
static_assert(from_mph(60.0).value() == mph_to_mps(60.0));
static_assert(range_to_delay(Meters{73.4}).value() == range_to_delay_s(73.4));
static_assert(kSpeedOfLight.value() == kSpeedOfLightMps);

// --- Runtime: conversion round trips -------------------------------------

TEST(Units, MphRoundTripIsExactForRepresentativeSpeeds) {
  for (const double mph : {0.0, 5.0, 25.0, 62.0, 85.0, 120.0}) {
    EXPECT_DOUBLE_EQ(to_mph(from_mph(mph)), mph);
    EXPECT_DOUBLE_EQ(mps_to_mph(mph_to_mps(mph)), mph);
  }
}

TEST(Units, RangeDelayRoundTripIsExact) {
  for (const double d : {0.5, 7.0, 73.4, 100.0, 199.9}) {
    EXPECT_DOUBLE_EQ(delay_to_range(range_to_delay(Meters{d})).value(), d);
    EXPECT_DOUBLE_EQ(delay_to_range_m(range_to_delay_s(d)), d);
  }
  // 100 m target: round trip is ~667 ns, the paper's Section 5 sanity check.
  EXPECT_NEAR(range_to_delay(Meters{100.0}).value(), 667.0e-9, 1.0e-9);
}

TEST(Units, DecibelRoundTripAndFixedPoints) {
  EXPECT_DOUBLE_EQ(Decibels{0.0}.to_linear(), 1.0);
  EXPECT_DOUBLE_EQ(Decibels{10.0}.to_linear(), 10.0);
  EXPECT_DOUBLE_EQ(Decibels{-30.0}.to_linear(), 1.0e-3);
  for (const double db : {-40.0, -3.0, 0.0, 0.1, 10.0, 77.0}) {
    EXPECT_NEAR(Decibels::from_linear(Decibels{db}.to_linear()).value(), db,
                1e-12);
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-12);
  }
  // The strong edge and the raw-compat helper are the same formula.
  EXPECT_DOUBLE_EQ(Decibels{7.3}.to_linear(), db_to_linear(7.3));
}

TEST(Units, DecibelArithmeticIsLinearMultiplication) {
  const Decibels sum = Decibels{13.0} + Decibels{7.0};
  EXPECT_DOUBLE_EQ(sum.value(), 20.0);
  EXPECT_NEAR(sum.to_linear(),
              Decibels{13.0}.to_linear() * Decibels{7.0}.to_linear(), 1e-9);
  EXPECT_LT(Decibels{-3.0}, Decibels{0.0});
  EXPECT_EQ(-Decibels{4.0}, Decibels{-4.0});
}

TEST(Units, AngleHelpersMatchCmath) {
  const Radians a{0.7};
  EXPECT_DOUBLE_EQ(units::sin(a), std::sin(0.7));
  EXPECT_DOUBLE_EQ(units::cos(a), std::cos(0.7));
  EXPECT_DOUBLE_EQ(units::tan(a), std::tan(0.7));
}

// --- Runtime: compound assignment and accumulation -----------------------

TEST(Units, CompoundAssignmentMatchesRawArithmetic) {
  Meters gap{50.0};
  gap += Meters{1.5};
  gap -= Meters{0.5};
  gap *= 2.0;
  gap /= 4.0;
  EXPECT_DOUBLE_EQ(gap.value(), (50.0 + 1.5 - 0.5) * 2.0 / 4.0);
}

// --- Runtime: plausibility predicates ------------------------------------

TEST(Units, PlausibleRangeAcceptsPhysicalReports) {
  EXPECT_TRUE(plausible_range(Meters{0.0}));
  EXPECT_TRUE(plausible_range(Meters{73.4}));
  EXPECT_TRUE(plausible_range(kMaxPlausibleRange));
}

TEST(Units, PlausibleRangeRejectsNonPhysicalReports) {
  EXPECT_FALSE(plausible_range(Meters{-0.001}));
  EXPECT_FALSE(plausible_range(kMaxPlausibleRange + Meters{0.001}));
  EXPECT_FALSE(
      plausible_range(Meters{std::numeric_limits<double>::quiet_NaN()}));
  EXPECT_FALSE(
      plausible_range(Meters{std::numeric_limits<double>::infinity()}));
}

TEST(Units, PlausibleSpeedIsSymmetricAndRejectsNonFinite) {
  EXPECT_TRUE(plausible_speed(MetersPerSecond{0.0}));
  EXPECT_TRUE(plausible_speed(kMaxPlausibleSpeed));
  EXPECT_TRUE(plausible_speed(-kMaxPlausibleSpeed));
  EXPECT_FALSE(plausible_speed(kMaxPlausibleSpeed + MetersPerSecond{0.1}));
  EXPECT_FALSE(plausible_speed(-kMaxPlausibleSpeed - MetersPerSecond{0.1}));
  EXPECT_FALSE(plausible_speed(
      MetersPerSecond{-std::numeric_limits<double>::infinity()}));
}

TEST(Units, PlausibilityPredicatesHonourCustomCeilings) {
  EXPECT_FALSE(plausible_range(Meters{201.0}, Meters{200.0}));
  EXPECT_TRUE(plausible_range_m(201.0));
  EXPECT_FALSE(plausible_speed_mps(31.0, 30.0));
  EXPECT_TRUE(plausible_speed_mps(31.0));
}

}  // namespace
}  // namespace safe::units
