// Tests for FFT, windows, and the periodogram tone estimator.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "dsp/fft.hpp"
#include "dsp/spectral.hpp"
#include "dsp/window.hpp"

namespace safe::dsp {
namespace {

ComplexSignal make_tone(double freq_hz, double fs, std::size_t n,
                        double amplitude = 1.0, double phase = 0.0) {
  ComplexSignal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::polar(amplitude, 2.0 * std::numbers::pi * freq_hz *
                                         static_cast<double>(i) / fs +
                                     phase);
  }
  return x;
}

void add_noise(ComplexSignal& x, double sigma, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, sigma / std::sqrt(2.0));
  for (auto& xi : x) xi += Complex{dist(rng), dist(rng)};
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Fft, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(96));
}

TEST(Fft, RejectsNonPowerOfTwoInPlace) {
  ComplexSignal x(3);
  EXPECT_THROW(fft_inplace(x), std::invalid_argument);
}

TEST(Fft, DeltaTransformsToFlatSpectrum) {
  ComplexSignal x(8);
  x[0] = Complex{1.0, 0.0};
  fft_inplace(x);
  for (const auto& bin : x) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantTransformsToDcBin) {
  ComplexSignal x(16, Complex{1.0, 0.0});
  fft_inplace(x);
  EXPECT_NEAR(std::abs(x[0]), 16.0, 1e-10);
  for (std::size_t i = 1; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(x[i]), 0.0, 1e-10);
  }
}

TEST(Fft, SingleBinToneLandsOnBin) {
  const std::size_t n = 64;
  // Tone at exactly bin 5: f = 5 * fs / n.
  const ComplexSignal x = make_tone(5.0, static_cast<double>(n), n);
  ComplexSignal spec = x;
  fft_inplace(spec);
  EXPECT_NEAR(std::abs(spec[5]), static_cast<double>(n), 1e-9);
  EXPECT_NEAR(std::abs(spec[4]), 0.0, 1e-9);
}

TEST(Fft, RoundTripIdentity) {
  std::mt19937 rng(7);
  std::normal_distribution<double> dist(0.0, 1.0);
  ComplexSignal x(128);
  for (auto& xi : x) xi = Complex{dist(rng), dist(rng)};
  ComplexSignal y = x;
  fft_inplace(y);
  ifft_inplace(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10);
  }
}

TEST(Fft, ParsevalTheorem) {
  std::mt19937 rng(11);
  std::normal_distribution<double> dist(0.0, 1.0);
  ComplexSignal x(256);
  for (auto& xi : x) xi = Complex{dist(rng), dist(rng)};
  double time_energy = 0.0;
  for (const auto& xi : x) time_energy += std::norm(xi);
  ComplexSignal spec = x;
  fft_inplace(spec);
  double freq_energy = 0.0;
  for (const auto& si : spec) freq_energy += std::norm(si);
  EXPECT_NEAR(freq_energy / static_cast<double>(x.size()), time_energy, 1e-8);
}

TEST(Fft, LinearityProperty) {
  const ComplexSignal a = make_tone(3.0, 64.0, 64);
  const ComplexSignal b = make_tone(9.0, 64.0, 64, 0.5);
  ComplexSignal sum(64);
  for (std::size_t i = 0; i < 64; ++i) sum[i] = 2.0 * a[i] + b[i];
  ComplexSignal fa = a, fb = b, fsum = sum;
  fft_inplace(fa);
  fft_inplace(fb);
  fft_inplace(fsum);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(fsum[i] - (2.0 * fa[i] + fb[i])), 0.0, 1e-9);
  }
}

TEST(Fft, ZeroPaddingPreservesSpectralShape) {
  const ComplexSignal x = make_tone(100.0, 1000.0, 100);
  const ComplexSignal spec = fft(x, 1024);
  EXPECT_EQ(spec.size(), 1024u);
  // Peak should be near bin 1024 * 100/1000 = 102.4.
  std::size_t peak = 0;
  double best = 0.0;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    if (std::abs(spec[i]) > best) {
      best = std::abs(spec[i]);
      peak = i;
    }
  }
  EXPECT_NEAR(static_cast<double>(peak), 102.4, 1.0);
}

TEST(Fft, RealSignalOverloadMatchesComplex) {
  RealSignal r{1.0, 2.0, 3.0, 4.0};
  ComplexSignal c{{1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}, {4.0, 0.0}};
  const auto fr = fft(r);
  const auto fc = fft(c);
  ASSERT_EQ(fr.size(), fc.size());
  for (std::size_t i = 0; i < fr.size(); ++i) {
    EXPECT_NEAR(std::abs(fr[i] - fc[i]), 0.0, 1e-12);
  }
}

TEST(Window, RectangularIsAllOnes) {
  const auto w = make_window(WindowKind::kRectangular, 8);
  for (const double wi : w) EXPECT_EQ(wi, 1.0);
}

TEST(Window, HannEndpointsAreZero) {
  const auto w = make_window(WindowKind::kHann, 16);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[8], 1.0, 0.05);  // near-center near 1
}

TEST(Window, HammingEndpointsNonZero) {
  const auto w = make_window(WindowKind::kHamming, 16);
  EXPECT_NEAR(w.front(), 0.08, 1e-12);
}

TEST(Window, BlackmanIsSymmetric) {
  const auto w = make_window(WindowKind::kBlackman, 33);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
  }
}

TEST(Window, LengthOneIsUnity) {
  for (auto kind : {WindowKind::kRectangular, WindowKind::kHann,
                    WindowKind::kHamming, WindowKind::kBlackman}) {
    const auto w = make_window(kind, 1);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], 1.0);
  }
}

TEST(Window, CoherentGainOfRectangularIsLength) {
  const auto w = make_window(WindowKind::kRectangular, 10);
  EXPECT_DOUBLE_EQ(window_coherent_gain(w), 10.0);
}

TEST(Window, ApplyWindowLengthMismatchThrows) {
  ComplexSignal x(4);
  EXPECT_THROW(apply_window(x, make_window(WindowKind::kHann, 5)),
               std::invalid_argument);
}

TEST(Periodogram, RecoversSingleToneFrequency) {
  const double fs = 1.0e6;
  const ComplexSignal x = make_tone(47'000.0, fs, 512);
  const auto tone = estimate_dominant_tone(x, fs);
  ASSERT_TRUE(tone.has_value());
  EXPECT_NEAR(tone->frequency_hz, 47'000.0, 100.0);
}

TEST(Periodogram, RecoversNegativeFrequency) {
  const double fs = 1.0e6;
  const ComplexSignal x = make_tone(-123'456.0, fs, 512);
  const auto tone = estimate_dominant_tone(x, fs);
  ASSERT_TRUE(tone.has_value());
  EXPECT_NEAR(tone->frequency_hz, -123'456.0, 200.0);
}

TEST(Periodogram, SeparatesTwoTones) {
  const double fs = 1.0e6;
  ComplexSignal x = make_tone(50'000.0, fs, 1024);
  const ComplexSignal y = make_tone(200'000.0, fs, 1024, 0.8);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += y[i];
  const auto tones = estimate_tones_periodogram(x, fs, 2);
  ASSERT_EQ(tones.size(), 2u);
  // Strongest first.
  EXPECT_NEAR(tones[0].frequency_hz, 50'000.0, 300.0);
  EXPECT_NEAR(tones[1].frequency_hz, 200'000.0, 300.0);
}

TEST(Periodogram, ZeroSignalYieldsNoTone) {
  ComplexSignal x(256);
  EXPECT_FALSE(estimate_dominant_tone(x, 1.0e6).has_value());
}

TEST(Periodogram, EmptySignalYieldsNothing) {
  EXPECT_TRUE(estimate_tones_periodogram({}, 1.0e6, 3).empty());
}

TEST(Periodogram, InvalidSampleRateThrows) {
  ComplexSignal x(16, Complex{1.0, 0.0});
  EXPECT_THROW(estimate_tones_periodogram(x, 0.0, 1), std::invalid_argument);
}

TEST(Periodogram, ToleratesModerateNoise) {
  const double fs = 1.0e6;
  ComplexSignal x = make_tone(75'000.0, fs, 1024);
  add_noise(x, 0.3, 99);
  const auto tone = estimate_dominant_tone(x, fs);
  ASSERT_TRUE(tone.has_value());
  EXPECT_NEAR(tone->frequency_hz, 75'000.0, 500.0);
}

class PeriodogramSweep : public ::testing::TestWithParam<double> {};

TEST_P(PeriodogramSweep, FrequencyRecoveredAcrossBand) {
  const double fs = 1.0e6;
  const double f = GetParam();
  const ComplexSignal x = make_tone(f, fs, 1024);
  const auto tone = estimate_dominant_tone(x, fs);
  ASSERT_TRUE(tone.has_value());
  EXPECT_NEAR(tone->frequency_hz, f, 250.0);
}

INSTANTIATE_TEST_SUITE_P(Band, PeriodogramSweep,
                         ::testing::Values(-400'000.0, -250'000.0, -60'500.0,
                                           -5'000.0, 5'250.0, 33'333.0,
                                           120'000.0, 249'999.0, 333'221.0,
                                           450'000.0));

}  // namespace
}  // namespace safe::dsp
