// Tests for the signal-level CRA: per-sample probe modulation and the
// per-chip energy verifier, including the Section 7 fast-adversary limit.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "cra/waveform_auth.hpp"

namespace safe::cra {
namespace {

dsp::ComplexSignal make_echo(std::size_t n, double amplitude = 1.0,
                             double freq = 0.05) {
  dsp::ComplexSignal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::polar(amplitude, 2.0 * std::numbers::pi * freq *
                                     static_cast<double>(i));
  }
  return x;
}

void add_noise(dsp::ComplexSignal& x, double power_w, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, std::sqrt(power_w / 2.0));
  for (auto& xi : x) xi += dsp::Complex{dist(rng), dist(rng)};
}

TEST(WaveformModulator, OptionValidation) {
  WaveformAuthOptions o;
  o.chip_length = 0;
  EXPECT_THROW(WaveformModulator(1, o), std::invalid_argument);
  o = WaveformAuthOptions{};
  o.suppress_denom = 0;
  EXPECT_THROW(WaveformModulator(1, o), std::invalid_argument);
  o = WaveformAuthOptions{};
  o.violation_factor = 1.0;
  EXPECT_THROW(WaveformModulator(1, o), std::invalid_argument);
  o = WaveformAuthOptions{};
  o.violated_chip_fraction = 0.0;
  EXPECT_THROW(WaveformModulator(1, o), std::invalid_argument);
}

TEST(WaveformModulator, MaskIsChipGranular) {
  WaveformAuthOptions o;
  o.chip_length = 8;
  WaveformModulator mod(0x1234, o);
  const auto mask = mod.next_mask(64);
  ASSERT_EQ(mask.size(), 64u);
  for (std::size_t start = 0; start < 64; start += 8) {
    for (std::size_t i = start; i < start + 8; ++i) {
      EXPECT_EQ(mask[i], mask[start]) << "chip boundary violated at " << i;
    }
  }
}

TEST(WaveformModulator, SuppressionRateMatchesRequest) {
  WaveformAuthOptions o;
  o.chip_length = 4;
  o.suppress_numer = 1;
  o.suppress_denom = 4;
  WaveformModulator mod(0xBEEF, o);
  std::size_t suppressed = 0, total = 0;
  for (int epoch = 0; epoch < 50; ++epoch) {
    const auto mask = mod.next_mask(256);
    for (std::size_t i = 0; i < mask.size(); i += 4) {
      ++total;
      suppressed += mask[i] ? 0u : 1u;
    }
  }
  EXPECT_NEAR(static_cast<double>(suppressed) / static_cast<double>(total),
              0.25, 0.04);
}

TEST(WaveformModulator, MasksAdvanceBetweenEpochs) {
  WaveformModulator mod(0x7777, {});
  const auto a = mod.next_mask(128);
  const auto b = mod.next_mask(128);
  EXPECT_NE(a, b);
}

TEST(ApplyMask, ZeroesSuppressedSamples) {
  dsp::ComplexSignal x = make_echo(16);
  std::vector<bool> mask(16, true);
  mask[3] = false;
  mask[4] = false;
  apply_mask(x, mask);
  EXPECT_EQ(x[3], dsp::Complex{});
  EXPECT_EQ(x[4], dsp::Complex{});
  EXPECT_NE(x[5], dsp::Complex{});
  std::vector<bool> wrong(8, true);
  EXPECT_THROW(apply_mask(x, wrong), std::invalid_argument);
}

TEST(VerifyEpoch, CleanMaskedEchoPasses) {
  // Honest reflection: suppressed chips carry only noise.
  WaveformAuthOptions o;
  WaveformModulator mod(0x2468, o);
  const auto mask = mod.next_mask(512);
  dsp::ComplexSignal rx = make_echo(512, 1.0);
  apply_mask(rx, mask);  // echo honestly follows the probe
  add_noise(rx, 1e-4, 3);
  const auto result = verify_epoch(rx, mask, 1e-4, o);
  EXPECT_GT(result.suppressed_chips, 0u);
  EXPECT_FALSE(result.attack_detected);
}

TEST(VerifyEpoch, ContinuousSpooferCaught) {
  // Attacker ignores the mask entirely (classic replay of a recorded
  // probe): every suppressed chip is hot.
  WaveformAuthOptions o;
  WaveformModulator mod(0x2468, o);
  const auto mask = mod.next_mask(512);
  dsp::ComplexSignal rx = make_echo(512, 1.0);  // no masking: always on
  add_noise(rx, 1e-4, 5);
  const auto result = verify_epoch(rx, mask, 1e-4, o);
  EXPECT_TRUE(result.attack_detected);
  EXPECT_EQ(result.violated_chips, result.suppressed_chips);
}

TEST(VerifyEpoch, JammerCaught) {
  WaveformAuthOptions o;
  WaveformModulator mod(0x1357, o);
  const auto mask = mod.next_mask(512);
  dsp::ComplexSignal rx(512);
  add_noise(rx, 1e-1, 7);  // wideband jam >> floor
  const auto result = verify_epoch(rx, mask, 1e-4, o);
  EXPECT_TRUE(result.attack_detected);
}

TEST(VerifyEpoch, InputValidation) {
  const WaveformAuthOptions o;
  dsp::ComplexSignal rx(16);
  std::vector<bool> mask(16, false);
  EXPECT_THROW(verify_epoch(rx, std::vector<bool>(8, false), 1e-4, o),
               std::invalid_argument);
  EXPECT_THROW(verify_epoch(rx, mask, 0.0, o), std::invalid_argument);
}

TEST(ReplayLatency, SlowAttackerLeaksIntoSuppressedChips) {
  // Latency of half a chip: the start of every suppressed chip stays hot.
  WaveformAuthOptions o;
  o.chip_length = 16;
  WaveformModulator mod(0x4321, o);
  const auto mask = mod.next_mask(512);
  const auto clean = make_echo(512, 1.0);
  auto rx = replay_with_latency(clean, mask, 8);
  add_noise(rx, 1e-4, 9);
  const auto result = verify_epoch(rx, mask, 1e-4, o);
  EXPECT_TRUE(result.attack_detected);
}

TEST(ReplayLatency, ZeroLatencyAdversaryEvades) {
  // Section 7: an adversary sampling faster than the defender (latency ~ 0)
  // perfectly mimics the mask and is indistinguishable from a true echo.
  WaveformAuthOptions o;
  WaveformModulator mod(0x4321, o);
  const auto mask = mod.next_mask(512);
  const auto clean = make_echo(512, 1.0);
  auto rx = replay_with_latency(clean, mask, 0);
  add_noise(rx, 1e-4, 11);
  const auto result = verify_epoch(rx, mask, 1e-4, o);
  EXPECT_FALSE(result.attack_detected);
}

TEST(ReplayLatency, DetectionImprovesWithLatency) {
  WaveformAuthOptions o;
  o.chip_length = 16;
  const auto clean = make_echo(1024, 1.0);
  std::size_t prev_violations = 0;
  for (const std::size_t latency : {2u, 8u, 16u}) {
    WaveformModulator mod(0x9999, o);
    const auto mask = mod.next_mask(1024);
    auto rx = replay_with_latency(clean, mask, latency);
    add_noise(rx, 1e-4, 13);
    const auto result = verify_epoch(rx, mask, 1e-4, o);
    EXPECT_GE(result.violated_chips, prev_violations);
    prev_violations = result.violated_chips;
  }
}

TEST(ReplayLatency, LengthMismatchThrows) {
  EXPECT_THROW(
      replay_with_latency(make_echo(16), std::vector<bool>(8, true), 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace safe::cra
