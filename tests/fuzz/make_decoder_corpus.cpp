// Seed-corpus generator for fuzz_frame_decoder.
//
// Uses the real encoders so the corpus tracks the wire format instead of
// rotting as hex blobs, and bakes in the decoder edge cases the unit tests
// pinned (oversized length prefix, unknown frame type, reserved flag bits,
// truncation, trailing payload bytes, re-split streams). Each corpus file
// starts with the harness's chunk-size selector byte; 0x00 means
// single-byte dribble (the chaos-proxy worst case), 0x24 keeps chunks
// larger than any frame here (single-shot decode).
//
// Usage: make_decoder_corpus <output-dir>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace {

using safe::serve::AckFrame;
using safe::serve::ChallengeResultFrame;
using safe::serve::EstimateFrame;
using safe::serve::ErrorFrame;
using safe::serve::HelloFrame;
using safe::serve::MeasurementFrame;
using safe::serve::ResumeFrame;
using safe::serve::ResumeOkFrame;
using safe::serve::StatusFrame;

using Bytes = std::vector<std::uint8_t>;

void append(Bytes& out, const Bytes& frame) {
  out.insert(out.end(), frame.begin(), frame.end());
}

void write_case(const std::filesystem::path& dir, const std::string& name,
                std::uint8_t chunk_selector, const Bytes& stream) {
  std::ofstream out(dir / name, std::ios::binary);
  out.put(static_cast<char>(chunk_selector));
  out.write(reinterpret_cast<const char*>(stream.data()),
            static_cast<std::streamsize>(stream.size()));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path dir(argv[1]);
  std::filesystem::create_directories(dir);

  HelloFrame hello;
  hello.scenario_seed = 42;
  hello.horizon_steps = 16;
  hello.client_id = "corpus-client";
  hello.fault_spec = "none";
  hello.detector_spec = "fusion:members=cra+chi2,quorum=1";

  MeasurementFrame meas;
  meas.step = 3;

  EstimateFrame est;
  est.step = 3;
  est.safe.target_present = true;

  ChallengeResultFrame chal;
  chal.step = 4;
  chal.silent = true;

  StatusFrame status;
  status.session_token = 7;
  status.message = "session open";

  ErrorFrame error;
  error.message = "malformed frame";

  ResumeFrame resume;
  resume.session_token = 7;
  resume.last_step = 2;

  ResumeOkFrame resume_ok;
  resume_ok.session_token = 7;
  resume_ok.next_step = 3;
  resume_ok.replayed_frames = 1;

  AckFrame ack;
  ack.last_step = 3;

  // --- well-formed streams (coverage of every payload parser) -------------
  Bytes client_stream;
  append(client_stream, encode(hello));
  append(client_stream, encode(meas));
  append(client_stream, encode(ack));
  write_case(dir, "client_stream", 0x24, client_stream);
  write_case(dir, "client_stream_dribble", 0x00, client_stream);

  Bytes server_stream;
  append(server_stream, encode(status));
  append(server_stream, encode(est));
  append(server_stream, encode(chal));
  append(server_stream, encode(resume_ok));
  append(server_stream, encode(error));
  write_case(dir, "server_stream", 0x24, server_stream);

  Bytes resume_stream;
  append(resume_stream, encode(resume));
  append(resume_stream, encode(resume_ok));
  write_case(dir, "resume_pair", 0x07, resume_stream);

  // Pre-v3 HELLO: no detector_spec field on the wire; the decoder must
  // accept the shorter payload.
  HelloFrame hello_v2 = hello;
  hello_v2.protocol_version = 2;
  write_case(dir, "hello_v2", 0x24, encode(hello_v2));

  // --- framing-violation regressions (PR 5/6 decoder edge cases) ----------
  // Length prefix beyond kMaxPayloadBytes: rejected before buffering.
  write_case(dir, "oversized_length_prefix", 0x24,
             Bytes{0xFF, 0xFF, 0xFF, 0xFF, 0x01});
  // Valid length, unknown frame type byte.
  write_case(dir, "unknown_frame_type", 0x24,
             Bytes{0x00, 0x00, 0x00, 0x00, 0x7F});
  // Reserved flag bits set: MEASUREMENT's flags byte (last payload byte)
  // must only carry the two defined bits; 0xFF trips the decode() check.
  Bytes reserved = encode(meas);
  reserved.back() = 0xFF;
  write_case(dir, "reserved_flag_bits", 0x24, reserved);
  // Truncated mid-payload: not an error, the decoder waits for more bytes.
  Bytes truncated = encode(hello);
  truncated.resize(truncated.size() / 2);
  write_case(dir, "truncated_frame", 0x24, truncated);
  // One trailing byte after the last payload byte: decode() rejects the
  // frame, the decoder itself keeps going (it is a payload-level error).
  Bytes trailing = encode(ack);
  trailing[0] += 1;  // length prefix claims one extra payload byte
  trailing.push_back(0x00);
  write_case(dir, "trailing_payload_byte", 0x24, trailing);
  // Header split across feeds plus a corrupt second frame.
  Bytes split_corrupt;
  append(split_corrupt, encode(meas));
  split_corrupt.push_back(0xDE);
  split_corrupt.push_back(0xAD);
  write_case(dir, "split_then_garbage", 0x02, split_corrupt);

  std::fprintf(stderr, "corpus written to %s\n", dir.c_str());
  return 0;
}
