// Fuzz harness for the platoon-spec mini-language parser.
//
// Contract under test: check_platoon_spec() never throws and returns
// ok/!ok with a diagnostic; parse_platoon_spec() throws
// std::invalid_argument exactly on the !ok inputs (never any other
// exception type) and otherwise returns validated PlatoonOptions. The
// harness cross-checks the two entry points on every input, so a
// checker/builder divergence is a finding, not just a crash.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "platoon/spec.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string spec(reinterpret_cast<const char*>(data), size);
  const safe::platoon::SpecCheck check =
      safe::platoon::check_platoon_spec(spec);
  try {
    const safe::platoon::PlatoonOptions options =
        safe::platoon::parse_platoon_spec(spec);
    if (!check.ok) {
      __builtin_trap();  // builder accepted what the checker rejected
    }
    // Validated options must honour the documented invariants.
    if (options.size < 2 || options.size > 64 ||
        options.attacked < 1 || options.attacked >= options.size) {
      __builtin_trap();
    }
  } catch (const std::invalid_argument&) {
    if (check.ok) {
      __builtin_trap();  // checker accepted what the builder rejected
    }
    if (check.message.empty()) {
      __builtin_trap();  // rejections must carry a diagnostic
    }
  }
  return 0;
}
