// Fuzz harness for the detector-spec mini-language parser.
//
// Contract under test: check_detector_spec() never throws and classifies
// every input as kOk / kMalformed / kUnknownBackend; make_detector() throws
// std::invalid_argument exactly on the non-kOk inputs and otherwise returns
// a working backend. The harness cross-checks the two entry points on every
// input, so a classification that diverges from the builder is a finding,
// not just a crash.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "detect/spec.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string spec(reinterpret_cast<const char*>(data), size);
  const safe::detect::SpecCheck check = safe::detect::check_detector_spec(spec);
  try {
    const safe::detect::DetectorBackendPtr detector =
        safe::detect::make_detector(spec);
    if (check.status != safe::detect::SpecStatus::kOk || !detector) {
      __builtin_trap();  // builder accepted what the checker rejected
    }
    (void)detector->name();
  } catch (const std::invalid_argument&) {
    if (check.status == safe::detect::SpecStatus::kOk) {
      __builtin_trap();  // checker accepted what the builder rejected
    }
  }
  return 0;
}
