// Fuzz harness for the fault-schedule spec mini-language parser.
//
// Contract under test: parse_fault_spec() either returns a FaultSchedule or
// throws std::invalid_argument naming the offending token. Any other
// exception type and any crash is a finding, so only the documented type
// is caught here. The seed is fixed: parsing must not depend on it, and a
// deterministic harness keeps crashes reproducible from the input alone.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "fault/schedule.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string spec(reinterpret_cast<const char*>(data), size);
  try {
    const safe::fault::FaultSchedule parsed =
        safe::fault::parse_fault_spec(spec, /*seed=*/1);
    (void)parsed;
  } catch (const std::invalid_argument&) {
    // Documented rejection path.
  }
  return 0;
}
