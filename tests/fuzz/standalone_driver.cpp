// Minimal libFuzzer-compatible driver for toolchains without
// -fsanitize=fuzzer (gcc). Runs LLVMFuzzerTestOneInput over every file or
// directory argument — exactly libFuzzer's `fuzzer corpus/` regression mode
// minus the coverage-guided mutation — so the checked-in corpora execute as
// a ctest regression on every compiler, and a crash reproducer from CI can
// be replayed locally with `./fuzz_<target> <reproducer>`.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

int run_one(const std::filesystem::path& path) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  std::fprintf(stderr, "Running: %s (%zu bytes)\n", path.c_str(),
               bytes.size());
  // A crash below aborts the process, which is the failure signal.
  (void)LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  int executed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) executed += run_one(file);
    } else if (std::filesystem::is_regular_file(arg)) {
      executed += run_one(arg);
    } else {
      std::fprintf(stderr, "no such input: %s\n", argv[i]);
      return 2;
    }
  }
  std::fprintf(stderr, "Executed %d input(s): no crashes.\n", executed);
  return 0;
}
