// Fuzz harness for the attack-spec mini-language parser.
//
// Contract under test: check_attack_spec() never throws and classifies
// every input as kOk / kMalformed / kUnknownKind with a diagnostic on the
// rejections; make_attack() throws std::invalid_argument exactly on the
// non-kOk inputs (never any other exception type) and otherwise returns a
// model (nullptr only for the ""/"none" no-attack specs). The harness
// cross-checks the two entry points on every input, so a checker/builder
// divergence is a finding, not just a crash.
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "attack/spec.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string spec(reinterpret_cast<const char*>(data), size);
  const safe::attack::SpecCheck check = safe::attack::check_attack_spec(spec);
  try {
    const std::shared_ptr<safe::attack::AttackModel> attack =
        safe::attack::make_attack(spec);
    if (check.status != safe::attack::SpecStatus::kOk) {
      __builtin_trap();  // builder accepted what the checker rejected
    }
    if (!check.message.empty()) {
      __builtin_trap();  // kOk must not carry a diagnostic
    }
    // A spec naming an attack must build one; the no-attack specs must not.
    if (safe::attack::attack_spec_enabled(spec) != (attack != nullptr)) {
      __builtin_trap();
    }
  } catch (const std::invalid_argument&) {
    if (check.status == safe::attack::SpecStatus::kOk) {
      __builtin_trap();  // checker accepted what the builder rejected
    }
    if (check.message.empty()) {
      __builtin_trap();  // rejections must carry a diagnostic
    }
  }
  return 0;
}
