// Fuzz harness for the campaign spec mini-language parser.
//
// Contract under test: parse_campaign_spec() either returns a CampaignSpec
// or throws std::invalid_argument naming the offending token. Any other
// exception type and any crash is a finding, so only the documented type
// is caught here.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "runtime/spec.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const safe::runtime::CampaignSpec parsed =
        safe::runtime::parse_campaign_spec(text);
    (void)parsed;
  } catch (const std::invalid_argument&) {
    // Documented rejection path.
  }
  return 0;
}
