// Fuzz harness for the chaos-proxy spec mini-language parser.
//
// Contract under test: parse_chaos_spec() either returns a ChaosSpec or
// throws std::invalid_argument naming the offending token. Any other
// exception type (std::out_of_range from an unguarded stoull, bad_alloc
// from a hostile length...) and any crash is a finding, so only the
// documented type is caught here.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "serve/chaos.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string spec(reinterpret_cast<const char*>(data), size);
  try {
    const safe::serve::ChaosSpec parsed = safe::serve::parse_chaos_spec(spec);
    (void)parsed;
  } catch (const std::invalid_argument&) {
    // Documented rejection path.
  }
  return 0;
}
