// Fuzz harness for the wire-protocol FrameDecoder (DESIGN.md §12, §14).
//
// Contract under test: feed() / next() over arbitrary byte streams never
// crash, never read outside the fed bytes (ASan-checked), and framing
// violations land in the sticky failed state instead of throwing — the
// decoder's error channel is failed()/error(), so ANY exception escaping
// this harness is a finding. The first input byte picks the feed chunk
// size, so one corpus exercises both the single-shot and the
// byte-dribbling (chaos-proxy re-split) paths through the incremental
// decoder; the typed decode() calls push coverage into every per-frame
// payload parser.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "serve/wire.hpp"

namespace {

// Parse the payload as every frame type claims it, not just the one the
// header names: decode() must reject cross-type payloads gracefully.
void decode_all_types(const safe::serve::Frame& frame) {
  using namespace safe::serve;
  std::string error;
  {
    HelloFrame out;
    (void)decode(frame, out, &error);
  }
  {
    MeasurementFrame out;
    (void)decode(frame, out, &error);
  }
  {
    EstimateFrame out;
    (void)decode(frame, out, &error);
  }
  {
    ChallengeResultFrame out;
    (void)decode(frame, out, &error);
  }
  {
    StatusFrame out;
    (void)decode(frame, out, &error);
  }
  {
    ErrorFrame out;
    (void)decode(frame, out, &error);
  }
  {
    ResumeFrame out;
    (void)decode(frame, out, &error);
  }
  {
    ResumeOkFrame out;
    (void)decode(frame, out, &error);
  }
  {
    AckFrame out;
    (void)decode(frame, out, &error);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::size_t chunk = static_cast<std::size_t>(data[0] % 37) + 1;
  const std::uint8_t* bytes = data + 1;
  std::size_t remaining = size - 1;

  safe::serve::FrameDecoder decoder;
  while (remaining > 0) {
    const std::size_t n = remaining < chunk ? remaining : chunk;
    decoder.feed(bytes, n);
    bytes += n;
    remaining -= n;
    while (std::optional<safe::serve::Frame> frame = decoder.next()) {
      decode_all_types(*frame);
    }
  }
  if (decoder.failed()) {
    // Sticky-failure contract: more bytes and more polls stay inert.
    const std::uint8_t probe[] = {0x01, 0x00, 0x00, 0x00, 0x01, 0x00};
    decoder.feed(probe, sizeof(probe));
    if (decoder.next().has_value()) __builtin_trap();
    if (!decoder.failed() || decoder.error().empty()) __builtin_trap();
  }
  return 0;
}
