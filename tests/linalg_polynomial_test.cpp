// Tests for polynomials and Durand-Kerner root finding.
#include "linalg/polynomial.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <random>
#include <vector>

namespace safe::linalg {
namespace {

// For each expected root, require a found root within tol.
void expect_roots_match(const std::vector<Complex>& expected,
                        std::vector<Complex> found, double tol = 1e-8) {
  ASSERT_EQ(expected.size(), found.size());
  for (const Complex& e : expected) {
    auto best = std::min_element(
        found.begin(), found.end(), [&e](const Complex& a, const Complex& b) {
          return std::abs(a - e) < std::abs(b - e);
        });
    ASSERT_NE(best, found.end());
    EXPECT_LT(std::abs(*best - e), tol)
        << "missing root near (" << e.real() << ", " << e.imag() << ")";
    found.erase(best);
  }
}

TEST(Polynomial, DegreeTrimsLeadingZeros) {
  Polynomial p({Complex{1.0}, Complex{2.0}, Complex{0.0}});
  EXPECT_EQ(p.degree(), 1u);
}

TEST(Polynomial, ZeroPolynomialHasDegreeZero) {
  Polynomial p({Complex{}});
  EXPECT_EQ(p.degree(), 0u);
}

TEST(Polynomial, HornerEvaluation) {
  // p(z) = 1 + 2z + 3z^2 at z=2 -> 1 + 4 + 12 = 17.
  Polynomial p({Complex{1.0}, Complex{2.0}, Complex{3.0}});
  EXPECT_NEAR(std::abs(p.evaluate(Complex{2.0}) - Complex{17.0}), 0.0, 1e-12);
}

TEST(Polynomial, DerivativeOfQuadratic) {
  Polynomial p({Complex{1.0}, Complex{2.0}, Complex{3.0}});
  const Polynomial d = p.derivative();
  EXPECT_EQ(d.degree(), 1u);
  EXPECT_NEAR(std::abs(d.evaluate(Complex{1.0}) - Complex{8.0}), 0.0, 1e-12);
}

TEST(Polynomial, DerivativeOfConstantIsZero) {
  Polynomial p({Complex{5.0}});
  EXPECT_EQ(p.derivative().degree(), 0u);
  EXPECT_EQ(p.derivative().evaluate(Complex{3.0}), Complex{});
}

TEST(Polynomial, MonicDividesByLeading) {
  Polynomial p({Complex{2.0}, Complex{4.0}});
  const Polynomial m = p.monic();
  EXPECT_NEAR(std::abs(m.coefficients().back() - Complex{1.0}), 0.0, 1e-15);
}

TEST(Polynomial, MonicOfZeroThrows) {
  EXPECT_THROW(Polynomial({Complex{}}).monic(), std::domain_error);
}

TEST(Polynomial, FromRootsRoundTrip) {
  const std::vector<Complex> roots{Complex{1.0}, Complex{-2.0},
                                   Complex{0.0, 3.0}};
  const Polynomial p = Polynomial::from_roots(roots);
  EXPECT_EQ(p.degree(), 3u);
  for (const Complex& r : roots) {
    EXPECT_LT(std::abs(p.evaluate(r)), 1e-12);
  }
}

TEST(FindRoots, LinearPolynomial) {
  // 3z - 6 = 0 -> z = 2.
  Polynomial p({Complex{-6.0}, Complex{3.0}});
  const auto roots = find_roots(p);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_LT(std::abs(roots[0] - Complex{2.0}), 1e-12);
}

TEST(FindRoots, QuadraticWithComplexRoots) {
  // z^2 + 1 = 0 -> +/- i.
  Polynomial p({Complex{1.0}, Complex{0.0}, Complex{1.0}});
  expect_roots_match({Complex{0.0, 1.0}, Complex{0.0, -1.0}}, find_roots(p));
}

TEST(FindRoots, DegreeZeroThrows) {
  EXPECT_THROW(find_roots(Polynomial({Complex{1.0}})), std::invalid_argument);
}

TEST(FindRoots, UnitCircleRootsOfUnity) {
  // z^8 - 1: the 8 roots of unity -- the exact structure root-MUSIC sees.
  std::vector<Complex> c(9, Complex{});
  c[0] = Complex{-1.0};
  c[8] = Complex{1.0};
  std::vector<Complex> expected;
  for (int k = 0; k < 8; ++k) {
    expected.push_back(std::polar(1.0, 2.0 * std::numbers::pi * k / 8.0));
  }
  expect_roots_match(expected, find_roots(Polynomial(c)), 1e-7);
}

TEST(FindRoots, RepeatedRoot) {
  // (z-1)^2 = z^2 - 2z + 1.
  Polynomial p({Complex{1.0}, Complex{-2.0}, Complex{1.0}});
  const auto roots = find_roots(p);
  for (const auto& r : roots) {
    EXPECT_LT(std::abs(r - Complex{1.0}), 1e-5);  // double roots: sqrt(tol)
  }
}

TEST(FindRoots, WideMagnitudeSpread) {
  const std::vector<Complex> expected{Complex{0.01}, Complex{1.0},
                                      Complex{100.0}};
  expect_roots_match(expected, find_roots(Polynomial::from_roots(expected)),
                     1e-5);
}

TEST(CompanionMatrix, StructureMatchesDefinition) {
  // z^3 + 2z^2 + 3z + 4.
  Polynomial p({Complex{4.0}, Complex{3.0}, Complex{2.0}, Complex{1.0}});
  const CMatrix m = companion_matrix(p);
  ASSERT_EQ(m.rows(), 3u);
  EXPECT_EQ(m(1, 0), Complex(1.0, 0.0));
  EXPECT_EQ(m(2, 1), Complex(1.0, 0.0));
  EXPECT_EQ(m(0, 2), Complex(-4.0, 0.0));
  EXPECT_EQ(m(1, 2), Complex(-3.0, 0.0));
  EXPECT_EQ(m(2, 2), Complex(-2.0, 0.0));
}

TEST(CompanionMatrix, DegreeZeroThrows) {
  EXPECT_THROW(companion_matrix(Polynomial({Complex{2.0}})),
               std::invalid_argument);
}

TEST(CompanionMatrix, CharacteristicPolynomialProperty) {
  // For this companion layout (ones on the subdiagonal, -coeffs in the last
  // column), the Vandermonde vector [1, r, ...]^T is an eigenvector of C^T
  // with eigenvalue r; C and C^T share eigenvalues.
  const std::vector<Complex> roots{Complex{2.0}, Complex{-1.0, 1.0}};
  const Polynomial p = Polynomial::from_roots(roots);
  const CMatrix ct = companion_matrix(p).transpose();
  for (const Complex& r : roots) {
    CVector v{Complex{1.0}, r};
    const CVector cv = ct * v;
    EXPECT_LT(norm2(cv - r * v), 1e-10);
  }
}

class RootFindingProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RootFindingProperty, RandomRootsRecovered) {
  std::mt19937 rng(GetParam() + 1000);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  const std::size_t degree = 2 + GetParam() % 10;
  std::vector<Complex> expected;
  for (std::size_t i = 0; i < degree; ++i) {
    expected.emplace_back(dist(rng), dist(rng));
  }
  const Polynomial p = Polynomial::from_roots(expected);
  expect_roots_match(expected, find_roots(p), 1e-5);
}

TEST_P(RootFindingProperty, ResidualsAreSmall) {
  std::mt19937 rng(GetParam() + 5000);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const std::size_t degree = 3 + GetParam() % 12;
  std::vector<Complex> coeffs(degree + 1);
  for (auto& ci : coeffs) ci = Complex{dist(rng), dist(rng)};
  coeffs.back() = Complex{1.0};  // monic, well-conditioned leading term
  const Polynomial p(coeffs);
  for (const Complex& r : find_roots(p)) {
    EXPECT_LT(std::abs(p.evaluate(r)), 1e-6);
  }
}

TEST_P(RootFindingProperty, ConjugateSymmetricPolynomialsHaveReciprocalRoots) {
  // root-MUSIC polynomials satisfy p(z) = conj-reflection; their roots come
  // in (z, 1/conj(z)) pairs. Build such a polynomial and verify the pairing.
  std::mt19937 rng(GetParam() + 9000);
  std::uniform_real_distribution<double> mag(0.3, 0.9);
  std::uniform_real_distribution<double> ang(0.0, 2.0 * std::numbers::pi);
  std::vector<Complex> inside;
  const std::size_t pairs = 2 + GetParam() % 3;
  for (std::size_t i = 0; i < pairs; ++i) {
    inside.push_back(std::polar(mag(rng), ang(rng)));
  }
  std::vector<Complex> all = inside;
  for (const Complex& z : inside) all.push_back(1.0 / std::conj(z));
  const Polynomial p = Polynomial::from_roots(all);
  const auto found = find_roots(p);
  expect_roots_match(all, found, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RootFindingProperty,
                         ::testing::Range(0u, 10u));

}  // namespace
}  // namespace safe::linalg
