// Tests for the src/runtime/ campaign engine: seed derivation, the
// work-stealing pool, spec parsing, sinks, and — the load-bearing property —
// bit-identical campaign output regardless of thread count.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/campaign.hpp"
#include "runtime/seed.hpp"
#include "runtime/sink.hpp"
#include "runtime/spec.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace safe;
using namespace safe::runtime;

// --- seeds -----------------------------------------------------------------

// The derivation scheme is frozen: recorded campaign goldens embed these
// values, so changing the mixer silently invalidates every recorded run.
TEST(SeedDerivation, GoldenValuesAreFrozen) {
  EXPECT_EQ(derive_seed(42, SeedStream::kScenario, 0),
            6332618229526065668ULL);
  EXPECT_EQ(derive_seed(42, SeedStream::kScenario, 1),
            17630415256238047317ULL);
  EXPECT_EQ(derive_seed(42, SeedStream::kParams, 0),
            18201609923829866926ULL);
  EXPECT_EQ(derive_seed(7, SeedStream::kParams, 123),
            11073459727256996185ULL);
}

TEST(SeedDerivation, StreamsAndCountersNeverCollide) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t trial = 0; trial < 2000; ++trial) {
    seen.insert(derive_seed(1, SeedStream::kScenario, trial));
    seen.insert(derive_seed(1, SeedStream::kParams, trial));
  }
  EXPECT_EQ(seen.size(), 4000U);
}

TEST(SeedDerivation, UniformDoubleStaysInUnitInterval) {
  SplitMix64 rng(123);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform_double(rng);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);  // actually explores the interval
  EXPECT_GT(hi, 0.99);
}

// --- thread pool -----------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 1000);
  }
}

TEST(ThreadPool, BoundedQueuesApplyBackpressureWithoutLosingTasks) {
  std::atomic<int> count{0};
  {
    // Tiny queues + slow-ish tasks: submit must block, not drop.
    ThreadPool pool(2, /*queue_capacity=*/2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        count.fetch_add(1);
      });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // ~ThreadPool drains before joining
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleRethrowsTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed: the pool keeps working afterwards.
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

// --- distributions & spec parsing ------------------------------------------

TEST(Distribution, SamplesStayInBounds) {
  SplitMix64 rng(9);
  const Distribution u = Distribution::uniform(10.0, 20.0);
  const Distribution lg = Distribution::log_uniform(0.01, 1.0);
  for (int i = 0; i < 1000; ++i) {
    const double a = u.sample(rng);
    ASSERT_GE(a, 10.0);
    ASSERT_LE(a, 20.0);
    const double b = lg.sample(rng);
    ASSERT_GE(b, 0.01);
    ASSERT_LE(b, 1.0);
  }
  EXPECT_DOUBLE_EQ(Distribution::fixed(3.5).sample(rng), 3.5);
}

TEST(Distribution, RejectsImpossibleBounds) {
  EXPECT_THROW(Distribution::uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Distribution::log_uniform(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Distribution::log_uniform(-1.0, 1.0), std::invalid_argument);
}

TEST(SpecParser, ParsesGridsDistributionsAndScalars) {
  const CampaignSpec spec = parse_campaign_spec(
      "# comment line\n"
      "trials = 120\n"
      "seed = 7\n"
      "horizon = 200\n"
      "leader = decel | decel-accel\n"
      "attack = none | dos | delay   # trailing comment\n"
      "onset = uniform(60, 240)\n"
      "duration = uniform(30, 120)\n"
      "jammer_power_w = loguniform(0.01, 1)\n"
      "fault = none | \"dropout:start=60,len=12;nan:start=100,period=40\"\n"
      "estimator = fft\n"
      "hardened = true\n");
  EXPECT_EQ(spec.trials, 120U);
  EXPECT_EQ(spec.seed, 7U);
  EXPECT_EQ(spec.base.horizon_steps, 200);
  EXPECT_EQ(spec.leaders.size(), 2U);
  EXPECT_EQ(spec.attacks.size(), 3U);
  ASSERT_TRUE(spec.attack_onset_s.has_value());
  EXPECT_EQ(spec.attack_onset_s->kind(), Distribution::Kind::kUniform);
  ASSERT_TRUE(spec.jammer_power_w.has_value());
  EXPECT_EQ(spec.jammer_power_w->kind(), Distribution::Kind::kLogUniform);
  ASSERT_EQ(spec.fault_specs.size(), 2U);
  EXPECT_TRUE(spec.fault_specs[0].empty());  // "none" normalizes to empty
  EXPECT_EQ(spec.fault_specs[1],
            "dropout:start=60,len=12;nan:start=100,period=40");
  EXPECT_EQ(spec.base.estimator, radar::BeatEstimator::kPeriodogram);
  EXPECT_GT(spec.base.pipeline.health.max_holdover_steps, 0U);
  EXPECT_EQ(spec.grid_cells(), 2U * 3U * 2U);
}

TEST(SpecParser, SemicolonsSeparateInlineEntries) {
  const CampaignSpec spec =
      parse_campaign_spec("trials = 3; attack = dos; onset = 100");
  EXPECT_EQ(spec.trials, 3U);
  ASSERT_EQ(spec.attacks.size(), 1U);
  EXPECT_EQ(spec.base.attack_start_s.value(), 100.0);
}

TEST(SpecParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_campaign_spec("bogus_key = 3"), std::invalid_argument);
  EXPECT_THROW(parse_campaign_spec("trials"), std::invalid_argument);
  EXPECT_THROW(parse_campaign_spec("trials = abc"), std::invalid_argument);
  EXPECT_THROW(parse_campaign_spec("onset = gaussian(0,1)"),
               std::invalid_argument);
  EXPECT_THROW(parse_campaign_spec("onset = uniform(10)"),
               std::invalid_argument);
  EXPECT_THROW(parse_campaign_spec("attack = evil"), std::invalid_argument);
  EXPECT_THROW(parse_campaign_spec("onset = uniform(240, 60)"),
               std::invalid_argument);
}

// --- expansion & sinks -----------------------------------------------------

CampaignSpec small_spec() {
  CampaignSpec spec = parse_campaign_spec(
      "trials = 12; seed = 11; horizon = 60\n"
      "attack = none | dos | delay\n"
      "onset = uniform(15, 35); duration = uniform(10, 25)\n"
      "jammer_power_w = loguniform(0.02, 0.5)\n"
      "estimator = fft; hardened = true");
  return spec;
}

TEST(Campaign, ExpansionIsAPureFunctionOfTrialId) {
  const Campaign a(small_spec());
  const Campaign b(small_spec());
  for (std::uint64_t t = 0; t < 12; ++t) {
    TrialRecord ra;
    TrialRecord rb;
    const core::ScenarioOptions oa = a.expand(t, ra);
    const core::ScenarioOptions ob = b.expand(t, rb);
    EXPECT_EQ(oa.seed, ob.seed);
    EXPECT_EQ(oa.attack, ob.attack);
    EXPECT_EQ(oa.attack_start_s.value(), ob.attack_start_s.value());
    EXPECT_EQ(oa.jammer.peak_power_w, ob.jammer.peak_power_w);
    EXPECT_EQ(to_jsonl(ra), to_jsonl(rb));
    // Grid round-robin: trial t lands in cell t % 3.
    const core::AttackKind expected[] = {core::AttackKind::kNone,
                                         core::AttackKind::kDosJammer,
                                         core::AttackKind::kDelayInjection};
    EXPECT_EQ(oa.attack, expected[t % 3]);
  }
}

TEST(Campaign, ScenarioSeedsIndependentOfSampledAxes) {
  // Adding or removing a randomized axis must not disturb the scenario
  // noise seeds of existing trials (separate derivation streams).
  CampaignSpec with = small_spec();
  CampaignSpec without = small_spec();
  without.attack_onset_s.reset();
  without.jammer_power_w.reset();
  const Campaign a(with);
  const Campaign b(without);
  for (std::uint64_t t = 0; t < 12; ++t) {
    TrialRecord ra;
    TrialRecord rb;
    EXPECT_EQ(a.expand(t, ra).seed, b.expand(t, rb).seed) << "trial " << t;
  }
}

TEST(JsonlWriter, EscapesStringsAndEmitsOneObjectPerLine) {
  TrialRecord r;
  r.trial_id = 3;
  r.fault_spec = "dropout:start=60,len=12";
  r.error = "line\nbreak \"quoted\"";
  std::ostringstream out;
  JsonlWriter writer(out);
  writer.consume(r);
  writer.finish();
  const std::string line = out.str();
  EXPECT_NE(line.find("\"trial\":3"), std::string::npos);
  EXPECT_NE(line.find("\"fault\":\"dropout:start=60,len=12\""),
            std::string::npos);
  EXPECT_NE(line.find("line\\nbreak \\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
}

TEST(SummaryAccumulator, MergeMatchesSequentialAccumulation) {
  const Campaign campaign(small_spec());
  std::vector<TrialRecord> records;
  for (std::uint64_t t = 0; t < 12; ++t) {
    TrialRecord r;
    (void)campaign.expand(t, r);
    // Synthesize outcomes so latency/gap/rmse vectors are non-trivial.
    r.min_gap_m = units::Meters{5.0 + static_cast<double>(t)};
    r.holdover_steps = t % 2;
    r.holdover_rmse_m = units::Meters{0.1 * static_cast<double>(t)};
    if (r.attack != core::AttackKind::kNone) {
      r.detection_step = static_cast<std::int64_t>(40 + t);
      r.detection_latency_s = units::Seconds{static_cast<double>(t)};
    }
    r.collided = (t % 5 == 0);
    records.push_back(r);
  }

  SummaryAccumulator sequential;
  for (const auto& r : records) sequential.add(r);

  // Shard by a scheduling-like interleave, then merge in a different order.
  SummaryAccumulator shard_a;
  SummaryAccumulator shard_b;
  SummaryAccumulator shard_c;
  for (std::size_t i = 0; i < records.size(); ++i) {
    (i % 3 == 0   ? shard_a
     : i % 3 == 1 ? shard_b
                  : shard_c)
        .add(records[records.size() - 1 - i]);
  }
  SummaryAccumulator merged;
  merged.merge(shard_c);
  merged.merge(shard_a);
  merged.merge(shard_b);

  EXPECT_EQ(format_summary(sequential.finalize()),
            format_summary(merged.finalize()));
  const CampaignSummary s = merged.finalize();
  EXPECT_EQ(s.trials, 12U);
  EXPECT_EQ(s.collisions, 3U);
  EXPECT_EQ(s.attacked_trials, 8U);
}

// --- the tentpole property: determinism across job counts ------------------

std::string run_campaign_jsonl(const CampaignSpec& spec, std::size_t jobs) {
  std::ostringstream out;
  JsonlWriter writer(out);
  std::vector<TrialSink*> sinks{&writer};
  const Campaign campaign(spec);
  (void)campaign.run(jobs, sinks);
  return out.str();
}

std::string sorted_by_trial_id(const std::string& jsonl) {
  std::vector<std::string> lines;
  std::istringstream in(jsonl);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  std::sort(lines.begin(), lines.end(), [](const auto& a, const auto& b) {
    const auto id = [](const std::string& s) {
      return std::stoull(s.substr(s.find(':') + 1));
    };
    return id(a) < id(b);
  });
  std::string out;
  for (const auto& line : lines) out += line + "\n";
  return out;
}

TEST(Campaign, JsonlOutputIsByteIdenticalAcrossJobCounts) {
  const CampaignSpec spec = small_spec();
  const std::string serial = run_campaign_jsonl(spec, 1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(std::count(serial.begin(), serial.end(), '\n'), 12);
  // No trial may have errored: a throwing trial would still be
  // deterministic, but it would mean the spec itself is broken.
  std::size_t clean_trials = 0;
  for (std::size_t pos = serial.find("\"error\":\"\"}");
       pos != std::string::npos;
       pos = serial.find("\"error\":\"\"}", pos + 1)) {
    ++clean_trials;
  }
  EXPECT_EQ(clean_trials, 12U);

  const std::string four = run_campaign_jsonl(spec, 4);
  const std::string hw = run_campaign_jsonl(spec, Campaign::default_jobs());
  EXPECT_EQ(serial, four);
  EXPECT_EQ(serial, hw);
  // Belt and braces: the canonical-sort comparison the goldens use.
  EXPECT_EQ(sorted_by_trial_id(serial), sorted_by_trial_id(four));
  // Sinks already receive records in trial-id order.
  EXPECT_EQ(serial, sorted_by_trial_id(serial));
}

TEST(Campaign, SummaryIsIdenticalAcrossJobCounts) {
  const CampaignSpec spec = small_spec();
  const Campaign campaign(spec);
  const std::string s1 = format_summary(campaign.run(1).summary);
  const std::string s4 = format_summary(campaign.run(4).summary);
  EXPECT_EQ(s1, s4);
}

TEST(Campaign, CustomizeHookAndExplicitSeedsAreHonoured) {
  CampaignSpec spec;
  spec.trials = 3;
  spec.base.horizon_steps = 30;
  spec.base.estimator = radar::BeatEstimator::kPeriodogram;
  spec.scenario_seeds = {101, 202, 303};
  std::atomic<int> customized{0};
  spec.customize = [&customized](core::Scenario&, const TrialRecord&) {
    customized.fetch_add(1);
  };

  std::ostringstream out;
  JsonlWriter writer(out);
  std::vector<TrialSink*> sinks{&writer};
  const CampaignResult result = Campaign(spec).run(2, sinks);
  EXPECT_EQ(result.trials, 3U);
  EXPECT_EQ(customized.load(), 3);
  EXPECT_NE(out.str().find("\"seed\":101"), std::string::npos);
  EXPECT_NE(out.str().find("\"seed\":202"), std::string::npos);
  EXPECT_NE(out.str().find("\"seed\":303"), std::string::npos);
}

TEST(Campaign, TrialExceptionsBecomeRecordErrorsNotCrashes) {
  CampaignSpec spec;
  spec.trials = 4;
  spec.base.horizon_steps = 30;
  spec.base.estimator = radar::BeatEstimator::kPeriodogram;
  // Invalid window: end precedes start -> validate() throws per trial.
  spec.base.attack = core::AttackKind::kDosJammer;
  spec.base.attack_start_s = units::Seconds{50.0};
  spec.base.attack_end_s = units::Seconds{10.0};

  const CampaignResult result = Campaign(spec).run(2);
  EXPECT_EQ(result.summary.trials, 4U);
  EXPECT_EQ(result.summary.errors, 4U);
}

}  // namespace
