// Tests for challenge schedules, the probe modulator, and the CRA detector.
#include <gtest/gtest.h>

#include <memory>

#include "cra/challenge.hpp"
#include "cra/detector.hpp"
#include "cra/modulator.hpp"

namespace safe::cra {
namespace {

TEST(FixedChallengeSchedule, MembershipMatchesList) {
  const FixedChallengeSchedule s({15, 50, 175});
  EXPECT_TRUE(s.is_challenge(15));
  EXPECT_TRUE(s.is_challenge(50));
  EXPECT_TRUE(s.is_challenge(175));
  EXPECT_FALSE(s.is_challenge(14));
  EXPECT_FALSE(s.is_challenge(0));
  EXPECT_FALSE(s.is_challenge(182));
}

TEST(FixedChallengeSchedule, RejectsNegativeSteps) {
  EXPECT_THROW(FixedChallengeSchedule({-1}), std::invalid_argument);
}

TEST(FixedChallengeSchedule, ChallengeStepsEnumeration) {
  const FixedChallengeSchedule s({3, 7, 100});
  const auto steps = s.challenge_steps(50);
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0], 3);
  EXPECT_EQ(steps[1], 7);
}

TEST(PaperChallengeSchedule, MatchesFigureSpikesAndDetectionInstant) {
  const auto s = paper_challenge_schedule(300);
  EXPECT_TRUE(s.is_challenge(15));
  EXPECT_TRUE(s.is_challenge(50));
  EXPECT_TRUE(s.is_challenge(175));
  EXPECT_TRUE(s.is_challenge(182));  // the detection instant in Section 6.2
  EXPECT_FALSE(s.is_challenge(180));
  EXPECT_FALSE(s.is_challenge(181));
}

TEST(PaperChallengeSchedule, TailHasRequestedPeriod) {
  const auto s = paper_challenge_schedule(300, 7);
  EXPECT_TRUE(s.is_challenge(189));
  EXPECT_TRUE(s.is_challenge(196));
  EXPECT_FALSE(s.is_challenge(190));
  EXPECT_THROW(paper_challenge_schedule(300, 0), std::invalid_argument);
}

TEST(PrbsChallengeSchedule, RateTracksRequestedProbability) {
  const PrbsChallengeSchedule s(0xBEEF, 1, 10, 5000);
  EXPECT_NEAR(s.challenge_rate(), 0.1, 0.02);
}

TEST(PrbsChallengeSchedule, DeterministicPerKey) {
  const PrbsChallengeSchedule a(0x1111, 1, 4, 512);
  const PrbsChallengeSchedule b(0x1111, 1, 4, 512);
  const PrbsChallengeSchedule c(0x2222, 1, 4, 512);
  int diff_ab = 0, diff_ac = 0;
  for (std::int64_t k = 0; k < 512; ++k) {
    diff_ab += a.is_challenge(k) != b.is_challenge(k) ? 1 : 0;
    diff_ac += a.is_challenge(k) != c.is_challenge(k) ? 1 : 0;
  }
  EXPECT_EQ(diff_ab, 0);
  EXPECT_GT(diff_ac, 0);
}

TEST(PrbsChallengeSchedule, OutOfHorizonIsNotChallenge) {
  const PrbsChallengeSchedule s(0x1234, 1, 2, 16);
  EXPECT_FALSE(s.is_challenge(-1));
  EXPECT_FALSE(s.is_challenge(16));
  EXPECT_THROW(PrbsChallengeSchedule(1, 1, 2, 0), std::invalid_argument);
}

TEST(ProbeModulator, GatesTransmitterOnSchedule) {
  const auto schedule =
      std::make_shared<FixedChallengeSchedule>(std::vector<std::int64_t>{5});
  const ProbeModulator mod(schedule);
  EXPECT_EQ(mod.modulation(5), 0);
  EXPECT_EQ(mod.modulation(4), 1);
  EXPECT_FALSE(mod.tx_enabled(5));
  EXPECT_TRUE(mod.tx_enabled(6));
}

TEST(ProbeModulator, NullScheduleThrows) {
  EXPECT_THROW(ProbeModulator(nullptr), std::invalid_argument);
}

TEST(Detector, SilentChallengeKeepsClean) {
  ChallengeResponseDetector det;
  const auto d = det.observe(15, /*challenge=*/true, /*nonzero=*/false);
  EXPECT_FALSE(d.under_attack);
  EXPECT_FALSE(d.attack_started);
  EXPECT_FALSE(det.detection_step().has_value());
}

TEST(Detector, NonZeroChallengeOutputDetectsAttack) {
  ChallengeResponseDetector det;
  det.observe(15, true, false);
  const auto d = det.observe(182, true, true);
  EXPECT_TRUE(d.attack_started);
  EXPECT_TRUE(d.under_attack);
  ASSERT_TRUE(det.detection_step().has_value());
  EXPECT_EQ(*det.detection_step(), 182);
}

TEST(Detector, NonChallengeStepsNeverChangeState) {
  ChallengeResponseDetector det;
  // Nonzero outputs at normal steps are expected (real echoes) and must not
  // trigger: this is what makes CRA false-positive-free.
  for (std::int64_t k = 0; k < 100; ++k) {
    const auto d = det.observe(k, false, true);
    EXPECT_FALSE(d.under_attack);
  }
  EXPECT_FALSE(det.detection_step().has_value());
}

TEST(Detector, SilentChallengeWhileUnderAttackClears) {
  ChallengeResponseDetector det;
  det.observe(182, true, true);
  EXPECT_TRUE(det.under_attack());
  const auto d = det.observe(305, true, false);
  EXPECT_TRUE(d.attack_cleared);
  EXPECT_FALSE(det.under_attack());
  // Detection step of the past attack is retained for reporting.
  ASSERT_TRUE(det.detection_step().has_value());
  EXPECT_EQ(*det.detection_step(), 182);
}

TEST(Detector, RedetectsAfterClear) {
  ChallengeResponseDetector det;
  det.observe(10, true, true);
  det.observe(20, true, false);
  const auto d = det.observe(30, true, true);
  EXPECT_TRUE(d.attack_started);
  EXPECT_EQ(*det.detection_step(), 30);
}

TEST(Detector, ScoredStatsCountConfusionMatrix) {
  ChallengeResponseDetector det;
  det.observe_scored(1, true, false, false);   // TN
  det.observe_scored(2, true, true, true);     // TP
  det.observe_scored(3, false, true, true);    // not a challenge: unscored
  det.observe_scored(4, true, false, true);    // FN
  det.observe_scored(5, true, true, false);    // FP (efter clear attempt)
  const DetectionStats& s = det.stats();
  EXPECT_EQ(s.challenges, 4u);
  EXPECT_EQ(s.true_negatives, 1u);
  EXPECT_EQ(s.true_positives, 1u);
  EXPECT_EQ(s.false_negatives, 1u);
  EXPECT_EQ(s.false_positives, 1u);
}

TEST(Detector, ResetClearsEverything) {
  ChallengeResponseDetector det;
  det.observe_scored(182, true, true, true);
  det.reset();
  EXPECT_FALSE(det.under_attack());
  EXPECT_FALSE(det.detection_step().has_value());
  EXPECT_EQ(det.stats().challenges, 0u);
}

}  // namespace
}  // namespace safe::cra
