// Tests for the graceful-degradation manager: measurement validation,
// innovation gating, holdover budget / DEGRADED_SAFE_STOP, dropout bridging,
// and the HealthMonitor state machine itself.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "core/pipeline.hpp"
#include "cra/challenge.hpp"
#include "estimation/rls_predictor.hpp"

namespace safe::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::shared_ptr<const cra::ChallengeSchedule> schedule_with(
    std::vector<std::int64_t> steps) {
  return std::make_shared<cra::FixedChallengeSchedule>(std::move(steps));
}

SafeMeasurementPipeline make_pipeline(
    std::shared_ptr<const cra::ChallengeSchedule> schedule,
    const PipelineOptions& options = {}) {
  return SafeMeasurementPipeline(
      std::move(schedule), std::make_unique<estimation::RlsArPredictor>(),
      std::make_unique<estimation::RlsArPredictor>(), options);
}

radar::RadarMeasurement echo_measurement(double d, double dv) {
  radar::RadarMeasurement m;
  m.estimate = radar::RangeRate{.distance_m = Meters{d},
                                .range_rate_mps = MetersPerSecond{dv}};
  m.coherent_echo = true;
  m.peak_to_average = 500.0;
  return m;
}

radar::RadarMeasurement silent_measurement() {
  radar::RadarMeasurement m;
  m.coherent_echo = false;
  m.power_alarm = false;
  return m;
}

radar::RadarMeasurement jammed_measurement() {
  radar::RadarMeasurement m;
  m.coherent_echo = false;
  m.power_alarm = true;
  return m;
}

double ramp(std::int64_t k) { return 100.0 - 0.5 * static_cast<double>(k); }

/// Raw-double shim over the typed HealthMonitor::validate signature.
HealthMonitor::Verdict validate(HealthMonitor& hm, double d, double v) {
  return hm.validate(Meters{d}, MetersPerSecond{v}, false, Meters{0.0},
                     MetersPerSecond{0.0});
}

TEST(HealthMonitor, ValidatesFinitenessAndRange) {
  HealthMonitor hm;
  using V = HealthMonitor::Verdict;
  EXPECT_EQ(validate(hm, 80.0, -2.0), V::kAccept);
  EXPECT_EQ(validate(hm, kNan, -2.0), V::kRejectNonFinite);
  EXPECT_EQ(validate(hm, 80.0, kInf), V::kRejectNonFinite);
  EXPECT_EQ(validate(hm, -3.0, 0.0), V::kRejectRange);
  EXPECT_EQ(validate(hm, 5000.0, 0.0), V::kRejectRange);
  EXPECT_EQ(validate(hm, 80.0, 400.0), V::kRejectRange);
  EXPECT_EQ(hm.stats().rejected_nonfinite, 2u);
  EXPECT_EQ(hm.stats().rejected_out_of_range, 3u);
}

TEST(HealthMonitor, PredictionOkRejectsDivergedFreeRuns) {
  HealthMonitor hm;
  EXPECT_TRUE(hm.prediction_ok(Meters{50.0}, MetersPerSecond{-3.0}));
  EXPECT_FALSE(hm.prediction_ok(Meters{kNan}, MetersPerSecond{-3.0}));
  EXPECT_FALSE(hm.prediction_ok(Meters{50.0}, MetersPerSecond{kInf}));
  EXPECT_FALSE(hm.prediction_ok(Meters{1e9}, MetersPerSecond{0.0}));
  EXPECT_FALSE(hm.prediction_ok(Meters{50.0}, MetersPerSecond{900.0}));
}

TEST(HealthMonitor, HoldoverBudgetLatchesSafeStop) {
  HealthOptions o;
  o.max_holdover_steps = 3;
  HealthMonitor hm(o);
  for (int i = 0; i < 3; ++i) hm.note_holdover_step();
  EXPECT_FALSE(hm.safe_stop());  // budget allows exactly 3
  hm.note_holdover_step();
  EXPECT_TRUE(hm.safe_stop());
  EXPECT_EQ(hm.stats().safe_stop_entries, 1u);
  // A trusted sample mid-attack resets the run but keeps the latch.
  hm.note_trusted_sample(/*attack_over=*/false);
  EXPECT_TRUE(hm.safe_stop());
  EXPECT_EQ(hm.holdover_steps(), 0u);
  // Only a trusted sample after the attack clears releases it.
  hm.note_trusted_sample(/*attack_over=*/true);
  EXPECT_FALSE(hm.safe_stop());
}

TEST(HealthMonitor, UnboundedBudgetNeverStops) {
  HealthMonitor hm;  // max_holdover_steps = 0
  for (int i = 0; i < 10'000; ++i) hm.note_holdover_step();
  EXPECT_FALSE(hm.safe_stop());
}

TEST(DegradationState, NamesAreStable) {
  EXPECT_STREQ(to_string(DegradationState::kClean), "clean");
  EXPECT_STREQ(to_string(DegradationState::kUnderAttack), "under-attack");
  EXPECT_STREQ(to_string(DegradationState::kHoldover), "holdover");
  EXPECT_STREQ(to_string(DegradationState::kSafeStop), "safe-stop");
}

TEST(Degradation, NanMeasurementNeverPropagates) {
  auto p = make_pipeline(schedule_with({100}));
  for (std::int64_t k = 0; k < 12; ++k) {
    p.process(k, echo_measurement(ramp(k), -0.5));
  }
  // Coherent echo carrying NaN: the worst case for a consumer that trusts
  // the coherent flag alone.
  const auto safe = p.process(12, echo_measurement(kNan, kNan));
  EXPECT_TRUE(safe.measurement_rejected);
  EXPECT_TRUE(safe.target_present);
  EXPECT_TRUE(safe.estimated);
  EXPECT_TRUE(std::isfinite(safe.distance_m.value()));
  EXPECT_TRUE(std::isfinite(safe.relative_velocity_mps.value()));
  EXPECT_NEAR(safe.distance_m.value(), ramp(12), 2.0);
  EXPECT_EQ(safe.degradation, DegradationState::kHoldover);
  EXPECT_EQ(p.health_stats().rejected_nonfinite, 1u);
}

TEST(Degradation, NanBeforeAnyTargetReportsNoTarget) {
  auto p = make_pipeline(schedule_with({100}));
  const auto safe = p.process(0, echo_measurement(kInf, 0.0));
  EXPECT_TRUE(safe.measurement_rejected);
  EXPECT_FALSE(safe.target_present);
  EXPECT_TRUE(std::isfinite(safe.distance_m.value()));
}

TEST(Degradation, OutOfRangeMeasurementIsQuarantined) {
  auto p = make_pipeline(schedule_with({100}));
  for (std::int64_t k = 0; k < 12; ++k) {
    p.process(k, echo_measurement(ramp(k), -0.5));
  }
  const auto safe = p.process(12, echo_measurement(4000.0, -0.5));
  EXPECT_TRUE(safe.measurement_rejected);
  EXPECT_NEAR(safe.distance_m.value(), ramp(12), 2.0);
  EXPECT_EQ(p.health_stats().rejected_out_of_range, 1u);
}

TEST(Degradation, InnovationGateQuarantinesStealthJump) {
  PipelineOptions opts;
  opts.health.innovation_threshold = 25.0;
  opts.health.innovation_min_samples = 8;
  auto p = make_pipeline(schedule_with({200}), opts);
  for (std::int64_t k = 0; k < 40; ++k) {
    p.process(k, echo_measurement(ramp(k), -0.5));
  }
  // A +30 m teleport while staying coherent and in-range: only the
  // innovation gate can catch it.
  const auto safe = p.process(40, echo_measurement(ramp(40) + 30.0, -0.5));
  EXPECT_TRUE(safe.measurement_rejected);
  EXPECT_TRUE(safe.estimated);
  EXPECT_NEAR(safe.distance_m.value(), ramp(40), 3.0);
  EXPECT_EQ(safe.degradation, DegradationState::kHoldover);
  EXPECT_GE(p.health_stats().rejected_innovation, 1u);
}

TEST(Degradation, HoldoverBudgetEntersSafeStopUnderPersistentAttack) {
  PipelineOptions opts;
  opts.health.max_holdover_steps = 5;
  auto p = make_pipeline(schedule_with({20, 60}), opts);
  for (std::int64_t k = 0; k < 20; ++k) {
    p.process(k, echo_measurement(ramp(k), -0.5));
  }
  const auto detect = p.process(20, jammed_measurement());
  EXPECT_TRUE(detect.attack_started);
  EXPECT_EQ(detect.degradation, DegradationState::kUnderAttack);

  SafeMeasurement last{};
  for (std::int64_t k = 21; k <= 30; ++k) {
    last = p.process(k, jammed_measurement());
  }
  // 10 estimated steps > budget of 5: the machine must have latched.
  EXPECT_TRUE(last.safe_stop);
  EXPECT_EQ(last.degradation, DegradationState::kSafeStop);
  EXPECT_GT(last.holdover_steps, 5u);
  EXPECT_EQ(p.health_stats().safe_stop_entries, 1u);
}

TEST(Degradation, SafeStopReleasesAfterClearanceAndTrustedSample) {
  PipelineOptions opts;
  opts.health.max_holdover_steps = 3;
  auto p = make_pipeline(schedule_with({20, 40}), opts);
  for (std::int64_t k = 0; k < 20; ++k) {
    p.process(k, echo_measurement(ramp(k), -0.5));
  }
  p.process(20, jammed_measurement());
  for (std::int64_t k = 21; k < 40; ++k) {
    const auto s = p.process(k, jammed_measurement());
    if (k > 24) {
      EXPECT_TRUE(s.safe_stop) << "k=" << k;
    }
  }
  const auto cleared = p.process(40, silent_measurement());
  EXPECT_TRUE(cleared.attack_cleared);
  // Clearance alone keeps the latch: estimates are still stale.
  EXPECT_TRUE(cleared.safe_stop);
  const auto trusted = p.process(41, echo_measurement(ramp(41), -0.5));
  EXPECT_FALSE(trusted.safe_stop);
  EXPECT_EQ(trusted.degradation, DegradationState::kClean);
  EXPECT_EQ(trusted.holdover_steps, 0u);
}

TEST(Degradation, DropoutBridgingHoldsTargetBriefly) {
  PipelineOptions opts;
  opts.health.dropout_holdover_steps = 3;
  auto p = make_pipeline(schedule_with({200}), opts);
  for (std::int64_t k = 0; k < 15; ++k) {
    p.process(k, echo_measurement(ramp(k), -0.5));
  }
  // Three silent epochs are bridged with estimates...
  for (std::int64_t k = 15; k < 18; ++k) {
    const auto s = p.process(k, silent_measurement());
    EXPECT_TRUE(s.target_present) << "k=" << k;
    EXPECT_TRUE(s.estimated) << "k=" << k;
    EXPECT_NEAR(s.distance_m.value(), ramp(k), 2.0) << "k=" << k;
  }
  // ...the fourth declares the target lost.
  const auto lost = p.process(18, silent_measurement());
  EXPECT_FALSE(lost.target_present);
  EXPECT_EQ(p.health_stats().bridged_dropouts, 3u);
  // A returning echo resumes pass-through cleanly.
  const auto back = p.process(19, echo_measurement(ramp(19), -0.5));
  EXPECT_TRUE(back.target_present);
  EXPECT_FALSE(back.estimated);
}

TEST(Degradation, LegacyDefaultsDropTargetImmediately) {
  auto p = make_pipeline(schedule_with({200}));
  for (std::int64_t k = 0; k < 15; ++k) {
    p.process(k, echo_measurement(ramp(k), -0.5));
  }
  const auto s = p.process(15, silent_measurement());
  EXPECT_FALSE(s.target_present);  // paper behaviour: no bridging
  EXPECT_EQ(p.health_stats().bridged_dropouts, 0u);
}

TEST(HealthMonitor, FrozenStreamIsQuarantinedAfterIdenticalRun) {
  // Stuck-at faults repeat the last frame exactly; their innovation is zero,
  // so the frozen-stream check is the only detector that can see them.
  HealthOptions o;
  o.max_identical_measurements = 3;
  HealthMonitor hm{o};
  using V = HealthMonitor::Verdict;
  EXPECT_EQ(validate(hm, 80.0, -2.0), V::kAccept);
  EXPECT_EQ(validate(hm, 80.0, -2.0), V::kAccept);
  EXPECT_EQ(validate(hm, 80.0, -2.0), V::kAccept);
  EXPECT_EQ(validate(hm, 80.0, -2.0), V::kRejectStuck);
  EXPECT_EQ(validate(hm, 80.0, -2.0), V::kRejectStuck);
  EXPECT_EQ(hm.stats().rejected_stuck, 2u);
  // Any change on either channel clears the run.
  EXPECT_EQ(validate(hm, 79.5, -2.0), V::kAccept);
  EXPECT_EQ(validate(hm, 79.5, -2.0), V::kAccept);
}

TEST(HealthMonitor, FrozenStreamCheckOffByDefault) {
  HealthMonitor hm;  // paper defaults: repeats are legal
  using V = HealthMonitor::Verdict;
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(validate(hm, 80.0, -2.0), V::kAccept);
  }
  EXPECT_EQ(hm.stats().rejected_stuck, 0u);
}

TEST(Degradation, StuckMeasurementsForceHoldover) {
  PipelineOptions opts;
  opts.health.max_identical_measurements = 3;
  auto p = make_pipeline(schedule_with({}), opts);
  for (std::int64_t k = 0; k < 10; ++k) {
    p.process(k, echo_measurement(ramp(k), -0.5));
  }
  // Stream freezes at the k = 9 frame.
  SafeMeasurement last;
  for (std::int64_t k = 10; k < 20; ++k) {
    last = p.process(k, echo_measurement(ramp(9), -0.5));
  }
  EXPECT_TRUE(last.measurement_rejected);
  EXPECT_EQ(last.degradation, DegradationState::kHoldover);
  EXPECT_GT(p.health_stats().rejected_stuck, 0u);
}

TEST(Degradation, HardenedOptionsEnableEverything) {
  const PipelineOptions o = hardened_pipeline_options(42);
  EXPECT_GT(o.health.innovation_threshold, 0.0);
  EXPECT_EQ(o.health.max_holdover_steps, 42u);
  EXPECT_GT(o.health.dropout_holdover_steps, 0u);
  EXPECT_GT(o.health.max_identical_measurements, 0u);
  EXPECT_GE(o.detector.clear_after_silent_challenges, 2u);
  // And the paper defaults leave all of it off.
  const PipelineOptions paper{};
  EXPECT_EQ(paper.health.innovation_threshold, 0.0);
  EXPECT_EQ(paper.health.max_holdover_steps, 0u);
  EXPECT_EQ(paper.health.dropout_holdover_steps, 0u);
  EXPECT_EQ(paper.health.max_identical_measurements, 0u);
  EXPECT_EQ(paper.detector.clear_after_silent_challenges, 1u);
}

TEST(Degradation, ResetClearsMachine) {
  PipelineOptions opts;
  opts.health.max_holdover_steps = 2;
  auto p = make_pipeline(schedule_with({10}), opts);
  for (std::int64_t k = 0; k < 10; ++k) {
    p.process(k, echo_measurement(ramp(k), -0.5));
  }
  p.process(10, jammed_measurement());
  for (std::int64_t k = 11; k < 20; ++k) p.process(k, jammed_measurement());
  EXPECT_EQ(p.degradation(), DegradationState::kSafeStop);
  p.reset();
  EXPECT_EQ(p.degradation(), DegradationState::kClean);
  EXPECT_EQ(p.health_stats().safe_stop_entries, 0u);
}

}  // namespace
}  // namespace safe::core
