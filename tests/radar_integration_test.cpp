// Cross-component radar integration tests: CFAR on synthesized radar
// spectra, two-target scenes, and the tracker fed by the processor.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/cfar.hpp"
#include "dsp/spectral.hpp"
#include "radar/link_budget.hpp"
#include "radar/processor.hpp"
#include "radar/tracker.hpp"

namespace safe::radar {
namespace {

using units::Meters;
using units::MetersPerSecond;

RadarProcessorConfig test_config() {
  RadarProcessorConfig cfg;
  cfg.estimator = BeatEstimator::kPeriodogram;
  cfg.noise_floor_w = thermal_noise_power_w(cfg.waveform);
  return cfg;
}

EchoScene scene_for(double d, double dv, const RadarProcessorConfig& cfg) {
  EchoScene scene;
  scene.echoes.push_back(EchoComponent{
      .distance_m = Meters{d},
      .range_rate_mps = MetersPerSecond{dv},
      .power_w = received_echo_power_w(cfg.waveform, Meters{d}, 10.0),
  });
  scene.noise_power_w = cfg.noise_floor_w;
  return scene;
}

TEST(RadarCfar, FindsBeatBinInSynthesizedSpectrum) {
  const auto cfg = test_config();
  RadarProcessor radar(cfg, 3);
  const auto seg = radar.synthesize(scene_for(80.0, 0.0, cfg));
  const auto spectrum = dsp::power_spectrum(dsp::fft(seg.up, 4096));
  const auto detections = dsp::cfar_detect(spectrum, {.guard_cells = 4,
                                                      .training_cells = 16,
                                                      .threshold_factor = 10.0});
  ASSERT_GE(detections.size(), 1u);
  // Expected beat ~ 40.0 kHz -> bin = f/fs * 4096 ~ 164.
  const auto beats =
      beat_frequencies(cfg.waveform, Meters{80.0}, MetersPerSecond{0.0});
  const double expected_bin =
      beats.up_hz.value() / cfg.sample_rate_hz.value() * 4096.0;
  bool found = false;
  for (const auto& det : detections) {
    if (std::abs(static_cast<double>(det.bin) - expected_bin) < 4.0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RadarCfar, JammedSpectrumYieldsNoFalseTarget) {
  const auto cfg = test_config();
  RadarProcessor radar(cfg, 5);
  EchoScene scene;
  scene.noise_power_w =
      cfg.noise_floor_w +
      received_jammer_power_w(cfg.waveform, JammerParameters{}, Meters{100.0});
  const auto seg = radar.synthesize(scene);
  const auto spectrum = dsp::power_spectrum(dsp::fft(seg.up, 4096));
  const auto detections = dsp::cfar_detect(spectrum, {.guard_cells = 4,
                                                      .training_cells = 16,
                                                      .threshold_factor = 10.0});
  // CFAR adapts to the raised floor: the jam produces no stable detection,
  // unlike a fixed threshold which would fire everywhere.
  EXPECT_LE(detections.size(), 2u);
}

TEST(RadarTwoTargets, StrongerEchoWins) {
  const auto cfg = test_config();
  RadarProcessor radar(cfg, 7);
  EchoScene scene = scene_for(40.0, -1.0, cfg);
  scene.echoes.push_back(EchoComponent{
      .distance_m = Meters{90.0},
      .range_rate_mps = MetersPerSecond{2.0},
      .power_w = received_echo_power_w(cfg.waveform, Meters{90.0}, 10.0),
  });
  // d^-4: the 40 m echo is ~26 dB stronger; the receiver locks onto it.
  const auto m = radar.measure(scene);
  ASSERT_TRUE(m.coherent_echo);
  EXPECT_NEAR(m.estimate.distance_m.value(), 40.0, 2.0);
}

TEST(RadarTracker, FollowsProcessorThroughChallengeDropouts) {
  const auto cfg = test_config();
  RadarProcessor radar(cfg, 9);
  RangeTracker tracker;

  double d = 100.0;
  const double dv = -2.0;
  for (int k = 0; k < 30; ++k) {
    d += dv;
    const bool challenge = (k % 7) == 5;  // periodic probe suppression
    std::vector<RangeRate> detections;
    if (!challenge) {
      const auto m = radar.measure(scene_for(d, dv, cfg));
      if (m.coherent_echo) detections.push_back(m.estimate);
    }
    tracker.update(detections);
  }
  const auto primary = tracker.primary_track();
  ASSERT_TRUE(primary.has_value());
  EXPECT_NEAR(primary->range_m.value(), d, 3.0);
  EXPECT_NEAR(primary->range_rate_mps.value(), dv, 1.0);
  EXPECT_EQ(tracker.tracks().size(), 1u);  // dropouts spawned no ghosts
}

TEST(RadarTracker, SpoofOnsetVisibleAsTrackSplit) {
  const auto cfg = test_config();
  RadarProcessor radar(cfg, 11);
  RangeTracker tracker;

  // 4 spoofed epochs: enough to confirm the counterfeit track while the
  // genuine track is still coasting (it is dropped after 5 misses).
  double d = 60.0;
  for (int k = 0; k < 22; ++k) {
    d -= 0.5;
    EchoScene scene;
    scene.noise_power_w = cfg.noise_floor_w;
    const bool spoofed = k >= 18;
    scene.echoes.push_back(EchoComponent{
        .distance_m = Meters{spoofed ? d + 6.0 : d},  // +6 m jump at onset
        .range_rate_mps = MetersPerSecond{-0.5},
        .power_w = received_echo_power_w(cfg.waveform, Meters{d}, 10.0) *
                   (spoofed ? 4.0 : 1.0),
    });
    const auto m = radar.measure(scene);
    std::vector<RangeRate> detections;
    if (m.coherent_echo) detections.push_back(m.estimate);
    tracker.update(detections);
  }
  // The 6 m jump exceeds the 5 m gate: the old track coasts, a new track
  // forms. Track-splitting is an independent spoofing tell that complements
  // CRA.
  EXPECT_GE(tracker.tracks().size(), 2u);
}

}  // namespace
}  // namespace safe::radar
