// Closed-loop integration tests of the full case study (Section 6).
//
// These use the periodogram estimator (fast) — the benches reproduce the
// figures with root-MUSIC as in the paper.
#include <gtest/gtest.h>

#include <cmath>

#include "core/scenario.hpp"

namespace safe::core {
namespace {

ScenarioOptions fast_options() {
  ScenarioOptions o;
  o.estimator = radar::BeatEstimator::kPeriodogram;
  return o;
}

TEST(CarFollowing, CleanRunTracksLeaderWithoutCollision) {
  ScenarioOptions o = fast_options();
  o.attack = AttackKind::kNone;
  const auto result = make_paper_scenario(o).run();
  EXPECT_FALSE(result.collided);
  EXPECT_FALSE(result.detection_step.has_value());
  EXPECT_EQ(result.detection_stats.false_positives, 0u);
  // The follower must keep a safe gap the whole run (the CTH design point
  // is d_0 = 5 m once both vehicles have stopped).
  EXPECT_GT(result.min_gap_m, units::Meters{4.5});
  EXPECT_EQ(result.trace.num_rows(), 300u);
}

TEST(CarFollowing, CleanRunMeasurementsTrackTruth) {
  ScenarioOptions o = fast_options();
  const auto result = make_paper_scenario(o).run();
  const auto& truth = result.trace.column("true_gap_m");
  const auto& meas = result.trace.column("meas_gap_m");
  const auto& challenge = result.trace.column("challenge");
  double worst = 0.0;
  for (std::size_t k = 0; k < truth.size(); ++k) {
    if (challenge[k] != 0.0) continue;  // radar mute at challenge slots
    if (truth[k] < 2.0 || truth[k] > 200.0) continue;
    worst = std::max(worst, std::abs(meas[k] - truth[k]));
  }
  EXPECT_LT(worst, 3.0);
}

TEST(CarFollowing, DosAttackUndefendedEndsInCollision) {
  ScenarioOptions o = fast_options();
  o.attack = AttackKind::kDosJammer;
  o.defense_enabled = false;
  const auto result = make_paper_scenario(o).run();
  EXPECT_TRUE(result.collided);
  ASSERT_TRUE(result.collision_step.has_value());
  EXPECT_GT(*result.collision_step, 182);  // after attack onset
}

TEST(CarFollowing, DosAttackDefendedAvoidsCollision) {
  ScenarioOptions o = fast_options();
  o.attack = AttackKind::kDosJammer;
  o.defense_enabled = true;
  const auto result = make_paper_scenario(o).run();
  EXPECT_FALSE(result.collided);
  ASSERT_TRUE(result.detection_step.has_value());
  EXPECT_EQ(*result.detection_step, 182);  // paper: detected at k = 182
  EXPECT_EQ(result.detection_stats.false_positives, 0u);
  EXPECT_EQ(result.detection_stats.false_negatives, 0u);
}

TEST(CarFollowing, DelayAttackDefendedDetectsAtFirstChallenge) {
  ScenarioOptions o = fast_options();
  o.attack = AttackKind::kDelayInjection;
  o.attack_start_s =
      units::Seconds{180.0};  // paper: delay injection begins at k = 180
  const auto result = make_paper_scenario(o).run();
  EXPECT_FALSE(result.collided);
  ASSERT_TRUE(result.detection_step.has_value());
  EXPECT_EQ(*result.detection_step, 182);
  EXPECT_EQ(result.detection_stats.false_positives, 0u);
  EXPECT_EQ(result.detection_stats.false_negatives, 0u);
}

TEST(CarFollowing, DelayAttackShiftsMeasuredGapBySixMeters) {
  ScenarioOptions o = fast_options();
  o.attack = AttackKind::kDelayInjection;
  o.attack_start_s = units::Seconds{180.0};
  o.defense_enabled = false;
  const auto result = make_paper_scenario(o).run();
  const auto& truth = result.trace.column("true_gap_m");
  const auto& meas = result.trace.column("meas_gap_m");
  const auto& challenge = result.trace.column("challenge");
  // Within the attack window the radar reports ~+6 m.
  int checked = 0;
  for (std::size_t k = 185; k < 220 && k < truth.size(); ++k) {
    if (challenge[k] != 0.0) continue;
    if (truth[k] < 2.0) break;
    EXPECT_NEAR(meas[k] - truth[k], 6.0, 1.5) << "k=" << k;
    ++checked;
  }
  EXPECT_GT(checked, 20);
}

TEST(CarFollowing, DelayAttackUndefendedShrinksSafetyMargin) {
  ScenarioOptions o = fast_options();
  o.attack = AttackKind::kDelayInjection;
  o.attack_start_s = units::Seconds{180.0};

  o.defense_enabled = false;
  const auto undefended = make_paper_scenario(o).run();
  o.defense_enabled = true;
  const auto defended = make_paper_scenario(o).run();

  // Believing the leader is 6 m further away, the undefended follower keeps
  // a smaller real gap than the defended one.
  EXPECT_LT(undefended.min_gap_m, defended.min_gap_m);
}

TEST(CarFollowing, ScenarioTwoDefendedSurvivesBothAttacks) {
  for (const auto kind : {AttackKind::kDosJammer, AttackKind::kDelayInjection}) {
    ScenarioOptions o = fast_options();
    o.leader = LeaderScenario::kDecelThenAccel;
    o.attack = kind;
    o.attack_start_s =
        kind == AttackKind::kDosJammer ? units::Seconds{182.0}
                                       : units::Seconds{180.0};
    const auto result = make_paper_scenario(o).run();
    EXPECT_FALSE(result.collided);
    ASSERT_TRUE(result.detection_step.has_value());
    EXPECT_EQ(*result.detection_step, 182);
    EXPECT_EQ(result.detection_stats.false_positives, 0u);
    EXPECT_EQ(result.detection_stats.false_negatives, 0u);
  }
}

TEST(CarFollowing, EstimatesTrackTruthThroughAttack) {
  ScenarioOptions o = fast_options();
  o.attack = AttackKind::kDosJammer;
  const auto result = make_paper_scenario(o).run();
  const auto& truth = result.trace.column("true_gap_m");
  const auto& safe = result.trace.column("safe_gap_m");
  // Over the first 60 s of holdover the estimate should stay within a car
  // length or two of the truth (paper Figures 2-3: estimated data hugs the
  // no-attack trace).
  for (std::size_t k = 183; k < 240; ++k) {
    EXPECT_NEAR(safe[k], truth[k], 10.0) << "k=" << k;
  }
}

TEST(CarFollowing, ChallengeColumnMatchesSchedule) {
  ScenarioOptions o = fast_options();
  const auto result = make_paper_scenario(o).run();
  const auto& challenge = result.trace.column("challenge");
  EXPECT_EQ(challenge[15], 1.0);
  EXPECT_EQ(challenge[50], 1.0);
  EXPECT_EQ(challenge[175], 1.0);
  EXPECT_EQ(challenge[182], 1.0);
  EXPECT_EQ(challenge[16], 0.0);
  EXPECT_EQ(challenge[0], 0.0);
}

TEST(CarFollowing, DeterministicGivenSeed) {
  ScenarioOptions o = fast_options();
  o.attack = AttackKind::kDosJammer;
  const auto a = make_paper_scenario(o).run();
  const auto b = make_paper_scenario(o).run();
  EXPECT_EQ(a.min_gap_m.value(), b.min_gap_m.value());
  EXPECT_EQ(a.trace.column("follower_v_mps"), b.trace.column("follower_v_mps"));
}

TEST(CarFollowing, SeedChangesNoiseButNotOutcome) {
  ScenarioOptions o = fast_options();
  o.attack = AttackKind::kDosJammer;
  o.seed = 12345;
  const auto result = make_paper_scenario(o).run();
  EXPECT_FALSE(result.collided);
  ASSERT_TRUE(result.detection_step.has_value());
  EXPECT_EQ(*result.detection_step, 182);
}

TEST(CarFollowing, AttackEndingMidRunIsCleared) {
  // Attack spans [170, 190): with challenges at 175, 182, 189, 196 it is
  // detected at 175 and cleared at 196 (the first silent challenge after
  // the jammer goes quiet).
  ScenarioOptions o = fast_options();
  o.attack = AttackKind::kDosJammer;
  o.attack_start_s = units::Seconds{170.0};
  o.attack_end_s = units::Seconds{190.0};
  const auto result = make_paper_scenario(o).run();
  EXPECT_FALSE(result.collided);
  ASSERT_TRUE(result.detection_step.has_value());
  EXPECT_EQ(*result.detection_step, 175);
  const auto& under = result.trace.column("under_attack");
  EXPECT_EQ(under[180], 1.0);
  EXPECT_EQ(under[189], 1.0);
  EXPECT_EQ(under[200], 0.0);
  EXPECT_EQ(under[250], 0.0);
}

TEST(CarFollowing, InvalidConfigurationThrows) {
  ScenarioOptions o = fast_options();
  Scenario s = make_paper_scenario(o);
  s.config.horizon_steps = 0;
  EXPECT_THROW(CarFollowingSimulation(s.config, s.leader, s.attack,
                                      s.schedule),
               std::invalid_argument);
  Scenario s2 = make_paper_scenario(o);
  EXPECT_THROW(CarFollowingSimulation(s2.config, nullptr, s2.attack,
                                      s2.schedule),
               std::invalid_argument);
  Scenario s3 = make_paper_scenario(o);
  EXPECT_THROW(CarFollowingSimulation(s3.config, s3.leader, s3.attack,
                                      nullptr),
               std::invalid_argument);
}

TEST(CarFollowing, TraceColumnsAreComplete) {
  const auto cols = CarFollowingResult::columns();
  EXPECT_EQ(cols.size(), 16u);
  ScenarioOptions o = fast_options();
  o.horizon_steps = 20;
  const auto result = make_paper_scenario(o).run();
  EXPECT_EQ(result.trace.num_rows(), 20u);
  EXPECT_EQ(result.trace.num_columns(), cols.size());
}

// Detection-latency property: whenever the attack starts, detection happens
// at the first challenge slot at/after onset, with no FPs or FNs.
class DetectionLatency : public ::testing::TestWithParam<double> {};

TEST_P(DetectionLatency, FiresAtFirstChallengeAfterOnset) {
  // A dense PRBS schedule (~1 challenge per 3 s) keeps the undetected
  // window short for arbitrary onsets; the paper's sparse fixed schedule
  // leaves mid-run attacks invisible for minutes (long enough for the
  // jammer to cause a collision before the next challenge), which the
  // ablation_challenge_rate bench quantifies.
  ScenarioOptions o = fast_options();
  o.attack = AttackKind::kDosJammer;
  o.attack_start_s = units::Seconds{GetParam()};
  Scenario scenario = make_paper_scenario(o);
  scenario.schedule = std::make_shared<cra::PrbsChallengeSchedule>(
      0x5A5A, 1, 3, scenario.config.horizon_steps);
  const auto result = scenario.run();

  std::int64_t expected = -1;
  for (std::int64_t k = static_cast<std::int64_t>(GetParam()); k < 300; ++k) {
    if (scenario.schedule->is_challenge(k)) {
      expected = k;
      break;
    }
  }
  ASSERT_TRUE(result.detection_step.has_value());
  EXPECT_EQ(*result.detection_step, expected);
  EXPECT_EQ(result.detection_stats.false_positives, 0u);
  EXPECT_EQ(result.detection_stats.false_negatives, 0u);
}

INSTANTIATE_TEST_SUITE_P(OnsetSweep, DetectionLatency,
                         ::testing::Values(10.0, 60.0, 120.0, 160.0, 176.0,
                                           183.0, 200.0));

}  // namespace
}  // namespace safe::core
