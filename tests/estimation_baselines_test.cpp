// Tests for the Kalman filter, baseline predictors, and chi-square detector.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>
#include <vector>

#include "estimation/baselines.hpp"
#include "estimation/chi_square.hpp"
#include "estimation/kalman.hpp"

namespace safe::estimation {
namespace {

using linalg::RMatrix;
using linalg::RVector;

KalmanModel cv_model(double q = 1e-3, double r = 0.25) {
  return KalmanModel{
      .a = RMatrix{{1.0, 1.0}, {0.0, 1.0}},
      .c = RMatrix{{1.0, 0.0}},
      .q = RMatrix{{0.25 * q, 0.5 * q}, {0.5 * q, q}},
      .r = RMatrix{{r}},
  };
}

TEST(KalmanFilter, ShapeValidation) {
  KalmanModel m = cv_model();
  EXPECT_NO_THROW(KalmanFilter(m, RVector{0.0, 0.0},
                               RMatrix::scaled_identity(2, 1.0)));
  KalmanModel bad = cv_model();
  bad.c = RMatrix{{1.0, 0.0, 0.0}};
  EXPECT_THROW(KalmanFilter(bad, RVector{0.0, 0.0},
                            RMatrix::scaled_identity(2, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(KalmanFilter(cv_model(), RVector{0.0},
                            RMatrix::scaled_identity(2, 1.0)),
               std::invalid_argument);
}

TEST(KalmanFilter, TracksConstantVelocityTrack) {
  KalmanFilter f(cv_model(), RVector{0.0, 0.0},
                 RMatrix::scaled_identity(2, 100.0));
  std::mt19937 rng(5);
  std::normal_distribution<double> noise(0.0, 0.5);
  for (int k = 0; k < 200; ++k) {
    const double truth = 10.0 + 2.0 * k;
    if (k > 0) f.predict();
    f.correct(RVector{truth + noise(rng)});
  }
  EXPECT_NEAR(f.state()[0], 10.0 + 2.0 * 199, 1.0);
  EXPECT_NEAR(f.state()[1], 2.0, 0.3);
}

TEST(KalmanFilter, CovarianceContractsWithMeasurements) {
  KalmanFilter f(cv_model(), RVector{0.0, 0.0},
                 RMatrix::scaled_identity(2, 100.0));
  const double before = f.covariance()(0, 0);
  f.correct(RVector{0.0});
  EXPECT_LT(f.covariance()(0, 0), before);
}

TEST(KalmanFilter, InnovationStatisticSmallOnConsistentData) {
  KalmanFilter f(cv_model(), RVector{0.0, 1.0},
                 RMatrix::scaled_identity(2, 1.0));
  for (int k = 1; k <= 50; ++k) {
    f.predict();
    f.correct(RVector{static_cast<double>(k)});
  }
  f.predict();
  EXPECT_LT(f.innovation_statistic(RVector{51.0}), 1.0);
  EXPECT_GT(f.innovation_statistic(RVector{70.0}), 50.0);
}

TEST(KalmanFilter, CorrectRejectsWrongDimension) {
  KalmanFilter f(cv_model(), RVector{0.0, 0.0},
                 RMatrix::scaled_identity(2, 1.0));
  EXPECT_THROW(f.correct(RVector{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(f.innovation_statistic(RVector{1.0, 2.0})),
               std::invalid_argument);
}

TEST(HoldLast, RepeatsLastObservation) {
  HoldLastPredictor p;
  p.observe(3.0);
  p.observe(9.0);
  EXPECT_EQ(p.predict_next(), 9.0);
  EXPECT_EQ(p.predict_next(), 9.0);
  p.reset();
  EXPECT_EQ(p.predict_next(), 0.0);
}

TEST(LinearExtrapolator, WindowValidation) {
  EXPECT_THROW(LinearExtrapolator(1), std::invalid_argument);
}

TEST(LinearExtrapolator, ContinuesALine) {
  LinearExtrapolator p(8);
  for (int k = 0; k < 20; ++k) p.observe(4.0 + 3.0 * k);
  EXPECT_NEAR(p.predict_next(), 4.0 + 3.0 * 20, 1e-9);
  EXPECT_NEAR(p.predict_next(), 4.0 + 3.0 * 21, 1e-9);
}

TEST(LinearExtrapolator, SingleObservationHolds) {
  LinearExtrapolator p(4);
  p.observe(5.0);
  EXPECT_EQ(p.predict_next(), 5.0);
}

TEST(LinearExtrapolator, EmptyPredictsZero) {
  LinearExtrapolator p(4);
  EXPECT_EQ(p.predict_next(), 0.0);
}

TEST(LmsAr, Validation) {
  EXPECT_THROW(LmsArPredictor(0), std::invalid_argument);
  EXPECT_THROW(LmsArPredictor(2, 0.0), std::invalid_argument);
  EXPECT_THROW(LmsArPredictor(2, 3.0), std::invalid_argument);
}

TEST(LmsAr, LearnsConstantSeries) {
  LmsArPredictor p(3, 0.5);
  for (int k = 0; k < 200; ++k) p.observe(10.0);
  EXPECT_NEAR(p.predict_next(), 10.0, 0.2);
}

TEST(LmsAr, ConvergesSlowerThanRlsOnRamp) {
  // Structural expectation: after the same short training, LMS's one-step
  // error on a ramp exceeds RLS's (motivates the paper's choice of RLS).
  LmsArPredictor lms(4, 0.5);
  for (int k = 0; k < 60; ++k) lms.observe(100.0 - 0.5 * k);
  const double lms_pred = lms.predict_next();
  const double truth = 100.0 - 0.5 * 60;
  EXPECT_GT(std::abs(lms_pred - truth), 1e-4);
}

TEST(KalmanCv, Validation) {
  EXPECT_THROW(KalmanCvPredictor(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(KalmanCvPredictor(1.0, 0.0), std::invalid_argument);
}

TEST(KalmanCv, HoldoverContinuesTrend) {
  KalmanCvPredictor p;
  for (int k = 0; k < 100; ++k) p.observe(50.0 - 0.4 * k);
  double y = 0.0;
  for (int k = 0; k < 20; ++k) y = p.predict_next();
  EXPECT_NEAR(y, 50.0 - 0.4 * 119.0, 1.0);
}

TEST(KalmanCv, ResetForgets) {
  KalmanCvPredictor p;
  for (int k = 0; k < 50; ++k) p.observe(100.0);
  p.reset();
  for (int k = 0; k < 50; ++k) p.observe(1.0);
  EXPECT_NEAR(p.predict_next(), 1.0, 0.1);
}

TEST(ChiSquare, OptionValidation) {
  EXPECT_THROW(ChiSquareDetector(cv_model(), RVector{0.0, 0.0},
                                 RMatrix::scaled_identity(2, 1.0),
                                 {.threshold = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(ChiSquareDetector(cv_model(), RVector{0.0, 0.0},
                                 RMatrix::scaled_identity(2, 1.0),
                                 {.required_consecutive = 0}),
               std::invalid_argument);
}

TEST(ChiSquare, QuietOnNominalData) {
  ChiSquareDetector det(cv_model(), RVector{0.0, 1.0},
                        RMatrix::scaled_identity(2, 1.0));
  std::mt19937 rng(11);
  std::normal_distribution<double> noise(0.0, 0.3);
  int alarms = 0;
  for (int k = 1; k <= 200; ++k) {
    const auto d = det.observe(RVector{static_cast<double>(k) + noise(rng)});
    alarms += d.alarmed ? 1 : 0;
  }
  EXPECT_LT(alarms, 6);  // ~1% FP rate at the 99% threshold
}

TEST(ChiSquare, DetectsGrossJump) {
  ChiSquareDetector det(cv_model(), RVector{0.0, 1.0},
                        RMatrix::scaled_identity(2, 1.0));
  for (int k = 1; k <= 50; ++k) {
    det.observe(RVector{static_cast<double>(k)});
  }
  const auto d = det.observe(RVector{51.0 + 200.0});
  EXPECT_TRUE(d.alarmed);
  EXPECT_TRUE(d.under_attack);
}

TEST(ChiSquare, MissesStealthyOffsetRampedIn) {
  // An attacker who ramps a +6 m offset in slowly stays under the radar --
  // the structural weakness that motivates CRA over chi-square detection.
  ChiSquareDetector det(cv_model(1e-3, 0.25), RVector{0.0, 1.0},
                        RMatrix::scaled_identity(2, 1.0));
  int alarms = 0;
  for (int k = 1; k <= 300; ++k) {
    double y = static_cast<double>(k);
    if (k > 150) y += std::min(6.0, 0.05 * (k - 150));  // slow ramp to +6
    alarms += det.observe(RVector{y}).alarmed ? 1 : 0;
  }
  EXPECT_EQ(alarms, 0);
}

TEST(ChiSquare, CoastsWhileAlarmed) {
  ChiSquareDetector det(cv_model(), RVector{0.0, 1.0},
                        RMatrix::scaled_identity(2, 1.0));
  for (int k = 1; k <= 50; ++k) det.observe(RVector{static_cast<double>(k)});
  const double before = det.filter().state()[0];
  det.observe(RVector{500.0});  // outrageous measurement must not be fused
  EXPECT_NEAR(det.filter().state()[0], before + 1.0, 0.5);
}

}  // namespace
}  // namespace safe::estimation
