// Wire-protocol tests: round-trips for every frame type, golden framing
// bytes, arbitrary read-boundary splits, strict rejection of malformed
// input, and a SplitMix64-driven fuzz pass (random truncations, oversized
// length prefixes, garbage types, bit flips) that must never crash or
// over-read — the sanitizer CI jobs give that teeth.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/seed.hpp"
#include "serve/chaos.hpp"
#include "serve/wire.hpp"

namespace {

using namespace safe;
using namespace safe::serve;

MeasurementFrame sample_measurement() {
  MeasurementFrame m;
  m.step = 42;
  m.measurement.estimate.distance_m = units::Meters{99.25};
  m.measurement.estimate.range_rate_mps = units::MetersPerSecond{-0.875};
  m.measurement.beats.up_hz = units::Hertz{123456.5};
  m.measurement.beats.down_hz = units::Hertz{-7890.125};
  m.measurement.rx_power_w = 3.5e-9;
  m.measurement.peak_to_average = 17.0;
  m.measurement.coherent_echo = true;
  m.measurement.power_alarm = false;
  return m;
}

EstimateFrame sample_estimate() {
  EstimateFrame e;
  e.step = 183;
  e.safe.target_present = true;
  e.safe.distance_m = units::Meters{97.5};
  e.safe.relative_velocity_mps = units::MetersPerSecond{-0.25};
  e.safe.estimated = true;
  e.safe.under_attack = true;
  e.safe.challenge_slot = false;
  e.safe.attack_started = true;
  e.safe.attack_cleared = false;
  e.safe.degradation = core::DegradationState::kHoldover;
  e.safe.safe_stop = false;
  e.safe.measurement_rejected = true;
  e.safe.holdover_steps = 7;
  return e;
}

/// Feeds `bytes` in chunks of `chunk` and returns every decoded frame.
std::vector<Frame> decode_all(const std::vector<std::uint8_t>& bytes,
                              std::size_t chunk, FrameDecoder& decoder) {
  std::vector<Frame> frames;
  for (std::size_t offset = 0; offset < bytes.size(); offset += chunk) {
    const std::size_t n = std::min(chunk, bytes.size() - offset);
    decoder.feed(bytes.data() + offset, n);
    while (auto frame = decoder.next()) frames.push_back(std::move(*frame));
  }
  return frames;
}

TEST(ServeWire, HelloRoundTrip) {
  HelloFrame hello;
  hello.scenario_seed = 0xDEADBEEFCAFE1234ULL;
  hello.horizon_steps = 1234;
  hello.leader = core::LeaderScenario::kDecelThenAccel;
  hello.attack = core::AttackKind::kDelayInjection;
  hello.estimator = radar::BeatEstimator::kRootMusic;
  hello.hardened = true;
  hello.attack_start_s = units::Seconds{17.25};
  hello.attack_end_s = units::Seconds{200.0};
  hello.client_id = "client-7";
  hello.fault_spec = "dropout@100+5";

  FrameDecoder decoder;
  decoder.feed(encode(hello).data(), encode(hello).size());
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kHello);

  HelloFrame out;
  std::string error;
  ASSERT_TRUE(decode(*frame, out, &error)) << error;
  EXPECT_EQ(out.protocol_version, kProtocolVersion);
  EXPECT_EQ(out.scenario_seed, hello.scenario_seed);
  EXPECT_EQ(out.horizon_steps, hello.horizon_steps);
  EXPECT_EQ(out.leader, hello.leader);
  EXPECT_EQ(out.attack, hello.attack);
  EXPECT_EQ(out.estimator, hello.estimator);
  EXPECT_EQ(out.hardened, hello.hardened);
  EXPECT_EQ(out.attack_start_s.value(), hello.attack_start_s.value());
  EXPECT_EQ(out.attack_end_s.value(), hello.attack_end_s.value());
  EXPECT_EQ(out.client_id, hello.client_id);
  EXPECT_EQ(out.fault_spec, hello.fault_spec);
}

TEST(ServeWire, MeasurementRoundTripIsBitExact) {
  const MeasurementFrame m = sample_measurement();
  FrameDecoder decoder;
  const std::vector<std::uint8_t> bytes = encode(m);
  decoder.feed(bytes.data(), bytes.size());
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  MeasurementFrame out;
  ASSERT_TRUE(decode(*frame, out, nullptr));
  EXPECT_EQ(out.step, m.step);
  EXPECT_EQ(out.measurement.estimate.distance_m.value(),
            m.measurement.estimate.distance_m.value());
  EXPECT_EQ(out.measurement.estimate.range_rate_mps.value(),
            m.measurement.estimate.range_rate_mps.value());
  EXPECT_EQ(out.measurement.beats.up_hz.value(),
            m.measurement.beats.up_hz.value());
  EXPECT_EQ(out.measurement.beats.down_hz.value(),
            m.measurement.beats.down_hz.value());
  EXPECT_EQ(out.measurement.rx_power_w, m.measurement.rx_power_w);
  EXPECT_EQ(out.measurement.peak_to_average, m.measurement.peak_to_average);
  EXPECT_EQ(out.measurement.coherent_echo, m.measurement.coherent_echo);
  EXPECT_EQ(out.measurement.power_alarm, m.measurement.power_alarm);
  // Re-encoding reproduces the exact bytes — the parity contract's anchor.
  EXPECT_EQ(encode(out), bytes);
}

TEST(ServeWire, EstimateRoundTripIsBitExact) {
  const EstimateFrame e = sample_estimate();
  const std::vector<std::uint8_t> bytes = encode(e);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EstimateFrame out;
  ASSERT_TRUE(decode(*frame, out, nullptr));
  EXPECT_EQ(out.step, e.step);
  EXPECT_EQ(out.safe.distance_m.value(), e.safe.distance_m.value());
  EXPECT_EQ(out.safe.relative_velocity_mps.value(),
            e.safe.relative_velocity_mps.value());
  EXPECT_EQ(out.safe.degradation, e.safe.degradation);
  EXPECT_EQ(out.safe.holdover_steps, e.safe.holdover_steps);
  EXPECT_EQ(out.safe.under_attack, e.safe.under_attack);
  EXPECT_EQ(out.safe.measurement_rejected, e.safe.measurement_rejected);
  EXPECT_EQ(encode(out), bytes);
}

TEST(ServeWire, StatusAndErrorRoundTrip) {
  const StatusFrame status{.code = StatusCode::kSlowConsumer,
                           .session_token = 0x0123456789ABCDEFULL,
                           .message = "outbound queue overflow"};
  const ErrorFrame error{.code = ErrorCode::kSessionLimit,
                         .message = "session cap reached"};
  FrameDecoder decoder;
  const auto status_bytes = encode(status);
  const auto error_bytes = encode(error);
  decoder.feed(status_bytes.data(), status_bytes.size());
  decoder.feed(error_bytes.data(), error_bytes.size());

  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  StatusFrame status_out;
  ASSERT_TRUE(decode(*frame, status_out, nullptr));
  EXPECT_EQ(status_out.code, status.code);
  EXPECT_EQ(status_out.session_token, status.session_token);
  EXPECT_EQ(status_out.message, status.message);

  frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  ErrorFrame error_out;
  ASSERT_TRUE(decode(*frame, error_out, nullptr));
  EXPECT_EQ(error_out.code, error.code);
  EXPECT_EQ(error_out.message, error.message);
}

// Encoders clamp strings to the decoder's caps, so a locally built frame
// with an oversized string (even > 65535 bytes, which used to truncate the
// u16 length prefix while appending every byte) still decodes cleanly on
// the other side.
TEST(ServeWire, OversizedStringsAreClampedAtEncodeTime) {
  StatusFrame status{.code = StatusCode::kDraining,
                     .session_token = 7,
                     .message = std::string(70'000, 'x')};
  HelloFrame hello;
  hello.client_id = std::string(kMaxClientIdBytes + 50, 'c');
  hello.fault_spec = std::string(kMaxFaultSpecBytes + 1, 'f');
  const ErrorFrame error{.code = ErrorCode::kInternal,
                         .message = std::string(kMaxMessageBytes + 9, 'e')};

  FrameDecoder decoder;
  for (const auto& bytes : {encode(status), encode(hello), encode(error)}) {
    decoder.feed(bytes.data(), bytes.size());
  }

  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  StatusFrame status_out;
  std::string why;
  ASSERT_TRUE(decode(*frame, status_out, &why)) << why;
  EXPECT_EQ(status_out.message, std::string(kMaxMessageBytes, 'x'));

  frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  HelloFrame hello_out;
  ASSERT_TRUE(decode(*frame, hello_out, &why)) << why;
  EXPECT_EQ(hello_out.client_id, std::string(kMaxClientIdBytes, 'c'));
  EXPECT_EQ(hello_out.fault_spec, std::string(kMaxFaultSpecBytes, 'f'));

  frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  ErrorFrame error_out;
  ASSERT_TRUE(decode(*frame, error_out, &why)) << why;
  EXPECT_EQ(error_out.message, std::string(kMaxMessageBytes, 'e'));
  EXPECT_FALSE(decoder.failed());
}

TEST(ServeWire, ResumeFramesRoundTrip) {
  const ResumeFrame resume{.session_token = 0xFEEDFACE12345678ULL,
                           .last_step = 29};
  const ResumeOkFrame resume_ok{.session_token = 0xFEEDFACE12345678ULL,
                                .next_step = 30,
                                .replayed_frames = 12};
  const AckFrame ack{.last_step = 63};

  FrameDecoder decoder;
  for (const auto& bytes : {encode(resume), encode(resume_ok), encode(ack)}) {
    decoder.feed(bytes.data(), bytes.size());
  }

  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kResume);
  ResumeFrame resume_out;
  std::string why;
  ASSERT_TRUE(decode(*frame, resume_out, &why)) << why;
  EXPECT_EQ(resume_out.session_token, resume.session_token);
  EXPECT_EQ(resume_out.last_step, resume.last_step);

  frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kResumeOk);
  ResumeOkFrame resume_ok_out;
  ASSERT_TRUE(decode(*frame, resume_ok_out, &why)) << why;
  EXPECT_EQ(resume_ok_out.session_token, resume_ok.session_token);
  EXPECT_EQ(resume_ok_out.next_step, resume_ok.next_step);
  EXPECT_EQ(resume_ok_out.replayed_frames, resume_ok.replayed_frames);

  frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kAck);
  AckFrame ack_out;
  ASSERT_TRUE(decode(*frame, ack_out, &why)) << why;
  EXPECT_EQ(ack_out.last_step, ack.last_step);
  EXPECT_FALSE(decoder.failed());
}

TEST(ServeWire, ResumeFramesRejectMalformedPayloads) {
  // last_step below -1 is meaningless and must not decode.
  auto bad_resume = encode(ResumeFrame{.session_token = 1, .last_step = -2});
  FrameDecoder decoder;
  decoder.feed(bad_resume.data(), bad_resume.size());
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  ResumeFrame resume_out;
  std::string why;
  EXPECT_FALSE(decode(*frame, resume_out, &why));

  // Negative next_step must not decode either.
  auto bad_ok =
      encode(ResumeOkFrame{.session_token = 1, .next_step = -1,
                           .replayed_frames = 0});
  decoder = FrameDecoder{};
  decoder.feed(bad_ok.data(), bad_ok.size());
  frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  ResumeOkFrame ok_out;
  EXPECT_FALSE(decode(*frame, ok_out, &why));

  // Short payloads for every v2 frame type.
  ResumeFrame r;
  ResumeOkFrame ok;
  AckFrame a;
  EXPECT_FALSE(decode(Frame{FrameType::kResume, {0x01}}, r, nullptr));
  EXPECT_FALSE(decode(Frame{FrameType::kResumeOk, {0x01}}, ok, nullptr));
  EXPECT_FALSE(decode(Frame{FrameType::kAck, {0x01}}, a, nullptr));
}

TEST(ServeWire, StatusAndErrorCodeRangesTrackV2) {
  // kOverloaded (4) is the top valid STATUS code; 5 must be rejected.
  auto bytes = encode(StatusFrame{.code = StatusCode::kOverloaded,
                                  .session_token = 3,
                                  .message = "busy"});
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  StatusFrame status_out;
  ASSERT_TRUE(decode(*frame, status_out, nullptr));
  EXPECT_EQ(status_out.code, StatusCode::kOverloaded);

  bytes[kHeaderBytes] = 5;  // payload starts with the code byte
  decoder = FrameDecoder{};
  decoder.feed(bytes.data(), bytes.size());
  frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_FALSE(decode(*frame, status_out, nullptr));

  // kUnknownDetector (8) is the top valid ERROR code; 9 must be rejected.
  auto error_bytes = encode(ErrorFrame{.code = ErrorCode::kUnknownDetector,
                                       .message = "no such backend"});
  decoder = FrameDecoder{};
  decoder.feed(error_bytes.data(), error_bytes.size());
  frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  ErrorFrame error_out;
  ASSERT_TRUE(decode(*frame, error_out, nullptr));
  EXPECT_EQ(error_out.code, ErrorCode::kUnknownDetector);

  error_bytes[kHeaderBytes] = 9;
  decoder = FrameDecoder{};
  decoder.feed(error_bytes.data(), error_bytes.size());
  frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_FALSE(decode(*frame, error_out, nullptr));
}

TEST(ServeWire, GoldenChallengeResultBytes) {
  // Framing is frozen: u32 length + u8 type header, little-endian payload.
  const ChallengeResultFrame c{.step = 5, .silent = true,
                               .under_attack = false};
  const std::vector<std::uint8_t> expected = {
      0x09, 0x00, 0x00, 0x00,  // payload length = 9
      0x03,                    // FrameType::kChallengeResult
      0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // step = 5 (i64 LE)
      0x01,                    // flags: bit0 silent
  };
  EXPECT_EQ(encode(c), expected);
}

TEST(ServeWire, ByteAtATimeSplitDelivery) {
  std::vector<std::uint8_t> bytes;
  const auto m = encode(sample_measurement());
  const auto e = encode(sample_estimate());
  const auto c = encode(ChallengeResultFrame{.step = 9, .silent = false,
                                             .under_attack = true});
  bytes.insert(bytes.end(), m.begin(), m.end());
  bytes.insert(bytes.end(), e.begin(), e.end());
  bytes.insert(bytes.end(), c.begin(), c.end());

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}, std::size_t{7}}) {
    FrameDecoder decoder;
    const std::vector<Frame> frames = decode_all(bytes, chunk, decoder);
    ASSERT_EQ(frames.size(), 3u) << "chunk=" << chunk;
    EXPECT_EQ(frames[0].type, FrameType::kMeasurement);
    EXPECT_EQ(frames[1].type, FrameType::kEstimate);
    EXPECT_EQ(frames[2].type, FrameType::kChallengeResult);
    EXPECT_FALSE(decoder.failed());
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(ServeWire, OversizedLengthPrefixFailsBeforeBuffering) {
  // 4 GiB-ish length prefix: the decoder must reject it from the header
  // alone and never wait for (or allocate) the advertised payload.
  const std::vector<std::uint8_t> header = {0xFF, 0xFF, 0xFF, 0xFF, 0x02};
  FrameDecoder decoder;
  decoder.feed(header.data(), header.size());
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.failed());
  EXPECT_NE(decoder.error().find("payload"), std::string::npos);
}

TEST(ServeWire, UnknownFrameTypeFails) {
  const std::vector<std::uint8_t> header = {0x01, 0x00, 0x00, 0x00, 0x77,
                                            0x00};
  FrameDecoder decoder;
  decoder.feed(header.data(), header.size());
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.failed());
  // Sticky: feeding valid bytes afterwards cannot revive it.
  const auto good = encode(sample_measurement());
  decoder.feed(good.data(), good.size());
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.failed());
}

TEST(ServeWire, TruncatedFrameIsNotAnError) {
  const auto bytes = encode(sample_measurement());
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size() - 1);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.failed());  // waiting, not broken
  decoder.feed(bytes.data() + bytes.size() - 1, 1);
  EXPECT_TRUE(decoder.next().has_value());
}

TEST(ServeWire, TrailingPayloadBytesRejected) {
  auto bytes = encode(ChallengeResultFrame{});
  bytes.push_back(0x00);  // one extra payload byte
  bytes[0] = static_cast<std::uint8_t>(bytes[0] + 1);  // fix the length
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  ChallengeResultFrame out;
  std::string error;
  EXPECT_FALSE(decode(*frame, out, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(ServeWire, ReservedFlagBitsRejected) {
  auto bytes = encode(ChallengeResultFrame{.step = 1, .silent = true,
                                           .under_attack = true});
  bytes.back() = 0xFF;  // set reserved bits in the flags byte
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  ChallengeResultFrame out;
  EXPECT_FALSE(decode(*frame, out, nullptr));
}

TEST(ServeWire, ShortPayloadRejectedForEveryType) {
  const Frame short_frame{.type = FrameType::kHello, .payload = {0x01}};
  HelloFrame hello;
  MeasurementFrame m;
  EstimateFrame e;
  ChallengeResultFrame c;
  StatusFrame s;
  ErrorFrame err;
  EXPECT_FALSE(decode(short_frame, hello, nullptr));
  EXPECT_FALSE(decode(Frame{FrameType::kMeasurement, {0x01}}, m, nullptr));
  EXPECT_FALSE(decode(Frame{FrameType::kEstimate, {0x01}}, e, nullptr));
  EXPECT_FALSE(decode(Frame{FrameType::kChallengeResult, {0x01}}, c, nullptr));
  EXPECT_FALSE(decode(Frame{FrameType::kStatus, {0x01}}, s, nullptr));
  EXPECT_FALSE(decode(Frame{FrameType::kError, {0x01}}, err, nullptr));
}

// Fuzz: mutate valid streams with truncations, bit flips, splices, and
// garbage, feed them in random-sized chunks, and decode whatever comes out.
// The decoder may fail (it usually should) but must never crash, hang, or
// read out of bounds; typed decode of surviving frames must be total.
TEST(ServeWire, FuzzedStreamsNeverCrash) {
  std::vector<std::uint8_t> corpus;
  {
    HelloFrame hello;
    hello.client_id = "fuzz";
    const auto h = encode(hello);
    const auto m = encode(sample_measurement());
    const auto e = encode(sample_estimate());
    const auto s = encode(StatusFrame{.code = StatusCode::kDraining,
                                      .session_token = 1,
                                      .message = "bye"});
    corpus.insert(corpus.end(), h.begin(), h.end());
    corpus.insert(corpus.end(), m.begin(), m.end());
    corpus.insert(corpus.end(), e.begin(), e.end());
    corpus.insert(corpus.end(), s.begin(), s.end());
  }

  runtime::SplitMix64 rng(0xF022DEC0DEULL);
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::vector<std::uint8_t> bytes = corpus;
    const std::uint64_t mutations = 1 + rng() % 8;
    for (std::uint64_t k = 0; k < mutations; ++k) {
      switch (rng() % 4) {
        case 0:  // truncate
          bytes.resize(rng() % (bytes.size() + 1));
          break;
        case 1:  // flip a byte
          if (!bytes.empty()) {
            bytes[rng() % bytes.size()] =
                static_cast<std::uint8_t>(rng() & 0xFF);
          }
          break;
        case 2: {  // splice garbage in
          const std::size_t count = rng() % 16;
          const std::size_t at = bytes.empty() ? 0 : rng() % bytes.size();
          std::vector<std::uint8_t> garbage(count);
          for (auto& b : garbage) b = static_cast<std::uint8_t>(rng() & 0xFF);
          bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                       garbage.begin(), garbage.end());
          break;
        }
        default:  // duplicate a slice
          if (bytes.size() > 4) {
            const std::size_t at = rng() % (bytes.size() - 4);
            bytes.insert(bytes.end(), bytes.begin() +
                             static_cast<std::ptrdiff_t>(at),
                         bytes.begin() +
                             static_cast<std::ptrdiff_t>(at + 4));
          }
          break;
      }
    }

    FrameDecoder decoder;
    std::size_t offset = 0;
    while (offset < bytes.size() && !decoder.failed()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng() % 37, bytes.size() - offset);
      decoder.feed(bytes.data() + offset, chunk);
      offset += chunk;
      while (auto frame = decoder.next()) {
        // Typed parsing of whatever survived framing must be total too.
        HelloFrame hello;
        MeasurementFrame m;
        EstimateFrame e;
        ChallengeResultFrame c;
        StatusFrame s;
        ErrorFrame err;
        ResumeFrame resume;
        ResumeOkFrame resume_ok;
        AckFrame ack;
        switch (frame->type) {
          case FrameType::kHello: decode(*frame, hello, nullptr); break;
          case FrameType::kMeasurement: decode(*frame, m, nullptr); break;
          case FrameType::kEstimate: decode(*frame, e, nullptr); break;
          case FrameType::kChallengeResult: decode(*frame, c, nullptr); break;
          case FrameType::kStatus: decode(*frame, s, nullptr); break;
          case FrameType::kError: decode(*frame, err, nullptr); break;
          case FrameType::kResume: decode(*frame, resume, nullptr); break;
          case FrameType::kResumeOk: decode(*frame, resume_ok, nullptr); break;
          case FrameType::kAck: decode(*frame, ack, nullptr); break;
        }
      }
    }
    // The decoder never hoards more than one frame's worth of bytes.
    EXPECT_LE(decoder.buffered_bytes(), kHeaderBytes + kMaxPayloadBytes);
  }
}

// Chaos-corpus pass: feed a valid frame stream through the same ChaosPlan
// the proxy uses. Pure re-splitting must be invisible to the decoder (every
// frame decodes, bit-exact); with corruption enabled the decoder may fail
// but must never crash, over-read, or hoard bytes. Seeds are logged so a
// failure reproduces directly.
TEST(ServeWire, ChaosResplitCorpusDecodesExactly) {
  std::vector<std::uint8_t> corpus;
  std::vector<FrameType> expected_types;
  {
    HelloFrame hello;
    hello.client_id = "chaos";
    for (const auto& bytes :
         {encode(hello), encode(sample_measurement()),
          encode(ResumeFrame{.session_token = 9, .last_step = 4}),
          encode(sample_estimate()),
          encode(ResumeOkFrame{.session_token = 9, .next_step = 5,
                               .replayed_frames = 2}),
          encode(AckFrame{.last_step = 5}),
          encode(StatusFrame{.code = StatusCode::kOverloaded,
                             .session_token = 9,
                             .message = "shed"})}) {
      corpus.insert(corpus.end(), bytes.begin(), bytes.end());
    }
    expected_types = {FrameType::kHello,    FrameType::kMeasurement,
                      FrameType::kResume,   FrameType::kEstimate,
                      FrameType::kResumeOk, FrameType::kAck,
                      FrameType::kStatus};
  }

  const ChaosSpec spec = parse_chaos_spec("split:min=1,max=7");
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ChaosPlan plan(spec, seed, 0);
    FrameDecoder decoder;
    std::vector<Frame> frames;
    std::size_t offset = 0;
    while (offset < corpus.size()) {
      const std::size_t chunk = plan.next_chunk_len(corpus.size() - offset);
      decoder.feed(corpus.data() + offset, chunk);
      offset += chunk;
      while (auto frame = decoder.next()) frames.push_back(std::move(*frame));
    }
    ASSERT_FALSE(decoder.failed()) << decoder.error();
    ASSERT_EQ(frames.size(), expected_types.size());
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(frames[i].type, expected_types[i]) << "frame " << i;
    }
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(ServeWire, ChaosCorruptedCorpusNeverCrashes) {
  std::vector<std::uint8_t> corpus;
  {
    for (const auto& bytes :
         {encode(sample_measurement()), encode(sample_estimate()),
          encode(ResumeOkFrame{.session_token = 1, .next_step = 10,
                               .replayed_frames = 3}),
          encode(StatusFrame{.code = StatusCode::kHelloOk,
                             .session_token = 1,
                             .message = "ok"})}) {
      corpus.insert(corpus.end(), bytes.begin(), bytes.end());
    }
  }

  const ChaosSpec spec = parse_chaos_spec("split:min=1,max=9;corrupt:prob=0.02");
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ChaosPlan plan(spec, seed, 1);
    std::vector<std::uint8_t> bytes = corpus;
    FrameDecoder decoder;
    std::size_t offset = 0;
    while (offset < bytes.size() && !decoder.failed()) {
      const std::size_t chunk = plan.next_chunk_len(bytes.size() - offset);
      plan.corrupt(bytes.data() + offset, chunk);
      decoder.feed(bytes.data() + offset, chunk);
      offset += chunk;
      while (auto frame = decoder.next()) {
        MeasurementFrame m;
        EstimateFrame e;
        ResumeOkFrame ok;
        StatusFrame s;
        switch (frame->type) {
          case FrameType::kMeasurement: decode(*frame, m, nullptr); break;
          case FrameType::kEstimate: decode(*frame, e, nullptr); break;
          case FrameType::kResumeOk: decode(*frame, ok, nullptr); break;
          case FrameType::kStatus: decode(*frame, s, nullptr); break;
          default: break;  // corrupted type byte may alias any frame
        }
      }
    }
    EXPECT_LE(decoder.buffered_bytes(), kHeaderBytes + kMaxPayloadBytes);
  }
}

}  // namespace
