// Tests for CA-CFAR detection and Levinson-Durbin AR fitting.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "dsp/cfar.hpp"
#include "dsp/levinson.hpp"

namespace safe::dsp {
namespace {

TEST(Cfar, OptionValidation) {
  RealSignal spectrum(64, 1.0);
  EXPECT_THROW(cfar_detect(spectrum, {.training_cells = 0}),
               std::invalid_argument);
  EXPECT_THROW(cfar_detect(spectrum, {.threshold_factor = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(cfar_detect(RealSignal(4), CfarOptions{}),
               std::invalid_argument);
}

TEST(Cfar, FlatNoiseYieldsNoDetections) {
  std::mt19937 rng(1);
  std::exponential_distribution<double> dist(1.0);  // Rayleigh power
  RealSignal spectrum(256);
  for (auto& s : spectrum) s = dist(rng);
  const auto detections = cfar_detect(spectrum);
  EXPECT_TRUE(detections.empty());
}

TEST(Cfar, SinglePeakDetectedAtCorrectBin) {
  std::mt19937 rng(2);
  std::exponential_distribution<double> dist(1.0);
  RealSignal spectrum(256);
  for (auto& s : spectrum) s = dist(rng);
  spectrum[77] = 200.0;
  const auto detections = cfar_detect(spectrum);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].bin, 77u);
  EXPECT_GT(detections[0].power, 100.0);
}

TEST(Cfar, AdaptsToRaisedNoiseFloor) {
  // The same absolute peak power is NOT a detection when the local floor is
  // high — the constant-false-alarm property a fixed threshold lacks.
  RealSignal quiet(256, 1.0);
  quiet[50] = 30.0;
  EXPECT_EQ(cfar_detect(quiet).size(), 1u);

  RealSignal jammed(256, 10.0);  // floor x10 (partial-band jam)
  jammed[50] = 30.0;
  EXPECT_TRUE(cfar_detect(jammed).empty());
}

TEST(Cfar, TwoSeparatedPeaksBothFound) {
  RealSignal spectrum(256, 1.0);
  spectrum[40] = 100.0;
  spectrum[200] = 80.0;
  const auto detections = cfar_detect(spectrum);
  ASSERT_EQ(detections.size(), 2u);
  EXPECT_EQ(detections[0].bin, 40u);
  EXPECT_EQ(detections[1].bin, 200u);
}

TEST(Cfar, LocalMaximumSuppressionKeepsOnePerPeak) {
  RealSignal spectrum(256, 1.0);
  spectrum[99] = 60.0;
  spectrum[100] = 100.0;  // the true apex
  spectrum[101] = 55.0;
  const auto detections = cfar_detect(spectrum);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].bin, 100u);
}

TEST(Cfar, WrapsAroundSpectrumEdges) {
  RealSignal spectrum(128, 1.0);
  spectrum[0] = 100.0;
  const auto detections = cfar_detect(spectrum);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].bin, 0u);
}

TEST(Autocorrelation, Validation) {
  EXPECT_THROW(autocorrelation({}, 0), std::invalid_argument);
  EXPECT_THROW(autocorrelation({1.0, 2.0}, 2), std::invalid_argument);
}

TEST(Autocorrelation, WhiteSequenceHasSmallLags) {
  std::mt19937 rng(3);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(4096);
  for (auto& xi : x) xi = dist(rng);
  const auto r = autocorrelation(x, 4);
  EXPECT_NEAR(r[0], 1.0, 0.1);
  for (std::size_t lag = 1; lag <= 4; ++lag) {
    EXPECT_LT(std::abs(r[lag]), 0.05) << "lag " << lag;
  }
}

TEST(LevinsonDurbin, Validation) {
  EXPECT_THROW(levinson_durbin({1.0}, 1), std::invalid_argument);
  EXPECT_THROW(levinson_durbin({1.0, 0.5}, 0), std::invalid_argument);
}

TEST(LevinsonDurbin, RecoversAr1Coefficient) {
  // AR(1) x[n] = a x[n-1] + e has r[k] = a^k r[0].
  const double a = 0.7;
  std::vector<double> r{1.0, a, a * a, a * a * a};
  const auto fit = levinson_durbin(r, 1);
  ASSERT_EQ(fit.coefficients.size(), 1u);
  EXPECT_NEAR(fit.coefficients[0], a, 1e-12);
  EXPECT_NEAR(fit.error_power, 1.0 - a * a, 1e-12);
}

TEST(LevinsonDurbin, RecoversAr2FromSimulatedData) {
  const double a1 = 1.2, a2 = -0.36;
  std::mt19937 rng(5);
  std::normal_distribution<double> noise(0.0, 0.1);
  std::vector<double> x(8192, 0.0);
  for (std::size_t n = 2; n < x.size(); ++n) {
    x[n] = a1 * x[n - 1] + a2 * x[n - 2] + noise(rng);
  }
  const auto fit = levinson_durbin(autocorrelation(x, 2), 2);
  EXPECT_NEAR(fit.coefficients[0], a1, 0.05);
  EXPECT_NEAR(fit.coefficients[1], a2, 0.05);
}

TEST(LevinsonDurbin, ReflectionCoefficientsAreStable) {
  std::mt19937 rng(7);
  std::normal_distribution<double> noise(0.0, 1.0);
  std::vector<double> x(2048);
  for (auto& xi : x) xi = noise(rng);
  const auto fit = levinson_durbin(autocorrelation(x, 6), 6);
  for (const double k : fit.reflection) {
    EXPECT_LT(std::abs(k), 1.0);
  }
}

TEST(LevinsonDurbin, ZeroSeriesGivesZeroModel) {
  const auto fit = levinson_durbin({0.0, 0.0, 0.0}, 2);
  EXPECT_EQ(fit.error_power, 0.0);
  for (const double c : fit.coefficients) EXPECT_EQ(c, 0.0);
}

TEST(LevinsonPredictor, Validation) {
  EXPECT_THROW(LevinsonPredictor(0, 64), std::invalid_argument);
  EXPECT_THROW(LevinsonPredictor(4, 8), std::invalid_argument);
}

TEST(LevinsonPredictor, HoldsConstantSeries) {
  LevinsonPredictor p;
  for (int k = 0; k < 50; ++k) p.observe(13.0);
  EXPECT_NEAR(p.predict_next(), 13.0, 0.01);
}

TEST(LevinsonPredictor, ExtrapolatesRamp) {
  LevinsonPredictor p;
  for (int k = 0; k < 80; ++k) p.observe(100.0 - 0.5 * k);
  double y = 0.0;
  for (int k = 0; k < 20; ++k) y = p.predict_next();
  EXPECT_NEAR(y, 100.0 - 0.5 * 99.0, 1.0);
}

TEST(LevinsonPredictor, EmptyPredictsZero) {
  LevinsonPredictor p;
  EXPECT_EQ(p.predict_next(), 0.0);
}

TEST(LevinsonPredictor, CloneIsIndependent) {
  LevinsonPredictor p;
  for (int k = 0; k < 40; ++k) p.observe(2.0 * k);
  auto clone = p.clone();
  const double a = clone->predict_next();
  const double b = p.predict_next();
  EXPECT_EQ(a, b);
  clone->observe(-100.0);  // divergent history
  EXPECT_NE(clone->predict_next(), p.predict_next());
}

TEST(LevinsonPredictor, ResetForgets) {
  LevinsonPredictor p;
  for (int k = 0; k < 40; ++k) p.observe(5.0);
  p.reset();
  EXPECT_EQ(p.predict_next(), 0.0);
}

}  // namespace
}  // namespace safe::dsp
