// Platoon simulation: the n=2 degeneracy contract (bit-identical to the
// pair case study), attack targeting, multi-target scenes, cut-in events,
// the string-wide collision freeze, and the propagation-metric reduction.
//
// All closed-loop tests use the periodogram estimator for speed; the
// degeneracy contract holds for either estimator because the platoon loop
// replicates the pair loop's RNG draw order exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "platoon/metrics.hpp"
#include "platoon/platoon.hpp"

namespace safe::platoon {
namespace {

core::ScenarioOptions fast_options() {
  core::ScenarioOptions o;
  o.estimator = radar::BeatEstimator::kPeriodogram;
  return o;
}

/// Column pairs that must match exactly between the pair trace and follower
/// 1 of a 2-vehicle platoon. (`attack1` records ground truth while the
/// pair's `under_attack` records the detector's verdict, so it is compared
/// through the detection stats instead.)
const std::pair<const char*, const char*> kPairedColumns[] = {
    {"time_s", "time_s"},
    {"leader_v_mps", "leader_v_mps"},
    {"true_gap_m", "true_gap1_m"},
    {"safe_gap_m", "safe_gap1_m"},
    {"follower_v_mps", "v1_mps"},
    {"follower_a_mps2", "a1_mps2"},
    {"degradation", "degradation1"},
};

void expect_degenerates_to_pair(const core::ScenarioOptions& options) {
  const core::CarFollowingResult pair =
      core::make_paper_scenario(options).run();

  core::ScenarioOptions platoon_options = options;
  platoon_options.platoon_spec = "n=2";
  const PlatoonResult platoon =
      make_paper_platoon(platoon_options).run();

  ASSERT_EQ(platoon.trace.num_rows(), pair.trace.num_rows());
  for (const auto& [pair_col, platoon_col] : kPairedColumns) {
    const auto& a = pair.trace.column(pair_col);
    const auto& b = platoon.trace.column(platoon_col);
    for (std::size_t k = 0; k < a.size(); ++k) {
      // Bit-identical, not approximately equal: the platoon must replay the
      // pair scene's exact RNG and arithmetic.
      ASSERT_EQ(a[k], b[k]) << pair_col << " diverges at k=" << k;
    }
  }

  EXPECT_EQ(platoon.collided, pair.collided);
  EXPECT_EQ(platoon.collision_step, pair.collision_step);
  ASSERT_EQ(platoon.followers.size(), 1u);
  const VehicleOutcome& f = platoon.followers.front();
  EXPECT_EQ(f.min_gap_m, pair.min_gap_m);
  EXPECT_EQ(f.detection_step, pair.detection_step);
  EXPECT_EQ(f.detection_stats.true_positives,
            pair.detection_stats.true_positives);
  EXPECT_EQ(f.detection_stats.false_positives,
            pair.detection_stats.false_positives);
  EXPECT_EQ(f.detection_stats.true_negatives,
            pair.detection_stats.true_negatives);
  EXPECT_EQ(f.detection_stats.false_negatives,
            pair.detection_stats.false_negatives);
  EXPECT_EQ(f.safe_stop_steps, pair.safe_stop_steps);
  EXPECT_EQ(f.nonfinite_controller_inputs, pair.nonfinite_controller_inputs);
}

TEST(Platoon, TwoVehicleCleanRunDegeneratesToPairScene) {
  core::ScenarioOptions o = fast_options();
  o.attack = core::AttackKind::kNone;
  expect_degenerates_to_pair(o);
}

TEST(Platoon, TwoVehicleDelayAttackDegeneratesToPairScene) {
  core::ScenarioOptions o = fast_options();
  o.attack = core::AttackKind::kDelayInjection;
  o.attack_start_s = units::Seconds{180.0};
  expect_degenerates_to_pair(o);
}

TEST(Platoon, TwoVehicleNoDefenseDegeneratesToPairScene) {
  core::ScenarioOptions o = fast_options();
  o.attack = core::AttackKind::kDelayInjection;
  o.attack_start_s = units::Seconds{180.0};
  o.defense_enabled = false;
  expect_degenerates_to_pair(o);
}

TEST(Platoon, AttackTargetsOnlyTheSpecifiedFollower) {
  core::ScenarioOptions o = fast_options();
  o.attack = core::AttackKind::kDelayInjection;
  o.attack_start_s = units::Seconds{180.0};
  o.platoon_spec = "n=4,attacked=2";
  const PlatoonResult result = make_paper_platoon(o).run();

  ASSERT_EQ(result.followers.size(), 3u);
  // The targeted follower's CRA sees the injected echoes and fires...
  EXPECT_TRUE(result.followers[1].detection_step.has_value());
  EXPECT_GT(result.followers[1].detection_stats.true_positives, 0u);
  // ...while the untargeted streams stay clean: no false alarms anywhere.
  EXPECT_FALSE(result.followers[0].detection_step.has_value());
  EXPECT_FALSE(result.followers[2].detection_step.has_value());
  for (const VehicleOutcome& v : result.followers) {
    EXPECT_EQ(v.detection_stats.false_positives, 0u) << v.index;
  }
}

TEST(Platoon, CleanMultiTargetSceneRaisesNoFalseAlarms) {
  // Deep string, every follower past the first seeing its second-ahead
  // echo: root-MUSIC must keep locking onto the direct predecessor.
  core::ScenarioOptions o = fast_options();
  o.attack = core::AttackKind::kNone;
  o.platoon_spec = "n=8";
  const PlatoonResult result = make_paper_platoon(o).run();

  EXPECT_FALSE(result.collided);
  EXPECT_EQ(result.metrics.detection_totals.false_positives, 0u);
  EXPECT_EQ(result.metrics.shock_depth, 0u);
  for (const VehicleOutcome& v : result.followers) {
    EXPECT_GT(v.min_gap_m, units::Meters{4.5}) << v.index;
  }
}

TEST(Platoon, MultiTargetToggleLeavesFollowerOneUntouched) {
  core::ScenarioOptions o = fast_options();
  o.platoon_spec = "n=4,multi_target=on";
  const PlatoonResult on = make_paper_platoon(o).run();
  o.platoon_spec = "n=4,multi_target=off";
  const PlatoonResult off = make_paper_platoon(o).run();

  // Follower 1 has nothing two-ahead, so its stream is identical either
  // way; deeper followers see a different echo scene.
  const auto& gap_on = on.trace.column("safe_gap1_m");
  const auto& gap_off = off.trace.column("safe_gap1_m");
  for (std::size_t k = 0; k < gap_on.size(); ++k) {
    ASSERT_EQ(gap_on[k], gap_off[k]) << k;
  }
}

TEST(Platoon, CutInGhostPerturbsTheTargetFollower) {
  core::ScenarioOptions o = fast_options();
  o.attack = core::AttackKind::kNone;
  o.platoon_spec = "n=4";
  const PlatoonResult clean = make_paper_platoon(o).run();
  o.platoon_spec = "n=4,cutin_into=2,cutin_start=60,cutin_len=20";
  const PlatoonResult cutin = make_paper_platoon(o).run();

  // The ghost echo sits at half the true gap, so follower 2 brakes for a
  // phantom: its trajectory must diverge from the clean run's.
  const auto& v_clean = clean.trace.column("v2_mps");
  const auto& v_cutin = cutin.trace.column("v2_mps");
  bool diverged = false;
  for (std::size_t k = 0; k < v_clean.size() && !diverged; ++k) {
    diverged = v_clean[k] != v_cutin[k];
  }
  EXPECT_TRUE(diverged);
  // Braking for a phantom opens the real gap; it must never close it.
  EXPECT_FALSE(cutin.collided);
}

TEST(Platoon, CollisionFreezesTheWholeStringButKeepsRecording) {
  core::ScenarioOptions o = fast_options();
  o.attack = core::AttackKind::kDelayInjection;
  o.attack_start_s = units::Seconds{180.0};
  o.defense_enabled = false;
  o.platoon_spec = "n=4,attacked=1";
  const PlatoonResult result = make_paper_platoon(o).run();

  ASSERT_TRUE(result.collided);
  ASSERT_TRUE(result.collision_step.has_value());
  EXPECT_EQ(result.collision_index, 1u);
  // Rows keep coming after the freeze so every trace has the full horizon.
  EXPECT_EQ(result.trace.num_rows(),
            static_cast<std::size_t>(o.horizon_steps));
  // Frozen vehicles stop moving: velocities hold after the collision step.
  const auto& v3 = result.trace.column("v3_mps");
  const auto k_collision = static_cast<std::size_t>(*result.collision_step);
  for (std::size_t k = k_collision + 1; k < v3.size(); ++k) {
    ASSERT_EQ(v3[k], v3[k_collision]) << k;
  }
}

TEST(Platoon, RejectsInvalidSpecThroughTheFactory) {
  core::ScenarioOptions o = fast_options();
  o.platoon_spec = "n=4,attacked=9";
  EXPECT_THROW((void)make_paper_platoon(o), std::invalid_argument);
}

TEST(PlatoonMetrics, ShockDepthCountsFromTheAttackedVehicle) {
  std::vector<VehicleOutcome> followers(5);
  for (std::size_t i = 0; i < followers.size(); ++i) {
    followers[i].index = i + 1;
    followers[i].min_gap_m = units::Meters{10.0};
  }
  followers[1].min_gap_m = units::Meters{1.0};  // attacked (index 2)
  followers[3].min_gap_m = units::Meters{-0.5};  // two behind it

  const PropagationMetrics m =
      compute_propagation_metrics(followers, 2, units::Meters{2.5});
  EXPECT_EQ(m.shock_depth, 3u);  // follower 4 = attacked + 2 -> depth 3
  EXPECT_EQ(m.min_gap_m, units::Meters{-0.5});
}

TEST(PlatoonMetrics, ShockAheadOfTheAttackedVehicleDoesNotCount) {
  std::vector<VehicleOutcome> followers(3);
  for (std::size_t i = 0; i < followers.size(); ++i) {
    followers[i].index = i + 1;
    followers[i].min_gap_m = units::Meters{10.0};
  }
  followers[0].min_gap_m = units::Meters{0.1};  // ahead of attacked
  const PropagationMetrics m =
      compute_propagation_metrics(followers, 2, units::Meters{2.5});
  EXPECT_EQ(m.shock_depth, 0u);
}

TEST(PlatoonMetrics, AmplificationGuardsDegenerateReference) {
  std::vector<VehicleOutcome> followers(3);
  for (std::size_t i = 0; i < followers.size(); ++i) {
    followers[i].index = i + 1;
    followers[i].min_gap_m = units::Meters{10.0};
    followers[i].peak_gap_deviation_m = units::Meters{4.0};
  }
  followers[0].peak_gap_deviation_m = units::Meters{0.0};  // attacked, clean
  const PropagationMetrics degenerate =
      compute_propagation_metrics(followers, 1, units::Meters{2.5});
  EXPECT_DOUBLE_EQ(degenerate.linf_amplification, 0.0);

  followers[0].peak_gap_deviation_m = units::Meters{2.0};
  const PropagationMetrics m =
      compute_propagation_metrics(followers, 1, units::Meters{2.5});
  EXPECT_DOUBLE_EQ(m.linf_amplification, 2.0);
}

TEST(PlatoonMetrics, CascadeAndDetectionTallies) {
  std::vector<VehicleOutcome> followers(3);
  for (std::size_t i = 0; i < followers.size(); ++i) {
    followers[i].index = i + 1;
    followers[i].min_gap_m = units::Meters{10.0};
  }
  followers[0].detection_step = 42;
  followers[0].detection_stats.true_positives = 7;
  followers[1].safe_stop_steps = 9;
  followers[2].detection_stats.false_positives = 1;
  followers[2].nonfinite_controller_inputs = 2;
  followers[2].degradation_max = 3.0;

  const PropagationMetrics m =
      compute_propagation_metrics(followers, 1, units::Meters{2.5});
  EXPECT_EQ(m.detected_vehicles, 1u);
  EXPECT_EQ(m.safe_stop_vehicles, 1u);
  EXPECT_EQ(m.safe_stop_steps_total, 9u);
  EXPECT_EQ(m.detection_totals.true_positives, 7u);
  EXPECT_EQ(m.detection_totals.false_positives, 1u);
  EXPECT_EQ(m.nonfinite_controller_inputs_total, 2u);
  EXPECT_DOUBLE_EQ(m.degradation_max, 3.0);
}

}  // namespace
}  // namespace safe::platoon
