// Tests for the multi-target range tracker.
#include <gtest/gtest.h>

#include "radar/tracker.hpp"

namespace safe::radar {
namespace {

RangeRate det(double d, double v = -1.0) {
  return RangeRate{.distance_m = units::Meters{d},
                   .range_rate_mps = units::MetersPerSecond{v}};
}

TEST(Tracker, OptionValidation) {
  TrackerOptions o;
  o.gate_m = units::Meters{0.0};
  EXPECT_THROW(RangeTracker{o}, std::invalid_argument);
  o = TrackerOptions{};
  o.alpha = 1.5;
  EXPECT_THROW(RangeTracker{o}, std::invalid_argument);
  o = TrackerOptions{};
  o.confirm_hits = 0;
  EXPECT_THROW(RangeTracker{o}, std::invalid_argument);
}

TEST(Tracker, SingleTargetConfirmsAfterHits) {
  RangeTracker tracker;
  tracker.update({det(100.0)});
  EXPECT_EQ(tracker.tracks()[0].state, TrackState::kTentative);
  tracker.update({det(99.0)});
  const auto& tracks = tracker.update({det(98.0)});
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].state, TrackState::kConfirmed);
  EXPECT_NEAR(tracks[0].range_m.value(), 98.0, 1.0);
}

TEST(Tracker, NoPrimaryWhileTentative) {
  RangeTracker tracker;
  tracker.update({det(50.0)});
  EXPECT_FALSE(tracker.primary_track().has_value());
}

TEST(Tracker, PrimaryIsNearestConfirmed) {
  RangeTracker tracker;
  for (int k = 0; k < 4; ++k) {
    tracker.update({det(100.0 - k), det(40.0 - k)});
  }
  const auto primary = tracker.primary_track();
  ASSERT_TRUE(primary.has_value());
  EXPECT_NEAR(primary->range_m.value(), 37.0, 1.5);
}

TEST(Tracker, CoastsThroughDropout) {
  RangeTracker tracker;
  for (int k = 0; k < 4; ++k) tracker.update({det(100.0 - 2.0 * k, -2.0)});
  // Challenge slot: no detections. Track coasts on its rate estimate.
  const auto& tracks = tracker.update({});
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].state, TrackState::kCoasting);
  EXPECT_NEAR(tracks[0].range_m.value(), 92.0, 1.5);
  // Re-acquires on the next detection.
  const auto& after = tracker.update({det(90.0, -2.0)});
  EXPECT_EQ(after[0].state, TrackState::kConfirmed);
}

TEST(Tracker, DropsAfterConsecutiveMisses) {
  TrackerOptions o;
  o.drop_misses = 3;
  RangeTracker tracker(o);
  for (int k = 0; k < 4; ++k) tracker.update({det(60.0)});
  for (int k = 0; k < 3; ++k) tracker.update({});
  EXPECT_TRUE(tracker.tracks().empty());
}

TEST(Tracker, TentativeGhostDiesImmediately) {
  RangeTracker tracker;
  tracker.update({det(80.0)});   // tentative
  tracker.update({});            // one miss kills a tentative track
  EXPECT_TRUE(tracker.tracks().empty());
}

TEST(Tracker, TwoTargetsKeepDistinctIds) {
  RangeTracker tracker;
  for (int k = 0; k < 5; ++k) {
    tracker.update({det(100.0 - k, -1.0), det(50.0 - 2.0 * k, -2.0)});
  }
  const auto& tracks = tracker.tracks();
  ASSERT_EQ(tracks.size(), 2u);
  EXPECT_NE(tracks[0].id, tracks[1].id);
  EXPECT_EQ(tracks[0].state, TrackState::kConfirmed);
  EXPECT_EQ(tracks[1].state, TrackState::kConfirmed);
}

TEST(Tracker, SpoofedJumpSpawnsNewTrackInsteadOfDraggingOld) {
  RangeTracker tracker;
  for (int k = 0; k < 4; ++k) tracker.update({det(40.0 - 0.3 * k, -0.3)});
  const auto before = tracker.primary_track();
  ASSERT_TRUE(before.has_value());
  // Sudden +6 m jump (outside the 5 m gate): association fails, old track
  // coasts, new tentative track appears — a usable spoofing tell.
  const auto& tracks = tracker.update({det(before->range_m.value() + 6.0, -0.3)});
  ASSERT_EQ(tracks.size(), 2u);
  EXPECT_EQ(tracks[0].state, TrackState::kCoasting);
  EXPECT_EQ(tracks[1].state, TrackState::kTentative);
}

TEST(Tracker, TrackFollowsManeuver) {
  RangeTracker tracker;
  double d = 80.0, v = -2.0;
  for (int k = 0; k < 20; ++k) {
    d += v;
    if (k == 10) v = 1.0;  // leader speeds up
    tracker.update({det(d, v)});
  }
  const auto primary = tracker.primary_track();
  ASSERT_TRUE(primary.has_value());
  EXPECT_NEAR(primary->range_m.value(), d, 1.5);
  EXPECT_NEAR(primary->range_rate_mps.value(), 1.0, 0.6);
}

TEST(Tracker, ResetDropsEverything) {
  RangeTracker tracker;
  for (int k = 0; k < 4; ++k) tracker.update({det(70.0)});
  tracker.reset();
  EXPECT_TRUE(tracker.tracks().empty());
  EXPECT_FALSE(tracker.primary_track().has_value());
}

TEST(Tracker, AgeAccumulates) {
  RangeTracker tracker;
  for (int k = 0; k < 6; ++k) tracker.update({det(90.0)});
  EXPECT_GE(tracker.tracks()[0].age, 5u);
}

}  // namespace
}  // namespace safe::radar
