// Tests for the generic Section-3 LTI secure-sensing harness.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/lti_case.hpp"

namespace safe::core {
namespace {

std::shared_ptr<const cra::ChallengeSchedule> dense_schedule(
    std::int64_t horizon = 300) {
  return std::make_shared<cra::PrbsChallengeSchedule>(0x5151, 1, 5, horizon);
}

LtiOutputAttack bias_attack(std::size_t outputs, double start, double end,
                            double magnitude) {
  LtiOutputAttack attack;
  attack.kind = LtiOutputAttack::Kind::kBias;
  attack.window =
      attack::AttackWindow{units::Seconds{start}, units::Seconds{end}};
  attack.value = linalg::RVector(outputs, magnitude);
  return attack;
}

LtiOutputAttack dos_attack(std::size_t outputs, double start, double end,
                           double magnitude) {
  LtiOutputAttack attack;
  attack.kind = LtiOutputAttack::Kind::kDos;
  attack.window =
      attack::AttackWindow{units::Seconds{start}, units::Seconds{end}};
  attack.value = linalg::RVector(outputs, magnitude);
  return attack;
}

TEST(LtiCase, ConstructionValidation) {
  LtiCaseConfig cfg = make_dc_motor_case();
  EXPECT_THROW(LtiSecureCase(cfg, nullptr, std::nullopt),
               std::invalid_argument);

  cfg = make_dc_motor_case();
  cfg.feedback_gain = linalg::RMatrix(2, 1);
  EXPECT_THROW(LtiSecureCase(cfg, dense_schedule(), std::nullopt),
               std::invalid_argument);

  cfg = make_dc_motor_case();
  cfg.reference_output = linalg::RVector(2);
  EXPECT_THROW(LtiSecureCase(cfg, dense_schedule(), std::nullopt),
               std::invalid_argument);

  cfg = make_dc_motor_case();
  EXPECT_THROW(LtiSecureCase(cfg, dense_schedule(),
                             bias_attack(3, 0.0, 1.0, 1.0)),
               std::invalid_argument);

  cfg = make_dc_motor_case();
  cfg.horizon_steps = 0;
  EXPECT_THROW(LtiSecureCase(cfg, dense_schedule(), std::nullopt),
               std::invalid_argument);
}

TEST(LtiCase, DcMotorTracksReferenceWithoutAttack) {
  LtiSecureCase sim(make_dc_motor_case(), dense_schedule(), std::nullopt);
  const auto r = sim.run();
  EXPECT_FALSE(r.detection_step.has_value());
  EXPECT_EQ(r.detection_stats.false_positives, 0u);
  // Proportional output feedback has ~9% steady-state droop (no
  // integrator): |1/1.1 - 1| ~ 0.09, plus noise.
  EXPECT_LT(r.max_tracking_error, 0.15);
}

TEST(LtiCase, DoubleIntegratorTracksReferenceWithoutAttack) {
  LtiSecureCase sim(make_double_integrator_case(), dense_schedule(),
                    std::nullopt);
  const auto r = sim.run();
  EXPECT_LT(r.max_tracking_error, 0.5);
}

TEST(LtiCase, BiasAttackDetectedAtFirstChallenge) {
  const auto schedule = dense_schedule();
  LtiSecureCase sim(make_dc_motor_case(), schedule,
                    bias_attack(1, 150.0, 300.0, 0.5));
  const auto r = sim.run();
  std::int64_t expected = -1;
  for (std::int64_t k = 150; k < 300; ++k) {
    if (schedule->is_challenge(k)) {
      expected = k;
      break;
    }
  }
  ASSERT_TRUE(r.detection_step.has_value());
  EXPECT_EQ(*r.detection_step, expected);
  EXPECT_EQ(r.detection_stats.false_positives, 0u);
  EXPECT_EQ(r.detection_stats.false_negatives, 0u);
}

TEST(LtiCase, DefenseKeepsDcMotorOnReferenceThroughBias) {
  LtiSecureCase sim(make_dc_motor_case(), dense_schedule(),
                    bias_attack(1, 150.0, 300.0, 0.5));
  const auto r = sim.run();
  // The few pre-detection steps let the bias through (a transient dip); the
  // tail error measures the recovered holdover: near the loop's droopy
  // operating point ~0.91, far from the biased ~0.45.
  EXPECT_LT(r.tail_tracking_error, 0.25);
  EXPECT_LT(r.max_tracking_error, 0.7);  // latency transient is bounded
}

TEST(LtiCase, UndefendedBiasDragsOutputOffReference) {
  LtiCaseConfig cfg = make_dc_motor_case();
  cfg.defense_enabled = false;
  LtiSecureCase sim(cfg, dense_schedule(), bias_attack(1, 150.0, 300.0, 0.5));
  const auto r = sim.run();
  EXPECT_GT(r.max_tracking_error, 0.3);
  EXPECT_GT(r.tail_tracking_error, 0.3);  // never recovers
}

TEST(LtiCase, DosOnUnstablePlantDefenseBridgesBoundedWindow) {
  // A double integrator cannot be stabilized open-loop: holdover only
  // *bridges* attacks of bounded duration (here 20 steps). To isolate the
  // bridging property from detection latency (which on this plant is
  // catastrophic on its own — see the challenge-rate ablation), the attack
  // starts exactly on a challenge slot, so it is caught on its first step.
  const auto schedule = dense_schedule();
  std::int64_t onset = -1;
  for (std::int64_t k = 150; k < 250; ++k) {
    if (schedule->is_challenge(k)) {
      onset = k;
      break;
    }
  }
  ASSERT_GT(onset, 0);
  const auto attack = dos_attack(2, static_cast<double>(onset),
                                 static_cast<double>(onset + 20), 50.0);

  LtiCaseConfig cfg = make_double_integrator_case();
  cfg.defense_enabled = false;
  LtiSecureCase sim(cfg, schedule, attack);
  const auto undefended = sim.run();

  LtiSecureCase defended_sim(make_double_integrator_case(), schedule, attack);
  const auto defended = defended_sim.run();

  EXPECT_GT(undefended.max_tracking_error, 100.0);
  // Holdover keeps u near zero, but prediction noise random-walks the
  // unprotected velocity state: a ~30-step blind window costs a few meters
  // of position error — orders of magnitude below the undefended wreck.
  EXPECT_LT(defended.max_tracking_error, 15.0);
  EXPECT_LT(defended.max_tracking_error,
            0.1 * undefended.max_tracking_error);
}

TEST(LtiCase, UnboundedBlindWindowDivergesEvenDefended) {
  // The flip side, worth pinning down as a property: with the attack
  // running to the horizon, the unstable plant drifts without feedback no
  // matter how good the holdover — sensor recovery is not a substitute for
  // re-establishing trusted sensing on open-loop-unstable systems.
  LtiSecureCase sim(make_double_integrator_case(), dense_schedule(),
                    dos_attack(2, 150.0, 300.0, 50.0));
  const auto r = sim.run();
  EXPECT_GT(r.max_tracking_error, 3.0);
}

TEST(LtiCase, ScoringIsCleanOverFullRun) {
  LtiSecureCase sim(make_double_integrator_case(), dense_schedule(),
                    dos_attack(2, 100.0, 200.0, 25.0));
  const auto r = sim.run();
  EXPECT_EQ(r.detection_stats.false_positives, 0u);
  EXPECT_EQ(r.detection_stats.false_negatives, 0u);
  // Attack clears after its window: under_attack falls back to zero.
  const auto& under = r.trace.column("under_attack");
  bool cleared = false;
  for (std::size_t k = 210; k < under.size(); ++k) {
    if (under[k] == 0.0) cleared = true;
  }
  EXPECT_TRUE(cleared);
}

TEST(LtiCase, TraceShapeMatchesOutputs) {
  LtiSecureCase sim(make_double_integrator_case(), dense_schedule(),
                    std::nullopt);
  const auto r = sim.run();
  EXPECT_EQ(r.trace.num_columns(), 3u + 2u * 2u);
  EXPECT_EQ(r.trace.num_rows(), 300u);
}

}  // namespace
}  // namespace safe::core
