// Chaos-proxy tests: spec-language parsing, deterministic per-connection
// fault plans, transparent passthrough parity, TCP_NODELAY on the serving
// path, and the acceptance soak — sessions streamed through scheduled
// disconnects, latency jitter, and write re-splitting complete with zero
// byte-parity violations via resume + retry.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "serve/chaos.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/net_util.hpp"
#include "serve/resilient.hpp"
#include "serve/server.hpp"
#include "serve/trace_source.hpp"

namespace {

using namespace safe;
using namespace safe::serve;

class ServerHarness {
 public:
  explicit ServerHarness(ServerOptions options = {})
      : pool_(2), server_(std::move(options), pool_) {
    server_.bind_and_listen();
    thread_ = std::thread([this] { server_.run(); });
  }

  ~ServerHarness() {
    server_.request_drain();
    thread_.join();
    pool_.drain();
  }

  StreamServer& server() { return server_; }
  [[nodiscard]] std::uint16_t port() const { return server_.port(); }

 private:
  runtime::ThreadPool pool_;
  StreamServer server_;
  std::thread thread_;
};

/// Chaos proxy on its own thread, stopped and joined on destruction.
class ProxyHarness {
 public:
  ProxyHarness(const std::string& spec, std::uint64_t seed,
               std::uint16_t target_port)
      : proxy_(parse_chaos_spec(spec), seed, "127.0.0.1", target_port) {
    proxy_.bind_and_listen("127.0.0.1", 0);
    thread_ = std::thread([this] { proxy_.run(); });
  }

  ~ProxyHarness() {
    proxy_.request_stop();
    thread_.join();
  }

  ChaosProxy& proxy() { return proxy_; }
  [[nodiscard]] std::uint16_t port() const { return proxy_.port(); }

 private:
  ChaosProxy proxy_;
  std::thread thread_;
};

TraceSpec quick_spec(std::uint64_t seed, std::int64_t steps = 40) {
  TraceSpec spec;
  spec.seed = seed;
  spec.horizon_steps = steps;
  spec.attack = core::AttackKind::kDosJammer;
  spec.attack_start_s = units::Seconds{20.0};
  spec.attack_end_s = units::Seconds{60.0};
  return spec;
}

TEST(ChaosSpecParse, FullGrammarRoundTrips) {
  const ChaosSpec spec = parse_chaos_spec(
      "latency:ms=5,jitter=3;throttle:bps=65536;split:min=2,max=9;"
      "corrupt:prob=0.25;disconnect:prob=0.5,after=4096;halfclose:after=2048");
  EXPECT_EQ(spec.latency_ns, 5'000'000u);
  EXPECT_EQ(spec.jitter_ns, 3'000'000u);
  EXPECT_EQ(spec.throttle_bytes_per_sec, 65536u);
  EXPECT_EQ(spec.split_min, 2u);
  EXPECT_EQ(spec.split_max, 9u);
  EXPECT_DOUBLE_EQ(spec.corrupt_prob, 0.25);
  EXPECT_DOUBLE_EQ(spec.disconnect_prob, 0.5);
  EXPECT_EQ(spec.disconnect_after_bytes, 4096u);
  EXPECT_EQ(spec.half_close_after_bytes, 2048u);
  EXPECT_FALSE(spec.passthrough());
}

TEST(ChaosSpecParse, EmptyAndNoneArePassthrough) {
  EXPECT_TRUE(parse_chaos_spec("").passthrough());
  EXPECT_TRUE(parse_chaos_spec("none").passthrough());
}

TEST(ChaosSpecParse, PlusSeparatorAndDefaults) {
  const ChaosSpec spec = parse_chaos_spec("latency:ms=2+split:max=4");
  EXPECT_EQ(spec.latency_ns, 2'000'000u);
  EXPECT_EQ(spec.split_min, 1u);  // min defaults to 1
  EXPECT_EQ(spec.split_max, 4u);
}

TEST(ChaosSpecParse, MalformedSpecsThrow) {
  const char* bad[] = {
      "latency",           // no arguments
      "latency:ms=x",      // non-numeric
      "split:min=5,max=2", // max < min
      "corrupt:prob=1.5",  // probability out of range
      "throttle:bps=0",    // zero rate is meaningless
      "halfclose:after=0", // zero threshold is meaningless
      "warp:factor=9",     // unknown directive
      "latency:ms=1,bogus=2",  // unknown key
  };
  for (const char* spec : bad) {
    SCOPED_TRACE(spec);
    EXPECT_THROW((void)parse_chaos_spec(spec), std::invalid_argument);
  }
}

TEST(ChaosPlan, DrawSequenceIsDeterministicPerSeedAndConnection) {
  const ChaosSpec spec = parse_chaos_spec(
      "latency:ms=1,jitter=4;split:min=1,max=9;disconnect:prob=0.05");
  const auto draws = [&spec](std::uint64_t seed, std::uint64_t index) {
    ChaosPlan plan(spec, seed, index);
    std::vector<std::uint64_t> sequence;
    for (int i = 0; i < 64; ++i) {
      sequence.push_back(plan.next_chunk_len(4096));
      sequence.push_back(plan.next_delay_ns());
      sequence.push_back(plan.should_disconnect(0) ? 1 : 0);
    }
    return sequence;
  };
  EXPECT_EQ(draws(7, 0), draws(7, 0));
  EXPECT_NE(draws(7, 0), draws(7, 1));
  EXPECT_NE(draws(7, 0), draws(8, 0));
}

TEST(ChaosPlan, SplitRespectsBoundsAndAvailability) {
  const ChaosSpec spec = parse_chaos_spec("split:min=2,max=5");
  ChaosPlan plan(spec, 3, 0);
  for (int i = 0; i < 256; ++i) {
    const std::size_t len = plan.next_chunk_len(4096);
    EXPECT_GE(len, 2u);
    EXPECT_LE(len, 5u);
  }
  // Never asks for more than is available.
  EXPECT_LE(plan.next_chunk_len(1), 1u);
}

TEST(ChaosProxy, PassthroughPreservesByteParity) {
  ServerHarness harness;
  ProxyHarness proxy("none", 5, harness.port());

  LoadOptions load;
  load.port = proxy.port();
  load.connections = 2;
  load.sessions = 4;
  load.spec = quick_spec(51);
  load.master_seed = 52;
  load.verify = true;
  const LoadReport report = run_load(load);
  for (const std::string& error : report.errors) ADD_FAILURE() << error;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.sessions_verified, 4u);
  EXPECT_GE(proxy.proxy().stats().accepted, 2u);
  EXPECT_GT(proxy.proxy().stats().bytes_forwarded, 0u);
  EXPECT_EQ(proxy.proxy().stats().disconnects_injected, 0u);
}

TEST(ChaosProxy, NagleIsDisabledOnTheServingPath) {
  ServerHarness harness;

  // Client socket: asserted directly on the connected fd.
  SessionClient client;
  client.connect("127.0.0.1", harness.port());
  ASSERT_GE(client.native_handle(), 0);
  EXPECT_TRUE(tcp_nodelay_enabled(client.native_handle()));

  // Server-accepted socket: the accept path records any setsockopt failure,
  // so accepted > 0 with zero failures proves TCP_NODELAY took effect.
  ASSERT_TRUE(client.open_session(hello_from(quick_spec(53), "nodelay")).ok);
  const ServerStats stats = harness.server().stats();
  EXPECT_GE(stats.accepted, 1u);
  EXPECT_EQ(stats.nodelay_failures, 0u);
}

// The acceptance soak: sessions streamed through a proxy that cuts every
// connection after 2500 forwarded bytes, delays chunks by 1-3 ms, and
// re-splits writes into 1..7-byte pieces. Every session must still complete
// with estimates byte-identical to the offline pipeline, surviving the cuts
// via RESUME. Seeds are fixed and logged so a failure reproduces exactly.
TEST(ChaosProxy, SoakWithDisconnectsJitterAndResplitKeepsParity) {
  constexpr std::uint64_t kChaosSeed = 7;
  constexpr std::uint64_t kLoadSeed = 71;
  SCOPED_TRACE("chaos_seed=7 load_seed=71 spec="
               "latency:ms=1,jitter=2;split:min=1,max=7;disconnect:after=2500");

  ServerHarness harness;
  ProxyHarness proxy("latency:ms=1,jitter=2;split:min=1,max=7;"
                     "disconnect:after=2500",
                     kChaosSeed, harness.port());

  LoadOptions load;
  load.port = proxy.port();
  load.connections = 8;
  load.sessions = 16;
  load.spec = quick_spec(kLoadSeed);
  load.master_seed = kLoadSeed;
  load.verify = true;
  load.retry_attempts = 40;
  load.retry.initial_backoff_ns = 5'000'000;  // keep the soak fast
  load.retry.max_backoff_ns = 100'000'000;
  const LoadReport report = run_load(load);

  for (const SessionError& error : report.session_errors) {
    ADD_FAILURE() << "session " << error.session << " ["
                  << to_string(error.kind) << "] " << error.detail;
  }
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.sessions_completed, 16u);
  EXPECT_EQ(report.sessions_verified, 16u);
  EXPECT_EQ(report.verify_mismatched_frames, 0u);

  // The proxy actually did its job: every connection was eventually cut,
  // and the clients survived via resumption (or clean restarts when the
  // cut landed inside the handshake).
  EXPECT_GT(proxy.proxy().stats().disconnects_injected, 0u);
  EXPECT_GT(proxy.proxy().stats().resplit_writes, 0u);
  EXPECT_GT(report.reconnects, 0u);
  EXPECT_GT(report.resumes + report.restarts, 0u);
  EXPECT_EQ(harness.server().stats().sessions_resumed, report.resumes);
}

// A resilient client honors STATUS kOverloaded: it backs off and retries
// until admission clears, then completes with parity.
TEST(ChaosProxy, ResilientClientHonorsOverloadShed) {
  ServerOptions options;
  options.admission_max_batches = 1;
  runtime::ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  pool.submit([gate] { gate.wait(); });
  StreamServer server(options, pool);
  server.bind_and_listen();
  std::thread server_thread([&server] { server.run(); });

  const TraceSpec spec = quick_spec(54);
  const std::vector<MeasurementFrame> trace = make_measurement_trace(spec);

  // Wedge one batch in flight so admission control sheds new sessions.
  SessionClient occupant;
  occupant.connect("127.0.0.1", server.port());
  ASSERT_TRUE(occupant.open_session(hello_from(spec, "occupant")).ok);
  occupant.send_raw(encode(trace[0]));
  const auto wedge_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().frames_in < 1 &&
         std::chrono::steady_clock::now() < wedge_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  std::thread opener([&release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    release.set_value();
  });

  RetryPolicy policy;
  policy.max_attempts = 60;
  policy.initial_backoff_ns = 10'000'000;
  policy.max_backoff_ns = 100'000'000;
  ResilientClient client("127.0.0.1", server.port(), policy);
  const ResilientResult result = client.run(spec, "resilient", trace);
  EXPECT_TRUE(result.complete)
      << to_string(result.failure) << ": " << result.failure_detail;
  EXPECT_GE(result.overload_backoffs, 1u);

  const std::vector<EstimateFrame> reference = run_offline(spec, trace);
  ASSERT_EQ(result.estimate_frames.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(result.estimate_frames[i], encode(reference[i]))
        << "step " << i;
  }
  EXPECT_GE(server.stats().shed_hellos, 1u);

  opener.join();
  occupant.close();
  server.request_drain();
  server_thread.join();
  pool.drain();
}

}  // namespace
