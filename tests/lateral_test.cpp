// Tests for the lateral-dynamics extension: bicycle model + lane keeping,
// including a spoofed lateral-offset attack and its holdover defense.
#include <gtest/gtest.h>

#include <cmath>

#include "control/lane_keeping.hpp"
#include "estimation/rls_predictor.hpp"
#include "vehicle/lateral.hpp"

namespace safe {
namespace {

using control::LaneKeepingParameters;
using control::lane_keeping_steer;
using vehicle::BicycleInput;
using vehicle::BicycleParameters;
using vehicle::BicycleState;

TEST(Bicycle, ValidatesInputs) {
  EXPECT_THROW(vehicle::step({}, {}, {}, 0.0), std::invalid_argument);
  BicycleParameters p;
  p.wheelbase_m = 0.0;
  EXPECT_THROW(vehicle::step(p, {}, {}, 0.1), std::invalid_argument);
}

TEST(Bicycle, StraightLineAtConstantSpeed) {
  BicycleState s{.speed_mps = 20.0};
  for (int k = 0; k < 100; ++k) {
    s = vehicle::step({}, s, BicycleInput{}, 0.1);
  }
  EXPECT_NEAR(s.x_m, 200.0, 1e-9);
  EXPECT_NEAR(s.y_m, 0.0, 1e-12);
  EXPECT_NEAR(s.heading_rad, 0.0, 1e-12);
}

TEST(Bicycle, SteeringCurvesThePath) {
  BicycleState s{.speed_mps = 10.0};
  const BicycleInput input{.steer_rad = 0.1};
  for (int k = 0; k < 50; ++k) {
    s = vehicle::step({}, s, input, 0.1);
  }
  EXPECT_GT(s.y_m, 1.0);       // turned left
  EXPECT_GT(s.heading_rad, 0.1);
}

TEST(Bicycle, SteeringClampsToActuatorLimit) {
  BicycleParameters p;
  p.max_steer_rad = 0.2;
  BicycleState a{.speed_mps = 10.0};
  BicycleState b{.speed_mps = 10.0};
  a = vehicle::step(p, a, BicycleInput{.steer_rad = 0.2}, 0.1);
  b = vehicle::step(p, b, BicycleInput{.steer_rad = 5.0}, 0.1);
  EXPECT_DOUBLE_EQ(a.heading_rad, b.heading_rad);
}

TEST(Bicycle, SpeedClampsAtZero) {
  BicycleState s{.speed_mps = 1.0};
  s = vehicle::step({}, s, BicycleInput{.accel_mps2 = -6.0}, 1.0);
  EXPECT_EQ(s.speed_mps, 0.0);
}

TEST(Bicycle, HeadingStaysWrapped) {
  BicycleState s{.speed_mps = 10.0};
  const BicycleInput input{.steer_rad = 0.5};
  for (int k = 0; k < 500; ++k) {
    s = vehicle::step({}, s, input, 0.1);
  }
  EXPECT_LE(std::abs(s.heading_rad), 3.1416);
}

TEST(LaneKeeping, ParameterValidation) {
  LaneKeepingParameters p;
  p.heading_gain = 0.0;
  EXPECT_THROW(lane_keeping_steer(p, 0.0, 0.0, 10.0), std::invalid_argument);
}

TEST(LaneKeeping, SteersAgainstOffset) {
  // Left of center (positive offset): steer right (negative).
  EXPECT_LT(lane_keeping_steer({}, 1.0, 0.0, 20.0), 0.0);
  EXPECT_GT(lane_keeping_steer({}, -1.0, 0.0, 20.0), 0.0);
  EXPECT_EQ(lane_keeping_steer({}, 0.0, 0.0, 20.0), 0.0);
}

TEST(LaneKeeping, ConvergesToCenterline) {
  BicycleState s{.y_m = 2.0, .speed_mps = 20.0};
  for (int k = 0; k < 300; ++k) {
    const double steer = lane_keeping_steer({}, s.y_m, s.heading_rad, s.speed_mps);
    s = vehicle::step({}, s, BicycleInput{.steer_rad = steer}, 0.05);
  }
  EXPECT_NEAR(s.y_m, 0.0, 0.05);
  EXPECT_NEAR(s.heading_rad, 0.0, 0.02);
}

TEST(LaneKeeping, SpoofedOffsetDrivesVehicleOutOfLane) {
  // The lateral analogue of the delay attack: the perception stack reports
  // the car 1 m left of where it is, so the controller "corrects" into the
  // oncoming lane.
  BicycleState s{.speed_mps = 20.0};
  for (int k = 0; k < 200; ++k) {
    const double measured_offset = s.y_m + 1.0;  // spoofed +1 m bias
    const double steer =
        lane_keeping_steer({}, measured_offset, s.heading_rad, s.speed_mps);
    s = vehicle::step({}, s, BicycleInput{.steer_rad = steer}, 0.05);
  }
  EXPECT_LT(s.y_m, -0.8);  // pushed ~1 m off center: out of a 3.5 m lane half
}

TEST(LaneKeeping, HoldoverContainsSpoofedOffsetForShortAttack) {
  // Same attack, but the lateral channel holds over with an RLS predictor
  // trained on the clean approach (the longitudinal pipeline's strategy
  // transplanted to the lateral sensor). Unlike the longitudinal case,
  // lateral position is open-loop unstable under a steering bias (a tiny
  // residual prediction offset integrates into cross-track drift), so the
  // holdover can only contain *short* attacks — one concrete reason the
  // paper defers lateral dynamics to future work. Over a 5 s window the
  // vehicle must stay inside its 3.5 m lane.
  BicycleState s{.y_m = 1.5, .speed_mps = 20.0};
  estimation::RlsArPredictor offset_predictor;
  // Clean phase: converge toward center while training the predictor.
  for (int k = 0; k < 150; ++k) {
    const double measured = s.y_m;
    offset_predictor.observe(measured);
    const double steer =
        lane_keeping_steer({}, measured, s.heading_rad, s.speed_mps);
    s = vehicle::step({}, s, BicycleInput{.steer_rad = steer}, 0.05);
  }
  // Attack phase (5 s): sensor spoofed, controller uses predictions.
  for (int k = 0; k < 100; ++k) {
    const double estimated = offset_predictor.predict_next();
    const double steer =
        lane_keeping_steer({}, estimated, s.heading_rad, s.speed_mps);
    s = vehicle::step({}, s, BicycleInput{.steer_rad = steer}, 0.05);
  }
  EXPECT_LT(std::abs(s.y_m), 1.75);  // still inside the lane
}

TEST(LaneKeeping, SteeringRespectsActuatorLimit) {
  // A huge offset saturates at the steering clamp rather than diverging.
  const double steer = lane_keeping_steer({}, 2.0, 0.0, 0.0);
  EXPECT_GE(steer, -0.5);
  EXPECT_LE(std::abs(lane_keeping_steer({}, 100.0, -3.0, 1.0)), 0.5);
}

}  // namespace
}  // namespace safe
