// Tests for the lateral-dynamics extension: bicycle model + lane keeping,
// including a spoofed lateral-offset attack and its holdover defense.
#include <gtest/gtest.h>

#include <cmath>

#include "control/lane_keeping.hpp"
#include "estimation/rls_predictor.hpp"
#include "vehicle/lateral.hpp"

namespace safe {
namespace {

using control::LaneKeepingParameters;
using control::lane_keeping_steer;
using vehicle::BicycleInput;
using vehicle::BicycleParameters;
using vehicle::BicycleState;
using units::Meters;
using units::MetersPerSecond;
using units::MetersPerSecond2;
using units::Radians;
using units::Seconds;

TEST(Bicycle, ValidatesInputs) {
  EXPECT_THROW(vehicle::step({}, {}, {}, Seconds{0.0}), std::invalid_argument);
  BicycleParameters p;
  p.wheelbase_m = Meters{0.0};
  EXPECT_THROW(vehicle::step(p, {}, {}, Seconds{0.1}), std::invalid_argument);
}

TEST(Bicycle, StraightLineAtConstantSpeed) {
  BicycleState s{.speed_mps = MetersPerSecond{20.0}};
  for (int k = 0; k < 100; ++k) {
    s = vehicle::step({}, s, BicycleInput{}, Seconds{0.1});
  }
  EXPECT_NEAR(s.x_m.value(), 200.0, 1e-9);
  EXPECT_NEAR(s.y_m.value(), 0.0, 1e-12);
  EXPECT_NEAR(s.heading_rad.value(), 0.0, 1e-12);
}

TEST(Bicycle, SteeringCurvesThePath) {
  BicycleState s{.speed_mps = MetersPerSecond{10.0}};
  const BicycleInput input{.steer_rad = Radians{0.1}};
  for (int k = 0; k < 50; ++k) {
    s = vehicle::step({}, s, input, Seconds{0.1});
  }
  EXPECT_GT(s.y_m, Meters{1.0});       // turned left
  EXPECT_GT(s.heading_rad, Radians{0.1});
}

TEST(Bicycle, SteeringClampsToActuatorLimit) {
  BicycleParameters p;
  p.max_steer_rad = Radians{0.2};
  BicycleState a{.speed_mps = MetersPerSecond{10.0}};
  BicycleState b{.speed_mps = MetersPerSecond{10.0}};
  a = vehicle::step(p, a, BicycleInput{.steer_rad = Radians{0.2}}, Seconds{0.1});
  b = vehicle::step(p, b, BicycleInput{.steer_rad = Radians{5.0}}, Seconds{0.1});
  EXPECT_DOUBLE_EQ(a.heading_rad.value(), b.heading_rad.value());
}

TEST(Bicycle, SpeedClampsAtZero) {
  BicycleState s{.speed_mps = MetersPerSecond{1.0}};
  s = vehicle::step({}, s, BicycleInput{.accel_mps2 = MetersPerSecond2{-6.0}},
                    Seconds{1.0});
  EXPECT_EQ(s.speed_mps, MetersPerSecond{0.0});
}

TEST(Bicycle, HeadingStaysWrapped) {
  BicycleState s{.speed_mps = MetersPerSecond{10.0}};
  const BicycleInput input{.steer_rad = Radians{0.5}};
  for (int k = 0; k < 500; ++k) {
    s = vehicle::step({}, s, input, Seconds{0.1});
  }
  EXPECT_LE(std::abs(s.heading_rad.value()), 3.1416);
}

TEST(LaneKeeping, ParameterValidation) {
  LaneKeepingParameters p;
  p.heading_gain = 0.0;
  EXPECT_THROW(lane_keeping_steer(p, Meters{0.0}, Radians{0.0},
                                  MetersPerSecond{10.0}),
               std::invalid_argument);
}

TEST(LaneKeeping, SteersAgainstOffset) {
  // Left of center (positive offset): steer right (negative).
  EXPECT_LT(lane_keeping_steer({}, Meters{1.0}, Radians{0.0},
                               MetersPerSecond{20.0}),
            Radians{0.0});
  EXPECT_GT(lane_keeping_steer({}, Meters{-1.0}, Radians{0.0},
                               MetersPerSecond{20.0}),
            Radians{0.0});
  EXPECT_EQ(lane_keeping_steer({}, Meters{0.0}, Radians{0.0},
                               MetersPerSecond{20.0}),
            Radians{0.0});
}

TEST(LaneKeeping, ConvergesToCenterline) {
  BicycleState s{.y_m = Meters{2.0}, .speed_mps = MetersPerSecond{20.0}};
  for (int k = 0; k < 300; ++k) {
    const Radians steer =
        lane_keeping_steer({}, s.y_m, s.heading_rad, s.speed_mps);
    s = vehicle::step({}, s, BicycleInput{.steer_rad = steer}, Seconds{0.05});
  }
  EXPECT_NEAR(s.y_m.value(), 0.0, 0.05);
  EXPECT_NEAR(s.heading_rad.value(), 0.0, 0.02);
}

TEST(LaneKeeping, SpoofedOffsetDrivesVehicleOutOfLane) {
  // The lateral analogue of the delay attack: the perception stack reports
  // the car 1 m left of where it is, so the controller "corrects" into the
  // oncoming lane.
  BicycleState s{.speed_mps = MetersPerSecond{20.0}};
  for (int k = 0; k < 200; ++k) {
    const Meters measured_offset = s.y_m + Meters{1.0};  // spoofed +1 m bias
    const Radians steer =
        lane_keeping_steer({}, measured_offset, s.heading_rad, s.speed_mps);
    s = vehicle::step({}, s, BicycleInput{.steer_rad = steer}, Seconds{0.05});
  }
  // Pushed ~1 m off center: out of a 3.5 m lane half.
  EXPECT_LT(s.y_m, Meters{-0.8});
}

TEST(LaneKeeping, HoldoverContainsSpoofedOffsetForShortAttack) {
  // Same attack, but the lateral channel holds over with an RLS predictor
  // trained on the clean approach (the longitudinal pipeline's strategy
  // transplanted to the lateral sensor). Unlike the longitudinal case,
  // lateral position is open-loop unstable under a steering bias (a tiny
  // residual prediction offset integrates into cross-track drift), so the
  // holdover can only contain *short* attacks — one concrete reason the
  // paper defers lateral dynamics to future work. Over a 5 s window the
  // vehicle must stay inside its 3.5 m lane.
  BicycleState s{.y_m = Meters{1.5}, .speed_mps = MetersPerSecond{20.0}};
  estimation::RlsArPredictor offset_predictor;
  // Clean phase: converge toward center while training the predictor.
  for (int k = 0; k < 150; ++k) {
    const Meters measured = s.y_m;
    offset_predictor.observe(measured.value());
    const Radians steer =
        lane_keeping_steer({}, measured, s.heading_rad, s.speed_mps);
    s = vehicle::step({}, s, BicycleInput{.steer_rad = steer}, Seconds{0.05});
  }
  // Attack phase (5 s): sensor spoofed, controller uses predictions.
  for (int k = 0; k < 100; ++k) {
    const Meters estimated{offset_predictor.predict_next()};
    const Radians steer =
        lane_keeping_steer({}, estimated, s.heading_rad, s.speed_mps);
    s = vehicle::step({}, s, BicycleInput{.steer_rad = steer}, Seconds{0.05});
  }
  EXPECT_LT(std::abs(s.y_m.value()), 1.75);  // still inside the lane
}

TEST(LaneKeeping, SteeringRespectsActuatorLimit) {
  // A huge offset saturates at the steering clamp rather than diverging.
  const Radians steer = lane_keeping_steer({}, Meters{2.0}, Radians{0.0},
                                           MetersPerSecond{0.0});
  EXPECT_GE(steer, Radians{-0.5});
  EXPECT_LE(std::abs(lane_keeping_steer({}, Meters{100.0}, Radians{-3.0},
                                        MetersPerSecond{1.0})
                         .value()),
            0.5);
}

}  // namespace
}  // namespace safe
