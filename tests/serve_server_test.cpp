// Loopback tests for the streaming server: the byte-parity contract under
// concurrency, protocol-error handling, the session cap over the wire,
// slow-consumer disconnects, idle eviction, and graceful drain.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "serve/trace_source.hpp"

namespace {

using namespace safe;
using namespace safe::serve;

/// Server on a kernel-assigned loopback port, event loop on its own thread,
/// drained and joined on destruction.
class ServerHarness {
 public:
  explicit ServerHarness(ServerOptions options = {})
      : pool_(2), server_(std::move(options), pool_) {
    server_.bind_and_listen();
    thread_ = std::thread([this] { server_.run(); });
  }

  ~ServerHarness() {
    server_.request_drain();
    thread_.join();
    pool_.drain();
  }

  StreamServer& server() { return server_; }
  [[nodiscard]] std::uint16_t port() const { return server_.port(); }

 private:
  runtime::ThreadPool pool_;
  StreamServer server_;
  std::thread thread_;
};

TraceSpec quick_spec(std::uint64_t seed = 11) {
  TraceSpec spec;
  spec.seed = seed;
  spec.horizon_steps = 60;
  spec.attack = core::AttackKind::kDosJammer;
  spec.attack_start_s = units::Seconds{20.0};
  spec.attack_end_s = units::Seconds{60.0};
  return spec;
}

TEST(ServeServer, SingleSessionMatchesOfflinePipelineByteForByte) {
  ServerHarness harness;
  const TraceSpec spec = quick_spec();
  const std::vector<MeasurementFrame> trace = make_measurement_trace(spec);

  SessionClient client;
  client.connect("127.0.0.1", harness.port());
  const auto open = client.open_session(hello_from(spec, "parity"));
  ASSERT_TRUE(open.ok) << open.transport_error;
  EXPECT_NE(open.status.session_token, 0u);

  const auto result = client.stream(trace);
  ASSERT_TRUE(result.complete) << result.transport_error;
  ASSERT_EQ(result.estimates.size(), trace.size());

  const std::vector<EstimateFrame> reference = run_offline(spec, trace);
  ASSERT_EQ(reference.size(), result.estimate_frames.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(result.estimate_frames[i], encode(reference[i]))
        << "step " << i;
  }
  // Challenge slots produce CHALLENGE_RESULT frames alongside estimates.
  EXPECT_FALSE(result.challenges.empty());
}

TEST(ServeServer, ConcurrentSessionsAllVerify) {
  ServerHarness harness;
  LoadOptions load;
  load.port = harness.port();
  load.connections = 4;
  load.sessions = 8;
  load.spec = quick_spec();
  load.master_seed = 21;
  load.verify = true;
  const LoadReport report = run_load(load);
  for (const std::string& error : report.errors) ADD_FAILURE() << error;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.sessions_completed, 8u);
  EXPECT_EQ(report.sessions_verified, 8u);
  EXPECT_EQ(report.verify_mismatched_frames, 0u);
  EXPECT_EQ(report.estimates_received, report.frames_sent);
}

TEST(ServeServer, GarbageBytesGetErrorFrameAndClose) {
  ServerHarness harness;
  SessionClient client;
  client.connect("127.0.0.1", harness.port());
  client.send_raw({0xFF, 0xFF, 0xFF, 0xFF, 0x99, 0x00, 0x01, 0x02});
  const auto frame = client.recv_frame(5'000'000'000ULL);
  ASSERT_TRUE(frame.has_value()) << client.reason();
  ASSERT_EQ(frame->type, FrameType::kError);
  ErrorFrame error;
  ASSERT_TRUE(decode(*frame, error, nullptr));
  EXPECT_EQ(error.code, ErrorCode::kMalformedFrame);
  // And the server hangs up afterwards.
  EXPECT_FALSE(client.recv_frame(5'000'000'000ULL).has_value());
}

TEST(ServeServer, MeasurementBeforeHelloIsAProtocolError) {
  ServerHarness harness;
  SessionClient client;
  client.connect("127.0.0.1", harness.port());
  client.send_raw(encode(MeasurementFrame{}));
  const auto frame = client.recv_frame(5'000'000'000ULL);
  ASSERT_TRUE(frame.has_value()) << client.reason();
  ASSERT_EQ(frame->type, FrameType::kError);
  ErrorFrame error;
  ASSERT_TRUE(decode(*frame, error, nullptr));
  EXPECT_EQ(error.code, ErrorCode::kProtocolOrder);
}

TEST(ServeServer, SessionCapRejectsOverTheWire) {
  ServerOptions options;
  options.session.max_sessions = 1;
  ServerHarness harness(options);

  SessionClient first;
  first.connect("127.0.0.1", harness.port());
  ASSERT_TRUE(first.open_session(hello_from(quick_spec(), "one")).ok);

  SessionClient second;
  second.connect("127.0.0.1", harness.port());
  const auto open = second.open_session(hello_from(quick_spec(), "two"));
  EXPECT_FALSE(open.ok);
  ASSERT_TRUE(open.has_error) << open.transport_error;
  EXPECT_EQ(open.error.code, ErrorCode::kSessionLimit);

  // The rejected connection is closed; the first session still works.
  first.close();
}

TEST(ServeServer, SlowConsumerIsDisconnectedWithStatus) {
  ServerOptions options;
  options.max_outbound_bytes = 256;  // a handful of estimate frames
  options.max_pending_frames = 512;  // don't pause reads before overflow
  ServerHarness harness(options);

  const TraceSpec spec = quick_spec();
  const std::vector<MeasurementFrame> trace = make_measurement_trace(spec);

  SessionClient client;
  client.connect("127.0.0.1", harness.port());
  ASSERT_TRUE(client.open_session(hello_from(spec, "slow")).ok);

  // Fire the whole trace without reading a single reply.
  std::vector<std::uint8_t> burst;
  for (const MeasurementFrame& m : trace) {
    const auto bytes = encode(m);
    burst.insert(burst.end(), bytes.begin(), bytes.end());
  }
  client.send_raw(burst);

  // Eventually the replies overflow the outbound cap and the server sends
  // STATUS kSlowConsumer (possibly after a few estimates) and hangs up.
  bool saw_slow_consumer = false;
  for (int i = 0; i < 1000; ++i) {
    const auto frame = client.recv_frame(10'000'000'000ULL);
    if (!frame.has_value()) break;
    if (frame->type == FrameType::kStatus) {
      StatusFrame status;
      ASSERT_TRUE(decode(*frame, status, nullptr));
      EXPECT_EQ(status.code, StatusCode::kSlowConsumer);
      saw_slow_consumer = true;
      break;
    }
  }
  EXPECT_TRUE(saw_slow_consumer);
  // Allow the loop to finish the disconnect before the harness drains.
  for (int i = 0; i < 100 && harness.server().live_sessions() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(harness.server().stats().slow_consumer_disconnects, 1u);
}

TEST(ServeServer, IdleSessionIsEvictedOverTheWire) {
  ServerOptions options;
  options.session.idle_timeout_ns = 100'000'000ULL;  // 100 ms
  options.idle_check_period_ns = 20'000'000ULL;      // 20 ms sweep
  ServerHarness harness(options);

  SessionClient client;
  client.connect("127.0.0.1", harness.port());
  ASSERT_TRUE(client.open_session(hello_from(quick_spec(), "idler")).ok);

  // Send nothing; the server must evict and notify.
  const auto frame = client.recv_frame(10'000'000'000ULL);
  ASSERT_TRUE(frame.has_value()) << client.reason();
  ASSERT_EQ(frame->type, FrameType::kStatus);
  StatusFrame status;
  ASSERT_TRUE(decode(*frame, status, nullptr));
  EXPECT_EQ(status.code, StatusCode::kIdleTimeout);
  EXPECT_EQ(harness.server().session_counters().evicted, 1u);
}

TEST(ServeServer, DrainNotifiesConnectedClients) {
  runtime::ThreadPool pool(2);
  StreamServer server(ServerOptions{}, pool);
  server.bind_and_listen();
  std::thread loop([&server] { server.run(); });

  SessionClient client;
  client.connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.open_session(hello_from(quick_spec(), "drainee")).ok);

  server.request_drain();
  const auto frame = client.recv_frame(10'000'000'000ULL);
  ASSERT_TRUE(frame.has_value()) << client.reason();
  ASSERT_EQ(frame->type, FrameType::kStatus);
  StatusFrame status;
  ASSERT_TRUE(decode(*frame, status, nullptr));
  EXPECT_EQ(status.code, StatusCode::kDraining);

  loop.join();  // run() returns once every connection is gone
  pool.drain();
  EXPECT_EQ(server.live_sessions(), 0u);
}

// Regression: once the drain grace period expired, the force-close branch
// used to `continue` past poll()/drain_completions() every iteration, so a
// pipeline batch still in flight at grace expiry could never be reaped and
// run() spun forever. Wedge the pool's only worker so the dispatched batch
// is guaranteed to still be outstanding when the (short) grace expires,
// then check run() returns once the batch finally completes.
TEST(ServeServer, DrainGraceExpiryWithInFlightBatchStillReturns) {
  ServerOptions options;
  options.drain_grace_ns = 50'000'000ULL;  // 50 ms
  runtime::ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  pool.submit([gate] { gate.wait(); });

  StreamServer server(options, pool);
  server.bind_and_listen();
  std::promise<void> run_returned;
  std::thread loop([&server, &run_returned] {
    server.run();
    run_returned.set_value();
  });

  const TraceSpec spec = quick_spec();
  const std::vector<MeasurementFrame> trace = make_measurement_trace(spec);
  SessionClient client;
  client.connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.open_session(hello_from(spec, "wedged")).ok);
  std::vector<std::uint8_t> burst;
  for (std::size_t i = 0; i < 4; ++i) {
    const auto bytes = encode(trace[i]);
    burst.insert(burst.end(), bytes.begin(), bytes.end());
  }
  client.send_raw(burst);

  // Wait until the frames are decoded (the batch dispatch follows in the
  // same loop pass); it then sits queued behind the wedged worker.
  for (int i = 0; i < 500 && server.stats().frames_in < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(server.stats().frames_in, 4u);

  server.request_drain();
  // Let the grace expire and the force-close path run with the batch still
  // outstanding.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  release.set_value();

  ASSERT_EQ(run_returned.get_future().wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "run() wedged after drain grace expiry with a batch in flight";
  loop.join();
  pool.drain();
}

TEST(ServeServer, StatsAccountForCleanRun) {
  ServerOptions options;
  ServerStats stats;
  SessionManager::Counters counters;
  {
    ServerHarness harness(options);
    LoadOptions load;
    load.port = harness.port();
    load.connections = 2;
    load.sessions = 2;
    load.spec = quick_spec(5);
    const LoadReport report = run_load(load);
    EXPECT_TRUE(report.ok());
    stats = harness.server().stats();
    counters = harness.server().session_counters();
  }
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.frames_in, 120u);  // 2 sessions x 60 steps
  EXPECT_EQ(counters.opened, 2u);
  EXPECT_EQ(counters.rejected, 0u);
}

}  // namespace
