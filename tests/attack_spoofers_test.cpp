// Tests for the physical-layer spoofing adversaries (DESIGN.md §17).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "attack/spoofers.hpp"
#include "radar/link_budget.hpp"

namespace safe::attack {
namespace {

radar::FmcwParameters waveform() { return radar::bosch_lrr2_parameters(); }

AttackContext context_at(std::int64_t step, double distance_m,
                         const radar::FmcwParameters& wf,
                         double range_rate = -1.0) {
  return AttackContext{
      .time_s = units::Seconds{static_cast<double>(step)},
      .step = step,
      .true_distance_m = units::Meters{distance_m},
      .true_range_rate_mps = units::MetersPerSecond{range_rate},
      .true_echo_power_w =
          radar::received_echo_power_w(wf, units::Meters{distance_m}, 10.0),
      .waveform = &wf,
  };
}

radar::EchoScene normal_scene(const AttackContext& ctx,
                              bool tx_enabled = true) {
  radar::EchoScene scene;
  scene.tx_enabled = tx_enabled;
  if (tx_enabled) {
    scene.echoes.push_back(radar::EchoComponent{
        .distance_m = ctx.true_distance_m,
        .range_rate_mps = ctx.true_range_rate_mps,
        .power_w = ctx.true_echo_power_w,
    });
  }
  scene.noise_power_w = 4.0e-14;
  return scene;
}

// --- PhaseCoherentSpoofAttack ----------------------------------------------

TEST(PhaseCoherentSpoof, ValidatesConfig) {
  PhaseCoherentSpoofConfig cfg;
  cfg.coherence = 0.0;
  EXPECT_THROW(PhaseCoherentSpoofAttack{cfg}, std::invalid_argument);
  cfg.coherence = 1.5;
  EXPECT_THROW(PhaseCoherentSpoofAttack{cfg}, std::invalid_argument);
  cfg = {};
  cfg.power_advantage = 0.0;
  EXPECT_THROW(PhaseCoherentSpoofAttack{cfg}, std::invalid_argument);
  cfg = {};
  cfg.range_offset_m = units::Meters{std::nan("")};
  EXPECT_THROW(PhaseCoherentSpoofAttack{cfg}, std::invalid_argument);
}

TEST(PhaseCoherentSpoof, ShiftsRangeAndDoppler) {
  const auto wf = waveform();
  const auto ctx = context_at(0, 80.0, wf, -2.0);
  radar::EchoScene scene = normal_scene(ctx);
  PhaseCoherentSpoofConfig cfg;
  cfg.range_offset_m = units::Meters{10.0};
  cfg.doppler_shift_hz = units::Hertz{400.0};
  PhaseCoherentSpoofAttack attack{cfg};
  EXPECT_TRUE(attack.apply(ctx, scene));
  ASSERT_EQ(scene.echoes.size(), 1u);  // capture: replaces the true echo
  EXPECT_NEAR(scene.echoes[0].distance_m.value(), 90.0, 1e-9);
  // v = f_D * lambda / 2 on top of the true range rate.
  const double expected_shift = 0.5 * wf.wavelength_m.value() * 400.0;
  EXPECT_NEAR(scene.echoes[0].range_rate_mps.value(), -2.0 + expected_shift,
              1e-12);
}

TEST(PhaseCoherentSpoof, PerfectCoherenceAddsNoNoise) {
  const auto wf = waveform();
  const auto ctx = context_at(0, 80.0, wf);
  radar::EchoScene scene = normal_scene(ctx);
  const double clean_noise = scene.noise_power_w;
  PhaseCoherentSpoofAttack attack{PhaseCoherentSpoofConfig{}};  // coherence=1
  attack.apply(ctx, scene);
  EXPECT_DOUBLE_EQ(scene.noise_power_w, clean_noise);
}

TEST(PhaseCoherentSpoof, CoherenceSplitsCounterfeitPower) {
  const auto wf = waveform();
  const auto ctx = context_at(0, 80.0, wf);
  PhaseCoherentSpoofConfig cfg;
  cfg.coherence = 0.6;
  cfg.min_power_w = 0.0;  // disable the link floor: test the split alone
  PhaseCoherentSpoofAttack attack{cfg};
  radar::EchoScene scene = normal_scene(ctx);
  const double clean_noise = scene.noise_power_w;
  attack.apply(ctx, scene);
  ASSERT_EQ(scene.echoes.size(), 1u);
  const double total = scene.echoes[0].power_w +
                       (scene.noise_power_w - clean_noise);
  // 60% lands in the beat peak, 40% smears into the noise floor; the split
  // conserves the counterfeit power.
  EXPECT_NEAR(scene.echoes[0].power_w / total, 0.6, 1e-12);
  EXPECT_NEAR(total, ctx.true_echo_power_w * cfg.power_advantage, 1e-20);
}

TEST(PhaseCoherentSpoof, NonReplacingModeKeepsGenuineEcho) {
  const auto wf = waveform();
  const auto ctx = context_at(0, 80.0, wf);
  radar::EchoScene scene = normal_scene(ctx);
  PhaseCoherentSpoofConfig cfg;
  cfg.replaces_true_echo = false;
  PhaseCoherentSpoofAttack{cfg}.apply(ctx, scene);
  EXPECT_EQ(scene.echoes.size(), 2u);
}

TEST(PhaseCoherentSpoof, RadiatesIntoChallengeSlots) {
  // The replay chain has latency: the counterfeit is present even when the
  // probe was suppressed, which is exactly the footprint CRA detects.
  const auto wf = waveform();
  const auto ctx = context_at(0, 80.0, wf);
  radar::EchoScene scene = normal_scene(ctx, /*tx_enabled=*/false);
  EXPECT_TRUE(PhaseCoherentSpoofAttack{PhaseCoherentSpoofConfig{}}.apply(
      ctx, scene));
  EXPECT_EQ(scene.echoes.size(), 1u);
}

// --- ChirpModificationAttack -----------------------------------------------

TEST(ChirpModification, ValidatesConfig) {
  ChirpModificationConfig cfg;
  cfg.slope_ratio = 0.0;
  EXPECT_THROW(ChirpModificationAttack{cfg}, std::invalid_argument);
  cfg = {};
  cfg.power_advantage = -1.0;
  EXPECT_THROW(ChirpModificationAttack{cfg}, std::invalid_argument);
}

TEST(ChirpModification, MatchedSlopeIsFullyCoherent) {
  const ChirpModificationAttack attack{ChirpModificationConfig{}};
  EXPECT_DOUBLE_EQ(attack.coherent_fraction(waveform()), 1.0);
}

TEST(ChirpModification, SlopeMismatchSmearsAcrossCells) {
  // cells = |1 - r| * B_s * T_s / 2; even a 1e-9 relative mismatch on the
  // LRR2 sweep covers many resolution cells.
  const auto wf = waveform();
  ChirpModificationConfig cfg;
  cfg.slope_ratio = 1.0 + 1.0e-9;
  const ChirpModificationAttack attack{cfg};
  const double cells = std::abs(1.0 - cfg.slope_ratio) *
                       wf.sweep_bandwidth_hz.value() *
                       (0.5 * wf.sweep_time_s.value());
  EXPECT_NEAR(attack.coherent_fraction(wf), 1.0 / (1.0 + cells), 1e-15);
  EXPECT_LT(attack.coherent_fraction(wf), 1.0);
}

TEST(ChirpModification, AddsGhostWithoutMaskingGenuineEcho) {
  // A rogue radar runs its own transmitter: it cannot capture the victim's
  // receiver the way a replay can, so the true echo survives.
  const auto wf = waveform();
  const auto ctx = context_at(0, 80.0, wf);
  radar::EchoScene scene = normal_scene(ctx);
  ChirpModificationConfig cfg;
  cfg.ghost_offset_m = units::Meters{12.0};
  EXPECT_TRUE(ChirpModificationAttack{cfg}.apply(ctx, scene));
  ASSERT_EQ(scene.echoes.size(), 2u);
  EXPECT_DOUBLE_EQ(scene.echoes[0].distance_m.value(), 80.0);
  EXPECT_NEAR(scene.echoes[1].distance_m.value(), 92.0, 1e-9);
}

TEST(ChirpModification, MismatchedSlopeRaisesNoiseFloor) {
  const auto wf = waveform();
  const auto ctx = context_at(0, 80.0, wf);
  radar::EchoScene scene = normal_scene(ctx);
  const double clean_noise = scene.noise_power_w;
  ChirpModificationConfig cfg;
  cfg.slope_ratio = 1.0 + 1.0e-7;  // heavy smear: ghost "degrades" to jamming
  ChirpModificationAttack attack{cfg};
  attack.apply(ctx, scene);
  EXPECT_GT(scene.noise_power_w, clean_noise);
}

// --- ChirpEntrainmentAttack ------------------------------------------------

ChirpEntrainmentConfig entrain_config() {
  ChirpEntrainmentConfig cfg;
  cfg.acquire_slots = 3;
  return cfg;
}

TEST(ChirpEntrainment, ValidatesConfig) {
  ChirpEntrainmentConfig cfg;
  cfg.acquire_slots = 0;
  EXPECT_THROW(ChirpEntrainmentAttack{cfg}, std::invalid_argument);
  cfg = {};
  cfg.timing_jitter_m = units::Meters{-1.0};
  EXPECT_THROW(ChirpEntrainmentAttack{cfg}, std::invalid_argument);
  cfg = {};
  cfg.leak_noise_factor = -0.5;
  EXPECT_THROW(ChirpEntrainmentAttack{cfg}, std::invalid_argument);
}

TEST(ChirpEntrainment, StaysPassiveUntilAcquired) {
  const auto wf = waveform();
  ChirpEntrainmentAttack attack{entrain_config()};
  for (std::int64_t k = 0; k < 2; ++k) {
    const auto ctx = context_at(k, 80.0, wf);
    radar::EchoScene scene = normal_scene(ctx);
    EXPECT_FALSE(attack.apply(ctx, scene));
    EXPECT_EQ(scene.echoes.size(), 1u);  // untouched while listening
    EXPECT_FALSE(attack.locked());
  }
}

TEST(ChirpEntrainment, LocksAfterAcquireProbeOnSlots) {
  const auto wf = waveform();
  ChirpEntrainmentAttack attack{entrain_config()};
  for (std::int64_t k = 0; k < 3; ++k) {
    const auto ctx = context_at(k, 80.0, wf);
    radar::EchoScene scene = normal_scene(ctx);
    attack.apply(ctx, scene);
  }
  EXPECT_TRUE(attack.locked());
  const auto ctx = context_at(3, 80.0, wf);
  radar::EchoScene scene = normal_scene(ctx);
  EXPECT_TRUE(attack.apply(ctx, scene));
  ASSERT_EQ(scene.echoes.size(), 1u);
  EXPECT_NEAR(scene.echoes[0].distance_m.value(), 86.0, 1e-9);  // captured
}

TEST(ChirpEntrainment, ProbeOffSlotsDoNotCountTowardAcquisition) {
  const auto wf = waveform();
  ChirpEntrainmentAttack attack{entrain_config()};
  for (std::int64_t k = 0; k < 10; ++k) {
    const auto ctx = context_at(k, 80.0, wf);
    radar::EchoScene scene = normal_scene(ctx, /*tx_enabled=*/false);
    attack.apply(ctx, scene);
  }
  // Ten silent epochs: the attacker heard no sweeps and cannot sync.
  EXPECT_FALSE(attack.locked());
}

TEST(ChirpEntrainment, PerfectReplayIsSilentWhenProbeIs) {
  // replay = 0: transmit at slot t only if a probe was heard at slot t.
  // During a challenge (probe off) the attacker is silent too — the CRA
  // consistency check sees exactly what it expects.
  const auto wf = waveform();
  auto cfg = entrain_config();
  cfg.replay_delay_slots = 0;
  ChirpEntrainmentAttack attack{cfg};
  for (std::int64_t k = 0; k < 3; ++k) {
    const auto ctx = context_at(k, 80.0, wf);
    radar::EchoScene scene = normal_scene(ctx);
    attack.apply(ctx, scene);
  }
  ASSERT_TRUE(attack.locked());

  const auto challenge_ctx = context_at(3, 80.0, wf);
  radar::EchoScene challenge = normal_scene(challenge_ctx, false);
  EXPECT_FALSE(attack.apply(challenge_ctx, challenge));
  EXPECT_TRUE(challenge.echoes.empty());

  const auto normal_ctx = context_at(4, 80.0, wf);
  radar::EchoScene scene = normal_scene(normal_ctx);
  EXPECT_TRUE(attack.apply(normal_ctx, scene));
  EXPECT_EQ(scene.echoes.size(), 1u);
}

TEST(ChirpEntrainment, DelayedReplayEchoesProbePatternLate) {
  // replay = 2: the probe pattern is mirrored two slots later, so the
  // attacker radiates into a challenge slot whenever the probe two slots
  // earlier was on — which is what CRA catches.
  const auto wf = waveform();
  auto cfg = entrain_config();
  cfg.acquire_slots = 1;
  cfg.replay_delay_slots = 2;
  ChirpEntrainmentAttack attack{cfg};

  {  // slot 0: probe on -> acquires and records
    const auto ctx = context_at(0, 80.0, wf);
    radar::EchoScene scene = normal_scene(ctx);
    attack.apply(ctx, scene);
    ASSERT_TRUE(attack.locked());
  }
  {  // slot 1: probe on, but no probe recorded at slot -1 -> silent
    const auto ctx = context_at(1, 80.0, wf);
    radar::EchoScene scene = normal_scene(ctx);
    EXPECT_FALSE(attack.apply(ctx, scene));
  }
  {  // slot 2 is a challenge; probe at slot 0 was on -> attacker radiates
    const auto ctx = context_at(2, 80.0, wf);
    radar::EchoScene scene = normal_scene(ctx, false);
    EXPECT_TRUE(attack.apply(ctx, scene));
    EXPECT_EQ(scene.echoes.size(), 1u);
  }
}

TEST(ChirpEntrainment, LeakageRaisesNoiseEvenWhenChirpIsSilent) {
  const auto wf = waveform();
  auto cfg = entrain_config();
  cfg.replay_delay_slots = 0;
  cfg.leak_noise_factor = 15.0;
  ChirpEntrainmentAttack attack{cfg};
  for (std::int64_t k = 0; k < 3; ++k) {
    const auto ctx = context_at(k, 80.0, wf);
    radar::EchoScene scene = normal_scene(ctx);
    attack.apply(ctx, scene);
  }
  const auto ctx = context_at(3, 80.0, wf);
  radar::EchoScene scene = normal_scene(ctx, false);
  const double clean_noise = scene.noise_power_w;
  EXPECT_TRUE(attack.apply(ctx, scene));  // leak modifies the scene...
  EXPECT_TRUE(scene.echoes.empty());      // ...but no counterfeit chirp
  EXPECT_DOUBLE_EQ(scene.noise_power_w, clean_noise * 16.0);
}

TEST(ChirpEntrainment, JitterIsReproducibleFromSeedAndStep) {
  const auto wf = waveform();
  auto cfg = entrain_config();
  cfg.acquire_slots = 1;
  cfg.timing_jitter_m = units::Meters{0.5};
  cfg.seed = 42;

  auto run = [&](ChirpEntrainmentAttack& attack) {
    std::vector<double> distances;
    for (std::int64_t k = 0; k < 6; ++k) {
      const auto ctx = context_at(k, 80.0, wf);
      radar::EchoScene scene = normal_scene(ctx);
      attack.apply(ctx, scene);
      if (!scene.echoes.empty()) {
        distances.push_back(scene.echoes[0].distance_m.value());
      }
    }
    return distances;
  };

  ChirpEntrainmentAttack a{cfg};
  ChirpEntrainmentAttack b{cfg};
  EXPECT_EQ(run(a), run(b));

  cfg.seed = 43;
  ChirpEntrainmentAttack c{cfg};
  EXPECT_NE(run(a), run(c));  // a different seed draws different jitter
}

TEST(ChirpEntrainment, CloneStartsFromPristineState) {
  const auto wf = waveform();
  ChirpEntrainmentAttack attack{entrain_config()};
  for (std::int64_t k = 0; k < 3; ++k) {
    const auto ctx = context_at(k, 80.0, wf);
    radar::EchoScene scene = normal_scene(ctx);
    attack.apply(ctx, scene);
  }
  ASSERT_TRUE(attack.locked());

  const auto clone = attack.clone();
  auto* entrained = dynamic_cast<ChirpEntrainmentAttack*>(clone.get());
  ASSERT_NE(entrained, nullptr);
  EXPECT_FALSE(entrained->locked());

  attack.reset();
  EXPECT_FALSE(attack.locked());
  const auto ctx = context_at(99, 80.0, wf);
  radar::EchoScene scene = normal_scene(ctx);
  EXPECT_FALSE(attack.apply(ctx, scene));  // listening again after reset
}

}  // namespace
}  // namespace safe::attack
