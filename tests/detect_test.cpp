// Unit tests for the pluggable detection subsystem: the detector_spec
// mini-language, every DetectorBackend, the CRA-backend equivalence
// guarantee, and the pipeline/HealthMonitor behaviour when the active
// detector flaps around the clearance debounce window.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/pipeline.hpp"
#include "cra/challenge.hpp"
#include "detect/backends.hpp"
#include "detect/spec.hpp"

namespace safe::detect {
namespace {

// --- spec mini-language ----------------------------------------------------

TEST(DetectorSpec, EmptyAndBareNamesAreOk) {
  EXPECT_EQ(check_detector_spec("").status, SpecStatus::kOk);
  EXPECT_EQ(check_detector_spec("cra").status, SpecStatus::kOk);
  EXPECT_EQ(check_detector_spec("chi2").status, SpecStatus::kOk);
  EXPECT_EQ(check_detector_spec("ar").status, SpecStatus::kOk);
}

TEST(DetectorSpec, ParameterizedSpecsAreOk) {
  EXPECT_EQ(check_detector_spec("cra:clear=2").status, SpecStatus::kOk);
  EXPECT_EQ(check_detector_spec("chi2:threshold=9.21,window=16").status,
            SpecStatus::kOk);
  EXPECT_EQ(check_detector_spec("ar:order=6,consecutive=2").status,
            SpecStatus::kOk);
  EXPECT_EQ(
      check_detector_spec("fusion:members=cra+chi2,quorum=1").status,
      SpecStatus::kOk);
  EXPECT_EQ(check_detector_spec("fusion:members=cra+chi2+ar").status,
            SpecStatus::kOk);
}

TEST(DetectorSpec, UnknownBackendIsDistinctFromMalformed) {
  const SpecCheck unknown = check_detector_spec("lstm");
  EXPECT_EQ(unknown.status, SpecStatus::kUnknownBackend);
  EXPECT_NE(unknown.message.find("lstm"), std::string::npos);

  // A fusion member that names no backend is also kUnknownBackend.
  EXPECT_EQ(check_detector_spec("fusion:members=cra+lstm").status,
            SpecStatus::kUnknownBackend);

  EXPECT_EQ(check_detector_spec("chi2:threshold=").status,
            SpecStatus::kMalformed);
}

TEST(DetectorSpec, MalformedSpecsAreRejected) {
  const char* const bad[] = {
      "chi2:threshold",                    // no '='
      "chi2:=5",                           // empty key
      "chi2:threshold=5,threshold=6",      // duplicate key
      "chi2:bogus=1",                      // unknown key
      "chi2:threshold=abc",                // not a number
      "chi2:threshold=-1",                 // must be > 0
      "chi2:window=0",                     // counts are positive
      "chi2:window=-3",                    // negative count
      "chi2:forgetting=1.5",               // not in (0, 1)
      "chi2:power=2",                      // flag is 0 or 1
      "ar:order=17",                       // order capped at 16
      "fusion",                            // members required
      "fusion:members=+",                  // empty member list
      "fusion:members=cra+chi2,quorum=3",  // quorum > members
      "fusion:members=fusion",             // no nesting
      "bad name:x=1",                      // invalid backend name
  };
  for (const char* spec : bad) {
    EXPECT_EQ(check_detector_spec(spec).status, SpecStatus::kMalformed)
        << spec;
    EXPECT_THROW(static_cast<void>(make_detector(spec)),
                 std::invalid_argument)
        << spec;
  }
}

TEST(DetectorSpec, MakeDetectorBuildsTheNamedBackend) {
  EXPECT_EQ(make_detector("")->name(), "cra");
  EXPECT_EQ(make_detector("cra")->name(), "cra");
  EXPECT_EQ(make_detector("chi2")->name(), "chi2");
  EXPECT_EQ(make_detector("ar")->name(), "ar");
  EXPECT_EQ(make_detector("fusion:members=cra+chi2")->name(),
            "fusion(cra+chi2)");
  EXPECT_THROW(static_cast<void>(make_detector("lstm")),
               std::invalid_argument);
}

TEST(DetectorSpec, EmptySpecInheritsCraDefaults) {
  cra::DetectorOptions defaults;
  defaults.clear_after_silent_challenges = 3;
  auto detector = make_detector("", defaults);

  // Jam the first challenge, then require three silent ones to clear.
  Observation jammed;
  jammed.challenge_slot = true;
  jammed.receiver_nonzero = true;
  ASSERT_TRUE(detector->observe(jammed).under_attack);

  Observation silent;
  silent.challenge_slot = true;
  silent.step = 1;
  EXPECT_FALSE(detector->observe(silent).attack_cleared);
  silent.step = 2;
  EXPECT_FALSE(detector->observe(silent).attack_cleared);
  silent.step = 3;
  EXPECT_TRUE(detector->observe(silent).attack_cleared);
}

// --- backend behaviour -----------------------------------------------------

Observation echo(std::int64_t step, double d, double dv) {
  Observation obs;
  obs.step = step;
  obs.receiver_nonzero = true;
  obs.coherent_echo = true;
  obs.distance = units::Meters{d};
  obs.relative_velocity = units::MetersPerSecond{dv};
  return obs;
}

TEST(ChiSquareBackend, DetectsAJumpAndClearsAfterQuiet) {
  ChiSquareBackendOptions options;
  options.required_consecutive = 1;
  options.clear_after_quiet = 2;
  ChiSquareBackend detector(options);

  // Smooth approach: constant first difference, tiny residual variance.
  std::int64_t k = 0;
  for (; k < 20; ++k) {
    const auto v =
        detector.observe(echo(k, 100.0 - 0.5 * static_cast<double>(k), -0.5));
    EXPECT_FALSE(v.under_attack) << "step " << k;
  }

  // A counterfeit +30 m offset is one huge first-difference outlier.
  const double base = 100.0 - 0.5 * static_cast<double>(k);
  const auto started = detector.observe(echo(k, base + 30.0, -0.5));
  EXPECT_TRUE(started.under_attack);
  EXPECT_TRUE(started.attack_started);
  ASSERT_TRUE(detector.detection_step().has_value());
  EXPECT_EQ(*detector.detection_step(), k);

  // The offset stream is self-consistent from here on: residuals quiet
  // down and the attack clears after the debounce count (2 quiet samples).
  EXPECT_FALSE(
      detector.observe(echo(k + 1, base + 29.5, -0.5)).attack_cleared);
  EXPECT_TRUE(
      detector.observe(echo(k + 2, base + 29.0, -0.5)).attack_cleared);
  EXPECT_FALSE(detector.under_attack());
}

TEST(ChiSquareBackend, PowerAlarmWithoutEchoIsJamming) {
  ChiSquareBackend detector;  // required_consecutive = 2
  Observation jam;
  jam.receiver_nonzero = true;
  jam.coherent_echo = false;  // wideband power, no resolvable echo
  EXPECT_FALSE(detector.observe(jam).under_attack);
  jam.step = 1;
  EXPECT_TRUE(detector.observe(jam).under_attack);
}

TEST(ChiSquareBackend, ChallengeSlotsMakeNoClaim) {
  ChiSquareBackend detector;
  Observation slot;
  slot.challenge_slot = true;
  slot.receiver_nonzero = true;
  for (std::int64_t k = 0; k < 10; ++k) {
    slot.step = k;
    EXPECT_FALSE(detector.observe(slot).under_attack);
  }
}

TEST(ArResidualBackend, DetectsAJumpAgainstTheTrustedModel) {
  ArResidualBackendOptions options;
  options.required_consecutive = 2;
  ArResidualBackend detector(options);

  // Long clean run: the residual variance must forget the untrained-model
  // warm-up transients before a jump is a statistical outlier.
  std::int64_t k = 0;
  for (; k < 200; ++k) {
    const auto v =
        detector.observe(echo(k, 100.0 - 0.5 * static_cast<double>(k), -0.5));
    EXPECT_FALSE(v.under_attack) << "step " << k;
  }
  // The trusted AR model quarantines alarmed samples, so a held +40 m
  // offset keeps scoring against the clean-trajectory prediction: two
  // consecutive alarms declare the attack.
  const double base = 100.0 - 0.5 * static_cast<double>(k);
  static_cast<void>(detector.observe(echo(k, base + 40.0, -0.5)));
  const auto started = detector.observe(echo(k + 1, base + 39.5, -0.5));
  EXPECT_TRUE(started.under_attack);
  EXPECT_TRUE(started.attack_started);
}

TEST(FusionBackend, RequiresQuorumAndValidatesConstruction) {
  std::vector<DetectorBackendPtr> children;
  children.push_back(std::make_unique<ChiSquareBackend>());
  children.push_back(std::make_unique<CraBackend>());
  EXPECT_THROW(FusionBackend(std::move(children), 3), std::invalid_argument);
  EXPECT_THROW(FusionBackend({}, 1), std::invalid_argument);

  // quorum=1: either child's alarm trips the fusion. The CRA child alarms
  // on a non-silent challenge; the chi-square child stays quiet there.
  auto fusion = make_detector("fusion:members=cra+chi2,quorum=1");
  Observation jammed_challenge;
  jammed_challenge.challenge_slot = true;
  jammed_challenge.receiver_nonzero = true;
  const auto v = fusion->observe(jammed_challenge);
  EXPECT_TRUE(v.under_attack);
  EXPECT_TRUE(v.attack_started);

  // quorum=2: one vote is not enough.
  auto strict = make_detector("fusion:members=cra+chi2,quorum=2");
  EXPECT_FALSE(strict->observe(jammed_challenge).under_attack);
}

TEST(DetectorBackend, ScoringPopulatesStats) {
  auto detector = make_detector("chi2:consecutive=1,window=4");
  std::int64_t k = 0;
  for (; k < 12; ++k) {
    static_cast<void>(detector->observe_scored(
        echo(k, 100.0 - 0.5 * static_cast<double>(k), -0.5), false));
  }
  const double base = 100.0 - 0.5 * static_cast<double>(k);
  static_cast<void>(
      detector->observe_scored(echo(k, base + 30.0, -0.5), true));
  const cra::DetectionStats& stats = detector->stats();
  EXPECT_GT(stats.true_negatives, 0u);
  EXPECT_EQ(stats.true_positives, 1u);
  EXPECT_EQ(stats.false_positives, 0u);
}

// --- pipeline integration --------------------------------------------------

std::shared_ptr<const cra::ChallengeSchedule> schedule_with(
    std::vector<std::int64_t> steps) {
  return std::make_shared<cra::FixedChallengeSchedule>(std::move(steps));
}

radar::RadarMeasurement radar_echo(double d, double dv) {
  radar::RadarMeasurement m;
  m.estimate = radar::RangeRate{.distance_m = units::Meters{d},
                                .range_rate_mps = units::MetersPerSecond{dv}};
  m.coherent_echo = true;
  m.peak_to_average = 500.0;
  return m;
}

radar::RadarMeasurement radar_jam() {
  radar::RadarMeasurement m;
  m.coherent_echo = false;
  m.power_alarm = true;
  return m;
}

TEST(PipelineDetector, CraSpecIsIdenticalToDefault) {
  core::PipelineOptions spec_options;
  spec_options.detector_spec = "cra";
  auto with_spec =
      core::make_default_pipeline(schedule_with({5, 10, 15}), spec_options);
  auto with_default = core::make_default_pipeline(schedule_with({5, 10, 15}));
  EXPECT_EQ(with_spec.detector_name(), "cra");

  // Clean stream, a jammed challenge, holdover, then silent clearance: the
  // two pipelines must agree field for field at every step.
  for (std::int64_t k = 0; k < 20; ++k) {
    radar::RadarMeasurement m;
    if (k == 5) {
      m = radar_jam();  // challenge slot violated: detection
    } else if (k == 10 || k == 15) {
      m = radar::RadarMeasurement{};  // silent challenge: clearance path
    } else {
      m = radar_echo(100.0 - 0.5 * static_cast<double>(k), -0.5);
    }
    const auto a = with_spec.process(k, m);
    const auto b = with_default.process(k, m);
    EXPECT_EQ(a.under_attack, b.under_attack) << "step " << k;
    EXPECT_EQ(a.attack_started, b.attack_started) << "step " << k;
    EXPECT_EQ(a.attack_cleared, b.attack_cleared) << "step " << k;
    EXPECT_EQ(a.estimated, b.estimated) << "step " << k;
    EXPECT_EQ(a.degradation, b.degradation) << "step " << k;
    EXPECT_EQ(a.distance_m.value(), b.distance_m.value()) << "step " << k;
    EXPECT_EQ(a.relative_velocity_mps.value(),
              b.relative_velocity_mps.value())
        << "step " << k;
  }
}

TEST(PipelineDetector, BadSpecThrowsAtConstruction) {
  core::PipelineOptions options;
  options.detector_spec = "lstm";
  EXPECT_THROW(static_cast<void>(core::make_default_pipeline(
                   schedule_with({5}), options)),
               std::invalid_argument);
}

TEST(PipelineDetector, ChiSquareBackendDrivesTheDegradationMachine) {
  core::PipelineOptions options;
  options.detector_spec = "chi2:consecutive=1,window=4,clear=2";
  // No challenge slots in range: chi2 needs no challenge hardware.
  auto p = core::make_default_pipeline(schedule_with({1000}), options);
  EXPECT_EQ(p.detector_name(), "chi2");

  std::int64_t k = 0;
  for (; k < 12; ++k) {
    const auto safe =
        p.process(k, radar_echo(100.0 - 0.5 * static_cast<double>(k), -0.5));
    EXPECT_FALSE(safe.under_attack);
    EXPECT_EQ(safe.degradation, core::DegradationState::kClean);
  }
  const double base = 100.0 - 0.5 * static_cast<double>(k);
  const auto attacked = p.process(k, radar_echo(base + 30.0, -0.5));
  EXPECT_TRUE(attacked.under_attack);
  EXPECT_TRUE(attacked.attack_started);
  EXPECT_TRUE(attacked.estimated);  // holdover substitutes immediately
  EXPECT_EQ(attacked.degradation, core::DegradationState::kUnderAttack);
}

// The satellite regression: a detector that flaps attack -> quiet -> attack
// inside the clearance debounce window must restart the quiet count without
// clear/start churn, keep the holdover budget counting across the flap, and
// only release the latched safe stop once a trusted sample lands after
// genuine clearance.
TEST(PipelineDetector, FlappingDetectorRespectsClearanceDebounce) {
  core::PipelineOptions options;
  options.detector_spec = "chi2:consecutive=1,window=4,clear=3";
  options.health.max_holdover_steps = 4;
  auto p = core::make_default_pipeline(schedule_with({1000}), options);

  std::int64_t k = 0;
  for (; k < 12; ++k) {
    static_cast<void>(
        p.process(k, radar_echo(100.0 - 0.5 * static_cast<double>(k), -0.5)));
  }
  const double base = 100.0 - 0.5 * static_cast<double>(k);

  // Attack: one outlier declares it (consecutive=1).
  ASSERT_TRUE(p.process(k, radar_echo(base + 30.0, -0.5)).under_attack);

  // One quiet sample is NOT enough to clear (clear=3 debounce)...
  const auto quiet1 = p.process(k + 1, radar_echo(base + 29.5, -0.5));
  EXPECT_FALSE(quiet1.attack_cleared);
  EXPECT_TRUE(quiet1.under_attack);

  // ...and a fresh outlier inside the window restarts the quiet count
  // without ever leaving the attacked state (no clear/start churn).
  const auto flap = p.process(k + 2, radar_echo(base - 10.0, -0.5));
  EXPECT_TRUE(flap.under_attack);
  EXPECT_FALSE(flap.attack_started) << "still the same attack";
  EXPECT_FALSE(flap.attack_cleared);

  // The holdover budget keeps counting across the flap: with
  // max_holdover_steps=4 the degraded safe stop latches before the clear=3
  // debounce can possibly be satisfied.
  const auto quiet2 = p.process(k + 3, radar_echo(base - 10.0, -0.5));
  EXPECT_FALSE(quiet2.attack_cleared);
  const auto quiet3 = p.process(k + 4, radar_echo(base - 10.5, -0.5));
  EXPECT_FALSE(quiet3.attack_cleared);
  EXPECT_TRUE(quiet2.safe_stop || quiet3.safe_stop);
  EXPECT_GE(p.health_stats().safe_stop_entries, 1u);

  // Clearance lands on the third consecutive quiet sample; from the next
  // trusted sample on, the attack and the latched safe stop are both gone.
  const auto cleared = p.process(k + 5, radar_echo(base - 11.0, -0.5));
  EXPECT_TRUE(cleared.attack_cleared);
  const auto released = p.process(k + 6, radar_echo(base - 11.5, -0.5));
  EXPECT_FALSE(released.under_attack);
  EXPECT_FALSE(released.safe_stop);
  EXPECT_EQ(released.degradation, core::DegradationState::kClean);
}

}  // namespace
}  // namespace safe::detect
