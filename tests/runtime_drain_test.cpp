// ThreadPool::drain() contract: completes queued work without accepting
// new submissions, is idempotent, and is a safe no-op after shutdown().
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "runtime/thread_pool.hpp"

namespace {

using safe::runtime::ThreadPool;

TEST(ThreadPoolDrain, CompletesQueuedWorkThenRefusesNew) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      done.fetch_add(1);
    });
  }
  pool.drain();
  EXPECT_EQ(done.load(), 64);
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  EXPECT_THROW((void)pool.try_submit([] {}), std::runtime_error);
}

TEST(ThreadPoolDrain, DoubleDrainIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.drain();
  pool.drain();  // must not hang or throw
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolDrain, DrainAfterShutdownIsANoOp) {
  ThreadPool pool(2);
  pool.submit([] {});
  pool.shutdown();
  pool.drain();  // workers already joined; must return immediately
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPoolDrain, WorkersStayAliveForShutdown) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit([&done] { done.fetch_add(1); });
  pool.drain();
  EXPECT_EQ(done.load(), 1);
  // Errors stashed before the drain stay retrievable.
  pool.shutdown();
  EXPECT_EQ(pool.size(), 2u);
}

TEST(ThreadPoolDrain, UnblocksAWaitingSubmitter) {
  // A submitter blocked on full queues must wake and throw once drain
  // begins, instead of deadlocking against workers that will never free
  // enough space for it.
  ThreadPool pool(1, /*queue_capacity=*/1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  pool.submit([&started, &release] {
    started.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Only fill the queue once the worker is pinned inside the first task;
  // otherwise that task may still be queued and the fill races with it.
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  while (pool.try_submit([] {})) {
  }
  std::atomic<bool> threw{false};
  std::thread submitter([&pool, &threw] {
    try {
      pool.submit([] {});
    } catch (const std::runtime_error&) {
      threw.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread drainer([&pool] { pool.drain(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true);
  drainer.join();
  submitter.join();
  EXPECT_TRUE(threw.load());
}

}  // namespace
