// Challenge-response authentication vs the spoofing adversary suite:
// closed-loop detection latency as a function of the attacker's
// challenge-replay capability (DESIGN.md §17).
//
// The paper's CRA catches any attacker that radiates while the probe is
// suppressed. The entrainment attacker's replay knob `k` controls exactly
// that footprint: k = 0 mirrors the probe pattern perfectly and blinds the
// consistency check, leaving only the rx-power test (and, failing that,
// the collision).
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "core/scenario.hpp"

namespace {

using namespace safe;

core::CarFollowingResult run_with_attack(const std::string& spec,
                                         std::uint64_t seed = 1) {
  core::ScenarioOptions o;
  o.attack_spec = spec;
  o.estimator = radar::BeatEstimator::kPeriodogram;
  o.seed = seed;
  return core::make_paper_scenario(o).run();
}

// Paper challenge schedule: {15, 50, 175}, then a tail at 182, 189, 196, ...
// The attack window opens at k = 182 (a challenge slot).
constexpr std::int64_t kFirstChallenge = 182;
constexpr std::int64_t kSecondChallenge = 189;

TEST(CraVsReplay, SpoofRadiatesIntoTheOpeningChallenge) {
  // The phase-coherent spoofer keeps its replay chain running during
  // challenge slots, so the very first challenge inside the window sees a
  // counterfeit echo where silence was expected.
  const auto result = run_with_attack("spoof:coherence=0.9");
  ASSERT_TRUE(result.detection_step.has_value());
  EXPECT_EQ(*result.detection_step, kFirstChallenge);
  EXPECT_FALSE(result.collided);
}

TEST(CraVsReplay, ChirpRogueRadarIsCaughtLikewise) {
  const auto result = run_with_attack("chirp:slope=1.00000000002");
  ASSERT_TRUE(result.detection_step.has_value());
  EXPECT_EQ(*result.detection_step, kFirstChallenge);
}

TEST(CraVsReplay, AcquisitionDelayPushesDetectionPastTheFirstChallenge) {
  // A free-running entrainment attacker is invisible while it listens: the
  // opening challenge at k = 182 passes clean (and is probe-off, so it does
  // not count toward acquisition). Lock-on completes at k = 185 and the
  // next challenge catches the counterfeit.
  const auto result = run_with_attack("entrain:acquire=3");
  ASSERT_TRUE(result.detection_step.has_value());
  EXPECT_EQ(*result.detection_step, kSecondChallenge);
}

TEST(CraVsReplay, DelayedReplayIsStillCaught) {
  // replay = 1 echoes the probe pattern one slot late: at a challenge slot
  // the probe one slot earlier was on, so the attacker radiates into the
  // silence and the consistency check fires.
  const auto result = run_with_attack("entrain:acquire=3,replay=1");
  ASSERT_TRUE(result.detection_step.has_value());
  EXPECT_EQ(*result.detection_step, kSecondChallenge);
}

TEST(CraVsReplay, PerfectReplayBlindsCraAndTheVehicleCollides) {
  // replay = 0, no leakage: the attacker transmits exactly when the probe is
  // on, so every challenge sees the expected silence and every probe-on
  // epoch sees a (counterfeit) echo. CRA never fires and the +6 m range lie
  // rides through the defended pipeline into a collision — the breaking
  // point the bench's P(detect) < 1.0 cell reports.
  const auto result = run_with_attack("entrain:acquire=3,replay=0");
  EXPECT_FALSE(result.detection_step.has_value());
  EXPECT_TRUE(result.collided);
}

TEST(CraVsReplay, PeriodMatchedReplayAlsoEvades) {
  // replay = 7 equals the challenge tail period: probes seven slots before a
  // tail challenge are themselves challenges, so the delayed mirror is
  // silent at every challenge — structurally equivalent to k = 0 against a
  // periodic schedule. (A PRBS-gated schedule breaks this; the spoof-grid
  // bench sweeps that axis.)
  const auto result = run_with_attack("entrain:acquire=3,replay=7");
  EXPECT_FALSE(result.detection_step.has_value());
}

TEST(CraVsReplay, TransmitterLeakageRecoversDetection) {
  // Same perfect replay, but the locked transmitter's carrier leakage lifts
  // the challenge-slot noise floor: Algorithm 2's rx-power test catches what
  // the consistency check cannot.
  const auto result = run_with_attack("entrain:acquire=3,replay=0,leak=15");
  ASSERT_TRUE(result.detection_step.has_value());
  EXPECT_EQ(*result.detection_step, kSecondChallenge);
  EXPECT_FALSE(result.collided);
}

TEST(CraVsReplay, EntrainmentTimelineIsReproducibleFromSeed) {
  // Determinism regression (tools/lint/check_determinism.py covers the
  // sources; this covers the closed loop): same spec + seed must reproduce
  // the alarm timeline and the measurement trace bit-for-bit, jitter
  // included.
  const std::string spec = "entrain:acquire=3,jitter=0.5,replay=1,leak=2";
  const auto a = run_with_attack(spec, /*seed=*/7);
  const auto b = run_with_attack(spec, /*seed=*/7);
  EXPECT_EQ(a.detection_step, b.detection_step);
  EXPECT_EQ(a.collision_step, b.collision_step);
  EXPECT_EQ(a.trace.column("under_attack"), b.trace.column("under_attack"));
  EXPECT_EQ(a.trace.column("meas_gap_m"), b.trace.column("meas_gap_m"));
}

}  // namespace
