"""Determinism check: the reproducibility contract, mechanically enforced.

Every module on the parity-critical path — the pipeline that must produce
byte-identical output for a given seed (DESIGN.md §2, §12) — is scanned for
the classic sources of run-to-run drift:

  wall-clock        std::chrono::system_clock, std::time / time(NULL),
                    gettimeofday, localtime/gmtime. Wall time changes
                    between runs; deterministic code must take timestamps
                    as inputs. Monotonic clocks (steady_clock, and
                    telemetry::now_ns() built on it) are allowed by design:
                    event loops and timeout math need them and they never
                    feed deterministic output.
  nondeterministic-seed
                    std::random_device — entropy that cannot be replayed.
                    Seeds come from the campaign SplitMix64 derivation
                    (runtime/seed.hpp), never from the environment.
  c-rand            rand()/srand(): hidden global state, unspecified
                    algorithm, not reproducible across libcs.
  unseeded-engine   A <random> engine constructed with no seed argument
                    (e.g. `std::mt19937 rng;`). The default seed is fixed
                    but invisible at the call site; every engine must be
                    constructed from a derived seed so the provenance is
                    explicit.
  unordered-iter    A range-for directly over a std::unordered_map/set
                    declared in the same file. Iteration order is
                    unspecified and libc++/libstdc++ differ, so any output
                    produced this way is not portable-deterministic.
                    Collect-and-sort first, or suppress with
                    `lint: allow(unordered-iter)` plus a comment proving
                    order cannot reach output.

Scope: src/attack, src/core, src/dsp, src/estimation, src/cra, src/detect,
src/fault, src/sim, src/platoon and src/runtime in full, plus the
serve-layer files on the byte-parity path
(session, trace_source, wire). The rest of src/serve (event loop, chaos
proxy, load generator) is scheduling-dependent by design and exempt.

Deliberate exceptions are suppressed per line with `lint: allow(<rule>)`
and must carry a justifying comment; the selftest pins both directions.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterator

from framework import CheckContext, Finding, register

DET_DIRS = (
    "src/attack",
    "src/core",
    "src/dsp",
    "src/estimation",
    "src/cra",
    "src/detect",
    "src/fault",
    "src/sim",
    "src/platoon",
    "src/runtime",
)

#: serve-layer files whose output is under the byte-parity contract.
DET_SERVE_STEMS = ("session", "trace_source", "wire")

WALL_CLOCK = re.compile(
    r"\bsystem_clock\b"
    r"|\bgettimeofday\b"
    r"|\bstd::time\s*\("
    r"|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
    r"|\blocaltime\b"
    r"|\bgmtime\b"
)

RANDOM_DEVICE = re.compile(r"\brandom_device\b")

C_RAND = re.compile(r"\b(?:std::)?(?:s)?rand\s*\(")

# A <random> engine declared with no constructor argument: `mt19937 rng;`
# or `mt19937 rng{};`. An engine fed a seed (`mt19937 rng(seed)`) does not
# match.
UNSEEDED_ENGINE = re.compile(
    r"\b(?:std::)?"
    r"(mt19937(?:_64)?|minstd_rand0?|default_random_engine"
    r"|ranlux(?:24|48)(?:_base)?|knuth_b)"
    r"\s+[A-Za-z_][A-Za-z0-9_]*\s*(?:;|\{\s*\})"
)

# Declaration of an unordered container, capturing the variable name. One
# line only — a multi-line declaration escapes the heuristic, which is the
# accepted precision/complexity trade-off for a regex lint.
UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s*"
    r"(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*[;{=]"
)

RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*:\s*(?P<seq>[A-Za-z_][A-Za-z0-9_]*)\s*\)")


def _in_scope(ctx: CheckContext, path: Path) -> bool:
    if ctx.under(path, DET_DIRS):
        return True
    if ctx.under(path, ("src/serve",)):
        stem = path.name.split(".")[0]
        return stem in DET_SERVE_STEMS
    return False


@register("determinism", "wall clocks, ambient entropy, unordered iteration")
def check_determinism(ctx: CheckContext) -> Iterator[Finding]:
    for path in ctx.iter_files(("src",), (".hpp", ".cpp", ".h", ".cc")):
        if not _in_scope(ctx, path):
            continue
        lines = list(ctx.lines(path))

        unordered_names = set()
        for line in lines:
            for m in UNORDERED_DECL.finditer(line.text):
                unordered_names.add(m.group("name"))

        for line in lines:
            if line.is_comment:
                continue
            if WALL_CLOCK.search(line.text) and not line.allows("wall-clock"):
                yield Finding(
                    line.rel, line.lineno, "wall-clock",
                    "wall-clock time in a deterministic module; take "
                    "timestamps as inputs (monotonic clocks are exempt)",
                    "determinism",
                )
            if RANDOM_DEVICE.search(line.text) and not line.allows(
                "nondeterministic-seed"
            ):
                yield Finding(
                    line.rel, line.lineno, "nondeterministic-seed",
                    "std::random_device cannot be replayed; derive seeds "
                    "with runtime/seed.hpp",
                    "determinism",
                )
            if C_RAND.search(line.text) and not line.allows("c-rand"):
                yield Finding(
                    line.rel, line.lineno, "c-rand",
                    "rand()/srand() is hidden global state with an "
                    "unspecified algorithm; use a seeded <random> engine "
                    "or runtime::SplitMix64",
                    "determinism",
                )
            m = UNSEEDED_ENGINE.search(line.text)
            if m and not line.allows("unseeded-engine"):
                yield Finding(
                    line.rel, line.lineno, "unseeded-engine",
                    f"'{m.group(1)}' constructed without a seed; pass a "
                    "seed derived via runtime/seed.hpp",
                    "determinism",
                )
            m = RANGE_FOR.search(line.text)
            if (
                m
                and m.group("seq") in unordered_names
                and not line.allows("unordered-iter")
            ):
                yield Finding(
                    line.rel, line.lineno, "unordered-iter",
                    f"range-for over unordered container "
                    f"'{m.group('seq')}': iteration order is unspecified; "
                    "collect and sort before producing output",
                    "determinism",
                )
