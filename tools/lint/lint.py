#!/usr/bin/env python3
"""Project lint driver: runs every registered check over the repository.

Usage:
  tools/lint/lint.py                 # all checks, text output
  tools/lint/lint.py --check units   # one check
  tools/lint/lint.py --json          # machine-readable findings
  tools/lint/lint.py --list          # available checks

Exit status: 0 clean, 1 findings, 2 usage error. Paths resolve relative to
the repository root, so it runs from anywhere; --root points it at another
tree (the selftest uses this against fixtures).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import check_determinism  # noqa: F401  (registers on import)
import check_units  # noqa: F401
from framework import all_checks, get_check, run_checks

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="tree to scan (default: repository root)")
    parser.add_argument("--check", action="append", dest="checks",
                        metavar="NAME", help="run only this check "
                        "(repeatable; default: all)")
    parser.add_argument("--json", action="store_true",
                        help="JSON findings on stdout")
    parser.add_argument("--list", action="store_true",
                        help="list available checks and exit")
    args = parser.parse_args(argv)

    if args.list:
        for check in all_checks():
            print(f"{check.name}: {check.description}")
        return 0

    if args.checks:
        try:
            selected = [get_check(name) for name in args.checks]
        except KeyError as e:
            print(f"unknown check: {e.args[0]}", file=sys.stderr)
            return 2
    else:
        selected = all_checks()

    return run_checks(args.root.resolve(), selected, as_json=args.json)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
