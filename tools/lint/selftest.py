#!/usr/bin/env python3
"""Self-test for the lint framework: pins each check against fixtures.

Every check has two fixture trees under tests/fixtures/<check>/:

  flag/  a mini-repo where each of the check's rules must fire exactly the
         expected number of times — proving the patterns still match;
  pass/  the clean counterparts: correct idioms, per-rule `lint: allow(...)`
         suppressions, the legacy `lint-units: allow` marker, and files
         outside the check's scope containing would-be violations — proving
         precision (no finding may appear).

Run directly or via ctest (`lint.selftest`). Exit 0 on success, 1 with a
diff of expected vs. actual findings on failure.
"""

from __future__ import annotations

import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import check_determinism  # noqa: F401  (registers on import)
import check_units  # noqa: F401
from framework import CheckContext, get_check

FIXTURES = Path(__file__).resolve().parent / "tests" / "fixtures"

#: check -> expected (path, rule) multiset over its flag/ fixture tree.
EXPECTED_FLAG = {
    "units": Counter(
        {
            ("src/estimation/bad.hpp", "magic-constant"): 1,
            ("src/estimation/bad.hpp", "db-pow"): 1,
            ("src/estimation/bad.hpp", "raw-double-name"): 1,
            ("src/estimation/bad.hpp", "raw-double-unit"): 1,
        }
    ),
    "determinism": Counter(
        {
            ("src/core/bad.cpp", "wall-clock"): 1,
            ("src/core/bad.cpp", "nondeterministic-seed"): 1,
            ("src/core/bad.cpp", "c-rand"): 1,
            ("src/core/bad.cpp", "unseeded-engine"): 1,
            ("src/core/bad.cpp", "unordered-iter"): 1,
        }
    ),
}


def run(check_name: str, tree: Path) -> Counter:
    check = get_check(check_name)
    found = Counter()
    for finding in check.fn(CheckContext(tree)):
        found[(finding.path, finding.rule)] += 1
    return found


def main() -> int:
    failures: list[str] = []
    for check_name, expected in sorted(EXPECTED_FLAG.items()):
        flag_tree = FIXTURES / check_name / "flag"
        pass_tree = FIXTURES / check_name / "pass"
        if not flag_tree.is_dir() or not pass_tree.is_dir():
            failures.append(f"{check_name}: missing fixture trees")
            continue

        got = run(check_name, flag_tree)
        if got != expected:
            missing = expected - got
            surplus = got - expected
            if missing:
                failures.append(
                    f"{check_name}/flag: expected findings not produced: "
                    f"{sorted(missing)}"
                )
            if surplus:
                failures.append(
                    f"{check_name}/flag: unexpected findings: "
                    f"{sorted(surplus)}"
                )

        clean = run(check_name, pass_tree)
        if clean:
            failures.append(
                f"{check_name}/pass: must be clean but found: "
                f"{sorted(clean)}"
            )

    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"\nlint selftest: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print(f"lint selftest: {len(EXPECTED_FLAG)} check(s) pinned, all green")
    return 0


if __name__ == "__main__":
    sys.exit(main())
