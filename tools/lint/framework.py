"""Shared infrastructure for the project lint checks (DESIGN.md §14).

A check is a callable over a repository tree that yields findings. The
framework owns everything the checks share, so each check is only its
patterns and its scope:

  * the file walker (sorted, suffix-filtered, rooted anywhere — the
    selftest points it at fixture trees that mimic the repo layout);
  * per-line suppression comments: `lint: allow(<rule>)` silences exactly
    one rule on that line, keeping deliberate exceptions greppable and
    reviewable (the legacy `lint-units: allow` marker silences every rule
    and remains honored);
  * finding aggregation and the text / JSON output formats;
  * exit-status policy: 0 clean, 1 findings, 2 usage error.

Checks register with @register; tools/lint/lint.py is the CLI entry and
tools/lint/selftest.py pins each check's behavior against fixtures.
"""

from __future__ import annotations

import dataclasses
import json
import re
import sys
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: Silences every rule on the line (historic marker, kept so existing
#: annotated sources stay valid).
LEGACY_ALLOW_MARKER = "lint-units: allow"

#: `lint: allow(rule-name)` — silences one named rule on that line.
ALLOW_RE = re.compile(r"lint:\s*allow\(([A-Za-z0-9_-]+)\)")

PURE_COMMENT = re.compile(r"^\s*(//|\*|/\*)")


@dataclasses.dataclass(frozen=True)
class Finding:
    path: str  #: repo-relative posix path
    line: int  #: 1-based
    rule: str
    message: str
    check: str

    def text(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_json(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class SourceLine:
    """One scannable line: suppression and comment state precomputed."""

    path: Path
    rel: str
    lineno: int
    text: str
    allow_all: bool
    allowed_rules: frozenset[str]
    is_comment: bool

    def allows(self, rule: str) -> bool:
        return self.allow_all or rule in self.allowed_rules


class CheckContext:
    """Scanning utilities bound to one repository (or fixture) root."""

    def __init__(self, root: Path):
        self.root = root

    def rel(self, path: Path) -> str:
        return path.relative_to(self.root).as_posix()

    def iter_files(
        self, dirs: tuple[str, ...], suffixes: tuple[str, ...]
    ) -> Iterator[Path]:
        for top in dirs:
            base = self.root / top
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in suffixes and path.is_file():
                    yield path

    def under(self, path: Path, tops: tuple[str, ...]) -> bool:
        r = self.rel(path)
        return any(r == t or r.startswith(t + "/") for t in tops)

    def lines(self, path: Path) -> Iterator[SourceLine]:
        rel = self.rel(path)
        for lineno, text in enumerate(path.read_text().splitlines(), 1):
            yield SourceLine(
                path=path,
                rel=rel,
                lineno=lineno,
                text=text,
                allow_all=LEGACY_ALLOW_MARKER in text,
                allowed_rules=frozenset(ALLOW_RE.findall(text)),
                is_comment=bool(PURE_COMMENT.match(text)),
            )


#: A check takes a context and yields findings.
CheckFn = Callable[[CheckContext], Iterable[Finding]]


@dataclasses.dataclass(frozen=True)
class Check:
    name: str
    description: str
    fn: CheckFn


_REGISTRY: dict[str, Check] = {}


def register(name: str, description: str):
    """Decorator: adds a check to the global registry."""

    def wrap(fn: CheckFn) -> CheckFn:
        if name in _REGISTRY:
            raise ValueError(f"duplicate check name: {name}")
        _REGISTRY[name] = Check(name=name, description=description, fn=fn)
        return fn

    return wrap


def all_checks() -> list[Check]:
    return [c for _, c in sorted(_REGISTRY.items())]


def get_check(name: str) -> Check:
    return _REGISTRY[name]


def run_checks(
    root: Path,
    checks: Iterable[Check],
    *,
    as_json: bool = False,
    out=sys.stdout,
    err=sys.stderr,
) -> int:
    """Runs `checks` against `root`; prints findings; returns exit status."""
    findings: list[Finding] = []
    for check in checks:
        findings.extend(check.fn(CheckContext(root)))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if as_json:
        json.dump(
            {
                "clean": not findings,
                "findings": [f.as_json() for f in findings],
            },
            out,
            indent=2,
        )
        out.write("\n")
    else:
        for f in findings:
            print(f.text(), file=out)
        if findings:
            print(f"\nlint: {len(findings)} finding(s)", file=err)
        else:
            print("lint: clean", file=out)
    return 1 if findings else 0
