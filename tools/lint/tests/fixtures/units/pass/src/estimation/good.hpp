// Fixture: the clean shapes next to each rule's violation, plus one
// suppressed occurrence per suppression flavor. None may produce findings.
#pragma once

namespace fixture {

constexpr double kSpeedOfLight = 299792458.0;  // lint: allow(magic-constant)
constexpr double kLegacy = 0.44704;  // lint-units: allow (legacy marker)

// A comment mentioning double target_distance does not fire header rules.
struct Echo {
  int distance_bins;     // not a double: no rule applies
  double gain_per_m;     // _per_ compound: a ratio, exempt by design
  double offset_m(int);  // unit-suffixed function declaration, exempt
};

}  // namespace fixture
