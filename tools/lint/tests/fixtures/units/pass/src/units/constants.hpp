// Fixture: src/units/ owns the conversion constants; nothing here may be
// flagged even though every banned literal appears.
#pragma once

namespace fixture::units {

constexpr double kSpeedOfLight = 299792458.0;
constexpr double kMphToMps = 0.44704;
constexpr double kMpsToMph = 2.23694;

}  // namespace fixture::units
