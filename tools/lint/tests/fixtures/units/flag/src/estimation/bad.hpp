// Fixture: every units rule must fire exactly once in this header.
#pragma once

namespace fixture {

constexpr double kC = 299792458.0;  // magic-constant

inline double to_linear(double db) {
  return pow(10.0, db / 10.0);  // db-pow
}

struct Echo {
  double target_distance;  // raw-double-name
  double window_s;         // raw-double-unit
};

}  // namespace fixture
