// Fixture: every determinism rule must fire exactly once in this file.
#include <chrono>
#include <random>
#include <unordered_map>

namespace fixture {

void drift() {
  auto wall = std::chrono::system_clock::now();  // wall-clock
  (void)wall;
  std::random_device entropy;  // nondeterministic-seed
  (void)entropy;
  int r = rand();  // c-rand
  (void)r;
  std::mt19937_64 rng;  // unseeded-engine
  (void)rng;
  std::unordered_map<int, int> counts;
  for (const auto& kv : counts) {  // unordered-iter
    (void)kv;
  }
}

}  // namespace fixture
