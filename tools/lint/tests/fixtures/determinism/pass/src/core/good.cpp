// Fixture: deterministic idioms plus one suppressed occurrence per rule.
// None may produce findings.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <random>
#include <unordered_map>
#include <vector>

namespace fixture {

void clean(std::uint64_t seed) {
  // Monotonic clocks are allowed by design (event-loop timeouts).
  auto mono = std::chrono::steady_clock::now();
  (void)mono;
  // An engine fed an explicit seed is the required idiom.
  std::mt19937_64 rng(seed);
  (void)rng;
  // Ordered containers iterate deterministically.
  std::map<int, int> ordered;
  for (const auto& kv : ordered) (void)kv;
  // Collect-and-sort over an unordered container: the range-for is over
  // the sorted copy, not the unordered original.
  std::unordered_map<int, int> counts;
  std::vector<int> keys;
  keys.reserve(counts.size());
  for (auto it = counts.begin(); it != counts.end(); ++it) {
    keys.push_back(it->first);
  }
  std::sort(keys.begin(), keys.end());
  for (int k : keys) (void)k;
}

void suppressed() {
  auto boot = std::chrono::system_clock::now();  // lint: allow(wall-clock)
  (void)boot;
  std::random_device probe;  // lint: allow(nondeterministic-seed)
  (void)probe;
  int r = rand();  // lint: allow(c-rand)
  (void)r;
  std::mt19937_64 rng;  // lint: allow(unseeded-engine)
  (void)rng;
  std::unordered_map<int, int> counts;
  for (const auto& kv : counts) (void)kv;  // lint: allow(unordered-iter)
}

}  // namespace fixture
