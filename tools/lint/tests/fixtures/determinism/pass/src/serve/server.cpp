// Fixture: src/serve event-loop code is outside the determinism scope (only
// session/trace_source/wire are parity-critical), so nothing here may be
// flagged even though it uses wall clocks and ambient entropy.
#include <chrono>
#include <random>

namespace fixture {

void event_loop() {
  auto wall = std::chrono::system_clock::now();
  (void)wall;
  std::random_device entropy;
  (void)entropy;
}

}  // namespace fixture
