"""Unit-safety check: the dimensional-safety layer stays the single owner
of conversion constants and dB math (DESIGN.md "Dimensional safety").

Rules:
  magic-constant   Unit-conversion literals (speed of light, mph <-> m/s
                   factors) outside src/units/. Use units::kSpeedOfLight,
                   units::from_mph(), units::to_mph().
  db-pow           `std::pow(10, x / 10)`-style decibel math outside
                   src/units/. Use units::Decibels::to_linear() /
                   units::Decibels::from_linear().
  raw-double-name  A raw `double` parameter or member whose name says it is
                   a physical quantity (distance/delay/range/gap/speed/
                   velocity) in a public header. Use the strong types from
                   units/units.hpp so wrong-unit call sites fail to compile.
  raw-double-unit  A raw `double` parameter or member with a unit-suffixed
                   name (`_m`, `_s`, `_mps`, `_hz`, ...) in a public header.
                   Same fix as raw-double-name.

Exemptions, by design: src/units/ defines the constants and conversions;
src/dsp/ is the documented raw-double hot-loop layer (dimensionless samples
plus an explicit sample rate), so the header rules skip it.
"""

from __future__ import annotations

import re
from typing import Iterator

from framework import CheckContext, Finding, register

ALL_CODE_DIRS = ("src", "bench", "examples", "tests", "tools")
HEADER_RULE_DIRS = ("src",)

UNITS_DIR = "src/units"
HEADER_RULE_EXEMPT = (UNITS_DIR, "src/dsp")

#: The lint selftest fixtures contain deliberate violations; scanning them
#: from the real repo root would report the bait as findings.
FIXTURE_DIR = "tools/lint/tests"

# Unit-conversion literals that must only live in src/units/units.hpp.
# 299792458 (speed of light, m/s), 0.44704 (mph -> m/s), 2.23694 (m/s -> mph),
# 3.33564e-9 (1/c in s/m).
MAGIC_CONSTANT = re.compile(
    r"299\s*792\s*458"
    r"|2\.99792458e\+?8"
    r"|0\.44704"
    r"|2\.23694"
    r"|3\.33564e-9"
)

# std::pow(10, x) / pow(10.0, x): decibel math open-coded at a call site.
DB_POW = re.compile(r"\bpow\s*\(\s*10(\.0*)?\s*[,f]")

# Raw double named like a physical quantity (parameter or member).
RAW_DOUBLE_NAME = re.compile(
    r"\bdouble\s+[A-Za-z_]*"
    r"(distance|delay|range|gap|speed|velocity)"
    r"[A-Za-z0-9_]*"
)

# Raw double with a unit-suffixed identifier. Skips function declarations
# (identifier followed by `(`) and `_per_` compound gains, which are genuine
# ratios rather than single-dimension quantities.
RAW_DOUBLE_UNIT = re.compile(
    r"\bdouble\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*_(m|s|mps|mps2|hz|hzps|rad|db))"
    r"\b(?!\s*\()"
)


@register("units", "unit-conversion constants and raw-double quantities")
def check_units(ctx: CheckContext) -> Iterator[Finding]:
    # Rule family 1: constants and dB math, all translation units.
    for path in ctx.iter_files(ALL_CODE_DIRS, (".hpp", ".cpp", ".h", ".cc")):
        if ctx.under(path, (UNITS_DIR, FIXTURE_DIR)):
            continue
        for line in ctx.lines(path):
            if MAGIC_CONSTANT.search(line.text) and not line.allows(
                "magic-constant"
            ):
                yield Finding(
                    line.rel, line.lineno, "magic-constant",
                    "unit-conversion literal; use the constants/helpers in "
                    "units/units.hpp",
                    "units",
                )
            if DB_POW.search(line.text) and not line.allows("db-pow"):
                yield Finding(
                    line.rel, line.lineno, "db-pow",
                    "open-coded decibel conversion; use "
                    "units::Decibels::to_linear()/from_linear()",
                    "units",
                )

    # Rule family 2: raw-double quantities in public headers.
    for path in ctx.iter_files(HEADER_RULE_DIRS, (".hpp", ".h")):
        if ctx.under(path, HEADER_RULE_EXEMPT):
            continue
        for line in ctx.lines(path):
            if line.is_comment:
                continue
            m = RAW_DOUBLE_NAME.search(line.text)
            if m and not line.allows("raw-double-name"):
                yield Finding(
                    line.rel, line.lineno, "raw-double-name",
                    f"'{m.group(0)}' names a physical quantity; use the "
                    "strong types from units/units.hpp",
                    "units",
                )
                continue
            m = RAW_DOUBLE_UNIT.search(line.text)
            if (
                m
                and "_per_" not in m.group("name")
                and not line.allows("raw-double-unit")
            ):
                yield Finding(
                    line.rel, line.lineno, "raw-double-unit",
                    f"'double {m.group('name')}' has a unit-suffixed name; "
                    "use the strong types from units/units.hpp",
                    "units",
                )
