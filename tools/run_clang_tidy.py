#!/usr/bin/env python3
"""Run clang-tidy over every project translation unit in the compilation
database, in parallel, and fail if any check fires.

Thin stand-in for run-clang-tidy so the `lint` target does not depend on
which distribution package ships the helper script. Third-party and
generated files (anything outside src/, bench/, examples/, tests/, tools/)
are skipped; the check profile comes from the checked-in .clang-tidy.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
PROJECT_DIRS = ("src", "bench", "examples", "tests", "tools")


def project_sources(build_dir: Path) -> list[str]:
    database = build_dir / "compile_commands.json"
    if not database.is_file():
        sys.exit(f"run_clang_tidy: {database} not found; configure with "
                 "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first")
    files: list[str] = []
    for entry in json.loads(database.read_text()):
        path = Path(entry["file"])
        try:
            top = path.resolve().relative_to(REPO_ROOT).parts[0]
        except ValueError:
            continue
        if top in PROJECT_DIRS:
            files.append(str(path))
    return sorted(set(files))


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--build-dir", default="build", type=Path)
    parser.add_argument("--jobs", type=int,
                        default=max(os.cpu_count() or 1, 1))
    args = parser.parse_args(argv)

    files = project_sources(args.build_dir)
    if not files:
        sys.exit("run_clang_tidy: no project sources in the database")
    print(f"run_clang_tidy: {len(files)} translation units, "
          f"{args.jobs} jobs")

    def run_one(path: str) -> tuple[str, int, str]:
        proc = subprocess.run(
            [args.clang_tidy, "-p", str(args.build_dir), "--quiet", path],
            capture_output=True, text=True)
        return path, proc.returncode, proc.stdout + proc.stderr

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for path, code, output in pool.map(run_one, files):
            if code != 0:
                failures += 1
                rel = Path(path).resolve().relative_to(REPO_ROOT)
                print(f"--- {rel} ---\n{output}")
    if failures:
        print(f"run_clang_tidy: {failures} translation unit(s) failed",
              file=sys.stderr)
        return 1
    print("run_clang_tidy: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
