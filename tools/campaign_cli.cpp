// Monte Carlo campaign runner: expand a declarative spec into N randomized
// trials, execute them across a work-stealing thread pool, and stream the
// results to JSONL plus an aggregate summary. Output is bit-identical at
// any --jobs value (counter-based per-trial seeding + ordered sinks).
//
// Usage:
//   campaign_cli [--spec FILE | --spec 'k = v; ...'] [--trials N]
//                [--seed N] [--jobs N] [--out PATH|-] [--summary] [--quiet]
//
// Example: a 1000-trial mixed-attack campaign over randomized onsets,
// durations, and jammer powers:
//   campaign_cli --trials 1000 --jobs 8 --out campaign.jsonl --summary
//     --spec 'attack = none|dos|delay; onset = uniform(60,240);
//             duration = uniform(30,120); jammer_power_w = loguniform(0.01,1);
//             estimator = fft; hardened = true'
//
// `--spec help` prints the spec mini-language.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "runtime/campaign.hpp"
#include "runtime/sink.hpp"
#include "runtime/spec.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--spec FILE|'k = v; ...'|help] [--trials N] [--seed N]\n"
               "       [--jobs N] [--out PATH|-] [--summary] [--quiet]\n"
               "\n"
               "  --spec     campaign spec: a file path or an inline spec\n"
               "             string (`--spec help` documents the language)\n"
               "  --trials   override the spec's trial count\n"
               "  --seed     override the spec's master seed\n"
               "  --jobs     worker threads (default: hardware concurrency)\n"
               "  --out      JSONL trial records to PATH (`-` = stdout)\n"
               "  --summary  print the aggregate summary block\n"
               "  --quiet    suppress the progress line\n";
  std::exit(2);
}

/// A `--spec` value is a file when it names one; otherwise it is parsed as
/// an inline spec string.
std::string load_spec_text(const std::string& arg) {
  std::ifstream file(arg);
  if (!file) return arg;
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace safe;

  std::string spec_text;
  std::optional<std::size_t> trials_override;
  std::optional<std::uint64_t> seed_override;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  std::string out_path;
  bool summary = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--spec") {
      const std::string value = next();
      if (value == "help") {
        std::cout << runtime::campaign_spec_help();
        return 0;
      }
      spec_text = load_spec_text(value);
    } else if (arg == "--trials") {
      trials_override = std::stoull(next());
    } else if (arg == "--seed") {
      seed_override = std::stoull(next());
    } else if (arg == "--jobs") {
      jobs = std::stoull(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage(argv[0]);
    }
  }

  runtime::CampaignSpec spec;
  try {
    spec = runtime::parse_campaign_spec(spec_text);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n\n" << runtime::campaign_spec_help();
    return 2;
  }
  if (trials_override) spec.trials = *trials_override;
  if (seed_override) spec.seed = *seed_override;

  std::ofstream out_file;
  std::unique_ptr<runtime::JsonlWriter> writer;
  if (!out_path.empty()) {
    if (out_path == "-") {
      writer = std::make_unique<runtime::JsonlWriter>(std::cout);
    } else {
      out_file.open(out_path);
      if (!out_file) {
        std::cerr << "cannot open " << out_path << "\n";
        return 1;
      }
      writer = std::make_unique<runtime::JsonlWriter>(out_file);
    }
  }
  std::vector<runtime::TrialSink*> sinks;
  if (writer) sinks.push_back(writer.get());

  const runtime::Campaign campaign(std::move(spec));
  const runtime::CampaignResult result = campaign.run(jobs, sinks);

  if (!quiet) {
    std::fprintf(stderr,
                 "campaign: %zu trial(s) on %zu job(s) in %.2f s (%.1f "
                 "trials/s, grid of %zu cell(s))\n",
                 result.trials, result.jobs, result.wall_s.value(),
                 result.wall_s.value() > 0.0
                     ? static_cast<double>(result.trials) /
                           result.wall_s.value()
                     : 0.0,
                 campaign.spec().grid_cells());
  }
  if (summary) {
    std::cout << runtime::format_summary(result.summary);
  }
  return result.summary.errors == 0 ? 0 : 1;
}
