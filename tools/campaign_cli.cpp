// Monte Carlo campaign runner: expand a declarative spec into N randomized
// trials, execute them across a work-stealing thread pool, and stream the
// results to JSONL plus an aggregate summary. Output is bit-identical at
// any --jobs value (counter-based per-trial seeding + ordered sinks).
//
// Usage:
//   campaign_cli [--spec FILE | --spec 'k = v; ...'] [--trials N]
//                [--seed N] [--jobs N] [--detector SPEC[|SPEC...]]
//                [--platoon SPEC[|SPEC...]]
//                [--out PATH|-] [--summary] [--quiet]
//                [--metrics-out PATH] [--trace-out PATH]
//                [--trace-detail coarse|fine] [--progress]
//
// Telemetry (all off by default; recording never perturbs results — JSONL
// stdout stays bit-identical with it on):
//   --metrics-out writes the merged counter/histogram dump as JSONL,
//   --trace-out writes a Chrome trace_event file (load in chrome://tracing
//   or https://ui.perfetto.dev), and --progress prints live trials/sec and
//   ETA to stderr from the telemetry counters.
//
// Example: a 1000-trial mixed-attack campaign over randomized onsets,
// durations, and jammer powers:
//   campaign_cli --trials 1000 --jobs 8 --out campaign.jsonl --summary
//     --spec 'attack = none|dos|delay; onset = uniform(60,240);
//             duration = uniform(30,120); jammer_power_w = loguniform(0.01,1);
//             estimator = fft; hardened = true'
//
// `--spec help` prints the spec mini-language.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "attack/spec.hpp"
#include "detect/spec.hpp"
#include "platoon/spec.hpp"
#include "runtime/campaign.hpp"
#include "runtime/sink.hpp"
#include "runtime/spec.hpp"
#include "telemetry/telemetry.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--spec FILE|'k = v; ...'|help] [--trials N] [--seed N]\n"
               "       [--jobs N] [--detector SPEC[|SPEC...]|help]\n"
               "       [--platoon SPEC[|SPEC...]|help]\n"
               "       [--attack SPEC[|SPEC...]|help]\n"
               "       [--out PATH|-] [--summary] [--quiet]\n"
               "       [--metrics-out PATH] [--trace-out PATH]\n"
               "       [--trace-detail coarse|fine] [--progress]\n"
               "\n"
               "  --spec         campaign spec: a file path or an inline spec\n"
               "                 string (`--spec help` documents the language)\n"
               "  --trials       override the spec's trial count\n"
               "  --seed         override the spec's master seed\n"
               "  --jobs         worker threads (default: hardware concurrency)\n"
               "  --detector     detection backend(s); `|`-separated values\n"
               "                 form a grid axis like the spec's `detector`\n"
               "                 key (`--detector help` documents the specs)\n"
               "  --platoon      platoon spec(s); `|`-separated values form a\n"
               "                 grid axis like the spec's `platoon` key\n"
               "                 (`--platoon help` documents the language;\n"
               "                 `none` = the single leader-follower pair)\n"
               "  --attack       attack spec(s); `|`-separated values form a\n"
               "                 grid axis like the spec's `attack` key\n"
               "                 (`--attack help` documents the language)\n"
               "  --out          JSONL trial records to PATH (`-` = stdout)\n"
               "  --summary      print the aggregate summary block\n"
               "  --quiet        suppress the progress line\n"
               "  --metrics-out  merged telemetry metrics as JSONL to PATH\n"
               "  --trace-out    Chrome trace_event JSON to PATH (loadable in\n"
               "                 chrome://tracing / Perfetto)\n"
               "  --trace-detail coarse (default: trial spans + events) or\n"
               "                 fine (adds per-sample pipeline stage spans)\n"
               "  --progress     live trials/sec + ETA on stderr\n";
  std::exit(2);
}

/// Polls the live campaign.trials counter and repaints one stderr line;
/// entirely passive — readers never touch the recording shards' hot path.
class ProgressReporter {
 public:
  explicit ProgressReporter(std::uint64_t total)
      : total_(total),
        trials_id_(safe::telemetry::counter("campaign.trials")),
        base_(safe::telemetry::counter_value(trials_id_)),
        thread_([this] { loop(); }) {}

  ~ProgressReporter() {
    done_.store(true);
    thread_.join();
    report(safe::telemetry::counter_value(trials_id_) - base_);
    std::fputc('\n', stderr);
  }

 private:
  void loop() {
    while (!done_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
      report(safe::telemetry::counter_value(trials_id_) - base_);
    }
  }

  void report(std::uint64_t done_trials) {
    const double elapsed = watch_.elapsed_seconds();
    const double rate =
        elapsed > 0.0 ? static_cast<double>(done_trials) / elapsed : 0.0;
    const double eta =
        rate > 0.0 && done_trials < total_
            ? static_cast<double>(total_ - done_trials) / rate
            : 0.0;
    std::fprintf(stderr,
                 "\rprogress: %llu/%llu trials  %.1f trials/s  ETA %.0f s   ",
                 static_cast<unsigned long long>(done_trials),
                 static_cast<unsigned long long>(total_), rate, eta);
  }

  std::uint64_t total_;
  safe::telemetry::MetricId trials_id_;
  std::uint64_t base_;
  safe::telemetry::Stopwatch watch_;
  std::atomic<bool> done_{false};
  std::thread thread_;
};

/// A `--spec` value is a file when it names one; otherwise it is parsed as
/// an inline spec string.
std::string load_spec_text(const std::string& arg) {
  std::ifstream file(arg);
  if (!file) return arg;
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

}  // namespace

int run(int argc, char** argv) {
  using namespace safe;

  std::string spec_text;
  std::string detector_arg;
  std::string platoon_arg;
  std::string attack_arg;
  std::optional<std::size_t> trials_override;
  std::optional<std::uint64_t> seed_override;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  std::string out_path;
  std::string metrics_path;
  std::string trace_path;
  telemetry::TraceDetail detail = telemetry::TraceDetail::kCoarse;
  bool summary = false;
  bool quiet = false;
  bool progress = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--spec") {
      const std::string value = next();
      if (value == "help") {
        std::cout << runtime::campaign_spec_help();
        return 0;
      }
      spec_text = load_spec_text(value);
    } else if (arg == "--trials") {
      trials_override = std::stoull(next());
    } else if (arg == "--seed") {
      seed_override = std::stoull(next());
    } else if (arg == "--jobs") {
      jobs = std::stoull(next());
    } else if (arg == "--detector") {
      detector_arg = next();
      if (detector_arg == "help") {
        std::cout << detect::detector_spec_help() << "\n";
        return 0;
      }
    } else if (arg == "--platoon") {
      platoon_arg = next();
      if (platoon_arg == "help") {
        std::cout << platoon::platoon_spec_help() << "\n";
        return 0;
      }
    } else if (arg == "--attack") {
      attack_arg = next();
      if (attack_arg == "help") {
        std::cout << attack::attack_spec_help() << "\n";
        return 0;
      }
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--metrics-out") {
      metrics_path = next();
    } else if (arg == "--trace-out") {
      trace_path = next();
    } else if (arg == "--trace-detail") {
      const std::string value = next();
      if (value == "coarse") {
        detail = telemetry::TraceDetail::kCoarse;
      } else if (value == "fine") {
        detail = telemetry::TraceDetail::kFine;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--progress") {
      progress = true;
    } else {
      usage(argv[0]);
    }
  }

  if (!metrics_path.empty() || progress) telemetry::set_metrics_enabled(true);
  if (!trace_path.empty()) {
    telemetry::set_tracing_enabled(true);
    telemetry::set_trace_detail(detail);
  }
  telemetry::set_thread_name("main");

  runtime::CampaignSpec spec;
  try {
    spec = runtime::parse_campaign_spec(spec_text);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n\n" << runtime::campaign_spec_help();
    return 2;
  }
  if (trials_override) spec.trials = *trials_override;
  if (seed_override) spec.seed = *seed_override;
  if (!detector_arg.empty()) {
    // Same semantics as the spec's `detector` key: the flag replaces any
    // detector axis the spec declared, `|` separates grid values.
    try {
      spec.detector_specs =
          runtime::parse_campaign_spec("detector = " + detector_arg)
              .detector_specs;
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n" << detect::detector_spec_help() << "\n";
      return 2;
    }
  }
  if (!platoon_arg.empty()) {
    // Likewise for the `platoon` axis. Values with commas need quoting on
    // most shells anyway, so reuse of the spec parser's quoting rules is
    // deliberate: --platoon '"n=8,attacked=3"|none' is a two-cell axis.
    try {
      spec.platoon_specs =
          runtime::parse_campaign_spec("platoon = " + platoon_arg)
              .platoon_specs;
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n" << platoon::platoon_spec_help() << "\n";
      return 2;
    }
  }
  if (!attack_arg.empty()) {
    // Likewise for the `attack` key: bare legacy names (none/dos/delay)
    // become the enum axis, anything parameterized the attack-spec axis.
    try {
      runtime::CampaignSpec parsed =
          runtime::parse_campaign_spec("attack = " + attack_arg);
      spec.attacks = std::move(parsed.attacks);
      spec.attack_specs = std::move(parsed.attack_specs);
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n" << attack::attack_spec_help() << "\n";
      return 2;
    }
  }

  std::ofstream out_file;
  std::unique_ptr<runtime::JsonlWriter> writer;
  if (!out_path.empty()) {
    if (out_path == "-") {
      writer = std::make_unique<runtime::JsonlWriter>(std::cout);
    } else {
      out_file.open(out_path);
      if (!out_file) {
        std::cerr << "cannot open " << out_path << "\n";
        return 1;
      }
      writer = std::make_unique<runtime::JsonlWriter>(out_file);
    }
  }
  std::vector<runtime::TrialSink*> sinks;
  if (writer) sinks.push_back(writer.get());

  const std::uint64_t total_trials = spec.trials;
  const runtime::Campaign campaign(std::move(spec));
  runtime::CampaignResult result;
  {
    std::unique_ptr<ProgressReporter> reporter;
    if (progress) reporter = std::make_unique<ProgressReporter>(total_trials);
    result = campaign.run(jobs, sinks);
  }

  if (!metrics_path.empty()) {
    std::ofstream metrics_file(metrics_path);
    if (!metrics_file) {
      std::cerr << "cannot open " << metrics_path << "\n";
      return 1;
    }
    telemetry::write_metrics_jsonl(metrics_file);
  }
  if (!trace_path.empty()) {
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      std::cerr << "cannot open " << trace_path << "\n";
      return 1;
    }
    telemetry::write_chrome_trace(trace_file);
  }

  if (!quiet) {
    std::fprintf(stderr,
                 "campaign: %zu trial(s) on %zu job(s) in %.2f s (%.1f "
                 "trials/s, grid of %zu cell(s))\n",
                 result.trials, result.jobs, result.wall_s.value(),
                 result.wall_s.value() > 0.0
                     ? static_cast<double>(result.trials) /
                           result.wall_s.value()
                     : 0.0,
                 campaign.spec().grid_cells());
  }
  if (summary) {
    std::cout << runtime::format_summary(result.summary);
  }
  return result.summary.errors == 0 ? 0 : 1;
}

// Keeps bugprone-exception-escape honest for the CLI entry points: any
// exception the command loop does not handle becomes a diagnostic and a
// nonzero exit instead of std::terminate.
int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "fatal: unknown error\n");
    return 1;
  }
}
