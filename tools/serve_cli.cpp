// Streaming safe-sensing server (DESIGN.md §12): accepts session
// connections speaking the binary wire protocol, runs each session's
// measurement stream through the paper's safe-measurement pipeline on a
// shared thread pool, and streams ESTIMATE frames back.
//
// Usage:
//   serve_cli [--bind ADDR] [--port N] [--port-file PATH] [--jobs N]
//             [--max-sessions N] [--idle-timeout-ms N]
//             [--max-outbound-kib N] [--seed N]
//             [--admission-max-batches N] [--frame-deadline-ms N]
//             [--resume-grace-ms N] [--max-retained-steps N]
//             [--metrics-out PATH] [--trace-out PATH]
//
// --port 0 (the default) binds a kernel-assigned port; --port-file writes
// the resolved port so scripts can wait for readiness. SIGTERM/SIGINT
// trigger a graceful drain: the listener closes, in-flight session work
// finishes, every client gets STATUS kDraining, then the process exits.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "runtime/thread_pool.hpp"
#include "serve/server.hpp"
#include "telemetry/telemetry.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--bind ADDR] [--port N] [--port-file PATH] [--jobs N]\n"
               "       [--max-sessions N] [--idle-timeout-ms N]\n"
               "       [--max-outbound-kib N] [--seed N]\n"
               "       [--admission-max-batches N] [--frame-deadline-ms N]\n"
               "       [--resume-grace-ms N] [--max-retained-steps N]\n"
               "       [--metrics-out PATH] [--trace-out PATH]\n"
               "\n"
               "  --bind             listen address (default 127.0.0.1)\n"
               "  --port             listen port; 0 = kernel-assigned\n"
               "  --port-file        write the resolved port to PATH once\n"
               "                     listening (readiness signal for scripts)\n"
               "  --jobs             pipeline worker threads (default:\n"
               "                     hardware concurrency)\n"
               "  --max-sessions     live-session cap (default 64)\n"
               "  --idle-timeout-ms  idle-session eviction timeout\n"
               "                     (default 30000)\n"
               "  --max-outbound-kib per-connection outbound cap before a\n"
               "                     slow-consumer disconnect (default 256)\n"
               "  --seed             master seed for session-token derivation\n"
               "  --admission-max-batches\n"
               "                     shed new sessions with STATUS overloaded\n"
               "                     while this many batches are in flight\n"
               "                     (0 = admission control off)\n"
               "  --frame-deadline-ms\n"
               "                     shed a connection whose oldest queued\n"
               "                     frame waited longer (0 = off; the\n"
               "                     session stays resumable)\n"
               "  --resume-grace-ms  how long a detached session stays\n"
               "                     resumable (default 15000)\n"
               "  --max-retained-steps\n"
               "                     replay-buffer cap in steps per session\n"
               "                     (default 4096)\n"
               "  --metrics-out      telemetry metrics as JSONL to PATH\n"
               "  --trace-out        Chrome trace_event JSON to PATH\n";
  std::exit(2);
}

safe::serve::StreamServer* g_server = nullptr;

extern "C" void handle_drain_signal(int) {
  if (g_server != nullptr) g_server->request_drain();
}

}  // namespace

int run(int argc, char** argv) {
  using namespace safe;

  serve::ServerOptions options;
  std::string port_file;
  std::string metrics_path;
  std::string trace_path;
  std::size_t jobs = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    try {
      if (arg == "--bind") {
        options.bind_address = next();
      } else if (arg == "--port") {
        options.port = static_cast<std::uint16_t>(std::stoul(next()));
      } else if (arg == "--port-file") {
        port_file = next();
      } else if (arg == "--jobs") {
        jobs = std::stoull(next());
      } else if (arg == "--max-sessions") {
        options.session.max_sessions = std::stoull(next());
      } else if (arg == "--idle-timeout-ms") {
        options.session.idle_timeout_ns = std::stoull(next()) * 1'000'000ULL;
      } else if (arg == "--max-outbound-kib") {
        options.max_outbound_bytes = std::stoull(next()) * 1024;
      } else if (arg == "--seed") {
        options.master_seed = std::stoull(next());
      } else if (arg == "--admission-max-batches") {
        options.admission_max_batches = std::stoull(next());
      } else if (arg == "--frame-deadline-ms") {
        options.frame_deadline_ns = std::stoull(next()) * 1'000'000ULL;
      } else if (arg == "--resume-grace-ms") {
        options.session.resume_grace_ns = std::stoull(next()) * 1'000'000ULL;
      } else if (arg == "--max-retained-steps") {
        options.session.max_retained_steps = std::stoull(next());
      } else if (arg == "--metrics-out") {
        metrics_path = next();
      } else if (arg == "--trace-out") {
        trace_path = next();
      } else {
        usage(argv[0]);
      }
    } catch (const std::exception&) {
      usage(argv[0]);
    }
  }

  if (!metrics_path.empty()) telemetry::set_metrics_enabled(true);
  if (!trace_path.empty()) {
    telemetry::set_tracing_enabled(true);
    telemetry::set_trace_detail(telemetry::TraceDetail::kFine);
  }
  telemetry::set_thread_name("serve-loop");

  const std::size_t workers =
      jobs != 0 ? jobs
                : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  runtime::ThreadPool pool(workers);
  serve::StreamServer server(options, pool);
  try {
    server.bind_and_listen();
  } catch (const std::exception& e) {
    std::cerr << "serve_cli: " << e.what() << "\n";
    return 1;
  }

  if (!port_file.empty()) {
    std::ofstream out(port_file);
    if (!out) {
      std::cerr << "serve_cli: cannot open " << port_file << "\n";
      return 1;
    }
    out << server.port() << "\n";
  }

  g_server = &server;
  std::signal(SIGTERM, handle_drain_signal);
  std::signal(SIGINT, handle_drain_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::fprintf(stderr, "serve_cli: listening on %s:%u (%zu worker thread%s)\n",
               options.bind_address.c_str(),
               static_cast<unsigned>(server.port()), workers,
               workers == 1 ? "" : "s");
  try {
    server.run();
  } catch (const std::exception& e) {
    std::cerr << "serve_cli: event loop failed: " << e.what() << "\n";
    g_server = nullptr;
    return 1;
  }
  g_server = nullptr;
  pool.drain();

  if (!metrics_path.empty()) {
    std::ofstream metrics_file(metrics_path);
    if (!metrics_file) {
      std::cerr << "serve_cli: cannot open " << metrics_path << "\n";
      return 1;
    }
    telemetry::write_metrics_jsonl(metrics_file);
  }
  if (!trace_path.empty()) {
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      std::cerr << "serve_cli: cannot open " << trace_path << "\n";
      return 1;
    }
    telemetry::write_chrome_trace(trace_file);
  }

  const serve::ServerStats stats = server.stats();
  const serve::SessionManager::Counters sessions = server.session_counters();
  std::fprintf(stderr,
               "serve_cli: drained cleanly — %llu connection(s), %llu "
               "session(s) opened (%llu rejected, %llu evicted), %llu "
               "frames in / %llu out, %llu decode error(s), %llu protocol "
               "error(s), %llu slow-consumer disconnect(s)\n",
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(sessions.opened),
               static_cast<unsigned long long>(sessions.rejected),
               static_cast<unsigned long long>(sessions.evicted),
               static_cast<unsigned long long>(stats.frames_in),
               static_cast<unsigned long long>(stats.frames_out),
               static_cast<unsigned long long>(stats.decode_errors),
               static_cast<unsigned long long>(stats.protocol_errors),
               static_cast<unsigned long long>(
                   stats.slow_consumer_disconnects));
  std::fprintf(stderr,
               "serve_cli: resilience — %llu session(s) resumed (%llu "
               "rejected), %llu frame(s) replayed, %llu hello shed(s), "
               "%llu deadline shed(s)\n",
               static_cast<unsigned long long>(stats.sessions_resumed),
               static_cast<unsigned long long>(stats.resume_rejects),
               static_cast<unsigned long long>(stats.replayed_frames),
               static_cast<unsigned long long>(stats.shed_hellos),
               static_cast<unsigned long long>(stats.deadline_sheds));
  return 0;
}

// Keeps bugprone-exception-escape honest for the CLI entry points: any
// exception the command loop does not handle becomes a diagnostic and a
// nonzero exit instead of std::terminate.
int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "fatal: unknown error\n");
    return 1;
  }
}
