// Load generator for the streaming safe-sensing server (DESIGN.md §12):
// replays deterministic scenario traces over concurrent connections and
// reports throughput plus p50/p95/p99 frame latency.
//
// Usage:
//   loadgen_cli --port N [--host ADDR] [--connections N] [--sessions N]
//               [--steps N] [--scenario const-decel|decel-accel]
//               [--attack none|dos|delay] [--fault SPEC]
//               [--estimator fft|music] [--hardened] [--seed N]
//               [--verify] [--json] [--retries N]
//
// --verify byte-compares every received ESTIMATE frame against the offline
// core::pipeline reference (the serving parity contract); --json prints the
// machine-readable report to stdout. --retries N runs each session through
// the resilient client (session resumption + exponential backoff), which is
// what a chaos soak behind chaos_cli needs to complete. Exit status is
// non-zero when any session failed, any stream was incomplete, or any
// verified frame mismatched.
#include <cstdio>
#include <iostream>
#include <string>

#include "serve/loadgen.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --port N [--host ADDR] [--connections N] [--sessions N]\n"
               "       [--steps N] [--scenario const-decel|decel-accel]\n"
               "       [--attack none|dos|delay] [--fault SPEC]\n"
               "       [--estimator fft|music] [--hardened] [--seed N]\n"
               "       [--verify] [--json] [--retries N]\n"
               "\n"
               "  --port         server port (required)\n"
               "  --host         server address (default 127.0.0.1)\n"
               "  --connections  concurrent client connections (default 8)\n"
               "  --sessions     total sessions to replay (default =\n"
               "                 connections)\n"
               "  --steps        measurement frames per session (default 300)\n"
               "  --scenario     leader profile (default const-decel)\n"
               "  --attack       scheduled sensor attack (default none)\n"
               "  --fault        sensor-fault spec (fault/schedule.hpp)\n"
               "  --estimator    beat estimator (default fft)\n"
               "  --hardened     hardened pipeline options\n"
               "  --seed         master seed for per-session trace seeds\n"
               "  --verify       byte-compare estimates vs offline pipeline\n"
               "  --json         machine-readable report on stdout\n"
               "  --retries      connection attempts per session; > 0 turns\n"
               "                 on the resilient client (resume + backoff)\n";
  std::exit(2);
}

}  // namespace

int run(int argc, char** argv) {
  using namespace safe;

  serve::LoadOptions options;
  bool sessions_set = false;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    try {
      if (arg == "--port") {
        options.port = static_cast<std::uint16_t>(std::stoul(next()));
      } else if (arg == "--host") {
        options.host = next();
      } else if (arg == "--connections") {
        options.connections = std::stoull(next());
      } else if (arg == "--sessions") {
        options.sessions = std::stoull(next());
        sessions_set = true;
      } else if (arg == "--steps") {
        options.spec.horizon_steps = std::stoll(next());
      } else if (arg == "--scenario") {
        const std::string value = next();
        if (value == "const-decel") {
          options.spec.leader = core::LeaderScenario::kConstantDecel;
        } else if (value == "decel-accel") {
          options.spec.leader = core::LeaderScenario::kDecelThenAccel;
        } else {
          usage(argv[0]);
        }
      } else if (arg == "--attack") {
        const std::string value = next();
        if (value == "none") {
          options.spec.attack = core::AttackKind::kNone;
        } else if (value == "dos") {
          options.spec.attack = core::AttackKind::kDosJammer;
        } else if (value == "delay") {
          options.spec.attack = core::AttackKind::kDelayInjection;
        } else {
          usage(argv[0]);
        }
      } else if (arg == "--fault") {
        options.spec.fault_spec = next();
      } else if (arg == "--estimator") {
        const std::string value = next();
        if (value == "fft") {
          options.spec.estimator = radar::BeatEstimator::kPeriodogram;
        } else if (value == "music") {
          options.spec.estimator = radar::BeatEstimator::kRootMusic;
        } else {
          usage(argv[0]);
        }
      } else if (arg == "--hardened") {
        options.spec.hardened = true;
      } else if (arg == "--seed") {
        options.master_seed = std::stoull(next());
      } else if (arg == "--verify") {
        options.verify = true;
      } else if (arg == "--retries") {
        options.retry_attempts = std::stoull(next());
      } else if (arg == "--json") {
        json = true;
      } else {
        usage(argv[0]);
      }
    } catch (const std::exception&) {
      usage(argv[0]);
    }
  }
  if (options.port == 0) usage(argv[0]);
  if (!sessions_set) options.sessions = options.connections;

  serve::LoadReport report;
  try {
    report = serve::run_load(options);
  } catch (const std::exception& e) {
    std::cerr << "loadgen_cli: " << e.what() << "\n";
    return 1;
  }

  if (json) {
    std::cout << serve::to_json(report) << "\n";
  }
  std::fprintf(stderr,
               "loadgen: %zu/%zu session(s) complete, %llu/%llu estimates, "
               "%.0f frames/s, latency p50 %.2f ms p95 %.2f ms p99 %.2f ms\n",
               report.sessions_completed, report.sessions_attempted,
               static_cast<unsigned long long>(report.estimates_received),
               static_cast<unsigned long long>(report.frames_sent),
               report.throughput_frames_per_s,
               static_cast<double>(report.latency_p50_ns) / 1e6,
               static_cast<double>(report.latency_p95_ns) / 1e6,
               static_cast<double>(report.latency_p99_ns) / 1e6);
  if (options.retry_attempts > 0) {
    std::fprintf(stderr,
                 "loadgen: resilience — %llu reconnect(s), %llu resume(s), "
                 "%llu restart(s), %llu overload backoff(s), %llu frame(s) "
                 "replayed, %llu duplicate(s) discarded\n",
                 static_cast<unsigned long long>(report.reconnects),
                 static_cast<unsigned long long>(report.resumes),
                 static_cast<unsigned long long>(report.restarts),
                 static_cast<unsigned long long>(report.overload_backoffs),
                 static_cast<unsigned long long>(report.replayed_frames),
                 static_cast<unsigned long long>(
                     report.duplicates_discarded));
  }
  if (options.verify) {
    std::fprintf(stderr,
                 "loadgen: verify — %zu/%zu session(s) byte-identical to "
                 "offline pipeline, %llu mismatched frame(s)\n",
                 report.sessions_verified, report.sessions_completed,
                 static_cast<unsigned long long>(
                     report.verify_mismatched_frames));
  }
  for (const std::string& error : report.errors) {
    std::fprintf(stderr, "loadgen: error: %s\n", error.c_str());
  }
  return report.ok() ? 0 : 1;
}

// Keeps bugprone-exception-escape honest for the CLI entry points: any
// exception the command loop does not handle becomes a diagnostic and a
// nonzero exit instead of std::terminate.
int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "fatal: unknown error\n");
    return 1;
  }
}
