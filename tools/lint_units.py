#!/usr/bin/env python3
"""Project-specific unit-safety lint for the safe-sensing codebase.

The dimensional-safety layer in src/units/ owns every unit conversion
constant and every dB <-> linear conversion. This lint keeps it that way:

  magic-constant   Unit-conversion literals (speed of light, mph <-> m/s
                   factors) outside src/units/. Use units::kSpeedOfLight,
                   units::from_mph(), units::to_mph().
  db-pow           `std::pow(10, x / 10)`-style decibel math outside
                   src/units/. Use units::Decibels::to_linear() /
                   units::Decibels::from_linear().
  raw-double-name  A raw `double` parameter or member whose name says it is
                   a physical quantity (distance/delay/range/gap/speed/
                   velocity) in a public header. Use the strong types from
                   units/units.hpp so wrong-unit call sites fail to compile.
  raw-double-unit  A raw `double` parameter or member with a unit-suffixed
                   name (`_m`, `_s`, `_mps`, `_hz`, ...) in a public header.
                   Same fix as raw-double-name.

Exemptions, by design (see DESIGN.md "Dimensional safety"):
  * src/units/ defines the constants and conversions, so it is skipped.
  * src/dsp/ is the raw-double hot-loop layer (FFT/MUSIC kernels operate on
    dimensionless samples plus an explicit sample rate); the raw-double
    rules do not apply there.
  * A line containing `lint-units: allow` is skipped, so deliberate
    exceptions stay greppable.

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage error.
Run from anywhere: paths are resolved relative to the repository root.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Directories scanned for each rule family.
ALL_CODE_DIRS = ("src", "bench", "examples", "tests", "tools")
HEADER_RULE_DIRS = ("src",)

# src/units/ owns the constants; src/dsp/ is the documented raw-double layer.
UNITS_DIR = "src/units"
HEADER_RULE_EXEMPT = (UNITS_DIR, "src/dsp")

ALLOW_MARKER = "lint-units: allow"

# Unit-conversion literals that must only live in src/units/units.hpp.
# 299792458 (speed of light, m/s), 0.44704 (mph -> m/s), 2.23694 (m/s -> mph),
# 3.33564e-9 (1/c in s/m).
MAGIC_CONSTANT = re.compile(
    r"299\s*792\s*458"
    r"|2\.99792458e\+?8"
    r"|0\.44704"
    r"|2\.23694"
    r"|3\.33564e-9"
)

# std::pow(10, x) / pow(10.0, x): decibel math open-coded at a call site.
DB_POW = re.compile(r"\bpow\s*\(\s*10(\.0*)?\s*[,f]")

# Raw double named like a physical quantity (parameter or member).
RAW_DOUBLE_NAME = re.compile(
    r"\bdouble\s+[A-Za-z_]*"
    r"(distance|delay|range|gap|speed|velocity)"
    r"[A-Za-z0-9_]*"
)

# Raw double with a unit-suffixed identifier. Skips function declarations
# (identifier followed by `(`) and `_per_` compound gains, which are genuine
# ratios rather than single-dimension quantities.
RAW_DOUBLE_UNIT = re.compile(
    r"\bdouble\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*_(m|s|mps|mps2|hz|hzps|rad|db))"
    r"\b(?!\s*\()"
)

PURE_COMMENT = re.compile(r"^\s*(//|\*|/\*)")


def iter_files(dirs: tuple[str, ...], suffixes: tuple[str, ...]):
    for top in dirs:
        root = REPO_ROOT / top
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in suffixes and path.is_file():
                yield path


def rel(path: Path) -> str:
    return path.relative_to(REPO_ROOT).as_posix()


def under(path: Path, tops: tuple[str, ...]) -> bool:
    r = rel(path)
    return any(r == t or r.startswith(t + "/") for t in tops)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--verbose", action="store_true", help="list files as they are scanned"
    )
    args = parser.parse_args(argv)

    findings: list[str] = []

    def report(path: Path, lineno: int, rule: str, message: str) -> None:
        findings.append(f"{rel(path)}:{lineno}: [{rule}] {message}")

    # Rule family 1: constants and dB math, all translation units.
    for path in iter_files(ALL_CODE_DIRS, (".hpp", ".cpp", ".h", ".cc")):
        if under(path, (UNITS_DIR,)):
            continue
        if args.verbose:
            print(f"scan {rel(path)}", file=sys.stderr)
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if ALLOW_MARKER in line:
                continue
            if MAGIC_CONSTANT.search(line):
                report(
                    path, lineno, "magic-constant",
                    "unit-conversion literal; use the constants/helpers in "
                    "units/units.hpp",
                )
            if DB_POW.search(line):
                report(
                    path, lineno, "db-pow",
                    "open-coded decibel conversion; use "
                    "units::Decibels::to_linear()/from_linear()",
                )

    # Rule family 2: raw-double quantities in public headers.
    for path in iter_files(HEADER_RULE_DIRS, (".hpp", ".h")):
        if under(path, HEADER_RULE_EXEMPT):
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if ALLOW_MARKER in line or PURE_COMMENT.match(line):
                continue
            m = RAW_DOUBLE_NAME.search(line)
            if m:
                report(
                    path, lineno, "raw-double-name",
                    f"'{m.group(0)}' names a physical quantity; use the "
                    "strong types from units/units.hpp",
                )
                continue
            m = RAW_DOUBLE_UNIT.search(line)
            if m and "_per_" not in m.group("name"):
                report(
                    path, lineno, "raw-double-unit",
                    f"'double {m.group('name')}' has a unit-suffixed name; "
                    "use the strong types from units/units.hpp",
                )

    if findings:
        print("\n".join(findings))
        print(f"\nlint_units: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_units: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
