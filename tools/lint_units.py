#!/usr/bin/env python3
"""Back-compat shim: the unit-safety lint moved into the tools/lint/
framework (tools/lint/check_units.py). This entry point keeps existing
invocations (`python3 tools/lint_units.py`, the CI lint job, developer
muscle memory) working and is equivalent to:

    tools/lint/lint.py --check units

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent / "lint"))

from lint import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["--check", "units", *sys.argv[1:]]))
