// Deterministic chaos proxy for the streaming safe-sensing service
// (DESIGN.md §13): interposes on serve_cli's TCP port and injects latency,
// jitter, throttling, write re-splitting, corruption, disconnects, and
// half-closes per a seeded fault plan.
//
// Usage:
//   chaos_cli --target-port N [--target-host ADDR] [--bind ADDR] [--port N]
//             [--port-file PATH] [--chaos SPEC] [--seed N]
//             [--stats-json PATH]
//
// SIGTERM/SIGINT stop the proxy; a summary goes to stderr and, with
// --stats-json, a machine-readable copy to PATH.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "serve/chaos.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --target-port N [--target-host ADDR] [--bind ADDR]\n"
               "       [--port N] [--port-file PATH] [--chaos SPEC]\n"
               "       [--seed N] [--stats-json PATH]\n"
               "\n"
               "  --target-port  upstream server port (required)\n"
               "  --target-host  upstream server address (default 127.0.0.1)\n"
               "  --bind         listen address (default 127.0.0.1)\n"
               "  --port         listen port; 0 = kernel-assigned\n"
               "  --port-file    write the resolved port to PATH once\n"
               "                 listening (readiness signal for scripts)\n"
               "  --chaos        fault spec: "
            << safe::serve::chaos_spec_help()
            << "\n"
               "  --seed         master seed for the per-connection plans\n"
               "  --stats-json   write final proxy stats as JSON to PATH\n";
  std::exit(2);
}

safe::serve::ChaosProxy* g_proxy = nullptr;

extern "C" void handle_stop_signal(int) {
  if (g_proxy != nullptr) g_proxy->request_stop();
}

}  // namespace

int run(int argc, char** argv) {
  using namespace safe;

  std::string target_host = "127.0.0.1";
  std::uint16_t target_port = 0;
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;
  std::string port_file;
  std::string chaos_spec;
  std::uint64_t seed = 1;
  std::string stats_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    try {
      if (arg == "--target-host") {
        target_host = next();
      } else if (arg == "--target-port") {
        target_port = static_cast<std::uint16_t>(std::stoul(next()));
      } else if (arg == "--bind") {
        bind_address = next();
      } else if (arg == "--port") {
        port = static_cast<std::uint16_t>(std::stoul(next()));
      } else if (arg == "--port-file") {
        port_file = next();
      } else if (arg == "--chaos") {
        chaos_spec = next();
      } else if (arg == "--seed") {
        seed = std::stoull(next());
      } else if (arg == "--stats-json") {
        stats_path = next();
      } else {
        usage(argv[0]);
      }
    } catch (const std::exception&) {
      usage(argv[0]);
    }
  }
  if (target_port == 0) usage(argv[0]);

  serve::ChaosSpec spec;
  try {
    spec = serve::parse_chaos_spec(chaos_spec);
  } catch (const std::exception& e) {
    std::cerr << "chaos_cli: " << e.what() << "\n";
    return 2;
  }

  serve::ChaosProxy proxy(spec, seed, target_host, target_port);
  try {
    proxy.bind_and_listen(bind_address, port);
  } catch (const std::exception& e) {
    std::cerr << "chaos_cli: " << e.what() << "\n";
    return 1;
  }

  if (!port_file.empty()) {
    std::ofstream out(port_file);
    if (!out) {
      std::cerr << "chaos_cli: cannot open " << port_file << "\n";
      return 1;
    }
    out << proxy.port() << "\n";
  }

  g_proxy = &proxy;
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::fprintf(stderr,
               "chaos_cli: %s:%u -> %s:%u (seed %llu, spec '%s')\n",
               bind_address.c_str(), static_cast<unsigned>(proxy.port()),
               target_host.c_str(), static_cast<unsigned>(target_port),
               static_cast<unsigned long long>(seed),
               chaos_spec.empty() ? "none" : chaos_spec.c_str());
  proxy.run();
  g_proxy = nullptr;

  const serve::ChaosProxy::Stats stats = proxy.stats();
  std::fprintf(stderr,
               "chaos_cli: stopped — %llu accepted, %llu closed, %llu "
               "upstream connect failure(s), %llu injected disconnect(s), "
               "%llu half-close(s), %llu bytes forwarded (%llu corrupted), "
               "%llu re-split write(s)\n",
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.closed),
               static_cast<unsigned long long>(stats.connect_failures),
               static_cast<unsigned long long>(stats.disconnects_injected),
               static_cast<unsigned long long>(stats.half_closes_injected),
               static_cast<unsigned long long>(stats.bytes_forwarded),
               static_cast<unsigned long long>(stats.corrupted_bytes),
               static_cast<unsigned long long>(stats.resplit_writes));

  if (!stats_path.empty()) {
    std::ofstream out(stats_path);
    if (!out) {
      std::cerr << "chaos_cli: cannot open " << stats_path << "\n";
      return 1;
    }
    out << "{\n"
        << "  \"accepted\": " << stats.accepted << ",\n"
        << "  \"closed\": " << stats.closed << ",\n"
        << "  \"connect_failures\": " << stats.connect_failures << ",\n"
        << "  \"disconnects_injected\": " << stats.disconnects_injected
        << ",\n"
        << "  \"half_closes_injected\": " << stats.half_closes_injected
        << ",\n"
        << "  \"bytes_forwarded\": " << stats.bytes_forwarded << ",\n"
        << "  \"corrupted_bytes\": " << stats.corrupted_bytes << ",\n"
        << "  \"resplit_writes\": " << stats.resplit_writes << "\n"
        << "}\n";
  }
  return 0;
}

// Keeps bugprone-exception-escape honest for the CLI entry points: any
// exception the command loop does not handle becomes a diagnostic and a
// nonzero exit instead of std::terminate.
int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "fatal: unknown error\n");
    return 1;
  }
}
