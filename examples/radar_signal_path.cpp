// Radar signal path walkthrough: Eqs. 5-9 and the root-MUSIC receiver.
//
// Synthesizes the complex baseband segments for a target scene, extracts the
// beat frequencies with root-MUSIC and with the FFT periodogram, and inverts
// them back to range / range-rate — the measurement chain every simulation
// step runs.
#include <algorithm>
#include <iostream>
#include <random>

#include "dsp/music.hpp"
#include "dsp/spectral.hpp"
#include "radar/link_budget.hpp"
#include "radar/processor.hpp"

int main() {
  using namespace safe;
  namespace units = safe::units;

  const units::Meters true_distance{73.4};
  const units::MetersPerSecond true_range_rate{-2.6};  // closing

  radar::RadarProcessorConfig cfg;
  cfg.waveform = radar::bosch_lrr2_parameters();
  cfg.noise_floor_w = radar::thermal_noise_power_w(cfg.waveform);

  std::cout << "FMCW waveform: 77 GHz, B_s = 150 MHz, T_s = 2 ms, lambda = "
               "3.89 mm\n\n";

  // --- Forward map (Eqs. 5-6).
  const auto beats =
      radar::beat_frequencies(cfg.waveform, true_distance, true_range_rate);
  std::cout << "target: d = " << true_distance.value()
            << " m, dv = " << true_range_rate.value()
            << " m/s\n"
            << "beat frequencies: f_b+ = " << beats.up_hz.value()
            << " Hz, f_b- = " << beats.down_hz.value() << " Hz\n";

  // --- Link budget (Eq. 9).
  const double echo_power =
      radar::received_echo_power_w(cfg.waveform, true_distance, 10.0);
  std::cout << "received echo power (sigma = 10 m^2): " << echo_power
            << " W, thermal floor " << cfg.noise_floor_w << " W\n\n";

  // --- Synthesize the baseband segments and estimate with both receivers.
  radar::EchoScene scene;
  scene.echoes.push_back(radar::EchoComponent{
      .distance_m = true_distance,
      .range_rate_mps = true_range_rate,
      .power_w = echo_power,
  });
  scene.noise_power_w = cfg.noise_floor_w;

  for (const auto est : {radar::BeatEstimator::kRootMusic,
                         radar::BeatEstimator::kPeriodogram}) {
    cfg.estimator = est;
    radar::RadarProcessor radar(cfg, /*seed=*/42);
    const auto m = radar.measure(scene);
    std::cout << (est == radar::BeatEstimator::kRootMusic ? "root-MUSIC"
                                                          : "periodogram")
              << " receiver:\n"
              << "  estimated f_b+ = " << m.beats.up_hz.value()
              << " Hz, f_b- = " << m.beats.down_hz.value() << " Hz\n"
              << "  estimated d = " << m.estimate.distance_m.value() << " m (err "
              << (m.estimate.distance_m - true_distance).value()
              << "), dv = " << m.estimate.range_rate_mps.value()
              << " m/s (err "
              << (m.estimate.range_rate_mps - true_range_rate).value() << ")\n"
              << "  peak/average coherence: " << m.peak_to_average << "\n\n";
  }

  // --- Super-resolution demo: two tones one FFT bin apart.
  std::cout << "super-resolution: two tones 1.5 kHz apart, 256 samples at "
               "1 MHz (FFT bin = 3.9 kHz)\n";
  // A touch of noise keeps the sample covariance full rank (a perfectly
  // noiseless covariance has a degenerate noise subspace).
  std::mt19937 rng(7);
  std::normal_distribution<double> awgn(0.0, 0.05);
  dsp::ComplexSignal two_tone(256);
  for (std::size_t n = 0; n < two_tone.size(); ++n) {
    const double t = static_cast<double>(n) / 1.0e6;
    two_tone[n] = std::polar(1.0, 2.0 * 3.14159265358979 * 100'000.0 * t) +
                  std::polar(1.0, 2.0 * 3.14159265358979 * 101'500.0 * t + 1.0) +
                  dsp::Complex{awgn(rng), awgn(rng)};
  }
  auto music = dsp::root_music_frequencies(two_tone, 1.0e6, 2,
                                           {.covariance_order = 24});
  std::sort(music.begin(), music.end());
  const auto fft_tones = dsp::estimate_tones_periodogram(two_tone, 1.0e6, 2);
  std::cout << "  root-MUSIC: " << music[0] << " Hz and " << music[1]
            << " Hz\n  periodogram: ";
  for (const auto& t : fft_tones) std::cout << t.frequency_hz << " Hz  ";
  std::cout << "\n  (the periodogram merges or mislocates the pair; MUSIC "
               "resolves both)\n";
  return 0;
}
