// The paper's Section 3 formalism on plants that are not cars: a DC-motor
// speed loop and a double integrator under output attacks, defended by the
// same CRA + RLS recipe.
#include <iostream>
#include <memory>

#include "core/lti_case.hpp"

namespace {

using namespace safe;
using namespace safe::core;

void report(const char* label, const LtiCaseResult& r) {
  std::cout << label << ": max tracking error "
            << r.max_tracking_error << ", tail error "
            << r.tail_tracking_error << ", detected at "
            << (r.detection_step ? std::to_string(*r.detection_step)
                                 : std::string("-"))
            << " (FP " << r.detection_stats.false_positives << ", FN "
            << r.detection_stats.false_negatives << ")\n";
}

}  // namespace

int main() {
  const auto schedule =
      std::make_shared<cra::PrbsChallengeSchedule>(0x5151, 1, 5, 300);

  std::cout << "DC motor speed loop, +0.5 output bias from k = 150\n";
  LtiOutputAttack bias;
  bias.kind = LtiOutputAttack::Kind::kBias;
  bias.window = attack::AttackWindow{safe::units::Seconds{150.0},
                                     safe::units::Seconds{300.0}};
  bias.value = linalg::RVector(1, 0.5);

  {
    LtiCaseConfig cfg = make_dc_motor_case();
    cfg.defense_enabled = false;
    report("  undefended", LtiSecureCase(cfg, schedule, bias).run());
  }
  report("  defended  ",
         LtiSecureCase(make_dc_motor_case(), schedule, bias).run());

  std::cout << "\nDouble integrator, DoS (outputs replaced by 50) for 20 "
               "steps starting on a challenge slot\n";
  std::int64_t onset = 150;
  while (!schedule->is_challenge(onset)) ++onset;
  LtiOutputAttack dos;
  dos.kind = LtiOutputAttack::Kind::kDos;
  dos.window = attack::AttackWindow{
      safe::units::Seconds{static_cast<double>(onset)},
      safe::units::Seconds{static_cast<double>(onset + 20)}};
  dos.value = linalg::RVector(2, 50.0);

  {
    LtiCaseConfig cfg = make_double_integrator_case();
    cfg.defense_enabled = false;
    report("  undefended", LtiSecureCase(cfg, schedule, dos).run());
  }
  report("  defended  ",
         LtiSecureCase(make_double_integrator_case(), schedule, dos).run());

  std::cout << "\nTakeaway: the defense transplants unchanged to any LTI "
               "plant with an active sensor; for open-loop-unstable plants "
               "it bridges bounded attack windows but cannot replace "
               "feedback forever.\n";
  return 0;
}
