// DoS (jamming) attack on the ACC follower — the paper's Figure 2a/3a story
// in detail.
//
// Shows the jammer link budget (Eqs. 10-11), runs both leader scenarios with
// the defense on and off, and writes the defended scenario-(i) trace to
// dos_attack_trace.csv for plotting.
//
// Usage: dos_attack_acc [--csv <path>]
#include <fstream>
#include <iostream>
#include <string>

#include "core/scenario.hpp"
#include "radar/link_budget.hpp"

namespace {

void print_link_budget() {
  using namespace safe::radar;
  const FmcwParameters wf = bosch_lrr2_parameters();
  const JammerParameters jam{};
  std::cout << "Self-screening jammer vs Bosch-LRR2-class radar (Eq. 11)\n"
            << "  jammer: P_J = 100 mW, G_J = 10 dBi, B_J = 155 MHz\n"
            << "  distance    P_echo [W]     P_jam [W]      S/J      jam wins?\n";
  for (const double d : {2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 150.0, 200.0}) {
    const safe::units::Meters range{d};
    const double pr = received_echo_power_w(wf, range, 10.0);
    const double pj = received_jammer_power_w(wf, jam, range);
    std::cout << "  " << d << " m\t" << pr << "\t" << pj << "\t" << pr / pj
              << "\t" << (jamming_succeeds(wf, jam, range, 10.0) ? "yes" : "no")
              << "\n";
  }
  std::cout << "\n";
}

void run_scenario(safe::core::LeaderScenario leader, const char* label,
                  const std::string& csv_path) {
  using namespace safe::core;
  ScenarioOptions o;
  o.leader = leader;
  o.attack = AttackKind::kDosJammer;
  o.attack_start_s = safe::units::Seconds{182.0};

  std::cout << "--- " << label << " ---\n";

  o.defense_enabled = false;
  const auto undefended = make_paper_scenario(o).run();
  std::cout << "undefended: min gap " << undefended.min_gap_m.value()
            << " m, "
            << (undefended.collided ? "COLLISION at k = " +
                                          std::to_string(*undefended.collision_step)
                                    : std::string("no collision"))
            << "\n";

  o.defense_enabled = true;
  const auto defended = make_paper_scenario(o).run();
  std::cout << "defended:   min gap " << defended.min_gap_m.value()
            << " m, "
            << (defended.collided ? "COLLISION" : "no collision")
            << ", attack detected at k = "
            << (defended.detection_step
                    ? std::to_string(*defended.detection_step)
                    : std::string("never"))
            << " (FP " << defended.detection_stats.false_positives << ", FN "
            << defended.detection_stats.false_negatives << ")\n\n";

  if (!csv_path.empty() && leader == LeaderScenario::kConstantDecel) {
    std::ofstream csv(csv_path);
    defended.trace.write_csv(csv);
    std::cout << "defended scenario-(i) trace written to " << csv_path
              << "\n\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path = "dos_attack_trace.csv";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--csv") csv_path = argv[i + 1];
  }

  std::cout << "DoS attack on the follower vehicle's mm-wave radar\n"
            << "==================================================\n\n";
  print_link_budget();
  run_scenario(safe::core::LeaderScenario::kConstantDecel,
               "scenario (i): leader decelerates at -0.1082 m/s^2", csv_path);
  run_scenario(safe::core::LeaderScenario::kDecelThenAccel,
               "scenario (ii): leader decelerates, then accelerates", "");
  return 0;
}
