// Command-line scenario runner: configure the case study without writing
// code and export the full trace as CSV for plotting.
//
// Usage:
//   scenario_cli [--leader decel|decel-accel|stop-and-go]
//                [--attack none|dos|delay|SPEC] [--onset K] [--end K]
//                [--no-defense] [--estimator music|fft] [--seed N[,N...]]
//                [--horizon K] [--csv PATH] [--trials N] [--jobs N]
//                [--fault SPEC] [--detector SPEC] [--hardened]
//                [--max-holdover K]
//                [--metrics-out PATH] [--trace-out PATH]
//
// Example: reproduce Figure 2b and dump the series:
//   scenario_cli --leader decel --attack delay --onset 180 --csv fig2b.csv
//
// Example: drop 10 frames mid-run and emit NaNs, with the hardened
// degradation manager enabled:
//   scenario_cli --hardened
//                --fault "dropout:start=60,len=10;nan:start=100,period=25"
//
// Example: the same scenario across 32 noise seeds on 8 workers (the
// campaign engine guarantees bit-identical results at any --jobs):
//   scenario_cli --attack dos --estimator fft --trials 32 --jobs 8
//
// Example: swap the paper's challenge-response detector for the passive
// chi-square backend (no challenge hardware consulted):
//   scenario_cli --attack delay --onset 180 --detector chi2:threshold=9.21
//
// Example: run the attack against follower 3 of an 8-vehicle platoon and
// report how far the disturbance propagates down the string:
//   scenario_cli --attack delay --onset 180 --platoon "n=8,attacked=3"
//
// Example: an entrained attacker that replays the CRA challenge pattern
// perfectly (k = 0) — the coherence check goes blind, only the rx-power
// check can still fire (here its transmitter leaks 15x the noise floor):
//   scenario_cli --attack "entrain:acquire=3,replay=0,leak=15" --onset 180
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "attack/spec.hpp"
#include "core/scenario.hpp"
#include "detect/spec.hpp"
#include "fault/schedule.hpp"
#include "platoon/platoon.hpp"
#include "runtime/campaign.hpp"
#include "runtime/sink.hpp"
#include "telemetry/telemetry.hpp"
#include "vehicle/leader_profile.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--leader decel|decel-accel|stop-and-go] [--attack KIND|SPEC]\n"
         "       [--onset K] [--end K] [--no-defense] [--estimator music|fft]\n"
         "       [--seed N[,N...]] [--horizon K] [--csv PATH]\n"
         "       [--trials N] [--jobs N]\n"
         "       [--fault SPEC] [--detector SPEC] [--platoon SPEC]\n"
         "       [--hardened] [--max-holdover K]\n"
         "       [--metrics-out PATH] [--trace-out PATH] [--list-specs]\n"
         "run `--fault help` for the fault-spec mini-language,\n"
         "`--detector help` for the detection-backend language, `--platoon\n"
         "help` for the platoon language, or `--list-specs` for every\n"
         "grammar at once. With --trials\n"
         "or a --seed list the run goes through the runtime campaign engine\n"
         "(one trial per seed, --jobs workers). --metrics-out dumps merged\n"
         "telemetry metrics as JSONL; --trace-out writes a Chrome trace_event\n"
         "file (chrome://tracing / Perfetto).\n";
  std::exit(2);
}

/// `--list-specs`: every mini-language grammar this binary accepts, in one
/// place (fault, detector, platoon) plus the fixed attack kinds.
void print_spec_catalog() {
  std::cout
      << "attack kinds (--attack KIND|SPEC, window via --onset/--end "
         "seconds):\n"
         "  none    clean run, detector still scored for false positives\n"
         "  dos     DoS jammer raises the noise floor (power via campaign\n"
         "          `jammer_power_w`)\n"
         "  delay   replay/delay injection: stale echoes at a spoofed range\n"
         "  spoof   phase-coherent range/Doppler spoofer (coherence knob)\n"
         "  chirp   rogue radar, slope-mismatched chirps smear the ghost\n"
         "  entrain lock-on attacker; replay=k echoes CRA challenges back\n"
         "\n"
      << "attack specs (--attack SPEC):\n"
      << safe::attack::attack_spec_help() << "\n"
      << "fault specs (--fault SPEC):\n"
      << safe::fault::fault_spec_help() << "\n"
      << "detector specs (--detector SPEC):\n"
      << safe::detect::detector_spec_help() << "\n"
      << "platoon specs (--platoon SPEC):\n"
      << safe::platoon::platoon_spec_help() << "\n";
}

/// Dumps telemetry outputs after the run; returns false on an unwritable
/// path so main can exit non-zero.
bool write_telemetry_outputs(const std::string& metrics_path,
                             const std::string& trace_path) {
  if (!metrics_path.empty()) {
    std::ofstream metrics_file(metrics_path);
    if (!metrics_file) {
      std::cerr << "cannot open " << metrics_path << "\n";
      return false;
    }
    safe::telemetry::write_metrics_jsonl(metrics_file);
  }
  if (!trace_path.empty()) {
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      std::cerr << "cannot open " << trace_path << "\n";
      return false;
    }
    safe::telemetry::write_chrome_trace(trace_file);
  }
  return true;
}

std::vector<std::uint64_t> parse_seed_list(const std::string& value) {
  std::vector<std::uint64_t> seeds;
  std::size_t begin = 0;
  while (begin <= value.size()) {
    const std::size_t comma = value.find(',', begin);
    const std::string token =
        value.substr(begin, comma == std::string::npos ? std::string::npos
                                                       : comma - begin);
    if (!token.empty()) seeds.push_back(std::stoull(token));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  if (seeds.empty()) throw std::invalid_argument("empty --seed list");
  return seeds;
}

/// Per-trial one-liner printed while a multi-trial run streams.
class ConsoleSink final : public safe::runtime::TrialSink {
 public:
  void consume(const safe::runtime::TrialRecord& r) override {
    if (!r.error.empty()) {
      std::printf("trial %4llu  seed %-20llu ERROR %s\n",
                  static_cast<unsigned long long>(r.trial_id),
                  static_cast<unsigned long long>(r.scenario_seed),
                  r.error.c_str());
      return;
    }
    std::printf(
        "trial %4llu  seed %-20llu min gap %8.2f m  %-5s detected %-5s "
        "FP %zu FN %zu\n",
        static_cast<unsigned long long>(r.trial_id),
        static_cast<unsigned long long>(r.scenario_seed),
        r.min_gap_m.value(), r.collided ? "CRASH" : "ok",
        r.detection_step >= 0 ? std::to_string(r.detection_step).c_str()
                              : "never",
        r.false_positives, r.false_negatives);
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace safe;

  core::ScenarioOptions options;
  std::string leader = "decel";
  std::string csv_path;
  std::string metrics_path;
  std::string trace_path;
  bool hardened = false;
  std::size_t max_holdover = 15;
  std::string detector_spec;
  std::vector<std::uint64_t> seeds{1};
  std::size_t trials = 0;  // 0 = not requested
  std::size_t jobs = 0;    // 0 = hardware concurrency

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--leader") {
      leader = next();
    } else if (arg == "--attack") {
      const std::string v = next();
      if (v == "help") {
        std::cout << attack::attack_spec_help() << "\n";
        return 0;
      }
      // Bare legacy names keep the enum path (byte-identical pre-spec
      // behavior); any parameterized spec goes through the mini-language.
      if (v == "none") {
        options.attack = core::AttackKind::kNone;
      } else if (v == "dos") {
        options.attack = core::AttackKind::kDosJammer;
      } else if (v == "delay") {
        options.attack = core::AttackKind::kDelayInjection;
      } else {
        const attack::SpecCheck check = attack::check_attack_spec(v);
        if (check.status != attack::SpecStatus::kOk) {
          std::cerr << check.message << "\n"
                    << attack::attack_spec_help() << "\n";
          return 2;
        }
        options.attack_spec = v;
      }
    } else if (arg == "--onset") {
      options.attack_start_s = safe::units::Seconds{std::stod(next())};
    } else if (arg == "--end") {
      options.attack_end_s = safe::units::Seconds{std::stod(next())};
    } else if (arg == "--no-defense") {
      options.defense_enabled = false;
    } else if (arg == "--estimator") {
      const std::string v = next();
      if (v == "music") {
        options.estimator = radar::BeatEstimator::kRootMusic;
      } else if (v == "fft") {
        options.estimator = radar::BeatEstimator::kPeriodogram;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--seed") {
      seeds = parse_seed_list(next());
      options.seed = seeds.front();
    } else if (arg == "--trials") {
      trials = std::stoull(next());
    } else if (arg == "--jobs") {
      jobs = std::stoull(next());
    } else if (arg == "--horizon") {
      options.horizon_steps = std::stoll(next());
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--fault") {
      options.fault_spec = next();
      if (options.fault_spec == "help") {
        std::cout << fault::fault_spec_help() << "\n";
        return 0;
      }
    } else if (arg == "--detector") {
      detector_spec = next();
      if (detector_spec == "help") {
        std::cout << detect::detector_spec_help() << "\n";
        return 0;
      }
    } else if (arg == "--platoon") {
      options.platoon_spec = next();
      if (options.platoon_spec == "help") {
        std::cout << platoon::platoon_spec_help() << "\n";
        return 0;
      }
      if (options.platoon_spec == "none") options.platoon_spec.clear();
    } else if (arg == "--list-specs") {
      print_spec_catalog();
      return 0;
    } else if (arg == "--hardened") {
      hardened = true;
    } else if (arg == "--max-holdover") {
      max_holdover = std::stoull(next());
      hardened = true;
    } else if (arg == "--metrics-out") {
      metrics_path = next();
    } else if (arg == "--trace-out") {
      trace_path = next();
    } else {
      usage(argv[0]);
    }
  }
  if (!metrics_path.empty()) telemetry::set_metrics_enabled(true);
  if (!trace_path.empty()) {
    // A single scenario is small enough to always trace at fine detail
    // (per-sample pipeline stage spans).
    telemetry::set_tracing_enabled(true);
    telemetry::set_trace_detail(telemetry::TraceDetail::kFine);
  }
  telemetry::set_thread_name("main");
  if (hardened) options.pipeline = core::hardened_pipeline_options(max_holdover);
  // After the hardened profile so --detector composes with --hardened.
  if (!detector_spec.empty()) {
    const detect::SpecCheck check = detect::check_detector_spec(detector_spec);
    if (check.status != detect::SpecStatus::kOk) {
      std::cerr << check.message << "\n" << detect::detector_spec_help()
                << "\n";
      return 2;
    }
    options.pipeline.detector_spec = detector_spec;
  }
  if (!options.platoon_spec.empty()) {
    const platoon::SpecCheck check =
        platoon::check_platoon_spec(options.platoon_spec);
    if (!check.ok) {
      std::cerr << check.message << "\n" << platoon::platoon_spec_help()
                << "\n";
      return 2;
    }
  }

  if (leader == "decel") {
    options.leader = core::LeaderScenario::kConstantDecel;
  } else if (leader == "decel-accel") {
    options.leader = core::LeaderScenario::kDecelThenAccel;
  } else if (leader != "stop-and-go") {
    usage(argv[0]);
  }

  // Multi-trial path: --trials or a --seed list routes through the campaign
  // engine (bit-identical output at any --jobs).
  if (trials > 1 || seeds.size() > 1 || jobs > 1) {
    if (!csv_path.empty()) {
      std::cerr << "--csv only supports a single trial; drop --trials/--jobs "
                   "or use campaign_cli --out for JSONL records\n";
      return 2;
    }
    runtime::CampaignSpec spec;
    spec.base = options;
    spec.seed = seeds.front();
    if (seeds.size() > 1) {
      spec.scenario_seeds = seeds;
      spec.trials = trials > 0 ? trials : seeds.size();
    } else {
      spec.trials = trials > 0 ? trials : 1;
    }
    if (leader == "stop-and-go") {
      spec.customize = [](core::Scenario& s, const runtime::TrialRecord&) {
        s.leader = std::make_shared<vehicle::StopAndGoProfile>();
      };
    }

    ConsoleSink console;
    std::vector<runtime::TrialSink*> sinks{&console};
    const runtime::CampaignResult result = [&] {
      try {
        return runtime::Campaign(std::move(spec)).run(jobs, sinks);
      } catch (const std::invalid_argument& e) {
        std::cerr << e.what() << "\n";
        std::exit(2);
      }
    }();
    std::printf("\n%zu trial(s) on %zu job(s) in %.2f s\n\n", result.trials,
                result.jobs, result.wall_s.value());
    std::cout << runtime::format_summary(result.summary);
    if (!write_telemetry_outputs(metrics_path, trace_path)) return 1;
    return result.summary.errors == 0 && result.summary.collisions == 0 ? 0
                                                                        : 1;
  }

  // Single platoon run: own output path (per-follower table + propagation
  // metrics) since the pair printout below doesn't generalize to a string.
  if (!options.platoon_spec.empty()) {
    platoon::PlatoonScenario pscenario = [&] {
      try {
        return platoon::make_paper_platoon(options);
      } catch (const std::invalid_argument& e) {
        std::cerr << e.what() << "\n" << platoon::platoon_spec_help() << "\n";
        std::exit(2);
      }
    }();
    if (leader == "stop-and-go") {
      pscenario.leader = std::make_shared<vehicle::StopAndGoProfile>();
    }
    const platoon::PlatoonResult result = [&] {
      telemetry::ScopedTimer span("platoon.scenario.run", "scenario");
      return pscenario.run();
    }();

    const platoon::PlatoonOptions& p = pscenario.config.platoon;
    std::cout << "platoon n=" << p.size << " attacked=" << p.attacked
              << " leader=" << pscenario.leader->name() << " attack="
              << (pscenario.attack ? pscenario.attack->name() : "none")
              << " defense=" << (options.defense_enabled ? "on" : "off")
              << "\n";
    for (const platoon::VehicleOutcome& v : result.followers) {
      std::printf(
          "  follower %2zu%s  min gap %8.2f m  peak dev %7.2f m  "
          "detected %-5s  safe-stop %zu\n",
          v.index, v.index == p.attacked ? "*" : " ", v.min_gap_m.value(),
          v.peak_gap_deviation_m.value(),
          v.detection_step ? std::to_string(*v.detection_step).c_str()
                           : "never",
          v.safe_stop_steps);
    }
    const platoon::PropagationMetrics& pm = result.metrics;
    std::cout << "collision: " << (result.collided ? "YES" : "no");
    if (result.collision_step) {
      std::cout << " at k = " << *result.collision_step << " (follower "
                << result.collision_index << ")";
    }
    std::printf(
        "\nshock depth: %zu   string L-inf amplification: %.3f\n"
        "detected vehicles: %zu   safe-stop vehicles: %zu   min gap: %.2f m\n",
        pm.shock_depth, pm.linf_amplification, pm.detected_vehicles,
        pm.safe_stop_vehicles, pm.min_gap_m.value());

    if (!csv_path.empty()) {
      std::ofstream csv(csv_path);
      if (!csv) {
        std::cerr << "cannot open " << csv_path << "\n";
        return 1;
      }
      result.trace.write_csv(csv);
      std::cout << "trace written to " << csv_path << "\n";
    }
    if (!write_telemetry_outputs(metrics_path, trace_path)) return 1;
    return result.collided ? 1 : 0;
  }

  core::Scenario scenario = [&] {
    try {
      return core::make_paper_scenario(options);
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n" << fault::fault_spec_help() << "\n";
      std::exit(2);
    }
  }();
  if (leader == "stop-and-go") {
    scenario.leader = std::make_shared<vehicle::StopAndGoProfile>();
  }

  const auto result = [&] {
    telemetry::ScopedTimer span("scenario.run", "scenario");
    return scenario.run();
  }();

  std::cout << "leader=" << scenario.leader->name()
            << " attack=" << (scenario.attack ? scenario.attack->name() : "none")
            << " defense=" << (options.defense_enabled ? "on" : "off") << "\n"
            << "min gap: " << result.min_gap_m.value() << " m\n"
            << "collision: " << (result.collided ? "YES" : "no");
  if (result.collision_step) std::cout << " at k = " << *result.collision_step;
  std::cout << "\ndetected: "
            << (result.detection_step ? "k = " + std::to_string(*result.detection_step)
                                      : std::string("never"))
            << " (FP " << result.detection_stats.false_positives << ", FN "
            << result.detection_stats.false_negatives << ")\n";

  if (!options.fault_spec.empty() || hardened) {
    const auto& hs = result.health_stats;
    std::cout << "faults: "
              << (scenario.config.faults ? scenario.config.faults->name()
                                         : std::string("none"))
              << "\nhealth: rejected non-finite " << hs.rejected_nonfinite
              << ", out-of-range " << hs.rejected_out_of_range
              << ", innovation " << hs.rejected_innovation
              << "; predictor resets " << hs.predictor_resets
              << "; bridged dropouts " << hs.bridged_dropouts << "\n"
              << "safe-stop steps: " << result.safe_stop_steps << " (entries "
              << hs.safe_stop_entries << ")\n"
              << "non-finite controller inputs: "
              << result.nonfinite_controller_inputs << "\n";
  }

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (!csv) {
      std::cerr << "cannot open " << csv_path << "\n";
      return 1;
    }
    result.trace.write_csv(csv);
    std::cout << "trace written to " << csv_path << "\n";
  }
  if (!write_telemetry_outputs(metrics_path, trace_path)) return 1;
  return result.collided ? 1 : 0;
}
