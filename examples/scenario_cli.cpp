// Command-line scenario runner: configure the case study without writing
// code and export the full trace as CSV for plotting.
//
// Usage:
//   scenario_cli [--leader decel|decel-accel|stop-and-go]
//                [--attack none|dos|delay] [--onset K] [--end K]
//                [--no-defense] [--estimator music|fft] [--seed N]
//                [--horizon K] [--csv PATH]
//                [--fault SPEC] [--hardened] [--max-holdover K]
//
// Example: reproduce Figure 2b and dump the series:
//   scenario_cli --leader decel --attack delay --onset 180 --csv fig2b.csv
//
// Example: drop 10 frames mid-run and emit NaNs, with the hardened
// degradation manager enabled:
//   scenario_cli --hardened
//                --fault "dropout:start=60,len=10;nan:start=100,period=25"
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "core/scenario.hpp"
#include "fault/schedule.hpp"
#include "vehicle/leader_profile.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--leader decel|decel-accel|stop-and-go] [--attack none|dos|delay]\n"
         "       [--onset K] [--end K] [--no-defense] [--estimator music|fft]\n"
         "       [--seed N] [--horizon K] [--csv PATH]\n"
         "       [--fault SPEC] [--hardened] [--max-holdover K]\n"
         "run `--fault help` for the fault-spec mini-language.\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace safe;

  core::ScenarioOptions options;
  std::string leader = "decel";
  std::string csv_path;
  bool hardened = false;
  std::size_t max_holdover = 15;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--leader") {
      leader = next();
    } else if (arg == "--attack") {
      const std::string v = next();
      if (v == "none") {
        options.attack = core::AttackKind::kNone;
      } else if (v == "dos") {
        options.attack = core::AttackKind::kDosJammer;
      } else if (v == "delay") {
        options.attack = core::AttackKind::kDelayInjection;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--onset") {
      options.attack_start_s = safe::units::Seconds{std::stod(next())};
    } else if (arg == "--end") {
      options.attack_end_s = safe::units::Seconds{std::stod(next())};
    } else if (arg == "--no-defense") {
      options.defense_enabled = false;
    } else if (arg == "--estimator") {
      const std::string v = next();
      if (v == "music") {
        options.estimator = radar::BeatEstimator::kRootMusic;
      } else if (v == "fft") {
        options.estimator = radar::BeatEstimator::kPeriodogram;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--seed") {
      options.seed = std::stoull(next());
    } else if (arg == "--horizon") {
      options.horizon_steps = std::stoll(next());
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--fault") {
      options.fault_spec = next();
      if (options.fault_spec == "help") {
        std::cout << fault::fault_spec_help() << "\n";
        return 0;
      }
    } else if (arg == "--hardened") {
      hardened = true;
    } else if (arg == "--max-holdover") {
      max_holdover = std::stoull(next());
      hardened = true;
    } else {
      usage(argv[0]);
    }
  }
  if (hardened) options.pipeline = core::hardened_pipeline_options(max_holdover);

  if (leader == "decel") {
    options.leader = core::LeaderScenario::kConstantDecel;
  } else if (leader == "decel-accel") {
    options.leader = core::LeaderScenario::kDecelThenAccel;
  } else if (leader != "stop-and-go") {
    usage(argv[0]);
  }

  core::Scenario scenario = [&] {
    try {
      return core::make_paper_scenario(options);
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n" << fault::fault_spec_help() << "\n";
      std::exit(2);
    }
  }();
  if (leader == "stop-and-go") {
    scenario.leader = std::make_shared<vehicle::StopAndGoProfile>();
  }

  const auto result = scenario.run();

  std::cout << "leader=" << scenario.leader->name()
            << " attack=" << (scenario.attack ? scenario.attack->name() : "none")
            << " defense=" << (options.defense_enabled ? "on" : "off") << "\n"
            << "min gap: " << result.min_gap_m.value() << " m\n"
            << "collision: " << (result.collided ? "YES" : "no");
  if (result.collision_step) std::cout << " at k = " << *result.collision_step;
  std::cout << "\ndetected: "
            << (result.detection_step ? "k = " + std::to_string(*result.detection_step)
                                      : std::string("never"))
            << " (FP " << result.detection_stats.false_positives << ", FN "
            << result.detection_stats.false_negatives << ")\n";

  if (!options.fault_spec.empty() || hardened) {
    const auto& hs = result.health_stats;
    std::cout << "faults: "
              << (scenario.config.faults ? scenario.config.faults->name()
                                         : std::string("none"))
              << "\nhealth: rejected non-finite " << hs.rejected_nonfinite
              << ", out-of-range " << hs.rejected_out_of_range
              << ", innovation " << hs.rejected_innovation
              << "; predictor resets " << hs.predictor_resets
              << "; bridged dropouts " << hs.bridged_dropouts << "\n"
              << "safe-stop steps: " << result.safe_stop_steps << " (entries "
              << hs.safe_stop_entries << ")\n"
              << "non-finite controller inputs: "
              << result.nonfinite_controller_inputs << "\n";
  }

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (!csv) {
      std::cerr << "cannot open " << csv_path << "\n";
      return 1;
    }
    result.trace.write_csv(csv);
    std::cout << "trace written to " << csv_path << "\n";
  }
  return result.collided ? 1 : 0;
}
