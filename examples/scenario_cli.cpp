// Command-line scenario runner: configure the case study without writing
// code and export the full trace as CSV for plotting.
//
// Usage:
//   scenario_cli [--leader decel|decel-accel|stop-and-go]
//                [--attack none|dos|delay] [--onset K] [--end K]
//                [--no-defense] [--estimator music|fft] [--seed N]
//                [--horizon K] [--csv PATH]
//
// Example: reproduce Figure 2b and dump the series:
//   scenario_cli --leader decel --attack delay --onset 180 --csv fig2b.csv
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "core/scenario.hpp"
#include "vehicle/leader_profile.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--leader decel|decel-accel|stop-and-go] [--attack none|dos|delay]\n"
         "       [--onset K] [--end K] [--no-defense] [--estimator music|fft]\n"
         "       [--seed N] [--horizon K] [--csv PATH]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace safe;

  core::ScenarioOptions options;
  std::string leader = "decel";
  std::string csv_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--leader") {
      leader = next();
    } else if (arg == "--attack") {
      const std::string v = next();
      if (v == "none") {
        options.attack = core::AttackKind::kNone;
      } else if (v == "dos") {
        options.attack = core::AttackKind::kDosJammer;
      } else if (v == "delay") {
        options.attack = core::AttackKind::kDelayInjection;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--onset") {
      options.attack_start_s = std::stod(next());
    } else if (arg == "--end") {
      options.attack_end_s = std::stod(next());
    } else if (arg == "--no-defense") {
      options.defense_enabled = false;
    } else if (arg == "--estimator") {
      const std::string v = next();
      if (v == "music") {
        options.estimator = radar::BeatEstimator::kRootMusic;
      } else if (v == "fft") {
        options.estimator = radar::BeatEstimator::kPeriodogram;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--seed") {
      options.seed = std::stoull(next());
    } else if (arg == "--horizon") {
      options.horizon_steps = std::stoll(next());
    } else if (arg == "--csv") {
      csv_path = next();
    } else {
      usage(argv[0]);
    }
  }

  if (leader == "decel") {
    options.leader = core::LeaderScenario::kConstantDecel;
  } else if (leader == "decel-accel") {
    options.leader = core::LeaderScenario::kDecelThenAccel;
  } else if (leader != "stop-and-go") {
    usage(argv[0]);
  }

  core::Scenario scenario = core::make_paper_scenario(options);
  if (leader == "stop-and-go") {
    scenario.leader = std::make_shared<vehicle::StopAndGoProfile>();
  }

  const auto result = scenario.run();

  std::cout << "leader=" << scenario.leader->name()
            << " attack=" << (scenario.attack ? scenario.attack->name() : "none")
            << " defense=" << (options.defense_enabled ? "on" : "off") << "\n"
            << "min gap: " << result.min_gap_m << " m\n"
            << "collision: " << (result.collided ? "YES" : "no");
  if (result.collision_step) std::cout << " at k = " << *result.collision_step;
  std::cout << "\ndetected: "
            << (result.detection_step ? "k = " + std::to_string(*result.detection_step)
                                      : std::string("never"))
            << " (FP " << result.detection_stats.false_positives << ", FN "
            << result.detection_stats.false_negatives << ")\n";

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (!csv) {
      std::cerr << "cannot open " << csv_path << "\n";
      return 1;
    }
    result.trace.write_csv(csv);
    std::cout << "trace written to " << csv_path << "\n";
  }
  return result.collided ? 1 : 0;
}
