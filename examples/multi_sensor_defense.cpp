// Multi-sensor defense walkthrough: the same CRA contract on ultrasonic and
// lidar ToF sensors, plus the redundancy-fusion baseline and where it breaks.
#include <iostream>
#include <memory>

#include "core/parking.hpp"
#include "sensors/fusion_detector.hpp"
#include "sensors/tof_sensor.hpp"

int main() {
  using namespace safe;
  namespace units = safe::units;

  std::cout << "CRA beyond radar: ultrasonic park assist under spoofing\n"
            << "=======================================================\n\n";

  const auto schedule =
      std::make_shared<cra::PrbsChallengeSchedule>(0x0B5E, 1, 5, 200);
  core::ParkingAttack spoof;
  spoof.kind = core::ParkingAttack::Kind::kSpoof;
  spoof.window =
      attack::AttackWindow{units::Seconds{40.0}, units::Seconds{200.0}};

  for (const bool defended : {false, true}) {
    core::ParkingConfig cfg;
    cfg.defense_enabled = defended;
    core::ParkingSimulation sim(cfg, schedule, spoof);
    const auto r = sim.run();
    std::cout << (defended ? "defended  " : "undefended") << ": final clearance "
              << r.final_clearance_m.value() << " m, "
              << (r.collided ? "HIT THE OBSTACLE" : "stopped safely");
    if (r.detection_step) {
      std::cout << ", spoof detected at ping " << *r.detection_step;
    }
    std::cout << "\n";
  }

  std::cout << "\nSame defense, lidar profile (8 m approach):\n";
  core::ParkingConfig lidar_cfg;
  lidar_cfg.sensor = sensors::lidar_parameters();
  lidar_cfg.initial_clearance_m = units::Meters{8.0};
  core::ParkingSimulation lidar_sim(lidar_cfg, schedule, spoof);
  const auto lidar_run = lidar_sim.run();
  std::cout << "defended  : final clearance "
            << lidar_run.final_clearance_m.value() << " m, "
            << (lidar_run.collided ? "HIT THE OBSTACLE" : "stopped safely")
            << "\n\n";

  std::cout << "Redundancy fusion baseline (radar+lidar cross-check):\n";
  sensors::FusionDetector fusion({.disagreement_threshold_m = units::Meters{1.0},
                                  .required_consecutive = 2});
  // One-channel spoof: disagreement reveals it.
  fusion.observe(true, units::Meters{46.0}, true, units::Meters{40.0});
  fusion.observe(true, units::Meters{45.8}, true, units::Meters{39.8});
  std::cout << "  one-channel spoof  -> "
            << (fusion.under_attack() ? "detected" : "missed") << "\n";
  fusion.reset();
  // Coordinated spoof: both channels consistent, fusion is blind.
  for (int i = 0; i < 10; ++i) {
    fusion.observe(true, units::Meters{46.0}, true, units::Meters{46.0});
  }
  std::cout << "  coordinated spoof  -> "
            << (fusion.under_attack() ? "detected" : "missed (CRA still "
                                                     "catches this case)")
            << "\n";
  return 0;
}
