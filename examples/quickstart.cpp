// Quickstart: run the paper's DoS-attack case study with and without the
// CRA + RLS defense and print what happened.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
#include <iostream>

#include "core/scenario.hpp"

int main() {
  using namespace safe;

  // Scenario (i): leader decelerates at -0.1082 m/s^2; a self-screening
  // jammer attacks the follower's radar from k = 182 s.
  core::ScenarioOptions options;
  options.leader = core::LeaderScenario::kConstantDecel;
  options.attack = core::AttackKind::kDosJammer;
  options.estimator = radar::BeatEstimator::kPeriodogram;  // fast estimator

  std::cout << "=== Defended run (CRA detection + RLS estimation) ===\n";
  options.defense_enabled = true;
  const auto defended = core::make_paper_scenario(options).run();
  std::cout << "detected attack at k = "
            << (defended.detection_step ? std::to_string(*defended.detection_step)
                                        : std::string("never"))
            << "\nfalse positives: " << defended.detection_stats.false_positives
            << ", false negatives: " << defended.detection_stats.false_negatives
            << "\nminimum gap: " << defended.min_gap_m.value() << " m"
            << "\ncollision: " << (defended.collided ? "YES" : "no") << "\n\n";

  std::cout << "=== Undefended run (raw radar feeds the ACC) ===\n";
  options.defense_enabled = false;
  const auto undefended = core::make_paper_scenario(options).run();
  std::cout << "minimum gap: " << undefended.min_gap_m.value() << " m"
            << "\ncollision: " << (undefended.collided ? "YES" : "no")
            << "\n\n";

  std::cout << "Last 5 defended trace rows (subsampled):\n";
  defended.trace.write_table(std::cout, 74);
  return 0;
}
