// Delay-injection (spoofing) attack on the ACC follower — the paper's
// Figure 2b/3b story, plus the future-work adversary that evades CRA.
//
// The attacker replays a counterfeit echo with 40 ns of extra delay so the
// leader appears 6 m further away; the follower consequently fails to slow
// down as it should. CRA catches the replay at the first challenge because
// the counterfeit keeps radiating when the probe is suppressed.
#include <iostream>
#include <memory>

#include "attack/delay_injection.hpp"
#include "attack/window.hpp"
#include "core/scenario.hpp"

namespace {

void run_standard(safe::core::LeaderScenario leader, const char* label) {
  using namespace safe::core;
  ScenarioOptions o;
  o.leader = leader;
  o.attack = AttackKind::kDelayInjection;
  o.attack_start_s =
      safe::units::Seconds{180.0};  // paper: spoofed distances from k = 180

  std::cout << "--- " << label << " ---\n";

  o.defense_enabled = false;
  const auto undefended = make_paper_scenario(o).run();
  std::cout << "undefended: min real gap " << undefended.min_gap_m.value()
            << " m"
            << (undefended.collided ? " (COLLISION)" : "") << "\n";

  o.defense_enabled = true;
  const auto defended = make_paper_scenario(o).run();
  std::cout << "defended:   min real gap " << defended.min_gap_m.value()
            << " m, detected at k = "
            << (defended.detection_step
                    ? std::to_string(*defended.detection_step)
                    : std::string("never"))
            << " (FP " << defended.detection_stats.false_positives << ", FN "
            << defended.detection_stats.false_negatives << ")\n";

  // Show the +6 m illusion around the attack onset.
  const auto& truth = defended.trace.column("true_gap_m");
  const auto& meas = defended.trace.column("meas_gap_m");
  std::cout << "radar-reported vs true gap near onset:\n";
  for (std::size_t k = 178; k <= 186; ++k) {
    std::cout << "  k=" << k << "  true " << truth[k] << " m, radar "
              << meas[k] << " m\n";
  }
  std::cout << "\n";
}

void run_evading_adversary() {
  using namespace safe;
  using namespace safe::core;
  // Section 7 limitation: an adversary that samples faster than the
  // defender mutes its replay during challenge slots and stays invisible.
  ScenarioOptions o;
  o.attack = AttackKind::kNone;
  Scenario scenario = make_paper_scenario(o);

  attack::DelayInjectionConfig cfg;
  cfg.evades_challenges = true;
  scenario.attack = std::make_shared<attack::ScheduledAttack>(
      std::make_shared<attack::DelayInjectionAttack>(cfg),
      attack::AttackWindow{units::Seconds{180.0}, units::Seconds{300.0}});

  const auto result = scenario.run();
  std::cout << "--- fast adversary that evades challenges (paper Sec. 7) ---\n"
            << "detected: "
            << (result.detection_step ? "yes" : "NO (defense blind, as the "
                                                "paper's future work warns)")
            << ", min real gap " << result.min_gap_m.value() << " m\n";
}

}  // namespace

int main() {
  std::cout << "Delay-injection attack on the follower vehicle's radar\n"
            << "======================================================\n\n";
  run_standard(safe::core::LeaderScenario::kConstantDecel,
               "scenario (i): leader decelerates at -0.1082 m/s^2");
  run_standard(safe::core::LeaderScenario::kDecelThenAccel,
               "scenario (ii): leader decelerates, then accelerates");
  run_evading_adversary();
  return 0;
}
