file(REMOVE_RECURSE
  "CMakeFiles/safe_vehicle.dir/lateral.cpp.o"
  "CMakeFiles/safe_vehicle.dir/lateral.cpp.o.d"
  "CMakeFiles/safe_vehicle.dir/leader_profile.cpp.o"
  "CMakeFiles/safe_vehicle.dir/leader_profile.cpp.o.d"
  "CMakeFiles/safe_vehicle.dir/longitudinal.cpp.o"
  "CMakeFiles/safe_vehicle.dir/longitudinal.cpp.o.d"
  "libsafe_vehicle.a"
  "libsafe_vehicle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_vehicle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
