file(REMOVE_RECURSE
  "libsafe_vehicle.a"
)
