# Empty compiler generated dependencies file for safe_vehicle.
# This may be replaced when dependencies are built.
