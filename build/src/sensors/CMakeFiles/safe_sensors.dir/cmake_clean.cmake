file(REMOVE_RECURSE
  "CMakeFiles/safe_sensors.dir/fusion_detector.cpp.o"
  "CMakeFiles/safe_sensors.dir/fusion_detector.cpp.o.d"
  "CMakeFiles/safe_sensors.dir/tof_sensor.cpp.o"
  "CMakeFiles/safe_sensors.dir/tof_sensor.cpp.o.d"
  "libsafe_sensors.a"
  "libsafe_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
