# Empty dependencies file for safe_sensors.
# This may be replaced when dependencies are built.
