file(REMOVE_RECURSE
  "libsafe_sensors.a"
)
