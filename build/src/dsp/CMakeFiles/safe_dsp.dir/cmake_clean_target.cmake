file(REMOVE_RECURSE
  "libsafe_dsp.a"
)
