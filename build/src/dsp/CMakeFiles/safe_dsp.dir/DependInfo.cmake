
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/cfar.cpp" "src/dsp/CMakeFiles/safe_dsp.dir/cfar.cpp.o" "gcc" "src/dsp/CMakeFiles/safe_dsp.dir/cfar.cpp.o.d"
  "/root/repo/src/dsp/covariance.cpp" "src/dsp/CMakeFiles/safe_dsp.dir/covariance.cpp.o" "gcc" "src/dsp/CMakeFiles/safe_dsp.dir/covariance.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/safe_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/safe_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/levinson.cpp" "src/dsp/CMakeFiles/safe_dsp.dir/levinson.cpp.o" "gcc" "src/dsp/CMakeFiles/safe_dsp.dir/levinson.cpp.o.d"
  "/root/repo/src/dsp/music.cpp" "src/dsp/CMakeFiles/safe_dsp.dir/music.cpp.o" "gcc" "src/dsp/CMakeFiles/safe_dsp.dir/music.cpp.o.d"
  "/root/repo/src/dsp/prbs.cpp" "src/dsp/CMakeFiles/safe_dsp.dir/prbs.cpp.o" "gcc" "src/dsp/CMakeFiles/safe_dsp.dir/prbs.cpp.o.d"
  "/root/repo/src/dsp/spectral.cpp" "src/dsp/CMakeFiles/safe_dsp.dir/spectral.cpp.o" "gcc" "src/dsp/CMakeFiles/safe_dsp.dir/spectral.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/dsp/CMakeFiles/safe_dsp.dir/window.cpp.o" "gcc" "src/dsp/CMakeFiles/safe_dsp.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/safe_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/safe_estimation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
