file(REMOVE_RECURSE
  "CMakeFiles/safe_dsp.dir/cfar.cpp.o"
  "CMakeFiles/safe_dsp.dir/cfar.cpp.o.d"
  "CMakeFiles/safe_dsp.dir/covariance.cpp.o"
  "CMakeFiles/safe_dsp.dir/covariance.cpp.o.d"
  "CMakeFiles/safe_dsp.dir/fft.cpp.o"
  "CMakeFiles/safe_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/safe_dsp.dir/levinson.cpp.o"
  "CMakeFiles/safe_dsp.dir/levinson.cpp.o.d"
  "CMakeFiles/safe_dsp.dir/music.cpp.o"
  "CMakeFiles/safe_dsp.dir/music.cpp.o.d"
  "CMakeFiles/safe_dsp.dir/prbs.cpp.o"
  "CMakeFiles/safe_dsp.dir/prbs.cpp.o.d"
  "CMakeFiles/safe_dsp.dir/spectral.cpp.o"
  "CMakeFiles/safe_dsp.dir/spectral.cpp.o.d"
  "CMakeFiles/safe_dsp.dir/window.cpp.o"
  "CMakeFiles/safe_dsp.dir/window.cpp.o.d"
  "libsafe_dsp.a"
  "libsafe_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
