# Empty compiler generated dependencies file for safe_dsp.
# This may be replaced when dependencies are built.
