# Empty compiler generated dependencies file for safe_cra.
# This may be replaced when dependencies are built.
