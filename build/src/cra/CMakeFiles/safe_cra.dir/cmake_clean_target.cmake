file(REMOVE_RECURSE
  "libsafe_cra.a"
)
