
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cra/challenge.cpp" "src/cra/CMakeFiles/safe_cra.dir/challenge.cpp.o" "gcc" "src/cra/CMakeFiles/safe_cra.dir/challenge.cpp.o.d"
  "/root/repo/src/cra/detector.cpp" "src/cra/CMakeFiles/safe_cra.dir/detector.cpp.o" "gcc" "src/cra/CMakeFiles/safe_cra.dir/detector.cpp.o.d"
  "/root/repo/src/cra/waveform_auth.cpp" "src/cra/CMakeFiles/safe_cra.dir/waveform_auth.cpp.o" "gcc" "src/cra/CMakeFiles/safe_cra.dir/waveform_auth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/safe_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/safe_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/safe_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
