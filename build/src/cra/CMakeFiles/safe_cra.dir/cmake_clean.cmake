file(REMOVE_RECURSE
  "CMakeFiles/safe_cra.dir/challenge.cpp.o"
  "CMakeFiles/safe_cra.dir/challenge.cpp.o.d"
  "CMakeFiles/safe_cra.dir/detector.cpp.o"
  "CMakeFiles/safe_cra.dir/detector.cpp.o.d"
  "CMakeFiles/safe_cra.dir/waveform_auth.cpp.o"
  "CMakeFiles/safe_cra.dir/waveform_auth.cpp.o.d"
  "libsafe_cra.a"
  "libsafe_cra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_cra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
