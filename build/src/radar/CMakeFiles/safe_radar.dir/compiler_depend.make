# Empty compiler generated dependencies file for safe_radar.
# This may be replaced when dependencies are built.
