file(REMOVE_RECURSE
  "libsafe_radar.a"
)
