file(REMOVE_RECURSE
  "CMakeFiles/safe_radar.dir/fmcw.cpp.o"
  "CMakeFiles/safe_radar.dir/fmcw.cpp.o.d"
  "CMakeFiles/safe_radar.dir/link_budget.cpp.o"
  "CMakeFiles/safe_radar.dir/link_budget.cpp.o.d"
  "CMakeFiles/safe_radar.dir/processor.cpp.o"
  "CMakeFiles/safe_radar.dir/processor.cpp.o.d"
  "CMakeFiles/safe_radar.dir/tracker.cpp.o"
  "CMakeFiles/safe_radar.dir/tracker.cpp.o.d"
  "libsafe_radar.a"
  "libsafe_radar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_radar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
