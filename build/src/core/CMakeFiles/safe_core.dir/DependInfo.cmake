
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/car_following.cpp" "src/core/CMakeFiles/safe_core.dir/car_following.cpp.o" "gcc" "src/core/CMakeFiles/safe_core.dir/car_following.cpp.o.d"
  "/root/repo/src/core/lti_case.cpp" "src/core/CMakeFiles/safe_core.dir/lti_case.cpp.o" "gcc" "src/core/CMakeFiles/safe_core.dir/lti_case.cpp.o.d"
  "/root/repo/src/core/parking.cpp" "src/core/CMakeFiles/safe_core.dir/parking.cpp.o" "gcc" "src/core/CMakeFiles/safe_core.dir/parking.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/safe_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/safe_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/safe_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/safe_core.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/safe_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/safe_control.dir/DependInfo.cmake"
  "/root/repo/build/src/cra/CMakeFiles/safe_cra.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/safe_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/radar/CMakeFiles/safe_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/safe_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/safe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vehicle/CMakeFiles/safe_vehicle.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/safe_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/safe_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
