file(REMOVE_RECURSE
  "CMakeFiles/safe_core.dir/car_following.cpp.o"
  "CMakeFiles/safe_core.dir/car_following.cpp.o.d"
  "CMakeFiles/safe_core.dir/lti_case.cpp.o"
  "CMakeFiles/safe_core.dir/lti_case.cpp.o.d"
  "CMakeFiles/safe_core.dir/parking.cpp.o"
  "CMakeFiles/safe_core.dir/parking.cpp.o.d"
  "CMakeFiles/safe_core.dir/pipeline.cpp.o"
  "CMakeFiles/safe_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/safe_core.dir/scenario.cpp.o"
  "CMakeFiles/safe_core.dir/scenario.cpp.o.d"
  "libsafe_core.a"
  "libsafe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
