file(REMOVE_RECURSE
  "libsafe_core.a"
)
