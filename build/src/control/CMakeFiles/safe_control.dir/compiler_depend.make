# Empty compiler generated dependencies file for safe_control.
# This may be replaced when dependencies are built.
