file(REMOVE_RECURSE
  "CMakeFiles/safe_control.dir/acc.cpp.o"
  "CMakeFiles/safe_control.dir/acc.cpp.o.d"
  "CMakeFiles/safe_control.dir/idm.cpp.o"
  "CMakeFiles/safe_control.dir/idm.cpp.o.d"
  "CMakeFiles/safe_control.dir/lane_keeping.cpp.o"
  "CMakeFiles/safe_control.dir/lane_keeping.cpp.o.d"
  "libsafe_control.a"
  "libsafe_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
