
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/acc.cpp" "src/control/CMakeFiles/safe_control.dir/acc.cpp.o" "gcc" "src/control/CMakeFiles/safe_control.dir/acc.cpp.o.d"
  "/root/repo/src/control/idm.cpp" "src/control/CMakeFiles/safe_control.dir/idm.cpp.o" "gcc" "src/control/CMakeFiles/safe_control.dir/idm.cpp.o.d"
  "/root/repo/src/control/lane_keeping.cpp" "src/control/CMakeFiles/safe_control.dir/lane_keeping.cpp.o" "gcc" "src/control/CMakeFiles/safe_control.dir/lane_keeping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
