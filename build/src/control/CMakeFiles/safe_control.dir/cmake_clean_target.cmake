file(REMOVE_RECURSE
  "libsafe_control.a"
)
