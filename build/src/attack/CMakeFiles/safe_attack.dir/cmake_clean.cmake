file(REMOVE_RECURSE
  "CMakeFiles/safe_attack.dir/delay_injection.cpp.o"
  "CMakeFiles/safe_attack.dir/delay_injection.cpp.o.d"
  "CMakeFiles/safe_attack.dir/dos_jammer.cpp.o"
  "CMakeFiles/safe_attack.dir/dos_jammer.cpp.o.d"
  "libsafe_attack.a"
  "libsafe_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
