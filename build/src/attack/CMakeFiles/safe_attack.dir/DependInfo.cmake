
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/delay_injection.cpp" "src/attack/CMakeFiles/safe_attack.dir/delay_injection.cpp.o" "gcc" "src/attack/CMakeFiles/safe_attack.dir/delay_injection.cpp.o.d"
  "/root/repo/src/attack/dos_jammer.cpp" "src/attack/CMakeFiles/safe_attack.dir/dos_jammer.cpp.o" "gcc" "src/attack/CMakeFiles/safe_attack.dir/dos_jammer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/radar/CMakeFiles/safe_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/safe_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/safe_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/safe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/safe_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
