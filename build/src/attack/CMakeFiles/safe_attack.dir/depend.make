# Empty dependencies file for safe_attack.
# This may be replaced when dependencies are built.
