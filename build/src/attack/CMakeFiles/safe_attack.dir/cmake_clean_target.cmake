file(REMOVE_RECURSE
  "libsafe_attack.a"
)
