# Empty compiler generated dependencies file for safe_sim.
# This may be replaced when dependencies are built.
