file(REMOVE_RECURSE
  "CMakeFiles/safe_sim.dir/lti_system.cpp.o"
  "CMakeFiles/safe_sim.dir/lti_system.cpp.o.d"
  "CMakeFiles/safe_sim.dir/noise.cpp.o"
  "CMakeFiles/safe_sim.dir/noise.cpp.o.d"
  "CMakeFiles/safe_sim.dir/trace.cpp.o"
  "CMakeFiles/safe_sim.dir/trace.cpp.o.d"
  "libsafe_sim.a"
  "libsafe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
