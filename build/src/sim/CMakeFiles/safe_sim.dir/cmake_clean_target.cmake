file(REMOVE_RECURSE
  "libsafe_sim.a"
)
