# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("linalg")
subdirs("dsp")
subdirs("sim")
subdirs("radar")
subdirs("sensors")
subdirs("attack")
subdirs("cra")
subdirs("estimation")
subdirs("control")
subdirs("vehicle")
subdirs("core")
