file(REMOVE_RECURSE
  "CMakeFiles/safe_linalg.dir/polynomial.cpp.o"
  "CMakeFiles/safe_linalg.dir/polynomial.cpp.o.d"
  "libsafe_linalg.a"
  "libsafe_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
