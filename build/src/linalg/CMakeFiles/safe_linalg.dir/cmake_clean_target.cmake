file(REMOVE_RECURSE
  "libsafe_linalg.a"
)
