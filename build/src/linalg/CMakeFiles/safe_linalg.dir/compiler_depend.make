# Empty compiler generated dependencies file for safe_linalg.
# This may be replaced when dependencies are built.
