file(REMOVE_RECURSE
  "libsafe_estimation.a"
)
