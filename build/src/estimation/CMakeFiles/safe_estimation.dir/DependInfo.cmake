
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimation/baselines.cpp" "src/estimation/CMakeFiles/safe_estimation.dir/baselines.cpp.o" "gcc" "src/estimation/CMakeFiles/safe_estimation.dir/baselines.cpp.o.d"
  "/root/repo/src/estimation/chi_square.cpp" "src/estimation/CMakeFiles/safe_estimation.dir/chi_square.cpp.o" "gcc" "src/estimation/CMakeFiles/safe_estimation.dir/chi_square.cpp.o.d"
  "/root/repo/src/estimation/kalman.cpp" "src/estimation/CMakeFiles/safe_estimation.dir/kalman.cpp.o" "gcc" "src/estimation/CMakeFiles/safe_estimation.dir/kalman.cpp.o.d"
  "/root/repo/src/estimation/rls.cpp" "src/estimation/CMakeFiles/safe_estimation.dir/rls.cpp.o" "gcc" "src/estimation/CMakeFiles/safe_estimation.dir/rls.cpp.o.d"
  "/root/repo/src/estimation/rls_predictor.cpp" "src/estimation/CMakeFiles/safe_estimation.dir/rls_predictor.cpp.o" "gcc" "src/estimation/CMakeFiles/safe_estimation.dir/rls_predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/safe_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
