# Empty compiler generated dependencies file for safe_estimation.
# This may be replaced when dependencies are built.
