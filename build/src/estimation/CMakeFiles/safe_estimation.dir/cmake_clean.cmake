file(REMOVE_RECURSE
  "CMakeFiles/safe_estimation.dir/baselines.cpp.o"
  "CMakeFiles/safe_estimation.dir/baselines.cpp.o.d"
  "CMakeFiles/safe_estimation.dir/chi_square.cpp.o"
  "CMakeFiles/safe_estimation.dir/chi_square.cpp.o.d"
  "CMakeFiles/safe_estimation.dir/kalman.cpp.o"
  "CMakeFiles/safe_estimation.dir/kalman.cpp.o.d"
  "CMakeFiles/safe_estimation.dir/rls.cpp.o"
  "CMakeFiles/safe_estimation.dir/rls.cpp.o.d"
  "CMakeFiles/safe_estimation.dir/rls_predictor.cpp.o"
  "CMakeFiles/safe_estimation.dir/rls_predictor.cpp.o.d"
  "libsafe_estimation.a"
  "libsafe_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
