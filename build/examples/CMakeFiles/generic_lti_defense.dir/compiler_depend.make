# Empty compiler generated dependencies file for generic_lti_defense.
# This may be replaced when dependencies are built.
