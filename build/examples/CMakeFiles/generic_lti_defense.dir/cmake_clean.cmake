file(REMOVE_RECURSE
  "CMakeFiles/generic_lti_defense.dir/generic_lti_defense.cpp.o"
  "CMakeFiles/generic_lti_defense.dir/generic_lti_defense.cpp.o.d"
  "generic_lti_defense"
  "generic_lti_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_lti_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
