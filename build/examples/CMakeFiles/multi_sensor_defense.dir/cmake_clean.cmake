file(REMOVE_RECURSE
  "CMakeFiles/multi_sensor_defense.dir/multi_sensor_defense.cpp.o"
  "CMakeFiles/multi_sensor_defense.dir/multi_sensor_defense.cpp.o.d"
  "multi_sensor_defense"
  "multi_sensor_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_sensor_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
