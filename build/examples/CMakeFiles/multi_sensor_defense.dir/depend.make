# Empty dependencies file for multi_sensor_defense.
# This may be replaced when dependencies are built.
