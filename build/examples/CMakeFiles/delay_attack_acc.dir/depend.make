# Empty dependencies file for delay_attack_acc.
# This may be replaced when dependencies are built.
