file(REMOVE_RECURSE
  "CMakeFiles/delay_attack_acc.dir/delay_attack_acc.cpp.o"
  "CMakeFiles/delay_attack_acc.dir/delay_attack_acc.cpp.o.d"
  "delay_attack_acc"
  "delay_attack_acc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_attack_acc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
