file(REMOVE_RECURSE
  "CMakeFiles/radar_signal_path.dir/radar_signal_path.cpp.o"
  "CMakeFiles/radar_signal_path.dir/radar_signal_path.cpp.o.d"
  "radar_signal_path"
  "radar_signal_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radar_signal_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
