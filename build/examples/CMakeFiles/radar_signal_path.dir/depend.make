# Empty dependencies file for radar_signal_path.
# This may be replaced when dependencies are built.
