# Empty compiler generated dependencies file for dos_attack_acc.
# This may be replaced when dependencies are built.
