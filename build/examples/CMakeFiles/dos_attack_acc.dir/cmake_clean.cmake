file(REMOVE_RECURSE
  "CMakeFiles/dos_attack_acc.dir/dos_attack_acc.cpp.o"
  "CMakeFiles/dos_attack_acc.dir/dos_attack_acc.cpp.o.d"
  "dos_attack_acc"
  "dos_attack_acc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dos_attack_acc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
