file(REMOVE_RECURSE
  "CMakeFiles/results_detection_table.dir/results_detection_table.cpp.o"
  "CMakeFiles/results_detection_table.dir/results_detection_table.cpp.o.d"
  "results_detection_table"
  "results_detection_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/results_detection_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
