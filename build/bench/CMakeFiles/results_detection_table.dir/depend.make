# Empty dependencies file for results_detection_table.
# This may be replaced when dependencies are built.
