# Empty dependencies file for fig3b_delay_decel_accel.
# This may be replaced when dependencies are built.
