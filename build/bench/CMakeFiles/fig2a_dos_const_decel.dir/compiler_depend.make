# Empty compiler generated dependencies file for fig2a_dos_const_decel.
# This may be replaced when dependencies are built.
