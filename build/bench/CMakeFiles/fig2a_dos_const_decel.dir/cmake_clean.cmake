file(REMOVE_RECURSE
  "CMakeFiles/fig2a_dos_const_decel.dir/fig2a_dos_const_decel.cpp.o"
  "CMakeFiles/fig2a_dos_const_decel.dir/fig2a_dos_const_decel.cpp.o.d"
  "fig2a_dos_const_decel"
  "fig2a_dos_const_decel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_dos_const_decel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
