file(REMOVE_RECURSE
  "CMakeFiles/fig3a_dos_decel_accel.dir/fig3a_dos_decel_accel.cpp.o"
  "CMakeFiles/fig3a_dos_decel_accel.dir/fig3a_dos_decel_accel.cpp.o.d"
  "fig3a_dos_decel_accel"
  "fig3a_dos_decel_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_dos_decel_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
