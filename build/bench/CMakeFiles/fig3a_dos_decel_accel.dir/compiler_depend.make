# Empty compiler generated dependencies file for fig3a_dos_decel_accel.
# This may be replaced when dependencies are built.
