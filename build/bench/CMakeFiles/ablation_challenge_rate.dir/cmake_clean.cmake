file(REMOVE_RECURSE
  "CMakeFiles/ablation_challenge_rate.dir/ablation_challenge_rate.cpp.o"
  "CMakeFiles/ablation_challenge_rate.dir/ablation_challenge_rate.cpp.o.d"
  "ablation_challenge_rate"
  "ablation_challenge_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_challenge_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
