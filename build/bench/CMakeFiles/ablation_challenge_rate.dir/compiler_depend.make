# Empty compiler generated dependencies file for ablation_challenge_rate.
# This may be replaced when dependencies are built.
