
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_challenge_rate.cpp" "bench/CMakeFiles/ablation_challenge_rate.dir/ablation_challenge_rate.cpp.o" "gcc" "bench/CMakeFiles/ablation_challenge_rate.dir/ablation_challenge_rate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/safe_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/safe_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/safe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/radar/CMakeFiles/safe_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/safe_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/safe_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/cra/CMakeFiles/safe_cra.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/safe_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/safe_control.dir/DependInfo.cmake"
  "/root/repo/build/src/vehicle/CMakeFiles/safe_vehicle.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/safe_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
