file(REMOVE_RECURSE
  "CMakeFiles/ablation_jammer_sweep.dir/ablation_jammer_sweep.cpp.o"
  "CMakeFiles/ablation_jammer_sweep.dir/ablation_jammer_sweep.cpp.o.d"
  "ablation_jammer_sweep"
  "ablation_jammer_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_jammer_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
