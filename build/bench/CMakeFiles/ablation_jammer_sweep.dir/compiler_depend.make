# Empty compiler generated dependencies file for ablation_jammer_sweep.
# This may be replaced when dependencies are built.
