# Empty dependencies file for fig2b_delay_const_decel.
# This may be replaced when dependencies are built.
