file(REMOVE_RECURSE
  "CMakeFiles/fig2b_delay_const_decel.dir/fig2b_delay_const_decel.cpp.o"
  "CMakeFiles/fig2b_delay_const_decel.dir/fig2b_delay_const_decel.cpp.o.d"
  "fig2b_delay_const_decel"
  "fig2b_delay_const_decel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_delay_const_decel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
