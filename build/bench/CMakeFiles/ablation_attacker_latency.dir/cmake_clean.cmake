file(REMOVE_RECURSE
  "CMakeFiles/ablation_attacker_latency.dir/ablation_attacker_latency.cpp.o"
  "CMakeFiles/ablation_attacker_latency.dir/ablation_attacker_latency.cpp.o.d"
  "ablation_attacker_latency"
  "ablation_attacker_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_attacker_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
