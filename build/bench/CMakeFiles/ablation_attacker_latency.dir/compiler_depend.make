# Empty compiler generated dependencies file for ablation_attacker_latency.
# This may be replaced when dependencies are built.
