# Empty dependencies file for ablation_sensors.
# This may be replaced when dependencies are built.
