file(REMOVE_RECURSE
  "CMakeFiles/ablation_sensors.dir/ablation_sensors.cpp.o"
  "CMakeFiles/ablation_sensors.dir/ablation_sensors.cpp.o.d"
  "ablation_sensors"
  "ablation_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
