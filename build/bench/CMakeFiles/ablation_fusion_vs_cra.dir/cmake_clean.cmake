file(REMOVE_RECURSE
  "CMakeFiles/ablation_fusion_vs_cra.dir/ablation_fusion_vs_cra.cpp.o"
  "CMakeFiles/ablation_fusion_vs_cra.dir/ablation_fusion_vs_cra.cpp.o.d"
  "ablation_fusion_vs_cra"
  "ablation_fusion_vs_cra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fusion_vs_cra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
