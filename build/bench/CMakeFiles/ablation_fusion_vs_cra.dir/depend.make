# Empty dependencies file for ablation_fusion_vs_cra.
# This may be replaced when dependencies are built.
