# Empty compiler generated dependencies file for ablation_music_vs_fft.
# This may be replaced when dependencies are built.
