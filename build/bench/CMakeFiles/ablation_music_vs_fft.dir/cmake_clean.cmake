file(REMOVE_RECURSE
  "CMakeFiles/ablation_music_vs_fft.dir/ablation_music_vs_fft.cpp.o"
  "CMakeFiles/ablation_music_vs_fft.dir/ablation_music_vs_fft.cpp.o.d"
  "ablation_music_vs_fft"
  "ablation_music_vs_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_music_vs_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
