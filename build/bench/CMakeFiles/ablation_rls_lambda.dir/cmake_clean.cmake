file(REMOVE_RECURSE
  "CMakeFiles/ablation_rls_lambda.dir/ablation_rls_lambda.cpp.o"
  "CMakeFiles/ablation_rls_lambda.dir/ablation_rls_lambda.cpp.o.d"
  "ablation_rls_lambda"
  "ablation_rls_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rls_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
