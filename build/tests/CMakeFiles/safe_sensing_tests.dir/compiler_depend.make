# Empty compiler generated dependencies file for safe_sensing_tests.
# This may be replaced when dependencies are built.
