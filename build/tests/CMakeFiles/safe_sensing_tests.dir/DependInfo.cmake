
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/attack_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/attack_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/attack_test.cpp.o.d"
  "/root/repo/tests/control_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/control_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/control_test.cpp.o.d"
  "/root/repo/tests/core_car_following_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/core_car_following_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/core_car_following_test.cpp.o.d"
  "/root/repo/tests/core_fuzz_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/core_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/core_fuzz_test.cpp.o.d"
  "/root/repo/tests/core_lti_case_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/core_lti_case_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/core_lti_case_test.cpp.o.d"
  "/root/repo/tests/core_parking_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/core_parking_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/core_parking_test.cpp.o.d"
  "/root/repo/tests/core_pipeline_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/core_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/core_pipeline_test.cpp.o.d"
  "/root/repo/tests/cra_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/cra_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/cra_test.cpp.o.d"
  "/root/repo/tests/cra_waveform_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/cra_waveform_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/cra_waveform_test.cpp.o.d"
  "/root/repo/tests/dsp_cfar_levinson_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/dsp_cfar_levinson_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/dsp_cfar_levinson_test.cpp.o.d"
  "/root/repo/tests/dsp_fft_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/dsp_fft_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/dsp_fft_test.cpp.o.d"
  "/root/repo/tests/dsp_music_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/dsp_music_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/dsp_music_test.cpp.o.d"
  "/root/repo/tests/estimation_baselines_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/estimation_baselines_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/estimation_baselines_test.cpp.o.d"
  "/root/repo/tests/estimation_rls_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/estimation_rls_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/estimation_rls_test.cpp.o.d"
  "/root/repo/tests/lateral_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/lateral_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/lateral_test.cpp.o.d"
  "/root/repo/tests/linalg_decompositions_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/linalg_decompositions_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/linalg_decompositions_test.cpp.o.d"
  "/root/repo/tests/linalg_eigen_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/linalg_eigen_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/linalg_eigen_test.cpp.o.d"
  "/root/repo/tests/linalg_matrix_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/linalg_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/linalg_matrix_test.cpp.o.d"
  "/root/repo/tests/linalg_polynomial_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/linalg_polynomial_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/linalg_polynomial_test.cpp.o.d"
  "/root/repo/tests/radar_fmcw_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/radar_fmcw_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/radar_fmcw_test.cpp.o.d"
  "/root/repo/tests/radar_integration_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/radar_integration_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/radar_integration_test.cpp.o.d"
  "/root/repo/tests/radar_processor_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/radar_processor_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/radar_processor_test.cpp.o.d"
  "/root/repo/tests/radar_tracker_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/radar_tracker_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/radar_tracker_test.cpp.o.d"
  "/root/repo/tests/sensors_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/sensors_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/sensors_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/vehicle_test.cpp" "tests/CMakeFiles/safe_sensing_tests.dir/vehicle_test.cpp.o" "gcc" "tests/CMakeFiles/safe_sensing_tests.dir/vehicle_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/safe_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/safe_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/safe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/radar/CMakeFiles/safe_radar.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/safe_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/safe_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/cra/CMakeFiles/safe_cra.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/safe_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/safe_control.dir/DependInfo.cmake"
  "/root/repo/build/src/vehicle/CMakeFiles/safe_vehicle.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/safe_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
