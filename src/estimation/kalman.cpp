#include "estimation/kalman.hpp"

#include <stdexcept>

#include "linalg/lu.hpp"

namespace safe::estimation {

using linalg::RMatrix;
using linalg::RVector;

KalmanFilter::KalmanFilter(KalmanModel model, RVector initial_state,
                           RMatrix initial_covariance)
    : model_(std::move(model)),
      x_(std::move(initial_state)),
      p_(std::move(initial_covariance)) {
  const std::size_t n = model_.a.rows();
  if (!model_.a.is_square() || n == 0) {
    throw std::invalid_argument("KalmanFilter: A must be square");
  }
  if (model_.c.cols() != n || model_.c.rows() == 0) {
    throw std::invalid_argument("KalmanFilter: C shape mismatch");
  }
  if (model_.q.rows() != n || model_.q.cols() != n) {
    throw std::invalid_argument("KalmanFilter: Q shape mismatch");
  }
  const std::size_t m = model_.c.rows();
  if (model_.r.rows() != m || model_.r.cols() != m) {
    throw std::invalid_argument("KalmanFilter: R shape mismatch");
  }
  if (x_.size() != n || p_.rows() != n || p_.cols() != n) {
    throw std::invalid_argument("KalmanFilter: initial state/covariance");
  }
}

void KalmanFilter::predict() {
  x_ = model_.a * x_;
  p_ = model_.a * p_ * model_.a.transpose() + model_.q;
}

RVector KalmanFilter::correct(const RVector& y) {
  if (y.size() != model_.c.rows()) {
    throw std::invalid_argument("KalmanFilter::correct: output dimension");
  }
  const RMatrix ct = model_.c.transpose();
  const RMatrix s = model_.c * p_ * ct + model_.r;
  const linalg::LuDecomposition<double> lu(s);
  if (lu.singular()) {
    throw std::domain_error("KalmanFilter: singular innovation covariance");
  }
  // K = P C^T S^{-1}  computed as solving S K^T = C P^T.
  const RMatrix k = (lu.solve(model_.c * p_.transpose())).transpose();

  const RVector innovation = y - model_.c * x_;
  x_ += k * innovation;
  const RMatrix eye = RMatrix::identity(x_.size());
  p_ = (eye - k * model_.c) * p_;
  // Symmetrize against roundoff.
  p_ = 0.5 * (p_ + p_.transpose());
  return innovation;
}

double KalmanFilter::innovation_statistic(const RVector& y) const {
  if (y.size() != model_.c.rows()) {
    throw std::invalid_argument("KalmanFilter: output dimension");
  }
  const RMatrix s = model_.c * p_ * model_.c.transpose() + model_.r;
  const RVector nu = y - model_.c * x_;
  const RVector s_inv_nu = linalg::solve(s, nu);
  return linalg::dot(nu, s_inv_nu);
}

}  // namespace safe::estimation
