#include "estimation/rls_predictor.hpp"

#include <cmath>
#include <stdexcept>

namespace safe::estimation {

using linalg::RVector;

RlsArPredictor::RlsArPredictor(const RlsArOptions& options)
    : options_(options),
      filter_(std::max<std::size_t>(options.order, 1) +
                  (options.intercept ? 1 : 0),
              options.rls) {
  if (options_.order == 0) {
    throw std::invalid_argument("RlsArPredictor: order must be >= 1");
  }
}

RVector RlsArPredictor::regressor() const {
  const std::size_t offset = options_.intercept ? 1 : 0;
  RVector h(options_.order + offset);
  if (options_.intercept) h[0] = 1.0;
  for (std::size_t i = 0; i < options_.order; ++i) {
    // Pad with the oldest available value during warm-up.
    h[i + offset] =
        series_.empty() ? 0.0 : series_[std::min(i, series_.size() - 1)];
  }
  return h;
}

void RlsArPredictor::ingest(double value, bool train) {
  if (train && series_.size() >= options_.order) {
    filter_.update(regressor(), value);
  }
  series_.push_front(value);
  if (series_.size() > options_.order) series_.pop_back();
}

void RlsArPredictor::observe(double y) {
  if (!std::isfinite(y)) {
    // A NaN/Inf sample would corrupt the undifferencing anchor and the
    // regressor history; drop it and let the divergence counter report.
    ++rejected_inputs_;
    return;
  }
  if (options_.difference) {
    if (has_last_) ingest(y - last_value_, /*train=*/true);
  } else {
    ingest(y, /*train=*/true);
  }
  last_value_ = y;
  has_last_ = true;
}

double RlsArPredictor::predict_next() {
  if (!has_last_) return 0.0;

  double increment_or_value;
  if (series_.empty()) {
    // Differencing mode with a single raw sample: hold.
    increment_or_value = options_.difference ? 0.0 : last_value_;
  } else if (filter_.updates() == 0) {
    // Not enough training data: repeat the latest modeled value (this makes
    // the raw mode hold the level and the differenced mode hold the slope).
    increment_or_value = series_.front();
  } else {
    increment_or_value = filter_.predict(regressor());
    if (!std::isfinite(increment_or_value)) {
      // The free-run went non-finite despite finite weights (overflow):
      // re-train and degrade to a hold for this step.
      filter_.reset();
      ++rejected_inputs_;
      increment_or_value = series_.front();
    }
  }

  ingest(increment_or_value,
         /*train=*/!options_.freeze_during_prediction);

  const double y_hat = options_.difference
                           ? last_value_ + increment_or_value
                           : increment_or_value;
  last_value_ = y_hat;
  return y_hat;
}

void RlsArPredictor::reset() {
  filter_.reset();
  series_.clear();
  last_value_ = 0.0;
  has_last_ = false;
}

RlsPolyPredictor::RlsPolyPredictor(const RlsPolyOptions& options)
    : options_(options), filter_(options.degree + 1, options.rls) {
  if (options_.time_scale <= safe::units::Seconds{0.0}) {
    throw std::invalid_argument("RlsPolyPredictor: time scale must be > 0");
  }
}

RVector RlsPolyPredictor::regressor(double t) const {
  RVector h(options_.degree + 1);
  const double ts = t / options_.time_scale.value();
  double power = 1.0;
  for (std::size_t i = 0; i <= options_.degree; ++i) {
    h[i] = power;
    power *= ts;
  }
  return h;
}

void RlsPolyPredictor::observe(double y) {
  filter_.update(regressor(next_time_), y);
  next_time_ += 1.0;
}

double RlsPolyPredictor::predict_next() {
  const double y_hat = filter_.predict(regressor(next_time_));
  next_time_ += 1.0;
  return y_hat;
}

void RlsPolyPredictor::reset() {
  filter_.reset();
  next_time_ = 0.0;
}

}  // namespace safe::estimation
