#include "estimation/rls.hpp"

#include <cmath>
#include <stdexcept>

namespace safe::estimation {

using linalg::RMatrix;
using linalg::RVector;

RlsFilter::RlsFilter(std::size_t dimension, const RlsOptions& options)
    : options_(options),
      w_(dimension),
      p_(RMatrix::scaled_identity(dimension, options.initial_covariance)) {
  if (dimension == 0) {
    throw std::invalid_argument("RlsFilter: dimension must be >= 1");
  }
  if (!(options.forgetting_factor > 0.0) || options.forgetting_factor > 1.0) {
    throw std::invalid_argument("RlsFilter: lambda must be in (0, 1]");
  }
  if (!(options.initial_covariance > 0.0)) {
    throw std::invalid_argument("RlsFilter: delta must be > 0");
  }
}

double RlsFilter::predict(const RVector& h) const {
  if (h.size() != w_.size()) {
    throw std::invalid_argument("RlsFilter::predict: dimension mismatch");
  }
  return linalg::dot(w_, h);
}

RlsUpdate RlsFilter::update(const RVector& h, double y) {
  const std::size_t n = w_.size();
  if (h.size() != n) {
    throw std::invalid_argument("RlsFilter::update: dimension mismatch");
  }

  // Guard: a single NaN/Inf sample would otherwise poison w and P forever.
  bool inputs_finite = std::isfinite(y);
  for (std::size_t i = 0; inputs_finite && i < n; ++i) {
    inputs_finite = std::isfinite(h[i]);
  }
  if (!inputs_finite) {
    ++divergences_;
    RlsUpdate rejected;
    rejected.rejected = true;
    return rejected;
  }

  const double lambda = options_.forgetting_factor;

  // g = h^T P (row vector, stored as RVector).
  RVector g(n);
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += h[i] * p_(i, j);
    g[j] = acc;
  }
  const double gamma = lambda + linalg::dot(g, h);

  // Gain j = g^T / gamma.
  RVector gain = g;
  gain /= gamma;

  RlsUpdate result;
  result.prediction = linalg::dot(w_, h);
  result.error = y - result.prediction;
  result.gamma = gamma;

  for (std::size_t i = 0; i < n; ++i) w_[i] += gain[i] * result.error;

  // P = (P - j g) / lambda, then enforce symmetry against roundoff drift.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      p_(i, j) = (p_(i, j) - gain[i] * g[j]) / lambda;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (p_(i, j) + p_(j, i));
      p_(i, j) = avg;
      p_(j, i) = avg;
    }
  }
  ++updates_;

  // Divergence check: finite inputs can still blow up P (e.g. gamma
  // underflow with tiny lambda). Re-train from scratch rather than free-run
  // on a corrupted filter.
  bool state_finite = true;
  for (std::size_t i = 0; state_finite && i < n; ++i) {
    state_finite = std::isfinite(w_[i]);
    for (std::size_t j = 0; state_finite && j < n; ++j) {
      state_finite = std::isfinite(p_(i, j));
    }
  }
  if (!state_finite) {
    ++divergences_;
    reinitialize();
  }
  return result;
}

void RlsFilter::reinitialize() {
  w_ = RVector(w_.size());
  p_ = RMatrix::scaled_identity(w_.size(), options_.initial_covariance);
  updates_ = 0;
}

void RlsFilter::reset() {
  reinitialize();
  divergences_ = 0;
}

}  // namespace safe::estimation
