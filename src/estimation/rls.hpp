// Recursive least squares (paper Algorithm 1, after Haykin).
//
// Per update with regressor h_k and measurement y_k:
//   g     = h_k^T P_{k-1}
//   gamma = lambda + g h_k
//   j     = g^T / gamma            (gain vector)
//   e     = y_k - w_{k-1}^T h_k    (a-priori error)
//   w_k   = w_{k-1} + j e
//   P_k   = (P_{k-1} - j g) / lambda
//
// with w_0 = 0 and P_0 = delta * I (the paper takes delta = 1).
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace safe::estimation {

struct RlsOptions {
  double forgetting_factor = 0.98;  ///< lambda in (0, 1].
  double initial_covariance = 1.0;  ///< delta (P_0 = delta I).
};

/// One RLS update's byproducts.
struct RlsUpdate {
  double prediction = 0.0;  ///< w_{k-1}^T h_k (a-priori).
  double error = 0.0;       ///< y_k - prediction.
  double gamma = 0.0;       ///< Conversion factor lambda + g h.
  /// The pair was rejected (non-finite h or y): state was left untouched.
  bool rejected = false;
};

class RlsFilter {
 public:
  /// `dimension` is the regressor length. Throws std::invalid_argument for
  /// dimension 0, lambda outside (0, 1], or non-positive delta.
  RlsFilter(std::size_t dimension, const RlsOptions& options = {});

  /// Processes one (h, y) pair (Algorithm 1 lines 5-11). Non-finite inputs
  /// are rejected without touching state; a non-finite weight/covariance
  /// after the update (numerical divergence) reinitializes w = 0 and
  /// P = delta I. Both paths increment the divergence counter instead of
  /// silently propagating NaN downstream.
  RlsUpdate update(const linalg::RVector& h, double y);

  /// A-priori prediction w^T h without mutating state.
  [[nodiscard]] double predict(const linalg::RVector& h) const;

  [[nodiscard]] const linalg::RVector& weights() const { return w_; }
  [[nodiscard]] const linalg::RMatrix& covariance() const { return p_; }
  [[nodiscard]] std::size_t dimension() const { return w_.size(); }
  [[nodiscard]] double forgetting_factor() const {
    return options_.forgetting_factor;
  }
  [[nodiscard]] std::size_t updates() const { return updates_; }

  /// Rejected inputs + divergence recoveries since construction or reset().
  [[nodiscard]] std::size_t divergences() const { return divergences_; }

  void reset();

 private:
  /// Restores w = 0, P = delta I without clearing the divergence counter.
  void reinitialize();

  RlsOptions options_;
  linalg::RVector w_;
  linalg::RMatrix p_;
  std::size_t updates_ = 0;
  std::size_t divergences_ = 0;
};

}  // namespace safe::estimation
