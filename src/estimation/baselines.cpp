#include "estimation/baselines.hpp"

#include <cmath>
#include <stdexcept>

namespace safe::estimation {

using linalg::RMatrix;
using linalg::RVector;

LinearExtrapolator::LinearExtrapolator(std::size_t window) : window_(window) {
  if (window_ < 2) {
    throw std::invalid_argument("LinearExtrapolator: window must be >= 2");
  }
}

void LinearExtrapolator::observe(double y) {
  history_.push_back(y);
  if (history_.size() > window_) history_.pop_front();
  steps_ahead_ = 0.0;
}

double LinearExtrapolator::predict_next() {
  if (history_.empty()) return 0.0;
  steps_ahead_ += 1.0;
  const std::size_t n = history_.size();
  if (n == 1) return history_.front();

  // Least-squares line through (i, y_i), i = 0..n-1.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    sx += x;
    sy += history_[i];
    sxx += x * x;
    sxy += x * history_[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  const double slope = denom == 0.0 ? 0.0 : (dn * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / dn;
  const double t = static_cast<double>(n - 1) + steps_ahead_;
  return intercept + slope * t;
}

void LinearExtrapolator::reset() {
  history_.clear();
  steps_ahead_ = 0.0;
}

LmsArPredictor::LmsArPredictor(std::size_t order, double step_size)
    : order_(order), step_size_(step_size), weights_(order, 0.0) {
  if (order_ == 0) {
    throw std::invalid_argument("LmsArPredictor: order must be >= 1");
  }
  if (!(step_size_ > 0.0) || step_size_ > 2.0) {
    throw std::invalid_argument("LmsArPredictor: step size must be in (0, 2]");
  }
}

double LmsArPredictor::predict_from_history() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < order_; ++i) {
    const double h = history_.empty()
                         ? 0.0
                         : history_[std::min(i, history_.size() - 1)];
    acc += weights_[i] * h;
  }
  return acc;
}

void LmsArPredictor::push(double y) {
  history_.push_front(y);
  if (history_.size() > order_) history_.pop_back();
}

void LmsArPredictor::observe(double y) {
  if (history_.size() >= order_) {
    // Normalized LMS: w += mu * e * h / (eps + ||h||^2).
    const double prediction = predict_from_history();
    const double error = y - prediction;
    double norm2 = 1e-9;
    for (std::size_t i = 0; i < order_; ++i) {
      norm2 += history_[i] * history_[i];
    }
    for (std::size_t i = 0; i < order_; ++i) {
      weights_[i] += step_size_ * error * history_[i] / norm2;
    }
    ++updates_;
  }
  push(y);
}

double LmsArPredictor::predict_next() {
  if (history_.empty()) return 0.0;
  const double y_hat =
      updates_ == 0 ? history_.front() : predict_from_history();
  push(y_hat);
  return y_hat;
}

void LmsArPredictor::reset() {
  weights_.assign(order_, 0.0);
  history_.clear();
  updates_ = 0;
}

KalmanFilter KalmanCvPredictor::make_filter() const {
  // Constant-velocity model with unit sample time.
  KalmanModel model{
      .a = RMatrix{{1.0, 1.0}, {0.0, 1.0}},
      .c = RMatrix{{1.0, 0.0}},
      .q = RMatrix{{0.25 * process_noise_, 0.5 * process_noise_},
                   {0.5 * process_noise_, process_noise_}},
      .r = RMatrix{{measurement_noise_}},
  };
  return KalmanFilter(std::move(model), RVector{0.0, 0.0},
                      RMatrix::scaled_identity(2, 1e3));
}

KalmanCvPredictor::KalmanCvPredictor(double process_noise,
                                     double measurement_noise)
    : process_noise_(process_noise),
      measurement_noise_(measurement_noise),
      filter_(make_filter()) {
  if (!(process_noise > 0.0) || !(measurement_noise > 0.0)) {
    throw std::invalid_argument("KalmanCvPredictor: noise must be positive");
  }
}

void KalmanCvPredictor::observe(double y) {
  if (primed_) filter_.predict();
  filter_.correct(RVector{y});
  primed_ = true;
}

double KalmanCvPredictor::predict_next() {
  filter_.predict();
  return filter_.predicted_output()[0];
}

void KalmanCvPredictor::reset() {
  filter_ = make_filter();
  primed_ = false;
}

}  // namespace safe::estimation
