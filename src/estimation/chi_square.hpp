// Chi-square innovation detector (the PyCRA-adjacent baseline).
//
// Shoukry et al. detect spoofing by thresholding the Mahalanobis norm of the
// Kalman innovation. Unlike CRA it needs no transmitter modification, but it
// is threshold-tuned: measurement noise causes false positives and stealthy
// offsets (e.g. the +6 m delay injection) can stay under the threshold.
// Included so the benches can demonstrate why the paper moved to CRA.
#pragma once

#include <cstdint>
#include <optional>

#include "estimation/kalman.hpp"

namespace safe::estimation {

struct ChiSquareOptions {
  /// Alarm threshold on the innovation statistic (chi^2_1 quantile; 6.63 is
  /// the 99% point for one output).
  double threshold = 6.63;
  /// Consecutive above-threshold samples required before declaring attack.
  std::size_t required_consecutive = 1;
};

class ChiSquareDetector {
 public:
  ChiSquareDetector(KalmanModel model, linalg::RVector initial_state,
                    linalg::RMatrix initial_covariance,
                    const ChiSquareOptions& options = {});

  /// Result of one step.
  struct Decision {
    double statistic = 0.0;
    bool alarmed = false;        ///< This sample exceeded the threshold.
    bool under_attack = false;   ///< Persistent detector state.
  };

  /// Feeds measurement y_k; runs predict + statistic + (conditional)
  /// correct. While alarmed, the filter coasts (no correction) so the
  /// attacker cannot drag the state estimate along.
  Decision observe(const linalg::RVector& y);

  [[nodiscard]] bool under_attack() const { return consecutive_ >= options_.required_consecutive; }
  [[nodiscard]] const KalmanFilter& filter() const { return filter_; }

 private:
  ChiSquareOptions options_;
  KalmanFilter filter_;
  std::size_t consecutive_ = 0;
  bool primed_ = false;
};

/// Scalar chi-square innovation gate for a one-dimensional series.
///
/// The full ChiSquareDetector needs a Kalman model; the safe-measurement
/// pipeline's health monitor only needs the same statistic on a scalar
/// innovation stream (measurement minus predictor output). The gate keeps an
/// exponentially-forgotten innovation variance and flags samples whose
/// normalized squared innovation e^2 / var exceeds the chi^2_1 threshold.
/// Flagged samples are NOT absorbed into the variance, so an attacker (or a
/// diverging fault) cannot widen the gate by feeding it garbage.
struct InnovationGateOptions {
  /// chi^2_1 quantile (6.63 = 99%). The pipeline treats <= 0 as "gate off".
  double threshold = 6.63;
  /// Samples absorbed before the gate starts rejecting (variance warm-up).
  std::size_t min_samples = 8;
  /// Forgetting factor for the running innovation variance.
  double variance_forgetting = 0.98;
  /// Variance floor: keeps the statistic finite on noiseless series.
  double variance_floor = 1e-6;
};

class InnovationGate {
 public:
  using Options = InnovationGateOptions;

  explicit InnovationGate(const Options& options = {});

  /// Feeds innovation e_k; returns true when the sample is an outlier.
  bool observe(double innovation);

  /// Bias-corrected innovation variance estimate (floored). The raw EWMA
  /// starts at zero and needs ~1/(1-lambda) samples to warm up; dividing by
  /// 1 - lambda^n makes the estimate unbiased from the first sample, so the
  /// gate cannot latch closed right after min_samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] std::size_t samples() const { return samples_; }
  [[nodiscard]] std::size_t rejections() const { return rejections_; }

  void reset();

 private:
  Options options_;
  double raw_variance_ = 0.0;  ///< Uncorrected EWMA of e^2.
  double weight_ = 1.0;        ///< lambda^samples (bias-correction term).
  std::size_t samples_ = 0;
  std::size_t rejections_ = 0;
};

}  // namespace safe::estimation
