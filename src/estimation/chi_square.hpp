// Chi-square innovation detector (the PyCRA-adjacent baseline).
//
// Shoukry et al. detect spoofing by thresholding the Mahalanobis norm of the
// Kalman innovation. Unlike CRA it needs no transmitter modification, but it
// is threshold-tuned: measurement noise causes false positives and stealthy
// offsets (e.g. the +6 m delay injection) can stay under the threshold.
// Included so the benches can demonstrate why the paper moved to CRA.
#pragma once

#include <cstdint>
#include <optional>

#include "estimation/kalman.hpp"

namespace safe::estimation {

struct ChiSquareOptions {
  /// Alarm threshold on the innovation statistic (chi^2_1 quantile; 6.63 is
  /// the 99% point for one output).
  double threshold = 6.63;
  /// Consecutive above-threshold samples required before declaring attack.
  std::size_t required_consecutive = 1;
};

class ChiSquareDetector {
 public:
  ChiSquareDetector(KalmanModel model, linalg::RVector initial_state,
                    linalg::RMatrix initial_covariance,
                    const ChiSquareOptions& options = {});

  /// Result of one step.
  struct Decision {
    double statistic = 0.0;
    bool alarmed = false;        ///< This sample exceeded the threshold.
    bool under_attack = false;   ///< Persistent detector state.
  };

  /// Feeds measurement y_k; runs predict + statistic + (conditional)
  /// correct. While alarmed, the filter coasts (no correction) so the
  /// attacker cannot drag the state estimate along.
  Decision observe(const linalg::RVector& y);

  [[nodiscard]] bool under_attack() const { return consecutive_ >= options_.required_consecutive; }
  [[nodiscard]] const KalmanFilter& filter() const { return filter_; }

 private:
  ChiSquareOptions options_;
  KalmanFilter filter_;
  std::size_t consecutive_ = 0;
  bool primed_ = false;
};

}  // namespace safe::estimation
