// Baseline predictors the ablation benches compare against RLS.
#pragma once

#include <cstddef>
#include <deque>

#include "estimation/kalman.hpp"
#include "estimation/series_predictor.hpp"

namespace safe::estimation {

/// Holds the last trusted measurement (zero-order hold).
class HoldLastPredictor final : public SeriesPredictor {
 public:
  void observe(double y) override { last_ = y; }
  double predict_next() override { return last_; }
  void reset() override { last_ = 0.0; }
  [[nodiscard]] std::unique_ptr<SeriesPredictor> clone() const override {
    return std::make_unique<HoldLastPredictor>(*this);
  }
  [[nodiscard]] std::string name() const override { return "hold-last"; }

 private:
  double last_ = 0.0;
};

/// Extrapolates the least-squares line through the last `window` trusted
/// measurements (first-order hold).
class LinearExtrapolator final : public SeriesPredictor {
 public:
  explicit LinearExtrapolator(std::size_t window = 8);

  void observe(double y) override;
  double predict_next() override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<SeriesPredictor> clone() const override {
    return std::make_unique<LinearExtrapolator>(*this);
  }
  [[nodiscard]] std::string name() const override { return "linear-extrap"; }

 private:
  std::size_t window_;
  std::deque<double> history_;  ///< Oldest first.
  double steps_ahead_ = 0.0;
};

/// Normalized LMS adaptive filter over an AR(p) regressor: the cheap
/// gradient-descent cousin of RLS.
class LmsArPredictor final : public SeriesPredictor {
 public:
  explicit LmsArPredictor(std::size_t order = 4, double step_size = 0.5);

  void observe(double y) override;
  double predict_next() override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<SeriesPredictor> clone() const override {
    return std::make_unique<LmsArPredictor>(*this);
  }
  [[nodiscard]] std::string name() const override { return "lms-ar"; }

 private:
  [[nodiscard]] double predict_from_history() const;
  void push(double y);

  std::size_t order_;
  double step_size_;
  std::vector<double> weights_;
  std::deque<double> history_;  ///< Most recent first.
  std::size_t updates_ = 0;
};

/// Constant-velocity Kalman filter on the measurement series: state
/// [value; slope], observe value, predict by time update only.
class KalmanCvPredictor final : public SeriesPredictor {
 public:
  /// `process_noise` scales Q; `measurement_noise` is R.
  KalmanCvPredictor(double process_noise = 1e-3,
                    double measurement_noise = 0.25);

  void observe(double y) override;
  double predict_next() override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<SeriesPredictor> clone() const override {
    return std::make_unique<KalmanCvPredictor>(*this);
  }
  [[nodiscard]] std::string name() const override { return "kalman-cv"; }

 private:
  [[nodiscard]] KalmanFilter make_filter() const;

  double process_noise_;
  double measurement_noise_;
  KalmanFilter filter_;
  bool primed_ = false;
};

}  // namespace safe::estimation
