// Common interface for one-dimensional time-series predictors.
//
// During normal operation predictors `observe` trusted measurements; during
// an attack the pipeline calls `predict_next` repeatedly and feeds the
// estimates to the controller (sensor holdover). The interface is shared by
// the paper's RLS estimator and every baseline so that the ablation benches
// can swap them freely.
#pragma once

#include <memory>
#include <string>

namespace safe::estimation {

class SeriesPredictor {
 public:
  virtual ~SeriesPredictor() = default;

  /// Ingests a trusted measurement y_k (normal operation).
  virtual void observe(double y) = 0;

  /// One-step-ahead estimate; advances internal history with the estimate
  /// so repeated calls free-run through an attack window.
  virtual double predict_next() = 0;

  /// Restores the just-constructed state.
  virtual void reset() = 0;

  /// Deep copy of the current state. The safe-measurement pipeline uses
  /// clones to snapshot predictor state at verified-clean challenge slots
  /// and roll back on detection, so samples recorded between attack onset
  /// and detection cannot poison the holdover.
  [[nodiscard]] virtual std::unique_ptr<SeriesPredictor> clone() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

using SeriesPredictorPtr = std::unique_ptr<SeriesPredictor>;

}  // namespace safe::estimation
