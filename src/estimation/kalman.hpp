// Discrete-time Kalman filter for LTI plants.
//
// Used both as an estimation baseline (constant-velocity model holdover)
// and as the innovation source for the chi-square detector baseline
// (PyCRA-style detection, Shoukry et al. [10] in the paper).
#pragma once

#include "linalg/matrix.hpp"

namespace safe::estimation {

/// Model: x' = A x + w (process noise cov Q), y = C x + v (cov R).
struct KalmanModel {
  linalg::RMatrix a;
  linalg::RMatrix c;
  linalg::RMatrix q;
  linalg::RMatrix r;
};

class KalmanFilter {
 public:
  /// Throws std::invalid_argument on inconsistent dimensions.
  KalmanFilter(KalmanModel model, linalg::RVector initial_state,
               linalg::RMatrix initial_covariance);

  /// Time update: x = A x, P = A P A^T + Q.
  void predict();

  /// Measurement update with innovation bookkeeping. Returns the a-priori
  /// innovation y - C x (before the state is corrected).
  linalg::RVector correct(const linalg::RVector& y);

  /// Squared Mahalanobis norm of the innovation for measurement y:
  /// nu^T S^{-1} nu with S = C P C^T + R. Does not mutate state.
  [[nodiscard]] double innovation_statistic(const linalg::RVector& y) const;

  [[nodiscard]] const linalg::RVector& state() const { return x_; }
  [[nodiscard]] const linalg::RMatrix& covariance() const { return p_; }
  [[nodiscard]] linalg::RVector predicted_output() const {
    return model_.c * x_;
  }

 private:
  KalmanModel model_;
  linalg::RVector x_;
  linalg::RMatrix p_;
};

}  // namespace safe::estimation
