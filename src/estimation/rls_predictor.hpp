// RLS-based time-series predictors (the paper's estimator, Section 5.3).
//
// Two regressor choices are provided:
//  * AR(p): h_k is built from the last p samples. By default the filter
//    models first differences (ARIMA-style d = 1): ramps become stationary,
//    so a long free-run through an attack window integrates the learned
//    slope instead of accumulating drift. `difference = false` gives the
//    textbook raw-value AR filter.
//  * Polynomial-in-time: h_k = [1, t, t^2, ...]. RLS fits a trend curve;
//    prediction evaluates the curve at future instants.
#pragma once

#include <cstddef>
#include <deque>

#include "estimation/rls.hpp"
#include "estimation/series_predictor.hpp"
#include "units/units.hpp"

namespace safe::estimation {

struct RlsArOptions {
  std::size_t order = 4;  ///< p: number of past samples in h.
  RlsOptions rls{};       ///< Forgetting factor / initial covariance.
  /// Model first differences of the series instead of raw values.
  bool difference = true;
  /// Prepend a constant 1 to the regressor. With differencing this anchors
  /// the free-run steady-state increment at the learned mean slope instead
  /// of letting it decay toward zero on noisy data.
  bool intercept = true;
  /// Freeze weights while free-running (default). When false the filter
  /// keeps adapting against its own predictions (self-confirming; exposed
  /// for the ablation bench).
  bool freeze_during_prediction = true;
};

class RlsArPredictor final : public SeriesPredictor {
 public:
  explicit RlsArPredictor(const RlsArOptions& options = {});

  void observe(double y) override;
  double predict_next() override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<SeriesPredictor> clone() const override {
    return std::make_unique<RlsArPredictor>(*this);
  }
  [[nodiscard]] std::string name() const override {
    return options_.difference ? "rls-ar-d1" : "rls-ar";
  }

  [[nodiscard]] const RlsFilter& filter() const { return filter_; }

  /// Non-finite observations ignored plus filter-level divergences: when
  /// this grows, upstream data was corrupt and the filter protected itself.
  [[nodiscard]] std::size_t divergences() const {
    return rejected_inputs_ + filter_.divergences();
  }

 private:
  /// Regressor over the modeled series (raw values or differences),
  /// most-recent-first with warm-up padding.
  [[nodiscard]] linalg::RVector regressor() const;

  /// Pushes a value of the modeled series (and trains when ready).
  void ingest(double value, bool train);

  RlsArOptions options_;
  RlsFilter filter_;
  std::deque<double> series_;  ///< Modeled series, most recent first.
  double last_value_ = 0.0;    ///< Last raw value (for undifferencing).
  bool has_last_ = false;
  std::size_t rejected_inputs_ = 0;  ///< Non-finite observations dropped.
};

struct RlsPolyOptions {
  std::size_t degree = 1;  ///< Trend polynomial degree (1 = linear).
  RlsOptions rls{.forgetting_factor = 0.9, .initial_covariance = 100.0};
  /// Time scale for numerical conditioning of t^n terms.
  units::Seconds time_scale{100.0};
};

class RlsPolyPredictor final : public SeriesPredictor {
 public:
  explicit RlsPolyPredictor(const RlsPolyOptions& options = {});

  void observe(double y) override;
  double predict_next() override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<SeriesPredictor> clone() const override {
    return std::make_unique<RlsPolyPredictor>(*this);
  }
  [[nodiscard]] std::string name() const override { return "rls-poly"; }

 private:
  [[nodiscard]] linalg::RVector regressor(double t) const;

  RlsPolyOptions options_;
  RlsFilter filter_;
  double next_time_ = 0.0;
};

}  // namespace safe::estimation
