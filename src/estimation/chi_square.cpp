#include "estimation/chi_square.hpp"

#include <stdexcept>

namespace safe::estimation {

ChiSquareDetector::ChiSquareDetector(KalmanModel model,
                                     linalg::RVector initial_state,
                                     linalg::RMatrix initial_covariance,
                                     const ChiSquareOptions& options)
    : options_(options),
      filter_(std::move(model), std::move(initial_state),
              std::move(initial_covariance)) {
  if (!(options_.threshold > 0.0)) {
    throw std::invalid_argument("ChiSquareDetector: threshold must be > 0");
  }
  if (options_.required_consecutive == 0) {
    throw std::invalid_argument(
        "ChiSquareDetector: required_consecutive must be >= 1");
  }
}

ChiSquareDetector::Decision ChiSquareDetector::observe(
    const linalg::RVector& y) {
  if (primed_) filter_.predict();
  primed_ = true;

  Decision decision;
  decision.statistic = filter_.innovation_statistic(y);
  decision.alarmed = decision.statistic > options_.threshold;

  if (decision.alarmed) {
    ++consecutive_;
  } else {
    consecutive_ = 0;
    filter_.correct(y);  // trust the measurement only when consistent
  }
  decision.under_attack = under_attack();
  return decision;
}

}  // namespace safe::estimation
