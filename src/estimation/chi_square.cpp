#include "estimation/chi_square.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace safe::estimation {

ChiSquareDetector::ChiSquareDetector(KalmanModel model,
                                     linalg::RVector initial_state,
                                     linalg::RMatrix initial_covariance,
                                     const ChiSquareOptions& options)
    : options_(options),
      filter_(std::move(model), std::move(initial_state),
              std::move(initial_covariance)) {
  if (!(options_.threshold > 0.0)) {
    throw std::invalid_argument("ChiSquareDetector: threshold must be > 0");
  }
  if (options_.required_consecutive == 0) {
    throw std::invalid_argument(
        "ChiSquareDetector: required_consecutive must be >= 1");
  }
}

ChiSquareDetector::Decision ChiSquareDetector::observe(
    const linalg::RVector& y) {
  if (primed_) filter_.predict();
  primed_ = true;

  Decision decision;
  decision.statistic = filter_.innovation_statistic(y);
  decision.alarmed = decision.statistic > options_.threshold;

  if (decision.alarmed) {
    ++consecutive_;
  } else {
    consecutive_ = 0;
    filter_.correct(y);  // trust the measurement only when consistent
  }
  decision.under_attack = under_attack();
  return decision;
}

InnovationGate::InnovationGate(const Options& options) : options_(options) {
  if (!(options_.variance_forgetting > 0.0) ||
      options_.variance_forgetting > 1.0) {
    throw std::invalid_argument(
        "InnovationGate: variance_forgetting must be in (0, 1]");
  }
  if (!(options_.variance_floor > 0.0)) {
    throw std::invalid_argument("InnovationGate: variance_floor must be > 0");
  }
}

bool InnovationGate::observe(double innovation) {
  if (!std::isfinite(innovation)) {
    ++rejections_;
    return true;
  }
  const double e2 = innovation * innovation;
  const bool warmed = samples_ >= options_.min_samples;
  const bool outlier = warmed && options_.threshold > 0.0 &&
                       e2 > options_.threshold * variance();
  if (outlier) {
    ++rejections_;
    return true;
  }
  const double lambda = options_.variance_forgetting;
  if (lambda >= 1.0) {
    // No forgetting: plain cumulative mean of e^2.
    raw_variance_ += (e2 - raw_variance_) / static_cast<double>(samples_ + 1);
    weight_ = 0.0;
  } else {
    raw_variance_ = lambda * raw_variance_ + (1.0 - lambda) * e2;
    weight_ *= lambda;
  }
  ++samples_;
  return false;
}

double InnovationGate::variance() const {
  if (samples_ == 0 || weight_ >= 1.0) return options_.variance_floor;
  return std::max(raw_variance_ / (1.0 - weight_), options_.variance_floor);
}

void InnovationGate::reset() {
  raw_variance_ = 0.0;
  weight_ = 1.0;
  samples_ = 0;
  rejections_ = 0;
}

}  // namespace safe::estimation
