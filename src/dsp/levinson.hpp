// Levinson-Durbin recursion: autocorrelation-method AR model fitting.
//
// Fits an AR(p) linear predictor from the sample autocorrelation in O(p^2)
// — the classical batch counterpart of the RLS filter of Algorithm 1, and
// the engine behind the LevinsonPredictor baseline used in the estimator
// ablation.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/fft.hpp"
#include "estimation/series_predictor.hpp"

namespace safe::dsp {

/// Biased sample autocorrelation r[0..max_lag] of a real series.
std::vector<double> autocorrelation(const std::vector<double>& series,
                                    std::size_t max_lag);

/// Result of the Levinson-Durbin recursion.
struct ArFit {
  /// Prediction coefficients: x_hat[n] = sum_k coeffs[k] * x[n-1-k].
  std::vector<double> coefficients;
  /// Final prediction-error power.
  double error_power = 0.0;
  /// Reflection coefficients (|k_i| < 1 iff the model is minimum phase).
  std::vector<double> reflection;
};

/// Solves the Yule-Walker equations for an AR(`order`) model given the
/// autocorrelation sequence (r.size() must exceed `order`). Throws
/// std::invalid_argument on degenerate input; a zero-lag autocorrelation of
/// zero (constant-zero series) yields an all-zero model.
ArFit levinson_durbin(const std::vector<double>& autocorr, std::size_t order);

/// SeriesPredictor built on block-refitted Levinson AR models: maintains a
/// sliding window of trusted samples, refits on demand, and free-runs the
/// AR model during holdover. Works on first differences like the RLS
/// default so ramps extrapolate.
class LevinsonPredictor final : public estimation::SeriesPredictor {
 public:
  explicit LevinsonPredictor(std::size_t order = 4,
                             std::size_t window = 64);

  void observe(double y) override;
  double predict_next() override;
  void reset() override;
  [[nodiscard]] std::unique_ptr<SeriesPredictor> clone() const override {
    return std::make_unique<LevinsonPredictor>(*this);
  }
  [[nodiscard]] std::string name() const override { return "levinson-ar"; }

 private:
  void refit();

  std::size_t order_;
  std::size_t window_;
  std::vector<double> diffs_;   ///< Sliding window of differences.
  std::vector<double> model_;   ///< AR coefficients (most recent lag first).
  double mean_diff_ = 0.0;
  double last_value_ = 0.0;
  bool has_last_ = false;
  bool dirty_ = true;
};

}  // namespace safe::dsp
