#include "dsp/window.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace safe::dsp {

RealSignal make_window(WindowKind kind, std::size_t length) {
  RealSignal w(length, 1.0);
  if (length <= 1) return w;
  const double denom = static_cast<double>(length - 1);
  for (std::size_t n = 0; n < length; ++n) {
    const double x = static_cast<double>(n) / denom;
    switch (kind) {
      case WindowKind::kRectangular:
        w[n] = 1.0;
        break;
      case WindowKind::kHann:
        w[n] = 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * x);
        break;
      case WindowKind::kHamming:
        w[n] = 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * x);
        break;
      case WindowKind::kBlackman:
        w[n] = 0.42 - 0.5 * std::cos(2.0 * std::numbers::pi * x) +
               0.08 * std::cos(4.0 * std::numbers::pi * x);
        break;
    }
  }
  return w;
}

double window_coherent_gain(const RealSignal& window) {
  double acc = 0.0;
  for (const double w : window) acc += w;
  return acc;
}

void apply_window(ComplexSignal& signal, const RealSignal& window) {
  if (signal.size() != window.size()) {
    throw std::invalid_argument("apply_window: length mismatch");
  }
  for (std::size_t i = 0; i < signal.size(); ++i) signal[i] *= window[i];
}

}  // namespace safe::dsp
