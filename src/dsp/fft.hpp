// Iterative radix-2 FFT.
//
// The radar processing chain zero-pads to a power of two before transforming,
// so a radix-2 kernel covers every call site while staying easy to verify.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace safe::dsp {

using Complex = std::complex<double>;
using ComplexSignal = std::vector<Complex>;
using RealSignal = std::vector<double>;

/// Smallest power of two >= n (minimum 1).
std::size_t next_pow2(std::size_t n);

/// True iff n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

/// In-place forward FFT; `x.size()` must be a power of two.
/// Throws std::invalid_argument otherwise.
void fft_inplace(ComplexSignal& x);

/// In-place inverse FFT (normalized by 1/N); size must be a power of two.
void ifft_inplace(ComplexSignal& x);

/// Out-of-place forward FFT of an arbitrary-length signal, zero-padded to
/// `min_size` (or the next power of two above the signal length, whichever
/// is larger).
ComplexSignal fft(const ComplexSignal& x, std::size_t min_size = 0);

/// Convenience: FFT of a real signal.
ComplexSignal fft(const RealSignal& x, std::size_t min_size = 0);

/// Magnitude-squared of each bin.
RealSignal power_spectrum(const ComplexSignal& spectrum);

}  // namespace safe::dsp
