// Pseudo-random binary sequence generation (Fibonacci LFSR).
//
// The CRA probe modulator m(t) draws its challenge pattern from a PRBS so
// that an attacker cannot predict which probe slots are suppressed.
#pragma once

#include <cstdint>
#include <vector>

namespace safe::dsp {

/// 16-bit maximal-length Fibonacci LFSR (taps 16,14,13,11 -> 0xB400).
///
/// Deterministic given its seed; a zero seed is remapped to a fixed nonzero
/// state because the all-zero LFSR state is absorbing.
class Prbs {
 public:
  explicit Prbs(std::uint16_t seed = 0xACE1u);

  /// One pseudo-random bit.
  bool next_bit();

  /// `bits`-wide pseudo-random value (1..32 bits).
  std::uint32_t next_bits(unsigned bits);

  /// Bernoulli event with probability numer/denom (both >= 1, numer <=
  /// denom); uses 16 PRBS bits of precision.
  bool bernoulli(std::uint32_t numer, std::uint32_t denom);

  [[nodiscard]] std::uint16_t state() const { return state_; }

  /// Period of the maximal-length 16-bit LFSR.
  static constexpr std::uint32_t kPeriod = 65535;

 private:
  std::uint16_t state_;
};

/// First `length` bits of the PRBS with the given seed.
std::vector<bool> prbs_sequence(std::uint16_t seed, std::size_t length);

}  // namespace safe::dsp
