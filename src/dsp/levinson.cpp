#include "dsp/levinson.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace safe::dsp {

std::vector<double> autocorrelation(const std::vector<double>& series,
                                    std::size_t max_lag) {
  if (series.empty()) {
    throw std::invalid_argument("autocorrelation: empty series");
  }
  if (max_lag >= series.size()) {
    throw std::invalid_argument("autocorrelation: lag exceeds series");
  }
  std::vector<double> r(max_lag + 1, 0.0);
  const double n = static_cast<double>(series.size());
  for (std::size_t lag = 0; lag <= max_lag; ++lag) {
    double acc = 0.0;
    for (std::size_t i = lag; i < series.size(); ++i) {
      acc += series[i] * series[i - lag];
    }
    r[lag] = acc / n;  // biased estimator: guarantees a PSD sequence
  }
  return r;
}

ArFit levinson_durbin(const std::vector<double>& autocorr,
                      std::size_t order) {
  if (order == 0) {
    throw std::invalid_argument("levinson_durbin: order must be >= 1");
  }
  if (autocorr.size() <= order) {
    throw std::invalid_argument("levinson_durbin: need order+1 lags");
  }

  ArFit fit;
  fit.coefficients.assign(order, 0.0);
  fit.reflection.reserve(order);
  double error = autocorr[0];
  if (error <= 0.0) {
    // Degenerate (all-zero) series: the zero model is the right answer.
    fit.error_power = 0.0;
    fit.reflection.assign(order, 0.0);
    return fit;
  }

  std::vector<double> a(order, 0.0);
  for (std::size_t m = 0; m < order; ++m) {
    double acc = autocorr[m + 1];
    for (std::size_t i = 0; i < m; ++i) {
      acc -= a[i] * autocorr[m - i];
    }
    const double k = acc / error;
    fit.reflection.push_back(k);

    std::vector<double> next = a;
    next[m] = k;
    for (std::size_t i = 0; i < m; ++i) {
      next[i] = a[i] - k * a[m - 1 - i];
    }
    a = std::move(next);
    error *= (1.0 - k * k);
    if (error <= 0.0) {
      error = 0.0;
      break;
    }
  }
  fit.coefficients = std::move(a);
  fit.error_power = error;
  return fit;
}

LevinsonPredictor::LevinsonPredictor(std::size_t order, std::size_t window)
    : order_(order), window_(window) {
  if (order_ == 0) {
    throw std::invalid_argument("LevinsonPredictor: order must be >= 1");
  }
  if (window_ < 4 * order_) {
    throw std::invalid_argument(
        "LevinsonPredictor: window must be >= 4 * order");
  }
}

void LevinsonPredictor::refit() {
  if (diffs_.size() < 2 * order_ + 2) {
    model_.clear();
    mean_diff_ = diffs_.empty()
                     ? 0.0
                     : std::accumulate(diffs_.begin(), diffs_.end(), 0.0) /
                           static_cast<double>(diffs_.size());
    dirty_ = false;
    return;
  }
  // Model the demeaned differences so the free-run steady state sits at
  // the mean slope (same rationale as the RLS intercept).
  mean_diff_ = std::accumulate(diffs_.begin(), diffs_.end(), 0.0) /
               static_cast<double>(diffs_.size());
  std::vector<double> centered(diffs_.size());
  for (std::size_t i = 0; i < diffs_.size(); ++i) {
    centered[i] = diffs_[i] - mean_diff_;
  }
  const auto r = autocorrelation(centered, order_);
  model_ = levinson_durbin(r, order_).coefficients;
  dirty_ = false;
}

void LevinsonPredictor::observe(double y) {
  if (has_last_) {
    diffs_.push_back(y - last_value_);
    if (diffs_.size() > window_) {
      diffs_.erase(diffs_.begin());
    }
    dirty_ = true;
  }
  last_value_ = y;
  has_last_ = true;
}

double LevinsonPredictor::predict_next() {
  if (!has_last_) return 0.0;
  if (dirty_) refit();

  double increment = mean_diff_;
  if (!model_.empty() && diffs_.size() >= model_.size()) {
    double acc = 0.0;
    for (std::size_t k = 0; k < model_.size(); ++k) {
      acc += model_[k] * (diffs_[diffs_.size() - 1 - k] - mean_diff_);
    }
    increment += acc;
  }
  diffs_.push_back(increment);
  if (diffs_.size() > window_) diffs_.erase(diffs_.begin());
  last_value_ += increment;
  return last_value_;
}

void LevinsonPredictor::reset() {
  diffs_.clear();
  model_.clear();
  mean_diff_ = 0.0;
  last_value_ = 0.0;
  has_last_ = false;
  dirty_ = true;
}

}  // namespace safe::dsp
