#include "dsp/prbs.hpp"

#include <stdexcept>

namespace safe::dsp {

Prbs::Prbs(std::uint16_t seed) : state_(seed == 0 ? std::uint16_t{0xACE1u} : seed) {}

bool Prbs::next_bit() {
  // Fibonacci LFSR: feedback from taps 16, 14, 13, 11 (1-indexed from LSB).
  const unsigned s = state_;
  const std::uint16_t bit = static_cast<std::uint16_t>(
      ((s >> 0) ^ (s >> 2) ^ (s >> 3) ^ (s >> 5)) & 1u);
  const bool out = (state_ & 1u) != 0;
  state_ = static_cast<std::uint16_t>((state_ >> 1) | (bit << 15));
  return out;
}

std::uint32_t Prbs::next_bits(unsigned bits) {
  if (bits == 0 || bits > 32) {
    throw std::invalid_argument("Prbs::next_bits: bits must be in [1, 32]");
  }
  std::uint32_t value = 0;
  for (unsigned i = 0; i < bits; ++i) {
    value = (value << 1) | (next_bit() ? 1u : 0u);
  }
  return value;
}

bool Prbs::bernoulli(std::uint32_t numer, std::uint32_t denom) {
  if (denom == 0 || numer > denom) {
    throw std::invalid_argument("Prbs::bernoulli: need 0 <= numer <= denom");
  }
  // draw in [0, 2^16); compare against numer/denom scaled to that range.
  const std::uint64_t draw = next_bits(16);
  return draw * denom < static_cast<std::uint64_t>(numer) * 65536u;
}

std::vector<bool> prbs_sequence(std::uint16_t seed, std::size_t length) {
  Prbs gen(seed);
  std::vector<bool> bits(length);
  for (std::size_t i = 0; i < length; ++i) bits[i] = gen.next_bit();
  return bits;
}

}  // namespace safe::dsp
