#include "dsp/covariance.hpp"

#include <stdexcept>

namespace safe::dsp {

using linalg::CMatrix;

CMatrix sample_covariance(const ComplexSignal& signal, std::size_t order) {
  if (order == 0) {
    throw std::invalid_argument("sample_covariance: order must be >= 1");
  }
  if (signal.size() < order) {
    throw std::invalid_argument("sample_covariance: signal shorter than order");
  }
  const std::size_t snapshots = signal.size() - order + 1;
  CMatrix r(order, order);
  for (std::size_t n = 0; n < snapshots; ++n) {
    for (std::size_t i = 0; i < order; ++i) {
      const Complex yi = signal[n + i];
      for (std::size_t j = 0; j < order; ++j) {
        r(i, j) += yi * std::conj(signal[n + j]);
      }
    }
  }
  const double scale = 1.0 / static_cast<double>(snapshots);
  for (std::size_t i = 0; i < order; ++i) {
    for (std::size_t j = 0; j < order; ++j) r(i, j) *= scale;
  }
  return r;
}

CMatrix exchange_conjugate(const CMatrix& r) {
  const std::size_t n = r.rows();
  CMatrix out(n, r.cols());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < r.cols(); ++j) {
      out(i, j) = std::conj(r(n - 1 - i, r.cols() - 1 - j));
    }
  }
  return out;
}

CMatrix forward_backward_covariance(const ComplexSignal& signal,
                                    std::size_t order) {
  const CMatrix fwd = sample_covariance(signal, order);
  const CMatrix bwd = exchange_conjugate(fwd);
  CMatrix avg = fwd;
  avg += bwd;
  avg *= Complex{0.5, 0.0};
  return avg;
}

}  // namespace safe::dsp
