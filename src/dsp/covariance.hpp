// Sample covariance estimation for subspace methods.
#pragma once

#include <cstddef>

#include "dsp/fft.hpp"
#include "linalg/matrix.hpp"

namespace safe::dsp {

/// Forward-only sample covariance of order `order` built from overlapping
/// snapshots y(n) = [x(n), x(n+1), ..., x(n+order-1)]^T:
///   R = 1/(N-order+1) * sum_n y(n) y(n)^H.
/// Throws std::invalid_argument when the signal is shorter than `order`.
linalg::CMatrix sample_covariance(const ComplexSignal& signal,
                                  std::size_t order);

/// Forward-backward averaged covariance R_fb = (R + J conj(R) J) / 2 where J
/// is the exchange matrix. Halves the variance of the estimate and enforces
/// the persymmetry MUSIC expects; this is what MATLAB's rootmusic uses.
linalg::CMatrix forward_backward_covariance(const ComplexSignal& signal,
                                            std::size_t order);

/// J conj(R) J for a square matrix (exchange-conjugate reflection).
linalg::CMatrix exchange_conjugate(const linalg::CMatrix& r);

}  // namespace safe::dsp
