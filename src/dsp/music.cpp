#include "dsp/music.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/covariance.hpp"
#include "linalg/eigen_hermitian.hpp"
#include "linalg/polynomial.hpp"

namespace safe::dsp {

using linalg::CMatrix;
using linalg::CVector;

namespace {

/// Noise-subspace projector En En^H from the covariance of `signal`.
CMatrix noise_projector(const ComplexSignal& signal, std::size_t num_sources,
                        const MusicOptions& options) {
  const std::size_t m = options.covariance_order;
  if (num_sources >= m) {
    throw std::invalid_argument(
        "music: num_sources must be < covariance_order");
  }
  const CMatrix r = options.forward_backward
                        ? forward_backward_covariance(signal, m)
                        : sample_covariance(signal, m);
  const auto eig = linalg::eigen_hermitian(r);
  // Eigenvalues ascending: the first m - num_sources eigenvectors span the
  // noise subspace.
  const std::size_t noise_dim = m - num_sources;
  CMatrix projector(m, m);
  for (std::size_t k = 0; k < noise_dim; ++k) {
    const CVector v = eig.eigenvectors.col(k);
    projector += linalg::outer(v, v);
  }
  return projector;
}

}  // namespace

std::vector<double> music_pseudospectrum(const ComplexSignal& signal,
                                         std::size_t num_sources,
                                         std::size_t grid_size,
                                         const MusicOptions& options) {
  if (grid_size == 0) {
    throw std::invalid_argument("music_pseudospectrum: empty grid");
  }
  const CMatrix c = noise_projector(signal, num_sources, options);
  const std::size_t m = options.covariance_order;

  std::vector<double> spectrum(grid_size);
  for (std::size_t g = 0; g < grid_size; ++g) {
    const double omega = -std::numbers::pi +
                         2.0 * std::numbers::pi * static_cast<double>(g) /
                             static_cast<double>(grid_size);
    CVector a(m);
    for (std::size_t i = 0; i < m; ++i) {
      a[i] = std::polar(1.0, omega * static_cast<double>(i));
    }
    // a^H C a is real and >= 0 for a projector C.
    const CVector ca = c * a;
    const double denom = std::max(std::real(linalg::dot(a, ca)), 1e-300);
    spectrum[g] = 1.0 / denom;
  }
  return spectrum;
}

std::vector<double> root_music_frequencies(const ComplexSignal& signal,
                                           double sample_rate_hz,
                                           std::size_t num_sources,
                                           const MusicOptions& options) {
  if (sample_rate_hz <= 0.0) {
    throw std::invalid_argument("root_music: sample rate must be > 0");
  }
  if (num_sources == 0) return {};
  const CMatrix c = noise_projector(signal, num_sources, options);
  const std::size_t m = options.covariance_order;

  // D(z) = a^T(1/z) C a(z): coefficient of z^(l + m - 1) is the sum of the
  // l-th diagonal of C, l in [-(m-1), m-1].
  std::vector<Complex> coeffs(2 * m - 1);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      // Entry C(i, j) contributes to power (j - i) + (m - 1).
      const std::size_t power = j + (m - 1) - i;
      coeffs[power] += c(i, j);
    }
  }
  const linalg::Polynomial d{std::move(coeffs)};
  const auto roots = linalg::find_roots(d);

  // Keep roots inside or on the unit circle and rank them by the MUSIC
  // null-spectrum value a(omega)^H C a(omega): signal roots project onto
  // the noise subspace least. Circle-closeness alone is fooled when the
  // noise subspace is (near-)degenerate, e.g. at very high SNR.
  struct Candidate {
    Complex z;
    double null_power;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(roots.size());
  for (const Complex& z : roots) {
    const double mag = std::abs(z);
    // Signal roots sit ON the circle (double roots at high SNR), and the
    // finite-precision split can land both of the pair slightly outside;
    // keep a generous band since ranking is by null power, not radius.
    if (mag > 1.05 || mag < 0.2) continue;
    const double omega = std::arg(z);
    CVector a(m);
    for (std::size_t i = 0; i < m; ++i) {
      a[i] = std::polar(1.0, omega * static_cast<double>(i));
    }
    const double null_power = std::real(linalg::dot(a, c * a));
    candidates.push_back({z, null_power});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.null_power < b.null_power;
            });

  // Adjacent roots of a conjugate-reciprocal pair map to the same omega;
  // suppress near-duplicate frequencies while picking the best.
  std::vector<double> freqs;
  freqs.reserve(num_sources);
  const double dup_tol = 1e-4;  // rad/sample
  for (const auto& cand : candidates) {
    if (freqs.size() == num_sources) break;
    const double omega = std::arg(cand.z);
    const double f = omega * sample_rate_hz / (2.0 * std::numbers::pi);
    bool duplicate = false;
    for (const double existing : freqs) {
      const double w_existing =
          existing * 2.0 * std::numbers::pi / sample_rate_hz;
      if (std::abs(w_existing - omega) < dup_tol) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) freqs.push_back(f);
  }
  return freqs;
}

}  // namespace safe::dsp
