#include "dsp/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace safe::dsp {

namespace {

/// Maps an FFT bin index to its signed frequency in Hz.
double bin_to_hz(double bin, std::size_t fft_size, double sample_rate_hz) {
  const double n = static_cast<double>(fft_size);
  double f = bin / n;
  if (f > 0.5) f -= 1.0;
  return f * sample_rate_hz;
}

}  // namespace

std::vector<ToneEstimate> estimate_tones_periodogram(
    const ComplexSignal& signal, double sample_rate_hz, std::size_t count,
    const PeriodogramOptions& options) {
  if (sample_rate_hz <= 0.0) {
    throw std::invalid_argument("estimate_tones: sample rate must be > 0");
  }
  if (signal.empty() || count == 0) return {};

  ComplexSignal windowed = signal;
  apply_window(windowed, make_window(options.window, signal.size()));
  const ComplexSignal spectrum = fft(windowed, options.min_fft_size);
  const RealSignal power = power_spectrum(spectrum);
  const std::size_t n = power.size();

  // Guard band: the padding factor blows one pre-padding bin up to
  // pad_factor bins, so suppress +-2*pad_factor around each accepted peak.
  const std::size_t pad_factor = std::max<std::size_t>(1, n / signal.size());
  const std::size_t guard = 2 * pad_factor;

  std::vector<bool> masked(n, false);
  std::vector<ToneEstimate> tones;
  tones.reserve(count);

  for (std::size_t pick = 0; pick < count; ++pick) {
    std::size_t best = n;  // sentinel
    double best_power = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!masked[i] && power[i] > best_power) {
        best_power = power[i];
        best = i;
      }
    }
    if (best == n || best_power <= 0.0) break;

    double bin = static_cast<double>(best);
    if (options.parabolic_interpolation) {
      const std::size_t prev = (best + n - 1) % n;
      const std::size_t next = (best + 1) % n;
      // Log-magnitude parabola through the three bins around the peak.
      const double a = 0.5 * std::log(std::max(power[prev], 1e-300));
      const double b = 0.5 * std::log(std::max(power[best], 1e-300));
      const double c = 0.5 * std::log(std::max(power[next], 1e-300));
      const double denom = a - 2.0 * b + c;
      if (std::abs(denom) > 1e-30) {
        const double delta = 0.5 * (a - c) / denom;
        if (std::abs(delta) <= 1.0) bin += delta;
      }
    }

    tones.push_back(ToneEstimate{
        .frequency_hz = bin_to_hz(bin, n, sample_rate_hz),
        .power = best_power,
    });

    for (std::size_t off = 0; off <= guard; ++off) {
      masked[(best + off) % n] = true;
      masked[(best + n - off) % n] = true;
    }
  }
  return tones;
}

std::optional<ToneEstimate> estimate_dominant_tone(
    const ComplexSignal& signal, double sample_rate_hz,
    const PeriodogramOptions& options) {
  auto tones = estimate_tones_periodogram(signal, sample_rate_hz, 1, options);
  if (tones.empty()) return std::nullopt;
  return tones.front();
}

double tone_power(const ComplexSignal& signal, double frequency_hz,
                  double sample_rate_hz) {
  if (sample_rate_hz <= 0.0) {
    throw std::invalid_argument("tone_power: sample rate must be > 0");
  }
  if (signal.empty()) return 0.0;
  const double omega =
      2.0 * std::numbers::pi * frequency_hz / sample_rate_hz;
  Complex acc{};
  for (std::size_t n = 0; n < signal.size(); ++n) {
    acc += signal[n] * std::polar(1.0, -omega * static_cast<double>(n));
  }
  acc /= static_cast<double>(signal.size());
  return std::norm(acc);
}

double mean_power(const ComplexSignal& signal) {
  if (signal.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& xi : signal) acc += std::norm(xi);
  return acc / static_cast<double>(signal.size());
}

double peak_to_average_power(const ComplexSignal& signal,
                             const PeriodogramOptions& options) {
  if (signal.empty()) return 0.0;
  ComplexSignal windowed = signal;
  apply_window(windowed, make_window(options.window, signal.size()));
  const RealSignal power = power_spectrum(fft(windowed, options.min_fft_size));
  double peak = 0.0, sum = 0.0;
  for (const double p : power) {
    peak = std::max(peak, p);
    sum += p;
  }
  if (sum <= 0.0) return 0.0;
  return peak / (sum / static_cast<double>(power.size()));
}

}  // namespace safe::dsp
