// Classical (FFT periodogram) frequency estimation.
//
// This is the cheap baseline against which root-MUSIC is compared in the
// ablation benches, and the fallback estimator in the radar processor.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/window.hpp"

namespace safe::dsp {

/// A single estimated complex-exponential component.
struct ToneEstimate {
  double frequency_hz = 0.0;  ///< Signed frequency in (-fs/2, fs/2].
  double power = 0.0;         ///< Peak power (arbitrary units).
};

struct PeriodogramOptions {
  WindowKind window = WindowKind::kHann;
  std::size_t min_fft_size = 4096;  ///< Zero-pad target for finer bins.
  bool parabolic_interpolation = true;
};

/// Estimates the `count` strongest tones of a complex baseband signal
/// sampled at `sample_rate_hz` from its zero-padded windowed periodogram.
///
/// Peaks are greedily picked with a guard band of +-2 (pre-padding) bins so
/// one physical tone is not reported twice. Returns fewer than `count`
/// estimates when the spectrum has fewer distinct peaks.
std::vector<ToneEstimate> estimate_tones_periodogram(
    const ComplexSignal& signal, double sample_rate_hz, std::size_t count,
    const PeriodogramOptions& options = {});

/// Single strongest tone, or std::nullopt for an all-zero signal.
std::optional<ToneEstimate> estimate_dominant_tone(
    const ComplexSignal& signal, double sample_rate_hz,
    const PeriodogramOptions& options = {});

/// Goertzel-style coherent power of `signal` at exactly `frequency_hz`:
/// |(1/N) sum_n x[n] e^{-j 2 pi f n / fs}|^2. Used to rank candidate
/// frequencies returned by subspace estimators by their actual power.
double tone_power(const ComplexSignal& signal, double frequency_hz,
                  double sample_rate_hz);

/// Mean squared magnitude of the signal (total in-band power).
double mean_power(const ComplexSignal& signal);

/// Ratio of the strongest periodogram bin to the average bin; a coherence
/// statistic that is large when a sinusoidal component is present and O(log N)
/// for pure noise.
double peak_to_average_power(const ComplexSignal& signal,
                             const PeriodogramOptions& options = {});

}  // namespace safe::dsp
