#include "dsp/cfar.hpp"

#include <stdexcept>

namespace safe::dsp {

std::vector<CfarDetection> cfar_detect(const RealSignal& power_spectrum,
                                       const CfarOptions& options) {
  if (options.training_cells == 0) {
    throw std::invalid_argument("cfar_detect: need training cells");
  }
  if (options.threshold_factor <= 0.0) {
    throw std::invalid_argument("cfar_detect: threshold factor must be > 0");
  }
  const std::size_t n = power_spectrum.size();
  const std::size_t window = options.guard_cells + options.training_cells;
  if (n == 0 || 2 * window + 1 > n) {
    throw std::invalid_argument("cfar_detect: spectrum shorter than window");
  }

  std::vector<CfarDetection> detections;
  for (std::size_t cut = 0; cut < n; ++cut) {
    double noise = 0.0;
    for (std::size_t off = options.guard_cells + 1; off <= window; ++off) {
      noise += power_spectrum[(cut + off) % n];
      noise += power_spectrum[(cut + n - off) % n];
    }
    noise /= static_cast<double>(2 * options.training_cells);

    const double cell = power_spectrum[cut];
    if (cell <= options.threshold_factor * noise) continue;
    // Local-maximum suppression within the guard region.
    bool is_peak = true;
    for (std::size_t off = 1; off <= options.guard_cells && is_peak; ++off) {
      if (power_spectrum[(cut + off) % n] > cell ||
          power_spectrum[(cut + n - off) % n] > cell) {
        is_peak = false;
      }
    }
    if (is_peak) {
      detections.push_back(CfarDetection{cut, cell, noise});
    }
  }
  return detections;
}

}  // namespace safe::dsp
