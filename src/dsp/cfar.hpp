// Cell-averaging CFAR (constant false-alarm rate) detection.
//
// Real FMCW receivers do not use fixed power thresholds: each range bin is
// compared against the noise level estimated from its neighbours, which
// keeps the false-alarm rate constant as the noise floor moves (e.g. under
// partial jamming). Provided both as a realistic detection stage for the
// radar spectrum and as the statistical backbone for choosing the
// peak-to-average coherence threshold in the processor.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/fft.hpp"

namespace safe::dsp {

struct CfarOptions {
  std::size_t guard_cells = 2;     ///< Cells adjacent to the CUT to skip.
  std::size_t training_cells = 8;  ///< Cells per side used for the estimate.
  double threshold_factor = 12.0;  ///< Scale over the local noise estimate.
};

/// One CFAR detection.
struct CfarDetection {
  std::size_t bin = 0;
  double power = 0.0;
  double noise_estimate = 0.0;
};

/// Runs CA-CFAR over a power spectrum (wrapping at the edges, appropriate
/// for FFT bins). Returns detections where power > factor * local noise,
/// keeping only local maxima so one physical peak yields one detection.
/// Throws std::invalid_argument for degenerate window configurations.
std::vector<CfarDetection> cfar_detect(const RealSignal& power_spectrum,
                                       const CfarOptions& options = {});

}  // namespace safe::dsp
