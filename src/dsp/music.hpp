// MUSIC and root-MUSIC super-resolution frequency estimation.
//
// The paper extracts FMCW beat frequencies with MATLAB's root-MUSIC; this is
// the equivalent implementation built on our own eigensolver and polynomial
// rooting (see DESIGN.md, substitution table).
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/fft.hpp"
#include "linalg/matrix.hpp"

namespace safe::dsp {

struct MusicOptions {
  std::size_t covariance_order = 16;  ///< Snapshot dimension M (> sources).
  bool forward_backward = true;       ///< FB-average the covariance.
};

/// MUSIC pseudospectrum 1 / (a^H En En^H a) evaluated on a uniform grid of
/// `grid_size` normalized frequencies omega in [-pi, pi).
///
/// Returned values are the pseudospectrum heights; grid point i corresponds
/// to omega_i = -pi + 2*pi*i/grid_size.
std::vector<double> music_pseudospectrum(const ComplexSignal& signal,
                                         std::size_t num_sources,
                                         std::size_t grid_size,
                                         const MusicOptions& options = {});

/// root-MUSIC estimate of `num_sources` complex-exponential frequencies.
///
/// Returns signed frequencies in Hz in (-fs/2, fs/2], sorted by closeness of
/// their signal-space root to the unit circle (best first). Throws
/// std::invalid_argument when the signal is too short for the covariance
/// order or when num_sources >= covariance_order.
std::vector<double> root_music_frequencies(const ComplexSignal& signal,
                                           double sample_rate_hz,
                                           std::size_t num_sources,
                                           const MusicOptions& options = {});

}  // namespace safe::dsp
