// Window functions for spectral estimation.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/fft.hpp"

namespace safe::dsp {

enum class WindowKind {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
};

/// Window coefficients of the given length (symmetric form).
RealSignal make_window(WindowKind kind, std::size_t length);

/// Sum of window coefficients (coherent gain * N); used to normalize
/// amplitude estimates taken from windowed spectra.
double window_coherent_gain(const RealSignal& window);

/// Multiplies a complex signal by a real window in place.
/// Throws std::invalid_argument on length mismatch.
void apply_window(ComplexSignal& signal, const RealSignal& window);

}  // namespace safe::dsp
