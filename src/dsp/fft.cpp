#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace safe::dsp {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1U;
  return p;
}

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

namespace {

void fft_core(ComplexSignal& x, bool inverse) {
  const std::size_t n = x.size();
  if (!is_pow2(n)) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1U;
    for (; j & bit; bit >>= 1U) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  // Danielson-Lanczos butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1U) {
    const double angle = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                         static_cast<double>(len);
    const Complex wlen = std::polar(1.0, angle);
    for (std::size_t i = 0; i < n; i += len) {
      Complex w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = x[i + k];
        const Complex v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& xi : x) xi *= inv_n;
  }
}

}  // namespace

void fft_inplace(ComplexSignal& x) { fft_core(x, /*inverse=*/false); }

void ifft_inplace(ComplexSignal& x) { fft_core(x, /*inverse=*/true); }

ComplexSignal fft(const ComplexSignal& x, std::size_t min_size) {
  ComplexSignal padded = x;
  padded.resize(std::max(next_pow2(x.size()), next_pow2(min_size)));
  fft_inplace(padded);
  return padded;
}

ComplexSignal fft(const RealSignal& x, std::size_t min_size) {
  ComplexSignal cx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) cx[i] = Complex{x[i], 0.0};
  return fft(cx, min_size);
}

RealSignal power_spectrum(const ComplexSignal& spectrum) {
  RealSignal p(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    p[i] = std::norm(spectrum[i]);
  }
  return p;
}

}  // namespace safe::dsp
