#include "fault/injectors.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace safe::fault {

namespace units = safe::units;

namespace {

/// Wipes a measurement down to "receiver saw nothing".
void make_silent(radar::RadarMeasurement& m) {
  m = radar::RadarMeasurement{};
}

}  // namespace

DropoutBurstFault::DropoutBurstFault(FaultWindow window, double probability)
    : window_(window), probability_(probability) {}

void DropoutBurstFault::apply(const FaultContext& context,
                              radar::RadarMeasurement& measurement) const {
  if (!window_.active(context.step)) return;
  if (probability_ < 1.0 &&
      hash_to_unit(step_hash(context.seed, context.step)) >= probability_) {
    return;
  }
  make_silent(measurement);
}

StuckAtFault::StuckAtFault(FaultWindow window) : window_(window) {}

void StuckAtFault::apply(const FaultContext& context,
                         radar::RadarMeasurement& measurement) const {
  if (!window_.active(context.step)) return;
  if (context.has_previous) measurement = context.previous;
}

NonFiniteFault::NonFiniteFault(FaultWindow window, bool use_inf)
    : window_(window), use_inf_(use_inf) {}

void NonFiniteFault::apply(const FaultContext& context,
                           radar::RadarMeasurement& measurement) const {
  if (!window_.active(context.step)) return;
  const double bad = use_inf_ ? std::numeric_limits<double>::infinity()
                              : std::numeric_limits<double>::quiet_NaN();
  measurement.estimate.distance_m = units::Meters{bad};
  measurement.estimate.range_rate_mps = units::MetersPerSecond{bad};
  // The receiver still believes it locked onto something: the hazard this
  // fault exercises is a consumer trusting coherent_echo alone.
  measurement.coherent_echo = true;
}

BiasRampFault::BiasRampFault(FaultWindow window,
                             units::Meters distance_slope_per_step,
                             units::MetersPerSecond velocity_slope_per_step)
    : window_(window),
      distance_slope_(distance_slope_per_step),
      velocity_slope_(velocity_slope_per_step) {}

void BiasRampFault::apply(const FaultContext& context,
                          radar::RadarMeasurement& measurement) const {
  if (!window_.active(context.step) || !measurement.coherent_echo) return;
  const double age = static_cast<double>(context.step - window_.start);
  measurement.estimate.distance_m += units::Meters{distance_slope_.value() * age};
  measurement.estimate.range_rate_mps +=
      units::MetersPerSecond{velocity_slope_.value() * age};
}

QuantizeSaturateFault::QuantizeSaturateFault(FaultWindow window,
                                             units::Meters distance_step,
                                             units::Meters max_distance,
                                             units::MetersPerSecond max_speed)
    : window_(window),
      distance_step_m_(std::max(distance_step.value(), 0.0)),
      max_distance_m_(max_distance),
      max_speed_mps_(max_speed) {}

void QuantizeSaturateFault::apply(const FaultContext& context,
                                  radar::RadarMeasurement& measurement) const {
  if (!window_.active(context.step) || !measurement.coherent_echo) return;
  double d = measurement.estimate.distance_m.value();
  double v = measurement.estimate.range_rate_mps.value();
  if (distance_step_m_ > units::Meters{0.0}) {
    const double step = distance_step_m_.value();
    d = std::round(d / step) * step;
  }
  d = std::clamp(d, 0.0, max_distance_m_.value());
  v = std::clamp(v, -max_speed_mps_.value(), max_speed_mps_.value());
  measurement.estimate.distance_m = units::Meters{d};
  measurement.estimate.range_rate_mps = units::MetersPerSecond{v};
}

ChallengeFlappingFault::ChallengeFlappingFault(FaultWindow window)
    : window_(window) {}

void ChallengeFlappingFault::apply(const FaultContext& context,
                                   radar::RadarMeasurement& measurement) const {
  if (!window_.active(context.step) || !context.challenge_slot) return;
  if (context.challenge_index % 2 == 0) {
    // Jammed return: radiation where silence was expected.
    make_silent(measurement);
    measurement.power_alarm = true;
  } else {
    // Silent return: looks like the attacker backed off.
    make_silent(measurement);
  }
}

ClockSkipFault::ClockSkipFault(FaultWindow window) : window_(window) {}

void ClockSkipFault::apply(const FaultContext& context,
                           radar::RadarMeasurement& measurement) const {
  if (!window_.active(context.step)) return;
  if (context.has_previous) {
    measurement = context.previous;
  } else {
    make_silent(measurement);
  }
}

}  // namespace safe::fault
