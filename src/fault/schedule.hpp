// Composable fault schedules + the `--fault=<spec>` mini-language.
//
// A FaultSchedule owns an ordered list of injectors and the per-run stream
// state they need (previously delivered measurement, challenge count).
// Schedules are value types: a simulation copies the configured schedule so
// repeated runs start from identical state.
//
// Spec grammar (examples):
//   "dropout:start=60,len=10"
//   "nan:start=100,len=1,period=25"
//   "bias:start=50,slope=0.4;flap:start=150"
//   "dropout:start=40,len=0,prob=0.2"       (len=0 -> unbounded window)
// Multiple injectors are separated by ';' (or '+') and apply in order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/injectors.hpp"

namespace safe::fault {

class FaultSchedule {
 public:
  FaultSchedule() = default;
  explicit FaultSchedule(std::uint64_t seed) : seed_(seed) {}

  /// Appends an injector; application order is insertion order.
  void add(FaultInjectorPtr injector);

  /// Runs every injector over the measurement for this epoch and records the
  /// delivered (post-fault) measurement as stream history.
  [[nodiscard]] radar::RadarMeasurement apply(
      std::int64_t step, bool challenge_slot,
      radar::RadarMeasurement measurement);

  /// Clears stream history (start of a fresh run), keeping the injectors.
  void reset();

  [[nodiscard]] bool empty() const { return injectors_.size() == 0; }
  [[nodiscard]] std::size_t size() const { return injectors_.size(); }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// '+'-joined injector names ("dropout+flap"), or "none" when empty.
  [[nodiscard]] std::string name() const;

 private:
  std::vector<FaultInjectorPtr> injectors_;
  std::uint64_t seed_ = 1;
  std::optional<radar::RadarMeasurement> previous_;
  std::int64_t challenge_count_ = 0;
};

/// Parses the `--fault` spec language into a schedule. Throws
/// std::invalid_argument with a message naming the offending token on
/// malformed input. An empty spec (or "none") yields an empty schedule.
[[nodiscard]] FaultSchedule parse_fault_spec(const std::string& spec,
                                             std::uint64_t seed = 1);

/// One-line usage string for CLIs exposing `--fault`.
[[nodiscard]] std::string fault_spec_help();

}  // namespace safe::fault
