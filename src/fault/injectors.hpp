// Concrete fault injectors for radar::RadarMeasurement streams.
//
// Each injector corrupts one failure axis; they compose through a
// FaultSchedule. All are window-gated (FaultWindow) and deterministic.
#pragma once

#include "fault/fault.hpp"
#include "units/units.hpp"

namespace safe::fault {

/// Receiver delivers nothing: no coherent echo, no power alarm. With
/// `probability` in (0, 1) each in-window step drops independently (hash
/// driven); probability >= 1 drops every in-window step.
class DropoutBurstFault final : public FaultInjector {
 public:
  explicit DropoutBurstFault(FaultWindow window, double probability = 1.0);

  void apply(const FaultContext& context,
             radar::RadarMeasurement& measurement) const override;
  [[nodiscard]] std::string name() const override { return "dropout"; }

 private:
  FaultWindow window_;
  double probability_;
};

/// Tracker latch-up: the previous epoch's measurement is delivered again
/// verbatim for every in-window step.
class StuckAtFault final : public FaultInjector {
 public:
  explicit StuckAtFault(FaultWindow window);

  void apply(const FaultContext& context,
             radar::RadarMeasurement& measurement) const override;
  [[nodiscard]] std::string name() const override { return "stuck"; }

 private:
  FaultWindow window_;
};

/// Arithmetic fault: the range/range-rate estimates come back NaN (or +Inf)
/// while the receiver still flags a coherent echo — the worst case for any
/// consumer that trusts `coherent_echo` without checking finiteness.
class NonFiniteFault final : public FaultInjector {
 public:
  NonFiniteFault(FaultWindow window, bool use_inf);

  void apply(const FaultContext& context,
             radar::RadarMeasurement& measurement) const override;
  [[nodiscard]] std::string name() const override {
    return use_inf_ ? "inf" : "nan";
  }

 private:
  FaultWindow window_;
  bool use_inf_;
};

/// Slow calibration drift: distance (and optionally velocity) gains an
/// additive ramp growing `slope` per step from window start.
class BiasRampFault final : public FaultInjector {
 public:
  BiasRampFault(FaultWindow window, units::Meters distance_slope_per_step,
                units::MetersPerSecond velocity_slope_per_step =
                    units::MetersPerSecond{0.0});

  void apply(const FaultContext& context,
             radar::RadarMeasurement& measurement) const override;
  [[nodiscard]] std::string name() const override { return "bias"; }

 private:
  FaultWindow window_;
  units::Meters distance_slope_;
  units::MetersPerSecond velocity_slope_;
};

/// ADC degradation: estimates are quantized to a coarse grid and saturated
/// at hard rails.
class QuantizeSaturateFault final : public FaultInjector {
 public:
  QuantizeSaturateFault(FaultWindow window, units::Meters distance_step,
                        units::Meters max_distance,
                        units::MetersPerSecond max_speed);

  void apply(const FaultContext& context,
             radar::RadarMeasurement& measurement) const override;
  [[nodiscard]] std::string name() const override { return "quantize"; }

 private:
  FaultWindow window_;
  units::Meters distance_step_m_;
  units::Meters max_distance_m_;
  units::MetersPerSecond max_speed_mps_;
};

/// Challenge-slot flapping: at in-window challenge slots the receiver output
/// alternates between forced silence and a forced power alarm, so a naive
/// detector oscillates between "attack" and "clear" on consecutive
/// challenges. Alternation is keyed to the schedule's challenge index.
class ChallengeFlappingFault final : public FaultInjector {
 public:
  explicit ChallengeFlappingFault(FaultWindow window);

  void apply(const FaultContext& context,
             radar::RadarMeasurement& measurement) const override;
  [[nodiscard]] std::string name() const override { return "flap"; }

 private:
  FaultWindow window_;
};

/// Clock skip: the sensor misses its processing deadline and re-delivers the
/// stale previous frame at in-window steps (first skipped step of a run
/// behaves as a dropout).
class ClockSkipFault final : public FaultInjector {
 public:
  explicit ClockSkipFault(FaultWindow window);

  void apply(const FaultContext& context,
             radar::RadarMeasurement& measurement) const override;
  [[nodiscard]] std::string name() const override { return "skip"; }

 private:
  FaultWindow window_;
};

}  // namespace safe::fault
