#include "fault/schedule.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

namespace safe::fault {

void FaultSchedule::add(FaultInjectorPtr injector) {
  if (!injector) {
    throw std::invalid_argument("FaultSchedule::add: null injector");
  }
  injectors_.push_back(std::move(injector));
}

radar::RadarMeasurement FaultSchedule::apply(
    std::int64_t step, bool challenge_slot,
    radar::RadarMeasurement measurement) {
  if (challenge_slot) ++challenge_count_;
  FaultContext context;
  context.step = step;
  context.challenge_slot = challenge_slot;
  context.challenge_index = challenge_count_;
  context.seed = seed_;
  context.has_previous = previous_.has_value();
  if (previous_) context.previous = *previous_;

  for (const auto& injector : injectors_) {
    injector->apply(context, measurement);
  }
  previous_ = measurement;
  return measurement;
}

void FaultSchedule::reset() {
  previous_.reset();
  challenge_count_ = 0;
}

std::string FaultSchedule::name() const {
  if (injectors_.empty()) return "none";
  std::string joined;
  for (const auto& injector : injectors_) {
    if (!joined.empty()) joined += '+';
    joined += injector->name();
  }
  return joined;
}

namespace {

using KeyValues = std::map<std::string, double>;

/// Parses "key=val,key=val" into a map; throws on malformed tokens.
KeyValues parse_key_values(const std::string& body, const std::string& spec) {
  KeyValues kv;
  std::stringstream ss(body);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("fault spec: bad token '" + token +
                                  "' in '" + spec + "'");
    }
    const std::string key = token.substr(0, eq);
    try {
      kv[key] = std::stod(token.substr(eq + 1));
    } catch (const std::exception&) {
      throw std::invalid_argument("fault spec: bad value in '" + token + "'");
    }
  }
  return kv;
}

double take(KeyValues& kv, const std::string& key, double fallback) {
  const auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  const double v = it->second;
  kv.erase(it);
  return v;
}

FaultWindow take_window(KeyValues& kv) {
  FaultWindow w;
  w.start = static_cast<std::int64_t>(take(kv, "start", 0.0));
  w.length = static_cast<std::int64_t>(take(kv, "len", 0.0));
  w.period = static_cast<std::int64_t>(take(kv, "period", 0.0));
  return w;
}

FaultInjectorPtr build_injector(const std::string& kind, KeyValues kv,
                                const std::string& spec) {
  const FaultWindow window = take_window(kv);
  FaultInjectorPtr injector;
  if (kind == "dropout") {
    injector = std::make_shared<DropoutBurstFault>(window,
                                                   take(kv, "prob", 1.0));
  } else if (kind == "stuck") {
    injector = std::make_shared<StuckAtFault>(window);
  } else if (kind == "nan") {
    injector = std::make_shared<NonFiniteFault>(window, /*use_inf=*/false);
  } else if (kind == "inf") {
    injector = std::make_shared<NonFiniteFault>(window, /*use_inf=*/true);
  } else if (kind == "bias") {
    injector = std::make_shared<BiasRampFault>(
        window, units::Meters{take(kv, "slope", 0.5)},
        units::MetersPerSecond{take(kv, "vslope", 0.0)});
  } else if (kind == "quantize") {
    injector = std::make_shared<QuantizeSaturateFault>(
        window, units::Meters{take(kv, "step", 4.0)},
        units::Meters{take(kv, "max", 120.0)},
        units::MetersPerSecond{take(kv, "vmax", 30.0)});
  } else if (kind == "flap") {
    injector = std::make_shared<ChallengeFlappingFault>(window);
  } else if (kind == "skip") {
    injector = std::make_shared<ClockSkipFault>(window);
  } else {
    throw std::invalid_argument("fault spec: unknown injector '" + kind +
                                "' in '" + spec + "'");
  }
  if (!kv.empty()) {
    throw std::invalid_argument("fault spec: unknown key '" +
                                kv.begin()->first + "' for '" + kind + "'");
  }
  return injector;
}

}  // namespace

FaultSchedule parse_fault_spec(const std::string& spec, std::uint64_t seed) {
  FaultSchedule schedule(seed);
  if (spec.empty() || spec == "none") return schedule;

  std::string normalized = spec;
  for (char& c : normalized) {
    if (c == '+') c = ';';
  }
  std::stringstream ss(normalized);
  std::string clause;
  while (std::getline(ss, clause, ';')) {
    if (clause.empty()) continue;
    const auto colon = clause.find(':');
    const std::string kind = clause.substr(0, colon);
    const std::string body =
        colon == std::string::npos ? std::string{} : clause.substr(colon + 1);
    schedule.add(build_injector(kind, parse_key_values(body, spec), spec));
  }
  return schedule;
}

std::string fault_spec_help() {
  return "fault spec: <kind>:<k=v,...>[;<kind>:...] with kinds "
         "dropout(start,len,period,prob) stuck(start,len,period) "
         "nan|inf(start,len,period) bias(start,len,slope,vslope) "
         "quantize(start,len,step,max,vmax) flap(start,len) "
         "skip(start,len,period); len=0 means unbounded";
}

}  // namespace safe::fault
