// Fault-injection interface for the safe-measurement pipeline.
//
// The attack models (attack/) corrupt the analog EchoScene an adversary can
// reach; fault injectors model everything that goes wrong *inside* the sensor
// after digitization — dropouts, stuck frames, non-finite outputs, bias
// drift, quantizer faults, flapping challenge returns, skipped clocks. They
// wrap the radar::RadarMeasurement stream between the receiver and the
// pipeline, so robustness of the degradation manager can be exercised
// without touching the RF model.
//
// Injectors are deterministic: any randomness is derived from a splitmix64
// hash of (seed, step), so the same spec + seed reproduces the same corrupted
// stream regardless of composition order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "radar/processor.hpp"

namespace safe::fault {

/// Per-epoch context handed to every injector.
struct FaultContext {
  std::int64_t step = 0;
  /// The CRA modulator suppressed the probe this epoch.
  bool challenge_slot = false;
  /// Number of challenge slots seen so far (including this one when
  /// `challenge_slot` is set); drives deterministic flapping patterns.
  std::int64_t challenge_index = 0;
  /// Measurement delivered on the previous epoch (post-fault), when any.
  bool has_previous = false;
  radar::RadarMeasurement previous{};
  /// Schedule-level seed for hash-derived randomness.
  std::uint64_t seed = 1;
};

/// splitmix64 of (seed, step): the deterministic per-step random source.
[[nodiscard]] constexpr std::uint64_t step_hash(std::uint64_t seed,
                                                std::int64_t step) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL *
                               (static_cast<std::uint64_t>(step) + 1ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from a step hash.
[[nodiscard]] constexpr double hash_to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Interface for measurement-stream fault injectors. Implementations are
/// immutable; per-run state (previous measurement, challenge count) lives in
/// the FaultSchedule so schedules can be copied per simulation.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Mutates `measurement` in place for this epoch.
  virtual void apply(const FaultContext& context,
                     radar::RadarMeasurement& measurement) const = 0;

  /// Short spec-style name for traces and benches (e.g. "dropout").
  [[nodiscard]] virtual std::string name() const = 0;
};

using FaultInjectorPtr = std::shared_ptr<const FaultInjector>;

/// Half-open step window [start, start + length); length <= 0 means
/// unbounded. `period` > 0 repeats the window every `period` steps.
struct FaultWindow {
  std::int64_t start = 0;
  std::int64_t length = 0;
  std::int64_t period = 0;

  [[nodiscard]] bool active(std::int64_t step) const {
    if (step < start) return false;
    const std::int64_t offset = step - start;
    if (period > 0) {
      return length <= 0 || (offset % period) < length;
    }
    return length <= 0 || offset < length;
  }
};

}  // namespace safe::fault
