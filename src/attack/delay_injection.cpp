#include "attack/delay_injection.hpp"

#include <algorithm>
#include <stdexcept>

#include "radar/fmcw.hpp"

namespace safe::attack {

namespace units = safe::units;

DelayInjectionAttack::DelayInjectionAttack(DelayInjectionConfig config)
    : config_(config) {
  if (config_.extra_delay_s <= units::Seconds{0.0}) {
    throw std::invalid_argument(
        "DelayInjectionAttack: extra delay must be positive");
  }
  if (config_.power_advantage <= 0.0) {
    throw std::invalid_argument(
        "DelayInjectionAttack: power advantage must be positive");
  }
}

units::Meters DelayInjectionAttack::range_offset() const {
  return radar::spoofed_range_offset(config_.extra_delay_s);
}

bool DelayInjectionAttack::apply(const AttackContext& context,
                                 radar::EchoScene& scene) {
  if (context.true_distance_m <= units::Meters{0.0}) return false;

  if (!scene.tx_enabled && config_.evades_challenges) {
    // The hypothetical fast adversary notices the suppressed probe in time
    // and stays silent: CRA sees the expected zero output.
    return false;
  }

  if (config_.replaces_true_echo) {
    scene.echoes.clear();
  }
  scene.echoes.push_back(radar::EchoComponent{
      .distance_m = context.true_distance_m + range_offset(),
      .range_rate_mps = context.true_range_rate_mps,
      .power_w = std::max(context.true_echo_power_w * config_.power_advantage,
                          config_.min_power_w),
  });
  return true;
}

}  // namespace safe::attack
