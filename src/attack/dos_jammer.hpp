// Denial-of-service attack: self-screening jammer (paper Section 4.1).
//
// The jammer rides on the leader vehicle and floods the follower radar's
// receiver with wideband noise. It succeeds when the signal-to-jammer power
// ratio of Eq. 11 drops below unity, after which the radar's beat-frequency
// estimates are garbage — the "very high corrupted measurements" of
// Figures 2a and 3a.
#pragma once

#include "attack/attack.hpp"
#include "radar/link_budget.hpp"

namespace safe::attack {

class DosJammerAttack final : public AttackModel {
 public:
  explicit DosJammerAttack(radar::JammerParameters jammer);

  /// Adds the coupled jammer power (Eq. 10 at the true geometry) to the
  /// scene's incoherent noise. The genuine echo is left in place: whether it
  /// survives is decided by physics (Eq. 11), not by fiat.
  bool apply(const AttackContext& context, radar::EchoScene& scene) override;

  [[nodiscard]] std::unique_ptr<AttackModel> clone() const override {
    return std::make_unique<DosJammerAttack>(jammer_);
  }

  [[nodiscard]] std::string name() const override { return "dos-jammer"; }

  [[nodiscard]] const radar::JammerParameters& jammer() const {
    return jammer_;
  }

  /// Eq. 11 success predicate at a given geometry.
  [[nodiscard]] bool succeeds_at(const radar::FmcwParameters& waveform,
                                 units::Meters distance,
                                 double rcs_m2) const;

 private:
  radar::JammerParameters jammer_;
};

}  // namespace safe::attack
