// Delay-injection (spoofing) attack (paper Section 4.1).
//
// The attacker records the radar's probe, replays a counterfeit echo with an
// additional physical delay tau, and overpowers the genuine reflection, so
// the target appears c*tau/2 meters further away than it is. Because the
// replay pipeline has non-zero latency, the counterfeit keeps radiating even
// in epochs where the CRA modulator suppressed the probe — which is exactly
// how Algorithm 2 catches it.
#pragma once

#include "attack/attack.hpp"

namespace safe::attack {

struct DelayInjectionConfig {
  /// Extra round-trip delay injected into the counterfeit.
  /// 40 ns fakes the paper's +6 m.
  units::Seconds extra_delay_s{4.0e-8};

  /// Counterfeit power relative to the genuine echo; > 1 so the receiver
  /// locks onto the counterfeit rather than the true reflection.
  double power_advantage = 4.0;

  /// Floor on the counterfeit power at the victim receiver (watts). The
  /// replay hardware radiates one-way, so its coupled power does not vanish
  /// when the genuine echo does (e.g. target beyond the radar's range
  /// window); ~0.1 nW is a conservative one-way link at town-traffic
  /// distances.
  double min_power_w = 1.0e-10;

  /// When true the counterfeit fully masks the genuine echo (capture
  /// effect); when false both tones reach the receiver.
  bool replaces_true_echo = true;

  /// Future-work adversary (paper Section 7): samples the probe faster than
  /// the defender and mutes its replay during challenge slots, evading CRA.
  /// Default false = the realistic attacker with pipeline latency.
  bool evades_challenges = false;
};

class DelayInjectionAttack final : public AttackModel {
 public:
  explicit DelayInjectionAttack(DelayInjectionConfig config);

  bool apply(const AttackContext& context, radar::EchoScene& scene) override;

  [[nodiscard]] std::unique_ptr<AttackModel> clone() const override {
    return std::make_unique<DelayInjectionAttack>(config_);
  }

  [[nodiscard]] std::string name() const override { return "delay-injection"; }

  [[nodiscard]] const DelayInjectionConfig& config() const { return config_; }

  /// Range offset this attack fakes (c * tau / 2).
  [[nodiscard]] units::Meters range_offset() const;

 private:
  DelayInjectionConfig config_;
};

}  // namespace safe::attack
