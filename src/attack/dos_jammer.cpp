#include "attack/dos_jammer.hpp"

#include <stdexcept>

namespace safe::attack {

namespace units = safe::units;

DosJammerAttack::DosJammerAttack(radar::JammerParameters jammer)
    : jammer_(jammer) {
  if (jammer_.peak_power_w <= 0.0 ||
      jammer_.bandwidth_hz <= units::Hertz{0.0}) {
    throw std::invalid_argument(
        "DosJammerAttack: jammer power and bandwidth must be positive");
  }
}

bool DosJammerAttack::apply(const AttackContext& context,
                            radar::EchoScene& scene) {
  if (context.waveform == nullptr) {
    throw std::invalid_argument("DosJammerAttack: context missing waveform");
  }
  if (context.true_distance_m <= units::Meters{0.0}) {
    return false;  // collided / degenerate geometry: nothing to jam through
  }
  const double before = scene.noise_power_w;
  scene.noise_power_w += radar::received_jammer_power_w(
      *context.waveform, jammer_, context.true_distance_m);
  return scene.noise_power_w != before;
}

bool DosJammerAttack::succeeds_at(const radar::FmcwParameters& waveform,
                                  units::Meters distance,
                                  double rcs_m2) const {
  return radar::jamming_succeeds(waveform, jammer_, distance, rcs_m2);
}

}  // namespace safe::attack
