// Physical-layer spoofing adversaries beyond the paper's DoS/delay pair
// (DESIGN.md §17).
//
// Three attacker families from the FMCW-spoofing literature:
//
//  * PhaseCoherentSpoofAttack — a record/modify/replay spoofer that shifts
//    range and Doppler independently (Komissarov & Wool, "Spoofing Attacks
//    Against Vehicular FMCW Radar"). Its `coherence` knob models the phase
//    error of the replay chain: the coherent fraction of the counterfeit
//    power lands in the beat-frequency peak, the rest smears into the
//    receiver's noise floor.
//
//  * ChirpModificationAttack — a rogue radar transmitting chirps with a
//    mismatched sweep slope (Ordean & Garcia, "Millimeter-Wave Automotive
//    Radar Spoofing"). A matched slope relocates the CFAR peak to a chosen
//    ghost range; any slope mismatch spreads the dechirped tone across
//    |1 - slope| * B * T/2 resolution cells, degrading the ghost into
//    broadband interference.
//
//  * ChirpEntrainmentAttack — an attacker that first listens to the
//    victim's sweep timing, then locks on and transmits counterfeits
//    (Graff & Humphreys, "Signal Identification and Entrainment for
//    Practical FMCW Radar Spoofing Attacks"). The lock-on state machine has
//    an acquisition delay, per-epoch sweep-timing jitter, a residual
//    frequency error, and an optional challenge-replay capability that
//    echoes the CRA-modulated probe pattern back after `k` slots — the
//    adversary class that stresses challenge-response authentication to its
//    breaking point.
#pragma once

#include <cstdint>
#include <deque>

#include "attack/attack.hpp"

namespace safe::attack {

/// Komissarov & Wool style delay + frequency-shift spoofer.
struct PhaseCoherentSpoofConfig {
  /// Extra apparent range of the counterfeit (meters; the delay line).
  units::Meters range_offset_m{6.0};
  /// Doppler shift injected by the frequency shifter; the victim reads it
  /// as a range-rate offset of doppler_shift_hz * lambda / 2.
  units::Hertz doppler_shift_hz{200.0};
  /// Fraction of the counterfeit power that stays phase-coherent with the
  /// victim's dechirp, in (0, 1]. The remainder raises the noise floor.
  double coherence = 1.0;
  /// Counterfeit power relative to the genuine echo (> 1 = capture).
  double power_advantage = 4.0;
  /// One-way link floor on the counterfeit power at the victim (watts).
  double min_power_w = 1.0e-10;
  /// True = the counterfeit masks the genuine echo (capture effect).
  bool replaces_true_echo = true;
};

class PhaseCoherentSpoofAttack final : public AttackModel {
 public:
  explicit PhaseCoherentSpoofAttack(PhaseCoherentSpoofConfig config);

  bool apply(const AttackContext& context, radar::EchoScene& scene) override;

  [[nodiscard]] std::unique_ptr<AttackModel> clone() const override {
    return std::make_unique<PhaseCoherentSpoofAttack>(config_);
  }

  [[nodiscard]] std::string name() const override { return "spoof"; }

  [[nodiscard]] const PhaseCoherentSpoofConfig& config() const {
    return config_;
  }

 private:
  PhaseCoherentSpoofConfig config_;
};

/// Ordean & Garcia style rogue radar with a mismatched chirp slope.
struct ChirpModificationConfig {
  /// Attacker sweep slope as a ratio of the victim's (1.0 = matched). The
  /// dechirped residual sweeps |1 - ratio| * B_s * T_s / 2 resolution
  /// cells; even a ~1e-11 mismatch visibly smears a 150 MHz / 2 ms sweep.
  double slope_ratio = 1.0;
  /// Ghost placement relative to the true target (meters).
  units::Meters ghost_offset_m{6.0};
  /// Rogue transmit power at the victim relative to the genuine echo.
  double power_advantage = 4.0;
  /// One-way link floor on the rogue power at the victim (watts).
  double min_power_w = 1.0e-10;
};

class ChirpModificationAttack final : public AttackModel {
 public:
  explicit ChirpModificationAttack(ChirpModificationConfig config);

  bool apply(const AttackContext& context, radar::EchoScene& scene) override;

  [[nodiscard]] std::unique_ptr<AttackModel> clone() const override {
    return std::make_unique<ChirpModificationAttack>(config_);
  }

  [[nodiscard]] std::string name() const override { return "chirp"; }

  [[nodiscard]] const ChirpModificationConfig& config() const {
    return config_;
  }

  /// Fraction of the rogue power that lands in one beat-frequency cell.
  [[nodiscard]] double coherent_fraction(
      const radar::FmcwParameters& waveform) const;

 private:
  ChirpModificationConfig config_;
};

/// Graff & Humphreys style entrainment attacker with an explicit lock-on
/// state machine.
struct ChirpEntrainmentConfig {
  /// Probe-on epochs the attacker must observe before locking on. It stays
  /// completely passive (and invisible) until then.
  std::size_t acquire_slots = 3;
  /// Per-epoch sweep-timing jitter, expressed as the uniform +/- range
  /// error it induces on the counterfeit (meters).
  units::Meters timing_jitter_m{0.0};
  /// Residual entrainment frequency error; the victim reads it as a
  /// constant range-rate bias of freq_error_hz * lambda / 2.
  units::Hertz freq_error_hz{0.0};
  /// Counterfeit range offset (meters).
  units::Meters range_offset_m{6.0};
  /// Counterfeit power relative to the genuine echo (> 1 = capture).
  double power_advantage = 4.0;
  /// One-way link floor on the counterfeit power at the victim (watts).
  double min_power_w = 1.0e-10;
  /// Challenge-replay delay in slots: the attacker transmits at slot t only
  /// if it observed a probe at slot t - k, echoing the CRA modulation back.
  /// k = 0 is the perfect replay that mirrors the probe pattern exactly;
  /// -1 disables the capability (the attacker free-runs once locked).
  std::int64_t replay_delay_slots = -1;
  /// Transmitter carrier/LO leakage while locked, as a multiple of the
  /// scene's pre-attack noise power. This is what the jamming power check
  /// (Algorithm 2's rx-power test) can still see when the replay is
  /// otherwise perfectly challenge-synchronized.
  double leak_noise_factor = 0.0;
  /// Seed for the per-epoch jitter draws (counter-based, so the alarm
  /// timeline is reproducible from (spec, seed) alone).
  std::uint64_t seed = 0;
};

class ChirpEntrainmentAttack final : public AttackModel {
 public:
  explicit ChirpEntrainmentAttack(ChirpEntrainmentConfig config);

  bool apply(const AttackContext& context, radar::EchoScene& scene) override;

  [[nodiscard]] std::unique_ptr<AttackModel> clone() const override {
    return std::make_unique<ChirpEntrainmentAttack>(config_);
  }

  void reset() override;

  [[nodiscard]] std::string name() const override { return "entrain"; }

  [[nodiscard]] const ChirpEntrainmentConfig& config() const {
    return config_;
  }

  /// True once the acquisition phase has completed (testing hook).
  [[nodiscard]] bool locked() const { return locked_; }

 private:
  /// Whether the attacker observed a probe at `step` (false when the step
  /// predates its listening window).
  [[nodiscard]] bool heard_probe_at(std::int64_t step) const;

  ChirpEntrainmentConfig config_;
  bool locked_ = false;
  std::size_t observed_probes_ = 0;
  /// Recent (step, probe-on) observations, oldest first; bounded by the
  /// replay look-back so memory stays O(k).
  std::deque<std::pair<std::int64_t, bool>> history_;
};

}  // namespace safe::attack
