// The `--attack <spec>` mini-language (DESIGN.md §17).
//
// Grammar (same family as the fault/detector/platoon specs):
//   attack_spec := <kind> [":" key "=" value ("," key "=" value)*]
//   kind        := none | dos | delay | spoof | chirp | entrain
//
// Examples:
//   "dos"                                 paper Section 6.2 jammer
//   "dos:power=0.5"                       0.5 W jammer
//   "delay:delay_ns=80,advantage=8"       +12 m counterfeit, 9 dB capture
//   "spoof:coherence=0.9,df=200"          phase-coherent range/Doppler spoof
//   "chirp:slope=1.00000000002,offset=12" slope-mismatched rogue radar
//   "entrain:acquire=3,replay=0,leak=15"  entrained perfect challenge replay
//
// An empty spec (or "none") selects no attack. Parsing throws
// std::invalid_argument only; check_attack_spec() offers the non-throwing
// form and distinguishes a grammar error from a well-formed spec naming an
// unknown kind. Both share one implementation, so the checker and the
// builder always agree (the fuzz harness cross-checks them).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "attack/attack.hpp"
#include "radar/link_budget.hpp"

namespace safe::attack {

enum class SpecStatus {
  kOk = 0,
  kMalformed,    ///< grammar error, bad value, or unknown key
  kUnknownKind,  ///< well-formed, but the attack kind is not registered
};

struct SpecCheck {
  SpecStatus status = SpecStatus::kOk;
  std::string message;  ///< empty on kOk
};

/// Validates a spec without building anything (and without throwing).
[[nodiscard]] SpecCheck check_attack_spec(const std::string& spec);

/// Builds the attack a spec names, or nullptr for ""/"none". A bare "dos"
/// inherits `jammer_defaults` (the scenario's jammer link budget), so the
/// campaign engine's jammer-power axis composes with the spec language.
/// `seed` feeds the entrainment attacker's per-epoch jitter stream. Throws
/// std::invalid_argument on any spec check_attack_spec() would reject.
[[nodiscard]] std::shared_ptr<AttackModel> make_attack(
    const std::string& spec,
    const radar::JammerParameters& jammer_defaults = {},
    std::uint64_t seed = 0);

/// True when `spec` names an actual attack (non-empty and not "none").
[[nodiscard]] bool attack_spec_enabled(const std::string& spec);

/// One-line usage string for CLIs exposing `--attack`.
[[nodiscard]] std::string attack_spec_help();

}  // namespace safe::attack
