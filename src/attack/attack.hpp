// Sensor attack interface (paper Section 4).
//
// An attack observes the true RF environment of one measurement epoch and
// mutates the EchoScene the radar receiver will process. Attacks are pure
// scene transformations: all randomness lives in the receiver's noise
// synthesis, which keeps attack behaviour reproducible and unit-testable.
#pragma once

#include <memory>
#include <string>

#include "radar/echo_scene.hpp"
#include "radar/fmcw.hpp"

namespace safe::attack {

/// Ground-truth context available to an attack when it fires.
struct AttackContext {
  units::Seconds time_s{0.0};          ///< Simulation time k.
  units::Meters true_distance_m{0.0};  ///< Actual leader-follower gap.
  units::MetersPerSecond true_range_rate_mps{0.0};  ///< Actual gap rate.
  double true_echo_power_w = 0.0;      ///< Echo power of the real target.
  const radar::FmcwParameters* waveform = nullptr;
};

/// Interface for sensor-level attacks.
class SensorAttack {
 public:
  virtual ~SensorAttack() = default;

  /// Mutates `scene` to reflect the attack during this epoch.
  virtual void apply(const AttackContext& context,
                     radar::EchoScene& scene) const = 0;

  /// Human-readable attack name for traces and benches.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Identity attack: leaves the scene untouched (baseline runs).
class NoAttack final : public SensorAttack {
 public:
  void apply(const AttackContext&, radar::EchoScene&) const override {}
  [[nodiscard]] std::string name() const override { return "none"; }
};

}  // namespace safe::attack
