// Sensor attack interface (paper Section 4 + DESIGN.md §17).
//
// An attack observes the true RF environment of one measurement epoch and
// mutates the EchoScene the radar receiver will process. Stateless attacks
// (jamming, delay injection) are pure scene transformations; stateful ones
// (chirp entrainment) carry an explicit per-run state machine whose only
// entropy source is the seed they were built with, so a run is reproducible
// from (spec, seed) alone. Simulations clone() the shared model per run —
// the same idiom the fault schedule uses — so repeated runs always start
// from identical state.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "radar/echo_scene.hpp"
#include "radar/fmcw.hpp"

namespace safe::attack {

/// Ground-truth context available to an attack when it fires.
struct AttackContext {
  units::Seconds time_s{0.0};          ///< Simulation time k * T.
  std::int64_t step = 0;               ///< Epoch index k.
  units::Meters true_distance_m{0.0};  ///< Actual leader-follower gap.
  units::MetersPerSecond true_range_rate_mps{0.0};  ///< Actual gap rate.
  double true_echo_power_w = 0.0;      ///< Echo power of the real target.
  const radar::FmcwParameters* waveform = nullptr;
};

/// Interface for sensor-level attacks.
class AttackModel {
 public:
  virtual ~AttackModel() = default;

  /// Mutates `scene` to reflect the attack during this epoch. Returns true
  /// when the scene was modified — the ground truth the detector scoring
  /// uses. Non-const: entrainment-style attacks advance their lock-on state
  /// machine even in epochs where they stay silent.
  virtual bool apply(const AttackContext& context, radar::EchoScene& scene) = 0;

  /// Deep copy with freshly reset() state; simulations clone per run.
  [[nodiscard]] virtual std::unique_ptr<AttackModel> clone() const = 0;

  /// Returns the attack to its pre-run state (no-op for stateless attacks).
  virtual void reset() {}

  /// Human-readable attack name for traces and benches.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Identity attack: leaves the scene untouched (baseline runs).
class NoAttack final : public AttackModel {
 public:
  bool apply(const AttackContext&, radar::EchoScene&) override { return false; }
  [[nodiscard]] std::unique_ptr<AttackModel> clone() const override {
    return std::make_unique<NoAttack>();
  }
  [[nodiscard]] std::string name() const override { return "none"; }
};

}  // namespace safe::attack
