#include "attack/spec.hpp"

#include <cctype>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "attack/delay_injection.hpp"
#include "attack/dos_jammer.hpp"
#include "attack/spoofers.hpp"

namespace safe::attack {

namespace {

/// A grammar-level parse: attack kind plus raw key/value pairs. Building
/// this never consults the kind registry, which is what lets the checker
/// distinguish "malformed" from "well-formed but unknown kind".
struct ParsedSpec {
  std::string kind;
  std::map<std::string, std::string> params;
};

/// Used by the internal builder to report instead of throwing.
struct BuildResult {
  SpecCheck check;
  std::shared_ptr<AttackModel> attack;
};

SpecCheck malformed(std::string message) {
  return SpecCheck{SpecStatus::kMalformed, std::move(message)};
}

SpecCheck unknown_kind(const std::string& name) {
  return SpecCheck{SpecStatus::kUnknownKind,
                   "attack spec: unknown kind `" + name +
                       "` (none, dos, delay, spoof, chirp, entrain)"};
}

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return true;
}

/// Grammar parse only. Returns kOk/kMalformed; never kUnknownKind.
SpecCheck parse_grammar(const std::string& spec, ParsedSpec& out) {
  const auto colon = spec.find(':');
  out.kind = spec.substr(0, colon);
  if (!valid_name(out.kind)) {
    return malformed("attack spec: bad kind name in `" + spec + "`");
  }
  if (colon == std::string::npos) return {};

  const std::string body = spec.substr(colon + 1);
  std::stringstream ss(body);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      return malformed("attack spec: bad token `" + token + "` in `" + spec +
                       "`");
    }
    const std::string key = token.substr(0, eq);
    if (!valid_name(key)) {
      return malformed("attack spec: bad key `" + key + "` in `" + spec +
                       "`");
    }
    if (!out.params.emplace(key, token.substr(eq + 1)).second) {
      return malformed("attack spec: duplicate key `" + key + "` in `" +
                       spec + "`");
    }
  }
  return {};
}

/// Typed parameter extraction over the raw map; each take_* consumes its
/// key so leftovers can be rejected as unknown.
class Params {
 public:
  explicit Params(std::map<std::string, std::string> params)
      : params_(std::move(params)) {}

  /// Finite-number extraction; std::stod would happily parse "inf"/"nan",
  /// which every attack constructor rejects, so the checker rejects them
  /// here to stay in lockstep with the builders.
  bool take_number(const std::string& key, double& out, SpecCheck& check) {
    const auto it = params_.find(key);
    if (it == params_.end()) return true;
    try {
      std::size_t consumed = 0;
      const double v = std::stod(it->second, &consumed);
      if (consumed != it->second.size() || !std::isfinite(v)) {
        throw std::invalid_argument("junk");
      }
      out = v;
    } catch (const std::exception&) {
      check = malformed("attack spec: bad value for `" + key + "`: `" +
                        it->second + "`");
      return false;
    }
    params_.erase(it);
    return true;
  }

  bool take_count(const std::string& key, std::size_t& out,
                  SpecCheck& check) {
    std::string raw;
    if (!take_raw(key, raw)) return true;  // key absent: keep the default
    try {
      std::size_t consumed = 0;
      const unsigned long long v = std::stoull(raw, &consumed);
      // stoull accepts a leading '-' by wrapping; reject it explicitly.
      if (consumed != raw.size() || v == 0 || raw.front() == '-') {
        throw std::invalid_argument("not a positive integer");
      }
      out = static_cast<std::size_t>(v);
    } catch (const std::exception&) {
      check = malformed("attack spec: `" + key +
                        "` must be a positive integer, got `" + raw + "`");
      return false;
    }
    return true;
  }

  /// Non-negative integer with an inclusive upper bound (replay delays).
  bool take_bounded_int(const std::string& key, std::uint64_t max,
                        std::int64_t& out, SpecCheck& check) {
    std::string raw;
    if (!take_raw(key, raw)) return true;
    try {
      std::size_t consumed = 0;
      const unsigned long long v = std::stoull(raw, &consumed);
      if (consumed != raw.size() || raw.front() == '-' || v > max) {
        throw std::invalid_argument("out of range");
      }
      out = static_cast<std::int64_t>(v);
    } catch (const std::exception&) {
      check = malformed("attack spec: `" + key + "` must be an integer in [0, " +
                        std::to_string(max) + "], got `" + raw + "`");
      return false;
    }
    return true;
  }

  bool take_switch(const std::string& key, bool& out, SpecCheck& check) {
    std::string raw;
    if (!take_raw(key, raw)) return true;
    if (raw == "on") {
      out = true;
    } else if (raw == "off") {
      out = false;
    } else {
      check = malformed("attack spec: `" + key + "` must be on or off, got `" +
                        raw + "`");
      return false;
    }
    return true;
  }

  bool take_raw(const std::string& key, std::string& out) {
    const auto it = params_.find(key);
    if (it == params_.end()) return false;
    out = it->second;
    params_.erase(it);
    return true;
  }

  bool reject_leftovers(const std::string& kind, SpecCheck& check) const {
    if (params_.empty()) return true;
    check = malformed("attack spec: unknown key `" + params_.begin()->first +
                      "` for `" + kind + "`");
    return false;
  }

 private:
  std::map<std::string, std::string> params_;
};

bool take_positive(Params& params, const std::string& key, double& out,
                   SpecCheck& check) {
  if (!params.take_number(key, out, check)) return false;
  if (!(out > 0.0)) {
    check = malformed("attack spec: `" + key + "` must be > 0");
    return false;
  }
  return true;
}

bool take_non_negative(Params& params, const std::string& key, double& out,
                       SpecCheck& check) {
  if (!params.take_number(key, out, check)) return false;
  if (out < 0.0) {
    check = malformed("attack spec: `" + key + "` must be >= 0");
    return false;
  }
  return true;
}

BuildResult build_dos(Params params,
                      const radar::JammerParameters& jammer_defaults,
                      bool want_attack) {
  BuildResult result;
  radar::JammerParameters jammer = jammer_defaults;
  double power = jammer.peak_power_w;
  double gain = jammer.antenna_gain_dbi.value();
  double bw = jammer.bandwidth_hz.value();
  if (!take_positive(params, "power", power, result.check) ||
      !params.take_number("gain", gain, result.check) ||
      !take_positive(params, "bw", bw, result.check) ||
      !params.reject_leftovers("dos", result.check)) {
    return result;
  }
  jammer.peak_power_w = power;
  jammer.antenna_gain_dbi = units::Decibels{gain};
  jammer.bandwidth_hz = units::Hertz{bw};
  if (want_attack) result.attack = std::make_shared<DosJammerAttack>(jammer);
  return result;
}

BuildResult build_delay(Params params, bool want_attack) {
  BuildResult result;
  DelayInjectionConfig config;
  double delay_ns = config.extra_delay_s.value() * 1.0e9;
  if (!take_positive(params, "delay_ns", delay_ns, result.check) ||
      !take_positive(params, "advantage", config.power_advantage,
                     result.check) ||
      !params.take_switch("evade", config.evades_challenges, result.check) ||
      !params.reject_leftovers("delay", result.check)) {
    return result;
  }
  config.extra_delay_s = units::Seconds{delay_ns * 1.0e-9};
  if (want_attack) {
    result.attack = std::make_shared<DelayInjectionAttack>(config);
  }
  return result;
}

BuildResult build_spoof(Params params, bool want_attack) {
  BuildResult result;
  PhaseCoherentSpoofConfig config;
  double dr = config.range_offset_m.value();
  double df = config.doppler_shift_hz.value();
  if (!params.take_number("dr", dr, result.check) ||
      !params.take_number("df", df, result.check) ||
      !take_positive(params, "coherence", config.coherence, result.check) ||
      !take_positive(params, "gain", config.power_advantage, result.check) ||
      !params.reject_leftovers("spoof", result.check)) {
    return result;
  }
  if (config.coherence > 1.0) {
    result.check = malformed("attack spec: `coherence` must be in (0, 1]");
    return result;
  }
  config.range_offset_m = units::Meters{dr};
  config.doppler_shift_hz = units::Hertz{df};
  if (want_attack) {
    result.attack = std::make_shared<PhaseCoherentSpoofAttack>(config);
  }
  return result;
}

BuildResult build_chirp(Params params, bool want_attack) {
  BuildResult result;
  ChirpModificationConfig config;
  double offset = config.ghost_offset_m.value();
  if (!take_positive(params, "slope", config.slope_ratio, result.check) ||
      !params.take_number("offset", offset, result.check) ||
      !take_positive(params, "gain", config.power_advantage, result.check) ||
      !params.reject_leftovers("chirp", result.check)) {
    return result;
  }
  config.ghost_offset_m = units::Meters{offset};
  if (want_attack) {
    result.attack = std::make_shared<ChirpModificationAttack>(config);
  }
  return result;
}

BuildResult build_entrain(Params params, std::uint64_t seed,
                          bool want_attack) {
  BuildResult result;
  ChirpEntrainmentConfig config;
  config.seed = seed;
  double jitter = config.timing_jitter_m.value();
  double ferr = config.freq_error_hz.value();
  double dr = config.range_offset_m.value();
  if (!params.take_count("acquire", config.acquire_slots, result.check) ||
      !take_non_negative(params, "jitter", jitter, result.check) ||
      !params.take_number("ferr", ferr, result.check) ||
      !params.take_number("dr", dr, result.check) ||
      !take_positive(params, "gain", config.power_advantage, result.check) ||
      !params.take_bounded_int("replay", 64, config.replay_delay_slots,
                               result.check) ||
      !take_non_negative(params, "leak", config.leak_noise_factor,
                         result.check) ||
      !params.reject_leftovers("entrain", result.check)) {
    return result;
  }
  config.timing_jitter_m = units::Meters{jitter};
  config.freq_error_hz = units::Hertz{ferr};
  config.range_offset_m = units::Meters{dr};
  if (want_attack) {
    result.attack = std::make_shared<ChirpEntrainmentAttack>(config);
  }
  return result;
}

BuildResult build(const std::string& spec,
                  const radar::JammerParameters& jammer_defaults,
                  std::uint64_t seed, bool want_attack) {
  BuildResult result;
  if (spec.empty() || spec == "none") return result;  // no attack

  ParsedSpec parsed;
  result.check = parse_grammar(spec, parsed);
  if (result.check.status != SpecStatus::kOk) return result;

  Params params(std::move(parsed.params));
  if (parsed.kind == "none") {
    // "none" with parameters is a spec error, not a quiet no-op.
    if (!params.reject_leftovers("none", result.check)) return result;
    return result;
  }
  if (parsed.kind == "dos") {
    return build_dos(std::move(params), jammer_defaults, want_attack);
  }
  if (parsed.kind == "delay") {
    return build_delay(std::move(params), want_attack);
  }
  if (parsed.kind == "spoof") {
    return build_spoof(std::move(params), want_attack);
  }
  if (parsed.kind == "chirp") {
    return build_chirp(std::move(params), want_attack);
  }
  if (parsed.kind == "entrain") {
    return build_entrain(std::move(params), seed, want_attack);
  }
  result.check = unknown_kind(parsed.kind);
  return result;
}

}  // namespace

SpecCheck check_attack_spec(const std::string& spec) {
  return build(spec, radar::JammerParameters{}, 0, /*want_attack=*/false)
      .check;
}

std::shared_ptr<AttackModel> make_attack(
    const std::string& spec, const radar::JammerParameters& jammer_defaults,
    std::uint64_t seed) {
  BuildResult result = build(spec, jammer_defaults, seed, /*want_attack=*/true);
  if (result.check.status != SpecStatus::kOk) {
    throw std::invalid_argument(result.check.message);
  }
  return std::move(result.attack);
}

bool attack_spec_enabled(const std::string& spec) {
  return !spec.empty() && spec != "none";
}

std::string attack_spec_help() {
  return "attack spec: <kind>[:<k=v,...>] with kinds "
         "dos(power,gain,bw) "
         "delay(delay_ns,advantage,evade) "
         "spoof(dr,df,coherence,gain) "
         "chirp(slope,offset,gain) "
         "entrain(acquire,jitter,ferr,dr,gain,replay,leak); empty or `none` "
         "= no attack";
}

}  // namespace safe::attack
