#include "attack/spoofers.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/seed.hpp"  // header-only: no attack -> runtime link dep

namespace safe::attack {

namespace units = safe::units;

namespace {

/// Doppler shift -> range-rate offset (v = f_D * lambda / 2).
units::MetersPerSecond doppler_to_range_rate(
    const radar::FmcwParameters& waveform, units::Hertz shift) {
  return units::MetersPerSecond{0.5 * waveform.wavelength_m.value() *
                                shift.value()};
}

const radar::FmcwParameters& require_waveform(const AttackContext& context,
                                              const char* who) {
  if (context.waveform == nullptr) {
    throw std::invalid_argument(std::string(who) +
                                ": context missing waveform");
  }
  return *context.waveform;
}

}  // namespace

// --- PhaseCoherentSpoofAttack ----------------------------------------------

PhaseCoherentSpoofAttack::PhaseCoherentSpoofAttack(
    PhaseCoherentSpoofConfig config)
    : config_(config) {
  if (!(config_.coherence > 0.0) || config_.coherence > 1.0) {
    throw std::invalid_argument(
        "PhaseCoherentSpoofAttack: coherence must be in (0, 1]");
  }
  if (config_.power_advantage <= 0.0) {
    throw std::invalid_argument(
        "PhaseCoherentSpoofAttack: power advantage must be positive");
  }
  if (config_.min_power_w < 0.0) {
    throw std::invalid_argument(
        "PhaseCoherentSpoofAttack: min power must be non-negative");
  }
  if (!std::isfinite(config_.range_offset_m.value()) ||
      !std::isfinite(config_.doppler_shift_hz.value())) {
    throw std::invalid_argument(
        "PhaseCoherentSpoofAttack: offsets must be finite");
  }
}

bool PhaseCoherentSpoofAttack::apply(const AttackContext& context,
                                     radar::EchoScene& scene) {
  const radar::FmcwParameters& wf = require_waveform(context, "spoof");
  if (context.true_distance_m <= units::Meters{0.0}) return false;

  // The replay pipeline has latency, so the counterfeit keeps radiating in
  // challenge slots where the probe was suppressed — which is what CRA sees.
  const double power =
      std::max(context.true_echo_power_w * config_.power_advantage,
               config_.min_power_w);
  if (config_.replaces_true_echo) scene.echoes.clear();
  scene.echoes.push_back(radar::EchoComponent{
      .distance_m = context.true_distance_m + config_.range_offset_m,
      .range_rate_mps = context.true_range_rate_mps +
                        doppler_to_range_rate(wf, config_.doppler_shift_hz),
      .power_w = config_.coherence * power,
  });
  // Phase-incoherent remainder of the replay smears into the noise floor.
  scene.noise_power_w += (1.0 - config_.coherence) * power;
  return true;
}

// --- ChirpModificationAttack -----------------------------------------------

ChirpModificationAttack::ChirpModificationAttack(ChirpModificationConfig config)
    : config_(config) {
  if (!(config_.slope_ratio > 0.0) || !std::isfinite(config_.slope_ratio)) {
    throw std::invalid_argument(
        "ChirpModificationAttack: slope ratio must be positive and finite");
  }
  if (config_.power_advantage <= 0.0) {
    throw std::invalid_argument(
        "ChirpModificationAttack: power advantage must be positive");
  }
  if (config_.min_power_w < 0.0) {
    throw std::invalid_argument(
        "ChirpModificationAttack: min power must be non-negative");
  }
  if (!std::isfinite(config_.ghost_offset_m.value())) {
    throw std::invalid_argument(
        "ChirpModificationAttack: ghost offset must be finite");
  }
}

double ChirpModificationAttack::coherent_fraction(
    const radar::FmcwParameters& waveform) const {
  // A slope-mismatched chirp dechirps to a residual sweep covering
  // |1 - r| * B_s over the half-sweep T_s / 2: its energy spreads across
  // that many time-bandwidth cells instead of one beat-frequency line.
  const double cells = std::abs(1.0 - config_.slope_ratio) *
                       waveform.sweep_bandwidth_hz.value() *
                       (0.5 * waveform.sweep_time_s.value());
  return 1.0 / (1.0 + cells);
}

bool ChirpModificationAttack::apply(const AttackContext& context,
                                    radar::EchoScene& scene) {
  const radar::FmcwParameters& wf = require_waveform(context, "chirp");
  if (context.true_distance_m <= units::Meters{0.0}) return false;

  // A rogue radar runs its own sweep generator: it radiates on its own
  // schedule, challenge slot or not, and never masks the genuine echo.
  const double power =
      std::max(context.true_echo_power_w * config_.power_advantage,
               config_.min_power_w);
  const double coherent = coherent_fraction(wf);
  if (coherent * power > 0.0) {
    scene.echoes.push_back(radar::EchoComponent{
        .distance_m = context.true_distance_m + config_.ghost_offset_m,
        .range_rate_mps = context.true_range_rate_mps,
        .power_w = coherent * power,
    });
  }
  scene.noise_power_w += (1.0 - coherent) * power;
  return true;
}

// --- ChirpEntrainmentAttack ------------------------------------------------

ChirpEntrainmentAttack::ChirpEntrainmentAttack(ChirpEntrainmentConfig config)
    : config_(config) {
  if (config_.acquire_slots == 0) {
    throw std::invalid_argument(
        "ChirpEntrainmentAttack: acquisition needs at least one slot");
  }
  if (config_.timing_jitter_m < units::Meters{0.0} ||
      !std::isfinite(config_.timing_jitter_m.value())) {
    throw std::invalid_argument(
        "ChirpEntrainmentAttack: timing jitter must be non-negative");
  }
  if (!std::isfinite(config_.freq_error_hz.value()) ||
      !std::isfinite(config_.range_offset_m.value())) {
    throw std::invalid_argument(
        "ChirpEntrainmentAttack: entrainment errors must be finite");
  }
  if (config_.power_advantage <= 0.0) {
    throw std::invalid_argument(
        "ChirpEntrainmentAttack: power advantage must be positive");
  }
  if (config_.min_power_w < 0.0) {
    throw std::invalid_argument(
        "ChirpEntrainmentAttack: min power must be non-negative");
  }
  if (config_.leak_noise_factor < 0.0 ||
      !std::isfinite(config_.leak_noise_factor)) {
    throw std::invalid_argument(
        "ChirpEntrainmentAttack: leak factor must be non-negative");
  }
}

void ChirpEntrainmentAttack::reset() {
  locked_ = false;
  observed_probes_ = 0;
  history_.clear();
}

bool ChirpEntrainmentAttack::heard_probe_at(std::int64_t step) const {
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if (it->first == step) return it->second;
    if (it->first < step) break;  // observations are step-ascending
  }
  return false;  // predates the listening window: nothing recorded to replay
}

bool ChirpEntrainmentAttack::apply(const AttackContext& context,
                                   radar::EchoScene& scene) {
  const radar::FmcwParameters& wf = require_waveform(context, "entrain");
  const bool probe_on = scene.tx_enabled;

  // Record this epoch's observation first: a k=0 replay echoes the probe it
  // hears right now.
  history_.emplace_back(context.step, probe_on);
  const std::size_t keep =
      config_.replay_delay_slots > 0
          ? static_cast<std::size_t>(config_.replay_delay_slots) + 1
          : 1;
  while (history_.size() > keep) history_.pop_front();

  if (!locked_) {
    // Acquisition: the attacker can only sync to sweeps it hears. It stays
    // fully passive (and invisible to every detector) until lock-on.
    if (probe_on) ++observed_probes_;
    if (observed_probes_ >= config_.acquire_slots) locked_ = true;
    return false;
  }
  if (context.true_distance_m <= units::Meters{0.0}) return false;

  bool modified = false;
  // Carrier/LO leakage of the active transmitter: present whenever locked,
  // even in slots where the replay logic keeps the chirp silent. This is
  // the footprint the rx-power check can still catch.
  if (config_.leak_noise_factor > 0.0) {
    scene.noise_power_w += config_.leak_noise_factor * scene.noise_power_w;
    modified = true;
  }

  const bool transmit =
      config_.replay_delay_slots < 0
          ? true
          : heard_probe_at(context.step - config_.replay_delay_slots);
  if (transmit) {
    units::Meters jitter{0.0};
    if (config_.timing_jitter_m > units::Meters{0.0}) {
      // Counter-based draw keyed on (seed, step): bit-reproducible no
      // matter how many runs or clones consumed the model before.
      runtime::SplitMix64 rng(runtime::derive_seed(
          config_.seed, runtime::SeedStream::kAttack,
          static_cast<std::uint64_t>(context.step)));
      jitter = units::Meters{(2.0 * runtime::uniform_double(rng) - 1.0) *
                             config_.timing_jitter_m.value()};
    }
    scene.echoes.clear();  // capture: the counterfeit masks the real echo
    scene.echoes.push_back(radar::EchoComponent{
        .distance_m =
            context.true_distance_m + config_.range_offset_m + jitter,
        .range_rate_mps = context.true_range_rate_mps +
                          doppler_to_range_rate(wf, config_.freq_error_hz),
        .power_w =
            std::max(context.true_echo_power_w * config_.power_advantage,
                     config_.min_power_w),
    });
    modified = true;
  }
  return modified;
}

}  // namespace safe::attack
