// Time-windowed attack scheduling.
#pragma once

#include <memory>
#include <stdexcept>
#include <utility>

#include "attack/attack.hpp"

namespace safe::attack {

/// Half-open activity interval [start_s, end_s).
struct AttackWindow {
  units::Seconds start_s{0.0};
  units::Seconds end_s{0.0};

  [[nodiscard]] bool contains(units::Seconds time) const {
    return time >= start_s && time < end_s;
  }
  [[nodiscard]] units::Seconds duration() const { return end_s - start_s; }
};

/// Applies an inner attack only while inside its window — the paper's
/// "attack over a finite interval [k1, kn], k1 != 0" formulation.
class ScheduledAttack final : public AttackModel {
 public:
  ScheduledAttack(std::shared_ptr<AttackModel> inner, AttackWindow window)
      : inner_(std::move(inner)), window_(window) {
    if (!inner_) {
      throw std::invalid_argument("ScheduledAttack: null inner attack");
    }
    if (!(window_.end_s > window_.start_s)) {
      throw std::invalid_argument("ScheduledAttack: empty window");
    }
  }

  bool apply(const AttackContext& context, radar::EchoScene& scene) override {
    if (!window_.contains(context.time_s)) return false;
    return inner_->apply(context, scene);
  }

  [[nodiscard]] std::unique_ptr<AttackModel> clone() const override {
    return std::make_unique<ScheduledAttack>(inner_->clone(), window_);
  }

  void reset() override { inner_->reset(); }

  [[nodiscard]] std::string name() const override {
    return inner_->name() + "@[" + std::to_string(window_.start_s.value()) +
           "," + std::to_string(window_.end_s.value()) + ")";
  }

  [[nodiscard]] const AttackWindow& window() const { return window_; }
  [[nodiscard]] const AttackModel& inner() const { return *inner_; }

 private:
  std::shared_ptr<AttackModel> inner_;
  AttackWindow window_;
};

}  // namespace safe::attack
