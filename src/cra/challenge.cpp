#include "cra/challenge.hpp"

#include <stdexcept>

namespace safe::cra {

std::vector<std::int64_t> ChallengeSchedule::challenge_steps(
    std::int64_t horizon) const {
  std::vector<std::int64_t> steps;
  for (std::int64_t k = 0; k < horizon; ++k) {
    if (is_challenge(k)) steps.push_back(k);
  }
  return steps;
}

FixedChallengeSchedule::FixedChallengeSchedule(std::vector<std::int64_t> steps)
    : steps_(steps.begin(), steps.end()) {
  for (const std::int64_t s : steps_) {
    if (s < 0) {
      throw std::invalid_argument(
          "FixedChallengeSchedule: steps must be non-negative");
    }
  }
}

bool FixedChallengeSchedule::is_challenge(std::int64_t step) const {
  return steps_.contains(step);
}

PrbsChallengeSchedule::PrbsChallengeSchedule(std::uint16_t key,
                                             std::uint32_t numer,
                                             std::uint32_t denom,
                                             std::int64_t horizon) {
  if (horizon <= 0) {
    throw std::invalid_argument("PrbsChallengeSchedule: horizon must be > 0");
  }
  dsp::Prbs prbs(key);
  slots_.reserve(static_cast<std::size_t>(horizon));
  for (std::int64_t k = 0; k < horizon; ++k) {
    slots_.push_back(prbs.bernoulli(numer, denom));
  }
}

bool PrbsChallengeSchedule::is_challenge(std::int64_t step) const {
  if (step < 0 || static_cast<std::size_t>(step) >= slots_.size()) {
    return false;
  }
  return slots_[static_cast<std::size_t>(step)];
}

double PrbsChallengeSchedule::challenge_rate() const {
  if (slots_.empty()) return 0.0;
  std::size_t count = 0;
  for (const bool b : slots_) count += b ? 1u : 0u;
  return static_cast<double>(count) / static_cast<double>(slots_.size());
}

FixedChallengeSchedule paper_challenge_schedule(std::int64_t horizon,
                                                std::int64_t tail_period) {
  if (tail_period <= 0) {
    throw std::invalid_argument(
        "paper_challenge_schedule: tail period must be > 0");
  }
  std::vector<std::int64_t> steps{15, 50, 175};
  for (std::int64_t k = 182; k < horizon; k += tail_period) {
    steps.push_back(k);
  }
  return FixedChallengeSchedule(std::move(steps));
}

}  // namespace safe::cra
