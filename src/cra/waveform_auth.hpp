// Signal-level challenge-response authentication (Section 5.2, literal
// form): the probe waveform itself is gated per sample, p'(t) = m(t) p(t),
// by a keyed PRBS, and the detector checks that suppressed sub-slots of the
// *received* baseband are silent.
//
// This is finer-grained than the epoch-level CRA in cra/detector.hpp: a
// replay attacker with reaction latency L samples keeps radiating for L
// samples into every suppressed sub-slot, so detection probability is
// governed by the attacker's sampling speed — which makes the paper's
// Section 7 limitation ("detection fails when an adversary can sample
// faster than the defender") directly measurable.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/prbs.hpp"

namespace safe::cra {

struct WaveformAuthOptions {
  /// Samples per modulation chip (one m(t) value spans this many samples).
  std::size_t chip_length = 16;
  /// Probability (numer/denom) that a chip is suppressed.
  std::uint32_t suppress_numer = 1;
  std::uint32_t suppress_denom = 4;
  /// Energy ratio (suppressed-slot power / noise floor) above which a
  /// suppressed chip counts as violated.
  double violation_factor = 6.0;
  /// Fraction of suppressed chips that must be violated to declare attack
  /// (robustness against single-chip noise flukes).
  double violated_chip_fraction = 0.25;
};

/// Per-epoch modulation pattern m(t), one flag per sample (true = radiate).
class WaveformModulator {
 public:
  WaveformModulator(std::uint16_t key, const WaveformAuthOptions& options);

  /// Generates the modulation mask for the next epoch of `num_samples`.
  /// Consecutive calls advance the keyed PRBS, so masks never repeat.
  std::vector<bool> next_mask(std::size_t num_samples);

  [[nodiscard]] const WaveformAuthOptions& options() const { return options_; }

 private:
  WaveformAuthOptions options_;
  dsp::Prbs prbs_;
};

/// Applies a mask to a transmitted baseband segment: suppressed samples are
/// zeroed (the probe does not radiate there).
void apply_mask(dsp::ComplexSignal& signal, const std::vector<bool>& mask);

/// Simulates what the receiver sees when a replay attacker with
/// `attacker_latency_samples` of reaction time replays the (masked) probe:
/// the attacker's transmission follows the true mask, delayed by the
/// latency, so energy leaks into the first `latency` samples of every
/// suppressed run.
dsp::ComplexSignal replay_with_latency(const dsp::ComplexSignal& clean_echo,
                                       const std::vector<bool>& mask,
                                       std::size_t attacker_latency_samples);

/// Verdict of the per-chip energy check.
struct WaveformAuthResult {
  std::size_t suppressed_chips = 0;
  std::size_t violated_chips = 0;
  bool attack_detected = false;
};

/// Checks the received segment against the mask: measures mean power inside
/// each fully suppressed chip and flags chips whose power exceeds
/// violation_factor * noise_floor.
WaveformAuthResult verify_epoch(const dsp::ComplexSignal& received,
                                const std::vector<bool>& mask,
                                double noise_floor_w,
                                const WaveformAuthOptions& options);

}  // namespace safe::cra
