// Challenge-response attack detector (Algorithm 2, lines 7-9).
//
// At every challenge slot the detector compares the receiver's output with
// the expected silence: a non-zero output means an attacker (jammer or
// replayer) is radiating. Attack *clearance* is the dual check: once under
// attack, a challenge slot that comes back silent means the attacker has
// stopped, ending the estimation holdover.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace safe::cra {

/// Detector verdict for one step.
struct DetectionDecision {
  bool challenge_slot = false;   ///< Step was a probe-suppressed slot.
  bool under_attack = false;     ///< Detector state after this step.
  bool attack_started = false;   ///< This step transitioned clean -> attack.
  bool attack_cleared = false;   ///< This step transitioned attack -> clean.
};

/// Cumulative detector statistics (ground truth supplied by the caller).
struct DetectionStats {
  std::size_t challenges = 0;
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t true_negatives = 0;
  std::size_t false_negatives = 0;
};

struct DetectorOptions {
  /// Consecutive silent challenges required before an attack is declared
  /// over. The paper clears on the first silent challenge (M = 1); a jammer
  /// that flaps between radiating and silent then bounces the pipeline
  /// between measured and estimated inputs every challenge. M >= 2 debounces
  /// that oscillation at the cost of M-1 extra holdover challenges.
  std::size_t clear_after_silent_challenges = 1;
};

class ChallengeResponseDetector {
 public:
  ChallengeResponseDetector() = default;
  explicit ChallengeResponseDetector(const DetectorOptions& options);

  /// Processes the receiver output of step k. `challenge_slot` says whether
  /// the probe was suppressed; `receiver_nonzero` is Val(y') != 0 from the
  /// radar (coherent echo or power alarm).
  DetectionDecision observe(std::int64_t step, bool challenge_slot,
                            bool receiver_nonzero);

  /// Same as observe, additionally scoring against ground truth for FP/FN
  /// accounting (only challenge slots are scored; the detector makes no
  /// claims elsewhere).
  DetectionDecision observe_scored(std::int64_t step, bool challenge_slot,
                                   bool receiver_nonzero,
                                   bool attack_actually_active);

  [[nodiscard]] bool under_attack() const { return under_attack_; }

  /// Step at which the current (or last) attack was first detected.
  [[nodiscard]] std::optional<std::int64_t> detection_step() const {
    return detection_step_;
  }

  [[nodiscard]] const DetectionStats& stats() const { return stats_; }

  /// Silent challenges seen in a row while under attack (debounce progress).
  [[nodiscard]] std::size_t consecutive_silent_challenges() const {
    return consecutive_silent_;
  }

  void reset();

 private:
  DetectorOptions options_;
  bool under_attack_ = false;
  std::size_t consecutive_silent_ = 0;
  std::optional<std::int64_t> detection_step_;
  DetectionStats stats_;
};

}  // namespace safe::cra
