// Challenge schedules for challenge-response authentication (Section 5.2).
//
// A schedule decides at which discrete sample instants k the probe signal is
// suppressed (m(t) = 0 for t in T_c). The paper uses pseudo-random times
// (k = 15, 50, 175, ... in the case study); we provide both that fixed list
// and a PRBS-driven Bernoulli schedule.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dsp/prbs.hpp"

namespace safe::cra {

/// Decides which discrete steps are challenge (probe-suppressed) slots.
class ChallengeSchedule {
 public:
  virtual ~ChallengeSchedule() = default;

  /// True when step k is a challenge slot (t in T_c).
  [[nodiscard]] virtual bool is_challenge(std::int64_t step) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// All challenge steps within [0, horizon).
  [[nodiscard]] std::vector<std::int64_t> challenge_steps(
      std::int64_t horizon) const;
};

/// Explicit list of challenge steps — the paper's {15, 50, 175, ...}.
class FixedChallengeSchedule final : public ChallengeSchedule {
 public:
  explicit FixedChallengeSchedule(std::vector<std::int64_t> steps);

  [[nodiscard]] bool is_challenge(std::int64_t step) const override;
  [[nodiscard]] std::string name() const override { return "fixed"; }

 private:
  std::set<std::int64_t> steps_;
};

/// PRBS-driven Bernoulli schedule: each step is a challenge with probability
/// numer/denom, decided by a keyed LFSR stream the attacker cannot predict.
class PrbsChallengeSchedule final : public ChallengeSchedule {
 public:
  PrbsChallengeSchedule(std::uint16_t key, std::uint32_t numer,
                        std::uint32_t denom, std::int64_t horizon);

  [[nodiscard]] bool is_challenge(std::int64_t step) const override;
  [[nodiscard]] std::string name() const override { return "prbs"; }

  [[nodiscard]] double challenge_rate() const;

 private:
  std::vector<bool> slots_;  // precomputed over [0, horizon)
};

/// Paper case-study schedule: challenges at k = 15, 50, 175 (the instants
/// visible as zero-spikes in Figures 2-3) plus a tail at k = 182, 182 +
/// tail_period, ... so the attacks starting at k = 180-182 are caught at
/// k = 182 exactly as the paper reports.
FixedChallengeSchedule paper_challenge_schedule(std::int64_t horizon,
                                                std::int64_t tail_period = 7);

}  // namespace safe::cra
