#include "cra/waveform_auth.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace safe::cra {

WaveformModulator::WaveformModulator(std::uint16_t key,
                                     const WaveformAuthOptions& options)
    : options_(options), prbs_(key) {
  if (options_.chip_length == 0) {
    throw std::invalid_argument("WaveformModulator: chip length must be >= 1");
  }
  if (options_.suppress_denom == 0 ||
      options_.suppress_numer > options_.suppress_denom) {
    throw std::invalid_argument("WaveformModulator: bad suppression ratio");
  }
  if (options_.violation_factor <= 1.0) {
    throw std::invalid_argument(
        "WaveformModulator: violation factor must exceed 1");
  }
  if (options_.violated_chip_fraction <= 0.0 ||
      options_.violated_chip_fraction > 1.0) {
    throw std::invalid_argument(
        "WaveformModulator: violated fraction must be in (0, 1]");
  }
}

std::vector<bool> WaveformModulator::next_mask(std::size_t num_samples) {
  std::vector<bool> mask(num_samples, true);
  for (std::size_t start = 0; start < num_samples;
       start += options_.chip_length) {
    const bool suppress =
        prbs_.bernoulli(options_.suppress_numer, options_.suppress_denom);
    if (suppress) {
      const std::size_t end =
          std::min(start + options_.chip_length, num_samples);
      for (std::size_t i = start; i < end; ++i) mask[i] = false;
    }
  }
  return mask;
}

void apply_mask(dsp::ComplexSignal& signal, const std::vector<bool>& mask) {
  if (signal.size() != mask.size()) {
    throw std::invalid_argument("apply_mask: length mismatch");
  }
  for (std::size_t i = 0; i < signal.size(); ++i) {
    if (!mask[i]) signal[i] = dsp::Complex{};
  }
}

dsp::ComplexSignal replay_with_latency(const dsp::ComplexSignal& clean_echo,
                                       const std::vector<bool>& mask,
                                       std::size_t attacker_latency_samples) {
  if (clean_echo.size() != mask.size()) {
    throw std::invalid_argument("replay_with_latency: length mismatch");
  }
  // The attacker observes the probe and keys its own transmitter from it,
  // but its decision about sample i is based on the probe state at
  // i - latency: during the first `latency` samples of a suppressed run it
  // is still transmitting, and during the first `latency` samples of a
  // radiating run it is still silent.
  dsp::ComplexSignal received(clean_echo.size());
  for (std::size_t i = 0; i < clean_echo.size(); ++i) {
    const std::size_t lagged =
        i >= attacker_latency_samples ? i - attacker_latency_samples : 0;
    const bool attacker_on =
        i < attacker_latency_samples ? mask.front() : mask[lagged];
    if (attacker_on) received[i] = clean_echo[i];
  }
  return received;
}

WaveformAuthResult verify_epoch(const dsp::ComplexSignal& received,
                                const std::vector<bool>& mask,
                                double noise_floor_w,
                                const WaveformAuthOptions& options) {
  if (received.size() != mask.size()) {
    throw std::invalid_argument("verify_epoch: length mismatch");
  }
  if (noise_floor_w <= 0.0) {
    throw std::invalid_argument("verify_epoch: noise floor must be > 0");
  }

  WaveformAuthResult result;
  for (std::size_t start = 0; start < mask.size();
       start += options.chip_length) {
    const std::size_t end = std::min(start + options.chip_length, mask.size());
    bool fully_suppressed = true;
    for (std::size_t i = start; i < end; ++i) {
      if (mask[i]) {
        fully_suppressed = false;
        break;
      }
    }
    if (!fully_suppressed) continue;

    ++result.suppressed_chips;
    double power = 0.0;
    for (std::size_t i = start; i < end; ++i) power += std::norm(received[i]);
    power /= static_cast<double>(end - start);
    if (power > options.violation_factor * noise_floor_w) {
      ++result.violated_chips;
    }
  }

  result.attack_detected =
      result.suppressed_chips > 0 &&
      static_cast<double>(result.violated_chips) >=
          options.violated_chip_fraction *
              static_cast<double>(result.suppressed_chips);
  return result;
}

}  // namespace safe::cra
