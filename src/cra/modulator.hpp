// Probe modulator: p'(t) = m(t) p(t) (Section 5.2).
//
// The modulator is the only hardware change CRA requires: the radar's
// modulation unit gains a binary gate driven by the challenge schedule. When
// m(k) = 0 the probe is suppressed and a trusted environment must return
// silence at the corresponding sample instant.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>

#include "cra/challenge.hpp"

namespace safe::cra {

class ProbeModulator {
 public:
  explicit ProbeModulator(std::shared_ptr<const ChallengeSchedule> schedule)
      : schedule_(std::move(schedule)) {
    if (!schedule_) {
      throw std::invalid_argument("ProbeModulator: null schedule");
    }
  }

  /// m(k): 0 in challenge slots, 1 otherwise.
  [[nodiscard]] int modulation(std::int64_t step) const {
    return schedule_->is_challenge(step) ? 0 : 1;
  }

  /// Whether the transmitter radiates at step k (m(k) == 1).
  [[nodiscard]] bool tx_enabled(std::int64_t step) const {
    return modulation(step) == 1;
  }

  [[nodiscard]] const ChallengeSchedule& schedule() const { return *schedule_; }

 private:
  std::shared_ptr<const ChallengeSchedule> schedule_;
};

}  // namespace safe::cra
