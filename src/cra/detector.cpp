#include "cra/detector.hpp"

#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace safe::cra {

namespace {

// Challenge-response detection metrics: headline quantities of the paper
// (detection events, per-challenge scoring). All jobs-invariant.
struct DetectorMetrics {
  telemetry::MetricId challenges = telemetry::counter("cra.challenges");
  telemetry::MetricId detections = telemetry::counter("cra.detections");
  telemetry::MetricId clears = telemetry::counter("cra.clears");
  telemetry::MetricId false_positives =
      telemetry::counter("cra.false_positives");
  telemetry::MetricId false_negatives =
      telemetry::counter("cra.false_negatives");
};

const DetectorMetrics& detector_metrics() {
  static const DetectorMetrics m;
  return m;
}

}  // namespace

ChallengeResponseDetector::ChallengeResponseDetector(
    const DetectorOptions& options)
    : options_(options) {
  if (options_.clear_after_silent_challenges == 0) {
    throw std::invalid_argument(
        "ChallengeResponseDetector: clear_after_silent_challenges must be "
        ">= 1");
  }
}

DetectionDecision ChallengeResponseDetector::observe(std::int64_t step,
                                                     bool challenge_slot,
                                                     bool receiver_nonzero) {
  DetectionDecision decision;
  decision.challenge_slot = challenge_slot;

  if (challenge_slot) {
    if (!under_attack_ && receiver_nonzero) {
      under_attack_ = true;
      consecutive_silent_ = 0;
      detection_step_ = step;
      decision.attack_started = true;
      telemetry::add(detector_metrics().detections);
      telemetry::instant_event(
          "cra.attack_detected", "cra",
          telemetry::TraceArgs{}.integer("step", step).take());
    } else if (under_attack_) {
      if (receiver_nonzero) {
        // Still radiating: any clearance progress resets (flap debounce).
        consecutive_silent_ = 0;
      } else if (++consecutive_silent_ >=
                 options_.clear_after_silent_challenges) {
        under_attack_ = false;
        consecutive_silent_ = 0;
        decision.attack_cleared = true;
        telemetry::add(detector_metrics().clears);
        telemetry::instant_event(
            "cra.attack_cleared", "cra",
            telemetry::TraceArgs{}.integer("step", step).take());
      }
    }
  }
  decision.under_attack = under_attack_;
  return decision;
}

DetectionDecision ChallengeResponseDetector::observe_scored(
    std::int64_t step, bool challenge_slot, bool receiver_nonzero,
    bool attack_actually_active) {
  const DetectionDecision decision =
      observe(step, challenge_slot, receiver_nonzero);
  if (challenge_slot) {
    ++stats_.challenges;
    telemetry::add(detector_metrics().challenges);
    // Score the raw per-challenge comparison: did "non-zero output" agree
    // with "attack active"? (The paper's no-FP/no-FN claim.)
    if (receiver_nonzero && attack_actually_active) {
      ++stats_.true_positives;
    } else if (receiver_nonzero && !attack_actually_active) {
      ++stats_.false_positives;
      telemetry::add(detector_metrics().false_positives);
    } else if (!receiver_nonzero && attack_actually_active) {
      ++stats_.false_negatives;
      telemetry::add(detector_metrics().false_negatives);
    } else {
      ++stats_.true_negatives;
    }
  }
  return decision;
}

void ChallengeResponseDetector::reset() {
  under_attack_ = false;
  consecutive_silent_ = 0;
  detection_step_.reset();
  stats_ = DetectionStats{};
}

}  // namespace safe::cra
