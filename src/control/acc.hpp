// Adaptive cruise control: hierarchical longitudinal controller (Section 6.1).
//
// Upper level (constant-time-headway policy, Eqs. 12-13, 16):
//   d_des(k)    = d_0 + tau_h * v_F(k)
//   v_des(k+1)  = v_F(k) + T / (tau_h K_1) * (dd(k) + T * dv(k))
//   a_des(k+1)  = (v_des(k+1) - v_des(k)) / T
// with clearance error dd = d - d_des and relative speed dv = v_L - v_F.
//
// Lower level (Eq. 14, first-order lag K_1 / (T_i s + 1) discretized):
//   a_F(k+1) = a_F(k) + T / T_i * (K_1 a_des(k) - a_F(k))
// split into throttle (a >= 0) and brake (a < 0) actuation.
#pragma once

#include <algorithm>

#include "units/units.hpp"

namespace safe::control {

using units::Meters;
using units::MetersPerSecond;
using units::MetersPerSecond2;
using units::Seconds;

struct AccParameters {
  Seconds headway_time_s{3.0};         ///< tau_h
  Meters min_gap_m{5.0};               ///< d_0 (minimum stopping distance)
  double system_gain = 1.0;            ///< K_1
  Seconds time_constant_s{1.008};      ///< T_i
  Seconds sample_time_s{1.0};          ///< T (k is in seconds in the paper)
  MetersPerSecond set_speed_mps{29.9517};  ///< v_set (67 mph)
  MetersPerSecond2 max_accel_mps2{2.5};    ///< Actuation limits for a_des.
  MetersPerSecond2 max_decel_mps2{5.0};
  /// Brake pressure per m/s^2 of commanded deceleration (actuator map).
  double brake_pressure_per_mps2 = 40.0;
  /// Deceleration commanded while the pipeline reports DEGRADED_SAFE_STOP:
  /// firm enough to shed speed quickly, gentle enough not to provoke
  /// rear-end collisions (~0.2 g).
  MetersPerSecond2 safe_stop_decel_mps2{2.0};
  /// When true, the controller never raises the desired speed above the
  /// current speed while `AccInputs::degraded_holdover` is set: holdover
  /// estimates can only prove the gap is shrinking, never that it is safe
  /// to speed up, and a free-run whose gap drifts open (or a dead sensor
  /// reporting "no target") must not talk the follower into accelerating
  /// at a leader it cannot see. Off by default (paper behaviour).
  bool hold_speed_on_degraded_holdover = false;
  /// Emergency-brake headway: when > 0 and the reported gap falls below
  /// d_0 + emergency_headway_s * v_F, the controller overrides the CTH law
  /// with maximum braking. The paper's upper level (Eq. 16) regulates the
  /// *derivative* of the desired speed, so after a disturbance it rides a
  /// clearance deficit instead of actively restoring it; the floor is the
  /// last-resort backstop for that regime. 0 disables (paper behaviour).
  Seconds emergency_headway_s{0.0};
};

/// Throws std::invalid_argument on non-physical parameters.
void validate_parameters(const AccParameters& params);

/// Desired inter-vehicle distance (Eq. 12).
Meters desired_distance(const AccParameters& params,
                        MetersPerSecond follower_speed);

enum class AccMode {
  kSpeedControl,    ///< No (close) target: track the set speed.
  kSpacingControl,  ///< Maintain the CTH gap to the preceding vehicle.
  kSafeStop,        ///< Degraded pipeline: conservative deceleration.
};

/// Sensor-facing inputs of the upper-level controller.
struct AccInputs {
  bool target_present = false;       ///< Radar sees a preceding vehicle.
  Meters distance_m{0.0};            ///< d (radar)
  MetersPerSecond relative_velocity_mps{0.0};  ///< dv = v_L - v_F (radar)
  MetersPerSecond follower_speed_mps{0.0};  ///< v_F (trusted wheel speed)
  /// The safe-measurement pipeline exhausted its holdover budget
  /// (DEGRADED_SAFE_STOP): ignore the stale radar channels and bleed speed
  /// at `safe_stop_decel_mps2` until the pipeline recovers or the vehicle
  /// stands still.
  bool degraded_safe_stop = false;
  /// The pipeline is holding over (estimates or dead sensor, no attack).
  /// Acted on only when `hold_speed_on_degraded_holdover` is enabled.
  bool degraded_holdover = false;
};

/// Upper-level outputs.
struct AccCommand {
  AccMode mode = AccMode::kSpeedControl;
  MetersPerSecond desired_speed_mps{0.0};   ///< v_des(k+1)
  MetersPerSecond2 desired_accel_mps2{0.0};  ///< a_des(k+1), clamped
  Meters desired_distance_m{0.0};   ///< d_des(k) for tracing
};

/// Stateful upper-level controller (remembers v_des for Eq. 16).
class UpperLevelController {
 public:
  explicit UpperLevelController(const AccParameters& params);

  AccCommand step(const AccInputs& inputs);

  void reset();

  [[nodiscard]] const AccParameters& parameters() const { return params_; }

 private:
  AccParameters params_;
  MetersPerSecond prev_desired_speed_{0.0};
  bool primed_ = false;
};

/// Lower-level actuation outputs.
struct ActuationState {
  MetersPerSecond2 actual_accel_mps2{0.0};
  MetersPerSecond2 pedal_accel_mps2{0.0};  ///< a_pedal (>= 0)
  double brake_pressure = 0.0;      ///< P_brake (>= 0, arbitrary units)
};

/// Stateful lower-level controller tracking a_des through the lag of Eq. 14.
class LowerLevelController {
 public:
  explicit LowerLevelController(const AccParameters& params);

  /// Advances one sample toward `desired_accel`; returns the actuated
  /// state (the follower plant consumes `actual_accel_mps2`).
  ActuationState step(MetersPerSecond2 desired_accel);

  void reset();

  [[nodiscard]] MetersPerSecond2 actual_accel() const {
    return state_.actual_accel_mps2;
  }

 private:
  AccParameters params_;
  ActuationState state_;
};

/// Convenience facade running upper + lower level in sequence.
class AccController {
 public:
  explicit AccController(const AccParameters& params = {});

  struct Output {
    AccCommand command;
    ActuationState actuation;
  };

  Output step(const AccInputs& inputs);

  void reset();

  [[nodiscard]] const AccParameters& parameters() const { return params_; }

 private:
  AccParameters params_;
  UpperLevelController upper_;
  LowerLevelController lower_;
};

}  // namespace safe::control
