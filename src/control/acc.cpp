#include "control/acc.hpp"

#include <stdexcept>

namespace safe::control {

void validate_parameters(const AccParameters& params) {
  if (params.headway_time_s <= Seconds{0.0} || params.min_gap_m < Meters{0.0}) {
    throw std::invalid_argument("AccParameters: bad headway/min gap");
  }
  if (params.system_gain <= 0.0 || params.time_constant_s <= Seconds{0.0}) {
    throw std::invalid_argument("AccParameters: bad gain/time constant");
  }
  if (params.sample_time_s <= Seconds{0.0}) {
    throw std::invalid_argument("AccParameters: bad sample time");
  }
  if (params.set_speed_mps < MetersPerSecond{0.0}) {
    throw std::invalid_argument("AccParameters: bad set speed");
  }
  if (params.max_accel_mps2 <= MetersPerSecond2{0.0} ||
      params.max_decel_mps2 <= MetersPerSecond2{0.0}) {
    throw std::invalid_argument("AccParameters: bad acceleration limits");
  }
  if (params.safe_stop_decel_mps2 <= MetersPerSecond2{0.0} ||
      params.safe_stop_decel_mps2 > params.max_decel_mps2) {
    throw std::invalid_argument("AccParameters: bad safe-stop deceleration");
  }
}

Meters desired_distance(const AccParameters& params,
                        MetersPerSecond follower_speed) {
  return params.min_gap_m + params.headway_time_s * follower_speed;
}

UpperLevelController::UpperLevelController(const AccParameters& params)
    : params_(params) {
  validate_parameters(params_);
}

AccCommand UpperLevelController::step(const AccInputs& inputs) {
  const double t = params_.sample_time_s.value();
  const double follower_speed = inputs.follower_speed_mps.value();
  AccCommand cmd;
  cmd.desired_distance_m =
      desired_distance(params_, inputs.follower_speed_mps);

  if (inputs.degraded_safe_stop) {
    // The radar channels are stale: disregard them entirely and ramp the
    // speed down at the conservative safe-stop rate.
    cmd.mode = AccMode::kSafeStop;
    const double v_des = std::max(
        follower_speed - params_.safe_stop_decel_mps2.value() * t, 0.0);
    cmd.desired_speed_mps = MetersPerSecond{v_des};
    // Command the ramp against the *current* speed, not the previous
    // desired speed: the Eq. 16 difference law degenerates to tracking the
    // follower's own acceleration (a no-op) once v_des locks to v_F - step.
    cmd.desired_accel_mps2 = MetersPerSecond2{std::clamp(
        (v_des - follower_speed) / t,
        -params_.safe_stop_decel_mps2.value(), 0.0)};
    prev_desired_speed_ = MetersPerSecond{v_des};
    primed_ = true;
    return cmd;
  }

  if (params_.emergency_headway_s > Seconds{0.0} && inputs.target_present &&
      inputs.distance_m < params_.min_gap_m + params_.emergency_headway_s *
                                                  inputs.follower_speed_mps) {
    // Imminent-collision floor: the CTH law has lost the gap; brake as hard
    // as the actuators allow until the clearance recovers.
    cmd.mode = AccMode::kSafeStop;
    cmd.desired_speed_mps = MetersPerSecond{0.0};
    cmd.desired_accel_mps2 = -params_.max_decel_mps2;
    prev_desired_speed_ = MetersPerSecond{std::max(
        follower_speed - params_.max_decel_mps2.value() * t, 0.0)};
    primed_ = true;
    return cmd;
  }

  // Spacing control engages when a target sits inside the CTH envelope
  // (with a small hysteresis margin so mode flapping does not excite the
  // lower-level lag).
  const bool spacing = inputs.target_present &&
                       inputs.distance_m < 1.2 * cmd.desired_distance_m;

  double v_des;
  if (spacing) {
    cmd.mode = AccMode::kSpacingControl;
    const double clearance_error =
        inputs.distance_m.value() - cmd.desired_distance_m.value();
    const double gain =
        t / (params_.headway_time_s.value() * params_.system_gain);
    v_des = follower_speed +
            gain * (clearance_error + t * inputs.relative_velocity_mps.value());
    // Never exceed the driver's set speed in spacing mode.
    v_des = std::min(v_des, params_.set_speed_mps.value());
  } else {
    cmd.mode = AccMode::kSpeedControl;
    v_des = params_.set_speed_mps.value();
  }
  if (params_.hold_speed_on_degraded_holdover && inputs.degraded_holdover) {
    // Estimated (or absent) radar data cannot justify speeding up.
    v_des = std::min(v_des, follower_speed);
  }
  v_des = std::max(v_des, 0.0);
  cmd.desired_speed_mps = MetersPerSecond{v_des};

  // Eq. 16: a_des from the desired-speed difference.
  const double prev =
      primed_ ? prev_desired_speed_.value() : follower_speed;
  double a_des = (v_des - prev) / t;
  a_des = std::clamp(a_des, -params_.max_decel_mps2.value(),
                     params_.max_accel_mps2.value());
  cmd.desired_accel_mps2 = MetersPerSecond2{a_des};

  prev_desired_speed_ = MetersPerSecond{v_des};
  primed_ = true;
  return cmd;
}

void UpperLevelController::reset() {
  prev_desired_speed_ = MetersPerSecond{0.0};
  primed_ = false;
}

LowerLevelController::LowerLevelController(const AccParameters& params)
    : params_(params) {
  validate_parameters(params_);
}

ActuationState LowerLevelController::step(MetersPerSecond2 desired_accel) {
  const double alpha = params_.sample_time_s / params_.time_constant_s;
  const MetersPerSecond2 target = params_.system_gain * desired_accel;
  // Discretized first-order lag; alpha >= 1 (T >= T_i) saturates to an
  // immediate step so the filter stays stable for any sample time.
  const double blend = std::min(alpha, 1.0);
  state_.actual_accel_mps2 += blend * (target - state_.actual_accel_mps2);

  if (state_.actual_accel_mps2 >= MetersPerSecond2{0.0}) {
    state_.pedal_accel_mps2 = state_.actual_accel_mps2;
    state_.brake_pressure = 0.0;
  } else {
    state_.pedal_accel_mps2 = MetersPerSecond2{0.0};
    state_.brake_pressure =
        -state_.actual_accel_mps2.value() * params_.brake_pressure_per_mps2;
  }
  return state_;
}

void LowerLevelController::reset() { state_ = ActuationState{}; }

AccController::AccController(const AccParameters& params)
    : params_(params), upper_(params), lower_(params) {}

AccController::Output AccController::step(const AccInputs& inputs) {
  Output out;
  out.command = upper_.step(inputs);
  out.actuation = lower_.step(out.command.desired_accel_mps2);
  return out;
}

void AccController::reset() {
  upper_.reset();
  lower_.reset();
}

}  // namespace safe::control
