// Intelligent Driver Model (IDM).
//
// The paper builds its traffic flow on the IDM enhanced with the ACC
// hierarchy. The plain IDM is provided both as the behavioural substrate and
// as a baseline follower controller for the ablation benches:
//
//   a = a_max [ 1 - (v / v_0)^delta - (s* / s)^2 ]
//   s* = s_0 + v T + v (v - v_lead) / (2 sqrt(a_max b))
#pragma once

#include "units/units.hpp"

namespace safe::control {

struct IdmParameters {
  units::MetersPerSecond desired_speed_mps{29.9517};    ///< v_0
  units::Meters min_gap_m{5.0};                         ///< s_0
  units::Seconds headway_time_s{1.5};                   ///< T
  units::MetersPerSecond2 max_accel_mps2{1.5};          ///< a_max
  units::MetersPerSecond2 comfortable_decel_mps2{2.0};  ///< b
  double accel_exponent = 4.0;                          ///< delta
};

/// Throws std::invalid_argument on non-physical parameters.
void validate_parameters(const IdmParameters& params);

/// Desired dynamic gap s*(v, v_lead).
units::Meters idm_desired_gap(const IdmParameters& params,
                              units::MetersPerSecond speed,
                              units::MetersPerSecond lead_speed);

/// IDM acceleration for the current kinematic situation. `gap` <= 0 is
/// treated as an imminent-collision clamp to maximum braking.
units::MetersPerSecond2 idm_acceleration(const IdmParameters& params,
                                         units::MetersPerSecond speed,
                                         units::MetersPerSecond lead_speed,
                                         units::Meters gap);

/// Free-road IDM acceleration (no leader).
units::MetersPerSecond2 idm_free_acceleration(const IdmParameters& params,
                                              units::MetersPerSecond speed);

}  // namespace safe::control
