// Intelligent Driver Model (IDM).
//
// The paper builds its traffic flow on the IDM enhanced with the ACC
// hierarchy. The plain IDM is provided both as the behavioural substrate and
// as a baseline follower controller for the ablation benches:
//
//   a = a_max [ 1 - (v / v_0)^delta - (s* / s)^2 ]
//   s* = s_0 + v T + v (v - v_lead) / (2 sqrt(a_max b))
#pragma once

namespace safe::control {

struct IdmParameters {
  double desired_speed_mps = 29.9517;    ///< v_0
  double min_gap_m = 5.0;                ///< s_0
  double headway_time_s = 1.5;           ///< T
  double max_accel_mps2 = 1.5;           ///< a_max
  double comfortable_decel_mps2 = 2.0;   ///< b
  double accel_exponent = 4.0;           ///< delta
};

/// Throws std::invalid_argument on non-physical parameters.
void validate_parameters(const IdmParameters& params);

/// Desired dynamic gap s*(v, v_lead).
double idm_desired_gap_m(const IdmParameters& params, double speed_mps,
                         double lead_speed_mps);

/// IDM acceleration for the current kinematic situation. `gap_m` <= 0 is
/// treated as an imminent-collision clamp to maximum braking.
double idm_acceleration(const IdmParameters& params, double speed_mps,
                        double lead_speed_mps, double gap_m);

/// Free-road IDM acceleration (no leader).
double idm_free_acceleration(const IdmParameters& params, double speed_mps);

}  // namespace safe::control
