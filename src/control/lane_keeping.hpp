// Lane-keeping controller (Stanley-style) for the lateral-dynamics
// extension.
//
// Steers toward the lane centerline from a measured lateral offset e_y and
// heading error e_psi:
//   delta = -k_psi * e_psi - atan(k_e * e_y / (v + v_soft))
//
// The lateral offset comes from a perception sensor (camera / lidar) whose
// measurement an attacker can bias; the lane_keeping tests show how a
// spoofed offset steers the vehicle out of its lane, and how the same
// holdover strategy as the longitudinal pipeline contains it.
#pragma once

#include "units/units.hpp"

namespace safe::control {

struct LaneKeepingParameters {
  double heading_gain = 1.0;     ///< k_psi (dimensionless)
  double crosstrack_gain = 0.8;  ///< k_e, 1/m per (m/s).
  units::MetersPerSecond softening_mps{1.0};  ///< v_soft (low-speed conditioning)
  units::Radians max_steer_rad{0.5};
};

/// Throws std::invalid_argument for non-positive gains.
void validate_parameters(const LaneKeepingParameters& params);

/// Steering command from the measured lateral offset (+ = left of center),
/// heading error, and speed.
units::Radians lane_keeping_steer(const LaneKeepingParameters& params,
                                  units::Meters lateral_offset,
                                  units::Radians heading_error,
                                  units::MetersPerSecond speed);

}  // namespace safe::control
