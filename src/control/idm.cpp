#include "control/idm.hpp"

#include <cmath>
#include <stdexcept>

namespace safe::control {

using units::Meters;
using units::MetersPerSecond;
using units::MetersPerSecond2;
using units::Seconds;

void validate_parameters(const IdmParameters& params) {
  if (params.desired_speed_mps <= MetersPerSecond{0.0} ||
      params.min_gap_m < Meters{0.0}) {
    throw std::invalid_argument("IdmParameters: bad speed/min gap");
  }
  if (params.headway_time_s < Seconds{0.0}) {
    throw std::invalid_argument("IdmParameters: bad headway");
  }
  if (params.max_accel_mps2 <= MetersPerSecond2{0.0} ||
      params.comfortable_decel_mps2 <= MetersPerSecond2{0.0}) {
    throw std::invalid_argument("IdmParameters: bad accel/decel");
  }
  if (params.accel_exponent <= 0.0) {
    throw std::invalid_argument("IdmParameters: bad exponent");
  }
}

Meters idm_desired_gap(const IdmParameters& params, MetersPerSecond speed,
                       MetersPerSecond lead_speed) {
  validate_parameters(params);
  const double speed_mps = speed.value();
  const double closing = speed_mps - lead_speed.value();
  const double dynamic =
      speed_mps * params.headway_time_s.value() +
      speed_mps * closing /
          (2.0 * std::sqrt(params.max_accel_mps2.value() *
                           params.comfortable_decel_mps2.value()));
  return params.min_gap_m + Meters{std::max(dynamic, 0.0)};
}

MetersPerSecond2 idm_acceleration(const IdmParameters& params,
                                  MetersPerSecond speed,
                                  MetersPerSecond lead_speed, Meters gap) {
  validate_parameters(params);
  if (gap <= Meters{0.0}) {
    return -params.comfortable_decel_mps2 * 4.0;  // emergency clamp
  }
  const double free_term =
      std::pow(std::max(speed.value(), 0.0) / params.desired_speed_mps.value(),
               params.accel_exponent);
  const double gap_ratio = idm_desired_gap(params, speed, lead_speed) / gap;
  return params.max_accel_mps2 *
         (1.0 - free_term - gap_ratio * gap_ratio);
}

MetersPerSecond2 idm_free_acceleration(const IdmParameters& params,
                                       MetersPerSecond speed) {
  validate_parameters(params);
  const double free_term =
      std::pow(std::max(speed.value(), 0.0) / params.desired_speed_mps.value(),
               params.accel_exponent);
  return params.max_accel_mps2 * (1.0 - free_term);
}

}  // namespace safe::control
