#include "control/idm.hpp"

#include <cmath>
#include <stdexcept>

namespace safe::control {

void validate_parameters(const IdmParameters& params) {
  if (params.desired_speed_mps <= 0.0 || params.min_gap_m < 0.0) {
    throw std::invalid_argument("IdmParameters: bad speed/min gap");
  }
  if (params.headway_time_s < 0.0) {
    throw std::invalid_argument("IdmParameters: bad headway");
  }
  if (params.max_accel_mps2 <= 0.0 || params.comfortable_decel_mps2 <= 0.0) {
    throw std::invalid_argument("IdmParameters: bad accel/decel");
  }
  if (params.accel_exponent <= 0.0) {
    throw std::invalid_argument("IdmParameters: bad exponent");
  }
}

double idm_desired_gap_m(const IdmParameters& params, double speed_mps,
                         double lead_speed_mps) {
  validate_parameters(params);
  const double closing = speed_mps - lead_speed_mps;
  const double dynamic =
      speed_mps * params.headway_time_s +
      speed_mps * closing /
          (2.0 * std::sqrt(params.max_accel_mps2 *
                           params.comfortable_decel_mps2));
  return params.min_gap_m + std::max(dynamic, 0.0);
}

double idm_acceleration(const IdmParameters& params, double speed_mps,
                        double lead_speed_mps, double gap_m) {
  validate_parameters(params);
  if (gap_m <= 0.0) {
    return -params.comfortable_decel_mps2 * 4.0;  // emergency clamp
  }
  const double free_term =
      std::pow(std::max(speed_mps, 0.0) / params.desired_speed_mps,
               params.accel_exponent);
  const double gap_ratio =
      idm_desired_gap_m(params, speed_mps, lead_speed_mps) / gap_m;
  return params.max_accel_mps2 * (1.0 - free_term - gap_ratio * gap_ratio);
}

double idm_free_acceleration(const IdmParameters& params, double speed_mps) {
  validate_parameters(params);
  const double free_term =
      std::pow(std::max(speed_mps, 0.0) / params.desired_speed_mps,
               params.accel_exponent);
  return params.max_accel_mps2 * (1.0 - free_term);
}

}  // namespace safe::control
