#include "control/lane_keeping.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace safe::control {

namespace units = safe::units;

void validate_parameters(const LaneKeepingParameters& params) {
  if (params.heading_gain <= 0.0 || params.crosstrack_gain <= 0.0) {
    throw std::invalid_argument("LaneKeepingParameters: gains must be > 0");
  }
  if (params.softening_mps <= units::MetersPerSecond{0.0} ||
      params.max_steer_rad <= units::Radians{0.0}) {
    throw std::invalid_argument("LaneKeepingParameters: bad limits");
  }
}

units::Radians lane_keeping_steer(const LaneKeepingParameters& params,
                                  units::Meters lateral_offset,
                                  units::Radians heading_error,
                                  units::MetersPerSecond speed) {
  validate_parameters(params);
  const double steer =
      -params.heading_gain * heading_error.value() -
      std::atan(params.crosstrack_gain * lateral_offset.value() /
                (std::max(speed.value(), 0.0) + params.softening_mps.value()));
  return units::Radians{std::clamp(steer, -params.max_steer_rad.value(),
                                   params.max_steer_rad.value())};
}

}  // namespace safe::control
