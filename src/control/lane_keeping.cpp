#include "control/lane_keeping.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace safe::control {

void validate_parameters(const LaneKeepingParameters& params) {
  if (params.heading_gain <= 0.0 || params.crosstrack_gain <= 0.0) {
    throw std::invalid_argument("LaneKeepingParameters: gains must be > 0");
  }
  if (params.softening_mps <= 0.0 || params.max_steer_rad <= 0.0) {
    throw std::invalid_argument("LaneKeepingParameters: bad limits");
  }
}

double lane_keeping_steer(const LaneKeepingParameters& params,
                          double lateral_offset_m, double heading_error_rad,
                          double speed_mps) {
  validate_parameters(params);
  const double steer =
      -params.heading_gain * heading_error_rad -
      std::atan(params.crosstrack_gain * lateral_offset_m /
                (std::max(speed_mps, 0.0) + params.softening_mps));
  return std::clamp(steer, -params.max_steer_rad, params.max_steer_rad);
}

}  // namespace safe::control
