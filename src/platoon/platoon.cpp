#include "platoon/platoon.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "attack/spec.hpp"
#include "attack/window.hpp"
#include "control/idm.hpp"
#include "fault/schedule.hpp"
#include "radar/link_budget.hpp"
#include "runtime/seed.hpp"  // header-only: no platoon -> runtime link dep
#include "telemetry/telemetry.hpp"
#include "vehicle/longitudinal.hpp"

namespace safe::platoon {

namespace units = safe::units;

namespace {

/// Per-follower simulation state: the complete pair-scene stack plus the
/// outcome accumulators.
struct Follower {
  radar::RadarProcessor radar;
  core::SafeMeasurementPipeline pipeline;
  control::AccController acc;
  fault::FaultSchedule faults;
  vehicle::VehicleState state;
  // Raw-radar track hold used when the defense is disabled (same one-epoch
  // bridge the pair scene gives its undefended consumer).
  units::Meters held_gap{0.0};
  units::MetersPerSecond held_dv{0.0};
  bool held_valid = false;
  VehicleOutcome outcome;
  double holdover_sq_sum_m2 = 0.0;
};

/// Radar seed for follower `index`: follower 1 keeps the base seed so a
/// 2-vehicle platoon replays the pair scene bit-for-bit; deeper followers
/// get counter-derived streams that never collide with it.
std::uint64_t follower_seed(std::uint64_t base_seed, std::size_t index) {
  if (index == 1) return base_seed;
  return runtime::derive_seed(base_seed, runtime::SeedStream::kVehicle,
                              static_cast<std::uint64_t>(index));
}

}  // namespace

std::vector<std::string> PlatoonResult::columns(std::size_t size) {
  std::vector<std::string> names{"time_s", "leader_v_mps"};
  for (std::size_t i = 1; i < size; ++i) {
    const std::string s = std::to_string(i);
    names.push_back("true_gap" + s + "_m");
    names.push_back("safe_gap" + s + "_m");
    names.push_back("v" + s + "_mps");
    names.push_back("a" + s + "_mps2");
    names.push_back("attack" + s);
    names.push_back("degradation" + s);
  }
  return names;
}

PlatoonSimulation::PlatoonSimulation(
    PlatoonConfig config,
    std::shared_ptr<const vehicle::LeaderProfile> leader,
    std::shared_ptr<const attack::AttackModel> attack,
    std::shared_ptr<const cra::ChallengeSchedule> schedule)
    : config_(std::move(config)),
      leader_profile_(std::move(leader)),
      attack_(std::move(attack)),
      schedule_(std::move(schedule)) {
  if (!leader_profile_) {
    throw std::invalid_argument("PlatoonSimulation: null leader profile");
  }
  if (!schedule_) {
    throw std::invalid_argument("PlatoonSimulation: null schedule");
  }
  if (config_.base.horizon_steps <= 0 ||
      config_.base.sample_time_s <= units::Seconds{0.0}) {
    throw std::invalid_argument("PlatoonSimulation: bad horizon/T");
  }
  const PlatoonOptions& po = config_.platoon;
  if (po.size < 2) {
    throw std::invalid_argument("PlatoonSimulation: need >= 2 vehicles");
  }
  if (po.attacked < 1 || po.attacked >= po.size) {
    throw std::invalid_argument(
        "PlatoonSimulation: attacked index out of range");
  }
  if (po.cutin.enabled() && po.cutin.into >= po.size) {
    throw std::invalid_argument(
        "PlatoonSimulation: cut-in index out of range");
  }
  if (po.initial_gap_m <= units::Meters{0.0}) {
    throw std::invalid_argument("PlatoonSimulation: bad initial gap");
  }
}

PlatoonResult PlatoonSimulation::run() {
  telemetry::ScopedTimer run_span("platoon.run", "platoon");

  const units::Seconds t_sample = config_.base.sample_time_s;
  const radar::FmcwParameters& wf = config_.base.radar.waveform;
  const PlatoonOptions& po = config_.platoon;
  const units::Meters initial_gap = po.initial_gap_m;
  const std::size_t n_followers = po.size - 1;

  // Per-run clone of the attack model (pair-scene idiom): stateful attacks
  // restart their lock-on machines on every run().
  std::unique_ptr<attack::AttackModel> attack =
      attack_ ? attack_->clone() : nullptr;
  if (attack) attack->reset();

  // Vehicle j starts at (size-1-j) * gap so every adjacent gap is the
  // configured initial gap (the pair scene's layout for size 2).
  vehicle::VehicleState leader{
      .position_m = units::Meters{static_cast<double>(n_followers) *
                                  initial_gap.value()},
      .velocity_mps = config_.base.leader_speed_mps};

  std::vector<std::unique_ptr<Follower>> followers;
  followers.reserve(n_followers);
  for (std::size_t i = 1; i <= n_followers; ++i) {
    auto f = std::make_unique<Follower>(Follower{
        .radar = radar::RadarProcessor(config_.base.radar,
                                       follower_seed(config_.base.seed, i)),
        .pipeline =
            core::make_default_pipeline(schedule_, config_.base.pipeline),
        .acc = control::AccController(config_.base.acc),
        .faults = (i == po.attacked && config_.base.faults)
                      ? *config_.base.faults
                      : fault::FaultSchedule{},
        .state =
            vehicle::VehicleState{
                .position_m =
                    units::Meters{static_cast<double>(n_followers - i) *
                                  initial_gap.value()},
                .velocity_mps = config_.base.follower_speed_mps},
        .held_gap = initial_gap,
        .held_dv = units::MetersPerSecond{0.0},
        .held_valid = false,
        .outcome = VehicleOutcome{},
        .holdover_sq_sum_m2 = 0.0,
    });
    f->faults.reset();
    f->outcome.index = i;
    f->outcome.min_gap_m = initial_gap;
    followers.push_back(std::move(f));
  }
  // Track holds seed from the true initial kinematics (pair-scene idiom).
  for (std::size_t i = 1; i <= n_followers; ++i) {
    const vehicle::VehicleState& pred =
        i == 1 ? leader : followers[i - 2]->state;
    followers[i - 1]->held_dv =
        vehicle::relative_velocity(pred, followers[i - 1]->state);
  }

  PlatoonResult result(po.size);

  for (std::int64_t k = 0; k < config_.base.horizon_steps; ++k) {
    const units::Seconds t = static_cast<double>(k) * t_sample;

    // --- Leader dynamics (Eq. 15).
    if (!result.collided) {
      leader =
          vehicle::step(leader, leader_profile_->acceleration(t), t_sample);
    }

    std::vector<double> row;
    row.reserve(2 + 6 * n_followers);
    row.push_back(t.value());
    row.push_back(leader.velocity_mps.value());

    // Followers in string order: vehicle i measures a predecessor that has
    // already stepped this sample — exactly the pair scene's sequencing.
    for (std::size_t i = 1; i <= n_followers; ++i) {
      Follower& f = *followers[i - 1];
      const vehicle::VehicleState& pred =
          i == 1 ? leader : followers[i - 2]->state;

      const units::Meters true_gap = vehicle::gap(pred, f.state);
      const units::MetersPerSecond true_dv =
          vehicle::relative_velocity(pred, f.state);

      // --- RF scene: genuine echo if the probe radiates and the target is
      // in the radar's range window.
      radar::EchoScene scene;
      scene.tx_enabled = !f.pipeline.probe_suppressed(k);
      scene.noise_power_w = config_.base.radar.noise_floor_w;
      const bool in_window =
          true_gap >= wf.min_range_m && true_gap <= wf.max_range_m;
      double echo_power = 0.0;
      if (scene.tx_enabled && in_window && !result.collided) {
        echo_power = radar::received_echo_power_w(
            wf, true_gap, config_.base.target_rcs_m2);
        scene.echoes.push_back(radar::EchoComponent{
            .distance_m = true_gap,
            .range_rate_mps = true_dv,
            .power_w = echo_power,
        });
      } else if (in_window && !result.collided) {
        echo_power = radar::received_echo_power_w(
            wf, true_gap, config_.base.target_rcs_m2);
      }

      // --- Multi-target scene: the vehicle two ahead reflects too (RCS
      // attenuated by the direct predecessor's occlusion). Only followers
      // with two vehicles ahead have one, so follower 1's scene — and with
      // it the 2-vehicle degeneracy — is untouched.
      if (po.multi_target && i >= 2 && scene.tx_enabled &&
          !result.collided) {
        const vehicle::VehicleState& two_ahead =
            i == 2 ? leader : followers[i - 3]->state;
        const units::Meters far_gap = vehicle::gap(two_ahead, f.state);
        if (far_gap >= wf.min_range_m && far_gap <= wf.max_range_m) {
          scene.echoes.push_back(radar::EchoComponent{
              .distance_m = far_gap,
              .range_rate_mps =
                  vehicle::relative_velocity(two_ahead, f.state),
              .power_w = radar::received_echo_power_w(
                  wf, far_gap,
                  config_.base.target_rcs_m2 * po.second_target_rcs_scale),
          });
        }
      }

      // --- Cut-in ghost: for the event window a vehicle merges in at a
      // fraction of the true gap. Nearer means ~R^-4 stronger, so the
      // receiver locks onto it and the controller brakes for it.
      if (po.cutin.enabled() && po.cutin.into == i && scene.tx_enabled &&
          !result.collided && t >= po.cutin.start_s &&
          t < po.cutin.start_s + po.cutin.duration_s) {
        const units::Meters cut_gap{po.cutin.gap_fraction *
                                    true_gap.value()};
        if (cut_gap >= wf.min_range_m && cut_gap <= wf.max_range_m) {
          scene.echoes.push_back(radar::EchoComponent{
              .distance_m = cut_gap,
              .range_rate_mps = true_dv,
              .power_w = radar::received_echo_power_w(
                  wf, cut_gap, config_.base.target_rcs_m2),
          });
        }
      }

      bool attack_active = false;
      if (attack && i == po.attacked && !result.collided) {
        const attack::AttackContext ctx{
            .time_s = t,
            .step = k,
            .true_distance_m = true_gap,
            .true_range_rate_mps = true_dv,
            .true_echo_power_w = echo_power,
            .waveform = &wf,
        };
        attack_active = attack->apply(ctx, scene);
      }

      // --- Radar receiver (+ post-digitization faults on the attacked
      // vehicle, if scheduled).
      radar::RadarMeasurement meas = f.radar.measure(scene);
      if (!f.faults.empty()) {
        meas = f.faults.apply(k, f.pipeline.probe_suppressed(k), meas);
      }

      // --- Defense pipeline (Algorithm 2, per-vehicle detector backend).
      const core::SafeMeasurement safe =
          f.pipeline.process_scored(k, meas, attack_active);
      if (safe.safe_stop) ++f.outcome.safe_stop_steps;

      // --- Controller input selection.
      control::AccInputs inputs;
      inputs.follower_speed_mps = f.state.velocity_mps;
      if (config_.base.defense_enabled) {
        inputs.target_present = safe.target_present;
        inputs.distance_m = safe.distance_m;
        inputs.relative_velocity_mps = safe.relative_velocity_mps;
        inputs.degraded_safe_stop = safe.safe_stop;
        inputs.degraded_holdover =
            safe.degradation == core::DegradationState::kHoldover;
      } else {
        if (meas.coherent_echo) {
          f.held_gap = meas.estimate.distance_m;
          f.held_dv = meas.estimate.range_rate_mps;
          f.held_valid = true;
        }
        inputs.target_present = f.held_valid;
        inputs.distance_m = f.held_gap;
        inputs.relative_velocity_mps = f.held_dv;
      }

      if (inputs.target_present &&
          (!std::isfinite(inputs.distance_m.value()) ||
           !std::isfinite(inputs.relative_velocity_mps.value()))) {
        ++f.outcome.nonfinite_controller_inputs;
      }

      // --- Follower controller + dynamics (Eqs. 13-17, or IDM baseline).
      units::MetersPerSecond2 accel;
      if (config_.base.controller == core::FollowerController::kAccHierarchy) {
        accel = f.acc.step(inputs).actuation.actual_accel_mps2;
      } else {
        accel = inputs.target_present
                    ? control::idm_acceleration(
                          config_.base.idm, f.state.velocity_mps,
                          f.state.velocity_mps + inputs.relative_velocity_mps,
                          inputs.distance_m)
                    : control::idm_free_acceleration(config_.base.idm,
                                                     f.state.velocity_mps);
      }
      if (!result.collided) {
        f.state = vehicle::step(f.state, accel, t_sample);
      }

      const units::Meters gap_after = vehicle::gap(pred, f.state);
      f.outcome.min_gap_m = units::min(f.outcome.min_gap_m, gap_after);
      if (!result.collided && gap_after <= units::Meters{0.0}) {
        result.collided = true;
        result.collision_step = k;
        result.collision_index = i;
      }

      // --- Outcome accumulators (computed online; the platoon trace keeps
      // only the plotting columns).
      const double gap_dev = std::abs(true_gap.value() - initial_gap.value());
      if (std::isfinite(gap_dev)) {
        f.outcome.peak_gap_deviation_m = units::max(
            f.outcome.peak_gap_deviation_m, units::Meters{gap_dev});
      }
      if (safe.estimated) {
        const double err = safe.distance_m.value() - true_gap.value();
        if (std::isfinite(err)) {
          f.holdover_sq_sum_m2 += err * err;
          ++f.outcome.holdover_steps;
        }
      }
      f.outcome.degradation_max = std::max(
          f.outcome.degradation_max, static_cast<double>(safe.degradation));

      row.push_back(true_gap.value());
      row.push_back(safe.distance_m.value());
      row.push_back(f.state.velocity_mps.value());
      row.push_back(f.state.acceleration_mps2.value());
      row.push_back(attack_active ? 1.0 : 0.0);
      row.push_back(static_cast<double>(safe.degradation));
    }

    result.trace.append_row(row);
  }

  result.followers.reserve(n_followers);
  for (std::size_t i = 1; i <= n_followers; ++i) {
    Follower& f = *followers[i - 1];
    f.outcome.detection_step = f.pipeline.detection_step();
    f.outcome.detection_stats = f.pipeline.detection_stats();
    f.outcome.health_stats = f.pipeline.health_stats();
    f.outcome.holdover_rmse_m = units::Meters{
        f.outcome.holdover_steps > 0
            ? std::sqrt(f.holdover_sq_sum_m2 /
                        static_cast<double>(f.outcome.holdover_steps))
            : 0.0};
    result.followers.push_back(f.outcome);
  }
  const units::Meters standstill =
      config_.base.controller == core::FollowerController::kIdm
          ? config_.base.idm.min_gap_m
          : config_.base.acc.min_gap_m;
  result.metrics = compute_propagation_metrics(
      result.followers, po.attacked, units::Meters{0.5 * standstill.value()});
  return result;
}

PlatoonScenario make_paper_platoon(const core::ScenarioOptions& options) {
  const std::string& spec = options.platoon_spec;
  PlatoonOptions po = parse_platoon_spec(spec == "none" ? "" : spec);

  // The pair factory assembles everything the followers share: speeds,
  // Bosch-LRR2 radar, ACC/pipeline profiles, the attack window, and the
  // paper's challenge schedule.
  core::Scenario pair = core::make_paper_scenario(options);

  PlatoonScenario s;
  s.config.base = pair.config;
  s.config.platoon = po;
  s.config.base.controller = po.controller;
  s.config.base.initial_gap_m = po.initial_gap_m;
  if (!po.detector_spec.empty()) {
    s.config.base.pipeline.detector_spec = po.detector_spec;
  }
  if (!po.fault_spec.empty()) {
    s.config.base.faults = std::make_shared<fault::FaultSchedule>(
        fault::parse_fault_spec(po.fault_spec, options.seed));
  }
  s.leader = pair.leader;
  s.attack = pair.attack;
  if (!po.attack_spec.empty()) {
    // Per-string override: the spec's attack replaces whatever the base
    // options selected, inside the same scenario attack window.
    s.attack = std::make_shared<attack::ScheduledAttack>(
        attack::make_attack(po.attack_spec, options.jammer, options.seed),
        attack::AttackWindow{options.attack_start_s, options.attack_end_s});
  }
  s.schedule = pair.schedule;
  return s;
}

}  // namespace safe::platoon
