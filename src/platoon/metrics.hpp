// Attack-propagation metrics over a finished platoon run.
//
// The single-pair case study asks "did the attacked follower crash"; a
// platoon asks how far the disturbance travels. The metrics here quantify
// that: how deep into the string the gap collapse reaches (shock depth),
// whether the string amplifies or attenuates the disturbance (L-infinity
// amplification, the classic string-stability criterion evaluated on peak
// gap deviations), and how the defense reacts along the string (per-vehicle
// detections, safe-stop cascades).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/health_monitor.hpp"
#include "cra/detector.hpp"
#include "units/units.hpp"

namespace safe::platoon {

/// Everything recorded about one follower over a platoon run.
struct VehicleOutcome {
  std::size_t index = 0;  ///< 1-based follower index (0 is the leader).
  units::Meters min_gap_m{0.0};  ///< Smallest gap to the predecessor.
  /// Peak |gap - initial gap| over the run: the disturbance magnitude the
  /// string-stability ratio compares between vehicles.
  units::Meters peak_gap_deviation_m{0.0};
  std::optional<std::int64_t> detection_step;
  cra::DetectionStats detection_stats;
  std::size_t safe_stop_steps = 0;
  std::size_t holdover_steps = 0;
  units::Meters holdover_rmse_m{0.0};
  std::size_t nonfinite_controller_inputs = 0;
  core::HealthStats health_stats;
  double degradation_max = 0.0;
};

struct PropagationMetrics {
  /// How deep the gap collapse reaches: the largest (j - attacked + 1) over
  /// followers j >= attacked whose min gap fell below the near-collision
  /// threshold (half the controller's standstill spacing d_0 — a margin the
  /// string never crosses in a clean run, even when the leader brakes to a
  /// stop). 0 when no follower at or behind the attacked one did.
  std::size_t shock_depth = 0;
  /// Smallest inter-vehicle gap anywhere in the string.
  units::Meters min_gap_m{0.0};
  /// String-stability L-infinity amplification: max over followers behind
  /// the attacked vehicle of peak_gap_deviation[j] / peak_gap_deviation
  /// [attacked]. > 1 means the string amplifies the disturbance as it
  /// travels upstream; 0 when the attacked vehicle saw no deviation or
  /// nobody follows it.
  double linf_amplification = 0.0;
  std::size_t safe_stop_vehicles = 0;  ///< Followers that entered safe-stop.
  std::size_t detected_vehicles = 0;   ///< Followers whose detector fired.
  /// Detection tallies summed over every follower's scored stream.
  cra::DetectionStats detection_totals;
  std::size_t safe_stop_steps_total = 0;
  std::size_t nonfinite_controller_inputs_total = 0;
  double degradation_max = 0.0;
};

/// Pure reduction of the per-follower outcomes; `attacked` is the 1-based
/// follower index the attack targeted and `shock_threshold_m` the
/// near-collision gap below which a follower counts toward shock_depth
/// (callers pass half the controller's standstill spacing).
[[nodiscard]] PropagationMetrics compute_propagation_metrics(
    const std::vector<VehicleOutcome>& followers, std::size_t attacked,
    units::Meters shock_threshold_m);

}  // namespace safe::platoon
