// N-vehicle platoon simulation: the pair case study generalized to a string.
//
// Vehicle 0 is the leader driving a LeaderProfile; every follower i in
// [1, n-1] runs the complete sensing stack of the pair scene — radar echo
// scene -> RadarProcessor -> fault schedule -> SafeMeasurementPipeline with
// its own detector backend -> ACC hierarchy (or IDM) — against the vehicle
// directly ahead. The coupling is physical: follower i's controller output
// moves follower i's plant, which is follower i+1's radar target, so an
// attack on one vehicle's sensor stream propagates down the string through
// the gaps.
//
// The per-step order is exactly the pair simulation's (leader steps, then
// each follower measures its already-stepped predecessor and steps): a
// 2-vehicle platoon with default options is bit-identical to
// core::CarFollowingSimulation, which the regression tests pin.
//
// Beyond the pair scene, followers with two vehicles ahead get a
// multi-target echo scene (the second-ahead return, RCS-attenuated), and an
// optional cut-in event injects a nearer ghost echo into one follower's
// scene for a time window — both exercise root-MUSIC's multi-component
// resolution and the detectors' nuisance rejection.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "attack/attack.hpp"
#include "core/car_following.hpp"
#include "core/scenario.hpp"
#include "cra/challenge.hpp"
#include "platoon/metrics.hpp"
#include "platoon/spec.hpp"
#include "sim/trace.hpp"
#include "vehicle/leader_profile.hpp"

namespace safe::platoon {

struct PlatoonConfig {
  /// Template for every follower's sensing/control stack (radar, pipeline,
  /// ACC parameters, speeds, horizon). `base.seed` seeds follower 1; deeper
  /// followers derive their radar seeds from it. `base.initial_gap_m` and
  /// `base.controller` are overridden by the platoon options below.
  core::CarFollowingConfig base{};
  PlatoonOptions platoon{};
};

/// Everything recorded about one platoon run.
struct PlatoonResult {
  /// Columns: time_s, leader_v_mps, then per follower i: true_gap<i>_m,
  /// safe_gap<i>_m, v<i>_mps, a<i>_mps2, attack<i>, degradation<i>.
  sim::Trace trace;
  bool collided = false;
  std::optional<std::int64_t> collision_step;
  /// Follower whose gap closed first (meaningful when `collided`).
  std::size_t collision_index = 0;
  std::vector<VehicleOutcome> followers;
  PropagationMetrics metrics;

  explicit PlatoonResult(std::size_t size) : trace(columns(size)) {}

  /// Trace column names for a platoon of `size` vehicles, in order.
  static std::vector<std::string> columns(std::size_t size);
};

class PlatoonSimulation {
 public:
  /// `attack` may be nullptr (clean run); it targets follower
  /// `config.platoon.attacked` only. `schedule` is shared by every
  /// follower's modulator and detector (a fleet-synchronized CRA).
  PlatoonSimulation(PlatoonConfig config,
                    std::shared_ptr<const vehicle::LeaderProfile> leader,
                    std::shared_ptr<const attack::AttackModel> attack,
                    std::shared_ptr<const cra::ChallengeSchedule> schedule);

  /// Runs the full horizon. Stops stepping every vehicle once any gap
  /// closes (the pair scene's post-collision freeze, string-wide) but keeps
  /// recording rows so all traces have `horizon_steps` rows.
  PlatoonResult run();

 private:
  PlatoonConfig config_;
  std::shared_ptr<const vehicle::LeaderProfile> leader_profile_;
  std::shared_ptr<const attack::AttackModel> attack_;
  std::shared_ptr<const cra::ChallengeSchedule> schedule_;
};

/// Assembled simulation pieces for one platoon run.
struct PlatoonScenario {
  PlatoonConfig config;
  std::shared_ptr<const vehicle::LeaderProfile> leader;
  std::shared_ptr<const attack::AttackModel> attack;  ///< may be null
  std::shared_ptr<const cra::ChallengeSchedule> schedule;

  [[nodiscard]] PlatoonResult run() const {
    return PlatoonSimulation(config, leader, attack, schedule).run();
  }
};

/// Builds the paper's case study as a platoon: every follower gets the pair
/// scene's radar, pipeline, and ACC configuration; `options.platoon_spec`
/// (the platoon mini-language) sets the string length, the attacked index,
/// and the per-vehicle detector. Throws std::invalid_argument on a bad
/// spec. With `platoon_spec` empty or "n=2" the attacked follower's run is
/// bit-identical to core::make_paper_scenario(options).run().
[[nodiscard]] PlatoonScenario make_paper_platoon(
    const core::ScenarioOptions& options);

}  // namespace safe::platoon
