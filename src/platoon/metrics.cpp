#include "platoon/metrics.hpp"

#include <algorithm>

namespace safe::platoon {

PropagationMetrics compute_propagation_metrics(
    const std::vector<VehicleOutcome>& followers, std::size_t attacked,
    units::Meters shock_threshold_m) {
  PropagationMetrics m;
  if (followers.empty()) return m;
  m.min_gap_m = followers.front().min_gap_m;

  units::Meters attacked_peak{0.0};

  for (const VehicleOutcome& f : followers) {
    m.min_gap_m = units::min(m.min_gap_m, f.min_gap_m);
    if (f.index >= attacked && f.min_gap_m < shock_threshold_m) {
      m.shock_depth = std::max(m.shock_depth, f.index - attacked + 1);
    }
    if (f.index == attacked) attacked_peak = f.peak_gap_deviation_m;
    if (f.safe_stop_steps > 0) ++m.safe_stop_vehicles;
    if (f.detection_step) ++m.detected_vehicles;
    m.detection_totals.challenges += f.detection_stats.challenges;
    m.detection_totals.true_positives += f.detection_stats.true_positives;
    m.detection_totals.false_positives += f.detection_stats.false_positives;
    m.detection_totals.true_negatives += f.detection_stats.true_negatives;
    m.detection_totals.false_negatives += f.detection_stats.false_negatives;
    m.safe_stop_steps_total += f.safe_stop_steps;
    m.nonfinite_controller_inputs_total += f.nonfinite_controller_inputs;
    m.degradation_max = std::max(m.degradation_max, f.degradation_max);
  }

  // Deviation ratios are only meaningful against a non-degenerate reference:
  // a clean run's numerical residue must not masquerade as amplification.
  if (attacked_peak.value() > 1.0e-9) {
    for (const VehicleOutcome& f : followers) {
      if (f.index <= attacked) continue;
      m.linf_amplification =
          std::max(m.linf_amplification,
                   f.peak_gap_deviation_m.value() / attacked_peak.value());
    }
  }
  return m;
}

}  // namespace safe::platoon
