#include "platoon/spec.hpp"

#include <cctype>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "attack/spec.hpp"
#include "detect/spec.hpp"
#include "fault/schedule.hpp"

namespace safe::platoon {

namespace {

/// Hard ceiling on the platoon length: 64 vehicles is far beyond any string
/// the propagation metrics are meaningful for, and bounds the per-trial
/// cost a campaign spec can demand.
constexpr std::size_t kMaxSize = 64;

SpecCheck malformed(std::string message) {
  return SpecCheck{false, std::move(message)};
}

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return true;
}

std::string unquote(const std::string& s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

/// Grammar parse: comma-separated key=value pairs, commas inside double
/// quotes protected (detector/fault sub-specs carry their own commas).
SpecCheck parse_grammar(const std::string& spec,
                        std::map<std::string, std::string>& out) {
  std::vector<std::string> tokens;
  std::string current;
  bool in_quotes = false;
  for (const char c : spec) {
    if (c == '"') in_quotes = !in_quotes;
    if (!in_quotes && c == ',') {
      tokens.push_back(current);
      current.clear();
      continue;
    }
    current += c;
  }
  if (in_quotes) {
    return malformed("platoon spec: unterminated quote in `" + spec + "`");
  }
  tokens.push_back(current);

  for (const std::string& token : tokens) {
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      return malformed("platoon spec: bad token `" + token + "` in `" + spec +
                       "`");
    }
    const std::string key = token.substr(0, eq);
    if (!valid_name(key)) {
      return malformed("platoon spec: bad key `" + key + "` in `" + spec +
                       "`");
    }
    if (!out.emplace(key, unquote(token.substr(eq + 1))).second) {
      return malformed("platoon spec: duplicate key `" + key + "` in `" +
                       spec + "`");
    }
  }
  return {};
}

/// Typed parameter extraction over the raw map; each take_* consumes its
/// key so leftovers can be rejected as unknown.
class Params {
 public:
  explicit Params(std::map<std::string, std::string> params)
      : params_(std::move(params)) {}

  bool take_number(const std::string& key, double& out, SpecCheck& check) {
    const auto it = params_.find(key);
    if (it == params_.end()) return true;
    try {
      std::size_t consumed = 0;
      out = std::stod(it->second, &consumed);
      if (consumed != it->second.size()) throw std::invalid_argument("junk");
    } catch (const std::exception&) {
      check = malformed("platoon spec: bad value for `" + key + "`: `" +
                        it->second + "`");
      return false;
    }
    params_.erase(it);
    return true;
  }

  bool take_count(const std::string& key, std::size_t& out,
                  SpecCheck& check) {
    std::string raw;
    if (!take_raw(key, raw)) return true;  // key absent: keep the default
    try {
      std::size_t consumed = 0;
      const unsigned long long v = std::stoull(raw, &consumed);
      // stoull accepts a leading '-' by wrapping; reject it explicitly.
      if (consumed != raw.size() || v == 0 || raw.front() == '-') {
        throw std::invalid_argument("not a positive integer");
      }
      out = static_cast<std::size_t>(v);
    } catch (const std::exception&) {
      check = malformed("platoon spec: `" + key +
                        "` must be a positive integer, got `" + raw + "`");
      return false;
    }
    return true;
  }

  bool take_bool(const std::string& key, bool& out, SpecCheck& check) {
    std::string raw;
    if (!take_raw(key, raw)) return true;
    if (raw == "on" || raw == "true" || raw == "1") {
      out = true;
    } else if (raw == "off" || raw == "false" || raw == "0") {
      out = false;
    } else {
      check = malformed("platoon spec: `" + key +
                        "` must be on/off, got `" + raw + "`");
      return false;
    }
    return true;
  }

  bool take_raw(const std::string& key, std::string& out) {
    const auto it = params_.find(key);
    if (it == params_.end()) return false;
    out = it->second;
    params_.erase(it);
    return true;
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return params_.count(key) > 0;
  }

  bool reject_leftovers(SpecCheck& check) const {
    if (params_.empty()) return true;
    check = malformed("platoon spec: unknown key `" +
                      params_.begin()->first + "`");
    return false;
  }

 private:
  std::map<std::string, std::string> params_;
};

/// One implementation behind the checker and the builder: a classification
/// that diverged from the parser would let malformed specs into campaigns
/// (or reject valid ones at the CLI), so both entry points share this.
SpecCheck parse_into(const std::string& spec, PlatoonOptions& out) {
  SpecCheck check;
  std::map<std::string, std::string> raw;
  check = parse_grammar(spec, raw);
  if (!check.ok) return check;
  Params params(std::move(raw));

  const bool cutin_requested = params.has("cutin_into");
  const bool cutin_start_set = params.has("cutin_start");
  const bool cutin_len_set = params.has("cutin_len");
  const bool cutin_frac_set = params.has("cutin_frac");

  if (!params.take_count("n", out.size, check) ||
      !params.take_count("attacked", out.attacked, check) ||
      !params.take_bool("multi_target", out.multi_target, check)) {
    return check;
  }

  std::string controller;
  if (params.take_raw("controller", controller)) {
    if (controller == "acc") {
      out.controller = core::FollowerController::kAccHierarchy;
    } else if (controller == "idm") {
      out.controller = core::FollowerController::kIdm;
    } else {
      return malformed("platoon spec: unknown controller `" + controller +
                       "` (acc or idm)");
    }
  }

  std::string detector;
  if (params.take_raw("detector", detector)) {
    const std::string normalized = detector == "none" ? "" : detector;
    const detect::SpecCheck sub = detect::check_detector_spec(normalized);
    if (sub.status != detect::SpecStatus::kOk) {
      return malformed("platoon spec: " + sub.message);
    }
    out.detector_spec = normalized;
  }

  std::string attack_spec;
  if (params.take_raw("attack", attack_spec)) {
    const std::string normalized = attack_spec == "none" ? "" : attack_spec;
    if (!normalized.empty()) {
      const attack::SpecCheck sub = attack::check_attack_spec(normalized);
      if (sub.status != attack::SpecStatus::kOk) {
        return malformed("platoon spec: " + sub.message);
      }
    }
    out.attack_spec = normalized;
  }

  std::string fault;
  if (params.take_raw("fault", fault)) {
    const std::string normalized = fault == "none" ? "" : fault;
    try {
      (void)fault::parse_fault_spec(normalized);
    } catch (const std::invalid_argument& e) {
      return malformed("platoon spec: " + std::string(e.what()));
    }
    out.fault_spec = normalized;
  }

  double gap = out.initial_gap_m.value();
  if (!params.take_number("gap", gap, check)) return check;
  if (!(gap > 0.0) || gap > 1.0e4) {
    return malformed("platoon spec: `gap` must be in (0, 10000] meters");
  }
  out.initial_gap_m = units::Meters{gap};

  if (!params.take_number("rcs_scale", out.second_target_rcs_scale, check)) {
    return check;
  }
  if (!(out.second_target_rcs_scale > 0.0) ||
      out.second_target_rcs_scale > 1.0) {
    return malformed("platoon spec: `rcs_scale` must be in (0, 1]");
  }

  double cutin_start = 0.0;
  double cutin_len = 0.0;
  double cutin_frac = out.cutin.gap_fraction;
  if (!params.take_count("cutin_into", out.cutin.into, check) ||
      !params.take_number("cutin_start", cutin_start, check) ||
      !params.take_number("cutin_len", cutin_len, check) ||
      !params.take_number("cutin_frac", cutin_frac, check) ||
      !params.reject_leftovers(check)) {
    return check;
  }

  if (out.size < 2 || out.size > kMaxSize) {
    return malformed("platoon spec: `n` must be in [2, " +
                     std::to_string(kMaxSize) + "]");
  }
  if (out.attacked >= out.size) {
    return malformed(
        "platoon spec: `attacked` must name a follower (1 <= attacked <= "
        "n-1)");
  }

  if ((cutin_start_set || cutin_len_set || cutin_frac_set) &&
      !cutin_requested) {
    return malformed("platoon spec: cutin_* keys require `cutin_into`");
  }
  if (cutin_requested) {
    if (out.cutin.into >= out.size) {
      return malformed(
          "platoon spec: `cutin_into` must name a follower (1 <= index <= "
          "n-1)");
    }
    if (!cutin_start_set || !cutin_len_set) {
      return malformed(
          "platoon spec: `cutin_into` requires `cutin_start` and "
          "`cutin_len`");
    }
    if (!(cutin_start >= 0.0)) {
      return malformed("platoon spec: `cutin_start` must be >= 0");
    }
    if (!(cutin_len > 0.0)) {
      return malformed("platoon spec: `cutin_len` must be > 0");
    }
    if (!(cutin_frac > 0.0) || cutin_frac >= 1.0) {
      return malformed("platoon spec: `cutin_frac` must be in (0, 1)");
    }
    out.cutin.start_s = units::Seconds{cutin_start};
    out.cutin.duration_s = units::Seconds{cutin_len};
    out.cutin.gap_fraction = cutin_frac;
  }
  return check;
}

}  // namespace

SpecCheck check_platoon_spec(const std::string& spec) {
  PlatoonOptions ignored;
  return parse_into(spec, ignored);
}

PlatoonOptions parse_platoon_spec(const std::string& spec) {
  PlatoonOptions options;
  const SpecCheck check = parse_into(spec, options);
  if (!check.ok) throw std::invalid_argument(check.message);
  return options;
}

std::string platoon_spec_help() {
  return "platoon spec: comma-separated key=value with keys "
         "n(2..64) attacked(1..n-1) controller(acc|idm) "
         "detector(<detect spec>, quoted if it has commas) "
         "fault(<fault spec>, quoted) attack(<attack spec>, quoted) "
         "gap(meters) multi_target(on|off) "
         "rcs_scale((0,1]) cutin_into cutin_start cutin_len "
         "cutin_frac((0,1)); e.g. \"n=8,attacked=3,detector=chi2\"; empty "
         "= the 2-vehicle pair case study";
}

}  // namespace safe::platoon
