// The `--platoon <spec>` mini-language (DESIGN.md §16).
//
// Grammar (same family as the fault/detector/campaign specs):
//   platoon_spec := key "=" value ("," key "=" value)*
//
// Keys:
//   n            vehicles including the leader (2..64; default 2)
//   attacked     follower index whose sensor stream the attack/fault
//                schedule targets (1..n-1; default 1)
//   controller   acc | idm (default acc: the paper's hierarchy)
//   detector     per-vehicle detection backend (detect mini-language);
//                quote values containing commas
//   fault        fault schedule for the attacked vehicle (fault
//                mini-language); quote values containing commas
//   attack       attack on the attacked vehicle's stream (attack
//                mini-language); quote values containing commas;
//                "" = inherit the base scenario's attack
//   gap          initial inter-vehicle gap in meters (default 100)
//   multi_target on | off: second-ahead echoes in each follower's scene
//                (default on; follower 1 never has one, so a 2-vehicle
//                platoon degenerates to the pair scene either way)
//   rcs_scale    RCS attenuation of the second-ahead echo, (0, 1]
//   cutin_into   follower index that sees a cut-in ghost vehicle
//   cutin_start  cut-in start time [s] (required with cutin_into)
//   cutin_len    cut-in duration [s] (required with cutin_into)
//   cutin_frac   cut-in range as a fraction of the true gap, (0, 1)
//
// Examples:
//   "n=8,attacked=3"
//   "n=4,attacked=1,controller=idm,gap=80"
//   "n=8,attacked=4,detector=\"chi2:threshold=9.21,window=16\""
//   "n=6,attacked=1,cutin_into=3,cutin_start=120,cutin_len=30"
//
// An empty spec selects the 2-vehicle defaults (== the pair case study).
// Parsing throws std::invalid_argument only; check_platoon_spec() offers
// the non-throwing form. Both share one implementation, so the checker and
// the builder always agree (the fuzz harness cross-checks them).
#pragma once

#include <cstddef>
#include <string>

#include "core/car_following.hpp"
#include "units/units.hpp"

namespace safe::platoon {

/// A ghost vehicle cutting into one follower's lane: for the event window
/// its echo appears at `gap_fraction` of the true gap, so the radar locks
/// onto the nearer return and the controller brakes for a car that is not
/// its predecessor.
struct CutInEvent {
  std::size_t into = 0;  ///< Follower index seeing the ghost; 0 = disabled.
  units::Seconds start_s{0.0};
  units::Seconds duration_s{0.0};
  // Dimensionless ratio of the true gap, not a distance; must sit in (0, 1).
  double gap_fraction = 0.5;  // lint: allow(raw-double-name)

  [[nodiscard]] bool enabled() const { return into > 0; }
};

/// Everything the platoon spec mini-language configures. Empty sub-spec
/// strings mean "inherit from the base ScenarioOptions".
struct PlatoonOptions {
  std::size_t size = 2;      ///< Vehicles including the leader.
  std::size_t attacked = 1;  ///< Follower index under attack (1-based).
  core::FollowerController controller =
      core::FollowerController::kAccHierarchy;
  std::string detector_spec;  ///< detect mini-language; "" = inherit.
  std::string fault_spec;     ///< fault mini-language; "" = inherit.
  std::string attack_spec;    ///< attack mini-language; "" = inherit.
  units::Meters initial_gap_m{100.0};
  bool multi_target = true;
  /// Power scale applied to the second-ahead echo's RCS (partial occlusion
  /// by the direct predecessor).
  double second_target_rcs_scale = 0.25;
  CutInEvent cutin{};
};

struct SpecCheck {
  bool ok = true;
  std::string message;  ///< empty when ok
};

/// Validates a spec without building anything (and without throwing).
[[nodiscard]] SpecCheck check_platoon_spec(const std::string& spec);

/// Parses a spec into options. Throws std::invalid_argument on any spec
/// check_platoon_spec() would reject.
[[nodiscard]] PlatoonOptions parse_platoon_spec(const std::string& spec);

/// One-line usage string for CLIs exposing `--platoon`.
[[nodiscard]] std::string platoon_spec_help();

}  // namespace safe::platoon
