// Cyclic Jacobi eigensolver for Hermitian (or real symmetric) matrices.
//
// MUSIC operates on forward-backward sample covariance matrices of modest
// order (<= a few dozen), for which Jacobi iteration is simple, numerically
// robust, and produces the full orthonormal eigenbasis the noise-subspace
// projection requires.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "linalg/matrix.hpp"

namespace safe::linalg {

/// Eigen-decomposition A = V diag(w) V^H with real eigenvalues `w` sorted
/// ascending and orthonormal eigenvector columns in `v`.
template <typename T>
struct HermitianEigenResult {
  Vector<real_of_t<T>> eigenvalues;
  Matrix<T> eigenvectors;
  std::size_t sweeps = 0;   ///< Jacobi sweeps used.
  bool converged = false;   ///< Off-diagonal norm fell below tolerance.
};

namespace detail {

/// Sum of squared magnitudes of strictly-off-diagonal entries.
template <typename T>
real_of_t<T> off_diagonal_norm2(const Matrix<T>& a) {
  using R = real_of_t<T>;
  R acc{};
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (i != j) acc += std::norm(std::complex<R>(a(i, j)));
    }
  }
  return acc;
}

}  // namespace detail

/// Computes the eigen-decomposition of a Hermitian matrix.
///
/// Preconditions: `a` square and Hermitian to roundoff (the routine uses only
/// the upper triangle's values via the Hermitian symmetry of its updates).
/// Throws std::invalid_argument on a non-square input.
template <typename T>
HermitianEigenResult<T> eigen_hermitian(Matrix<T> a,
                                        real_of_t<T> tol = 1e-13,
                                        std::size_t max_sweeps = 64) {
  using R = real_of_t<T>;
  if (!a.is_square()) {
    throw std::invalid_argument("eigen_hermitian: matrix must be square");
  }
  const std::size_t n = a.rows();
  Matrix<T> v = Matrix<T>::identity(n);

  HermitianEigenResult<T> result;
  const R scale = frobenius_norm(a);
  const R threshold2 = (scale == R{} ? R{1} : scale * scale) * tol * tol;

  std::size_t sweep = 0;
  for (; sweep < max_sweeps; ++sweep) {
    if (detail::off_diagonal_norm2(a) <= threshold2) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const T apq = a(p, q);
        const R alpha = std::abs(apq);
        if (alpha <= tol * scale / static_cast<R>(n * n) || alpha == R{}) {
          continue;
        }
        const R app = std::real(std::complex<R>(a(p, p)));
        const R aqq = std::real(std::complex<R>(a(q, q)));
        // Unit phase so that apq * conj(phase) is the real number alpha.
        const T phase = apq / static_cast<T>(alpha);

        const R tau = (aqq - app) / (R{2} * alpha);
        R t;
        if (tau >= R{}) {
          t = R{1} / (tau + std::sqrt(R{1} + tau * tau));
        } else {
          t = R{-1} / (-tau + std::sqrt(R{1} + tau * tau));
        }
        const R c = R{1} / std::sqrt(R{1} + t * t);
        const R s = t * c;

        // New diagonal entries (exactly real).
        const R app_new = c * c * app - R{2} * c * s * alpha + s * s * aqq;
        const R aqq_new = s * s * app + R{2} * c * s * alpha + c * c * aqq;

        // Rotate rows/columns p and q of A: A <- U^H A U with
        //   U(p,p)=c, U(p,q)=s*phase, U(q,p)=-s*conj(phase), U(q,q)=c.
        for (std::size_t i = 0; i < n; ++i) {
          if (i == p || i == q) continue;
          const T aip = a(i, p);
          const T aiq = a(i, q);
          const T new_ip = aip * static_cast<T>(c) - aiq * static_cast<T>(s) * conj_scalar(phase);
          const T new_iq = aip * static_cast<T>(s) * phase + aiq * static_cast<T>(c);
          a(i, p) = new_ip;
          a(p, i) = conj_scalar(new_ip);
          a(i, q) = new_iq;
          a(q, i) = conj_scalar(new_iq);
        }
        a(p, p) = static_cast<T>(app_new);
        a(q, q) = static_cast<T>(aqq_new);
        a(p, q) = T{};
        a(q, p) = T{};

        // Accumulate eigenvectors: V <- V U.
        for (std::size_t i = 0; i < n; ++i) {
          const T vip = v(i, p);
          const T viq = v(i, q);
          v(i, p) = vip * static_cast<T>(c) - viq * static_cast<T>(s) * conj_scalar(phase);
          v(i, q) = vip * static_cast<T>(s) * phase + viq * static_cast<T>(c);
        }
      }
    }
  }
  result.sweeps = sweep;
  result.converged = detail::off_diagonal_norm2(a) <= threshold2;

  // Extract and sort eigenpairs ascending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Vector<R> raw(n);
  for (std::size_t i = 0; i < n; ++i) {
    raw[i] = std::real(std::complex<R>(a(i, i)));
  }
  std::sort(order.begin(), order.end(),
            [&raw](std::size_t x, std::size_t y) { return raw[x] < raw[y]; });

  result.eigenvalues = Vector<R>(n);
  result.eigenvectors = Matrix<T>(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    result.eigenvalues[k] = raw[order[k]];
    result.eigenvectors.set_col(k, v.col(order[k]));
  }
  return result;
}

}  // namespace safe::linalg
