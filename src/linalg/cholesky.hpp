// Cholesky factorization of symmetric / Hermitian positive-definite matrices.
#pragma once

#include <cmath>
#include <cstddef>
#include <optional>
#include <stdexcept>

#include "linalg/matrix.hpp"

namespace safe::linalg {

/// A = L L^H with L lower triangular.
///
/// Construction leaves `valid()` false (instead of throwing) when the matrix
/// is not positive definite; covariance-matrix consumers use that as a
/// numerical health check.
template <typename T>
class CholeskyDecomposition {
 public:
  explicit CholeskyDecomposition(const Matrix<T>& a) : l_(a.rows(), a.cols()) {
    if (!a.is_square()) {
      throw std::invalid_argument("Cholesky: matrix must be square");
    }
    const std::size_t n = a.rows();
    for (std::size_t j = 0; j < n; ++j) {
      // Diagonal entry: must come out real and strictly positive.
      real_of_t<T> diag = std::real(std::complex<real_of_t<T>>(a(j, j)));
      for (std::size_t k = 0; k < j; ++k) {
        diag -= std::norm(std::complex<real_of_t<T>>(l_(j, k)));
      }
      if (!(diag > real_of_t<T>{})) {
        valid_ = false;
        return;
      }
      const real_of_t<T> ljj = std::sqrt(diag);
      l_(j, j) = static_cast<T>(ljj);
      for (std::size_t i = j + 1; i < n; ++i) {
        T acc = a(i, j);
        for (std::size_t k = 0; k < j; ++k) {
          acc -= l_(i, k) * conj_scalar(l_(j, k));
        }
        l_(i, j) = acc / static_cast<T>(ljj);
      }
    }
    valid_ = true;
  }

  /// True when the input was (numerically) positive definite.
  [[nodiscard]] bool valid() const { return valid_; }

  [[nodiscard]] const Matrix<T>& lower() const { return l_; }
  [[nodiscard]] std::size_t size() const { return l_.rows(); }

  /// Solves A x = b via two triangular solves.
  [[nodiscard]] Vector<T> solve(const Vector<T>& b) const {
    if (!valid_) throw std::domain_error("Cholesky::solve: not SPD");
    if (b.size() != size()) {
      throw std::invalid_argument("Cholesky::solve: size mismatch");
    }
    const std::size_t n = size();
    Vector<T> y(n);
    for (std::size_t i = 0; i < n; ++i) {
      T acc = b[i];
      for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * y[j];
      y[i] = acc / l_(i, i);
    }
    Vector<T> x(n);
    for (std::size_t ip1 = n; ip1 > 0; --ip1) {
      const std::size_t i = ip1 - 1;
      T acc = y[i];
      for (std::size_t j = i + 1; j < n; ++j) {
        acc -= conj_scalar(l_(j, i)) * x[j];
      }
      x[i] = acc / l_(i, i);
    }
    return x;
  }

 private:
  Matrix<T> l_;
  bool valid_ = false;
};

/// True iff `a` is numerically symmetric/Hermitian positive definite.
template <typename T>
bool is_positive_definite(const Matrix<T>& a) {
  return a.is_square() && CholeskyDecomposition<T>(a).valid();
}

}  // namespace safe::linalg
