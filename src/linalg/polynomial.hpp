// Complex polynomials and root finding.
//
// root-MUSIC forms a conjugate-symmetric polynomial from the noise-subspace
// projector and needs all of its roots. We use the Durand-Kerner
// (Weierstrass) simultaneous iteration, which is dependency-free and robust
// for the moderate degrees (< 64) that arise here, with a companion-matrix
// builder provided for cross-checking.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace safe::linalg {

using Complex = std::complex<double>;

/// Polynomial with coefficients in ascending-power order:
/// p(z) = c[0] + c[1] z + ... + c[n] z^n.
class Polynomial {
 public:
  Polynomial() = default;

  /// Coefficients in ascending powers; trailing (near-)zero leading
  /// coefficients are trimmed so degree() is meaningful.
  explicit Polynomial(std::vector<Complex> ascending_coeffs);

  /// Degree of the zero polynomial is reported as 0.
  [[nodiscard]] std::size_t degree() const;

  [[nodiscard]] const std::vector<Complex>& coefficients() const {
    return coeffs_;
  }

  /// Horner evaluation.
  [[nodiscard]] Complex evaluate(Complex z) const;

  /// Derivative polynomial.
  [[nodiscard]] Polynomial derivative() const;

  /// Monic copy (divides by the leading coefficient).
  [[nodiscard]] Polynomial monic() const;

  /// Builds the monic polynomial with the given roots.
  static Polynomial from_roots(const std::vector<Complex>& roots);

 private:
  std::vector<Complex> coeffs_{Complex{}};
};

/// Options controlling the Durand-Kerner iteration.
struct RootFindingOptions {
  std::size_t max_iterations = 400;
  double tolerance = 1e-12;  ///< max per-root displacement for convergence
};

/// All complex roots of `p` (degree >= 1) via Durand-Kerner iteration.
///
/// Deterministic: the initial guesses lie on a fixed spiral. Throws
/// std::invalid_argument for (near-)zero polynomials of degree 0.
std::vector<Complex> find_roots(const Polynomial& p,
                                const RootFindingOptions& options = {});

/// Frobenius companion matrix of a monic polynomial (for cross-validation of
/// the iterative root finder in tests; eigenvalues of the companion matrix
/// are the polynomial's roots).
CMatrix companion_matrix(const Polynomial& p);

}  // namespace safe::linalg
