// Dense row-major matrix and vector types used throughout the library.
//
// The reproduction deliberately avoids external linear-algebra dependencies:
// everything downstream (RLS, Kalman filtering, root-MUSIC) operates on small
// dense matrices (n <= a few hundred), for which a straightforward, carefully
// tested implementation is both fast enough and easy to audit.
#pragma once

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace safe::linalg {

/// Trait: the real scalar type underlying T (double for std::complex<double>).
template <typename T>
struct real_of {
  using type = T;
};
template <typename T>
struct real_of<std::complex<T>> {
  using type = T;
};
template <typename T>
using real_of_t = typename real_of<T>::type;

/// Complex conjugate that is the identity for real scalars.
template <typename T>
constexpr T conj_scalar(const T& v) {
  if constexpr (std::is_same_v<T, std::complex<real_of_t<T>>>) {
    return std::conj(v);
  } else {
    return v;
  }
}

/// Dense column vector with value semantics.
template <typename T>
class Vector {
 public:
  Vector() = default;

  explicit Vector(std::size_t n, T init = T{}) : data_(n, init) {}

  Vector(std::initializer_list<T> values) : data_(values) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked access; throws std::out_of_range on violation.
  T& at(std::size_t i) { return data_.at(i); }
  const T& at(std::size_t i) const { return data_.at(i); }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  Vector& operator+=(const Vector& rhs) {
    require_same_size(rhs, "+=");
    for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs[i];
    return *this;
  }

  Vector& operator-=(const Vector& rhs) {
    require_same_size(rhs, "-=");
    for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs[i];
    return *this;
  }

  Vector& operator*=(T scalar) {
    for (auto& v : data_) v *= scalar;
    return *this;
  }

  Vector& operator/=(T scalar) {
    for (auto& v : data_) v /= scalar;
    return *this;
  }

  friend Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
  friend Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
  friend Vector operator*(Vector lhs, T scalar) { return lhs *= scalar; }
  friend Vector operator*(T scalar, Vector rhs) { return rhs *= scalar; }
  friend Vector operator/(Vector lhs, T scalar) { return lhs /= scalar; }

  friend bool operator==(const Vector& a, const Vector& b) {
    return a.data_ == b.data_;
  }

 private:
  void require_same_size(const Vector& rhs, const char* op) const {
    if (size() != rhs.size()) {
      throw std::invalid_argument(std::string("Vector") + op +
                                  ": size mismatch");
    }
  }

  std::vector<T> data_;
};

/// Hermitian inner product <a, b> = sum conj(a_i) * b_i (plain dot for reals).
template <typename T>
T dot(const Vector<T>& a, const Vector<T>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dot: size mismatch");
  }
  T acc{};
  for (std::size_t i = 0; i < a.size(); ++i) acc += conj_scalar(a[i]) * b[i];
  return acc;
}

/// Euclidean norm.
template <typename T>
real_of_t<T> norm2(const Vector<T>& v) {
  real_of_t<T> acc{};
  for (std::size_t i = 0; i < v.size(); ++i) acc += std::norm(std::complex<real_of_t<T>>(v[i]));
  return std::sqrt(acc);
}

/// Largest absolute entry.
template <typename T>
real_of_t<T> norm_inf(const Vector<T>& v) {
  real_of_t<T> best{};
  for (std::size_t i = 0; i < v.size(); ++i) {
    best = std::max(best, std::abs(v[i]));
  }
  return best;
}

/// Dense row-major matrix with value semantics.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  /// Builds a matrix from nested brace lists; all rows must agree in length.
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
      if (r.size() != cols_) {
        throw std::invalid_argument("Matrix: ragged initializer rows");
      }
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  /// n-by-n matrix with `diag` replicated on the diagonal.
  static Matrix scaled_identity(std::size_t n, T diag) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = diag;
    return m;
  }

  static Matrix from_diagonal(const Vector<T>& d) {
    Matrix m(d.size(), d.size());
    for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
    return m;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] bool is_square() const { return rows_ == cols_; }

  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws std::out_of_range on violation.
  T& at(std::size_t r, std::size_t c) {
    check_index(r, c);
    return (*this)(r, c);
  }
  const T& at(std::size_t r, std::size_t c) const {
    check_index(r, c);
    return (*this)(r, c);
  }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }

  [[nodiscard]] Vector<T> row(std::size_t r) const {
    Vector<T> out(cols_);
    for (std::size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
    return out;
  }

  [[nodiscard]] Vector<T> col(std::size_t c) const {
    Vector<T> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
    return out;
  }

  void set_row(std::size_t r, const Vector<T>& v) {
    if (v.size() != cols_) throw std::invalid_argument("set_row: size");
    for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
  }

  void set_col(std::size_t c, const Vector<T>& v) {
    if (v.size() != rows_) throw std::invalid_argument("set_col: size");
    for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
  }

  [[nodiscard]] Vector<T> diagonal() const {
    const std::size_t n = std::min(rows_, cols_);
    Vector<T> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = (*this)(i, i);
    return out;
  }

  [[nodiscard]] Matrix transpose() const {
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    return out;
  }

  /// Conjugate transpose (plain transpose for real scalars).
  [[nodiscard]] Matrix adjoint() const {
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c)
        out(c, r) = conj_scalar((*this)(r, c));
    return out;
  }

  Matrix& operator+=(const Matrix& rhs) {
    require_same_shape(rhs, "+=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
    return *this;
  }

  Matrix& operator-=(const Matrix& rhs) {
    require_same_shape(rhs, "-=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
    return *this;
  }

  Matrix& operator*=(T scalar) {
    for (auto& v : data_) v *= scalar;
    return *this;
  }

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, T scalar) { return lhs *= scalar; }
  friend Matrix operator*(T scalar, Matrix rhs) { return rhs *= scalar; }

  friend Matrix operator*(const Matrix& a, const Matrix& b) {
    if (a.cols_ != b.rows_) {
      throw std::invalid_argument("Matrix*: inner dimension mismatch");
    }
    Matrix out(a.rows_, b.cols_);
    for (std::size_t i = 0; i < a.rows_; ++i) {
      for (std::size_t k = 0; k < a.cols_; ++k) {
        const T aik = a(i, k);
        if (aik == T{}) continue;
        for (std::size_t j = 0; j < b.cols_; ++j) {
          out(i, j) += aik * b(k, j);
        }
      }
    }
    return out;
  }

  friend Vector<T> operator*(const Matrix& m, const Vector<T>& v) {
    if (m.cols_ != v.size()) {
      throw std::invalid_argument("Matrix*Vector: dimension mismatch");
    }
    Vector<T> out(m.rows_);
    for (std::size_t i = 0; i < m.rows_; ++i) {
      T acc{};
      for (std::size_t j = 0; j < m.cols_; ++j) acc += m(i, j) * v[j];
      out[i] = acc;
    }
    return out;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  void check_index(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) {
      throw std::out_of_range("Matrix::at: index out of range");
    }
  }

  void require_same_shape(const Matrix& rhs, const char* op) const {
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
      throw std::invalid_argument(std::string("Matrix") + op +
                                  ": shape mismatch");
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Rank-1 product a * b^H (outer product; b is conjugated for complex T).
template <typename T>
Matrix<T> outer(const Vector<T>& a, const Vector<T>& b) {
  Matrix<T> out(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j)
      out(i, j) = a[i] * conj_scalar(b[j]);
  return out;
}

/// Frobenius norm.
template <typename T>
real_of_t<T> frobenius_norm(const Matrix<T>& m) {
  real_of_t<T> acc{};
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      acc += std::norm(std::complex<real_of_t<T>>(m(r, c)));
  return std::sqrt(acc);
}

/// Largest absolute entry.
template <typename T>
real_of_t<T> max_abs(const Matrix<T>& m) {
  real_of_t<T> best{};
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      best = std::max(best, std::abs(m(r, c)));
  return best;
}

template <typename T>
std::ostream& operator<<(std::ostream& os, const Vector<T>& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ", ";
    os << v[i];
  }
  return os << ']';
}

template <typename T>
std::ostream& operator<<(std::ostream& os, const Matrix<T>& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c != 0) os << ", ";
      os << m(r, c);
    }
    os << (r + 1 == m.rows() ? "]]" : "]\n");
  }
  return os;
}

using RMatrix = Matrix<double>;
using RVector = Vector<double>;
using CMatrix = Matrix<std::complex<double>>;
using CVector = Vector<std::complex<double>>;

}  // namespace safe::linalg
