#include "linalg/polynomial.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace safe::linalg {

namespace {

constexpr double kLeadingTrimTol = 1e-300;

}  // namespace

Polynomial::Polynomial(std::vector<Complex> ascending_coeffs)
    : coeffs_(std::move(ascending_coeffs)) {
  while (coeffs_.size() > 1 && std::abs(coeffs_.back()) < kLeadingTrimTol) {
    coeffs_.pop_back();
  }
  if (coeffs_.empty()) coeffs_.push_back(Complex{});
}

std::size_t Polynomial::degree() const { return coeffs_.size() - 1; }

Complex Polynomial::evaluate(Complex z) const {
  Complex acc{};
  for (std::size_t ip1 = coeffs_.size(); ip1 > 0; --ip1) {
    acc = acc * z + coeffs_[ip1 - 1];
  }
  return acc;
}

Polynomial Polynomial::derivative() const {
  if (degree() == 0) return Polynomial({Complex{}});
  std::vector<Complex> d(degree());
  for (std::size_t i = 1; i < coeffs_.size(); ++i) {
    d[i - 1] = coeffs_[i] * static_cast<double>(i);
  }
  return Polynomial(std::move(d));
}

Polynomial Polynomial::monic() const {
  const Complex lead = coeffs_.back();
  if (std::abs(lead) == 0.0) {
    throw std::domain_error("Polynomial::monic: zero polynomial");
  }
  std::vector<Complex> c = coeffs_;
  for (auto& ci : c) ci /= lead;
  return Polynomial(std::move(c));
}

Polynomial Polynomial::from_roots(const std::vector<Complex>& roots) {
  std::vector<Complex> c{Complex{1.0, 0.0}};
  for (const Complex& r : roots) {
    // Multiply the running polynomial by (z - r).
    std::vector<Complex> next(c.size() + 1);
    for (std::size_t i = 0; i < c.size(); ++i) {
      next[i + 1] += c[i];
      next[i] -= c[i] * r;
    }
    c = std::move(next);
  }
  return Polynomial(std::move(c));
}

std::vector<Complex> find_roots(const Polynomial& p,
                                const RootFindingOptions& options) {
  const std::size_t n = p.degree();
  if (n == 0) {
    throw std::invalid_argument("find_roots: polynomial has no roots");
  }
  const Polynomial q = p.monic();
  const auto& c = q.coefficients();

  if (n == 1) {
    return {-c[0]};
  }

  // Initial radius: the geometric mean of the root magnitudes is
  // |c0|^(1/n) for a monic polynomial, which puts the start ring through
  // the root cluster (the Cauchy bound can overshoot by orders of
  // magnitude, stalling convergence at high degree). Clamp against the
  // Cauchy bound for safety.
  double cauchy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cauchy = std::max(cauchy, std::abs(c[i]));
  }
  cauchy += 1.0;
  const double c0 = std::abs(c[0]);
  double radius = c0 > 0.0
                      ? std::exp(std::log(c0) / static_cast<double>(n))
                      : 0.5;
  radius = std::clamp(radius, 1e-3, cauchy);

  // Deterministic non-symmetric initial spiral (a symmetric start can put
  // Durand-Kerner on an invariant subspace and stall).
  std::vector<Complex> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = (2.0 * std::numbers::pi * static_cast<double>(i)) /
                             static_cast<double>(n) +
                         0.3979;
    const double r = radius * (0.8 + 0.4 * (static_cast<double>(i) + 1.0) /
                                         static_cast<double>(n));
    z[i] = std::polar(r, angle);
  }

  // High-degree polynomials need proportionally more sweeps.
  const std::size_t iterations =
      std::max(options.max_iterations, 30 * n);
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    double max_step = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      Complex denom{1.0, 0.0};
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        denom *= (z[i] - z[j]);
      }
      if (std::abs(denom) == 0.0) {
        // Collision between iterates: nudge deterministically and retry.
        z[i] += Complex(1e-6 * (static_cast<double>(i) + 1.0), 1e-6);
        max_step = std::numeric_limits<double>::infinity();
        continue;
      }
      const Complex step = q.evaluate(z[i]) / denom;
      z[i] -= step;
      max_step = std::max(max_step, std::abs(step));
    }
    if (max_step < options.tolerance) break;
  }

  // A few polishing Newton steps per root (cheap, tightens clusters).
  const Polynomial dq = q.derivative();
  for (auto& zi : z) {
    for (int step = 0; step < 3; ++step) {
      const Complex d = dq.evaluate(zi);
      if (std::abs(d) == 0.0) break;
      zi -= q.evaluate(zi) / d;
    }
  }
  return z;
}

CMatrix companion_matrix(const Polynomial& p) {
  const std::size_t n = p.degree();
  if (n == 0) {
    throw std::invalid_argument("companion_matrix: degree must be >= 1");
  }
  const Polynomial q = p.monic();
  const auto& c = q.coefficients();
  CMatrix m(n, n);
  for (std::size_t i = 1; i < n; ++i) m(i, i - 1) = Complex{1.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) m(i, n - 1) = -c[i];
  return m;
}

}  // namespace safe::linalg
