// Householder QR factorization and least-squares solve.
//
// Used by the batch least-squares reference implementation that the RLS
// (Algorithm 1) tests compare against, and by rank-revealing checks.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "linalg/matrix.hpp"

namespace safe::linalg {

/// A = Q R with Q (m x m) unitary and R (m x n) upper trapezoidal, m >= n.
template <typename T>
class QrDecomposition {
 public:
  explicit QrDecomposition(Matrix<T> a)
      : r_(std::move(a)), q_(Matrix<T>::identity(r_.rows())) {
    const std::size_t m = r_.rows();
    const std::size_t n = r_.cols();
    if (m < n) {
      throw std::invalid_argument("QrDecomposition: needs rows >= cols");
    }
    using R = real_of_t<T>;
    for (std::size_t k = 0; k < n; ++k) {
      // Build the Householder reflector for column k.
      R xnorm{};
      for (std::size_t i = k; i < m; ++i) {
        xnorm += std::norm(std::complex<R>(r_(i, k)));
      }
      xnorm = std::sqrt(xnorm);
      if (xnorm == R{}) continue;

      // alpha = -sign(x0) * ||x||, with complex phase for complex T.
      T x0 = r_(k, k);
      const R x0abs = std::abs(x0);
      T alpha;
      if (x0abs == R{}) {
        alpha = static_cast<T>(-xnorm);
      } else {
        alpha = -(x0 / static_cast<T>(x0abs)) * static_cast<T>(xnorm);
      }

      std::vector<T> v(m - k);
      v[0] = x0 - alpha;
      for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r_(i, k);
      R vnorm2{};
      for (const auto& vi : v) vnorm2 += std::norm(std::complex<R>(vi));
      if (vnorm2 == R{}) continue;

      // Apply H = I - 2 v v^H / (v^H v) to R (columns k..n-1).
      for (std::size_t c = k; c < n; ++c) {
        T proj{};
        for (std::size_t i = k; i < m; ++i) {
          proj += conj_scalar(v[i - k]) * r_(i, c);
        }
        const T scale = static_cast<T>(R{2} / vnorm2) * proj;
        for (std::size_t i = k; i < m; ++i) {
          r_(i, c) -= scale * v[i - k];
        }
      }
      // Accumulate Q <- Q H (apply H to Q's columns from the right).
      for (std::size_t row = 0; row < m; ++row) {
        T proj{};
        for (std::size_t i = k; i < m; ++i) {
          proj += q_(row, i) * v[i - k];
        }
        const T scale = static_cast<T>(R{2} / vnorm2) * proj;
        for (std::size_t i = k; i < m; ++i) {
          q_(row, i) -= scale * conj_scalar(v[i - k]);
        }
      }
    }
  }

  [[nodiscard]] const Matrix<T>& q() const { return q_; }
  [[nodiscard]] const Matrix<T>& r() const { return r_; }

  /// Minimum-norm residual solve of the overdetermined system A x = b.
  [[nodiscard]] Vector<T> solve_least_squares(const Vector<T>& b) const {
    const std::size_t m = r_.rows();
    const std::size_t n = r_.cols();
    if (b.size() != m) {
      throw std::invalid_argument("QR solve: size mismatch");
    }
    // x solves R x = Q^H b (top n rows). Rank deficiency is judged relative
    // to the largest diagonal magnitude, since exact zeros rarely survive
    // floating-point Householder updates.
    real_of_t<T> top{};
    for (std::size_t i = 0; i < n; ++i) {
      top = std::max(top, std::abs(r_(i, i)));
    }
    const Vector<T> qtb = q_.adjoint() * b;
    Vector<T> x(n);
    for (std::size_t ip1 = n; ip1 > 0; --ip1) {
      const std::size_t i = ip1 - 1;
      T acc = qtb[i];
      for (std::size_t j = i + 1; j < n; ++j) acc -= r_(i, j) * x[j];
      if (std::abs(r_(i, i)) <= real_of_t<T>(1e-12) * top) {
        throw std::domain_error("QR solve: rank deficient");
      }
      x[i] = acc / r_(i, i);
    }
    return x;
  }

  /// Numerical rank: count of diagonal entries of R above tol * max|diag|.
  [[nodiscard]] std::size_t rank(real_of_t<T> rel_tol = 1e-12) const {
    const std::size_t n = std::min(r_.rows(), r_.cols());
    real_of_t<T> top{};
    for (std::size_t i = 0; i < n; ++i) top = std::max(top, std::abs(r_(i, i)));
    std::size_t rank = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (std::abs(r_(i, i)) > rel_tol * top) ++rank;
    }
    return rank;
  }

 private:
  Matrix<T> r_;
  Matrix<T> q_;
};

/// Batch (one-shot) least squares: argmin_x ||A x - b||_2.
template <typename T>
Vector<T> least_squares(const Matrix<T>& a, const Vector<T>& b) {
  return QrDecomposition<T>(a).solve_least_squares(b);
}

}  // namespace safe::linalg
