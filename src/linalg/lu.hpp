// LU decomposition with partial pivoting, plus solve / inverse / determinant.
#pragma once

#include <cmath>
#include <cstddef>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <vector>

#include "linalg/matrix.hpp"

namespace safe::linalg {

/// PA = LU factorization of a square matrix with partial (row) pivoting.
///
/// L is unit lower triangular and U upper triangular, both packed into a
/// single matrix. Singularity is reported through `singular()` rather than an
/// exception so that callers probing near-singular systems (e.g. the RLS
/// covariance reset logic) can branch on it cheaply.
template <typename T>
class LuDecomposition {
 public:
  explicit LuDecomposition(Matrix<T> a)
      : lu_(std::move(a)), perm_(lu_.rows()), sign_(1) {
    if (!lu_.is_square()) {
      throw std::invalid_argument("LuDecomposition: matrix must be square");
    }
    const std::size_t n = lu_.rows();
    std::iota(perm_.begin(), perm_.end(), std::size_t{0});

    for (std::size_t k = 0; k < n; ++k) {
      // Partial pivot: pick the largest |entry| in column k at/below row k.
      std::size_t pivot = k;
      auto best = std::abs(lu_(k, k));
      for (std::size_t i = k + 1; i < n; ++i) {
        const auto cand = std::abs(lu_(i, k));
        if (cand > best) {
          best = cand;
          pivot = i;
        }
      }
      if (best == real_of_t<T>{}) {
        singular_ = true;
        continue;  // column already eliminated; keep scanning for rank info
      }
      if (pivot != k) {
        for (std::size_t c = 0; c < n; ++c) {
          std::swap(lu_(k, c), lu_(pivot, c));
        }
        std::swap(perm_[k], perm_[pivot]);
        sign_ = -sign_;
      }
      for (std::size_t i = k + 1; i < n; ++i) {
        const T m = lu_(i, k) / lu_(k, k);
        lu_(i, k) = m;
        for (std::size_t c = k + 1; c < n; ++c) {
          lu_(i, c) -= m * lu_(k, c);
        }
      }
    }
  }

  [[nodiscard]] bool singular() const { return singular_; }
  [[nodiscard]] std::size_t size() const { return lu_.rows(); }

  /// Solves A x = b. Throws std::domain_error if A is singular.
  [[nodiscard]] Vector<T> solve(const Vector<T>& b) const {
    if (singular_) throw std::domain_error("LuDecomposition::solve: singular");
    if (b.size() != size()) {
      throw std::invalid_argument("LuDecomposition::solve: size mismatch");
    }
    const std::size_t n = size();
    Vector<T> x(n);
    // Forward substitution with permuted RHS (L has implicit unit diagonal).
    for (std::size_t i = 0; i < n; ++i) {
      T acc = b[perm_[i]];
      for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
      x[i] = acc;
    }
    // Backward substitution on U.
    for (std::size_t ip1 = n; ip1 > 0; --ip1) {
      const std::size_t i = ip1 - 1;
      T acc = x[i];
      for (std::size_t j = i + 1; j < n; ++j) acc -= lu_(i, j) * x[j];
      x[i] = acc / lu_(i, i);
    }
    return x;
  }

  /// Solves A X = B column-by-column.
  [[nodiscard]] Matrix<T> solve(const Matrix<T>& b) const {
    if (b.rows() != size()) {
      throw std::invalid_argument("LuDecomposition::solve: row mismatch");
    }
    Matrix<T> x(size(), b.cols());
    for (std::size_t c = 0; c < b.cols(); ++c) {
      x.set_col(c, solve(b.col(c)));
    }
    return x;
  }

  [[nodiscard]] Matrix<T> inverse() const {
    return solve(Matrix<T>::identity(size()));
  }

  [[nodiscard]] T determinant() const {
    if (singular_) return T{};
    T det = static_cast<T>(sign_);
    for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
    return det;
  }

 private:
  Matrix<T> lu_;
  std::vector<std::size_t> perm_;
  int sign_;
  bool singular_ = false;
};

/// Convenience one-shot solve of A x = b.
template <typename T>
Vector<T> solve(const Matrix<T>& a, const Vector<T>& b) {
  return LuDecomposition<T>(a).solve(b);
}

/// Convenience inverse; throws std::domain_error if singular.
template <typename T>
Matrix<T> inverse(const Matrix<T>& a) {
  return LuDecomposition<T>(a).inverse();
}

/// Determinant via LU; zero for singular matrices.
template <typename T>
T determinant(const Matrix<T>& a) {
  return LuDecomposition<T>(a).determinant();
}

}  // namespace safe::linalg
