#include "telemetry/telemetry.hpp"

#include "runtime/sync.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <ostream>
#include <unordered_map>
#include <utility>

namespace safe::telemetry {

namespace {

// --- runtime switches ------------------------------------------------------

std::atomic<bool> g_metrics_enabled{false};
std::atomic<bool> g_tracing_enabled{false};
std::atomic<std::uint8_t> g_trace_detail{
    static_cast<std::uint8_t>(TraceDetail::kCoarse)};

// --- registry capacities ---------------------------------------------------
//
// Fixed capacities keep every per-thread shard a flat, pre-sized block of
// relaxed atomics: recording indexes an array, never allocates, and never
// takes a lock. Registration past a cap returns an invalid id (recording
// becomes a no-op) rather than failing.

constexpr std::size_t kMaxCounters = 128;
constexpr std::size_t kMaxGauges = 64;
constexpr std::size_t kMaxHistograms = 64;

/// Per-thread trace buffer cap; overflow increments the shard's dropped
/// count so a truncated export is never silent.
constexpr std::size_t kMaxTraceEventsPerThread = 1 << 16;

// --- event & shard storage -------------------------------------------------

struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  char phase = 'X';  ///< 'X' complete span, 'i' instant.
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::string args_json;  ///< "" = no args object.
};

/// One thread's slice of every metric. Only the owning thread writes the
/// slots (relaxed stores); collectors read them live (relaxed loads), which
/// is race-free by the single-writer rule. The trace buffer is the one
/// mutex-guarded member: span emission is already opt-in and orders of
/// magnitude rarer than counter bumps.
struct Shard {
  std::atomic<std::uint64_t> counters[kMaxCounters] = {};

  struct GaugeSlot {
    std::atomic<std::uint64_t> bits{0};  ///< double payload, bit-cast.
    std::atomic<std::uint64_t> seen{0};
  };
  GaugeSlot gauges[kMaxGauges] = {};

  struct HistSlot {
    std::atomic<std::uint64_t> buckets[kMaxHistogramBuckets + 1] = {};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> min_bits{0};
    std::atomic<std::uint64_t> max_bits{0};
  };
  HistSlot hists[kMaxHistograms] = {};

  runtime::Mutex trace_mutex;
  std::vector<TraceEvent> events SAFE_GUARDED_BY(trace_mutex);
  std::uint64_t dropped_events SAFE_GUARDED_BY(trace_mutex) = 0;
  std::string thread_name;
  std::uint64_t tid = 0;
};

struct HistogramRegistration {
  std::array<double, kMaxHistogramBuckets> upper_bounds = {};
  std::size_t num_bounds = 0;
};

struct Registration {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  Stability stability = Stability::kDeterministic;
  std::uint16_t index = 0;  ///< Per-kind slot index.
};

/// Global registry: name -> id map plus the shard roster. Shards are owned
/// here and never destroyed before process exit, so a retired thread's
/// counts stay visible to counter_value() and the final merge, and the
/// thread_local pointer into the roster stays valid for the thread's life.
struct Registry {
  runtime::Mutex mutex;
  std::unordered_map<std::string, MetricId> by_name SAFE_GUARDED_BY(mutex);
  std::vector<Registration> registrations
      SAFE_GUARDED_BY(mutex);  ///< In registration order.
  std::size_t num_counters SAFE_GUARDED_BY(mutex) = 0;
  std::size_t num_gauges SAFE_GUARDED_BY(mutex) = 0;
  std::size_t num_histograms SAFE_GUARDED_BY(mutex) = 0;
  /// Fixed array, filled before the histogram id is published, immutable
  /// afterwards — so record() reads bounds with no lock (hot path).
  std::array<HistogramRegistration, kMaxHistograms> histogram_bounds = {};
  std::vector<std::unique_ptr<Shard>> shards;
  std::uint64_t next_tid = 1;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

Shard& local_shard() {
  thread_local Shard* shard = [] {
    Registry& r = registry();
    runtime::MutexLock guard(r.mutex);
    r.shards.push_back(std::make_unique<Shard>());
    r.shards.back()->tid = r.next_tid++;
    return r.shards.back().get();
  }();
  return *shard;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

MetricId register_metric(std::string_view name, MetricKind kind,
                         Stability stability,
                         std::vector<double> upper_bounds = {}) {
  Registry& r = registry();
  runtime::MutexLock guard(r.mutex);
  const std::string key(name);
  if (const auto it = r.by_name.find(key); it != r.by_name.end()) {
    // Idempotent on (name, kind); a kind clash must not alias another
    // metric's storage, so it degrades to a recording no-op.
    if (it->second.kind != kind) return MetricId{kind, MetricId::kInvalidIndex};
    return it->second;
  }

  MetricId id{kind, MetricId::kInvalidIndex};
  switch (kind) {
    case MetricKind::kCounter:
      if (r.num_counters < kMaxCounters) {
        id.index = static_cast<std::uint16_t>(r.num_counters++);
      }
      break;
    case MetricKind::kGaugeMax:
      if (r.num_gauges < kMaxGauges) {
        id.index = static_cast<std::uint16_t>(r.num_gauges++);
      }
      break;
    case MetricKind::kHistogram:
      if (r.num_histograms < kMaxHistograms) {
        id.index = static_cast<std::uint16_t>(r.num_histograms++);
        HistogramRegistration& bounds = r.histogram_bounds[id.index];
        bounds.num_bounds = std::min(upper_bounds.size(), kMaxHistogramBuckets);
        std::copy_n(upper_bounds.begin(), bounds.num_bounds,
                    bounds.upper_bounds.begin());
      }
      break;
  }
  if (!id.valid()) return id;  // capacity exhausted: do not poison the map
  r.by_name.emplace(key, id);
  r.registrations.push_back(Registration{key, kind, stability, id.index});
  return id;
}

void append_trace_event(TraceEvent event) {
  Shard& shard = local_shard();
  runtime::MutexLock guard(shard.trace_mutex);
  if (shard.events.size() >= kMaxTraceEventsPerThread) {
    ++shard.dropped_events;
    return;
  }
  shard.events.push_back(std::move(event));
}

// --- canonical JSON fragments ----------------------------------------------

/// Shortest round-trip decimal form (std::to_chars); non-finite doubles
/// serialize as null so every emitted line stays parseable JSON.
void append_double_json(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, result.ptr);
}

void append_escaped_json(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGaugeMax: return "gauge_max";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

const char* stability_name(Stability stability) {
  return stability == Stability::kDeterministic ? "deterministic"
                                                : "scheduling_dependent";
}

}  // namespace

// --- runtime switches ------------------------------------------------------

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

bool tracing_enabled() noexcept {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

TraceDetail trace_detail() noexcept {
  return static_cast<TraceDetail>(
      g_trace_detail.load(std::memory_order_relaxed));
}

void set_metrics_enabled(bool on) noexcept {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void set_tracing_enabled(bool on) noexcept {
  g_tracing_enabled.store(on, std::memory_order_relaxed);
}

void set_trace_detail(TraceDetail detail) noexcept {
  g_trace_detail.store(static_cast<std::uint8_t>(detail),
                       std::memory_order_relaxed);
}

// --- clock -----------------------------------------------------------------

std::uint64_t now_ns() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

// --- registration ----------------------------------------------------------

MetricId counter(std::string_view name, Stability stability) {
  return register_metric(name, MetricKind::kCounter, stability);
}

MetricId gauge_max(std::string_view name, Stability stability) {
  return register_metric(name, MetricKind::kGaugeMax, stability);
}

MetricId histogram(std::string_view name, std::vector<double> upper_bounds,
                   Stability stability) {
  if (!std::is_sorted(upper_bounds.begin(), upper_bounds.end())) {
    return MetricId{MetricKind::kHistogram, MetricId::kInvalidIndex};
  }
  return register_metric(name, MetricKind::kHistogram, stability,
                         std::move(upper_bounds));
}

MetricId duration_histogram(std::string_view name) {
  // Exponential nanosecond buckets, 1 us .. 10 s (decades x {1, 3}).
  static const std::vector<double> kBounds = {
      1e3,  3e3,  1e4,  3e4,  1e5,  3e5,  1e6,  3e6,
      1e7,  3e7,  1e8,  3e8,  1e9,  3e9,  1e10};
  return register_metric(name, MetricKind::kHistogram,
                         Stability::kSchedulingDependent, kBounds);
}

// --- recording (hot path) --------------------------------------------------

void add(MetricId id, std::uint64_t delta) noexcept {
  if (!metrics_enabled()) return;
  if (!id.valid() || id.kind != MetricKind::kCounter ||
      id.index >= kMaxCounters) {
    return;
  }
  local_shard().counters[id.index].fetch_add(delta, std::memory_order_relaxed);
}

void gauge_update_max(MetricId id, double value) noexcept {
  if (!metrics_enabled()) return;
  if (!id.valid() || id.kind != MetricKind::kGaugeMax ||
      id.index >= kMaxGauges) {
    return;
  }
  Shard::GaugeSlot& slot = local_shard().gauges[id.index];
  // Single-writer slot: plain load/store is enough; no CAS loop needed.
  if (slot.seen.load(std::memory_order_relaxed) == 0) {
    slot.bits.store(double_bits(value), std::memory_order_relaxed);
    slot.seen.store(1, std::memory_order_relaxed);
    return;
  }
  const double current = bits_double(slot.bits.load(std::memory_order_relaxed));
  // `value > current` (not std::max) keeps the first value when a NaN shows
  // up later; a NaN first value is replaced by any finite successor.
  if (value > current || std::isnan(current)) {
    slot.bits.store(double_bits(value), std::memory_order_relaxed);
  }
}

void record(MetricId id, double value) noexcept {
  if (!metrics_enabled()) return;
  if (!id.valid() || id.kind != MetricKind::kHistogram ||
      id.index >= kMaxHistograms) {
    return;
  }
  // A valid id is only ever observed after its bounds were written under the
  // registry lock, and bounds never change afterwards: lock-free read.
  const HistogramRegistration& bounds = registry().histogram_bounds[id.index];
  std::size_t bucket = bounds.num_bounds;  // overflow bucket by default
  for (std::size_t i = 0; i < bounds.num_bounds; ++i) {
    if (value <= bounds.upper_bounds[i]) {
      bucket = i;
      break;
    }
  }
  Shard::HistSlot& slot = local_shard().hists[id.index];
  slot.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t n = slot.count.load(std::memory_order_relaxed);
  if (n == 0) {
    slot.min_bits.store(double_bits(value), std::memory_order_relaxed);
    slot.max_bits.store(double_bits(value), std::memory_order_relaxed);
  } else {
    const double lo = bits_double(slot.min_bits.load(std::memory_order_relaxed));
    const double hi = bits_double(slot.max_bits.load(std::memory_order_relaxed));
    if (value < lo) {
      slot.min_bits.store(double_bits(value), std::memory_order_relaxed);
    }
    if (value > hi) {
      slot.max_bits.store(double_bits(value), std::memory_order_relaxed);
    }
  }
  slot.count.store(n + 1, std::memory_order_relaxed);
}

std::uint64_t counter_value(MetricId id) {
  if (!id.valid() || id.kind != MetricKind::kCounter ||
      id.index >= kMaxCounters) {
    return 0;
  }
  Registry& r = registry();
  runtime::MutexLock guard(r.mutex);
  std::uint64_t sum = 0;
  for (const auto& shard : r.shards) {
    sum += shard->counters[id.index].load(std::memory_order_relaxed);
  }
  return sum;
}

void set_thread_name(std::string name) {
  Shard& shard = local_shard();
  runtime::MutexLock guard(shard.trace_mutex);
  shard.thread_name = std::move(name);
}

// --- trace events ----------------------------------------------------------

TraceArgs& TraceArgs::integer(const char* key, std::int64_t value) {
  json_ += json_.empty() ? '{' : ',';
  append_escaped_json(json_, key);
  json_ += ':';
  json_ += std::to_string(value);
  return *this;
}

TraceArgs& TraceArgs::text(const char* key, std::string_view value) {
  json_ += json_.empty() ? '{' : ',';
  append_escaped_json(json_, key);
  json_ += ':';
  append_escaped_json(json_, value);
  return *this;
}

std::string TraceArgs::take() {
  if (!json_.empty()) json_ += '}';
  return std::move(json_);
}

void instant_event(const char* name, const char* category,
                   std::string args_json, TraceDetail detail) {
  if (!tracing_enabled() || detail > trace_detail()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'i';
  event.ts_ns = now_ns();
  event.args_json = std::move(args_json);
  append_trace_event(std::move(event));
}

ScopedTimer::ScopedTimer(const char* name, const char* category, MetricId hist,
                         TraceDetail detail) noexcept
    : name_(name), category_(category), hist_(hist) {
  timing_ = hist_.valid() && metrics_enabled();
  tracing_ = tracing_enabled() && detail <= trace_detail();
  if (timing_ || tracing_) start_ns_ = now_ns();
}

void ScopedTimer::arg(const char* key, std::int64_t value) noexcept {
  if (arg_key_[0] == nullptr) {
    arg_key_[0] = key;
    arg_value_[0] = value;
  } else if (arg_key_[1] == nullptr) {
    arg_key_[1] = key;
    arg_value_[1] = value;
  }
}

ScopedTimer::~ScopedTimer() {
  if (!timing_ && !tracing_) return;
  const std::uint64_t end_ns = now_ns();
  const std::uint64_t dur_ns = end_ns - start_ns_;
  if (timing_) record(hist_, static_cast<double>(dur_ns));
  if (tracing_) {
    TraceEvent event;
    event.name = name_;
    event.category = category_;
    event.phase = 'X';
    event.ts_ns = start_ns_;
    event.dur_ns = dur_ns;
    if (arg_key_[0] != nullptr) {
      TraceArgs args;
      args.integer(arg_key_[0], arg_value_[0]);
      if (arg_key_[1] != nullptr) args.integer(arg_key_[1], arg_value_[1]);
      event.args_json = args.take();
    }
    append_trace_event(std::move(event));
  }
}

// --- collection & export ---------------------------------------------------

std::vector<MetricSnapshot> MetricsSnapshot::deterministic() const {
  std::vector<MetricSnapshot> out;
  for (const MetricSnapshot& m : metrics) {
    if (m.stability == Stability::kDeterministic) out.push_back(m);
  }
  return out;
}

MetricsSnapshot collect_metrics() {
  Registry& r = registry();
  runtime::MutexLock guard(r.mutex);

  MetricsSnapshot snapshot;
  snapshot.metrics.reserve(r.registrations.size());
  for (const Registration& reg : r.registrations) {
    MetricSnapshot m;
    m.name = reg.name;
    m.kind = reg.kind;
    m.stability = reg.stability;
    switch (reg.kind) {
      case MetricKind::kCounter:
        for (const auto& shard : r.shards) {
          m.value += shard->counters[reg.index].load(std::memory_order_relaxed);
        }
        break;
      case MetricKind::kGaugeMax:
        for (const auto& shard : r.shards) {
          const Shard::GaugeSlot& slot = shard->gauges[reg.index];
          if (slot.seen.load(std::memory_order_relaxed) == 0) continue;
          const double v =
              bits_double(slot.bits.load(std::memory_order_relaxed));
          if (!m.gauge_seen || v > m.gauge) m.gauge = v;
          m.gauge_seen = true;
        }
        break;
      case MetricKind::kHistogram: {
        const HistogramRegistration& bounds = r.histogram_bounds[reg.index];
        m.hist.upper_bounds.assign(
            bounds.upper_bounds.begin(),
            bounds.upper_bounds.begin() +
                static_cast<std::ptrdiff_t>(bounds.num_bounds));
        m.hist.bucket_counts.assign(bounds.num_bounds + 1, 0);
        for (const auto& shard : r.shards) {
          const Shard::HistSlot& slot = shard->hists[reg.index];
          const std::uint64_t n = slot.count.load(std::memory_order_relaxed);
          if (n == 0) continue;
          for (std::size_t b = 0; b <= bounds.num_bounds; ++b) {
            m.hist.bucket_counts[b] +=
                slot.buckets[b].load(std::memory_order_relaxed);
          }
          const double lo =
              bits_double(slot.min_bits.load(std::memory_order_relaxed));
          const double hi =
              bits_double(slot.max_bits.load(std::memory_order_relaxed));
          if (m.hist.count == 0 || lo < m.hist.min) m.hist.min = lo;
          if (m.hist.count == 0 || hi > m.hist.max) m.hist.max = hi;
          m.hist.count += n;
        }
        break;
      }
    }
    snapshot.metrics.push_back(std::move(m));
  }
  for (const auto& shard : r.shards) {
    runtime::MutexLock trace_guard(shard->trace_mutex);
    snapshot.dropped_trace_events += shard->dropped_events;
  }
  std::sort(snapshot.metrics.begin(), snapshot.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return snapshot;
}

std::string to_jsonl(const MetricsSnapshot& snapshot, bool deterministic_only) {
  std::string out;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (deterministic_only && m.stability != Stability::kDeterministic) {
      continue;
    }
    out += "{\"name\":";
    append_escaped_json(out, m.name);
    out += ",\"kind\":\"";
    out += kind_name(m.kind);
    out += "\",\"stability\":\"";
    out += stability_name(m.stability);
    out += '"';
    switch (m.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":";
        out += std::to_string(m.value);
        break;
      case MetricKind::kGaugeMax:
        out += ",\"value\":";
        if (m.gauge_seen) {
          append_double_json(out, m.gauge);
        } else {
          out += "null";
        }
        break;
      case MetricKind::kHistogram: {
        out += ",\"count\":";
        out += std::to_string(m.hist.count);
        out += ",\"min\":";
        if (m.hist.count > 0) {
          append_double_json(out, m.hist.min);
        } else {
          out += "null";
        }
        out += ",\"max\":";
        if (m.hist.count > 0) {
          append_double_json(out, m.hist.max);
        } else {
          out += "null";
        }
        out += ",\"le\":[";
        for (std::size_t i = 0; i < m.hist.upper_bounds.size(); ++i) {
          if (i > 0) out += ',';
          append_double_json(out, m.hist.upper_bounds[i]);
        }
        if (!m.hist.upper_bounds.empty()) out += ',';
        out += "null],\"counts\":[";  // trailing null = the +inf bucket
        for (std::size_t i = 0; i < m.hist.bucket_counts.size(); ++i) {
          if (i > 0) out += ',';
          out += std::to_string(m.hist.bucket_counts[i]);
        }
        out += ']';
        break;
      }
    }
    out += "}\n";
  }
  return out;
}

void write_metrics_jsonl(std::ostream& out) {
  out << to_jsonl(collect_metrics());
  out.flush();
}

void write_chrome_trace(std::ostream& out) {
  struct FlatEvent {
    TraceEvent event;
    std::uint64_t tid = 0;
    std::uint64_t seq = 0;  ///< Tie-break so the sort is total.
  };
  std::vector<FlatEvent> events;
  std::vector<std::pair<std::uint64_t, std::string>> thread_names;
  std::uint64_t dropped = 0;
  {
    Registry& r = registry();
    runtime::MutexLock guard(r.mutex);
    std::uint64_t seq = 0;
    for (const auto& shard : r.shards) {
      runtime::MutexLock trace_guard(shard->trace_mutex);
      if (!shard->thread_name.empty()) {
        thread_names.emplace_back(shard->tid, shard->thread_name);
      }
      dropped += shard->dropped_events;
      for (const TraceEvent& event : shard->events) {
        events.push_back(FlatEvent{event, shard->tid, seq++});
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FlatEvent& a, const FlatEvent& b) {
              if (a.event.ts_ns != b.event.ts_ns) {
                return a.event.ts_ns < b.event.ts_ns;
              }
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.seq < b.seq;
            });

  std::string json;
  json.reserve(events.size() * 96 + 256);
  json += "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) json += ',';
    first = false;
    json += '\n';
  };
  for (const auto& [tid, name] : thread_names) {
    comma();
    json += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":";
    json += std::to_string(tid);
    json += ",\"args\":{\"name\":";
    append_escaped_json(json, name);
    json += "}}";
  }
  const auto append_us = [&json](std::uint64_t ns) {
    // Microsecond timestamps with nanosecond precision, decimal-exact.
    json += std::to_string(ns / 1000);
    json += '.';
    char frac[4];
    std::snprintf(frac, sizeof(frac), "%03u",
                  static_cast<unsigned>(ns % 1000));
    json += frac;
  };
  for (const FlatEvent& flat : events) {
    comma();
    json += "{\"ph\":\"";
    json += flat.event.phase;
    json += "\",\"name\":";
    append_escaped_json(json, flat.event.name);
    json += ",\"cat\":";
    append_escaped_json(json, flat.event.category);
    json += ",\"pid\":1,\"tid\":";
    json += std::to_string(flat.tid);
    json += ",\"ts\":";
    append_us(flat.event.ts_ns);
    if (flat.event.phase == 'X') {
      json += ",\"dur\":";
      append_us(flat.event.dur_ns);
    } else if (flat.event.phase == 'i') {
      json += ",\"s\":\"t\"";  // thread-scoped instant
    }
    if (!flat.event.args_json.empty()) {
      json += ",\"args\":";
      json += flat.event.args_json;
    }
    json += '}';
  }
  json += "\n],\"displayTimeUnit\":\"ms\"";
  if (dropped > 0) {
    json += ",\"otherData\":{\"dropped_trace_events\":\"";
    json += std::to_string(dropped);
    json += "\"}";
  }
  json += "}\n";
  out << json;
  out.flush();
}

void reset_for_testing() {
  Registry& r = registry();
  runtime::MutexLock guard(r.mutex);
  for (const auto& shard : r.shards) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& g : shard->gauges) {
      g.bits.store(0, std::memory_order_relaxed);
      g.seen.store(0, std::memory_order_relaxed);
    }
    for (auto& h : shard->hists) {
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
      h.count.store(0, std::memory_order_relaxed);
      h.min_bits.store(0, std::memory_order_relaxed);
      h.max_bits.store(0, std::memory_order_relaxed);
    }
    runtime::MutexLock trace_guard(shard->trace_mutex);
    shard->events.clear();
    shard->dropped_events = 0;
  }
}

}  // namespace safe::telemetry
