// Low-overhead telemetry: counters, gauges, histograms, and trace spans.
//
// Design contract (DESIGN.md §11):
//   * Runtime-off by default. Every recording call starts with one relaxed
//     atomic load; a disabled build path records nothing, allocates nothing,
//     and never reads the clock, so benches see no measurable overhead.
//   * Recording never perturbs results. Telemetry only observes — it touches
//     no RNG stream and no simulation state, so figure benches and campaign
//     JSONL output are bit-identical with telemetry on or off.
//   * Lock-free per-thread shards. Each thread owns a fixed-capacity shard of
//     relaxed-atomic slots; only the owner writes, so collectors can read
//     live values (the campaign_cli --progress path) without data races.
//   * Deterministic merge. Shards merge with commutative, order-independent
//     reductions only: integer sums for counters and bucket counts, exact
//     min/max for histogram extremes. No floating-point accumulation whose
//     result depends on thread retirement order is ever exposed, which is
//     what makes merged metrics identical at --jobs 1 and --jobs N.
//   * Stability tags. Work metrics (how many samples, detections, rejections)
//     are registered kDeterministic: their merged values depend only on the
//     campaign spec. Timing and pool metrics (durations, steals, idle time)
//     are kSchedulingDependent and excluded from determinism comparisons.
//
// Trace events export as Chrome trace_event JSON ("X" complete spans and "i"
// instants), loadable in chrome://tracing or Perfetto. Span names and
// categories must be string literals (they are stored as const char*).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace safe::telemetry {

// --- runtime switches ------------------------------------------------------

/// Trace-event granularity: kCoarse records one span per trial plus state
/// transitions; kFine adds the per-sample pipeline stage spans (radar
/// synthesize/estimate, pipeline process), which are ~1000x more numerous.
enum class TraceDetail : std::uint8_t { kCoarse = 0, kFine = 1 };

[[nodiscard]] bool metrics_enabled() noexcept;
[[nodiscard]] bool tracing_enabled() noexcept;
[[nodiscard]] TraceDetail trace_detail() noexcept;
void set_metrics_enabled(bool on) noexcept;
void set_tracing_enabled(bool on) noexcept;
void set_trace_detail(TraceDetail detail) noexcept;

// --- clock -----------------------------------------------------------------

/// Monotonic nanoseconds since the first call (steady clock). This is the
/// one clock path shared by spans, pool idle accounting, and bench timing.
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Minimal monotonic stopwatch over now_ns(); bench/bench_common.hpp builds
/// its min/median/max timing on this so benches and production spans share
/// one clock.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_ns_(now_ns()) {}
  void restart() noexcept { start_ns_ = now_ns(); }
  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept {
    return now_ns() - start_ns_;
  }
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_ns_;
};

// --- metric registration ---------------------------------------------------

enum class MetricKind : std::uint8_t { kCounter, kGaugeMax, kHistogram };

/// Whether a metric's merged value is a pure function of the workload
/// (kDeterministic) or may vary with scheduling, thread count, and wall
/// clock (kSchedulingDependent). Only deterministic metrics participate in
/// the --jobs invariance contract.
enum class Stability : std::uint8_t { kDeterministic, kSchedulingDependent };

/// Opaque handle to a registered metric. Invalid ids (registry at capacity)
/// make every recording call a no-op rather than an error.
struct MetricId {
  static constexpr std::uint16_t kInvalidIndex = 0xffff;
  MetricKind kind = MetricKind::kCounter;
  std::uint16_t index = kInvalidIndex;
  [[nodiscard]] bool valid() const noexcept { return index != kInvalidIndex; }
};

/// Registers (or looks up) a metric by name. Registration is idempotent —
/// the same name always returns the same id — and cheap enough for the
/// `static const MetricId` call-site idiom. A name already registered with a
/// different kind returns an invalid id instead of aliasing storage.
MetricId counter(std::string_view name,
                 Stability stability = Stability::kDeterministic);
MetricId gauge_max(std::string_view name,
                   Stability stability = Stability::kSchedulingDependent);
/// `upper_bounds` must be ascending; values land in the first bucket whose
/// bound is >= value, with an implicit +inf overflow bucket. At most
/// kMaxHistogramBuckets bounds are kept.
MetricId histogram(std::string_view name, std::vector<double> upper_bounds,
                   Stability stability = Stability::kDeterministic);
/// Histogram with exponential nanosecond buckets (1us..10s), registered
/// kSchedulingDependent — the flavour every duration span uses.
MetricId duration_histogram(std::string_view name);

inline constexpr std::size_t kMaxHistogramBuckets = 16;

// --- recording (hot path) --------------------------------------------------

void add(MetricId id, std::uint64_t delta = 1) noexcept;
void gauge_update_max(MetricId id, double value) noexcept;
void record(MetricId id, double value) noexcept;

/// Live sum of a counter across every thread (including retired ones);
/// powers campaign_cli --progress. Safe to call concurrently with recording.
[[nodiscard]] std::uint64_t counter_value(MetricId id);

/// Names this thread in exported traces (thread_name metadata event).
void set_thread_name(std::string name);

// --- trace events ----------------------------------------------------------

/// Small JSON object builder for span/instant arguments. Keys must be string
/// literals; string values are escaped on the way in.
class TraceArgs {
 public:
  TraceArgs& integer(const char* key, std::int64_t value);
  TraceArgs& text(const char* key, std::string_view value);
  /// Returns the finished JSON object ("" when nothing was added).
  [[nodiscard]] std::string take();

 private:
  std::string json_;
};

/// Emits a Chrome "i" (instant) event when tracing is enabled at `detail`.
void instant_event(const char* name, const char* category,
                   std::string args_json = {},
                   TraceDetail detail = TraceDetail::kCoarse);

/// RAII span: on destruction records the elapsed time into `hist` (when
/// metrics are on and the id is valid) and emits a Chrome "X" complete event
/// (when tracing is on at `detail`). When both subsystems are off the
/// constructor never reads the clock.
class ScopedTimer {
 public:
  ScopedTimer(const char* name, const char* category, MetricId hist = {},
              TraceDetail detail = TraceDetail::kCoarse) noexcept;
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Attaches up to two integer arguments to the trace event.
  void arg(const char* key, std::int64_t value) noexcept;

 private:
  const char* name_;
  const char* category_;
  MetricId hist_;
  std::uint64_t start_ns_ = 0;
  const char* arg_key_[2] = {nullptr, nullptr};
  std::int64_t arg_value_[2] = {0, 0};
  bool timing_ = false;
  bool tracing_ = false;
};

// --- collection & export ---------------------------------------------------

struct HistogramSnapshot {
  std::vector<double> upper_bounds;        ///< ascending, implicit +inf last
  std::vector<std::uint64_t> bucket_counts;  ///< upper_bounds.size() + 1
  std::uint64_t count = 0;
  double min = 0.0;  ///< undefined when count == 0 (exported as null)
  double max = 0.0;
};

struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  Stability stability = Stability::kDeterministic;
  std::uint64_t value = 0;  ///< counters
  double gauge = 0.0;       ///< gauge_max (undefined until first update)
  bool gauge_seen = false;
  HistogramSnapshot hist;   ///< histograms
};

/// Deterministically merged view over every shard, sorted by metric name.
struct MetricsSnapshot {
  std::vector<MetricSnapshot> metrics;
  /// Trace events dropped because a thread hit its buffer cap; non-zero
  /// means the exported trace is truncated (never silently).
  std::uint64_t dropped_trace_events = 0;

  /// The jobs-invariant subset (Stability::kDeterministic only).
  [[nodiscard]] std::vector<MetricSnapshot> deterministic() const;
};

[[nodiscard]] MetricsSnapshot collect_metrics();

/// One canonical JSON line per metric, sorted by name; doubles use shortest
/// round-trip form and non-finite values serialize as null.
[[nodiscard]] std::string to_jsonl(const MetricsSnapshot& snapshot,
                                   bool deterministic_only = false);
void write_metrics_jsonl(std::ostream& out);

/// Valid Chrome trace_event JSON ({"traceEvents":[...]}): thread_name
/// metadata, "X" spans, and "i" instants, sorted by timestamp. Loadable in
/// chrome://tracing and Perfetto.
void write_chrome_trace(std::ostream& out);

/// Zeroes every metric value and clears every trace buffer while keeping
/// registrations (call-site static MetricIds stay valid). Only call while no
/// other thread is recording.
void reset_for_testing();

}  // namespace safe::telemetry
