#include "vehicle/longitudinal.hpp"

#include <stdexcept>

namespace safe::vehicle {

VehicleState step(const VehicleState& state, MetersPerSecond2 accel,
                  Seconds sample_time) {
  if (sample_time <= Seconds{0.0}) {
    throw std::invalid_argument("vehicle::step: sample time must be > 0");
  }
  VehicleState next;
  const MetersPerSecond v_unclamped =
      state.velocity_mps + accel * sample_time;
  if (v_unclamped >= MetersPerSecond{0.0}) {
    next.velocity_mps = v_unclamped;
    next.acceleration_mps2 = accel;
    next.position_m = state.position_m + state.velocity_mps * sample_time +
                      0.5 * accel * sample_time * sample_time;
  } else {
    // The vehicle stops partway through the step: advance to the stopping
    // point and hold.
    next.velocity_mps = MetersPerSecond{0.0};
    next.acceleration_mps2 = MetersPerSecond2{0.0};
    const Seconds t_stop = accel < MetersPerSecond2{0.0}
                               ? -state.velocity_mps / accel
                               : Seconds{0.0};
    next.position_m = state.position_m + state.velocity_mps * t_stop +
                      0.5 * accel * t_stop * t_stop;
  }
  return next;
}

Meters gap(const VehicleState& leader, const VehicleState& follower) {
  return leader.position_m - follower.position_m;
}

MetersPerSecond relative_velocity(const VehicleState& leader,
                                  const VehicleState& follower) {
  return leader.velocity_mps - follower.velocity_mps;
}

}  // namespace safe::vehicle
