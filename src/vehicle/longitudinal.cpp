#include "vehicle/longitudinal.hpp"

#include <algorithm>
#include <stdexcept>

namespace safe::vehicle {

VehicleState step(const VehicleState& state, double accel_mps2,
                  double sample_time_s) {
  if (sample_time_s <= 0.0) {
    throw std::invalid_argument("vehicle::step: sample time must be > 0");
  }
  VehicleState next;
  const double v_unclamped = state.velocity_mps + accel_mps2 * sample_time_s;
  if (v_unclamped >= 0.0) {
    next.velocity_mps = v_unclamped;
    next.acceleration_mps2 = accel_mps2;
    next.position_m = state.position_m + state.velocity_mps * sample_time_s +
                      0.5 * accel_mps2 * sample_time_s * sample_time_s;
  } else {
    // The vehicle stops partway through the step: advance to the stopping
    // point and hold.
    next.velocity_mps = 0.0;
    next.acceleration_mps2 = 0.0;
    const double t_stop =
        accel_mps2 < 0.0 ? -state.velocity_mps / accel_mps2 : 0.0;
    next.position_m = state.position_m + state.velocity_mps * t_stop +
                      0.5 * accel_mps2 * t_stop * t_stop;
  }
  return next;
}

double gap_m(const VehicleState& leader, const VehicleState& follower) {
  return leader.position_m - follower.position_m;
}

double relative_velocity_mps(const VehicleState& leader,
                             const VehicleState& follower) {
  return leader.velocity_mps - follower.velocity_mps;
}

}  // namespace safe::vehicle
