#include "vehicle/lateral.hpp"

#include <cmath>
#include <stdexcept>

namespace safe::vehicle {

namespace units = safe::units;

BicycleState step(const BicycleParameters& params, const BicycleState& state,
                  const BicycleInput& input, units::Seconds dt) {
  if (dt <= units::Seconds{0.0}) {
    throw std::invalid_argument("bicycle step: dt must be > 0");
  }
  if (params.wheelbase_m <= units::Meters{0.0}) {
    throw std::invalid_argument("bicycle step: wheelbase must be > 0");
  }
  const Radians steer =
      units::clamp(input.steer_rad, -params.max_steer_rad,
                   params.max_steer_rad);
  const units::MetersPerSecond2 accel =
      units::clamp(input.accel_mps2, -params.max_decel_mps2,
                   params.max_accel_mps2);

  const double dt_s = dt.value();
  const double speed = state.speed_mps.value();
  const double heading = state.heading_rad.value();

  BicycleState next;
  next.x_m = state.x_m + units::Meters{speed * std::cos(heading) * dt_s};
  next.y_m = state.y_m + units::Meters{speed * std::sin(heading) * dt_s};
  double next_heading =
      heading +
      speed / params.wheelbase_m.value() * std::tan(steer.value()) * dt_s;
  // Wrap heading into (-pi, pi] to keep downstream trig well-conditioned.
  while (next_heading > 3.14159265358979323846) {
    next_heading -= 2.0 * 3.14159265358979323846;
  }
  while (next_heading <= -3.14159265358979323846) {
    next_heading += 2.0 * 3.14159265358979323846;
  }
  next.heading_rad = Radians{next_heading};
  next.speed_mps =
      units::max(state.speed_mps + accel * dt, units::MetersPerSecond{0.0});
  return next;
}

}  // namespace safe::vehicle
