#include "vehicle/lateral.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace safe::vehicle {

BicycleState step(const BicycleParameters& params, const BicycleState& state,
                  const BicycleInput& input, double dt_s) {
  if (dt_s <= 0.0) {
    throw std::invalid_argument("bicycle step: dt must be > 0");
  }
  if (params.wheelbase_m <= 0.0) {
    throw std::invalid_argument("bicycle step: wheelbase must be > 0");
  }
  const double steer =
      std::clamp(input.steer_rad, -params.max_steer_rad, params.max_steer_rad);
  const double accel = std::clamp(input.accel_mps2, -params.max_decel_mps2,
                                  params.max_accel_mps2);

  BicycleState next;
  next.x_m = state.x_m + state.speed_mps * std::cos(state.heading_rad) * dt_s;
  next.y_m = state.y_m + state.speed_mps * std::sin(state.heading_rad) * dt_s;
  next.heading_rad = state.heading_rad +
                     state.speed_mps / params.wheelbase_m * std::tan(steer) *
                         dt_s;
  // Wrap heading into (-pi, pi] to keep downstream trig well-conditioned.
  while (next.heading_rad > 3.14159265358979323846) {
    next.heading_rad -= 2.0 * 3.14159265358979323846;
  }
  while (next.heading_rad <= -3.14159265358979323846) {
    next.heading_rad += 2.0 * 3.14159265358979323846;
  }
  next.speed_mps = std::max(state.speed_mps + accel * dt_s, 0.0);
  return next;
}

}  // namespace safe::vehicle
