// Leader-vehicle acceleration profiles for the two case-study scenarios.
#pragma once

#include <memory>
#include <string>

namespace safe::vehicle {

/// Commanded acceleration of the leader as a function of time.
class LeaderProfile {
 public:
  virtual ~LeaderProfile() = default;

  [[nodiscard]] virtual double acceleration_mps2(double time_s) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Constant acceleration (use 0 for a cruising leader).
class ConstantAccelProfile final : public LeaderProfile {
 public:
  explicit ConstantAccelProfile(double accel_mps2) : accel_(accel_mps2) {}

  [[nodiscard]] double acceleration_mps2(double) const override {
    return accel_;
  }
  [[nodiscard]] std::string name() const override { return "constant"; }

 private:
  double accel_;
};

/// Scenario (i): the leader decelerates at -0.1082 m/s^2 throughout.
class ConstantDecelProfile final : public LeaderProfile {
 public:
  explicit ConstantDecelProfile(double decel_mps2 = -0.1082);

  [[nodiscard]] double acceleration_mps2(double time_s) const override;
  [[nodiscard]] std::string name() const override { return "const-decel"; }

 private:
  double decel_;
};

/// Scenario (ii): decelerate at `decel` until `switch_time_s`, then
/// accelerate at `accel` (paper values -0.1082 and +0.012 m/s^2).
class DecelThenAccelProfile final : public LeaderProfile {
 public:
  DecelThenAccelProfile(double decel_mps2 = -0.1082,
                        double accel_mps2 = 0.012,
                        double switch_time_s = 150.0);

  [[nodiscard]] double acceleration_mps2(double time_s) const override;
  [[nodiscard]] std::string name() const override { return "decel-accel"; }

  [[nodiscard]] double switch_time_s() const { return switch_time_; }

 private:
  double decel_;
  double accel_;
  double switch_time_;
};

/// Stop-and-go traffic: sinusoidal acceleration a(t) = A sin(2 pi t / T).
/// Exercises estimators and trackers with a continuously changing trend.
class StopAndGoProfile final : public LeaderProfile {
 public:
  StopAndGoProfile(double amplitude_mps2 = 0.3, double period_s = 120.0);

  [[nodiscard]] double acceleration_mps2(double time_s) const override;
  [[nodiscard]] std::string name() const override { return "stop-and-go"; }

 private:
  double amplitude_;
  double period_;
};

}  // namespace safe::vehicle
