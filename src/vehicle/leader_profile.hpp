// Leader-vehicle acceleration profiles for the two case-study scenarios.
#pragma once

#include <memory>
#include <string>

#include "units/units.hpp"

namespace safe::vehicle {

using units::MetersPerSecond2;
using units::Seconds;

/// Commanded acceleration of the leader as a function of time.
class LeaderProfile {
 public:
  virtual ~LeaderProfile() = default;

  [[nodiscard]] virtual MetersPerSecond2 acceleration(Seconds time) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Constant acceleration (use 0 for a cruising leader).
class ConstantAccelProfile final : public LeaderProfile {
 public:
  explicit ConstantAccelProfile(MetersPerSecond2 accel) : accel_(accel) {}

  [[nodiscard]] MetersPerSecond2 acceleration(Seconds) const override {
    return accel_;
  }
  [[nodiscard]] std::string name() const override { return "constant"; }

 private:
  MetersPerSecond2 accel_;
};

/// Scenario (i): the leader decelerates at -0.1082 m/s^2 throughout.
class ConstantDecelProfile final : public LeaderProfile {
 public:
  explicit ConstantDecelProfile(
      MetersPerSecond2 decel = MetersPerSecond2{-0.1082});

  [[nodiscard]] MetersPerSecond2 acceleration(Seconds time) const override;
  [[nodiscard]] std::string name() const override { return "const-decel"; }

 private:
  MetersPerSecond2 decel_;
};

/// Scenario (ii): decelerate at `decel` until `switch_time`, then
/// accelerate at `accel` (paper values -0.1082 and +0.012 m/s^2).
class DecelThenAccelProfile final : public LeaderProfile {
 public:
  DecelThenAccelProfile(MetersPerSecond2 decel = MetersPerSecond2{-0.1082},
                        MetersPerSecond2 accel = MetersPerSecond2{0.012},
                        Seconds switch_time = Seconds{150.0});

  [[nodiscard]] MetersPerSecond2 acceleration(Seconds time) const override;
  [[nodiscard]] std::string name() const override { return "decel-accel"; }

  [[nodiscard]] Seconds switch_time() const { return switch_time_; }

 private:
  MetersPerSecond2 decel_;
  MetersPerSecond2 accel_;
  Seconds switch_time_;
};

/// Stop-and-go traffic: sinusoidal acceleration a(t) = A sin(2 pi t / T).
/// Exercises estimators and trackers with a continuously changing trend.
class StopAndGoProfile final : public LeaderProfile {
 public:
  StopAndGoProfile(MetersPerSecond2 amplitude = MetersPerSecond2{0.3},
                   Seconds period = Seconds{120.0});

  [[nodiscard]] MetersPerSecond2 acceleration(Seconds time) const override;
  [[nodiscard]] std::string name() const override { return "stop-and-go"; }

 private:
  MetersPerSecond2 amplitude_;
  Seconds period_;
};

}  // namespace safe::vehicle
