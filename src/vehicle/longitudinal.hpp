// Longitudinal vehicle kinematics (Eqs. 15 and 17).
//
//   v(k+1) = v(k) + a(k+1) T                          (Eq. 15)
//   x(k+1) = x(k) + v(k) T + a(k+1) T^2 / 2           (Eq. 17)
//
// Velocity is clamped at zero: these are road vehicles, not pendulums.
#pragma once

namespace safe::vehicle {

struct VehicleState {
  double position_m = 0.0;
  double velocity_mps = 0.0;
  double acceleration_mps2 = 0.0;
};

/// Advances one sample with commanded acceleration `accel_mps2` over
/// `sample_time_s`. Returns the new state; clamps velocity at zero (and
/// zeroes acceleration when the clamp engages mid-step).
VehicleState step(const VehicleState& state, double accel_mps2,
                  double sample_time_s);

/// Gap between a leader and a follower (positive when the leader is ahead).
double gap_m(const VehicleState& leader, const VehicleState& follower);

/// Relative velocity dv = v_L - v_F (negative when closing).
double relative_velocity_mps(const VehicleState& leader,
                             const VehicleState& follower);

}  // namespace safe::vehicle
