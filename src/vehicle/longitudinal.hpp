// Longitudinal vehicle kinematics (Eqs. 15 and 17).
//
//   v(k+1) = v(k) + a(k+1) T                          (Eq. 15)
//   x(k+1) = x(k) + v(k) T + a(k+1) T^2 / 2           (Eq. 17)
//
// Velocity is clamped at zero: these are road vehicles, not pendulums.
#pragma once

#include "units/units.hpp"

namespace safe::vehicle {

using units::Meters;
using units::MetersPerSecond;
using units::MetersPerSecond2;
using units::Seconds;

struct VehicleState {
  Meters position_m{0.0};
  MetersPerSecond velocity_mps{0.0};
  MetersPerSecond2 acceleration_mps2{0.0};
};

/// Advances one sample with commanded acceleration `accel` over
/// `sample_time`. Returns the new state; clamps velocity at zero (and
/// zeroes acceleration when the clamp engages mid-step).
VehicleState step(const VehicleState& state, MetersPerSecond2 accel,
                  Seconds sample_time);

/// Gap between a leader and a follower (positive when the leader is ahead).
Meters gap(const VehicleState& leader, const VehicleState& follower);

/// Relative velocity dv = v_L - v_F (negative when closing).
MetersPerSecond relative_velocity(const VehicleState& leader,
                                  const VehicleState& follower);

}  // namespace safe::vehicle
