#include "vehicle/leader_profile.hpp"

#include <cmath>
#include <stdexcept>

namespace safe::vehicle {

ConstantDecelProfile::ConstantDecelProfile(MetersPerSecond2 decel)
    : decel_(decel) {
  if (decel_ >= MetersPerSecond2{0.0}) {
    throw std::invalid_argument("ConstantDecelProfile: decel must be < 0");
  }
}

MetersPerSecond2 ConstantDecelProfile::acceleration(Seconds) const {
  return decel_;
}

DecelThenAccelProfile::DecelThenAccelProfile(MetersPerSecond2 decel,
                                             MetersPerSecond2 accel,
                                             Seconds switch_time)
    : decel_(decel), accel_(accel), switch_time_(switch_time) {
  if (decel_ >= MetersPerSecond2{0.0}) {
    throw std::invalid_argument("DecelThenAccelProfile: decel must be < 0");
  }
  if (accel_ <= MetersPerSecond2{0.0}) {
    throw std::invalid_argument("DecelThenAccelProfile: accel must be > 0");
  }
  if (switch_time_ <= Seconds{0.0}) {
    throw std::invalid_argument("DecelThenAccelProfile: bad switch time");
  }
}

MetersPerSecond2 DecelThenAccelProfile::acceleration(Seconds time) const {
  return time < switch_time_ ? decel_ : accel_;
}

StopAndGoProfile::StopAndGoProfile(MetersPerSecond2 amplitude, Seconds period)
    : amplitude_(amplitude), period_(period) {
  if (amplitude_ <= MetersPerSecond2{0.0} || period_ <= Seconds{0.0}) {
    throw std::invalid_argument("StopAndGoProfile: bad amplitude/period");
  }
}

MetersPerSecond2 StopAndGoProfile::acceleration(Seconds time) const {
  return amplitude_ *
         std::sin(2.0 * 3.14159265358979323846 * time.value() /
                  period_.value());
}

}  // namespace safe::vehicle
