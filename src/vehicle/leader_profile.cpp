#include "vehicle/leader_profile.hpp"

#include <cmath>
#include <stdexcept>

namespace safe::vehicle {

ConstantDecelProfile::ConstantDecelProfile(double decel_mps2)
    : decel_(decel_mps2) {
  if (decel_ >= 0.0) {
    throw std::invalid_argument("ConstantDecelProfile: decel must be < 0");
  }
}

double ConstantDecelProfile::acceleration_mps2(double) const { return decel_; }

DecelThenAccelProfile::DecelThenAccelProfile(double decel_mps2,
                                             double accel_mps2,
                                             double switch_time_s)
    : decel_(decel_mps2), accel_(accel_mps2), switch_time_(switch_time_s) {
  if (decel_ >= 0.0) {
    throw std::invalid_argument("DecelThenAccelProfile: decel must be < 0");
  }
  if (accel_ <= 0.0) {
    throw std::invalid_argument("DecelThenAccelProfile: accel must be > 0");
  }
  if (switch_time_ <= 0.0) {
    throw std::invalid_argument("DecelThenAccelProfile: bad switch time");
  }
}

double DecelThenAccelProfile::acceleration_mps2(double time_s) const {
  return time_s < switch_time_ ? decel_ : accel_;
}

StopAndGoProfile::StopAndGoProfile(double amplitude_mps2, double period_s)
    : amplitude_(amplitude_mps2), period_(period_s) {
  if (amplitude_ <= 0.0 || period_ <= 0.0) {
    throw std::invalid_argument("StopAndGoProfile: bad amplitude/period");
  }
}

double StopAndGoProfile::acceleration_mps2(double time_s) const {
  return amplitude_ *
         std::sin(2.0 * 3.14159265358979323846 * time_s / period_);
}

}  // namespace safe::vehicle
