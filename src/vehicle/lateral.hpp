// Kinematic bicycle model with lateral dynamics (the paper's stated future
// work: "extend our case study ... to include a non-linear system model with
// lateral dynamics").
//
//   x'   = v cos(psi)
//   y'   = v sin(psi)
//   psi' = v / L * tan(delta)
//   v'   = a
//
// integrated with forward Euler at the simulation sample time.
#pragma once

namespace safe::vehicle {

struct BicycleParameters {
  double wheelbase_m = 2.8;
  double max_steer_rad = 0.5;      ///< Steering actuator limit.
  double max_accel_mps2 = 3.0;
  double max_decel_mps2 = 6.0;
};

struct BicycleState {
  double x_m = 0.0;
  double y_m = 0.0;        ///< Lateral position (lane-centerline frame).
  double heading_rad = 0.0;
  double speed_mps = 0.0;
};

struct BicycleInput {
  double steer_rad = 0.0;
  double accel_mps2 = 0.0;
};

/// Advances one step; inputs are clamped to the actuator limits and speed
/// is clamped at zero. Throws std::invalid_argument for bad dt.
BicycleState step(const BicycleParameters& params, const BicycleState& state,
                  const BicycleInput& input, double dt_s);

}  // namespace safe::vehicle
