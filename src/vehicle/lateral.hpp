// Kinematic bicycle model with lateral dynamics (the paper's stated future
// work: "extend our case study ... to include a non-linear system model with
// lateral dynamics").
//
//   x'   = v cos(psi)
//   y'   = v sin(psi)
//   psi' = v / L * tan(delta)
//   v'   = a
//
// integrated with forward Euler at the simulation sample time.
#pragma once

#include "units/units.hpp"

namespace safe::vehicle {

using units::Radians;

struct BicycleParameters {
  units::Meters wheelbase_m{2.8};
  Radians max_steer_rad{0.5};  ///< Steering actuator limit.
  units::MetersPerSecond2 max_accel_mps2{3.0};
  units::MetersPerSecond2 max_decel_mps2{6.0};
};

struct BicycleState {
  units::Meters x_m{0.0};
  units::Meters y_m{0.0};  ///< Lateral position (lane-centerline frame).
  Radians heading_rad{0.0};
  units::MetersPerSecond speed_mps{0.0};
};

struct BicycleInput {
  Radians steer_rad{0.0};
  units::MetersPerSecond2 accel_mps2{0.0};
};

/// Advances one step; inputs are clamped to the actuator limits and speed
/// is clamped at zero. Throws std::invalid_argument for bad dt.
BicycleState step(const BicycleParameters& params, const BicycleState& state,
                  const BicycleInput& input, units::Seconds dt);

}  // namespace safe::vehicle
