#include "sensors/fusion_detector.hpp"

#include <cmath>

namespace safe::sensors {

FusionDetector::FusionDetector(const FusionDetectorOptions& options)
    : options_(options) {
  if (options_.disagreement_threshold_m <= 0.0) {
    throw std::invalid_argument("FusionDetector: threshold must be > 0");
  }
  if (options_.required_consecutive == 0) {
    throw std::invalid_argument(
        "FusionDetector: required_consecutive must be >= 1");
  }
}

FusionDetector::Decision FusionDetector::observe(bool a_valid,
                                                 double range_a_m,
                                                 bool b_valid,
                                                 double range_b_m) {
  Decision decision;
  if (a_valid && b_valid) {
    decision.disagreement_m = std::abs(range_a_m - range_b_m);
    decision.suspicious =
        decision.disagreement_m > options_.disagreement_threshold_m;
    if (decision.suspicious) {
      ++consecutive_;
    } else {
      consecutive_ = 0;
    }
  }
  decision.under_attack = under_attack();
  return decision;
}

void FusionDetector::reset() { consecutive_ = 0; }

}  // namespace safe::sensors
