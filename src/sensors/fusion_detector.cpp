#include "sensors/fusion_detector.hpp"

#include <cmath>

namespace safe::sensors {

namespace units = safe::units;

FusionDetector::FusionDetector(const FusionDetectorOptions& options)
    : options_(options) {
  if (options_.disagreement_threshold_m <= units::Meters{0.0}) {
    throw std::invalid_argument("FusionDetector: threshold must be > 0");
  }
  if (options_.required_consecutive == 0) {
    throw std::invalid_argument(
        "FusionDetector: required_consecutive must be >= 1");
  }
}

FusionDetector::Decision FusionDetector::observe(bool a_valid,
                                                 units::Meters range_a,
                                                 bool b_valid,
                                                 units::Meters range_b) {
  Decision decision;
  if (a_valid && b_valid) {
    decision.disagreement_m =
        units::Meters{std::abs((range_a - range_b).value())};
    decision.suspicious =
        decision.disagreement_m > options_.disagreement_threshold_m;
    if (decision.suspicious) {
      ++consecutive_;
    } else {
      consecutive_ = 0;
    }
  }
  decision.under_attack = under_attack();
  return decision;
}

void FusionDetector::reset() { consecutive_ = 0; }

}  // namespace safe::sensors
