// Redundancy-based attack detection (the related-work baseline the paper
// argues against: Park et al. [8] and classic sensor-fusion schemes detect
// attacks by cross-checking redundant sensors).
//
// Two independent range sensors watch the same target; a persistent
// disagreement beyond the combined noise budget raises an alarm. Strengths
// and weaknesses relative to CRA fall out of the model directly:
//   + no transmitter modification, detects a one-sensor spoof immediately
//   - needs (and pays for) a second sensor
//   - blind when the attacker corrupts both channels consistently
//   - threshold-tuned: noise causes false alarms near the margin.
#pragma once

#include <cstddef>
#include <stdexcept>

#include "units/units.hpp"

namespace safe::sensors {

struct FusionDetectorOptions {
  /// Disagreement beyond which a sample counts as suspicious.
  units::Meters disagreement_threshold_m{2.0};
  /// Consecutive suspicious samples before declaring an attack.
  std::size_t required_consecutive = 2;
};

class FusionDetector {
 public:
  explicit FusionDetector(const FusionDetectorOptions& options = {});

  struct Decision {
    units::Meters disagreement_m{0.0};
    bool suspicious = false;
    bool under_attack = false;
  };

  /// Feeds one pair of simultaneous range measurements. Samples where
  /// either sensor saw nothing are skipped (no evidence either way).
  Decision observe(bool a_valid, units::Meters range_a, bool b_valid,
                   units::Meters range_b);

  [[nodiscard]] bool under_attack() const {
    return consecutive_ >= options_.required_consecutive;
  }

  void reset();

 private:
  FusionDetectorOptions options_;
  std::size_t consecutive_ = 0;
};

}  // namespace safe::sensors
