#include "sensors/tof_sensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace safe::sensors {

TofSensorParameters lidar_parameters() {
  TofSensorParameters p;
  p.name = "lidar";
  p.propagation_speed_mps = units::kSpeedOfLight;
  p.min_range_m = Meters{0.5};
  p.max_range_m = Meters{150.0};
  p.tx_power_w = 75.0;          // peak pulse power
  p.link_gain = 1.0e-5;         // optics + reflectivity + aperture
  p.link_exponent = 2.0;        // photodetector sees d^-2 for extended targets
  p.noise_floor_w = 1.0e-9;     // ambient + shot noise
  p.detection_snr = 8.0;
  p.range_noise_m = Meters{0.03};
  p.velocity_noise_mps = MetersPerSecond{0.15};
  return p;
}

TofSensorParameters ultrasonic_parameters() {
  TofSensorParameters p;
  p.name = "ultrasonic";
  p.propagation_speed_mps = MetersPerSecond{343.0};
  p.min_range_m = Meters{0.2};
  p.max_range_m = Meters{5.5};
  p.tx_power_w = 0.02;
  p.link_gain = 1.0e-4;
  p.link_exponent = 4.0;        // diffuse acoustic scattering
  p.noise_floor_w = 1.0e-10;
  p.detection_snr = 6.0;
  p.range_noise_m = Meters{0.01};
  p.velocity_noise_mps = MetersPerSecond{0.05};
  return p;
}

double tof_received_power_w(const TofSensorParameters& params,
                            Meters distance) {
  if (distance <= Meters{0.0}) {
    throw std::invalid_argument("tof_received_power_w: distance must be > 0");
  }
  return params.tx_power_w * params.link_gain /
         std::pow(distance.value(), params.link_exponent);
}

TofSensor::TofSensor(TofSensorParameters params, std::uint64_t seed)
    : params_(std::move(params)),
      range_noise_(0.0, params_.range_noise_m.value(), seed),
      velocity_noise_(0.0, params_.velocity_noise_mps.value(),
                      seed ^ 0x9E3779B97F4A7C15ull),
      power_noise_(1.0, 0.1, seed ^ 0xD1B54A32D192ED03ull) {
  if (params_.propagation_speed_mps <= MetersPerSecond{0.0} ||
      params_.tx_power_w <= 0.0) {
    throw std::invalid_argument("TofSensor: non-physical parameters");
  }
  if (params_.max_range_m <= params_.min_range_m) {
    throw std::invalid_argument("TofSensor: bad range window");
  }
  if (params_.noise_floor_w <= 0.0 || params_.detection_snr <= 0.0) {
    throw std::invalid_argument("TofSensor: bad noise model");
  }
}

TofMeasurement TofSensor::measure(const radar::EchoScene& scene) {
  TofMeasurement m;
  const double noise = std::max(scene.noise_power_w, params_.noise_floor_w) *
                       std::abs(power_noise_.sample());
  m.rx_power_w = noise;
  m.power_alarm = noise > 10.0 * params_.noise_floor_w;

  // Strongest in-window echo wins the threshold race (first-return sensors
  // would take the nearest; strongest matches the capture behaviour of
  // envelope detectors and keeps spoof-overpowering semantics).
  const radar::EchoComponent* best = nullptr;
  double best_power = 0.0;
  for (const auto& echo : scene.echoes) {
    if (echo.distance_m < params_.min_range_m ||
        echo.distance_m > params_.max_range_m) {
      continue;
    }
    const double power = echo.power_w > 0.0
                             ? echo.power_w
                             : tof_received_power_w(params_, echo.distance_m);
    m.rx_power_w += power;
    if (power > best_power) {
      best_power = power;
      best = &echo;
    }
  }

  if (best != nullptr &&
      best_power > params_.detection_snr * noise) {
    m.target_detected = true;
    m.distance_m =
        units::clamp(best->distance_m + Meters{range_noise_.sample()},
                     params_.min_range_m, params_.max_range_m);
    m.range_rate_mps =
        best->range_rate_mps + MetersPerSecond{velocity_noise_.sample()};
  }
  return m;
}

}  // namespace safe::sensors
