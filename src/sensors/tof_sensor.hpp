// Generic pulsed time-of-flight active sensor (paper Section 5.2: CRA
// "considers sensors which are active, e.g. radar, ultrasonic, lidar").
//
// Unlike the FMCW radar (which measures range through beat frequencies), a
// pulsed ToF sensor emits a pulse and thresholds the returned echo envelope;
// range = propagation_speed * delay / 2. The same CRA contract holds: when
// the probe is suppressed the receiver must stay silent, so jammers and
// replayers reveal themselves at challenge slots.
//
// The model is parameterized so one implementation covers both the
// ultrasonic parking sensor and the pulsed automotive lidar profiles below.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "radar/echo_scene.hpp"
#include "sim/noise.hpp"
#include "units/units.hpp"

namespace safe::sensors {

using units::Meters;
using units::MetersPerSecond;

/// Physical profile of a pulsed time-of-flight sensor.
struct TofSensorParameters {
  std::string name = "tof";
  MetersPerSecond propagation_speed_mps = units::kSpeedOfLight;
  Meters min_range_m{0.2};
  Meters max_range_m{200.0};
  /// Transmitted pulse power (W) and link exponent: received power
  /// ~ tx_power * gain / d^exponent (2 for a retroreflecting lidar target,
  /// 4 for diffuse radar-like scattering).
  double tx_power_w = 1.0;
  double link_gain = 1.0e-6;
  double link_exponent = 2.0;
  /// Receiver noise floor (W) and detection threshold relative to it.
  double noise_floor_w = 1.0e-12;
  double detection_snr = 10.0;
  /// One-sigma ranging noise of the timing discriminator.
  Meters range_noise_m{0.05};
  /// One-sigma velocity noise from pulse-pair differencing.
  MetersPerSecond velocity_noise_mps{0.2};
};

/// Automotive pulsed lidar (905 nm class): centimeter ranging to ~150 m.
TofSensorParameters lidar_parameters();

/// Ultrasonic park-assist sensor: ~5 m range, centimeter-class at short
/// range, sound-speed propagation.
TofSensorParameters ultrasonic_parameters();

/// Output of one ping.
struct TofMeasurement {
  bool target_detected = false;         ///< An echo crossed the threshold.
  Meters distance_m{0.0};               ///< Range of the strongest echo.
  MetersPerSecond range_rate_mps{0.0};  ///< Pulse-pair range rate.
  double rx_power_w = 0.0;              ///< Total received power.
  bool power_alarm = false;             ///< Noise floor grossly exceeded.

  /// CRA comparison value: receiver produced a non-zero output.
  [[nodiscard]] bool nonzero_output() const {
    return target_detected || power_alarm;
  }
};

/// Received echo power for a target at `distance` under this profile.
double tof_received_power_w(const TofSensorParameters& params,
                            Meters distance);

/// Pulsed ToF receiver. Reuses radar::EchoScene as the RF/acoustic
/// environment description: component power fields are interpreted through
/// this sensor's own link budget when `power_w` is zero.
class TofSensor {
 public:
  explicit TofSensor(TofSensorParameters params, std::uint64_t seed = 1);

  TofMeasurement measure(const radar::EchoScene& scene);

  [[nodiscard]] const TofSensorParameters& parameters() const {
    return params_;
  }

 private:
  TofSensorParameters params_;
  sim::GaussianNoise range_noise_;
  sim::GaussianNoise velocity_noise_;
  sim::GaussianNoise power_noise_;
};

}  // namespace safe::sensors
