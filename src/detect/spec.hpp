// The `--detector <spec>` mini-language (DESIGN.md §15).
//
// Grammar (same family as the fault/chaos/campaign specs):
//   detector_spec := <backend> [":" key "=" value ("," key "=" value)*]
//   backend      := cra | chi2 | ar | fusion
//
// Examples:
//   "cra"                                  paper Algorithm 2 (the default)
//   "cra:clear=2"                          debounced clearance
//   "chi2:threshold=9.21,window=16"        chi-square residual gate
//   "ar:order=6,consecutive=2"             AR(k) residual classifier
//   "fusion:members=cra+chi2,quorum=1"     vote across children
//
// An empty spec selects the CRA backend, reproducing the paper exactly.
// Parsing throws std::invalid_argument only; check_detector_spec() offers
// the non-throwing form and distinguishes a grammar error from a
// well-formed spec naming an unknown backend (the serving layer maps the
// latter to ErrorCode::kUnknownDetector instead of silently running CRA).
#pragma once

#include <string>

#include "detect/backend.hpp"

namespace safe::detect {

enum class SpecStatus {
  kOk = 0,
  kMalformed,       ///< grammar error, bad value, or unknown key
  kUnknownBackend,  ///< well-formed, but the backend name is not registered
};

struct SpecCheck {
  SpecStatus status = SpecStatus::kOk;
  std::string message;  ///< empty on kOk
};

/// Validates a spec without building anything (and without throwing).
[[nodiscard]] SpecCheck check_detector_spec(const std::string& spec);

/// Builds the backend a spec names. The CRA backend (empty spec or "cra"
/// without a clear= override) uses `cra_defaults`, so callers that harden
/// the clearance debounce keep their behaviour. Throws std::invalid_argument
/// on any spec check_detector_spec() would reject.
[[nodiscard]] DetectorBackendPtr make_detector(
    const std::string& spec, const cra::DetectorOptions& cra_defaults = {});

/// One-line usage string for CLIs exposing `--detector`.
[[nodiscard]] std::string detector_spec_help();

}  // namespace safe::detect
