// Pluggable attack-detection backends (DESIGN.md §15).
//
// The paper detects sensor attacks with exactly one mechanism: the
// challenge-response authenticator (Algorithm 2). Statistical and learned
// detectors (chi-square innovation tests, residual classifiers) can flag
// attacks with no transmitter modification at all, at the cost of threshold
// tuning and stealth blind spots. DetectorBackend abstracts the per-step
// detection decision so the pipeline, the serving layer, and the campaign
// engine can swap mechanisms per run — and the ROC bench can compare them.
//
// Contract: the pipeline calls observe() (or observe_scored()) exactly once
// per sample instant, before any holdover/health bookkeeping, and consumes
// the Verdict exactly as it consumed cra::DetectionDecision — so with the
// CRA backend the pipeline's outputs are bit-identical to the pre-backend
// code path.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "cra/detector.hpp"
#include "units/units.hpp"

namespace safe::detect {

/// Everything a backend may look at for one sample instant. Backends keep
/// their own residual models; the pipeline never feeds them its predictor
/// state (a backend must work standalone, e.g. server-side).
struct Observation {
  std::int64_t step = 0;
  bool challenge_slot = false;    ///< Probe was suppressed this epoch.
  bool receiver_nonzero = false;  ///< Val(y') != 0 (coherent echo or alarm).
  bool coherent_echo = false;     ///< The radar produced a range report.
  units::Meters distance{0.0};    ///< Reported range (valid with echo).
  units::MetersPerSecond relative_velocity{0.0};  ///< Reported range rate.
};

/// Detector verdict for one step. The first four fields mirror
/// cra::DetectionDecision so the pipeline's state machine is unchanged;
/// confidence and cause feed telemetry and the ROC bench.
struct Verdict {
  bool challenge_slot = false;   ///< Step was a probe-suppressed slot.
  bool under_attack = false;     ///< Detector state after this step.
  bool attack_started = false;   ///< This step transitioned clean -> attack.
  bool attack_cleared = false;   ///< This step transitioned attack -> clean.
  double confidence = 0.0;       ///< [0, 1]; backend-specific meaning.
  const char* cause = "";        ///< Static tag for transition telemetry.
};

class DetectorBackend {
 public:
  virtual ~DetectorBackend() = default;

  /// Consumes one sample instant and returns the detection verdict.
  virtual Verdict observe(const Observation& obs) = 0;

  /// Same as observe(), additionally scoring against ground truth for
  /// TPR/FPR accounting. Each backend scores the instants where it actually
  /// makes a claim (CRA: challenge slots; residual detectors: evaluated
  /// echo epochs; fusion: every step).
  virtual Verdict observe_scored(const Observation& obs,
                                 bool attack_actually_active) = 0;

  [[nodiscard]] virtual bool under_attack() const = 0;

  /// Step at which the current (or last) attack was first detected.
  [[nodiscard]] virtual std::optional<std::int64_t> detection_step()
      const = 0;

  /// Cumulative scoring counters (populated by observe_scored only).
  [[nodiscard]] virtual const cra::DetectionStats& stats() const = 0;

  /// Canonical backend name ("cra", "chi2", "ar", "fusion").
  [[nodiscard]] virtual std::string name() const = 0;

  virtual void reset() = 0;
};

using DetectorBackendPtr = std::unique_ptr<DetectorBackend>;

}  // namespace safe::detect
