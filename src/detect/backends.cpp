#include "detect/backends.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace safe::detect {

namespace {

// Backend-agnostic detection metrics; the CRA backend keeps emitting the
// cra.* series through the wrapped detector instead, so default-config
// telemetry is unchanged.
struct DetectMetrics {
  telemetry::MetricId detections = telemetry::counter("detect.detections");
  telemetry::MetricId clears = telemetry::counter("detect.clears");
  telemetry::MetricId evaluated = telemetry::counter("detect.evaluated");
};

const DetectMetrics& detect_metrics() {
  static const DetectMetrics m;
  return m;
}

void note_detected(const char* backend, std::int64_t step) {
  telemetry::add(detect_metrics().detections);
  telemetry::instant_event("detect.attack_detected", "detect",
                           telemetry::TraceArgs{}
                               .text("backend", backend)
                               .integer("step", step)
                               .take());
}

void note_cleared(const char* backend, std::int64_t step) {
  telemetry::add(detect_metrics().clears);
  telemetry::instant_event("detect.attack_cleared", "detect",
                           telemetry::TraceArgs{}
                               .text("backend", backend)
                               .integer("step", step)
                               .take());
}

void score(cra::DetectionStats& stats, bool claimed, bool active) {
  ++stats.challenges;
  if (claimed && active) {
    ++stats.true_positives;
  } else if (claimed && !active) {
    ++stats.false_positives;
  } else if (!claimed && active) {
    ++stats.false_negatives;
  } else {
    ++stats.true_negatives;
  }
}

estimation::InnovationGateOptions gate_options(double threshold,
                                               std::size_t window,
                                               double forgetting) {
  estimation::InnovationGateOptions gate;
  gate.threshold = threshold;
  gate.min_samples = window;
  gate.variance_forgetting = forgetting;
  return gate;
}

}  // namespace

// --- CraBackend ------------------------------------------------------------

CraBackend::CraBackend(const cra::DetectorOptions& options)
    : detector_(options) {}

namespace {

Verdict from_decision(const cra::DetectionDecision& decision) {
  Verdict v;
  v.challenge_slot = decision.challenge_slot;
  v.under_attack = decision.under_attack;
  v.attack_started = decision.attack_started;
  v.attack_cleared = decision.attack_cleared;
  v.confidence = decision.under_attack ? 1.0 : 0.0;
  v.cause = "cra-detection";
  return v;
}

}  // namespace

Verdict CraBackend::observe(const Observation& obs) {
  return from_decision(
      detector_.observe(obs.step, obs.challenge_slot, obs.receiver_nonzero));
}

Verdict CraBackend::observe_scored(const Observation& obs,
                                   bool attack_actually_active) {
  return from_decision(detector_.observe_scored(obs.step, obs.challenge_slot,
                                                obs.receiver_nonzero,
                                                attack_actually_active));
}

// --- ChiSquareBackend ------------------------------------------------------

ChiSquareBackend::ChiSquareBackend(const ChiSquareBackendOptions& options)
    : options_(options),
      gate_distance_(gate_options(options.threshold, options.window,
                                  options.variance_forgetting)),
      gate_velocity_(gate_options(options.threshold, options.window,
                                  options.variance_forgetting)) {
  if (!(options_.threshold > 0.0)) {
    throw std::invalid_argument("ChiSquareBackend: threshold must be > 0");
  }
  if (options_.required_consecutive == 0 || options_.clear_after_quiet == 0) {
    throw std::invalid_argument(
        "ChiSquareBackend: consecutive and clear counts must be >= 1");
  }
}

ChiSquareBackend::Sample ChiSquareBackend::evaluate(const Observation& obs) {
  Sample sample;
  if (obs.challenge_slot) return sample;  // no probe, nothing to test

  if (options_.alarm_on_power && obs.receiver_nonzero && !obs.coherent_echo) {
    // Received power with no coherent echo at a probing epoch: the jamming
    // signature. No residual statistic needed.
    sample.evaluated = true;
    sample.alarmed = true;
    sample.confidence = 1.0;
    return sample;
  }
  if (!obs.coherent_echo) return sample;  // dropout: no claim either way

  if (has_last_) {
    const double e_d = obs.distance.value() - last_distance_.value();
    const double e_v =
        obs.relative_velocity.value() - last_velocity_.value();
    const double stat = std::max(
        e_d * e_d / gate_distance_.variance(),
        e_v * e_v / gate_velocity_.variance());
    const bool warmed = gate_distance_.samples() >= options_.window;
    const bool out_d = gate_distance_.observe(e_d);
    const bool out_v = gate_velocity_.observe(e_v);
    // While clean, claims need a warmed-up variance; while attacked, quiet
    // samples must count toward clearance even during warm-up.
    sample.evaluated = warmed || under_attack_;
    sample.alarmed = warmed && (out_d || out_v);
    sample.confidence =
        warmed ? std::min(1.0, stat / options_.threshold) : 0.0;
  }
  last_distance_ = obs.distance;
  last_velocity_ = obs.relative_velocity;
  has_last_ = true;
  return sample;
}

Verdict ChiSquareBackend::observe(const Observation& obs) {
  const Sample sample = evaluate(obs);
  Verdict v;
  v.challenge_slot = obs.challenge_slot;
  v.cause = "chi2-residual";
  if (sample.evaluated) {
    telemetry::add(detect_metrics().evaluated);
    if (!under_attack_) {
      consecutive_alarms_ = sample.alarmed ? consecutive_alarms_ + 1 : 0;
      if (consecutive_alarms_ >= options_.required_consecutive) {
        under_attack_ = true;
        detection_step_ = obs.step;
        consecutive_alarms_ = 0;
        consecutive_quiet_ = 0;
        v.attack_started = true;
        note_detected("chi2", obs.step);
      }
    } else {
      consecutive_quiet_ = sample.alarmed ? 0 : consecutive_quiet_ + 1;
      if (consecutive_quiet_ >= options_.clear_after_quiet) {
        under_attack_ = false;
        consecutive_quiet_ = 0;
        v.attack_cleared = true;
        note_cleared("chi2", obs.step);
      }
    }
  }
  v.under_attack = under_attack_;
  v.confidence = under_attack_ ? 1.0 : sample.confidence;
  return v;
}

Verdict ChiSquareBackend::observe_scored(const Observation& obs,
                                         bool attack_actually_active) {
  const bool claim_before = under_attack_;
  const bool warmed = gate_distance_.samples() >= options_.window;
  Verdict v = observe(obs);
  // Score only the instants a claim was actually made: power-alarm epochs
  // and warmed-up echo epochs (plus everything while attacked — clearance
  // holds are claims too).
  if (obs.challenge_slot) return v;
  const bool power_path =
      options_.alarm_on_power && obs.receiver_nonzero && !obs.coherent_echo;
  const bool echo_path = obs.coherent_echo && (warmed || claim_before);
  if (power_path || echo_path) {
    score(stats_, v.under_attack, attack_actually_active);
  }
  return v;
}

void ChiSquareBackend::reset() {
  gate_distance_.reset();
  gate_velocity_.reset();
  has_last_ = false;
  under_attack_ = false;
  consecutive_alarms_ = 0;
  consecutive_quiet_ = 0;
  detection_step_.reset();
  stats_ = cra::DetectionStats{};
}

// --- ArResidualBackend -----------------------------------------------------

namespace {

estimation::RlsArOptions ar_options(std::size_t order) {
  estimation::RlsArOptions options;
  options.order = order;
  return options;
}

}  // namespace

ArResidualBackend::ArResidualBackend(const ArResidualBackendOptions& options)
    : options_(options),
      trusted_distance_(ar_options(options.order)),
      trusted_velocity_(ar_options(options.order)),
      live_distance_(ar_options(options.order)),
      live_velocity_(ar_options(options.order)),
      gate_distance_(gate_options(options.threshold, options.window,
                                  options.variance_forgetting)),
      gate_velocity_(gate_options(options.threshold, options.window,
                                  options.variance_forgetting)) {
  if (!(options_.threshold > 0.0)) {
    throw std::invalid_argument("ArResidualBackend: threshold must be > 0");
  }
  if (options_.required_consecutive == 0 || options_.clear_after_quiet == 0) {
    throw std::invalid_argument(
        "ArResidualBackend: consecutive and clear counts must be >= 1");
  }
}

double ArResidualBackend::peek(const estimation::RlsArPredictor& p) {
  // predict_next() advances the free-run state; peeking through a clone
  // keeps the model anchored at the last observed sample.
  return p.clone()->predict_next();
}

ArResidualBackend::Sample ArResidualBackend::evaluate(const Observation& obs) {
  Sample sample;
  if (obs.challenge_slot) return sample;

  if (options_.alarm_on_power && obs.receiver_nonzero && !obs.coherent_echo) {
    sample.evaluated = true;
    sample.alarmed = true;
    sample.confidence = 1.0;
    return sample;
  }
  if (!obs.coherent_echo) return sample;

  const double y_d = obs.distance.value();
  const double y_v = obs.relative_velocity.value();

  if (!under_attack_) {
    const double e_d = y_d - peek(trusted_distance_);
    const double e_v = y_v - peek(trusted_velocity_);
    const double stat =
        std::max(e_d * e_d / gate_distance_.variance(),
                 e_v * e_v / gate_velocity_.variance());
    const bool warmed = gate_distance_.samples() >= options_.window;
    const bool out_d = gate_distance_.observe(e_d);
    const bool out_v = gate_velocity_.observe(e_v);
    sample.evaluated = warmed;
    sample.alarmed = out_d || out_v;
    sample.confidence =
        warmed ? std::min(1.0, stat / options_.threshold) : 0.0;
    if (!sample.alarmed) {
      // Only clean samples train the trusted model: an alarmed sample is
      // quarantined so a stealthy ramp cannot drag the reference along.
      trusted_distance_.observe(y_d);
      trusted_velocity_.observe(y_v);
    }
  } else {
    // Clearance check: the delivered stream is "quiet" when it is again
    // self-consistent under the live model that kept tracking it.
    const double q_d = y_d - peek(live_distance_);
    const double q_v = y_v - peek(live_velocity_);
    const double stat =
        std::max(q_d * q_d / gate_distance_.variance(),
                 q_v * q_v / gate_velocity_.variance());
    sample.evaluated = true;
    sample.alarmed = stat > options_.threshold;
    sample.confidence = std::min(1.0, stat / options_.threshold);
  }
  live_distance_.observe(y_d);
  live_velocity_.observe(y_v);
  return sample;
}

Verdict ArResidualBackend::observe(const Observation& obs) {
  const Sample sample = evaluate(obs);
  Verdict v;
  v.challenge_slot = obs.challenge_slot;
  v.cause = "ar-residual";
  if (sample.evaluated) {
    telemetry::add(detect_metrics().evaluated);
    if (!under_attack_) {
      consecutive_alarms_ = sample.alarmed ? consecutive_alarms_ + 1 : 0;
      if (consecutive_alarms_ >= options_.required_consecutive) {
        under_attack_ = true;
        detection_step_ = obs.step;
        consecutive_alarms_ = 0;
        consecutive_quiet_ = 0;
        v.attack_started = true;
        note_detected("ar", obs.step);
      }
    } else {
      consecutive_quiet_ = sample.alarmed ? 0 : consecutive_quiet_ + 1;
      if (consecutive_quiet_ >= options_.clear_after_quiet) {
        under_attack_ = false;
        consecutive_quiet_ = 0;
        v.attack_cleared = true;
        note_cleared("ar", obs.step);
        // Re-acquire: the trusted model adopts the live one, which has been
        // tracking the (now clean again) delivered stream throughout.
        trusted_distance_ = live_distance_;
        trusted_velocity_ = live_velocity_;
      }
    }
  }
  v.under_attack = under_attack_;
  v.confidence = under_attack_ ? 1.0 : sample.confidence;
  return v;
}

Verdict ArResidualBackend::observe_scored(const Observation& obs,
                                          bool attack_actually_active) {
  const bool claim_before = under_attack_;
  const bool warmed = gate_distance_.samples() >= options_.window;
  Verdict v = observe(obs);
  if (obs.challenge_slot) return v;
  const bool power_path =
      options_.alarm_on_power && obs.receiver_nonzero && !obs.coherent_echo;
  const bool echo_path = obs.coherent_echo && (warmed || claim_before);
  if (power_path || echo_path) {
    score(stats_, v.under_attack, attack_actually_active);
  }
  return v;
}

void ArResidualBackend::reset() {
  trusted_distance_.reset();
  trusted_velocity_.reset();
  live_distance_.reset();
  live_velocity_.reset();
  gate_distance_.reset();
  gate_velocity_.reset();
  under_attack_ = false;
  consecutive_alarms_ = 0;
  consecutive_quiet_ = 0;
  detection_step_.reset();
  stats_ = cra::DetectionStats{};
}

// --- FusionBackend ---------------------------------------------------------

FusionBackend::FusionBackend(std::vector<DetectorBackendPtr> children,
                             std::size_t quorum)
    : children_(std::move(children)), quorum_(quorum) {
  if (children_.empty()) {
    throw std::invalid_argument("FusionBackend: needs at least one child");
  }
  for (const auto& child : children_) {
    if (!child) throw std::invalid_argument("FusionBackend: null child");
  }
  if (quorum_ == 0 || quorum_ > children_.size()) {
    throw std::invalid_argument("FusionBackend: quorum outside [1, children]");
  }
}

std::string FusionBackend::name() const {
  std::string joined = "fusion(";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) joined += '+';
    joined += children_[i]->name();
  }
  joined += ')';
  return joined;
}

Verdict FusionBackend::tally(const Observation& obs, std::size_t votes) {
  Verdict v;
  v.challenge_slot = obs.challenge_slot;
  v.cause = "fusion-vote";
  const bool now = votes >= quorum_;
  if (now && !under_attack_) {
    v.attack_started = true;
    detection_step_ = obs.step;
    note_detected("fusion", obs.step);
  } else if (!now && under_attack_) {
    v.attack_cleared = true;
    note_cleared("fusion", obs.step);
  }
  under_attack_ = now;
  v.under_attack = now;
  v.confidence =
      static_cast<double>(votes) / static_cast<double>(children_.size());
  return v;
}

Verdict FusionBackend::observe(const Observation& obs) {
  std::size_t votes = 0;
  for (const auto& child : children_) {
    const Verdict cv = child->observe(obs);
    if (cv.under_attack) ++votes;
  }
  return tally(obs, votes);
}

Verdict FusionBackend::observe_scored(const Observation& obs,
                                      bool attack_actually_active) {
  // Children observe unscored: the fusion's vote is the claim under test,
  // and it makes one every step.
  std::size_t votes = 0;
  for (const auto& child : children_) {
    const Verdict cv = child->observe(obs);
    if (cv.under_attack) ++votes;
  }
  const Verdict v = tally(obs, votes);
  score(stats_, v.under_attack, attack_actually_active);
  return v;
}

void FusionBackend::reset() {
  for (const auto& child : children_) child->reset();
  under_attack_ = false;
  detection_step_.reset();
  stats_ = cra::DetectionStats{};
}

}  // namespace safe::detect
