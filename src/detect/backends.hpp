// The four DetectorBackend implementations (DESIGN.md §15).
//
//   * CraBackend        — adapts cra::ChallengeResponseDetector (Algorithm
//                         2). The default; bit-identical to the pre-backend
//                         pipeline.
//   * ChiSquareBackend  — innovation-gated chi-square test over the
//                         first-difference residual of the reported range
//                         and range rate. No challenge hardware; detects
//                         transients and jamming, misses slow stealth.
//   * ArResidualBackend — online-fit AR(k) residual classifier: one RLS-AR
//                         model per channel trained on trusted samples, a
//                         frozen copy scoring residuals during an attack,
//                         re-acquired on clearance. No challenge hardware.
//   * FusionBackend     — quorum vote across child backends.
#pragma once

#include <cstddef>
#include <vector>

#include "detect/backend.hpp"
#include "estimation/chi_square.hpp"
#include "estimation/rls_predictor.hpp"

namespace safe::detect {

/// Adapter over the paper's challenge-response detector. observe() and
/// observe_scored() delegate verbatim, so decisions, stats, and telemetry
/// are bit-identical to driving cra::ChallengeResponseDetector directly.
class CraBackend final : public DetectorBackend {
 public:
  explicit CraBackend(const cra::DetectorOptions& options = {});

  Verdict observe(const Observation& obs) override;
  Verdict observe_scored(const Observation& obs,
                         bool attack_actually_active) override;
  [[nodiscard]] bool under_attack() const override {
    return detector_.under_attack();
  }
  [[nodiscard]] std::optional<std::int64_t> detection_step() const override {
    return detector_.detection_step();
  }
  [[nodiscard]] const cra::DetectionStats& stats() const override {
    return detector_.stats();
  }
  [[nodiscard]] std::string name() const override { return "cra"; }
  void reset() override { detector_.reset(); }

 private:
  cra::ChallengeResponseDetector detector_;
};

struct ChiSquareBackendOptions {
  /// chi^2_1 quantile on the normalized squared residual (6.63 = 99%).
  double threshold = 6.63;
  /// Warm-up samples per channel before the gate may claim an outlier.
  std::size_t window = 8;
  /// Consecutive alarmed samples required to declare an attack.
  std::size_t required_consecutive = 2;
  /// Consecutive quiet evaluated samples required to clear it.
  std::size_t clear_after_quiet = 2;
  /// Forgetting factor of the running residual variance.
  double variance_forgetting = 0.98;
  /// Treat a power alarm without a coherent echo (jamming signature) at a
  /// probing epoch as an alarmed sample.
  bool alarm_on_power = true;
};

/// Chi-square residual detector: one InnovationGate per channel over the
/// first differences of the delivered measurement stream. Self-contained —
/// the reference is the stream's own history, never the pipeline state.
class ChiSquareBackend final : public DetectorBackend {
 public:
  explicit ChiSquareBackend(const ChiSquareBackendOptions& options = {});

  Verdict observe(const Observation& obs) override;
  Verdict observe_scored(const Observation& obs,
                         bool attack_actually_active) override;
  [[nodiscard]] bool under_attack() const override { return under_attack_; }
  [[nodiscard]] std::optional<std::int64_t> detection_step() const override {
    return detection_step_;
  }
  [[nodiscard]] const cra::DetectionStats& stats() const override {
    return stats_;
  }
  [[nodiscard]] std::string name() const override { return "chi2"; }
  void reset() override;

 private:
  /// One evaluated sample: (alarmed, confidence in [0, 1]).
  struct Sample {
    bool evaluated = false;
    bool alarmed = false;
    double confidence = 0.0;
  };
  [[nodiscard]] Sample evaluate(const Observation& obs);

  ChiSquareBackendOptions options_;
  estimation::InnovationGate gate_distance_;
  estimation::InnovationGate gate_velocity_;
  units::Meters last_distance_{0.0};
  units::MetersPerSecond last_velocity_{0.0};
  bool has_last_ = false;
  bool under_attack_ = false;
  std::size_t consecutive_alarms_ = 0;
  std::size_t consecutive_quiet_ = 0;
  std::optional<std::int64_t> detection_step_;
  cra::DetectionStats stats_;
};

struct ArResidualBackendOptions {
  /// AR model order k (regressor length per channel).
  std::size_t order = 4;
  /// chi^2_1 quantile on the normalized squared residual (9.21 trades a
  /// little latency for fewer noise-driven false alarms than 6.63).
  double threshold = 9.21;
  /// Warm-up samples per channel before the gate may claim an outlier.
  std::size_t window = 8;
  /// Consecutive alarmed samples required to declare an attack.
  std::size_t required_consecutive = 3;
  /// Consecutive quiet evaluated samples required to clear it.
  std::size_t clear_after_quiet = 2;
  /// Forgetting factor of the running residual variance.
  double variance_forgetting = 0.98;
  /// Treat a power alarm without a coherent echo as an alarmed sample.
  bool alarm_on_power = true;
};

/// Learned AR(k) residual classifier. Two predictors per channel:
///   * trusted — trained only on samples accepted while clean; during an
///     attack it stays frozen at the pre-attack model, so residuals are
///     scored against what the clean stream would have done;
///   * live — tracks the delivered stream unconditionally; once the
///     delivered stream is self-consistent again (live residual quiet for
///     clear_after_quiet samples) the attack is cleared and the trusted
///     model re-acquires from the live one.
class ArResidualBackend final : public DetectorBackend {
 public:
  explicit ArResidualBackend(const ArResidualBackendOptions& options = {});

  Verdict observe(const Observation& obs) override;
  Verdict observe_scored(const Observation& obs,
                         bool attack_actually_active) override;
  [[nodiscard]] bool under_attack() const override { return under_attack_; }
  [[nodiscard]] std::optional<std::int64_t> detection_step() const override {
    return detection_step_;
  }
  [[nodiscard]] const cra::DetectionStats& stats() const override {
    return stats_;
  }
  [[nodiscard]] std::string name() const override { return "ar"; }
  void reset() override;

 private:
  struct Sample {
    bool evaluated = false;
    bool alarmed = false;
    double confidence = 0.0;
  };
  [[nodiscard]] Sample evaluate(const Observation& obs);
  /// One-step prediction without mutating the predictor.
  [[nodiscard]] static double peek(const estimation::RlsArPredictor& p);

  ArResidualBackendOptions options_;
  estimation::RlsArPredictor trusted_distance_;
  estimation::RlsArPredictor trusted_velocity_;
  estimation::RlsArPredictor live_distance_;
  estimation::RlsArPredictor live_velocity_;
  estimation::InnovationGate gate_distance_;
  estimation::InnovationGate gate_velocity_;
  bool under_attack_ = false;
  std::size_t consecutive_alarms_ = 0;
  std::size_t consecutive_quiet_ = 0;
  std::optional<std::int64_t> detection_step_;
  cra::DetectionStats stats_;
};

/// Quorum vote across child backends: under attack while at least `quorum`
/// children are. Children consume every observation; the fusion's own
/// transition bookkeeping derives from the vote, and scoring covers every
/// step (the vote makes a claim at each one).
class FusionBackend final : public DetectorBackend {
 public:
  /// Throws std::invalid_argument on no children, a null child, or a quorum
  /// outside [1, children.size()].
  FusionBackend(std::vector<DetectorBackendPtr> children, std::size_t quorum);

  Verdict observe(const Observation& obs) override;
  Verdict observe_scored(const Observation& obs,
                         bool attack_actually_active) override;
  [[nodiscard]] bool under_attack() const override { return under_attack_; }
  [[nodiscard]] std::optional<std::int64_t> detection_step() const override {
    return detection_step_;
  }
  [[nodiscard]] const cra::DetectionStats& stats() const override {
    return stats_;
  }
  [[nodiscard]] std::string name() const override;
  void reset() override;

 private:
  [[nodiscard]] Verdict tally(const Observation& obs, std::size_t votes);

  std::vector<DetectorBackendPtr> children_;
  std::size_t quorum_;
  bool under_attack_ = false;
  std::optional<std::int64_t> detection_step_;
  cra::DetectionStats stats_;
};

}  // namespace safe::detect
