#include "detect/spec.hpp"

#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "detect/backends.hpp"

namespace safe::detect {

namespace {

/// A grammar-level parse: backend name plus raw key/value pairs. Building
/// this never consults the backend registry, which is what lets the checker
/// distinguish "malformed" from "well-formed but unknown backend".
struct ParsedSpec {
  std::string backend;
  std::map<std::string, std::string> params;
};

/// Used by the internal builder to report instead of throwing.
struct BuildResult {
  SpecCheck check;
  DetectorBackendPtr detector;
};

SpecCheck malformed(std::string message) {
  return SpecCheck{SpecStatus::kMalformed, std::move(message)};
}

SpecCheck unknown_backend(const std::string& name) {
  return SpecCheck{SpecStatus::kUnknownBackend,
                   "detector spec: unknown backend `" + name +
                       "` (cra, chi2, ar, fusion)"};
}

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return true;
}

/// Grammar parse only. Returns kOk/kMalformed; never kUnknownBackend.
SpecCheck parse_grammar(const std::string& spec, ParsedSpec& out) {
  const auto colon = spec.find(':');
  out.backend = spec.substr(0, colon);
  if (!valid_name(out.backend)) {
    return malformed("detector spec: bad backend name in `" + spec + "`");
  }
  if (colon == std::string::npos) return {};

  const std::string body = spec.substr(colon + 1);
  std::stringstream ss(body);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      return malformed("detector spec: bad token `" + token + "` in `" +
                       spec + "`");
    }
    const std::string key = token.substr(0, eq);
    if (!valid_name(key)) {
      return malformed("detector spec: bad key `" + key + "` in `" + spec +
                       "`");
    }
    if (!out.params.emplace(key, token.substr(eq + 1)).second) {
      return malformed("detector spec: duplicate key `" + key + "` in `" +
                       spec + "`");
    }
  }
  return {};
}

/// Typed parameter extraction over the raw map; each take_* consumes its
/// key so leftovers can be rejected as unknown.
class Params {
 public:
  explicit Params(std::map<std::string, std::string> params)
      : params_(std::move(params)) {}

  bool take_number(const std::string& key, double& out, SpecCheck& check) {
    const auto it = params_.find(key);
    if (it == params_.end()) return true;
    try {
      std::size_t consumed = 0;
      out = std::stod(it->second, &consumed);
      if (consumed != it->second.size()) throw std::invalid_argument("junk");
    } catch (const std::exception&) {
      check = malformed("detector spec: bad value for `" + key + "`: `" +
                        it->second + "`");
      return false;
    }
    params_.erase(it);
    return true;
  }

  bool take_count(const std::string& key, std::size_t& out,
                  SpecCheck& check) {
    std::string raw;
    if (!take_raw(key, raw)) return true;  // key absent: keep the default
    try {
      std::size_t consumed = 0;
      const unsigned long long v = std::stoull(raw, &consumed);
      // stoull accepts a leading '-' by wrapping; reject it explicitly.
      if (consumed != raw.size() || v == 0 || raw.front() == '-') {
        throw std::invalid_argument("not a positive integer");
      }
      out = static_cast<std::size_t>(v);
    } catch (const std::exception&) {
      check = malformed("detector spec: `" + key +
                        "` must be a positive integer, got `" + raw + "`");
      return false;
    }
    return true;
  }

  bool take_raw(const std::string& key, std::string& out) {
    const auto it = params_.find(key);
    if (it == params_.end()) return false;
    out = it->second;
    params_.erase(it);
    return true;
  }

  bool reject_leftovers(const std::string& backend, SpecCheck& check) const {
    if (params_.empty()) return true;
    check = malformed("detector spec: unknown key `" +
                      params_.begin()->first + "` for `" + backend + "`");
    return false;
  }

 private:
  std::map<std::string, std::string> params_;
};

bool take_fraction(Params& params, const std::string& key, double& out,
                   SpecCheck& check) {
  if (!params.take_number(key, out, check)) return false;
  if (!(out > 0.0) || out >= 1.0) {
    check = malformed("detector spec: `" + key + "` must be in (0, 1)");
    return false;
  }
  return true;
}

bool take_threshold(Params& params, double& out, SpecCheck& check) {
  if (!params.take_number("threshold", out, check)) return false;
  if (!(out > 0.0)) {
    check = malformed("detector spec: `threshold` must be > 0");
    return false;
  }
  return true;
}

BuildResult build_cra(Params params, const cra::DetectorOptions& defaults,
                      bool want_detector) {
  BuildResult result;
  cra::DetectorOptions options = defaults;
  if (!params.take_count("clear", options.clear_after_silent_challenges,
                         result.check) ||
      !params.reject_leftovers("cra", result.check)) {
    return result;
  }
  if (want_detector) result.detector = std::make_unique<CraBackend>(options);
  return result;
}

BuildResult build_chi2(Params params, bool want_detector) {
  BuildResult result;
  ChiSquareBackendOptions options;
  double power = 1.0;
  if (!take_threshold(params, options.threshold, result.check) ||
      !params.take_count("window", options.window, result.check) ||
      !params.take_count("consecutive", options.required_consecutive,
                         result.check) ||
      !params.take_count("clear", options.clear_after_quiet, result.check) ||
      !take_fraction(params, "forgetting", options.variance_forgetting,
                     result.check) ||
      !params.take_number("power", power, result.check) ||
      !params.reject_leftovers("chi2", result.check)) {
    return result;
  }
  if (power != 0.0 && power != 1.0) {
    result.check = malformed("detector spec: `power` must be 0 or 1");
    return result;
  }
  options.alarm_on_power = power != 0.0;
  if (want_detector) {
    result.detector = std::make_unique<ChiSquareBackend>(options);
  }
  return result;
}

BuildResult build_ar(Params params, bool want_detector) {
  BuildResult result;
  ArResidualBackendOptions options;
  double power = 1.0;
  if (!params.take_count("order", options.order, result.check) ||
      !take_threshold(params, options.threshold, result.check) ||
      !params.take_count("window", options.window, result.check) ||
      !params.take_count("consecutive", options.required_consecutive,
                         result.check) ||
      !params.take_count("clear", options.clear_after_quiet, result.check) ||
      !take_fraction(params, "forgetting", options.variance_forgetting,
                     result.check) ||
      !params.take_number("power", power, result.check) ||
      !params.reject_leftovers("ar", result.check)) {
    return result;
  }
  if (options.order > 16) {
    result.check = malformed("detector spec: `order` must be in [1, 16]");
    return result;
  }
  if (power != 0.0 && power != 1.0) {
    result.check = malformed("detector spec: `power` must be 0 or 1");
    return result;
  }
  options.alarm_on_power = power != 0.0;
  if (want_detector) {
    result.detector = std::make_unique<ArResidualBackend>(options);
  }
  return result;
}

BuildResult build(const std::string& spec,
                  const cra::DetectorOptions& cra_defaults,
                  bool want_detector);

BuildResult build_fusion(Params params,
                         const cra::DetectorOptions& cra_defaults,
                         bool want_detector) {
  BuildResult result;
  std::string members_raw;
  if (!params.take_raw("members", members_raw)) {
    result.check =
        malformed("detector spec: fusion needs `members=a+b[+c]`");
    return result;
  }
  std::vector<std::string> members;
  std::stringstream ss(members_raw);
  std::string member;
  while (std::getline(ss, member, '+')) {
    if (!member.empty()) members.push_back(member);
  }
  if (members.empty()) {
    result.check = malformed("detector spec: fusion members list is empty");
    return result;
  }
  std::size_t quorum = members.size() / 2 + 1;  // default: strict majority
  if (!params.take_count("quorum", quorum, result.check) ||
      !params.reject_leftovers("fusion", result.check)) {
    return result;
  }
  if (quorum > members.size()) {
    result.check = malformed(
        "detector spec: fusion quorum exceeds the member count");
    return result;
  }

  std::vector<DetectorBackendPtr> children;
  for (const std::string& name : members) {
    if (name == "fusion") {
      result.check = malformed("detector spec: fusion cannot nest fusion");
      return result;
    }
    // Members are bare backend names running their defaults.
    BuildResult child = build(name, cra_defaults, want_detector);
    if (child.check.status != SpecStatus::kOk) {
      result.check = std::move(child.check);
      return result;
    }
    if (want_detector) children.push_back(std::move(child.detector));
  }
  if (want_detector) {
    result.detector =
        std::make_unique<FusionBackend>(std::move(children), quorum);
  }
  return result;
}

BuildResult build(const std::string& spec,
                  const cra::DetectorOptions& cra_defaults,
                  bool want_detector) {
  if (spec.empty()) {
    BuildResult result;
    if (want_detector) {
      result.detector = std::make_unique<CraBackend>(cra_defaults);
    }
    return result;
  }
  ParsedSpec parsed;
  BuildResult result;
  result.check = parse_grammar(spec, parsed);
  if (result.check.status != SpecStatus::kOk) return result;

  Params params(std::move(parsed.params));
  if (parsed.backend == "cra") {
    return build_cra(std::move(params), cra_defaults, want_detector);
  }
  if (parsed.backend == "chi2") {
    return build_chi2(std::move(params), want_detector);
  }
  if (parsed.backend == "ar") {
    return build_ar(std::move(params), want_detector);
  }
  if (parsed.backend == "fusion") {
    return build_fusion(std::move(params), cra_defaults, want_detector);
  }
  result.check = unknown_backend(parsed.backend);
  return result;
}

}  // namespace

SpecCheck check_detector_spec(const std::string& spec) {
  return build(spec, cra::DetectorOptions{}, /*want_detector=*/false).check;
}

DetectorBackendPtr make_detector(const std::string& spec,
                                 const cra::DetectorOptions& cra_defaults) {
  BuildResult result = build(spec, cra_defaults, /*want_detector=*/true);
  if (result.check.status != SpecStatus::kOk) {
    throw std::invalid_argument(result.check.message);
  }
  return std::move(result.detector);
}

std::string detector_spec_help() {
  return "detector spec: <backend>[:<k=v,...>] with backends "
         "cra(clear) "
         "chi2(threshold,window,consecutive,clear,forgetting,power) "
         "ar(order,threshold,window,consecutive,clear,forgetting,power) "
         "fusion(members=a+b[+c],quorum); empty or `cra` = the paper's "
         "challenge-response detector";
}

}  // namespace safe::detect
