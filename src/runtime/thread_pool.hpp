// Work-stealing thread pool for embarrassingly parallel campaign trials.
//
// Each worker owns a bounded deque: it pushes and pops its own back (LIFO,
// cache-friendly) and steals from the front of a peer's deque when its own
// runs dry (FIFO, oldest-first — the steal order that keeps a straggler's
// queue short). Submission round-robins across queues and applies
// backpressure by blocking once every queue is at capacity, so a producer
// can stream millions of tasks without unbounded memory growth.
//
// Scheduling order is deliberately unspecified; deterministic consumers
// (the campaign engine) must key results by task identity, never by
// completion order.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/sync.hpp"

namespace safe::runtime {

class ThreadPool {
 public:
  static constexpr std::size_t kDefaultQueueCapacity = 256;

  /// Spawns `num_threads` workers (minimum 1), each with a deque bounded at
  /// `queue_capacity` tasks.
  explicit ThreadPool(std::size_t num_threads,
                      std::size_t queue_capacity = kDefaultQueueCapacity);

  /// Drains queued tasks and joins (equivalent to shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues `task`; blocks while every worker queue is full. Throws
  /// std::runtime_error after shutdown().
  void submit(std::function<void()> task);

  /// Non-blocking submit; false when every queue is at capacity.
  [[nodiscard]] bool try_submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception that escaped a task (if any).
  void wait_idle();

  /// Stops accepting new submissions, then blocks until every already
  /// submitted task has finished. Workers stay alive (shutdown() still joins
  /// them later). Unlike wait_idle() it never throws — exceptions stashed by
  /// tasks stay retrievable via wait_idle() afterwards. Idempotent: a second
  /// drain(), or a drain() after shutdown(), is a safe no-op. submit() /
  /// try_submit() after drain() throw std::runtime_error. This is the
  /// graceful-shutdown hook the streaming server uses: finish in-flight
  /// session work, refuse new work, then shutdown().
  void drain();

  /// Completes all queued tasks, then joins the workers. Idempotent; unlike
  /// wait_idle() it never throws (safe from the destructor). Exceptions
  /// stashed by tasks stay retrievable via wait_idle() before shutdown.
  void shutdown();

  /// Number of tasks executed by a worker other than the one whose queue
  /// they were submitted to (observability; exercised by tests).
  [[nodiscard]] std::size_t steal_count() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkerQueue {
    Mutex mutex;
    std::deque<std::function<void()>> tasks SAFE_GUARDED_BY(mutex);
  };

  void worker_loop(std::size_t index);
  bool pop_or_steal(std::size_t index, std::function<void()>& task);
  bool push_to_some_queue(std::function<void()>& task);
  bool submit_once(std::function<void()>& task);

#ifdef SAFE_SENSING_TS_NEGATIVE_TEST
  // Hooks for tests/compile_fail/ts_*.cpp only: the test TU defines these
  // out of class, touching guarded fields with and without the guarding
  // mutex, to prove a GUARDED_BY violation in ThreadPool code is a build
  // break under -Werror=thread-safety. Never declared in normal builds.
  std::size_t ts_probe_queue_depth_unlocked();
  std::size_t ts_probe_queue_depth_locked();
#endif

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::size_t capacity_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};  ///< Submissions refused; workers live.
  std::atomic<std::size_t> queued_{0};     ///< Tasks sitting in deques.
  std::atomic<std::size_t> in_flight_{0};  ///< Queued plus running.
  std::atomic<std::size_t> steals_{0};
  std::atomic<std::size_t> next_queue_{0};

  /// Serializes sleep/wake transitions only; the fields the predicates read
  /// are atomics, so nothing is GUARDED_BY this mutex. Lock-then-notify on
  /// it pairs with the predicate re-check inside every wait.
  Mutex wake_mutex_;
  CondVar worker_cv_;  ///< Work available (or stopping).
  CondVar idle_cv_;    ///< Queue space freed / pool idle.

  Mutex error_mutex_;
  std::exception_ptr first_error_ SAFE_GUARDED_BY(error_mutex_);
};

}  // namespace safe::runtime
