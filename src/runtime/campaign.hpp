// Declarative Monte Carlo campaign engine.
//
// A CampaignSpec is a base ScenarioOptions plus two kinds of axes:
//   * grid axes — explicit value lists (leader, attack, onset, jammer
//     power, fault spec) crossed into a cartesian cell grid; trial t lands
//     in cell t % n_cells, so any prefix of the trial range covers the grid
//     round-robin;
//   * randomized axes — distributions (fixed / uniform / log-uniform)
//     sampled per trial from the counter-based seed stream, overriding the
//     corresponding grid/base value.
//
// Campaign::run expands the spec into `trials` trials, executes them on a
// work-stealing ThreadPool, and streams TrialRecords to the attached sinks
// in trial-id order. Every per-trial quantity derives from
// (spec.seed, trial id) alone, so output is bit-identical at any --jobs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "runtime/seed.hpp"
#include "runtime/sink.hpp"
#include "units/units.hpp"

namespace safe::runtime {

/// Scalar sampling law for a randomized campaign axis.
class Distribution {
 public:
  enum class Kind { kFixed, kUniform, kLogUniform };

  static Distribution fixed(double value) {
    return Distribution{Kind::kFixed, value, value};
  }
  /// Uniform on [lo, hi]. Throws std::invalid_argument when hi < lo.
  static Distribution uniform(double lo, double hi);
  /// Log-uniform on [lo, hi]; requires 0 < lo <= hi.
  static Distribution log_uniform(double lo, double hi);

  [[nodiscard]] double sample(SplitMix64& rng) const;
  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }

 private:
  Distribution(Kind kind, double lo, double hi)
      : kind_(kind), lo_(lo), hi_(hi) {}

  Kind kind_;
  double lo_;
  double hi_;
};

struct CampaignSpec {
  /// Defaults every trial starts from; grid/randomized axes override fields.
  core::ScenarioOptions base{};
  std::size_t trials = 1;
  /// Master seed: every per-trial seed and draw derives from it.
  std::uint64_t seed = 1;

  // Grid axes (empty = keep the base value; non-empty lists are crossed).
  std::vector<core::LeaderScenario> leaders;
  std::vector<core::AttackKind> attacks;
  std::vector<units::Seconds> attack_onsets_s;
  std::vector<double> jammer_powers_w;
  std::vector<std::string> fault_specs;
  /// Detection-backend specs (detect mini-language; "" = paper CRA) and
  /// defense on/off. Appended after fault_specs in the unravel order so
  /// specs without them keep their existing trial-to-cell mapping.
  std::vector<std::string> detector_specs;
  std::vector<bool> defenses;
  /// Platoon specs (platoon mini-language; "" = the pair scene). Appended
  /// after defenses in the unravel order so specs without a platoon axis
  /// keep their existing trial-to-cell mapping. Platoon trials always run
  /// platoon::make_paper_platoon — `factory` and `customize` apply to pair
  /// cells only.
  std::vector<std::string> platoon_specs;
  /// Attack specs (attack mini-language; "" = keep the legacy enum axis for
  /// that cell). Appended after platoon_specs in the unravel order so specs
  /// without an attack-spec axis keep their existing trial-to-cell mapping.
  std::vector<std::string> attack_specs;

  // Randomized axes (take precedence over the matching grid axis).
  std::optional<Distribution> attack_onset_s;
  std::optional<Distribution> attack_duration_s;  ///< end = onset + duration
  std::optional<Distribution> jammer_power_w;

  /// Explicit scenario seeds (trial t uses scenario_seeds[t % size]);
  /// empty = derive from `seed`. Lets CLIs replay a literal seed list.
  std::vector<std::uint64_t> scenario_seeds;

  /// Builds the scenario for one trial (default: core::make_paper_scenario).
  std::function<core::Scenario(const core::ScenarioOptions&)> factory;
  /// Optional post-factory hook (swap leader profile, challenge schedule,
  /// ...). Must depend only on the record's contents, not on shared state.
  std::function<void(core::Scenario&, const TrialRecord&)> customize;

  /// Number of cells in the cartesian grid (>= 1).
  [[nodiscard]] std::size_t grid_cells() const;
};

struct CampaignResult {
  CampaignSummary summary;
  std::size_t trials = 0;
  std::size_t jobs = 0;
  units::Seconds wall_s{0.0};
};

class Campaign {
 public:
  /// Validates the spec (throws std::invalid_argument on an impossible
  /// grid/distribution combination).
  explicit Campaign(CampaignSpec spec);

  /// Deterministic expansion of trial `trial_id`: the ScenarioOptions it
  /// runs with, and the parameter half of its record. Independent of run().
  [[nodiscard]] core::ScenarioOptions expand(std::uint64_t trial_id,
                                             TrialRecord& record) const;

  /// Runs all trials on `jobs` workers (0 = hardware_concurrency), feeding
  /// `sinks` in trial-id order on this thread. Returns the merged summary.
  CampaignResult run(std::size_t jobs,
                     const std::vector<TrialSink*>& sinks = {}) const;

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }

  /// jobs=0 resolution used by run() and the CLIs.
  [[nodiscard]] static std::size_t default_jobs();

 private:
  [[nodiscard]] TrialRecord run_trial(std::uint64_t trial_id) const;
  void run_pair_trial(const core::ScenarioOptions& options,
                      TrialRecord& record) const;
  void run_platoon_trial(const core::ScenarioOptions& options,
                         TrialRecord& record) const;

  CampaignSpec spec_;
};

}  // namespace safe::runtime
