#include "runtime/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "platoon/platoon.hpp"
#include "runtime/thread_pool.hpp"
#include "telemetry/telemetry.hpp"

namespace safe::runtime {

namespace {

// Trial lifecycle metrics (DESIGN.md §11). Everything except the duration
// histogram is a pure function of the campaign spec, so these participate in
// the --jobs invariance contract.
struct TrialMetrics {
  telemetry::MetricId trials =
      telemetry::counter("campaign.trials", telemetry::Stability::kDeterministic);
  telemetry::MetricId errors = telemetry::counter(
      "campaign.trial_errors", telemetry::Stability::kDeterministic);
  telemetry::MetricId collisions = telemetry::counter(
      "campaign.collisions", telemetry::Stability::kDeterministic);
  telemetry::MetricId detections = telemetry::counter(
      "campaign.detections", telemetry::Stability::kDeterministic);
  telemetry::MetricId trial_ns =
      telemetry::duration_histogram("campaign.trial_ns");
};

const TrialMetrics& trial_metrics() {
  static const TrialMetrics m;
  return m;
}

}  // namespace

Distribution Distribution::uniform(double lo, double hi) {
  if (hi < lo) {
    throw std::invalid_argument("Distribution::uniform: hi < lo");
  }
  return Distribution{Kind::kUniform, lo, hi};
}

Distribution Distribution::log_uniform(double lo, double hi) {
  if (!(lo > 0.0) || hi < lo) {
    throw std::invalid_argument(
        "Distribution::log_uniform: requires 0 < lo <= hi");
  }
  return Distribution{Kind::kLogUniform, lo, hi};
}

double Distribution::sample(SplitMix64& rng) const {
  switch (kind_) {
    case Kind::kFixed:
      return lo_;
    case Kind::kUniform:
      return lo_ + (hi_ - lo_) * uniform_double(rng);
    case Kind::kLogUniform:
      return std::exp(std::log(lo_) +
                      (std::log(hi_) - std::log(lo_)) * uniform_double(rng));
  }
  return lo_;
}

std::size_t CampaignSpec::grid_cells() const {
  std::size_t cells = 1;
  const auto mul = [&cells](std::size_t n) {
    if (n > 0) cells *= n;
  };
  mul(leaders.size());
  mul(attacks.size());
  mul(attack_onsets_s.size());
  mul(jammer_powers_w.size());
  mul(fault_specs.size());
  mul(detector_specs.size());
  mul(defenses.size());
  mul(platoon_specs.size());
  mul(attack_specs.size());
  return cells;
}

Campaign::Campaign(CampaignSpec spec) : spec_(std::move(spec)) {
  if (!spec_.factory) {
    spec_.factory = [](const core::ScenarioOptions& options) {
      return core::make_paper_scenario(options);
    };
  }
}

std::size_t Campaign::default_jobs() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

core::ScenarioOptions Campaign::expand(std::uint64_t trial_id,
                                       TrialRecord& record) const {
  core::ScenarioOptions o = spec_.base;

  // Grid axes: unravel the cell index in a fixed axis order so trial t's
  // parameters depend only on t and the spec, never on execution.
  std::uint64_t cell = trial_id % spec_.grid_cells();
  const auto pick = [&cell](const auto& axis, auto& value) {
    if (axis.empty()) return;
    value = axis[static_cast<std::size_t>(cell % axis.size())];
    cell /= axis.size();
  };
  pick(spec_.leaders, o.leader);
  pick(spec_.attacks, o.attack);
  pick(spec_.attack_onsets_s, o.attack_start_s);
  pick(spec_.jammer_powers_w, o.jammer.peak_power_w);
  pick(spec_.fault_specs, o.fault_spec);
  pick(spec_.detector_specs, o.pipeline.detector_spec);
  pick(spec_.defenses, o.defense_enabled);
  pick(spec_.platoon_specs, o.platoon_spec);
  pick(spec_.attack_specs, o.attack_spec);

  // Randomized axes: sampled in a fixed order from the per-trial parameter
  // stream. Every set distribution is drawn even when the trial's attack
  // kind ignores the value, so draws never shift between trials.
  SplitMix64 rng(derive_seed(spec_.seed, SeedStream::kParams, trial_id));
  if (spec_.attack_onset_s) {
    o.attack_start_s = units::Seconds{spec_.attack_onset_s->sample(rng)};
  }
  if (spec_.attack_duration_s) {
    o.attack_end_s =
        o.attack_start_s + units::Seconds{spec_.attack_duration_s->sample(rng)};
  }
  if (spec_.jammer_power_w) {
    o.jammer.peak_power_w = spec_.jammer_power_w->sample(rng);
  }

  o.seed = spec_.scenario_seeds.empty()
               ? derive_seed(spec_.seed, SeedStream::kScenario, trial_id)
               : spec_.scenario_seeds[static_cast<std::size_t>(
                     trial_id % spec_.scenario_seeds.size())];

  record.trial_id = trial_id;
  record.scenario_seed = o.seed;
  record.leader = o.leader;
  record.attack = o.attack;
  record.attack_start_s = o.attack_start_s;
  record.attack_end_s = o.attack_end_s;
  record.jammer_power_w = o.jammer.peak_power_w;
  record.fault_spec = o.fault_spec;
  record.detector_spec = o.pipeline.detector_spec;
  record.defense_enabled = o.defense_enabled;
  record.max_holdover_steps = o.pipeline.health.max_holdover_steps;
  record.horizon_steps = o.horizon_steps;
  record.platoon_spec = o.platoon_spec;
  record.attack_spec = (o.attack_spec == "none") ? "" : o.attack_spec;
  return o;
}

TrialRecord Campaign::run_trial(std::uint64_t trial_id) const {
  const TrialMetrics& metrics = trial_metrics();
  telemetry::ScopedTimer span("trial", "campaign", metrics.trial_ns);
  span.arg("trial_id", static_cast<std::int64_t>(trial_id));

  TrialRecord record;
  try {
    const core::ScenarioOptions options = expand(trial_id, record);
    if (options.platoon_spec.empty() || options.platoon_spec == "none") {
      run_pair_trial(options, record);
    } else {
      run_platoon_trial(options, record);
    }
  } catch (const std::exception& e) {
    record.error = e.what();
  } catch (...) {
    record.error = "unknown exception";
  }
  telemetry::add(metrics.trials);
  if (!record.error.empty()) telemetry::add(metrics.errors);
  if (record.collided) telemetry::add(metrics.collisions);
  if (record.detection_step >= 0) telemetry::add(metrics.detections);
  return record;
}

void Campaign::run_pair_trial(const core::ScenarioOptions& options,
                              TrialRecord& record) const {
  core::Scenario scenario = spec_.factory(options);
  if (spec_.customize) spec_.customize(scenario, record);
  const core::CarFollowingResult result = scenario.run();

  record.collided = result.collided;
  record.collision_step = result.collision_step ? *result.collision_step : -1;
  record.detection_step = result.detection_step ? *result.detection_step : -1;
  record.min_gap_m = result.min_gap_m;
  record.false_positives = result.detection_stats.false_positives;
  record.false_negatives = result.detection_stats.false_negatives;
  record.true_positives = result.detection_stats.true_positives;
  record.true_negatives = result.detection_stats.true_negatives;
  record.safe_stop_steps = result.safe_stop_steps;
  record.nonfinite_controller_inputs = result.nonfinite_controller_inputs;
  const core::HealthStats& hs = result.health_stats;
  record.rejected_nonfinite = hs.rejected_nonfinite;
  record.rejected_signal = hs.rejected_out_of_range + hs.rejected_innovation +
                           hs.rejected_stuck;
  record.bridged_dropouts = hs.bridged_dropouts;
  record.predictor_resets = hs.predictor_resets;
  record.degradation_max = result.trace.column_max("degradation");

  const units::Seconds dt = scenario.config.sample_time_s;
  if ((options.attack != core::AttackKind::kNone ||
       !record.attack_spec.empty()) &&
      record.detection_step >= 0) {
    const double latency =
        static_cast<double>(record.detection_step) * dt.value() -
        options.attack_start_s.value();
    record.detection_latency_s = units::Seconds{std::max(0.0, latency)};
  }

  // RLS holdover fidelity: RMSE of the substituted gap against truth over
  // the steps the controller ran on estimates.
  const auto& estimated = result.trace.column("estimated");
  const auto& safe_gap = result.trace.column("safe_gap_m");
  const auto& true_gap = result.trace.column("true_gap_m");
  double sq_sum = 0.0;
  std::size_t n = 0;
  for (std::size_t k = 0; k < estimated.size(); ++k) {
    if (estimated[k] <= 0.5) continue;
    const double err = safe_gap[k] - true_gap[k];
    if (!std::isfinite(err)) continue;
    sq_sum += err * err;
    ++n;
  }
  record.holdover_steps = n;
  record.holdover_rmse_m = units::Meters{
      n > 0 ? std::sqrt(sq_sum / static_cast<double>(n)) : 0.0};
}

void Campaign::run_platoon_trial(const core::ScenarioOptions& options,
                                 TrialRecord& record) const {
  // Platoon trials bypass `factory`/`customize`: the platoon module owns
  // scenario assembly so every follower's stack matches the paper profile.
  const platoon::PlatoonOptions popts =
      platoon::parse_platoon_spec(options.platoon_spec);
  record.platoon_size = popts.size;
  record.attacked_index = popts.attacked;

  const platoon::PlatoonScenario scenario =
      platoon::make_paper_platoon(options);
  const platoon::PlatoonResult result = scenario.run();
  const platoon::VehicleOutcome& attacked =
      result.followers.at(popts.attacked - 1);
  const platoon::PropagationMetrics& pm = result.metrics;

  record.collided = result.collided;
  record.collision_step = result.collision_step ? *result.collision_step : -1;
  record.detection_step =
      attacked.detection_step ? *attacked.detection_step : -1;
  record.min_gap_m = pm.min_gap_m;
  record.false_positives = pm.detection_totals.false_positives;
  record.false_negatives = pm.detection_totals.false_negatives;
  record.true_positives = pm.detection_totals.true_positives;
  record.true_negatives = pm.detection_totals.true_negatives;
  record.safe_stop_steps = pm.safe_stop_steps_total;
  record.nonfinite_controller_inputs = pm.nonfinite_controller_inputs_total;
  record.degradation_max = pm.degradation_max;
  for (const platoon::VehicleOutcome& v : result.followers) {
    const core::HealthStats& hs = v.health_stats;
    record.rejected_nonfinite += hs.rejected_nonfinite;
    record.rejected_signal += hs.rejected_out_of_range +
                              hs.rejected_innovation + hs.rejected_stuck;
    record.bridged_dropouts += hs.bridged_dropouts;
    record.predictor_resets += hs.predictor_resets;
  }

  const units::Seconds dt = scenario.config.base.sample_time_s;
  if ((options.attack != core::AttackKind::kNone ||
       !record.attack_spec.empty()) &&
      record.detection_step >= 0) {
    const double latency =
        static_cast<double>(record.detection_step) * dt.value() -
        options.attack_start_s.value();
    record.detection_latency_s = units::Seconds{std::max(0.0, latency)};
  }
  // Holdover fidelity is reported for the attacked follower — the stream
  // whose estimates the attack actually stresses.
  record.holdover_steps = attacked.holdover_steps;
  record.holdover_rmse_m = attacked.holdover_rmse_m;

  record.shock_depth = pm.shock_depth;
  record.linf_amplification = pm.linf_amplification;
  record.safe_stop_vehicles = pm.safe_stop_vehicles;
  record.detected_vehicles = pm.detected_vehicles;
}

CampaignResult Campaign::run(std::size_t jobs,
                             const std::vector<TrialSink*>& sinks) const {
  const auto t_start = std::chrono::steady_clock::now();
  const std::size_t workers = jobs == 0 ? default_jobs() : jobs;
  const std::uint64_t n = spec_.trials;

  telemetry::ScopedTimer campaign_span("campaign.run", "campaign");
  campaign_span.arg("trials", static_cast<std::int64_t>(n));
  campaign_span.arg("jobs", static_cast<std::int64_t>(workers));

  // Mergeable shard accumulators: a trial lands in shard trial_id % K — a
  // scheduling-independent assignment — and finalize() sorts by trial id,
  // so the merged summary is identical at any job count.
  struct Shard {
    std::mutex mutex;
    SummaryAccumulator acc;
  };
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    shards.push_back(std::make_unique<Shard>());
  }

  // Completed trials park here until the caller thread can emit them in
  // trial-id order; max_in_flight bounds the reorder window.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::map<std::uint64_t, TrialRecord> done;
  std::uint64_t next_emit = 0;

  const auto drain_ready = [&](std::unique_lock<std::mutex>& lock) {
    for (auto it = done.find(next_emit); it != done.end();
         it = done.find(next_emit)) {
      TrialRecord record = std::move(it->second);
      done.erase(it);
      ++next_emit;
      lock.unlock();
      for (TrialSink* sink : sinks) sink->consume(record);
      lock.lock();
    }
  };

  {
    ThreadPool pool(workers);
    const std::uint64_t max_in_flight =
        static_cast<std::uint64_t>(workers) * 4 + 8;
    for (std::uint64_t t = 0; t < n; ++t) {
      pool.submit([this, t, &shards, &done_mutex, &done_cv, &done] {
        TrialRecord record = run_trial(t);
        {
          Shard& shard = *shards[static_cast<std::size_t>(t) % shards.size()];
          std::lock_guard<std::mutex> guard(shard.mutex);
          shard.acc.add(record);
        }
        {
          std::lock_guard<std::mutex> guard(done_mutex);
          done.emplace(t, std::move(record));
        }
        done_cv.notify_all();
      });
      std::unique_lock<std::mutex> lock(done_mutex);
      drain_ready(lock);
      while (t + 1 - next_emit >= max_in_flight) {
        done_cv.wait(lock);
        drain_ready(lock);
      }
    }
    {
      std::unique_lock<std::mutex> lock(done_mutex);
      while (next_emit < n) {
        done_cv.wait(lock, [&] { return done.count(next_emit) > 0; });
        drain_ready(lock);
      }
    }
    pool.wait_idle();  // surfaces engine-level failures (e.g. bad_alloc)
    pool.shutdown();
  }
  for (TrialSink* sink : sinks) sink->finish();

  SummaryAccumulator merged;
  for (const auto& shard : shards) merged.merge(shard->acc);

  CampaignResult result;
  result.summary = merged.finalize();
  result.trials = static_cast<std::size_t>(n);
  result.jobs = workers;
  result.wall_s = units::Seconds{
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count()};
  return result;
}

}  // namespace safe::runtime
