// Counter-based splittable seeding for deterministic parallel campaigns.
//
// Every trial in a campaign derives its RNG seeds purely from
// (master seed, stream, trial counter), never from which worker ran it or
// when. That makes campaign output bit-identical regardless of thread count
// or scheduling order: trial 517 gets the same scenario seed and the same
// parameter draws whether it runs first on one thread or last on sixteen.
//
// The mixer is the SplitMix64 finalizer (Steele, Lea & Flood, OOPSLA'14) —
// a bijective avalanche function, so distinct (stream, counter) pairs under
// one master seed never collide by construction of the pre-mix injection.
#pragma once

#include <cstdint>

namespace safe::runtime {

/// Golden-ratio increment used by SplitMix64.
inline constexpr std::uint64_t kSeedGamma = 0x9E3779B97F4A7C15ULL;

/// SplitMix64 finalizer: bijective 64-bit avalanche mix.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Named sub-streams of one master seed. Keeping the scenario stream
/// separate from the parameter-sampling stream means adding a sampled axis
/// to a spec never perturbs the scenario noise seeds of existing trials.
enum class SeedStream : std::uint64_t {
  kScenario = 0,  ///< core::ScenarioOptions::seed for the simulation itself.
  kParams = 1,    ///< Randomized-axis draws (onset, jammer power, ...).
  kSession = 2,   ///< serve::SessionManager per-session token derivation.
  kChaos = 3,     ///< serve::ChaosProxy per-connection fault-plan draws.
  kRetry = 4,     ///< serve::ResilientClient backoff-jitter draws.
  kVehicle = 5,   ///< platoon:: per-follower radar-noise seed derivation.
  kAttack = 6,    ///< attack:: per-epoch draws (entrainment sweep jitter).
};

/// Derives the seed for (`stream`, `counter`) under `master`. Pure function
/// of its arguments; the scheme is frozen by golden tests — changing it
/// invalidates recorded campaign goldens.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t master,
                                                  SeedStream stream,
                                                  std::uint64_t counter) {
  const std::uint64_t h =
      mix64(master + kSeedGamma * (static_cast<std::uint64_t>(stream) + 1));
  return mix64(h + kSeedGamma * (counter + 1));
}

/// Minimal SplitMix64 generator; satisfies UniformRandomBitGenerator. Used
/// instead of std::mt19937 for per-trial parameter draws so the stream is
/// cheap to construct per trial and fully specified by this header (no
/// dependence on library-specific distribution internals).
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() {
    state_ += kSeedGamma;
    return mix64(state_);
  }

 private:
  std::uint64_t state_;
};

/// Uniform double in [0, 1) from one 64-bit draw (53 mantissa bits).
[[nodiscard]] constexpr double uniform_double(SplitMix64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

}  // namespace safe::runtime
